//! Artifact round-trips: everything the harness writes to disk must
//! deserialise back losslessly (sweeps are expensive; saved artifacts
//! must be reusable).

use bricks_repro::experiments::runner::{Record, Sweep};
use bricks_repro::experiments::{sweep, ExperimentParams, KernelConfig};
use bricks_repro::gpu_sim::{GpuKind, ProgModel};

fn small_sweep() -> Sweep {
    // 64³ is enough for serialisation tests; content correctness is
    // covered elsewhere
    sweep(ExperimentParams { n: 64 })
}

#[test]
fn sweep_json_roundtrip() {
    let s = small_sweep();
    let json = serde_json::to_string(&s).unwrap();
    let back: Sweep = serde_json::from_str(&json).unwrap();
    assert_eq!(back.records.len(), s.records.len());
    assert_eq!(back.params, s.params);
    for (a, b) in s.records.iter().zip(&back.records) {
        assert_eq!(a.stencil, b.stencil);
        assert_eq!(a.config, b.config);
        assert_eq!(a.gpu, b.gpu);
        assert_eq!(a.model, b.model);
        assert_eq!(a.dram_bytes, b.dram_bytes);
        assert!((a.gflops - b.gflops).abs() < 1e-9);
    }
    assert_eq!(back.rooflines.len(), s.rooflines.len());
}

#[test]
fn record_json_fields_are_stable() {
    let s = small_sweep();
    let r: &Record = &s.records[0];
    let v: serde_json::Value = serde_json::to_value(r).unwrap();
    for key in [
        "stencil",
        "config",
        "gpu",
        "model",
        "gflops",
        "ai",
        "theoretical_ai",
        "frac_roofline",
        "frac_theoretical_ai",
        "l1_bytes",
        "l2_bytes",
        "dram_bytes",
        "time_s",
        "occupancy",
        "regs_per_thread",
        "spilled",
        "limiter",
    ] {
        assert!(v.get(key).is_some(), "missing field {key}");
    }
}

#[test]
fn csv_export_parses_back() {
    let s = small_sweep();
    let dir = std::env::temp_dir().join("bricks_repro_artifacts_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("sweep.csv");
    bricks_repro::experiments::report::write_sweep_csv(&s, &path).unwrap();
    let content = std::fs::read_to_string(&path).unwrap();
    let mut lines = content.lines();
    let header: Vec<&str> = lines.next().unwrap().split(',').collect();
    assert_eq!(header.len(), 17);
    let mut parsed = 0;
    for line in lines {
        let fields: Vec<&str> = line.split(',').collect();
        assert_eq!(fields.len(), header.len(), "{line}");
        // numeric columns parse
        let gflops: f64 = fields[4].parse().unwrap();
        assert!(gflops > 0.0);
        let dram: u64 = fields[11].parse().unwrap();
        assert!(dram > 0);
        parsed += 1;
    }
    assert_eq!(parsed, s.records.len());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn sweep_point_lookup_consistent_with_records() {
    let s = small_sweep();
    for r in &s.records {
        let found = s.point(r.gpu, r.model, r.config, &r.stencil).unwrap();
        assert_eq!(found.dram_bytes, r.dram_bytes);
    }
    assert!(s
        .point(
            GpuKind::PvcStack,
            ProgModel::Cuda,
            KernelConfig::Array,
            "7pt"
        )
        .is_none());
}
