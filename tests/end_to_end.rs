//! End-to-end numerical validation across crates: every paper stencil,
//! every layout, every kernel family and every architecture SIMD width
//! must reproduce the scalar reference exactly (up to floating-point
//! reassociation).

use bricks_repro::codegen::{generate, CodegenOptions, LayoutKind, Strategy};
use bricks_repro::dsl::shape::StencilShape;
use bricks_repro::dsl::{reference, DenseGrid};
use bricks_repro::vm::{run_numeric_dense, KernelSpec, ScalarKernel};

fn reference_result(shape: &StencilShape, input: &DenseGrid) -> DenseGrid {
    let st = shape.stencil();
    let b = st.default_bindings();
    let (nx, ny, nz) = input.extents();
    let mut out = DenseGrid::new(nx, ny, nz, input.halo());
    reference::apply(&st, &b, input, &mut out).unwrap();
    out
}

fn input_grid(shape: &StencilShape, width: usize) -> DenseGrid {
    let n = 2 * width.max(8);
    let mut g = DenseGrid::new(n, 8, 8, shape.radius as usize);
    g.fill_test_pattern();
    g
}

#[test]
fn every_stencil_layout_width_matches_reference() {
    for shape in StencilShape::paper_suite() {
        for width in [16usize, 32, 64] {
            let input = input_grid(&shape, width);
            let expect = reference_result(&shape, &input);
            let st = shape.stencil();
            let b = st.default_bindings();
            for layout in [LayoutKind::Brick, LayoutKind::Array] {
                let specs = [
                    KernelSpec::Scalar(ScalarKernel::new(&st, &b, layout, width).unwrap()),
                    KernelSpec::Vector(
                        generate(&st, &b, layout, width, CodegenOptions::default()).unwrap(),
                    ),
                ];
                for spec in specs {
                    let got = run_numeric_dense(&spec, &input).unwrap();
                    let diff = got.max_rel_diff(&expect);
                    assert!(
                        diff < 1e-12,
                        "{shape} w{width} {}: rel diff {diff}",
                        spec.name()
                    );
                }
            }
        }
    }
}

#[test]
fn forced_strategies_both_match_reference() {
    // Auto picks one strategy; force the other one too so both schedules
    // stay covered for every stencil.
    for shape in StencilShape::paper_suite() {
        let input = input_grid(&shape, 16);
        let expect = reference_result(&shape, &input);
        let st = shape.stencil();
        let b = st.default_bindings();
        for strategy in [Strategy::Gather, Strategy::Scatter] {
            let spec = KernelSpec::Vector(
                generate(
                    &st,
                    &b,
                    LayoutKind::Brick,
                    16,
                    CodegenOptions {
                        strategy,
                        ..Default::default()
                    },
                )
                .unwrap(),
            );
            let got = run_numeric_dense(&spec, &input).unwrap();
            assert!(
                got.max_rel_diff(&expect) < 1e-12,
                "{shape} {strategy}: {}",
                got.max_rel_diff(&expect)
            );
        }
    }
}

#[test]
fn asymmetric_stencil_round_trips() {
    // A stencil with no symmetry at all (distinct weight per tap,
    // anisotropic offsets) exercises the generic paths.
    use bricks_repro::dsl::{GridRef, Stencil};
    let g = GridRef::new("in");
    let e = 1.0 * g.center()
        + 2.0 * g.offset(1, 0, 0)
        + 3.0 * g.offset(-2, 0, 0)
        + 4.0 * g.offset(0, 3, 0)
        + 5.0 * g.offset(0, 0, -1)
        + 6.0 * g.offset(2, -1, 1)
        + 7.0 * g.offset(-1, 2, -3);
    let st = Stencil::assign("out", e).unwrap();
    let b = st.default_bindings();
    let mut input = DenseGrid::new(32, 12, 12, st.radius() as usize);
    input.fill_test_pattern();
    let mut expect = DenseGrid::new(32, 12, 12, st.radius() as usize);
    reference::apply(&st, &b, &input, &mut expect).unwrap();

    for layout in [LayoutKind::Brick, LayoutKind::Array] {
        let spec =
            KernelSpec::Vector(generate(&st, &b, layout, 16, CodegenOptions::default()).unwrap());
        let got = run_numeric_dense(&spec, &input).unwrap();
        assert!(
            got.max_rel_diff(&expect) < 1e-12,
            "{layout}: {}",
            got.max_rel_diff(&expect)
        );
        let scalar = KernelSpec::Scalar(ScalarKernel::new(&st, &b, layout, 16).unwrap());
        let got = run_numeric_dense(&scalar, &input).unwrap();
        assert!(got.max_rel_diff(&expect) < 1e-12, "{layout} scalar");
    }
}

#[test]
fn non_cubic_domains_work() {
    let shape = StencilShape::star(2);
    let st = shape.stencil();
    let b = st.default_bindings();
    // nx=64, ny=12, nz=20: multiples of the 16-wide brick (16,4,4)
    let mut input = DenseGrid::new(64, 12, 20, 2);
    input.fill_test_pattern();
    let mut expect = DenseGrid::new(64, 12, 20, 2);
    reference::apply(&st, &b, &input, &mut expect).unwrap();
    for layout in [LayoutKind::Brick, LayoutKind::Array] {
        let spec =
            KernelSpec::Vector(generate(&st, &b, layout, 16, CodegenOptions::default()).unwrap());
        let got = run_numeric_dense(&spec, &input).unwrap();
        assert!(got.max_rel_diff(&expect) < 1e-12, "{layout}");
    }
}

#[test]
fn repeated_application_matches_reference_chain() {
    // three sweeps on bricks == three reference applications
    let shape = StencilShape::star(1);
    let st = shape.stencil();
    let b = bricks_repro::dsl::CoeffBindings::new()
        .bind("c0", 0.4)
        .bind("c1", 0.1);
    let spec = KernelSpec::Vector(
        generate(&st, &b, LayoutKind::Brick, 16, CodegenOptions::default()).unwrap(),
    );

    let mut dense = DenseGrid::cubic(16, 1);
    dense.fill_test_pattern();
    let mut expect = dense.clone();
    for _ in 0..3 {
        let mut next = DenseGrid::cubic(16, 1);
        reference::apply(&st, &b, &expect, &mut next).unwrap();
        expect = next;
    }
    let mut got = dense;
    for _ in 0..3 {
        got = run_numeric_dense(&spec, &got).unwrap();
    }
    assert!(got.max_rel_diff(&expect) < 1e-10);
}
