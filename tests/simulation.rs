//! Cross-crate integration tests of the simulation pipeline: DSL →
//! codegen → trace → cache hierarchy → timing → metrics, checked through
//! physically-necessary invariants rather than golden numbers.

use std::sync::Arc;

use bricks_repro::codegen::{generate, CodegenOptions, LayoutKind};
use bricks_repro::core::{BrickDecomp, BrickDims, BrickNav, BrickOrdering};
use bricks_repro::dsl::shape::StencilShape;
use bricks_repro::dsl::StencilAnalysis;
use bricks_repro::gpu_sim::{simulate, simulate_memory, GpuArch, ProgModel};
use bricks_repro::metrics::pennycook_p;
use bricks_repro::roofline::{measure, Roofline};
use bricks_repro::vm::{KernelSpec, ScalarKernel, TraceGeometry};

fn brick_geom(n: usize, width: usize, radius: usize) -> TraceGeometry {
    let d = Arc::new(BrickDecomp::new(
        (n, n, n),
        BrickDims::for_simd_width(width),
        radius,
        BrickOrdering::Lexicographic,
    ));
    TraceGeometry::brick(Arc::new(BrickNav::new(d)))
}

fn bricks_spec(shape: &StencilShape, width: usize) -> KernelSpec {
    let st = shape.stencil();
    let b = st.default_bindings();
    KernelSpec::Vector(
        generate(&st, &b, LayoutKind::Brick, width, CodegenOptions::default()).unwrap(),
    )
}

#[test]
fn dram_traffic_bounded_below_by_compulsory_everywhere() {
    for arch in GpuArch::all() {
        let w = arch.simd_width;
        for shape in [StencilShape::star(1), StencilShape::cube(1)] {
            let geom = brick_geom(2 * w.max(32), w, shape.radius as usize);
            let spec = bricks_spec(&shape, w);
            let rep = simulate_memory(&spec, &geom, &arch, 8);
            let dram = rep.dram_read_bytes + rep.dram_write_bytes;
            assert!(
                dram >= geom.compulsory_bytes(),
                "{} {shape}: {dram} < compulsory {}",
                arch.name,
                geom.compulsory_bytes()
            );
            // writes are exactly the interior (full-row stores, no
            // write-allocate reads)
            assert_eq!(rep.dram_write_bytes, geom.interior_points() * 8);
        }
    }
}

#[test]
fn byte_hierarchy_is_monotone_for_every_config() {
    let arch = GpuArch::a100();
    let n = 64;
    for shape in StencilShape::paper_suite() {
        let st = shape.stencil();
        let b = st.default_bindings();
        let radius = shape.radius as usize;
        let specs = vec![
            (
                KernelSpec::Scalar(ScalarKernel::new(&st, &b, LayoutKind::Array, 32).unwrap()),
                TraceGeometry::array((n, n, n), radius, BrickDims::for_simd_width(32)),
            ),
            (bricks_spec(&shape, 32), brick_geom(n, 32, radius)),
        ];
        for (spec, geom) in specs {
            let rep = simulate_memory(&spec, &geom, &arch, 4);
            assert!(
                rep.l1.requested_bytes >= rep.l2.requested_bytes,
                "{shape} {}",
                spec.name()
            );
            assert!(
                rep.l2.requested_bytes >= rep.dram_read_bytes + rep.dram_write_bytes,
                "{shape} {}",
                spec.name()
            );
        }
    }
}

#[test]
fn simulated_points_never_beat_their_roofline() {
    for (arch, model) in [
        (GpuArch::a100(), ProgModel::Cuda),
        (GpuArch::mi250x_gcd(), ProgModel::Sycl),
        (GpuArch::pvc_stack(), ProgModel::Sycl),
    ] {
        let rl: Roofline = measure(&arch, model).unwrap();
        let w = arch.simd_width;
        for shape in [StencilShape::star(2), StencilShape::cube(2)] {
            let a = StencilAnalysis::of_shape(&shape);
            let geom = brick_geom(2 * w.max(64), w, shape.radius as usize);
            let sim = simulate(
                &bricks_spec(&shape, w),
                &geom,
                &arch,
                model,
                a.flops_per_point,
            )
            .unwrap();
            assert!(
                sim.gflops <= rl.attainable(sim.ai) * 1.05,
                "{} {shape}: {:.0} above roofline {:.0}",
                arch.name,
                sim.gflops,
                rl.attainable(sim.ai)
            );
        }
    }
}

#[test]
fn portability_metric_end_to_end() {
    // efficiency per platform from the simulator, P from the metric crate
    let shape = StencilShape::star(2);
    let a = StencilAnalysis::of_shape(&shape);
    let mut effs = Vec::new();
    for (arch, model) in [
        (GpuArch::a100(), ProgModel::Cuda),
        (GpuArch::mi250x_gcd(), ProgModel::Hip),
        (GpuArch::pvc_stack(), ProgModel::Sycl),
    ] {
        let w = arch.simd_width;
        let geom = brick_geom(128, w, shape.radius as usize);
        let sim = simulate(
            &bricks_spec(&shape, w),
            &geom,
            &arch,
            model,
            a.flops_per_point,
        )
        .unwrap();
        let rl = measure(&arch, model).unwrap();
        effs.push(Some(rl.fraction(sim.gflops, sim.ai)));
    }
    let p = pennycook_p(&effs);
    assert!(p > 0.3 && p <= 1.0, "P = {p}");
}

#[test]
fn simulation_is_deterministic_across_runs() {
    let arch = GpuArch::mi250x_gcd();
    let shape = StencilShape::cube(1);
    let a = StencilAnalysis::of_shape(&shape);
    let spec = bricks_spec(&shape, 64);
    let geom = brick_geom(128, 64, 1);
    let r1 = simulate(&spec, &geom, &arch, ProgModel::Hip, a.flops_per_point).unwrap();
    let r2 = simulate(&spec, &geom, &arch, ProgModel::Hip, a.flops_per_point).unwrap();
    assert_eq!(r1.mem, r2.mem);
    assert_eq!(r1.time_s, r2.time_s);
    assert_eq!(r1.gflops, r2.gflops);
}

#[test]
fn larger_domains_scale_traffic_linearly_when_streaming() {
    // doubling the domain ~8x the points; DRAM bytes must scale ~8x once
    // the grid exceeds the L2 (use the scaled-down arch to be sure)
    let arch = GpuArch::a100().scaled_down(32);
    let shape = StencilShape::star(1);
    let spec = bricks_spec(&shape, 32);
    let small = simulate_memory(&spec, &brick_geom(64, 32, 1), &arch, 8);
    let large = simulate_memory(&spec, &brick_geom(128, 32, 1), &arch, 8);
    let ratio = (large.dram_read_bytes + large.dram_write_bytes) as f64
        / (small.dram_read_bytes + small.dram_write_bytes) as f64;
    assert!(
        (ratio - 8.0).abs() < 2.0,
        "traffic ratio {ratio} far from 8x"
    );
}

#[test]
fn morton_and_lexicographic_orderings_agree_on_compulsory_writes() {
    let arch = GpuArch::a100();
    let shape = StencilShape::star(1);
    let spec = bricks_spec(&shape, 32);
    for ordering in [BrickOrdering::Lexicographic, BrickOrdering::Morton] {
        let d = Arc::new(BrickDecomp::new(
            (64, 64, 64),
            BrickDims::for_simd_width(32),
            1,
            ordering,
        ));
        let geom = TraceGeometry::brick(Arc::new(BrickNav::new(d)));
        let rep = simulate_memory(&spec, &geom, &arch, 8);
        assert_eq!(
            rep.dram_write_bytes,
            geom.interior_points() * 8,
            "{ordering:?}"
        );
    }
}

#[test]
fn spilled_sycl_kernel_is_slower_than_cuda_same_trace() {
    // the 125pt scalar kernel spills under the SYCL model but not CUDA;
    // identical memory trace, different compiled kernel -> slower
    let arch = GpuArch::a100();
    let shape = StencilShape::cube(2);
    let st = shape.stencil();
    let b = st.default_bindings();
    let a = StencilAnalysis::of_shape(&shape);
    let spec = KernelSpec::Scalar(ScalarKernel::new(&st, &b, LayoutKind::Array, 32).unwrap());
    let geom = TraceGeometry::array((64, 64, 64), 2, BrickDims::for_simd_width(32));
    let cuda = simulate(&spec, &geom, &arch, ProgModel::Cuda, a.flops_per_point).unwrap();
    let sycl = simulate(&spec, &geom, &arch, ProgModel::Sycl, a.flops_per_point).unwrap();
    assert!(!cuda.spilled);
    assert!(sycl.spilled);
    assert!(
        sycl.gflops < cuda.gflops * 0.7,
        "{} !< {}",
        sycl.gflops,
        cuda.gflops
    );
    assert!(sycl.mem.l1_bytes > cuda.mem.l1_bytes);
}
