//! Property-based tests (proptest) on the core invariants:
//!
//! * any linear stencil the DSL accepts is computed identically by the
//!   scalar reference, the brick kernels and the generated vector code;
//! * dense ↔ brick conversion round-trips for arbitrary geometry;
//! * generated kernels never reload a row and always validate;
//! * the cache model conserves bytes (fills ≥ distinct data, hits+misses
//!   account for every sector).

use proptest::collection::vec;
use proptest::prelude::*;

use bricks_repro::codegen::{generate, CodegenOptions, LayoutKind, Strategy as CgStrategy};
use bricks_repro::core::{BrickDims, BrickGrid};
use bricks_repro::dsl::stencil::{LinCoeff, Tap};
use bricks_repro::dsl::{reference, DenseGrid, Stencil};
use bricks_repro::vm::{run_numeric_dense, KernelSpec, ScalarKernel};

/// Strategy: a random linear stencil with ≤ 12 taps within radius 3 and
/// small non-degenerate weights.
fn arb_stencil() -> impl Strategy<Value = Stencil> {
    vec(((-3i32..=3), (-3i32..=3), (-3i32..=3), (1i32..=8)), 1..12).prop_map(|taps| {
        let taps: Vec<Tap> = taps
            .into_iter()
            .map(|(dx, dy, dz, w)| Tap {
                offset: [dx, dy, dz],
                coeff: LinCoeff {
                    constant: w as f64 / 8.0,
                    terms: Default::default(),
                },
            })
            .collect();
        // merge duplicates the way the DSL normaliser would
        let mut merged: Vec<Tap> = Vec::new();
        for t in taps {
            match merged.iter_mut().find(|m| m.offset == t.offset) {
                Some(m) => m.coeff.constant += t.coeff.constant,
                None => merged.push(t),
            }
        }
        merged.sort_by_key(|t| t.offset);
        Stencil::from_taps("prop", "out", "in", merged)
    })
}

fn run_all_paths(st: &Stencil, input: &DenseGrid) -> Vec<(String, DenseGrid)> {
    let b = st.default_bindings();
    let mut out = Vec::new();
    for layout in [LayoutKind::Brick, LayoutKind::Array] {
        for strategy in [CgStrategy::Gather, CgStrategy::Scatter] {
            let k = generate(
                st,
                &b,
                layout,
                16,
                CodegenOptions {
                    strategy,
                    ..Default::default()
                },
            )
            .unwrap();
            let name = k.name.clone();
            out.push((
                name,
                run_numeric_dense(&KernelSpec::Vector(k), input).unwrap(),
            ));
        }
        let sk = ScalarKernel::new(st, &b, layout, 16).unwrap();
        let name = sk.name.clone();
        out.push((
            name,
            run_numeric_dense(&KernelSpec::Scalar(sk), input).unwrap(),
        ));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_stencils_agree_across_all_execution_paths(st in arb_stencil()) {
        let b = st.default_bindings();
        let halo = st.radius().max(1) as usize;
        let mut input = DenseGrid::new(32, 8, 8, halo);
        input.fill_test_pattern();
        let mut expect = DenseGrid::new(32, 8, 8, halo);
        reference::apply(&st, &b, &input, &mut expect).unwrap();

        for (name, got) in run_all_paths(&st, &input) {
            let diff = got.max_rel_diff(&expect);
            prop_assert!(diff < 1e-12, "{name}: rel diff {diff}");
        }
    }

    #[test]
    fn generated_kernels_validate_and_load_once(st in arb_stencil()) {
        let b = st.default_bindings();
        for strategy in [CgStrategy::Gather, CgStrategy::Scatter] {
            let k = generate(&st, &b, LayoutKind::Brick, 16, CodegenOptions {
                strategy,
                ..Default::default()
            }).unwrap();
            prop_assert_eq!(k.validate(), Ok(()));
            prop_assert!(k.loads_are_unique());
            prop_assert_eq!(k.stats.stores as usize, 16);
        }
    }

    #[test]
    fn brick_roundtrip_arbitrary_geometry(
        bx in 1usize..=3, // x 8,16,24 via multiplier below
        tiles in (1usize..=3, 1usize..=4, 1usize..=4),
        halo in 0usize..=3,
    ) {
        let dims = BrickDims::new(8 * bx, 4, 4);
        let (tx, ty, tz) = tiles;
        let mut dense = DenseGrid::new(dims.bx * tx, 4 * ty, 4 * tz, halo);
        dense.fill_test_pattern();
        let grid = BrickGrid::from_dense(&dense, dims);
        let back = grid.to_dense();
        prop_assert_eq!(back.max_abs_diff(&dense), 0.0);
        // logical accessor agrees with the dense grid at random-ish points
        let (nx, ny, nz) = dense.extents();
        for (x, y, z) in [(0, 0, 0), (nx as i64 - 1, ny as i64 - 1, nz as i64 - 1)] {
            prop_assert_eq!(grid.get(x, y, z), dense.get(x, y, z));
        }
    }

    #[test]
    fn scaled_stencil_scales_output_linearly(
        scale in 1u32..=16,
    ) {
        // linearity of the whole pipeline: K(s·u) = s·K(u)
        let shape = bricks_repro::dsl::shape::StencilShape::cube(1);
        let st = shape.stencil();
        let b = st.default_bindings();
        let k = generate(&st, &b, LayoutKind::Brick, 16, CodegenOptions::default()).unwrap();
        let spec = KernelSpec::Vector(k);

        let mut input = DenseGrid::cubic(16, 1);
        input.fill_test_pattern();
        let base = run_numeric_dense(&spec, &input).unwrap();

        let mut scaled = input.clone();
        for v in scaled.raw_mut() {
            *v *= scale as f64;
        }
        let got = run_numeric_dense(&spec, &scaled).unwrap();
        for (x, y, z) in got.interior_coords() {
            let want = base.get(x, y, z) * scale as f64;
            let diff = (got.get(x, y, z) - want).abs();
            prop_assert!(diff <= want.abs() * 1e-12 + 1e-300, "({x},{y},{z})");
        }
    }
}

mod cache_properties {
    use super::*;
    use bricks_repro::gpu_sim::{Cache, CacheConfig, WritePolicy};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn cache_conserves_sectors(accesses in vec((0u64..4096, 1u32..64, any::<bool>()), 1..200)) {
            let mut c = Cache::new(CacheConfig {
                bytes: 2048,
                line: 128,
                sector: 32,
                assoc: 4,
                write: WritePolicy::BackAllocate,
            });
            let mut to_next = 0u64;
            for (addr, bytes, is_write) in accesses {
                let mut sink = |t: bricks_repro::gpu_sim::cache::NextLevel| {
                    to_next += t.bytes as u64;
                };
                if is_write {
                    c.write(addr, bytes, &mut sink);
                } else {
                    c.read(addr, bytes, &mut sink);
                }
            }
            let mut flushed = 0u64;
            c.flush(&mut |t| flushed += t.bytes as u64);
            // every sector observed is either a hit or a miss
            prop_assert_eq!(
                (c.stats.hit_sectors + c.stats.miss_sectors) * 32,
                c.stats.requested_bytes
            );
            // traffic to the next level matches the stats
            prop_assert_eq!(to_next + flushed, c.stats.next_level_bytes());
            // fills never exceed requests
            prop_assert!(c.stats.fill_bytes <= c.stats.requested_bytes);
        }

        #[test]
        fn repeating_a_read_trace_is_all_hits_when_it_fits(
            addrs in vec(0u64..16u64, 1..40)
        ) {
            // working set of 16 sectors fits a 2 KiB cache comfortably
            let mut c = Cache::new(CacheConfig {
                bytes: 2048,
                line: 128,
                sector: 32,
                assoc: 4,
                write: WritePolicy::BackAllocate,
            });
            for &a in &addrs {
                c.read(a * 32, 32, &mut |_| {});
            }
            let misses_before = c.stats.miss_sectors;
            for &a in &addrs {
                c.read(a * 32, 32, &mut |_| {});
            }
            prop_assert_eq!(c.stats.miss_sectors, misses_before);
        }
    }
}
