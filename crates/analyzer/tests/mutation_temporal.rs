//! Mutation harness for the temporal-fusion pass.
//!
//! The fused (`temporal_degree = T`) kernels carry structure a spatial
//! kernel does not: lane-windowed level-0 halo loads, per-step plane
//! buffers, and per-step chains re-rooted on the previous step's planes.
//! This suite corrupts exactly that structure one site at a time —
//! halo-window off-by-ones, dropped intermediate-plane producers, shift
//! and accumulator rewirings that root a step on the wrong plane — and
//! requires the verification stack to catch it:
//!
//! 1. **Sensitivity** (deterministic enumeration): at least 95% of all
//!    single-site mutants must be rejected by the footprint verifier
//!    (checked against [`ExpectedStencil::resolve_temporal`], i.e. the
//!    `T`-step composed stencil) **or** by plan compilation
//!    (`brick_vm::Plan::compile` = bounds proof + brick-safe).
//! 2. **Soundness** (proptest): any mutant that slips through *both*
//!    gates must be numerically indistinguishable from the scalar
//!    `T`-step reference ([`reference::apply_temporal`]) — acceptance is
//!    a proof, so a survivor can only be a harmless rewrite.
//!
//! Mirrors `tests/mutation.rs`, which pins the same contract for the
//! unfused kernels.

use brick_codegen::{generate, CodegenOptions, LayoutKind, Strategy, VOp, VectorKernel};
use brick_dsl::shape::StencilShape;
use brick_dsl::{reference, DenseGrid};
use brick_lint::{analyze, ExpectedStencil, LintOptions};

/// A fused paper kernel together with the `T`-step stencil it claims to
/// compute.
fn subject(
    shape: StencilShape,
    layout: LayoutKind,
    width: usize,
    t: u32,
) -> (VectorKernel, ExpectedStencil) {
    let st = shape.stencil();
    let b = st.default_bindings();
    let k = generate(
        &st,
        &b,
        layout,
        width,
        CodegenOptions {
            temporal_degree: t,
            strategy: Strategy::Gather,
            ..CodegenOptions::default()
        },
    )
    .unwrap();
    let e = ExpectedStencil::resolve_temporal(&st, &b, t).unwrap();
    (k, e)
}

/// A mutant is killed if the footprint verifier rejects it against the
/// composed stencil, or if plan compilation (bounds proof + brick-safe)
/// refuses to lower it. Fused kernels legitimately hold `T` levels of
/// plane buffers, so no register budget is imposed — pressure is priced,
/// not banned (same stance as the temporal sweep's verification).
fn is_killed(k: &VectorKernel, expected: &ExpectedStencil) -> bool {
    let opts = LintOptions {
        expected: Some(expected.clone()),
        budgets: Vec::new(),
    };
    if !analyze(k, &opts).is_clean() {
        return true;
    }
    brick_vm::Plan::compile(k).is_err()
}

/// All deterministic single-site mutants of `k` at op index `i`.
///
/// The operators target the fusion pass's failure modes by construction:
/// lane-window and row perturbations on loads corrupt the level-0 halo
/// staging (`halo off-by-one`); register rewirings on shifts, FMAs and
/// accumulators re-root a step's chain on the wrong plane buffer
/// (`wrong step re-rooting`); dropping an op removes an intermediate
/// plane's producer (`dropped intermediate-plane store`). Identity
/// mutations (equal-weight coefficient remaps, swaps in one-register
/// kernels) are skipped — they are not corruptions.
fn mutants_at(k: &VectorKernel, i: usize) -> Vec<(String, VectorKernel)> {
    let nregs = k.num_regs as u16;
    let ncoeffs = k.coeffs.len() as u16;
    let mut out: Vec<(String, VectorKernel)> = Vec::new();
    let mut emit = |label: &str, op: VOp| {
        let mut m = k.clone();
        m.ops[i] = op;
        out.push((format!("op{i}:{label}"), m));
    };

    match k.ops[i] {
        VOp::LoadRow {
            dst,
            rx,
            ry,
            rz,
            lane0,
            lanes,
        } => {
            emit(
                "load-ry",
                VOp::LoadRow {
                    dst,
                    rx,
                    ry: ry + 1,
                    rz,
                    lane0,
                    lanes,
                },
            );
            emit(
                "load-rz",
                VOp::LoadRow {
                    dst,
                    rx,
                    ry,
                    rz: rz - 1,
                    lane0,
                    lanes,
                },
            );
            emit(
                "load-rx",
                VOp::LoadRow {
                    dst,
                    rx: if rx == 1 { 0 } else { rx + 1 },
                    ry,
                    rz,
                    lane0,
                    lanes,
                },
            );
            // the halo off-by-ones proper: nudge the lane window's start
            // and width — a level-0 edge load that stages one lane too
            // few starves the deepest step's reach, one too many reads
            // beyond the proven footprint
            emit(
                "load-lane0",
                VOp::LoadRow {
                    dst,
                    rx,
                    ry,
                    rz,
                    lane0: lane0 + 1,
                    lanes,
                },
            );
            if lanes > 1 {
                emit(
                    "load-lanes-short",
                    VOp::LoadRow {
                        dst,
                        rx,
                        ry,
                        rz,
                        lane0,
                        lanes: lanes - 1,
                    },
                );
            }
            if (lane0 + lanes) < k.width as u16 {
                emit(
                    "load-lanes-long",
                    VOp::LoadRow {
                        dst,
                        rx,
                        ry,
                        rz,
                        lane0,
                        lanes: lanes + 1,
                    },
                );
            }
        }
        VOp::ShiftX { dst, src, edge, dx } => {
            emit(
                "shift-dx",
                VOp::ShiftX {
                    dst,
                    src,
                    edge,
                    dx: dx + 1,
                },
            );
            if nregs > 1 {
                // re-rooting: a shift that reads the wrong plane buffer
                emit(
                    "shift-src",
                    VOp::ShiftX {
                        dst,
                        src: (src + 1) % nregs,
                        edge,
                        dx,
                    },
                );
                emit(
                    "shift-edge",
                    VOp::ShiftX {
                        dst,
                        src,
                        edge: (edge + 1) % nregs,
                        dx,
                    },
                );
            }
        }
        VOp::Add { dst, a, b } => {
            if nregs > 1 {
                emit(
                    "add-a",
                    VOp::Add {
                        dst,
                        a: (a + 1) % nregs,
                        b,
                    },
                );
            }
        }
        VOp::Mul { dst, a, coeff } => {
            if nregs > 1 {
                emit(
                    "mul-a",
                    VOp::Mul {
                        dst,
                        a: (a + 1) % nregs,
                        coeff,
                    },
                );
            }
            let c2 = (coeff + 1) % ncoeffs;
            if k.coeffs[c2 as usize] != k.coeffs[coeff as usize] {
                emit("mul-coeff", VOp::Mul { dst, a, coeff: c2 });
            }
        }
        VOp::Fma { dst, acc, a, coeff } => {
            if nregs > 1 {
                emit(
                    "fma-a",
                    VOp::Fma {
                        dst,
                        acc,
                        a: (a + 1) % nregs,
                        coeff,
                    },
                );
                // re-rooting proper: accumulate onto the wrong plane —
                // in a fused chain `acc` is where the previous step's
                // partial sums live
                emit(
                    "fma-acc",
                    VOp::Fma {
                        dst,
                        acc: (acc + 1) % nregs,
                        a,
                        coeff,
                    },
                );
            }
            let c2 = (coeff + 1) % ncoeffs;
            if k.coeffs[c2 as usize] != k.coeffs[coeff as usize] {
                emit(
                    "fma-coeff",
                    VOp::Fma {
                        dst,
                        acc,
                        a,
                        coeff: c2,
                    },
                );
            }
        }
        VOp::StoreRow { src, ry, rz } => {
            if nregs > 1 {
                emit(
                    "store-src",
                    VOp::StoreRow {
                        src: (src + 1) % nregs,
                        ry,
                        rz,
                    },
                );
            }
            emit(
                "store-ry",
                VOp::StoreRow {
                    src,
                    ry: ry + 1,
                    rz,
                },
            );
        }
    }

    // Dropping the op entirely — for a mid-schedule op this removes an
    // intermediate plane's producer, so every later step consumes a
    // stale or undefined buffer.
    let mut dropped = k.clone();
    dropped.ops.remove(i);
    out.push((format!("op{i}:drop"), dropped));
    out
}

/// Enumerate mutants across a kernel's ops with a stride that caps the
/// total near `budget` mutation sites.
fn enumerate_mutants(k: &VectorKernel, budget: usize) -> Vec<(String, VectorKernel)> {
    let stride = (k.ops.len() / budget).max(1);
    (0..k.ops.len())
        .step_by(stride)
        .flat_map(|i| mutants_at(k, i))
        .collect()
}

/// The fused suite: every paper shape family at a deep and a shallow
/// feasible degree (`T·r ≤ 4` under the default 4×4 block).
fn fused_suite() -> Vec<(StencilShape, LayoutKind, usize, u32)> {
    vec![
        (StencilShape::star(1), LayoutKind::Brick, 16, 2),
        (StencilShape::star(1), LayoutKind::Brick, 16, 4),
        (StencilShape::star(2), LayoutKind::Brick, 16, 2),
        (StencilShape::cube(1), LayoutKind::Array, 16, 2),
        (StencilShape::cube(1), LayoutKind::Brick, 16, 3),
    ]
}

#[test]
fn verifier_rejects_at_least_95_percent_of_fusion_mutants() {
    let mut total = 0usize;
    let mut killed = 0usize;
    let mut survivors: Vec<String> = Vec::new();
    for (shape, layout, width, t) in fused_suite() {
        let (k, expected) = subject(shape, layout, width, t);
        assert!(
            !is_killed(&k, &expected),
            "unmutated {} (T={t}) must be accepted",
            k.name
        );
        for (label, mutant) in enumerate_mutants(&k, 60) {
            total += 1;
            if is_killed(&mutant, &expected) {
                killed += 1;
            } else {
                survivors.push(format!("{}:T{t}:{label}", k.name));
            }
        }
    }
    let rate = killed as f64 / total as f64;
    assert!(
        rate >= 0.95,
        "only {killed}/{total} fusion mutants killed ({:.1}%); survivors: {survivors:?}",
        rate * 100.0
    );
}

#[test]
fn halo_window_off_by_one_is_rejected_with_op_span() {
    // the canonical fusion bug: a level-0 edge load staged one lane
    // short, starving the deepest step's reach at the block seam. Some
    // windows carry slack on rows whose top lane never feeds a stored
    // lane — those shortenings are harmless rewrites — but at least one
    // window must be load-bearing, and corrupting it must produce a
    // diagnostic anchored at the load.
    let (k, expected) = subject(StencilShape::star(1), LayoutKind::Brick, 16, 4);
    let opts = LintOptions {
        expected: Some(expected),
        budgets: Vec::new(),
    };
    let mut caught = false;
    for (i, op) in k.ops.iter().enumerate() {
        let VOp::LoadRow {
            dst,
            rx,
            ry,
            rz,
            lane0,
            lanes,
        } = *op
        else {
            continue;
        };
        if lanes <= 1 || (lane0 == 0 && lanes == k.width as u16) {
            continue;
        }
        let mut m = k.clone();
        m.ops[i] = VOp::LoadRow {
            dst,
            rx,
            ry,
            rz,
            lane0,
            lanes: lanes - 1,
        };
        let a = analyze(&m, &opts);
        if !a.is_clean() {
            assert!(
                a.report.diagnostics.iter().any(|d| d.op.is_some()),
                "diagnostic must name an op index:\n{}",
                a.report.render(Some(&m))
            );
            caught = true;
            break;
        }
    }
    assert!(
        caught,
        "no shorted halo window was rejected — the footprint verifier \
         cannot see the level-0 staging at all"
    );
}

#[test]
fn dropped_intermediate_plane_producer_is_rejected() {
    // remove the last producer before the first store: with T=2 that is
    // inside the step-1 chain, which then reads a partial plane
    let (k, expected) = subject(StencilShape::star(1), LayoutKind::Brick, 16, 2);
    let store = k
        .ops
        .iter()
        .position(|op| matches!(op, VOp::StoreRow { .. }))
        .expect("fused kernel stores");
    assert!(store > 0);
    let mut m = k.clone();
    m.ops.remove(store - 1);
    assert!(
        is_killed(&m, &expected),
        "dropping an intermediate producer must be caught"
    );
}

#[test]
fn wrong_step_re_rooting_is_rejected() {
    // rewire the accumulator of the last FMA before the first store: the
    // final step's chain now sums onto a different plane buffer
    let (k, expected) = subject(StencilShape::star(1), LayoutKind::Brick, 16, 2);
    let store = k
        .ops
        .iter()
        .position(|op| matches!(op, VOp::StoreRow { .. }))
        .expect("fused kernel stores");
    let (i, bad) = k.ops[..store]
        .iter()
        .enumerate()
        .rev()
        .find_map(|(i, op)| match *op {
            VOp::Fma { dst, acc, a, coeff } => Some((
                i,
                VOp::Fma {
                    dst,
                    acc: (acc + 1) % k.num_regs as u16,
                    a,
                    coeff,
                },
            )),
            _ => None,
        })
        .expect("fused chain ends in FMAs");
    let mut m = k.clone();
    m.ops[i] = bad;
    assert!(
        is_killed(&m, &expected),
        "re-rooting the final step's chain must be caught"
    );
}

mod soundness {
    use super::*;
    use proptest::prelude::*;

    /// Numeric ground truth: the scalar `T`-step composed reference.
    fn reference_output(shape: StencilShape, t: u32, input: &DenseGrid) -> DenseGrid {
        let st = shape.stencil();
        let b = st.default_bindings();
        let (nx, ny, nz) = input.extents();
        let mut out = DenseGrid::new(nx, ny, nz, input.halo());
        reference::apply_temporal(&st, &b, input, &mut out, t).unwrap();
        out
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// A fusion mutant that survives both the footprint verifier and
        /// plan compilation must reproduce the scalar `T`-step reference:
        /// acceptance is a semantic proof, not a heuristic.
        #[test]
        fn surviving_fusion_mutants_are_numerically_correct(
            site in 0usize..4096,
            pick in 0usize..8,
            deep in 0usize..2,
        ) {
            let shape = StencilShape::star(1);
            let t = if deep == 1 { 4 } else { 2 };
            let (k, expected) = subject(shape, LayoutKind::Brick, 16, t);
            let i = site % k.ops.len();
            let muts = mutants_at(&k, i);
            let (_label, mutant) = &muts[pick % muts.len()];
            if !is_killed(mutant, &expected) {
                let halo = t as usize * shape.radius as usize;
                let mut input = DenseGrid::new(16, 8, 8, halo);
                input.fill_test_pattern();
                let expect = reference_output(shape, t, &input);
                let got = brick_vm::run_numeric_dense(
                    &brick_vm::KernelSpec::Vector(mutant.clone()),
                    &input,
                )
                .expect("accepted mutant must execute");
                prop_assert!(
                    got.max_rel_diff(&expect) < 1e-12,
                    "verifier accepted a numerically wrong fusion mutant"
                );
            }
        }
    }
}
