//! Mutation harness for the static analyzer.
//!
//! Two complementary guarantees over generated paper kernels:
//!
//! 1. **Sensitivity** (deterministic enumeration): of all single-op
//!    corruptions — register swaps, perturbed shift distances, row
//!    coordinates, lane windows and coefficient indices, dropped ops —
//!    the analyzer must reject at least 95%. The residual few percent
//!    covers semantically equivalent mutants (e.g. a coefficient index
//!    remapped to an equal weight).
//! 2. **Soundness** (proptest): any mutant the analyzer *does* accept
//!    against the declared stencil must be numerically indistinguishable
//!    from the scalar reference — acceptance is a proof, so an accepted
//!    mutant can only be a harmless rewrite.

use brick_codegen::{generate, CodegenOptions, LayoutKind, VOp, VectorKernel};
use brick_dsl::shape::StencilShape;
use brick_dsl::{reference, DenseGrid};
use brick_lint::{analyze, ExpectedStencil, LintOptions};

/// A paper kernel together with the stencil it claims to compute.
fn subject(
    shape: StencilShape,
    layout: LayoutKind,
    width: usize,
) -> (VectorKernel, ExpectedStencil) {
    let st = shape.stencil();
    let b = st.default_bindings();
    let k = generate(&st, &b, layout, width, CodegenOptions::default()).unwrap();
    let e = ExpectedStencil::resolve(&st, &b).unwrap();
    (k, e)
}

fn is_rejected(k: &VectorKernel, expected: &ExpectedStencil) -> bool {
    let opts = LintOptions {
        expected: Some(expected.clone()),
        budgets: Vec::new(),
    };
    !analyze(k, &opts).is_clean()
}

/// All deterministic single-op mutants of `k` at op index `i`, labelled.
/// Mutations that would be the identity (e.g. swapping within a one-
/// register kernel, or remapping a coefficient to an equal value) are
/// skipped — they are not corruptions.
fn mutants_at(k: &VectorKernel, i: usize) -> Vec<(String, VectorKernel)> {
    let nregs = k.num_regs as u16;
    let ncoeffs = k.coeffs.len() as u16;
    let mut out: Vec<(String, VectorKernel)> = Vec::new();
    let mut emit = |label: &str, op: VOp| {
        let mut m = k.clone();
        m.ops[i] = op;
        out.push((format!("op{i}:{label}"), m));
    };

    match k.ops[i] {
        VOp::LoadRow {
            dst,
            rx,
            ry,
            rz,
            lane0,
            lanes,
        } => {
            emit(
                "load-ry",
                VOp::LoadRow {
                    dst,
                    rx,
                    ry: ry + 1,
                    rz,
                    lane0,
                    lanes,
                },
            );
            emit(
                "load-rz",
                VOp::LoadRow {
                    dst,
                    rx,
                    ry,
                    rz: rz - 1,
                    lane0,
                    lanes,
                },
            );
            emit(
                "load-rx",
                VOp::LoadRow {
                    dst,
                    rx: if rx == 1 { 0 } else { rx + 1 },
                    ry,
                    rz,
                    lane0,
                    lanes,
                },
            );
            emit(
                "load-lane0",
                VOp::LoadRow {
                    dst,
                    rx,
                    ry,
                    rz,
                    lane0: lane0 + 1,
                    lanes,
                },
            );
        }
        VOp::ShiftX { dst, src, edge, dx } => {
            emit(
                "shift-dx",
                VOp::ShiftX {
                    dst,
                    src,
                    edge,
                    dx: dx + 1,
                },
            );
            if nregs > 1 {
                emit(
                    "shift-src",
                    VOp::ShiftX {
                        dst,
                        src: (src + 1) % nregs,
                        edge,
                        dx,
                    },
                );
            }
        }
        VOp::Add { dst, a, b } => {
            if nregs > 1 {
                emit(
                    "add-a",
                    VOp::Add {
                        dst,
                        a: (a + 1) % nregs,
                        b,
                    },
                );
            }
        }
        VOp::Mul { dst, a, coeff } => {
            if nregs > 1 {
                emit(
                    "mul-a",
                    VOp::Mul {
                        dst,
                        a: (a + 1) % nregs,
                        coeff,
                    },
                );
            }
            let c2 = (coeff + 1) % ncoeffs;
            if k.coeffs[c2 as usize] != k.coeffs[coeff as usize] {
                emit("mul-coeff", VOp::Mul { dst, a, coeff: c2 });
            }
        }
        VOp::Fma { dst, acc, a, coeff } => {
            if nregs > 1 {
                emit(
                    "fma-a",
                    VOp::Fma {
                        dst,
                        acc,
                        a: (a + 1) % nregs,
                        coeff,
                    },
                );
            }
            let c2 = (coeff + 1) % ncoeffs;
            if k.coeffs[c2 as usize] != k.coeffs[coeff as usize] {
                emit(
                    "fma-coeff",
                    VOp::Fma {
                        dst,
                        acc,
                        a,
                        coeff: c2,
                    },
                );
            }
        }
        VOp::StoreRow { src, ry, rz } => {
            if nregs > 1 {
                emit(
                    "store-src",
                    VOp::StoreRow {
                        src: (src + 1) % nregs,
                        ry,
                        rz,
                    },
                );
            }
            emit(
                "store-ry",
                VOp::StoreRow {
                    src,
                    ry: ry + 1,
                    rz,
                },
            );
        }
    }

    // Dropping the op entirely.
    let mut dropped = k.clone();
    dropped.ops.remove(i);
    out.push((format!("op{i}:drop"), dropped));
    out
}

/// Enumerate mutants across a kernel's ops with a stride that caps the
/// total near `budget` mutation sites.
fn enumerate_mutants(k: &VectorKernel, budget: usize) -> Vec<(String, VectorKernel)> {
    let stride = (k.ops.len() / budget).max(1);
    (0..k.ops.len())
        .step_by(stride)
        .flat_map(|i| mutants_at(k, i))
        .collect()
}

#[test]
fn analyzer_rejects_at_least_95_percent_of_single_op_mutants() {
    let suite = [
        (StencilShape::star(1), LayoutKind::Brick, 16),
        (StencilShape::star(2), LayoutKind::Brick, 16),
        (StencilShape::cube(1), LayoutKind::Array, 16),
    ];
    let mut total = 0usize;
    let mut rejected = 0usize;
    let mut survivors: Vec<String> = Vec::new();
    for (shape, layout, width) in suite {
        let (k, expected) = subject(shape, layout, width);
        assert!(
            !is_rejected(&k, &expected),
            "unmutated {} must be accepted",
            k.name
        );
        for (label, mutant) in enumerate_mutants(&k, 120) {
            total += 1;
            if is_rejected(&mutant, &expected) {
                rejected += 1;
            } else {
                survivors.push(format!("{}:{label}", k.name));
            }
        }
    }
    let rate = rejected as f64 / total as f64;
    assert!(
        rate >= 0.95,
        "only {rejected}/{total} mutants rejected ({:.1}%); survivors: {survivors:?}",
        rate * 100.0
    );
}

#[test]
fn wrong_coefficient_is_rejected_with_op_span() {
    // Acceptance criterion: a hand-corrupted coefficient is caught
    // statically with a diagnostic naming the op.
    let (mut k, expected) = subject(StencilShape::star(1), LayoutKind::Brick, 16);
    k.coeffs[0] *= 1.5;
    let opts = LintOptions {
        expected: Some(expected),
        budgets: Vec::new(),
    };
    let a = analyze(&k, &opts);
    assert!(!a.is_clean(), "corrupted coefficient must be rejected");
    assert!(
        a.report.diagnostics.iter().any(|d| d.op.is_some()),
        "diagnostic must name an op index:\n{}",
        a.report.render(Some(&k))
    );
}

#[test]
fn out_of_adjacency_row_is_rejected_with_op_span() {
    let (mut k, expected) = subject(StencilShape::star(1), LayoutKind::Brick, 16);
    let (i, bad) = k
        .ops
        .iter()
        .enumerate()
        .find_map(|(i, op)| match *op {
            VOp::LoadRow {
                dst,
                rx,
                ry: _,
                rz,
                lane0,
                lanes,
            } => Some((
                i,
                VOp::LoadRow {
                    dst,
                    rx,
                    ry: 2 * k.block.by as i16,
                    rz,
                    lane0,
                    lanes,
                },
            )),
            _ => None,
        })
        .expect("kernel has a load");
    k.ops[i] = bad;
    let opts = LintOptions {
        expected: Some(expected),
        budgets: Vec::new(),
    };
    let a = analyze(&k, &opts);
    let hits = a
        .report
        .with_code(brick_lint::LintCode::RowOutsideAdjacency);
    assert!(!hits.is_empty(), "{}", a.report.render(Some(&k)));
    assert_eq!(hits[0].op, Some(i));
}

mod soundness {
    use super::*;
    use proptest::prelude::*;

    /// Numeric ground truth for the radius-1 star at width 16.
    fn reference_output(shape: StencilShape, input: &DenseGrid) -> DenseGrid {
        let st = shape.stencil();
        let b = st.default_bindings();
        let (nx, ny, nz) = input.extents();
        let mut out = DenseGrid::new(nx, ny, nz, input.halo());
        reference::apply(&st, &b, input, &mut out).unwrap();
        out
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// If the analyzer accepts a mutant against the declared stencil,
        /// executing it must reproduce the scalar reference: acceptance is
        /// a semantic proof, not a heuristic.
        #[test]
        fn accepted_mutants_are_numerically_correct(site in 0usize..4096, pick in 0usize..8) {
            let shape = StencilShape::star(1);
            let (k, expected) = subject(shape, LayoutKind::Brick, 16);
            let i = site % k.ops.len();
            let muts = mutants_at(&k, i);
            let (_label, mutant) = &muts[pick % muts.len()];
            if !is_rejected(mutant, &expected) {
                let mut input = DenseGrid::new(16, 8, 8, shape.radius as usize);
                input.fill_test_pattern();
                let expect = reference_output(shape, &input);
                let got = brick_vm::run_numeric_dense(
                    &brick_vm::KernelSpec::Vector(mutant.clone()),
                    &input,
                )
                .expect("accepted mutant must execute");
                prop_assert!(
                    got.max_rel_diff(&expect) < 1e-12,
                    "analyzer accepted a numerically wrong mutant"
                );
            }
        }
    }
}
