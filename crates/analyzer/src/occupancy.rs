//! Pass 4 — register-budget and occupancy lints.
//!
//! Recomputes the kernel's register high-water mark from op-level
//! liveness and prices it against each architecture's budget
//! ([`ArchBudget`]), mirroring the simulator's best-case compiler model:
//! one f64 vector register is two 32-bit architectural registers, plus a
//! fixed prologue overhead. Kernels whose demand exceeds the per-thread
//! ceiling will spill ([`LintCode::WillSpill`]); kernels whose demand
//! caps resident warps below the bandwidth-saturation point run
//! under-occupied ([`LintCode::LowOccupancy`]). A declared `num_regs`
//! above the recomputed high-water mark is flagged as
//! [`LintCode::OverProvisionedRegs`].

use brick_codegen::VectorKernel;

use crate::diag::{Diagnostic, LintCode, Report};

/// Fixed per-thread architectural register overhead (prologue, block
/// indices) — the simulator's best-case compiler model uses the same
/// constant.
pub const REG_OVERHEAD: u32 = 16;

/// The slice of a GPU architecture the occupancy lint needs.
///
/// Kept free of any simulator dependency; `gpu-sim` converts its
/// `GpuArch` into one of these.
#[derive(Debug, Clone, PartialEq)]
pub struct ArchBudget {
    /// Architecture display name, e.g. `"A100"`.
    pub name: String,
    /// Warp/wavefront width in lanes; the lint only applies to kernels of
    /// this vector width.
    pub simd_width: usize,
    /// Architectural 32-bit registers available per thread.
    pub max_regs_per_thread: u32,
    /// Register-file capacity per SM in 32-bit registers.
    pub regfile_per_sm: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Occupancy below which the memory system stops saturating.
    pub bw_saturation_occupancy: f64,
}

/// Register high-water mark recomputed from op-level liveness, under the
/// same release discipline as the linear-scan allocator: a value is live
/// from its definition to its last use before the register is redefined,
/// and a dying operand's slot is released *before* the same op's
/// definition is counted (so `acc' ← acc + x·c` costs one register, not
/// two). For allocator output this equals `num_regs`; a larger declared
/// `num_regs` means the allocation is wasteful.
pub fn max_live(kernel: &VectorKernel) -> u32 {
    let n = kernel.num_regs;
    let num_ops = kernel.ops.len();
    // Backward scan: reconstruct, for each definition, the last use of its
    // value (the first use seen walking backwards before the def).
    let mut pending_use: Vec<Option<usize>> = vec![None; n];
    let mut releases = vec![0u32; num_ops]; // value deaths at each op
    let mut def_unread = vec![false; num_ops];
    for (i, op) in kernel.ops.iter().enumerate().rev() {
        // Process the def before the uses so an op reading and redefining
        // the same register attributes the read to the *previous* value.
        if let Some(d) = op.def() {
            let d = d as usize;
            if d < n {
                match pending_use[d] {
                    Some(j) => releases[j] += 1,
                    None => def_unread[i] = true,
                }
                pending_use[d] = None;
            }
        }
        for r in op.uses() {
            let r = r as usize;
            if r < n && pending_use[r].is_none() {
                pending_use[r] = Some(i);
            }
        }
    }
    let mut live: i64 = 0;
    let mut peak: i64 = 0;
    for (i, op) in kernel.ops.iter().enumerate() {
        live -= releases[i] as i64;
        if op.def().is_some_and(|d| (d as usize) < n) {
            live += 1;
            peak = peak.max(live);
            if def_unread[i] {
                live -= 1;
            }
        }
    }
    peak.max(0) as u32
}

/// Architectural register demand per thread under the best-case compiler:
/// two 32-bit registers per live f64 plus fixed overhead.
pub fn reg_demand(vector_regs: u32) -> u32 {
    2 * vector_regs + REG_OVERHEAD
}

/// Run the occupancy lints against each matching budget.
///
/// Precondition: the verifier pass found no errors.
pub fn run(kernel: &VectorKernel, budgets: &[ArchBudget], report: &mut Report) {
    let _span = brick_obs::span_cat("lint:occupancy", "lint");
    let live = max_live(kernel);
    if (kernel.num_regs as u32) > live {
        report.push(
            Diagnostic::global(
                LintCode::OverProvisionedRegs,
                format!(
                    "kernel declares {} registers but at most {live} are ever \
                     simultaneously live",
                    kernel.num_regs
                ),
            )
            .with_help("re-run register allocation to shrink the footprint"),
        );
    }
    let demand = reg_demand(kernel.num_regs as u32);
    for b in budgets {
        if b.simd_width != kernel.width {
            continue;
        }
        if demand > b.max_regs_per_thread {
            report.push(
                Diagnostic::global(
                    LintCode::WillSpill,
                    format!(
                        "register demand {demand}/thread exceeds {} on {} ({} available): \
                         the compiler will spill",
                        b.max_regs_per_thread, b.name, b.max_regs_per_thread
                    ),
                )
                .with_help("switch to the scatter schedule or shrink the block"),
            );
            continue; // occupancy is meaningless once spilling dominates
        }
        let width = b.simd_width as u32;
        let by_regs = b.regfile_per_sm / (demand * width).max(1);
        let by_threads = b.max_threads_per_sm / width.max(1);
        let blocks = by_regs.min(by_threads).min(b.max_blocks_per_sm).max(1);
        // Vector kernels launch one warp per block.
        let max_warps = (b.max_threads_per_sm / width.max(1)).max(1);
        let occ = blocks as f64 / max_warps as f64;
        if occ < b.bw_saturation_occupancy && by_regs < by_threads.min(b.max_blocks_per_sm) {
            report.push(
                Diagnostic::global(
                    LintCode::LowOccupancy,
                    format!(
                        "register demand {demand}/thread limits {} to {blocks} resident \
                         block(s)/SM — occupancy {:.0}% is below the {:.0}% needed to \
                         saturate bandwidth",
                        b.name,
                        occ * 100.0,
                        b.bw_saturation_occupancy * 100.0
                    ),
                )
                .with_help("fewer live rows (scatter schedule) would raise occupancy"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::tiny_kernel;

    fn budget(width: usize, max_regs: u32) -> ArchBudget {
        ArchBudget {
            name: "test".into(),
            simd_width: width,
            max_regs_per_thread: max_regs,
            regfile_per_sm: 65_536,
            max_threads_per_sm: 2_048,
            max_blocks_per_sm: 32,
            bw_saturation_occupancy: 0.25,
        }
    }

    #[test]
    fn tiny_kernel_max_live_is_one() {
        // Load r0, Mul r0 <- r0·c (operand dies into the def), Store r0.
        assert_eq!(max_live(&tiny_kernel()), 1);
    }

    #[test]
    fn disjoint_values_raise_the_peak() {
        // Two rows live together before the first is consumed.
        let mut k = tiny_kernel();
        k.num_regs = 2;
        k.ops = vec![
            brick_codegen::VOp::LoadRow {
                dst: 0,
                rx: 0,
                ry: 0,
                rz: 0,
                lane0: 0,
                lanes: 4,
            },
            brick_codegen::VOp::LoadRow {
                dst: 1,
                rx: 0,
                ry: 1,
                rz: 0,
                lane0: 0,
                lanes: 4,
            },
            brick_codegen::VOp::Add { dst: 0, a: 0, b: 1 },
            brick_codegen::VOp::StoreRow {
                src: 0,
                ry: 0,
                rz: 0,
            },
        ];
        assert_eq!(max_live(&k), 2);
    }

    #[test]
    fn tiny_kernel_fits_generous_budget() {
        let k = tiny_kernel();
        let mut r = Report::new(&k.name);
        run(&k, &[budget(4, 255)], &mut r);
        assert!(r.diagnostics.is_empty(), "{r}");
    }

    #[test]
    fn spill_warned_when_budget_too_small() {
        let k = tiny_kernel();
        let mut r = Report::new(&k.name);
        run(&k, &[budget(4, reg_demand(k.num_regs as u32) - 1)], &mut r);
        assert_eq!(r.with_code(LintCode::WillSpill).len(), 1, "{r}");
    }

    #[test]
    fn mismatched_width_budgets_are_skipped() {
        let k = tiny_kernel();
        let mut r = Report::new(&k.name);
        run(&k, &[budget(32, 1)], &mut r);
        assert!(r.diagnostics.is_empty(), "{r}");
    }

    #[test]
    fn over_provisioned_regs_flagged() {
        let mut k = tiny_kernel();
        k.num_regs = 5;
        let mut r = Report::new(&k.name);
        run(&k, &[], &mut r);
        assert_eq!(r.with_code(LintCode::OverProvisionedRegs).len(), 1, "{r}");
    }

    #[test]
    fn low_occupancy_warned_when_regs_bind() {
        let k = tiny_kernel();
        let mut r = Report::new(&k.name);
        // Tight register file: demand 20 × width 4 = 80 regs/block, file of
        // 160 → 2 blocks vs 512 max warps → far below saturation.
        let b = ArchBudget {
            regfile_per_sm: 160,
            ..budget(4, 255)
        };
        run(&k, &[b], &mut r);
        assert_eq!(r.with_code(LintCode::LowOccupancy).len(), 1, "{r}");
    }
}
