//! # brick-lint
//!
//! Static kernel verifier and lint pipeline over the vector IR.
//!
//! The code generator (paper §3) is trusted to emit correct blocked
//! stencil kernels; this crate makes that trust machine-checkable.
//! [`analyze`] runs four passes over a [`VectorKernel`] and collects
//! structured diagnostics ([`Report`]) with stable `BLxxx` codes, op-index
//! spans, rustc-style rendering and JSON output:
//!
//! 1. **verifier** ([`verifier`]) — structural dataflow: def-before-use,
//!    register/lane/coefficient bounds, shift distances, store coverage,
//!    and row-coordinate legality against the one-block adjacency reach;
//! 2. **footprint** ([`footprint`]) — abstract interpretation proving each
//!    stored output lane combines exactly the declared stencil's taps with
//!    the declared weights, without executing the kernel;
//! 3. **reuse** ([`reuse`]) — duplicate row loads and redundant shifts the
//!    generator's §3 register-reuse optimization should have eliminated;
//! 4. **occupancy** ([`occupancy`]) — register liveness priced against
//!    per-architecture budgets ([`ArchBudget`]): spill and occupancy
//!    warnings for A100/MI250X/PVC-class register files.
//!
//! Passes 2–4 only run when the verifier finds no errors, so they may
//! assume in-range indices. Each pass runs under a `brick-obs` span
//! (category `lint`) for timing.

pub mod bounds;
pub mod diag;
pub mod footprint;
pub mod occupancy;
pub mod reuse;
pub mod verifier;

pub use bounds::{prove_bounds, BoundsProof};
pub use diag::{Diagnostic, LintCode, Report, Severity};
pub use footprint::{load_reach, ExpectedStencil, Footprint};
pub use occupancy::ArchBudget;

use brick_codegen::{VOp, VectorKernel};
use std::hash::{Hash, Hasher};

/// What to check a kernel against.
#[derive(Debug, Clone, Default)]
pub struct LintOptions {
    /// Declared stencil the footprint pass proves the kernel computes;
    /// without one the pass still proves all output lanes agree.
    pub expected: Option<ExpectedStencil>,
    /// Architecture register budgets for the occupancy pass (budgets whose
    /// SIMD width differs from the kernel's are skipped).
    pub budgets: Vec<ArchBudget>,
}

/// Result of [`analyze`]: the diagnostics plus, when proven, the kernel's
/// memory footprint.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// All findings, across passes.
    pub report: Report,
    /// Proven footprint — `None` whenever any pass reported an error.
    pub footprint: Option<Footprint>,
}

impl Analysis {
    /// True if the kernel passed every error-severity check.
    pub fn is_clean(&self) -> bool {
        !self.report.has_errors()
    }
}

/// Run all analyzer passes over `kernel`.
pub fn analyze(kernel: &VectorKernel, opts: &LintOptions) -> Analysis {
    let _span = brick_obs::span_cat("lint:analyze", "lint");
    let mut report = Report::new(&kernel.name);
    verifier::run(kernel, &mut report);
    let mut fp = None;
    if !report.has_errors() {
        fp = footprint::run(kernel, opts.expected.as_ref(), &mut report);
        reuse::run(kernel, &mut report);
        occupancy::run(kernel, &opts.budgets, &mut report);
    }
    brick_obs::counter_add("lint.kernels_analyzed", 1);
    if report.has_errors() {
        brick_obs::counter_add("lint.kernels_rejected", 1);
    }
    Analysis {
        footprint: if report.has_errors() { None } else { fp },
        report,
    }
}

/// Verify `kernel` is well-formed and self-consistent; the entry point the
/// VM uses before executing anything. Returns the proven footprint (whose
/// `reach` drives ghost-coverage checks) or the full report on failure.
pub fn verify(kernel: &VectorKernel) -> Result<Footprint, Box<Report>> {
    let a = analyze(kernel, &LintOptions::default());
    match a.footprint {
        Some(fp) if a.is_clean() => Ok(fp),
        _ => Err(Box::new(a.report)),
    }
}

/// Thread-safe memo of verified kernel fingerprints.
///
/// Sweep runners verify each distinct generated program once and then
/// share the verdict across the whole `(GPU, model, config)` matrix; with
/// the parallel scheduler many cells race to verify the same kernel, so
/// the memo is a mutex-guarded set rather than a `&mut HashMap`.
/// [`check_or_insert`](Self::check_or_insert) is the one atomic step:
/// callers that get `false` own the (idempotent) verification work for
/// that fingerprint.
#[derive(Debug, Default)]
pub struct FingerprintCache {
    seen: std::sync::Mutex<std::collections::HashSet<u64>>,
}

impl FingerprintCache {
    /// An empty memo.
    pub fn new() -> FingerprintCache {
        FingerprintCache::default()
    }

    /// Record `fp` as verified; returns `true` when it was already
    /// present (a cache hit — verification can be skipped).
    pub fn check_or_insert(&self, fp: u64) -> bool {
        !self
            .seen
            .lock()
            .expect("fingerprint memo poisoned")
            .insert(fp)
    }

    /// Number of distinct fingerprints verified so far.
    pub fn len(&self) -> usize {
        self.seen.lock().expect("fingerprint memo poisoned").len()
    }

    /// True when nothing has been verified yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Stable content hash of a kernel, for verification caching: two kernels
/// with equal fingerprints are byte-identical programs.
///
/// The hash is deterministic across processes and runs
/// (`DefaultHasher::new()` uses fixed keys), which lets on-disk result
/// caches key by it.
pub fn fingerprint(kernel: &VectorKernel) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    kernel.name.hash(&mut h);
    kernel.width.hash(&mut h);
    kernel.block.bx.hash(&mut h);
    kernel.block.by.hash(&mut h);
    kernel.block.bz.hash(&mut h);
    kernel.layout.hash(&mut h);
    kernel.strategy.hash(&mut h);
    kernel.temporal_degree.hash(&mut h);
    kernel.num_regs.hash(&mut h);
    for c in &kernel.coeffs {
        c.to_bits().hash(&mut h);
    }
    for op in &kernel.ops {
        match *op {
            VOp::LoadRow {
                dst,
                rx,
                ry,
                rz,
                lane0,
                lanes,
            } => (0u8, dst, rx as i16, ry, rz, lane0, lanes).hash(&mut h),
            VOp::ShiftX { dst, src, edge, dx } => (1u8, dst, src, edge, dx).hash(&mut h),
            VOp::Add { dst, a, b } => (2u8, dst, a, b).hash(&mut h),
            VOp::Mul { dst, a, coeff } => (3u8, dst, a, coeff).hash(&mut h),
            VOp::Fma { dst, acc, a, coeff } => (4u8, dst, acc, a, coeff).hash(&mut h),
            VOp::StoreRow { src, ry, rz } => (5u8, src, ry, rz).hash(&mut h),
        }
    }
    h.finish()
}

#[cfg(test)]
pub(crate) mod testkit {
    use brick_codegen::{KernelStats, LayoutKind, Strategy, VOp, VectorKernel};
    use brick_core::BrickDims;

    /// Minimal clean kernel: a 4-lane `out = 2·in` over a 4×1×1 block.
    pub fn tiny_kernel() -> VectorKernel {
        let ops = vec![
            VOp::LoadRow {
                dst: 0,
                rx: 0,
                ry: 0,
                rz: 0,
                lane0: 0,
                lanes: 4,
            },
            VOp::Mul {
                dst: 0,
                a: 0,
                coeff: 0,
            },
            VOp::StoreRow {
                src: 0,
                ry: 0,
                rz: 0,
            },
        ];
        VectorKernel {
            name: "tiny".into(),
            width: 4,
            block: BrickDims::new(4, 1, 1),
            layout: LayoutKind::Brick,
            strategy: Strategy::Gather,
            temporal_degree: 1,
            coeffs: vec![2.0],
            stats: KernelStats::from_ops(&ops, 1),
            ops,
            num_regs: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::tiny_kernel;
    use brick_codegen::{generate, CodegenOptions, LayoutKind};
    use brick_dsl::shape::StencilShape;

    #[test]
    fn fingerprint_cache_is_hit_after_insert_and_shares_across_threads() {
        let cache = FingerprintCache::new();
        assert!(cache.is_empty());
        let fp = fingerprint(&tiny_kernel());
        assert!(!cache.check_or_insert(fp), "first sight is a miss");
        assert!(cache.check_or_insert(fp), "second sight is a hit");
        assert_eq!(cache.len(), 1);
        // concurrent insertion of many fingerprints loses nothing
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let cache = &cache;
                s.spawn(move || {
                    for i in 0..100u64 {
                        cache.check_or_insert(t ^ i.wrapping_mul(0x9E3779B97F4A7C15));
                    }
                });
            }
        });
        assert!(cache.len() > 1);
        assert!(cache.check_or_insert(fp));
    }

    #[test]
    fn fingerprint_is_stable_across_hasher_instances() {
        let k = tiny_kernel();
        assert_eq!(fingerprint(&k), fingerprint(&k));
    }

    #[test]
    fn paper_suite_verifies_clean_against_declared_stencils() {
        for shape in StencilShape::paper_suite() {
            for layout in [LayoutKind::Brick, LayoutKind::Array] {
                let st = shape.stencil();
                let b = st.default_bindings();
                let k = generate(&st, &b, layout, 16, CodegenOptions::default()).unwrap();
                let opts = LintOptions {
                    expected: Some(ExpectedStencil::resolve(&st, &b).unwrap()),
                    budgets: Vec::new(),
                };
                let a = analyze(&k, &opts);
                assert!(
                    a.is_clean(),
                    "{shape} {layout}:\n{}",
                    a.report.render(Some(&k))
                );
                let fp = a.footprint.unwrap();
                assert_eq!(fp.taps.len(), st.points());
                let r = shape.radius as i64;
                assert_eq!(fp.reach, [r, r, r], "{shape} {layout}");
            }
        }
    }

    #[test]
    fn fused_paper_suite_verifies_clean_against_composed_stencils() {
        // Acceptance criterion: the footprint verifier proves every
        // feasible T-fused paper kernel against the declared T-step
        // composition with zero false positives, and the proven reach is
        // T·r per axis.
        for shape in StencilShape::paper_suite() {
            let max_t = 4 / shape.radius; // T·r ≤ by = bz = 4
            for t in 2..=max_t {
                for layout in [LayoutKind::Brick, LayoutKind::Array] {
                    let st = shape.stencil();
                    let b = st.default_bindings();
                    let k = generate(
                        &st,
                        &b,
                        layout,
                        16,
                        CodegenOptions {
                            temporal_degree: t,
                            ..Default::default()
                        },
                    )
                    .unwrap();
                    let opts = LintOptions {
                        expected: Some(ExpectedStencil::resolve_temporal(&st, &b, t).unwrap()),
                        budgets: Vec::new(),
                    };
                    let a = analyze(&k, &opts);
                    assert!(
                        a.is_clean(),
                        "{shape} t{t} {layout}:\n{}",
                        a.report.render(Some(&k))
                    );
                    let fp = a.footprint.unwrap();
                    let r = t as i64 * shape.radius as i64;
                    assert_eq!(fp.reach, [r, r, r], "{shape} t{t} {layout}");
                }
            }
        }
    }

    #[test]
    fn fused_kernel_rejected_against_wrong_degree() {
        // A T=2 kernel must not verify against the T=1 declaration (and
        // vice versa) — the composition is part of the contract.
        let st = StencilShape::star(1).stencil();
        let b = st.default_bindings();
        let k2 = generate(
            &st,
            &b,
            LayoutKind::Brick,
            16,
            CodegenOptions {
                temporal_degree: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let against_t1 = LintOptions {
            expected: Some(ExpectedStencil::resolve(&st, &b).unwrap()),
            budgets: Vec::new(),
        };
        assert!(!analyze(&k2, &against_t1).is_clean());
        let k1 = generate(&st, &b, LayoutKind::Brick, 16, CodegenOptions::default()).unwrap();
        let against_t2 = LintOptions {
            expected: Some(ExpectedStencil::resolve_temporal(&st, &b, 2).unwrap()),
            budgets: Vec::new(),
        };
        assert!(!analyze(&k1, &against_t2).is_clean());
        assert_ne!(fingerprint(&k1), fingerprint(&k2));
    }

    #[test]
    fn verify_accepts_clean_and_rejects_broken() {
        let k = tiny_kernel();
        let fp = verify(&k).unwrap();
        assert_eq!(fp.reach, [0, 0, 0]);

        let mut bad = tiny_kernel();
        bad.ops.pop();
        let report = verify(&bad).unwrap_err();
        assert!(report.has_errors());
    }

    #[test]
    fn fingerprint_distinguishes_programs() {
        let k = tiny_kernel();
        let same = tiny_kernel();
        assert_eq!(fingerprint(&k), fingerprint(&same));
        let mut coeff = tiny_kernel();
        coeff.coeffs[0] = 2.5;
        assert_ne!(fingerprint(&k), fingerprint(&coeff));
        let mut shifted = tiny_kernel();
        if let VOp::LoadRow { ry, .. } = &mut shifted.ops[0] {
            *ry = 1;
        }
        assert_ne!(fingerprint(&k), fingerprint(&shifted));
    }

    #[test]
    fn analysis_records_obs_counters() {
        let before = brick_obs::metrics::snapshot();
        let count_of = |s: &brick_obs::MetricsSnapshot, name: &str| {
            s.counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        let base = count_of(&before, "lint.kernels_analyzed");
        analyze(&tiny_kernel(), &LintOptions::default());
        let after = brick_obs::metrics::snapshot();
        assert!(count_of(&after, "lint.kernels_analyzed") > base);
    }
}
