//! Structured diagnostics: lint codes, severities, op-index spans, and
//! both rustc-style and machine-readable (JSON) rendering.
//!
//! Every pass reports through a [`Report`]; nothing in the analyzer
//! formats errors as bare strings. A diagnostic is anchored to the
//! offending op index where one exists, so a rejected kernel always names
//! the instruction that broke the invariant.

use brick_codegen::VectorKernel;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// Advisory: the kernel is well-formed but sub-optimal or suspicious.
    Warning,
    /// The kernel violates an invariant and must not be executed.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// Every lint the analyzer can raise, with a stable `BLxxx` code, plus
/// the brick-safe proof obligations (`BSxxx`) the VM's native-backend
/// safety prover discharges over compiled plans.
///
/// `BL0xx` are structural errors (verifier pass), `BL02x` semantic errors
/// (footprint pass), `BL1xx` warnings (dead code, reuse, occupancy).
/// `BSxxx` codes are raised by `brick_vm`'s compile-time safety pass over
/// lowered `Plan`/`RowProg` programs; each names one precondition the
/// `unsafe` SIMD row backends rely on (see DESIGN.md §13 for the
/// obligation catalog). Any `BSxxx` finding means the plan must not be
/// dispatched to a native backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LintCode {
    /// Block x extent disagrees with the vector width.
    WidthMismatch,
    /// A register id is outside the kernel's declared register count.
    RegOutOfRange,
    /// A register is read before any op wrote it.
    UseBeforeDef,
    /// A load's lane range escapes `[0, width)` or is empty.
    LaneRange,
    /// A shift distance is zero or at least the vector width.
    ShiftInvalid,
    /// A load's `rx` selects a block beyond the ±x neighbours.
    RxOutsideAdjacency,
    /// A load's `ry`/`rz` row coordinate escapes the home block by more
    /// than one neighbouring block.
    RowOutsideAdjacency,
    /// A store row lies outside the home block.
    StoreOutsideBlock,
    /// The same home row is stored more than once.
    DuplicateStore,
    /// The kernel does not store every row of its home block.
    IncompleteStores,
    /// A coefficient index is outside the coefficient table.
    CoeffIndexOutOfRange,
    /// An output lane reads a point the declared stencil does not, or
    /// misses one it does.
    FootprintMismatch,
    /// An output lane reads the right point with the wrong weight.
    CoeffValueMismatch,
    /// Output lanes/rows disagree about the stencil they compute
    /// (self-consistency check when no expected stencil is supplied).
    InconsistentFootprint,
    /// A register is written but the value is never read.
    DeadDef,
    /// The same input row is loaded more than once.
    DuplicateLoad,
    /// A shift recomputes a value still held in a live register.
    RedundantShift,
    /// A coefficient-table entry is never referenced by any op.
    UnusedCoefficient,
    /// The kernel declares more registers than are ever simultaneously
    /// live.
    OverProvisionedRegs,
    /// Register demand exceeds an architecture's per-thread budget: the
    /// compiler will spill.
    WillSpill,
    /// Register demand caps resident warps below the bandwidth-saturation
    /// occupancy of an architecture.
    LowOccupancy,
    /// brick-safe: a tap row's resolved address range can escape its
    /// operand slab for some block of some grid.
    UnsafeTapEscapesSlab,
    /// brick-safe: a brick tap names a neighbour outside the 27-entry
    /// adjacency row.
    UnsafeTapNeighborInvalid,
    /// brick-safe: a split tap's seam shift distance is zero or at least
    /// the vector width.
    UnsafeSeamInvalid,
    /// brick-safe: a tape op (or fast-row program) references a tap slot
    /// outside the kernel's tap table, or the table exceeds the executors'
    /// fixed capacity.
    UnsafeTapIndexInvalid,
    /// brick-safe: a row program's value stack underflows, overflows the
    /// fixed evaluator stack, or its declared depth disagrees with the
    /// tape.
    UnsafeStackDiscipline,
    /// brick-safe: an output row offset escapes the block volume, is not
    /// row-aligned, or disagrees with its declared row coordinates.
    UnsafeStoreEscapesBlock,
    /// brick-safe: two row programs write overlapping output rows, so
    /// streaming-store ordering is not discharged by disjointness.
    UnsafeStoreOverlap,
    /// brick-safe: the plan's vector width is not a whole number of SIMD
    /// lanes for every native backend, or a fused plan's block x extent
    /// disagrees with the width.
    UnsafeLaneGeometry,
    /// brick-safe: a step program row offset (or lane range) escapes the
    /// register file the plan sizes.
    UnsafeRegRowEscapesFile,
    /// brick-safe: a step shift distance is invalid, or an aliased shift
    /// was not routed through the scratch row.
    UnsafeShiftInvalid,
    /// brick-safe: a row program's fast-row form diverges from its tape.
    UnsafeFastRowDivergent,
}

impl LintCode {
    /// Stable diagnostic code, e.g. `"BL007"`.
    pub fn code(&self) -> &'static str {
        match self {
            LintCode::WidthMismatch => "BL001",
            LintCode::RegOutOfRange => "BL002",
            LintCode::UseBeforeDef => "BL003",
            LintCode::LaneRange => "BL004",
            LintCode::ShiftInvalid => "BL005",
            LintCode::RxOutsideAdjacency => "BL006",
            LintCode::RowOutsideAdjacency => "BL007",
            LintCode::StoreOutsideBlock => "BL008",
            LintCode::DuplicateStore => "BL009",
            LintCode::IncompleteStores => "BL010",
            LintCode::CoeffIndexOutOfRange => "BL011",
            LintCode::FootprintMismatch => "BL020",
            LintCode::CoeffValueMismatch => "BL021",
            LintCode::InconsistentFootprint => "BL022",
            LintCode::DeadDef => "BL100",
            LintCode::DuplicateLoad => "BL101",
            LintCode::RedundantShift => "BL102",
            LintCode::UnusedCoefficient => "BL103",
            LintCode::OverProvisionedRegs => "BL104",
            LintCode::WillSpill => "BL110",
            LintCode::LowOccupancy => "BL111",
            LintCode::UnsafeTapEscapesSlab => "BS001",
            LintCode::UnsafeTapNeighborInvalid => "BS002",
            LintCode::UnsafeSeamInvalid => "BS003",
            LintCode::UnsafeTapIndexInvalid => "BS004",
            LintCode::UnsafeStackDiscipline => "BS005",
            LintCode::UnsafeStoreEscapesBlock => "BS006",
            LintCode::UnsafeStoreOverlap => "BS007",
            LintCode::UnsafeLaneGeometry => "BS008",
            LintCode::UnsafeRegRowEscapesFile => "BS009",
            LintCode::UnsafeShiftInvalid => "BS010",
            LintCode::UnsafeFastRowDivergent => "BS011",
        }
    }

    /// Severity class of the lint.
    pub fn severity(&self) -> Severity {
        match self {
            LintCode::WidthMismatch
            | LintCode::RegOutOfRange
            | LintCode::UseBeforeDef
            | LintCode::LaneRange
            | LintCode::ShiftInvalid
            | LintCode::RxOutsideAdjacency
            | LintCode::RowOutsideAdjacency
            | LintCode::StoreOutsideBlock
            | LintCode::DuplicateStore
            | LintCode::IncompleteStores
            | LintCode::CoeffIndexOutOfRange
            | LintCode::FootprintMismatch
            | LintCode::CoeffValueMismatch
            | LintCode::InconsistentFootprint
            | LintCode::UnsafeTapEscapesSlab
            | LintCode::UnsafeTapNeighborInvalid
            | LintCode::UnsafeSeamInvalid
            | LintCode::UnsafeTapIndexInvalid
            | LintCode::UnsafeStackDiscipline
            | LintCode::UnsafeStoreEscapesBlock
            | LintCode::UnsafeStoreOverlap
            | LintCode::UnsafeLaneGeometry
            | LintCode::UnsafeRegRowEscapesFile
            | LintCode::UnsafeShiftInvalid
            | LintCode::UnsafeFastRowDivergent => Severity::Error,
            LintCode::DeadDef
            | LintCode::DuplicateLoad
            | LintCode::RedundantShift
            | LintCode::UnusedCoefficient
            | LintCode::OverProvisionedRegs
            | LintCode::WillSpill
            | LintCode::LowOccupancy => Severity::Warning,
        }
    }
}

/// One finding: a lint code anchored to an op index with a message and an
/// optional help line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Which lint fired.
    pub code: LintCode,
    /// Index of the offending op in the kernel's instruction stream, if
    /// the finding is anchored to one.
    pub op: Option<usize>,
    /// Human-readable statement of the violation.
    pub message: String,
    /// Optional remedy or context line.
    pub help: Option<String>,
}

impl Diagnostic {
    /// A diagnostic anchored to op `op`.
    pub fn at(code: LintCode, op: usize, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            op: Some(op),
            message: message.into(),
            help: None,
        }
    }

    /// A kernel-level diagnostic with no op anchor.
    pub fn global(code: LintCode, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            op: None,
            message: message.into(),
            help: None,
        }
    }

    /// Attach a help line.
    pub fn with_help(mut self, help: impl Into<String>) -> Self {
        self.help = Some(help.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {}",
            self.code.severity(),
            self.code.code(),
            self.message
        )?;
        if let Some(op) = self.op {
            write!(f, " (op {op})")?;
        }
        Ok(())
    }
}

/// All findings for one kernel, across all passes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// Name of the analyzed kernel.
    pub kernel: String,
    /// Findings in pass order, errors and warnings interleaved.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report for `kernel`.
    pub fn new(kernel: impl Into<String>) -> Self {
        Report {
            kernel: kernel.into(),
            diagnostics: Vec::new(),
        }
    }

    /// Record a finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.code.severity() == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics.len() - self.error_count()
    }

    /// True if any finding is an error.
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// Findings carrying a given code.
    pub fn with_code(&self, code: LintCode) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.code == code).collect()
    }

    /// Rustc-style rendering. When the kernel is supplied, each anchored
    /// diagnostic quotes the offending instruction.
    pub fn render(&self, kernel: Option<&VectorKernel>) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for d in &self.diagnostics {
            let _ = writeln!(
                out,
                "{}[{}]: {}",
                d.code.severity(),
                d.code.code(),
                d.message
            );
            match (d.op, kernel) {
                (Some(op), Some(k)) => {
                    let text = k
                        .ops
                        .get(op)
                        .map(|o| format!("{o:?}"))
                        .unwrap_or_else(|| "<op index out of range>".into());
                    let _ = writeln!(out, "  --> {}[op {op}]: {text}", self.kernel);
                }
                (Some(op), None) => {
                    let _ = writeln!(out, "  --> {}[op {op}]", self.kernel);
                }
                (None, _) => {
                    let _ = writeln!(out, "  --> {}", self.kernel);
                }
            }
            if let Some(h) = &d.help {
                let _ = writeln!(out, "  = help: {h}");
            }
        }
        let _ = write!(
            out,
            "{}: {} error(s), {} warning(s)",
            self.kernel,
            self.error_count(),
            self.warning_count()
        );
        out
    }

    /// Machine-readable JSON rendering.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("report serializes")
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: ", self.kernel)?;
        let mut first = true;
        for d in &self.diagnostics {
            if !first {
                f.write_str("; ")?;
            }
            first = false;
            write!(f, "{d}")?;
        }
        if first {
            f.write_str("clean")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severities_partition_the_codes() {
        for code in [
            LintCode::UseBeforeDef,
            LintCode::FootprintMismatch,
            LintCode::RowOutsideAdjacency,
        ] {
            assert_eq!(code.severity(), Severity::Error);
        }
        for code in [
            LintCode::DeadDef,
            LintCode::DuplicateLoad,
            LintCode::WillSpill,
        ] {
            assert_eq!(code.severity(), Severity::Warning);
        }
    }

    #[test]
    fn report_counts_and_render() {
        let mut r = Report::new("k");
        r.push(Diagnostic::at(LintCode::UseBeforeDef, 3, "r2 read before write").with_help("x"));
        r.push(Diagnostic::global(
            LintCode::DuplicateLoad,
            "row loaded twice",
        ));
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warning_count(), 1);
        assert!(r.has_errors());
        let text = r.render(None);
        assert!(text.contains("error[BL003]"));
        assert!(text.contains("op 3"));
        assert!(text.contains("= help: x"));
        assert!(text.contains("1 error(s), 1 warning(s)"));
    }

    #[test]
    fn json_roundtrip() {
        let mut r = Report::new("k");
        r.push(Diagnostic::at(
            LintCode::CoeffValueMismatch,
            7,
            "bad weight",
        ));
        let v = serde_json::parse(&r.to_json()).unwrap();
        let back: Report = serde_json::from_value(&v).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn codes_are_unique() {
        let all = [
            LintCode::WidthMismatch,
            LintCode::RegOutOfRange,
            LintCode::UseBeforeDef,
            LintCode::LaneRange,
            LintCode::ShiftInvalid,
            LintCode::RxOutsideAdjacency,
            LintCode::RowOutsideAdjacency,
            LintCode::StoreOutsideBlock,
            LintCode::DuplicateStore,
            LintCode::IncompleteStores,
            LintCode::CoeffIndexOutOfRange,
            LintCode::FootprintMismatch,
            LintCode::CoeffValueMismatch,
            LintCode::InconsistentFootprint,
            LintCode::DeadDef,
            LintCode::DuplicateLoad,
            LintCode::RedundantShift,
            LintCode::UnusedCoefficient,
            LintCode::OverProvisionedRegs,
            LintCode::WillSpill,
            LintCode::LowOccupancy,
            LintCode::UnsafeTapEscapesSlab,
            LintCode::UnsafeTapNeighborInvalid,
            LintCode::UnsafeSeamInvalid,
            LintCode::UnsafeTapIndexInvalid,
            LintCode::UnsafeStackDiscipline,
            LintCode::UnsafeStoreEscapesBlock,
            LintCode::UnsafeStoreOverlap,
            LintCode::UnsafeLaneGeometry,
            LintCode::UnsafeRegRowEscapesFile,
            LintCode::UnsafeShiftInvalid,
            LintCode::UnsafeFastRowDivergent,
        ];
        let mut codes: Vec<&str> = all.iter().map(|c| c.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), all.len());
    }
}
