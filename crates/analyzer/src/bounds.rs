//! Bounds proof: the analyzer facts brick-vm's native backend relies on.
//!
//! The native executor (`brick_vm::native`) lowers the IR to pointer code
//! whose only guard rails are the invariants proved here. [`prove_bounds`]
//! is [`crate::verify`] plus a *second, independent* re-check of exactly
//! the op-level invariants the unsafe surface assumes — double-entry
//! bookkeeping, so a future verifier refactor that accidentally drops a
//! check cannot silently widen the unsafe surface. The returned
//! [`BoundsProof`] carries the kernel's [`fingerprint`](crate::fingerprint)
//! so a consumer can assert the proof still matches the kernel it is about
//! to execute.
//!
//! What the proof guarantees, per op:
//!
//! * every register index is `< num_regs`, so each pre-computed row offset
//!   `reg * width` stays inside a `num_regs * width` register file;
//! * every `LoadRow` lane range satisfies `0 < lanes` and
//!   `lane0 + lanes <= width`;
//! * every `ShiftX` distance satisfies `0 < |dx| < width`, so the two-copy
//!   lowering's ranges `[dx, width)` / `[0, dx)` are valid;
//! * every coefficient index is inside the coefficient table;
//! * every `StoreRow` row is inside the home block;
//! * the footprint pass's [`reach`](Footprint::reach) bounds every load
//!   address's distance outside the home block — the fact the executors
//!   check against ghost/halo coverage before touching grid storage.

use brick_codegen::{VOp, VectorKernel};

use crate::diag::{Diagnostic, LintCode, Report};
use crate::footprint::Footprint;

/// Machine-checked preconditions for lowering a kernel to native code.
///
/// Only [`prove_bounds`] constructs one, so holding a `BoundsProof` whose
/// [`covers`](Self::covers) returns `true` for a kernel certifies the
/// invariants above for that kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundsProof {
    /// Vector width the proof was established for.
    pub width: usize,
    /// Register count the row offsets were checked against.
    pub num_regs: usize,
    /// Per-axis load reach outside the home block (from the footprint
    /// pass), in elements.
    pub reach: [i64; 3],
    /// Fingerprint of the proven kernel ([`crate::fingerprint`]).
    pub fingerprint: u64,
}

impl BoundsProof {
    /// True when this proof was established for exactly `kernel`.
    pub fn covers(&self, kernel: &VectorKernel) -> bool {
        self.fingerprint == crate::fingerprint(kernel)
            && self.width == kernel.width
            && self.num_regs == kernel.num_regs
    }
}

/// Establish the bounds proof for `kernel`: full verification
/// ([`crate::verify`]) followed by the independent op-level re-check.
/// Any violation rejects the kernel with a structured report.
pub fn prove_bounds(kernel: &VectorKernel) -> Result<BoundsProof, Box<Report>> {
    let fp: Footprint = crate::verify(kernel)?;
    let mut report = Report::new(&kernel.name);
    recheck_ops(kernel, &mut report);
    if report.has_errors() {
        return Err(Box::new(report));
    }
    Ok(BoundsProof {
        width: kernel.width,
        num_regs: kernel.num_regs,
        reach: fp.reach,
        fingerprint: crate::fingerprint(kernel),
    })
}

/// The independent re-check: one linear pass asserting exactly the
/// invariants the native lowering consumes. Kept deliberately free of any
/// shared helper with the verifier pass.
fn recheck_ops(kernel: &VectorKernel, report: &mut Report) {
    let w = kernel.width;
    let nr = kernel.num_regs;
    let nc = kernel.coeffs.len();
    let (by, bz) = (kernel.block.by as i64, kernel.block.bz as i64);
    let reg = |r: u16, i: usize, report: &mut Report| {
        if (r as usize) >= nr {
            report.push(Diagnostic::at(
                LintCode::RegOutOfRange,
                i,
                format!("bounds proof: r{r} outside {nr} registers"),
            ));
        }
    };
    for (i, op) in kernel.ops.iter().enumerate() {
        match *op {
            VOp::LoadRow {
                dst, lane0, lanes, ..
            } => {
                reg(dst, i, report);
                if lanes == 0 || lane0 as usize + lanes as usize > w {
                    report.push(Diagnostic::at(
                        LintCode::LaneRange,
                        i,
                        format!("bounds proof: lanes {lane0}+{lanes} escape width {w}"),
                    ));
                }
            }
            VOp::ShiftX { dst, src, edge, dx } => {
                reg(dst, i, report);
                reg(src, i, report);
                reg(edge, i, report);
                if dx == 0 || (dx.unsigned_abs() as usize) >= w {
                    report.push(Diagnostic::at(
                        LintCode::ShiftInvalid,
                        i,
                        format!("bounds proof: shift {dx} invalid for width {w}"),
                    ));
                }
            }
            VOp::Add { dst, a, b } => {
                reg(dst, i, report);
                reg(a, i, report);
                reg(b, i, report);
            }
            VOp::Mul { dst, a, coeff } => {
                reg(dst, i, report);
                reg(a, i, report);
                if coeff as usize >= nc {
                    report.push(Diagnostic::at(
                        LintCode::CoeffIndexOutOfRange,
                        i,
                        format!("bounds proof: c{coeff} outside {nc} coefficients"),
                    ));
                }
            }
            VOp::Fma { dst, acc, a, coeff } => {
                reg(dst, i, report);
                reg(acc, i, report);
                reg(a, i, report);
                if coeff as usize >= nc {
                    report.push(Diagnostic::at(
                        LintCode::CoeffIndexOutOfRange,
                        i,
                        format!("bounds proof: c{coeff} outside {nc} coefficients"),
                    ));
                }
            }
            VOp::StoreRow { src, ry, rz } => {
                reg(src, i, report);
                if (ry as i64) < 0 || ry as i64 >= by || (rz as i64) < 0 || rz as i64 >= bz {
                    report.push(Diagnostic::at(
                        LintCode::StoreOutsideBlock,
                        i,
                        format!("bounds proof: store row ({ry},{rz}) outside home block"),
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brick_codegen::{generate, CodegenOptions, LayoutKind};
    use brick_dsl::shape::StencilShape;

    #[test]
    fn proof_established_for_the_paper_suite_and_covers_its_kernel() {
        for shape in StencilShape::paper_suite() {
            let st = shape.stencil();
            let b = st.default_bindings();
            for width in [16usize, 32] {
                let k =
                    generate(&st, &b, LayoutKind::Brick, width, CodegenOptions::default()).unwrap();
                let proof = prove_bounds(&k).unwrap();
                assert!(proof.covers(&k), "{shape} w{width}");
                assert_eq!(proof.width, width);
                assert_eq!(proof.num_regs, k.num_regs);
                assert_eq!(proof.reach, crate::load_reach(&k));
            }
        }
    }

    #[test]
    fn proof_does_not_cover_a_mutated_kernel() {
        let st = StencilShape::star(1).stencil();
        let b = st.default_bindings();
        let k = generate(&st, &b, LayoutKind::Brick, 16, CodegenOptions::default()).unwrap();
        let proof = prove_bounds(&k).unwrap();
        let mut other = k.clone();
        other.coeffs[0] += 1.0;
        assert!(!proof.covers(&other));
    }

    #[test]
    fn recheck_catches_out_of_range_ops_independently() {
        let st = StencilShape::star(1).stencil();
        let b = st.default_bindings();
        let k = generate(&st, &b, LayoutKind::Brick, 16, CodegenOptions::default()).unwrap();
        // Sabotage after the fact: the re-check must flag these even
        // without rerunning the full verifier.
        let mut bad = k.clone();
        if let Some(VOp::Fma { coeff, .. }) =
            bad.ops.iter_mut().find(|op| matches!(op, VOp::Fma { .. }))
        {
            *coeff = u16::MAX;
        }
        let mut report = Report::new(&bad.name);
        recheck_ops(&bad, &mut report);
        assert!(report.has_errors());
        assert!(!report.with_code(LintCode::CoeffIndexOutOfRange).is_empty());
    }
}
