//! Pass 3 — reuse lints.
//!
//! The paper's §3 register-reuse optimization promises each input row is
//! loaded once and each shuffled alignment is materialised once. This pass
//! checks the promise on the emitted code: a local value-numbering walk
//! flags rows loaded twice ([`LintCode::DuplicateLoad`]) and shifts that
//! recompute a value still held in a live register
//! ([`LintCode::RedundantShift`]).

use std::collections::HashMap;

use brick_codegen::{VOp, VectorKernel};

use crate::diag::{Diagnostic, LintCode, Report};

/// Symbolic value computed by an op, for value numbering.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum ValueKey {
    Load(i8, i16, i16, u16, u16),
    Shift(u64, u64, i16),
    Add(u64, u64),
    Mul(u64, u16),
    Fma(u64, u64, u16),
}

/// Run the reuse lints over `kernel`, appending findings to `report`.
///
/// Precondition: the verifier pass found no errors.
pub fn run(kernel: &VectorKernel, report: &mut Report) {
    let _span = brick_obs::span_cat("lint:reuse", "lint");
    let mut next_vn: u64 = 0;
    // Value number each op key resolves to (CSE table)…
    let mut numbering: HashMap<ValueKey, u64> = HashMap::new();
    // …what each register currently holds…
    let mut reg_vn: Vec<Option<u64>> = vec![None; kernel.num_regs];
    // …and how many registers currently hold each value.
    let mut live_copies: HashMap<u64, u32> = HashMap::new();
    let mut loaded_rows: HashMap<(i8, i16, i16), usize> = HashMap::new();

    let assign =
        |dst: u16, vn: u64, reg_vn: &mut Vec<Option<u64>>, live_copies: &mut HashMap<u64, u32>| {
            if let Some(old) = reg_vn[dst as usize].take() {
                if let Some(c) = live_copies.get_mut(&old) {
                    *c -= 1;
                }
            }
            reg_vn[dst as usize] = Some(vn);
            *live_copies.entry(vn).or_insert(0) += 1;
        };

    for (i, op) in kernel.ops.iter().enumerate() {
        let vn_of = |r: u16, next: &mut u64, reg_vn: &[Option<u64>]| {
            reg_vn[r as usize].unwrap_or_else(|| {
                // Unreachable after a clean verifier pass; keep the walk
                // total anyway.
                *next += 1;
                *next
            })
        };
        let key = match *op {
            VOp::LoadRow {
                rx,
                ry,
                rz,
                lane0,
                lanes,
                ..
            } => {
                if let Some(first) = loaded_rows.insert((rx, ry, rz), i) {
                    report.push(
                        Diagnostic::at(
                            LintCode::DuplicateLoad,
                            i,
                            format!("row ({rx},{ry},{rz}) already loaded by op {first}"),
                        )
                        .with_help("the generator should reuse the first load's register"),
                    );
                }
                Some(ValueKey::Load(rx, ry, rz, lane0, lanes))
            }
            VOp::ShiftX { src, edge, dx, .. } => Some(ValueKey::Shift(
                vn_of(src, &mut next_vn, &reg_vn),
                vn_of(edge, &mut next_vn, &reg_vn),
                dx,
            )),
            VOp::Add { a, b, .. } => {
                let (va, vb) = (
                    vn_of(a, &mut next_vn, &reg_vn),
                    vn_of(b, &mut next_vn, &reg_vn),
                );
                Some(ValueKey::Add(va.min(vb), va.max(vb)))
            }
            VOp::Mul { a, coeff, .. } => {
                Some(ValueKey::Mul(vn_of(a, &mut next_vn, &reg_vn), coeff))
            }
            VOp::Fma { acc, a, coeff, .. } => Some(ValueKey::Fma(
                vn_of(acc, &mut next_vn, &reg_vn),
                vn_of(a, &mut next_vn, &reg_vn),
                coeff,
            )),
            VOp::StoreRow { .. } => None,
        };
        let Some(key) = key else { continue };
        let is_shift = matches!(op, VOp::ShiftX { .. });
        let vn = match numbering.get(&key) {
            Some(&vn) => {
                if is_shift && live_copies.get(&vn).copied().unwrap_or(0) > 0 {
                    report.push(
                        Diagnostic::at(
                            LintCode::RedundantShift,
                            i,
                            "shift recomputes a value still held in a live register".to_string(),
                        )
                        .with_help("reuse the existing register instead of shifting again"),
                    );
                }
                vn
            }
            None => {
                next_vn += 1;
                numbering.insert(key, next_vn);
                next_vn
            }
        };
        if let Some(dst) = op.def() {
            assign(dst, vn, &mut reg_vn, &mut live_copies);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::tiny_kernel;

    fn check(k: &VectorKernel) -> Report {
        let mut r = Report::new(&k.name);
        run(k, &mut r);
        r
    }

    #[test]
    fn tiny_kernel_has_no_reuse_findings() {
        let r = check(&tiny_kernel());
        assert!(r.diagnostics.is_empty(), "{r}");
    }

    #[test]
    fn duplicate_load_flagged() {
        let mut k = tiny_kernel();
        k.ops.insert(1, k.ops[0]);
        let r = check(&k);
        let hits = r.with_code(LintCode::DuplicateLoad);
        assert_eq!(hits.len(), 1, "{r}");
        assert_eq!(hits[0].op, Some(1));
    }

    #[test]
    fn redundant_shift_flagged() {
        let mut k = tiny_kernel();
        k.num_regs = 4;
        let shift = VOp::ShiftX {
            dst: 2,
            src: 0,
            edge: 0,
            dx: 1,
        };
        let shift2 = VOp::ShiftX {
            dst: 3,
            src: 0,
            edge: 0,
            dx: 1,
        };
        k.ops.insert(1, shift);
        k.ops.insert(2, shift2);
        let r = check(&k);
        let hits = r.with_code(LintCode::RedundantShift);
        assert_eq!(hits.len(), 1, "{r}");
        assert_eq!(hits[0].op, Some(2));
    }

    #[test]
    fn recompute_after_clobber_is_not_redundant() {
        // The first shift's result is overwritten before the second shift,
        // so recomputing it is legitimate (a spill-avoidance rematerialise).
        let mut k = tiny_kernel();
        k.num_regs = 3;
        k.ops.insert(
            1,
            VOp::ShiftX {
                dst: 2,
                src: 0,
                edge: 0,
                dx: 1,
            },
        );
        k.ops.insert(2, VOp::Add { dst: 2, a: 0, b: 0 });
        k.ops.insert(
            3,
            VOp::ShiftX {
                dst: 2,
                src: 0,
                edge: 0,
                dx: 1,
            },
        );
        let r = check(&k);
        assert!(r.with_code(LintCode::RedundantShift).is_empty(), "{r}");
    }
}
