//! Pass 1 — the structural verifier.
//!
//! Subsumes and extends [`VectorKernel::validate`]: full def-before-use
//! dataflow, dead-definition detection, coefficient-table bounds (both
//! directions: out-of-range indices and never-referenced entries), lane
//! ranges, shift distances, store coverage, and the row-coordinate
//! legality that `validate()` historically left unchecked — every
//! `LoadRow`'s `ry`/`rz` must stay within one block of the home block,
//! because brick adjacency resolves at most one neighbour per axis.
//!
//! Unlike `validate()`, the verifier reports *every* violation, not just
//! the first, each anchored to its op index.

use brick_codegen::{VOp, VectorKernel};

use crate::diag::{Diagnostic, LintCode, Report};

/// Run the verifier over `kernel`, appending findings to `report`.
pub fn run(kernel: &VectorKernel, report: &mut Report) {
    let _span = brick_obs::span_cat("lint:verifier", "lint");
    if kernel.block.bx != kernel.width {
        report.push(Diagnostic::global(
            LintCode::WidthMismatch,
            format!(
                "block x extent {} != vector width {}",
                kernel.block.bx, kernel.width
            ),
        ));
    }

    let num_regs = kernel.num_regs;
    let (by, bz) = (kernel.block.by as i16, kernel.block.bz as i16);
    let mut defined = vec![false; num_regs];
    let mut coeff_used = vec![false; kernel.coeffs.len()];
    let mut stored = std::collections::HashSet::new();

    for (i, op) in kernel.ops.iter().enumerate() {
        for r in op.uses() {
            if r as usize >= num_regs {
                report.push(Diagnostic::at(
                    LintCode::RegOutOfRange,
                    i,
                    format!("register r{r} read but only {num_regs} registers are declared"),
                ));
            } else if !defined[r as usize] {
                report.push(Diagnostic::at(
                    LintCode::UseBeforeDef,
                    i,
                    format!("register r{r} read before any write"),
                ));
            }
        }
        if let Some(d) = op.def() {
            if d as usize >= num_regs {
                report.push(Diagnostic::at(
                    LintCode::RegOutOfRange,
                    i,
                    format!("register r{d} written but only {num_regs} registers are declared"),
                ));
            } else {
                defined[d as usize] = true;
            }
        }
        match *op {
            VOp::LoadRow {
                rx,
                ry,
                rz,
                lane0,
                lanes,
                ..
            } => {
                if !(-1..=1).contains(&rx) {
                    report.push(
                        Diagnostic::at(
                            LintCode::RxOutsideAdjacency,
                            i,
                            format!("load rx {rx} selects a block beyond the ±x neighbours"),
                        )
                        .with_help("brick adjacency reaches exactly one block per axis"),
                    );
                }
                if !(-by..2 * by).contains(&ry) {
                    report.push(
                        Diagnostic::at(
                            LintCode::RowOutsideAdjacency,
                            i,
                            format!(
                                "load row ry {ry} outside one-block adjacency of the \
                                 {}x{} home block",
                                kernel.block.by, kernel.block.bz
                            ),
                        )
                        .with_help(format!(
                            "ry must lie in {}..{} (home rows 0..{by} plus one \
                             neighbouring block)",
                            -by,
                            2 * by
                        )),
                    );
                }
                if !(-bz..2 * bz).contains(&rz) {
                    report.push(
                        Diagnostic::at(
                            LintCode::RowOutsideAdjacency,
                            i,
                            format!(
                                "load row rz {rz} outside one-block adjacency of the \
                                 {}x{} home block",
                                kernel.block.by, kernel.block.bz
                            ),
                        )
                        .with_help(format!(
                            "rz must lie in {}..{} (home rows 0..{bz} plus one \
                             neighbouring block)",
                            -bz,
                            2 * bz
                        )),
                    );
                }
                if lanes == 0 || lane0 as usize + lanes as usize > kernel.width {
                    report.push(Diagnostic::at(
                        LintCode::LaneRange,
                        i,
                        format!(
                            "lane range [{lane0}, {lane0}+{lanes}) outside width {}",
                            kernel.width
                        ),
                    ));
                }
            }
            VOp::ShiftX { dx, .. } if dx == 0 || dx.unsigned_abs() as usize >= kernel.width => {
                report.push(Diagnostic::at(
                    LintCode::ShiftInvalid,
                    i,
                    format!("shift dx {dx} invalid for width {}", kernel.width),
                ));
            }
            VOp::StoreRow { ry, rz, .. } => {
                if ry < 0 || ry >= by || rz < 0 || rz >= bz {
                    report.push(Diagnostic::at(
                        LintCode::StoreOutsideBlock,
                        i,
                        format!("store row ({ry},{rz}) outside the home block"),
                    ));
                } else if !stored.insert((ry, rz)) {
                    report.push(Diagnostic::at(
                        LintCode::DuplicateStore,
                        i,
                        format!("row ({ry},{rz}) stored twice"),
                    ));
                }
            }
            _ => {}
        }
        if let VOp::Fma { coeff, .. } | VOp::Mul { coeff, .. } = *op {
            if coeff as usize >= kernel.coeffs.len() {
                report.push(Diagnostic::at(
                    LintCode::CoeffIndexOutOfRange,
                    i,
                    format!(
                        "coefficient index {coeff} outside the {}-entry table",
                        kernel.coeffs.len()
                    ),
                ));
            } else {
                coeff_used[coeff as usize] = true;
            }
        }
    }

    let expected_rows = kernel.block.by * kernel.block.bz;
    if stored.len() != expected_rows {
        report.push(Diagnostic::global(
            LintCode::IncompleteStores,
            format!(
                "kernel stores {} rows, home block has {expected_rows}",
                stored.len()
            ),
        ));
    }

    let unused: Vec<usize> = coeff_used
        .iter()
        .enumerate()
        .filter(|(_, u)| !**u)
        .map(|(i, _)| i)
        .collect();
    if !unused.is_empty() {
        report.push(Diagnostic::global(
            LintCode::UnusedCoefficient,
            format!("coefficient table entries {unused:?} are never referenced"),
        ));
    }

    dead_defs(kernel, report);
}

/// Backward liveness scan flagging values written but never read before
/// the register is redefined (or the program ends).
fn dead_defs(kernel: &VectorKernel, report: &mut Report) {
    let mut used_since = vec![false; kernel.num_regs];
    for (i, op) in kernel.ops.iter().enumerate().rev() {
        if let Some(d) = op.def() {
            if (d as usize) < kernel.num_regs {
                if !used_since[d as usize] {
                    report.push(Diagnostic::at(
                        LintCode::DeadDef,
                        i,
                        format!("register r{d} written here but the value is never read"),
                    ));
                }
                used_since[d as usize] = false;
            }
        }
        for r in op.uses() {
            if (r as usize) < kernel.num_regs {
                used_since[r as usize] = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::tiny_kernel;

    fn check(k: &VectorKernel) -> Report {
        let mut r = Report::new(&k.name);
        run(k, &mut r);
        r
    }

    #[test]
    fn tiny_kernel_is_clean() {
        let r = check(&tiny_kernel());
        assert!(!r.has_errors(), "{r}");
        assert_eq!(r.warning_count(), 0, "{r}");
    }

    #[test]
    fn out_of_range_ry_rejected_with_op_index() {
        let mut k = tiny_kernel();
        if let VOp::LoadRow { ry, .. } = &mut k.ops[0] {
            *ry = -2; // block is 4x1x1: legal ry is -1..2
        }
        let r = check(&k);
        let hits = r.with_code(LintCode::RowOutsideAdjacency);
        assert_eq!(hits.len(), 1, "{r}");
        assert_eq!(hits[0].op, Some(0));
    }

    #[test]
    fn out_of_range_rz_rejected() {
        let mut k = tiny_kernel();
        if let VOp::LoadRow { rz, .. } = &mut k.ops[0] {
            *rz = 2;
        }
        let r = check(&k);
        assert_eq!(r.with_code(LintCode::RowOutsideAdjacency).len(), 1, "{r}");
    }

    #[test]
    fn one_block_adjacency_is_legal() {
        // ry = -1 and ry = 2*by - 1 resolve through adjacency: no error.
        for ry in [-1i16, 1] {
            let mut k = tiny_kernel();
            if let VOp::LoadRow { ry: r, .. } = &mut k.ops[0] {
                *r = ry;
            }
            let r = check(&k);
            assert!(r.with_code(LintCode::RowOutsideAdjacency).is_empty(), "{r}");
        }
    }

    #[test]
    fn use_before_def_and_reg_range() {
        let mut k = tiny_kernel();
        k.ops.remove(0);
        let r = check(&k);
        assert!(!r.with_code(LintCode::UseBeforeDef).is_empty());

        let mut k = tiny_kernel();
        if let VOp::Mul { a, .. } = &mut k.ops[1] {
            *a = 9;
        }
        let r = check(&k);
        assert!(!r.with_code(LintCode::RegOutOfRange).is_empty());
    }

    #[test]
    fn dead_def_warned_not_errored() {
        let mut k = tiny_kernel();
        k.num_regs = 3;
        k.ops.insert(1, VOp::Add { dst: 2, a: 0, b: 0 });
        let r = check(&k);
        assert!(!r.has_errors(), "{r}");
        let dead = r.with_code(LintCode::DeadDef);
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].op, Some(1));
    }

    #[test]
    fn unused_coefficient_warned() {
        let mut k = tiny_kernel();
        k.coeffs.push(7.0);
        let r = check(&k);
        assert!(!r.has_errors());
        assert_eq!(r.with_code(LintCode::UnusedCoefficient).len(), 1);
    }

    #[test]
    fn multiple_violations_all_reported() {
        let mut k = tiny_kernel();
        if let VOp::LoadRow { ry, .. } = &mut k.ops[0] {
            *ry = 5;
        }
        k.coeffs.clear();
        let r = check(&k);
        assert!(!r.with_code(LintCode::RowOutsideAdjacency).is_empty());
        assert!(!r.with_code(LintCode::CoeffIndexOutOfRange).is_empty());
    }
}
