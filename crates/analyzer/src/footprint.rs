//! Pass 2 — footprint abstract interpretation.
//!
//! Interprets the kernel over *symbolic* rows instead of data: every lane
//! of every register carries the set of input points it linearly combines,
//! `{(x, y, z) → weight}`, with coordinates relative to the home block's
//! origin. `LoadRow` introduces unit provenance, `ShiftX` permutes lanes
//! exactly as the VM's shuffle semantics do, and `Add`/`Mul`/`Fma` combine
//! and scale weights. At each `StoreRow` the per-lane provenance is
//! re-expressed as offsets from the output point — which must be the same
//! stencil for every lane of every stored row, and must equal the declared
//! [`ExpectedStencil`] when one is supplied.
//!
//! The same interpretation yields the kernel's *load reach*: how far its
//! memory addresses stray outside the home block per axis, which is what
//! ghost-zone coverage checks need (and what `crates/vm` previously
//! re-derived ad hoc from shift distances).

use std::collections::BTreeMap;

use brick_codegen::{VOp, VectorKernel};
use brick_dsl::stencil::StencilError;
use brick_dsl::{CoeffBindings, Stencil};

use crate::diag::{Diagnostic, LintCode, Report};

/// Relative weight tolerance when comparing floating-point tap weights:
/// generated kernels evaluate the same products the resolver does, so the
/// slack only absorbs benign re-association.
const WEIGHT_RTOL: f64 = 1e-9;

/// A stencil resolved to numeric taps, as the footprint pass expects to
/// find it in the kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpectedStencil {
    /// `offset → weight`, offsets relative to the output point.
    pub taps: BTreeMap<[i64; 3], f64>,
    /// Display name used in diagnostics.
    pub name: String,
}

impl ExpectedStencil {
    /// Resolve `stencil` under `bindings` into an expected tap set.
    pub fn resolve(stencil: &Stencil, bindings: &CoeffBindings) -> Result<Self, StencilError> {
        let mut taps = BTreeMap::new();
        for (off, w) in stencil.resolve(bindings)? {
            taps.insert([off[0] as i64, off[1] as i64, off[2] as i64], w);
        }
        Ok(ExpectedStencil {
            taps,
            name: stencil.name().to_string(),
        })
    }

    /// Resolve the `T`-step composition `stencil^T`: the stencil a kernel
    /// fusing `T` timesteps must compute per launch. Offsets convolve
    /// (reach grows to `T·r` per axis) and weights multiply-accumulate
    /// along every path of length `T` through the tap graph.
    ///
    /// The composed weights are evaluated here in convolution order while
    /// a fused kernel accumulates them in its own schedule order; the
    /// footprint comparison absorbs that reassociation inside
    /// [`WEIGHT_RTOL`].
    pub fn resolve_temporal(
        stencil: &Stencil,
        bindings: &CoeffBindings,
        temporal_degree: u32,
    ) -> Result<Self, StencilError> {
        let base = Self::resolve(stencil, bindings)?;
        assert!(temporal_degree >= 1, "temporal degree must be ≥ 1");
        let mut taps = base.taps.clone();
        for _ in 1..temporal_degree {
            let mut next: BTreeMap<[i64; 3], f64> = BTreeMap::new();
            for (oa, wa) in &taps {
                for (ob, wb) in &base.taps {
                    let o = [oa[0] + ob[0], oa[1] + ob[1], oa[2] + ob[2]];
                    *next.entry(o).or_insert(0.0) += wa * wb;
                }
            }
            taps = next;
        }
        let name = if temporal_degree > 1 {
            format!("{}^{temporal_degree}", stencil.name())
        } else {
            base.name
        };
        Ok(ExpectedStencil { taps, name })
    }
}

/// The proven memory behaviour of a kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct Footprint {
    /// The stencil every output lane computes: `offset → weight`.
    pub taps: BTreeMap<[i64; 3], f64>,
    /// Per-axis distance the kernel's *loads* reach outside the home
    /// block — the ghost/halo coverage it requires.
    pub reach: [i64; 3],
}

/// One lane's provenance: the input points it combines, as a sorted
/// `(packed coordinate, weight)` vector. Coordinates are packed into one
/// `i64` (21 bits per axis, biased) so the hot merge loop compares single
/// integers; packing is order-preserving per axis and linear, so a uniform
/// coordinate translation is a single integer subtraction on the key.
type Key = i64;
type Lane = Vec<(Key, f64)>;

/// Per-axis bias; coordinates are block-relative and bounded by a few
/// SIMD widths, far inside ±2²⁰.
const BIAS: i64 = 1 << 20;

fn pack(x: i64, y: i64, z: i64) -> Key {
    ((x + BIAS) << 42) | ((y + BIAS) << 21) | (z + BIAS)
}

fn unpack(k: Key) -> [i64; 3] {
    const MASK: i64 = (1 << 21) - 1;
    [
        (k >> 42) - BIAS,
        ((k >> 21) & MASK) - BIAS,
        (k & MASK) - BIAS,
    ]
}

fn approx_eq(a: f64, b: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= WEIGHT_RTOL * scale
}

fn lanes_equal(a: &Lane, b: &Lane) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b.iter())
            .all(|((oa, wa), (ob, wb))| oa == ob && approx_eq(*wa, *wb))
}

/// A register's abstract value.
///
/// Generated kernels are almost entirely *lane-uniform*: lane `i` of a
/// register combines exactly the points lane 0 does, translated by `i`
/// along x (rows load contiguously, shifts realign whole rows, FMA chains
/// preserve the property). `Uniform` exploits that: one tap set stands
/// for all lanes, so the arithmetic ops cost `O(taps)` instead of
/// `O(width · taps)`. Anything the fast path cannot prove uniform falls
/// back to the explicit `PerLane` form — the fallback is the definition,
/// the fast path only a compressed encoding of it.
#[derive(Clone)]
enum RegVal {
    /// `provenance(lane) = taps translated by +lane in x`.
    Uniform(Lane),
    /// Explicit provenance per lane.
    PerLane(Vec<Lane>),
}

/// Translate every tap of `t` by `dx` along x (packing is linear per
/// axis, so this is one integer add per key; sort order is preserved).
fn translate(t: &Lane, dx: i64) -> Lane {
    t.iter().map(|&(k, w)| (k + (dx << 42), w)).collect()
}

/// Bit-exact lane equality — used only to *detect* uniformity, where a
/// false negative merely costs speed, never soundness.
fn lanes_exact_eq(a: &Lane, b: &Lane) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| x.0 == y.0 && x.1.to_bits() == y.1.to_bits())
}

fn materialize(v: &RegVal, w: usize) -> Vec<Lane> {
    match v {
        RegVal::PerLane(l) => l.clone(),
        RegVal::Uniform(t) => (0..w).map(|i| translate(t, i as i64)).collect(),
    }
}

/// Compress an explicit value back to `Uniform` when every lane is the
/// base lane translated by its index (bit-exact), else keep it explicit.
fn uniformize(v: Vec<Lane>) -> RegVal {
    let base = &v[0];
    for (i, lane) in v.iter().enumerate().skip(1) {
        let shifted = (i as i64) << 42;
        if !(lane.len() == base.len()
            && lane
                .iter()
                .zip(base)
                .all(|(l, b)| l.0 == b.0 + shifted && l.1.to_bits() == b.1.to_bits()))
        {
            return RegVal::PerLane(v);
        }
    }
    RegVal::Uniform(v.into_iter().next().expect("width > 0"))
}

/// `a + c·b`, merging two sorted lanes in one linear pass.
fn merge_scaled(a: &Lane, b: &Lane, c: f64) -> Lane {
    let mut out = Lane::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push((b[j].0, b[j].1 * c));
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push((a[i].0, a[i].1 + b[j].1 * c));
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend(b[j..].iter().map(|&(k, w)| (k, w * c)));
    out
}

/// Per-axis distance the kernel's load addresses stray outside the home
/// block `[0, bx) × [0, by) × [0, bz)`.
pub fn load_reach(kernel: &VectorKernel) -> [i64; 3] {
    let w = kernel.width as i64;
    let (by, bz) = (kernel.block.by as i64, kernel.block.bz as i64);
    let outside = |lo: i64, hi: i64, extent: i64| (-lo).max(hi - extent + 1).max(0);
    let mut r = [0i64; 3];
    for op in &kernel.ops {
        if let VOp::LoadRow {
            rx,
            ry,
            rz,
            lane0,
            lanes,
            ..
        } = *op
        {
            let x0 = rx as i64 * w + lane0 as i64;
            let x1 = x0 + lanes as i64 - 1;
            r[0] = r[0].max(outside(x0, x1, w));
            r[1] = r[1].max(outside(ry as i64, ry as i64, by));
            r[2] = r[2].max(outside(rz as i64, rz as i64, bz));
        }
    }
    r
}

/// Run the footprint interpretation. Returns the proven footprint when
/// every stored lane agrees (and matches `expected`, if supplied); on any
/// disagreement the diagnostics land in `report` and `None` is returned.
///
/// Precondition: the verifier pass found no errors (register and
/// coefficient indices are in range).
pub fn run(
    kernel: &VectorKernel,
    expected: Option<&ExpectedStencil>,
    report: &mut Report,
) -> Option<Footprint> {
    let _span = brick_obs::span_cat("lint:footprint", "lint");
    let w = kernel.width;
    let mut regs: Vec<RegVal> = vec![RegVal::Uniform(Lane::new()); kernel.num_regs];
    // The stencil proven so far (offsets packed, sorted): set at the first
    // stored lane, must match everywhere after.
    let mut proven: Option<(Lane, usize)> = None;
    let errors_before = report.error_count();

    for (i, op) in kernel.ops.iter().enumerate() {
        match *op {
            VOp::LoadRow {
                dst,
                rx,
                ry,
                rz,
                lane0,
                lanes,
            } => {
                let x0 = rx as i64 * w as i64;
                regs[dst as usize] = if lane0 == 0 && lanes as usize == w {
                    RegVal::Uniform(vec![(pack(x0, ry as i64, rz as i64), 1.0)])
                } else {
                    let mut v = vec![Lane::new(); w];
                    for (lane, slot) in v.iter_mut().enumerate().skip(lane0 as usize) {
                        if lane >= (lane0 + lanes) as usize {
                            break;
                        }
                        *slot = vec![(pack(x0 + lane as i64, ry as i64, rz as i64), 1.0)];
                    }
                    RegVal::PerLane(v)
                };
            }
            VOp::ShiftX { dst, src, edge, dx } => {
                let fast = match (&regs[src as usize], &regs[edge as usize]) {
                    _ if dx == 0 => Some(regs[src as usize].clone()),
                    (RegVal::Uniform(ts), RegVal::Uniform(te)) => {
                        // Wrapped lanes read `edge` where uniform lanes
                        // read `src ∓ width`; when those coincide the
                        // whole result is the uniform translate by dx.
                        let wrap = if dx < 0 { w as i64 } else { -(w as i64) };
                        if lanes_exact_eq(&translate(te, wrap), ts) {
                            Some(RegVal::Uniform(translate(ts, dx as i64)))
                        } else {
                            None
                        }
                    }
                    _ => None,
                };
                regs[dst as usize] = fast.unwrap_or_else(|| {
                    let vs = materialize(&regs[src as usize], w);
                    let ve = materialize(&regs[edge as usize], w);
                    let mut out = vec![Lane::new(); w];
                    for (lane, slot) in out.iter_mut().enumerate() {
                        let j = lane as i64 + dx as i64;
                        *slot = if j >= 0 && (j as usize) < w {
                            vs[j as usize].clone()
                        } else if j < 0 {
                            ve[(j + w as i64) as usize].clone()
                        } else {
                            ve[(j - w as i64) as usize].clone()
                        };
                    }
                    uniformize(out)
                });
            }
            VOp::Add { dst, a, b } => {
                regs[dst as usize] = combine(&regs[a as usize], &regs[b as usize], 1.0, w);
            }
            VOp::Mul { dst, a, coeff } => {
                let c = kernel.coeffs[coeff as usize];
                let scale =
                    |lane: &Lane| -> Lane { lane.iter().map(|&(k, wt)| (k, wt * c)).collect() };
                regs[dst as usize] = match &regs[a as usize] {
                    RegVal::Uniform(t) => RegVal::Uniform(scale(t)),
                    RegVal::PerLane(v) => RegVal::PerLane(v.iter().map(scale).collect()),
                };
            }
            VOp::Fma { dst, acc, a, coeff } => {
                let c = kernel.coeffs[coeff as usize];
                regs[dst as usize] = combine(&regs[acc as usize], &regs[a as usize], c, w);
            }
            VOp::StoreRow { src, ry, rz } => {
                // Re-express provenance as offsets from the output point
                // (lane, ry, rz) — a uniform translation, i.e. a single
                // subtraction on the packed key — and drop cancelled
                // terms. For a Uniform register the lane index cancels, so
                // one check covers every lane of the row.
                let offsets_of = |prov: &Lane, lane: usize| -> Lane {
                    let delta = pack(lane as i64, ry as i64, rz as i64) - pack(0, 0, 0);
                    prov.iter()
                        .filter(|(_, wt)| !approx_eq(*wt, 0.0))
                        .map(|&(k, wt)| (k - delta, wt))
                        .collect()
                };
                let ctx = StoreCtx { op: i, ry, rz };
                match &regs[src as usize] {
                    RegVal::Uniform(t) => {
                        let offs = offsets_of(t, 0);
                        check_stored_lane(offs, 0, ctx, expected, &mut proven, report);
                    }
                    RegVal::PerLane(v) => {
                        for (lane, prov) in v.iter().enumerate() {
                            let offs = offsets_of(prov, lane);
                            check_stored_lane(offs, lane, ctx, expected, &mut proven, report);
                        }
                    }
                }
            }
        }
        // Fail fast on the first inconsistent row: later rows would repeat
        // the same mismatch once per lane and drown the report.
        if report.error_count() > errors_before {
            break;
        }
    }

    if report.error_count() > errors_before {
        return None;
    }
    proven.map(|(taps, _)| Footprint {
        taps: taps.into_iter().map(|(k, wt)| (unpack(k), wt)).collect(),
        reach: load_reach(kernel),
    })
}

/// `a + c·b` over whole registers, staying in the compressed form when
/// both operands are uniform.
fn combine(a: &RegVal, b: &RegVal, c: f64, w: usize) -> RegVal {
    match (a, b) {
        (RegVal::Uniform(ta), RegVal::Uniform(tb)) => RegVal::Uniform(merge_scaled(ta, tb, c)),
        _ => {
            let va = materialize(a, w);
            let vb = materialize(b, w);
            uniformize(
                va.iter()
                    .zip(&vb)
                    .map(|(la, lb)| merge_scaled(la, lb, c))
                    .collect(),
            )
        }
    }
}

/// Location of the `StoreRow` op whose lanes are being checked.
#[derive(Clone, Copy)]
struct StoreCtx {
    op: usize,
    ry: i16,
    rz: i16,
}

/// Record one stored lane's offset set against the proof state: the first
/// stored lane fixes the stencil (and is checked against the declaration
/// when one is supplied); every later lane must match it exactly.
fn check_stored_lane(
    offs: Lane,
    lane: usize,
    ctx: StoreCtx,
    expected: Option<&ExpectedStencil>,
    proven: &mut Option<(Lane, usize)>,
    report: &mut Report,
) {
    let StoreCtx { op: i, ry, rz } = ctx;
    match (&*proven, expected) {
        (None, Some(exp)) => {
            check_against_expected(&offs, exp, ctx, lane, report);
            *proven = Some((offs, i));
        }
        (None, None) => *proven = Some((offs, i)),
        (Some((first, first_op)), _) => {
            if !lanes_equal(first, &offs) {
                report.push(
                    Diagnostic::at(
                        LintCode::InconsistentFootprint,
                        i,
                        format!(
                            "lane {lane} of stored row ({ry},{rz}) computes a different \
                             stencil than the first stored lane (op {first_op})"
                        ),
                    )
                    .with_help(format!(
                        "first lane reads {} tap(s), this lane {}",
                        first.len(),
                        offs.len()
                    )),
                );
            }
        }
    }
}

fn check_against_expected(
    offs: &Lane,
    exp: &ExpectedStencil,
    ctx: StoreCtx,
    lane: usize,
    report: &mut Report,
) {
    let StoreCtx { op, ry, rz } = ctx;
    let got: BTreeMap<[i64; 3], f64> = offs.iter().map(|&(k, wt)| (unpack(k), wt)).collect();
    for (o, wt) in &got {
        match exp.taps.get(o) {
            None => {
                report.push(
                    Diagnostic::at(
                        LintCode::FootprintMismatch,
                        op,
                        format!(
                            "lane {lane} of stored row ({ry},{rz}) reads offset \
                             [{},{},{}] which stencil {} does not contain",
                            o[0], o[1], o[2], exp.name
                        ),
                    )
                    .with_help(format!("declared footprint has {} tap(s)", exp.taps.len())),
                );
            }
            Some(want) if !approx_eq(*wt, *want) => {
                report.push(Diagnostic::at(
                    LintCode::CoeffValueMismatch,
                    op,
                    format!(
                        "lane {lane} of stored row ({ry},{rz}) weights offset \
                         [{},{},{}] with {wt} but stencil {} declares {want}",
                        o[0], o[1], o[2], exp.name
                    ),
                ));
            }
            Some(_) => {}
        }
    }
    for o in exp.taps.keys() {
        if !got.contains_key(o) {
            report.push(Diagnostic::at(
                LintCode::FootprintMismatch,
                op,
                format!(
                    "lane {lane} of stored row ({ry},{rz}) never reads offset \
                     [{},{},{}] required by stencil {}",
                    o[0], o[1], o[2], exp.name
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::tiny_kernel;

    fn tiny_expected() -> ExpectedStencil {
        // tiny_kernel computes out = 2·in at offset [0,0,0].
        ExpectedStencil {
            taps: [([0, 0, 0], 2.0)].into_iter().collect(),
            name: "1pt".into(),
        }
    }

    #[test]
    fn tiny_kernel_footprint_proven() {
        let k = tiny_kernel();
        let mut r = Report::new(&k.name);
        let fp = run(&k, Some(&tiny_expected()), &mut r).unwrap();
        assert!(!r.has_errors(), "{r}");
        assert_eq!(fp.taps.len(), 1);
        assert_eq!(fp.taps[&[0, 0, 0]], 2.0);
        assert_eq!(fp.reach, [0, 0, 0]);
    }

    #[test]
    fn wrong_coefficient_rejected_with_op_index() {
        let mut k = tiny_kernel();
        k.coeffs[0] = 3.0; // kernel now computes 3·in, stencil says 2·in
        let mut r = Report::new(&k.name);
        assert!(run(&k, Some(&tiny_expected()), &mut r).is_none());
        let hits = r.with_code(LintCode::CoeffValueMismatch);
        assert!(!hits.is_empty(), "{r}");
        assert_eq!(hits[0].op, Some(2), "anchored at the store");
    }

    #[test]
    fn wrong_offset_rejected() {
        let mut k = tiny_kernel();
        if let VOp::LoadRow { ry, .. } = &mut k.ops[0] {
            *ry = 1; // reads the +y neighbour instead of the centre
        }
        let mut r = Report::new(&k.name);
        assert!(run(&k, Some(&tiny_expected()), &mut r).is_none());
        assert!(!r.with_code(LintCode::FootprintMismatch).is_empty(), "{r}");
    }

    #[test]
    fn self_consistency_without_expected() {
        let k = tiny_kernel();
        let mut r = Report::new(&k.name);
        let fp = run(&k, None, &mut r).unwrap();
        assert!(!r.has_errors());
        assert_eq!(fp.taps[&[0, 0, 0]], 2.0);
    }

    #[test]
    fn load_reach_counts_addresses_not_shifts() {
        let mut k = tiny_kernel();
        if let VOp::LoadRow { rz, .. } = &mut k.ops[0] {
            *rz = -1;
        }
        assert_eq!(load_reach(&k), [0, 0, 1]);
        if let VOp::LoadRow {
            rx, lane0, lanes, ..
        } = &mut k.ops[0]
        {
            *rx = 1;
            *lane0 = 0;
            *lanes = 2;
        }
        // x addresses [4, 6) with width 4: reach 2 beyond the block.
        assert_eq!(load_reach(&k), [2, 0, 1]);
    }
}
