//! The abstract vector IR targeted by the code generator.
//!
//! BrickLib's generator uses "a common internal abstraction of vectors to
//! develop the structure of the generated code, and subsequently maps to
//! architecture-specific instructions" (paper §3). This module is that
//! abstraction: a small three-address register machine whose values are
//! vectors of `width` lanes — one brick row when `width` equals the
//! brick's `x` extent. On a GPU each vector register is one register per
//! thread of a warp/wavefront/sub-group, a [`VOp::ShiftX`] is a pair of
//! shuffle instructions, and a [`VOp::LoadRow`] is one fully-coalesced
//! load.

use serde::{Deserialize, Serialize};
use std::fmt;

use brick_core::BrickDims;

/// Virtual or physical register id.
pub type Reg = u16;

/// Index into the kernel's coefficient table.
pub type CoeffIdx = u16;

/// Which data layout the kernel's row addresses resolve against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayoutKind {
    /// Conventional lexicographic array with 3-D tiling.
    Array,
    /// Brick layout with adjacency navigation.
    Brick,
}

impl fmt::Display for LayoutKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutKind::Array => f.write_str("array"),
            LayoutKind::Brick => f.write_str("brick"),
        }
    }
}

/// One vector instruction.
///
/// Rows are identified *logically*, relative to the kernel's home block
/// (a brick, or a tile of the array): `rx ∈ {-1, 0, 1}` selects the
/// x-segment (the home row or the row of the ±x neighbouring block),
/// while `ry`/`rz` may range one block beyond `0..by`/`0..bz` — the
/// layout binding resolves them through brick adjacency or array address
/// arithmetic at execution time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[allow(missing_docs)] // variant fields are documented on the variants
pub enum VOp {
    /// `dst ← input_row(rx, ry, rz)[lane0 .. lane0 + lanes]` — an
    /// aligned load of `lanes` contiguous elements of the row
    /// (`lane0 = 0, lanes = width` for a full row; edge rows materialise
    /// only the lanes their shuffles consume, as a predicated load).
    LoadRow {
        dst: Reg,
        rx: i8,
        ry: i16,
        rz: i16,
        lane0: u16,
        lanes: u16,
    },
    /// `dst[i] ← sel(i + dx)` where `sel(j)` reads lane `j` of `src` for
    /// `0 ≤ j < width` and the wrapped lane of `edge` otherwise — the
    /// register-file data exchange done with `shfl_up/down` on GPUs.
    ShiftX {
        dst: Reg,
        src: Reg,
        edge: Reg,
        dx: i16,
    },
    /// `dst ← a + b`.
    Add { dst: Reg, a: Reg, b: Reg },
    /// `dst ← a · coeffs[coeff]`.
    Mul { dst: Reg, a: Reg, coeff: CoeffIdx },
    /// `dst ← acc + a · coeffs[coeff]` (one FMA per lane; `dst` may alias
    /// `acc`).
    Fma {
        dst: Reg,
        acc: Reg,
        a: Reg,
        coeff: CoeffIdx,
    },
    /// `output_row(0, ry, rz) ← src` — aligned store into the home block.
    StoreRow { src: Reg, ry: i16, rz: i16 },
}

impl VOp {
    /// Registers read by this op.
    pub fn uses(&self) -> impl Iterator<Item = Reg> {
        let v: Vec<Reg> = match *self {
            VOp::LoadRow { .. } => vec![],
            VOp::ShiftX { src, edge, .. } => vec![src, edge],
            VOp::Add { a, b, .. } => vec![a, b],
            VOp::Mul { a, .. } => vec![a],
            VOp::Fma { acc, a, .. } => vec![acc, a],
            VOp::StoreRow { src, .. } => vec![src],
        };
        v.into_iter()
    }

    /// Register written by this op, if any.
    pub fn def(&self) -> Option<Reg> {
        match *self {
            VOp::LoadRow { dst, .. }
            | VOp::ShiftX { dst, .. }
            | VOp::Add { dst, .. }
            | VOp::Mul { dst, .. }
            | VOp::Fma { dst, .. } => Some(dst),
            VOp::StoreRow { .. } => None,
        }
    }

    /// Rewrite every register id through `f` (used by register allocation).
    pub fn map_regs(self, mut f: impl FnMut(Reg) -> Reg) -> VOp {
        match self {
            VOp::LoadRow {
                dst,
                rx,
                ry,
                rz,
                lane0,
                lanes,
            } => VOp::LoadRow {
                dst: f(dst),
                rx,
                ry,
                rz,
                lane0,
                lanes,
            },
            VOp::ShiftX { dst, src, edge, dx } => VOp::ShiftX {
                dst: f(dst),
                src: f(src),
                edge: f(edge),
                dx,
            },
            VOp::Add { dst, a, b } => VOp::Add {
                dst: f(dst),
                a: f(a),
                b: f(b),
            },
            VOp::Mul { dst, a, coeff } => VOp::Mul {
                dst: f(dst),
                a: f(a),
                coeff,
            },
            VOp::Fma { dst, acc, a, coeff } => VOp::Fma {
                dst: f(dst),
                acc: f(acc),
                a: f(a),
                coeff,
            },
            VOp::StoreRow { src, ry, rz } => VOp::StoreRow {
                src: f(src),
                ry,
                rz,
            },
        }
    }
}

/// Scheduling strategy used by the generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Strategy {
    /// Gather: per output row, sum each coefficient class's rows then FMA
    /// once per class — minimal FLOPs; register pressure grows with the
    /// stencil footprint because reuse buffers stay live across outputs.
    Gather,
    /// Vector scatter (associative reordering, Stock et al.): iterate
    /// input rows once and FMA each into every output accumulator that
    /// uses it — one FMA per tap-use, register pressure bounded by the
    /// block's output rows plus one row group.
    Scatter,
    /// Let the generator pick per stencil (scatter when the gather
    /// schedule's register pressure exceeds the architecture budget).
    Auto,
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Strategy::Gather => f.write_str("gather"),
            Strategy::Scatter => f.write_str("scatter"),
            Strategy::Auto => f.write_str("auto"),
        }
    }
}

/// Static instruction statistics for one kernel (per home block).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct KernelStats {
    /// Vector loads issued per block.
    pub loads: u32,
    /// Vector stores issued per block.
    pub stores: u32,
    /// Lane-shift (shuffle) ops per block.
    pub shifts: u32,
    /// FMA ops per block.
    pub fmas: u32,
    /// Plain vector adds per block.
    pub adds: u32,
    /// Multiplies per block.
    pub muls: u32,
    /// Maximum simultaneously-live registers (per thread, after
    /// allocation).
    pub max_live: u32,
}

impl KernelStats {
    /// Total instructions per block.
    pub fn total_instructions(&self) -> u64 {
        (self.loads + self.stores + self.shifts + self.fmas + self.adds + self.muls) as u64
    }

    /// Executed floating-point *vector* operations per block (FMA = 2);
    /// multiply by the width for lane FLOPs.
    pub fn flops(&self) -> u64 {
        2 * self.fmas as u64 + self.adds as u64 + self.muls as u64
    }

    /// Count statistics directly from an instruction stream.
    pub fn from_ops(ops: &[VOp], max_live: u32) -> Self {
        let mut s = KernelStats {
            max_live,
            ..Default::default()
        };
        for op in ops {
            match op {
                VOp::LoadRow { .. } => s.loads += 1,
                VOp::StoreRow { .. } => s.stores += 1,
                VOp::ShiftX { .. } => s.shifts += 1,
                VOp::Fma { .. } => s.fmas += 1,
                VOp::Add { .. } => s.adds += 1,
                VOp::Mul { .. } => s.muls += 1,
            }
        }
        s
    }
}

/// A complete generated kernel for one (stencil, layout, width) triple.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VectorKernel {
    /// Kernel name, e.g. `d3star_brick_cg`.
    pub name: String,
    /// Vector width in lanes (the architecture SIMD width).
    pub width: usize,
    /// Home-block geometry (`bx` must equal `width`).
    pub block: BrickDims,
    /// Layout the row addresses resolve against.
    pub layout: LayoutKind,
    /// Strategy actually used ([`Strategy::Auto`] never appears here).
    pub strategy: Strategy,
    /// Number of stencil timesteps fused into this kernel (1 = plain
    /// spatial kernel). A T-fused kernel computes `stencil^T` per launch:
    /// its load reach is `T·r` per axis and its stored rows are
    /// bit-identical to `T` sequential applications of the gather
    /// schedule.
    pub temporal_degree: u32,
    /// Resolved numeric coefficient table.
    pub coeffs: Vec<f64>,
    /// Instruction stream (register-allocated).
    pub ops: Vec<VOp>,
    /// Physical registers required.
    pub num_regs: usize,
    /// Instruction statistics per block.
    pub stats: KernelStats,
}

impl VectorKernel {
    /// Validate structural invariants; returns a description of the first
    /// violation. Used by tests and by the VM before execution.
    pub fn validate(&self) -> Result<(), String> {
        if self.block.bx != self.width {
            return Err(format!(
                "block x extent {} != vector width {}",
                self.block.bx, self.width
            ));
        }
        let mut defined = vec![false; self.num_regs];
        let mut stored = std::collections::HashSet::new();
        for (i, op) in self.ops.iter().enumerate() {
            for r in op.uses() {
                if r as usize >= self.num_regs {
                    return Err(format!("op {i}: register {r} out of range"));
                }
                if !defined[r as usize] {
                    return Err(format!("op {i}: register {r} read before write ({op:?})"));
                }
            }
            if let Some(d) = op.def() {
                if d as usize >= self.num_regs {
                    return Err(format!("op {i}: def register {d} out of range"));
                }
                defined[d as usize] = true;
            }
            match *op {
                VOp::LoadRow {
                    rx,
                    ry,
                    rz,
                    lane0,
                    lanes,
                    ..
                } => {
                    if !(-1..=1).contains(&rx) {
                        return Err(format!("op {i}: load rx {rx} outside one block"));
                    }
                    // Row coordinates may reach at most one block beyond the
                    // home block: adjacency resolves a single neighbour per
                    // axis.
                    let (by, bz) = (self.block.by as i16, self.block.bz as i16);
                    if !(-by..2 * by).contains(&ry) {
                        return Err(format!(
                            "op {i}: load ry {ry} outside one-block adjacency ({}..{})",
                            -by,
                            2 * by
                        ));
                    }
                    if !(-bz..2 * bz).contains(&rz) {
                        return Err(format!(
                            "op {i}: load rz {rz} outside one-block adjacency ({}..{})",
                            -bz,
                            2 * bz
                        ));
                    }
                    if lanes == 0 || lane0 as usize + lanes as usize > self.width {
                        return Err(format!(
                            "op {i}: lane range [{lane0}, {lane0}+{lanes}) outside width {}",
                            self.width
                        ));
                    }
                }
                VOp::ShiftX { dx, .. } if (dx == 0 || dx.unsigned_abs() as usize >= self.width) => {
                    return Err(format!(
                        "op {i}: shift dx {dx} invalid for width {}",
                        self.width
                    ));
                }
                VOp::StoreRow { ry, rz, .. } => {
                    if ry < 0
                        || ry as usize >= self.block.by
                        || rz < 0
                        || rz as usize >= self.block.bz
                    {
                        return Err(format!("op {i}: store ({ry},{rz}) outside home block"));
                    }
                    if !stored.insert((ry, rz)) {
                        return Err(format!("op {i}: row ({ry},{rz}) stored twice"));
                    }
                }
                _ => {}
            }
            if let VOp::Fma { coeff, .. } | VOp::Mul { coeff, .. } = *op {
                if coeff as usize >= self.coeffs.len() {
                    return Err(format!("op {i}: coefficient index {coeff} out of range"));
                }
            }
        }
        let expected_rows = self.block.by * self.block.bz;
        if stored.len() != expected_rows {
            return Err(format!(
                "kernel stores {} rows, home block has {expected_rows}",
                stored.len()
            ));
        }
        Ok(())
    }

    /// Rows the kernel loads, deduplicated, in first-load order.
    pub fn loaded_rows(&self) -> Vec<(i8, i16, i16)> {
        let mut out = Vec::new();
        for op in &self.ops {
            if let VOp::LoadRow { rx, ry, rz, .. } = *op {
                if !out.contains(&(rx, ry, rz)) {
                    out.push((rx, ry, rz));
                }
            }
        }
        out
    }

    /// Bytes of input the kernel loads per block, honouring partial edge
    /// loads.
    pub fn loaded_bytes(&self) -> u64 {
        self.ops
            .iter()
            .map(|op| match op {
                VOp::LoadRow { lanes, .. } => *lanes as u64 * 8,
                _ => 0,
            })
            .sum()
    }

    /// True if no row is loaded twice — BrickLib's "reuse of array common
    /// subexpressions" guarantee, asserted by tests for both strategies.
    pub fn loads_are_unique(&self) -> bool {
        let mut seen = std::collections::HashSet::new();
        self.ops.iter().all(|op| match *op {
            VOp::LoadRow { rx, ry, rz, .. } => seen.insert((rx, ry, rz)),
            _ => true,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_kernel() -> VectorKernel {
        // 1x1x4 block: load row, multiply by coeff 0, store.
        let ops = vec![
            VOp::LoadRow {
                dst: 0,
                rx: 0,
                ry: 0,
                rz: 0,
                lane0: 0,
                lanes: 4,
            },
            VOp::Mul {
                dst: 1,
                a: 0,
                coeff: 0,
            },
            VOp::StoreRow {
                src: 1,
                ry: 0,
                rz: 0,
            },
        ];
        VectorKernel {
            name: "tiny".into(),
            width: 4,
            block: BrickDims::new(4, 1, 1),
            layout: LayoutKind::Brick,
            strategy: Strategy::Gather,
            temporal_degree: 1,
            coeffs: vec![2.0],
            stats: KernelStats::from_ops(&ops, 2),
            ops,
            num_regs: 2,
        }
    }

    #[test]
    fn tiny_kernel_validates() {
        assert_eq!(tiny_kernel().validate(), Ok(()));
    }

    #[test]
    fn read_before_write_rejected() {
        let mut k = tiny_kernel();
        k.ops.remove(0);
        assert!(k.validate().unwrap_err().contains("read before write"));
    }

    #[test]
    fn missing_store_rejected() {
        let mut k = tiny_kernel();
        k.ops.pop();
        assert!(k.validate().unwrap_err().contains("stores 0 rows"));
    }

    #[test]
    fn double_store_rejected() {
        let mut k = tiny_kernel();
        k.ops.push(VOp::StoreRow {
            src: 1,
            ry: 0,
            rz: 0,
        });
        assert!(k.validate().unwrap_err().contains("stored twice"));
    }

    #[test]
    fn out_of_range_row_coordinates_rejected() {
        // Block is 4x1x1: legal ry/rz are -1..2 (home row ± one block).
        let mut k = tiny_kernel();
        if let VOp::LoadRow { ry, .. } = &mut k.ops[0] {
            *ry = 2;
        }
        assert!(k.validate().unwrap_err().contains("ry 2 outside"));
        let mut k = tiny_kernel();
        if let VOp::LoadRow { rz, .. } = &mut k.ops[0] {
            *rz = -2;
        }
        assert!(k.validate().unwrap_err().contains("rz -2 outside"));
    }

    #[test]
    fn one_block_adjacent_rows_accepted() {
        for (ry, rz) in [(-1, 0), (1, 0), (0, -1), (0, 1)] {
            let mut k = tiny_kernel();
            if let VOp::LoadRow { ry: y, rz: z, .. } = &mut k.ops[0] {
                *y = ry;
                *z = rz;
            }
            assert_eq!(k.validate(), Ok(()), "ry {ry} rz {rz}");
        }
    }

    #[test]
    fn out_of_range_coeff_rejected() {
        let mut k = tiny_kernel();
        k.coeffs.clear();
        assert!(k.validate().unwrap_err().contains("coefficient index"));
    }

    #[test]
    fn width_mismatch_rejected() {
        let mut k = tiny_kernel();
        k.width = 8;
        assert!(k.validate().unwrap_err().contains("vector width"));
    }

    #[test]
    fn shift_dx_zero_rejected() {
        let mut k = tiny_kernel();
        k.ops.insert(
            1,
            VOp::ShiftX {
                dst: 1,
                src: 0,
                edge: 0,
                dx: 0,
            },
        );
        assert!(k.validate().unwrap_err().contains("shift dx"));
    }

    #[test]
    fn stats_count_ops() {
        let k = tiny_kernel();
        assert_eq!(k.stats.loads, 1);
        assert_eq!(k.stats.muls, 1);
        assert_eq!(k.stats.stores, 1);
        assert_eq!(k.stats.total_instructions(), 3);
        assert_eq!(k.stats.flops(), 1);
    }

    #[test]
    fn uses_and_defs() {
        let op = VOp::Fma {
            dst: 3,
            acc: 3,
            a: 5,
            coeff: 0,
        };
        assert_eq!(op.uses().collect::<Vec<_>>(), vec![3, 5]);
        assert_eq!(op.def(), Some(3));
        let st = VOp::StoreRow {
            src: 2,
            ry: 0,
            rz: 0,
        };
        assert_eq!(st.def(), None);
        assert_eq!(st.uses().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn map_regs_rewrites_everything() {
        let op = VOp::ShiftX {
            dst: 1,
            src: 2,
            edge: 3,
            dx: 1,
        };
        let m = op.map_regs(|r| r + 10);
        assert_eq!(
            m,
            VOp::ShiftX {
                dst: 11,
                src: 12,
                edge: 13,
                dx: 1
            }
        );
    }

    #[test]
    fn loaded_rows_dedup_and_uniqueness() {
        let k = tiny_kernel();
        assert_eq!(k.loaded_rows(), vec![(0, 0, 0)]);
        assert!(k.loads_are_unique());
    }
}
