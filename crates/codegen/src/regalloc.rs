//! Linear-scan register allocation for straight-line vector programs.
//!
//! The generator emits SSA-ish virtual registers; this pass maps them onto
//! a minimal pool of physical registers and reports the maximum number
//! simultaneously live — the per-thread register demand that drives the
//! GPU occupancy and spill models.

use std::collections::HashMap;

use crate::ir::{Reg, VOp};

/// Result of allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct Allocation {
    /// Rewritten instruction stream using physical registers.
    pub ops: Vec<VOp>,
    /// Number of physical registers used.
    pub num_regs: usize,
    /// Maximum simultaneously-live registers (equals `num_regs` for this
    /// allocator, which never leaves a register idle below the peak).
    pub max_live: u32,
}

/// Allocate physical registers for a straight-line virtual-register
/// program.
///
/// A dying operand's register is released *before* the defining operand of
/// the same instruction is allocated, so reductions (`acc' = acc + x·c`)
/// reuse their accumulator register exactly as a GPU compiler would.
pub fn allocate(ops: &[VOp]) -> Allocation {
    // Last instruction index at which each virtual register is read.
    let mut last_use: HashMap<Reg, usize> = HashMap::new();
    for (i, op) in ops.iter().enumerate() {
        for r in op.uses() {
            last_use.insert(r, i);
        }
    }

    let mut phys_of: HashMap<Reg, Reg> = HashMap::new();
    let mut free: Vec<Reg> = Vec::new();
    let mut next_phys: Reg = 0;
    let mut live: u32 = 0;
    let mut max_live: u32 = 0;
    let mut out = Vec::with_capacity(ops.len());

    for (i, op) in ops.iter().enumerate() {
        // Resolve operand registers first (they must already be mapped),
        // deduplicated in operand order: releases below must visit dying
        // registers deterministically or the free-list order (and with it
        // the physical numbering of every later definition) would vary
        // from run to run, breaking content-addressed kernel fingerprints.
        let mut resolved_uses: Vec<(Reg, Reg)> = Vec::new();
        for r in op.uses() {
            if resolved_uses.iter().any(|&(v, _)| v == r) {
                continue;
            }
            let p = *phys_of
                .get(&r)
                .unwrap_or_else(|| panic!("virtual register {r} used before definition"));
            resolved_uses.push((r, p));
        }

        // Release registers whose last use is this instruction.
        for (vreg, preg) in &resolved_uses {
            if last_use.get(vreg) == Some(&i) {
                phys_of.remove(vreg);
                free.push(*preg);
                live -= 1;
            }
        }

        // Allocate the definition.
        let def_phys = op.def().map(|d| {
            debug_assert!(
                !phys_of.contains_key(&d),
                "virtual register {d} defined twice"
            );
            let p = free.pop().unwrap_or_else(|| {
                let p = next_phys;
                next_phys += 1;
                p
            });
            // A value defined but never read (possible for stored rows via
            // StoreRow "use") still occupies its register until its last
            // use; values with no uses die immediately after definition.
            phys_of.insert(d, p);
            live += 1;
            max_live = max_live.max(live);
            (d, p)
        });

        out.push(op.map_regs(|r| {
            if let Some((d, p)) = def_phys {
                if r == d {
                    return p;
                }
            }
            resolved_uses
                .iter()
                .find(|&&(v, _)| v == r)
                .map_or(r, |&(_, p)| p)
        }));

        // Values that are never read die right away.
        if let Some((d, p)) = def_phys {
            if !last_use.contains_key(&d) {
                phys_of.remove(&d);
                free.push(p);
                live -= 1;
            }
        }
    }

    Allocation {
        ops: out,
        num_regs: next_phys as usize,
        max_live,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(dst: Reg) -> VOp {
        VOp::LoadRow {
            dst,
            rx: 0,
            ry: 0,
            rz: 0,
            lane0: 0,
            lanes: 4,
        }
    }

    #[test]
    fn sequential_reuse_needs_few_registers() {
        // v0 = load; v1 = v0 * c; store v1  ... repeated with fresh vregs
        let mut ops = Vec::new();
        for i in 0..4u16 {
            ops.push(load(2 * i));
            ops.push(VOp::Mul {
                dst: 2 * i + 1,
                a: 2 * i,
                coeff: 0,
            });
            ops.push(VOp::StoreRow {
                src: 2 * i + 1,
                ry: 0,
                rz: 0,
            });
        }
        let a = allocate(&ops);
        // each value dies at its consumer, whose result may alias it:
        // a single physical register suffices
        assert_eq!(a.num_regs, 1);
        assert_eq!(a.max_live, 1);
    }

    #[test]
    fn accumulator_chain_reuses_register() {
        // acc chain: v0=load, v1=load, v2 = fma(v0-as-acc...)
        let ops = vec![
            load(0),
            load(1),
            VOp::Mul {
                dst: 2,
                a: 0,
                coeff: 0,
            },
            VOp::Fma {
                dst: 3,
                acc: 2,
                a: 1,
                coeff: 1,
            },
            VOp::StoreRow {
                src: 3,
                ry: 0,
                rz: 0,
            },
        ];
        let a = allocate(&ops);
        // v0 and v1 live together before the Mul; every later result
        // aliases a dying operand, so the peak is 2
        assert_eq!(a.max_live, 2);
        assert_eq!(a.num_regs, 2);
    }

    #[test]
    fn long_lived_values_drive_pressure() {
        // load N rows, then consume them all at the end
        let n = 10u16;
        let mut ops: Vec<VOp> = (0..n).map(load).collect();
        let mut acc = 0;
        for i in 1..n {
            let dst = n + i;
            ops.push(VOp::Add { dst, a: acc, b: i });
            acc = dst;
        }
        ops.push(VOp::StoreRow {
            src: acc,
            ry: 0,
            rz: 0,
        });
        let a = allocate(&ops);
        assert_eq!(a.max_live, n as u32); // all rows live before reduction
    }

    #[test]
    fn unread_definition_dies_immediately() {
        let ops = vec![
            load(0),
            load(1),
            VOp::StoreRow {
                src: 1,
                ry: 0,
                rz: 0,
            },
        ];
        let a = allocate(&ops);
        // v0 never read: its register frees instantly, v1 reuses it
        assert_eq!(a.num_regs, 1);
    }

    #[test]
    fn rewritten_program_structure_preserved() {
        let ops = vec![
            load(5),
            VOp::Mul {
                dst: 9,
                a: 5,
                coeff: 0,
            },
            VOp::StoreRow {
                src: 9,
                ry: 0,
                rz: 0,
            },
        ];
        let a = allocate(&ops);
        assert_eq!(a.ops.len(), 3);
        match (&a.ops[0], &a.ops[1], &a.ops[2]) {
            (
                VOp::LoadRow { dst: d0, .. },
                VOp::Mul { dst: d1, a: a1, .. },
                VOp::StoreRow { src, .. },
            ) => {
                assert_eq!(a1, d0);
                assert_eq!(src, d1);
            }
            other => panic!("unexpected shape {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "used before definition")]
    fn use_before_def_panics() {
        let ops = vec![VOp::StoreRow {
            src: 0,
            ry: 0,
            rz: 0,
        }];
        let _ = allocate(&ops);
    }
}
