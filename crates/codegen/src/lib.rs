//! # brick-codegen
//!
//! The vector code generator of the BrickLib reproduction: lowers a
//! normalised stencil ([`brick_dsl::Stencil`]) to an abstract vector IR
//! ([`ir::VectorKernel`]) implementing the three optimisations of paper
//! §3 — vector folding, reuse of array common subexpressions through
//! register buffers + shuffles, and vector scatter for high-order
//! stencils — plus source emitters that render the kernels as CUDA, HIP
//! or SYCL text ([`emit`]).
//!
//! ```
//! use brick_codegen::{generate, CodegenOptions, LayoutKind};
//! use brick_dsl::shape::StencilShape;
//!
//! let stencil = StencilShape::star(2).stencil();
//! let bindings = stencil.default_bindings();
//! let kernel = generate(
//!     &stencil,
//!     &bindings,
//!     LayoutKind::Brick,
//!     32, // NVIDIA A100 warp width
//!     CodegenOptions::default(),
//! )
//! .unwrap();
//! assert!(kernel.validate().is_ok());
//! assert!(kernel.loads_are_unique()); // every row loaded exactly once
//! ```

pub mod emit;
pub mod emit_cpu;
pub mod generate;
pub mod ir;
pub mod regalloc;
pub mod spec;
pub(crate) mod temporal;

pub use emit::{emit_scalar, emit_vector, Dialect};
pub use emit_cpu::{emit_cpu_vector, CpuIsa};
pub use generate::{fused_vreg_count, generate, CodegenError, CodegenOptions, VREG_CAPACITY};
pub use ir::{KernelStats, LayoutKind, Strategy, VOp, VectorKernel};
pub use spec::SpecParams;
