//! Temporal fusion: lower `T` stencil timesteps into one vector kernel.
//!
//! AN5D-style temporal blocking (Matsumura et al.): instead of writing the
//! field to memory after every timestep, a fused kernel keeps `T − 1`
//! levels of intermediate planes in registers and stores only the final
//! level — trading `(T − 1)` round trips to DRAM for halo recomputation.
//! The arithmetic intensity of the stored points grows ≈ linearly with
//! `T` while DRAM bytes per applied timestep shrink toward `16/T` of the
//! unfused kernel's.
//!
//! ## The schedule
//!
//! Level `0` is the input field; level `s` is the field after `s` stencil
//! applications. Every level-`s` row a later level consumes is one of
//! three register families:
//!
//! - **Home** rows `I_s(ry, rz)`: the home block's row, valid on all
//!   `width` lanes. Computed from level `s−1` home rows with `ShiftX`
//!   shuffles whose wrapped lanes read the `E±` families below.
//! - **Edge-plus** rows `E⁺_s(ry, rz)`: the `+x` neighbour block's row,
//!   valid on lanes `[0, h_s)` where `h_s = (T − s)·r_x` — exactly the
//!   lanes later shuffles wrap into. Lanes `≥ h_s` hold deterministic
//!   garbage that is provably never consumed (see the halo argument in
//!   DESIGN.md §14).
//! - **Edge-minus** rows `E⁻_s(ry, rz)`: the `−x` neighbour, valid on
//!   lanes `[width − h_s, width)`.
//!
//! Level 0 of all three families is plain `LoadRow`s (`rx ∈ {−1, 0, +1}`),
//! so feasibility requires `T·r ≤ block extent` per axis — checked by
//! [`crate::generate::generate`] before this scheduler runs.
//!
//! ## Bit-for-bit contract
//!
//! Each row of each level is evaluated with *exactly* the gather
//! schedule's op sequence: per coefficient class (in class order), the
//! shifted taps are summed with `Add` in tap order, then the first class
//! is scaled with `Mul` and later classes chained with `Fma`. IEEE ops
//! are deterministic functions of their operand values, so every home
//! lane of level `s` is bit-identical to what `s` sequential launches of
//! the `T = 1` gather kernel produce, and every valid `E±` lane is
//! bit-identical to the corresponding lane of the neighbour block's home
//! row. The differential suite (`crates/vm/tests/temporal_diff.rs`) pins
//! this with `to_bits` equality; never reassociate here without loosening
//! that suite explicitly.
//!
//! ## Need sets
//!
//! Which rows each level actually needs is computed by *backward
//! dilation* from the stored home block through the real tap offsets
//! (diamond-shaped for star stencils, box-shaped for cubes) — the
//! association-aware halo growth. Computing `I_s(row)` consumes
//! `I_{s−1}(row + (dy,dz))` for every tap plus `E⁺_{s−1}`/`E⁻_{s−1}` of
//! the same rows as shuffle edges for `dx > 0`/`dx < 0`; computing
//! `E⁺_s(row)` consumes `E⁺_{s−1}(row + (dy,dz))` plus `I_{s−1}` rows as
//! edges for `dx < 0` (the wrap back into the home block), and `E⁻`
//! mirrors it.

use std::collections::{BTreeSet, HashMap};

use brick_core::BrickDims;

use crate::generate::{Builder, Class};
use crate::ir::{CoeffIdx, Reg};

/// Which block a register family tracks.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum Kind {
    /// The home block (valid on all lanes).
    Home,
    /// The `+x` neighbour (valid on the leading `h_s` lanes).
    Ep,
    /// The `−x` neighbour (valid on the trailing `h_s` lanes).
    Em,
}

type Row = (i16, i16); // (ry, rz)

/// Registers holding one level of the field, per family.
#[derive(Default)]
struct Level {
    home: HashMap<Row, Reg>,
    ep: HashMap<Row, Reg>,
    em: HashMap<Row, Reg>,
}

impl Level {
    fn of(&self, kind: Kind) -> &HashMap<Row, Reg> {
        match kind {
            Kind::Home => &self.home,
            Kind::Ep => &self.ep,
            Kind::Em => &self.em,
        }
    }
}

/// Rows each family needs at each level, `0 ..= t`.
struct Needs {
    home: Vec<BTreeSet<Row>>,
    ep: Vec<BTreeSet<Row>>,
    em: Vec<BTreeSet<Row>>,
}

/// Backward need-set propagation from the stored home block. Depends
/// only on the flat tap-offset set — the class partition is irrelevant.
fn compute_needs(taps: &[[i32; 3]], block: BrickDims, t: usize) -> Needs {
    let (by, bz) = (block.by as i16, block.bz as i16);
    let mut home: Vec<BTreeSet<Row>> = vec![BTreeSet::new(); t + 1];
    let mut ep: Vec<BTreeSet<Row>> = vec![BTreeSet::new(); t + 1];
    let mut em: Vec<BTreeSet<Row>> = vec![BTreeSet::new(); t + 1];
    for rz in 0..bz {
        for ry in 0..by {
            home[t].insert((ry, rz));
        }
    }
    for s in (1..=t).rev() {
        let (cur_home, cur_ep, cur_em) = (home[s].clone(), ep[s].clone(), em[s].clone());
        for &[dx, dy, dz] in taps {
            let (dy, dz) = (dy as i16, dz as i16);
            for &(ry, rz) in &cur_home {
                let row = (ry + dy, rz + dz);
                home[s - 1].insert(row);
                if dx > 0 {
                    ep[s - 1].insert(row);
                } else if dx < 0 {
                    em[s - 1].insert(row);
                }
            }
            for &(ry, rz) in &cur_ep {
                let row = (ry + dy, rz + dz);
                ep[s - 1].insert(row);
                if dx < 0 {
                    home[s - 1].insert(row);
                }
            }
            for &(ry, rz) in &cur_em {
                let row = (ry + dy, rz + dz);
                em[s - 1].insert(row);
                if dx > 0 {
                    home[s - 1].insert(row);
                }
            }
        }
    }
    Needs { home, ep, em }
}

/// Exact count of virtual registers [`schedule_temporal`] would allocate
/// for this tap set, block and fusion degree — computed from the need
/// sets alone, with no IR emitted. Mirrors the emitter precisely:
///
/// - level 0 allocates one register per loaded row (the three need sets,
///   each row loaded exactly once);
/// - each evaluated row allocates `points` arithmetic registers — per
///   class `taps_c − 1` adds plus one `Mul`/`Fma`, and `Σ taps_c =
///   points` regardless of how taps partition into classes;
/// - shifted operands are memoized per level on `(family, source row,
///   dx)`, so each distinct key allocates exactly one register.
///
/// `tests::planned_vreg_count_is_exact` pins this against the real
/// emitter op by op; [`crate::generate::generate`] uses it to reject
/// programs that would overflow the `u16` register-id space before any
/// scheduling work happens.
pub(crate) fn fused_vreg_count(taps: &[[i32; 3]], block: BrickDims, t: u32) -> usize {
    let t = t as usize;
    let needs = compute_needs(taps, block, t);
    let points = taps.len();
    let mut n = needs.home[0].len() + needs.ep[0].len() + needs.em[0].len();
    for s in 1..=t {
        let mut shifts: BTreeSet<(u8, Row, i16)> = BTreeSet::new();
        for (fam, set) in [
            (0u8, &needs.home[s]),
            (1u8, &needs.ep[s]),
            (2u8, &needs.em[s]),
        ] {
            for &(ry, rz) in set {
                for &[dx, dy, dz] in taps {
                    if dx != 0 {
                        shifts.insert((fam, (ry + dy as i16, rz + dz as i16), dx as i16));
                    }
                }
            }
        }
        let rows = needs.home[s].len() + needs.ep[s].len() + needs.em[s].len();
        n += shifts.len() + rows * points;
    }
    n
}

/// Rows of a need set in the gather schedule's `(rz, ry)` visit order.
fn ordered(set: &BTreeSet<Row>) -> Vec<Row> {
    let mut v: Vec<Row> = set.iter().copied().collect();
    v.sort_by_key(|&(ry, rz)| (rz, ry));
    v
}

/// Emit the T-fused kernel body. Preconditions (checked by `generate`):
/// `t ≥ 2` and `t·reach ≤ block extent` on every axis.
pub(crate) fn schedule_temporal(b: &mut Builder, classes: &[Class], block: BrickDims, t: u32) {
    let t = t as usize;
    let taps: Vec<[i32; 3]> = classes
        .iter()
        .flat_map(|c| c.taps.iter().copied())
        .collect();
    let needs = compute_needs(&taps, block, t);

    // Level 0: plain loads. Neighbour-block rows only ever contribute
    // their `h_0 = T·r_x` boundary lanes (as shuffle edges at step 1 and
    // as sources of the `E±` chains), so they load a lane *window* — this
    // is what keeps the fused kernel's x reach at `T·r_x` rather than a
    // whole block. The windows survive `narrow_edge_loads` untouched when
    // the row is also a shuffle source; edge-only rows may be narrowed
    // further.
    let x_reach = classes
        .iter()
        .flat_map(|c| c.taps.iter())
        .map(|&[dx, _, _]| dx.unsigned_abs())
        .max()
        .unwrap_or(0);
    let h0 = (t as u32 * x_reach) as u16;
    let w = block.bx as u16;
    debug_assert!(h0 <= w, "feasibility checked by generate()");
    let mut prev = Level::default();
    for &(ry, rz) in &ordered(&needs.home[0]) {
        prev.home.insert((ry, rz), b.row(0, ry, rz));
    }
    for &(ry, rz) in &ordered(&needs.ep[0]) {
        prev.ep.insert((ry, rz), b.row_window(1, ry, rz, 0, h0));
    }
    for &(ry, rz) in &ordered(&needs.em[0]) {
        prev.em
            .insert((ry, rz), b.row_window(-1, ry, rz, w - h0, h0));
    }

    for s in 1..=t {
        let mut cur = Level::default();
        // Shifted variants of the previous level, reused across taps and
        // consumers within this level (the analogue of Builder::shifts).
        let mut shifts: HashMap<(Kind, Row, i16), Reg> = HashMap::new();
        for &(ry, rz) in &ordered(&needs.home[s]) {
            let r = eval_row(b, classes, Kind::Home, (ry, rz), &prev, &mut shifts);
            if s == t {
                b.store(r, ry, rz);
            } else {
                cur.home.insert((ry, rz), r);
            }
        }
        for &(ry, rz) in &ordered(&needs.ep[s]) {
            let r = eval_row(b, classes, Kind::Ep, (ry, rz), &prev, &mut shifts);
            cur.ep.insert((ry, rz), r);
        }
        for &(ry, rz) in &ordered(&needs.em[s]) {
            let r = eval_row(b, classes, Kind::Em, (ry, rz), &prev, &mut shifts);
            cur.em.insert((ry, rz), r);
        }
        prev = cur;
    }
}

/// One gather-scheduled row of one family at the next level: per class,
/// sum the shifted taps in tap order, then `Mul` the first class and
/// `Fma`-chain the rest — the exact `T = 1` op sequence.
fn eval_row(
    b: &mut Builder,
    classes: &[Class],
    kind: Kind,
    (ry, rz): Row,
    prev: &Level,
    shifts: &mut HashMap<(Kind, Row, i16), Reg>,
) -> Reg {
    let mut acc: Option<Reg> = None;
    for (ci, class) in classes.iter().enumerate() {
        let mut sum: Option<Reg> = None;
        for &[dx, dy, dz] in &class.taps {
            let row = (ry + dy as i16, rz + dz as i16);
            let v = operand(b, kind, row, dx as i16, prev, shifts);
            sum = Some(match sum {
                None => v,
                Some(s) => b.add(s, v),
            });
        }
        let s = sum.expect("classes are non-empty");
        acc = Some(match acc {
            None => b.mul(s, ci as CoeffIdx),
            Some(a) => b.fma(a, s, ci as CoeffIdx),
        });
    }
    acc.expect("stencil has at least one class")
}

/// The previous-level value of `row` in `kind`'s block, shifted by `dx`
/// lanes. Shuffle wrap lanes are wired so that every *consumed* lane is
/// exact:
///
/// - `Home` shifts wrap into `E⁺`/`E⁻` (the true neighbour values).
/// - `E⁺` shifts with `dx < 0` wrap back into the home row (lane
///   `i < |dx|` of the `+x` block at offset `dx` *is* home lane
///   `width + i + dx`); with `dx > 0` the wrapped lanes land outside the
///   valid window and the source register doubles as a deterministic
///   dummy edge.
/// - `E⁻` mirrors `E⁺`.
fn operand(
    b: &mut Builder,
    kind: Kind,
    row: Row,
    dx: i16,
    prev: &Level,
    shifts: &mut HashMap<(Kind, Row, i16), Reg>,
) -> Reg {
    let get = |fam: Kind| -> Reg {
        *prev.of(fam).get(&row).unwrap_or_else(|| {
            unreachable!("need-set propagation missed row {row:?}");
        })
    };
    if dx == 0 {
        return get(kind);
    }
    if let Some(&r) = shifts.get(&(kind, row, dx)) {
        return r;
    }
    let (src, edge) = match kind {
        Kind::Home => (
            get(Kind::Home),
            get(if dx > 0 { Kind::Ep } else { Kind::Em }),
        ),
        Kind::Ep => (
            get(Kind::Ep),
            get(if dx < 0 { Kind::Home } else { Kind::Ep }),
        ),
        Kind::Em => (
            get(Kind::Em),
            get(if dx > 0 { Kind::Home } else { Kind::Em }),
        ),
    };
    let r = b.shift_raw(src, edge, dx);
    shifts.insert((kind, row, dx), r);
    r
}

#[cfg(test)]
mod tests {
    use crate::generate::{generate, CodegenError, CodegenOptions};
    use crate::ir::{LayoutKind, VOp};
    use brick_dsl::shape::StencilShape;

    /// Feasible fusion degrees for a shape under the default 4×4 block:
    /// `T·r ≤ 4` on y/z (x allows more, width ≥ 16).
    pub(crate) fn max_degree(shape: &StencilShape) -> u32 {
        4 / shape.radius
    }

    fn gen(shape: StencilShape, t: u32, width: usize) -> crate::ir::VectorKernel {
        let st = shape.stencil();
        let b = st.default_bindings();
        generate(
            &st,
            &b,
            LayoutKind::Brick,
            width,
            CodegenOptions {
                temporal_degree: t,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn fused_paper_kernels_generate_and_validate() {
        for shape in StencilShape::paper_suite() {
            for t in 2..=max_degree(&shape) {
                for width in [16, 32, 64] {
                    for layout in [LayoutKind::Brick, LayoutKind::Array] {
                        let st = shape.stencil();
                        let b = st.default_bindings();
                        let k = generate(
                            &st,
                            &b,
                            layout,
                            width,
                            CodegenOptions {
                                temporal_degree: t,
                                ..Default::default()
                            },
                        )
                        .unwrap();
                        k.validate()
                            .unwrap_or_else(|e| panic!("{shape} t{t} w{width} {layout}: {e}"));
                        assert_eq!(k.temporal_degree, t);
                        assert!(k.name.ends_with(&format!("_t{t}")), "{}", k.name);
                    }
                }
            }
        }
    }

    #[test]
    fn degree_one_is_the_plain_kernel() {
        let k1 = gen(StencilShape::star(1), 1, 16);
        let st = StencilShape::star(1).stencil();
        let b = st.default_bindings();
        let plain = generate(&st, &b, LayoutKind::Brick, 16, CodegenOptions::default()).unwrap();
        assert_eq!(k1.name, plain.name);
        assert_eq!(k1.ops, plain.ops);
        assert_eq!(k1.temporal_degree, 1);
    }

    #[test]
    fn infeasible_degree_rejected() {
        let st = StencilShape::star(3).stencil();
        let b = st.default_bindings();
        let err = generate(
            &st,
            &b,
            LayoutKind::Brick,
            32,
            CodegenOptions {
                temporal_degree: 2, // 2·3 = 6 > by = 4
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, CodegenError::TemporalTooDeep { .. }), "{err}");
        let err0 = generate(
            &st,
            &b,
            LayoutKind::Brick,
            32,
            CodegenOptions {
                temporal_degree: 0,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(
            err0,
            CodegenError::TemporalTooDeep { degree: 0, .. }
        ));
    }

    #[test]
    fn planned_vreg_count_is_exact() {
        // the planner's contract: for every feasible (shape, block, T) it
        // predicts the emitter's allocation count op for op — each
        // non-store op allocates exactly one fresh register, so the count
        // is `ops − stores` on the raw (pre-regalloc) program
        use crate::generate::{group_classes, Builder};
        for shape in [
            StencilShape::star(1),
            StencilShape::star(2),
            StencilShape::cube(1),
            StencilShape::cube(2),
        ] {
            let st = shape.stencil();
            let bind = st.default_bindings();
            let classes = group_classes(&st, &bind).unwrap();
            let taps: Vec<[i32; 3]> = classes
                .iter()
                .flat_map(|c| c.taps.iter().copied())
                .collect();
            for (by, bz) in [(4usize, 4usize), (8, 8), (8, 4), (16, 16)] {
                for t in 2..=3u32 {
                    let reach = (t * shape.radius) as usize;
                    if reach > by.min(bz) {
                        continue;
                    }
                    let block = brick_core::BrickDims::new(32, by, bz);
                    let planned = super::fused_vreg_count(&taps, block, t);
                    if planned > crate::generate::VREG_CAPACITY {
                        continue; // the emitter would (rightly) refuse
                    }
                    let mut b = Builder::new(block.bx);
                    super::schedule_temporal(&mut b, &classes, block, t);
                    let stores = b
                        .ops
                        .iter()
                        .filter(|op| matches!(op, VOp::StoreRow { .. }))
                        .count();
                    assert_eq!(
                        planned,
                        b.ops.len() - stores,
                        "{shape} block ({by},{bz}) t{t}: planner diverged from emitter"
                    );
                }
            }
        }
    }

    #[test]
    fn oversized_fused_schedules_error_cleanly() {
        // cube-2 fused twice over a 16×16 block wants far more than 2¹⁶
        // virtual registers; generate must refuse with a typed error
        // instead of panicking mid-emission
        let shape = StencilShape::cube(2);
        let st = shape.stencil();
        assert!(
            crate::generate::fused_vreg_count(&st, (16, 16), 2) > crate::generate::VREG_CAPACITY
        );
        let b = st.default_bindings();
        let err = generate(
            &st,
            &b,
            LayoutKind::Brick,
            32,
            CodegenOptions {
                temporal_degree: 2,
                block_yz: (16, 16),
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, CodegenError::ProgramTooLarge { .. }), "{err}");
    }

    #[test]
    fn fused_loads_cover_the_t_r_halo_exactly() {
        // star-1 T=2: loaded home rows are the L1-dilation of the 4×4
        // block by radius 2 in (y,z), i.e. reach 2 on y and z.
        let k = gen(StencilShape::star(1), 2, 16);
        let mut min_ry = i16::MAX;
        let mut max_ry = i16::MIN;
        for op in &k.ops {
            if let VOp::LoadRow { ry, .. } = *op {
                min_ry = min_ry.min(ry);
                max_ry = max_ry.max(ry);
            }
        }
        assert_eq!((min_ry, max_ry), (-2, 5));
    }

    #[test]
    fn fused_flops_exceed_t_times_unfused() {
        // Halo recomputation means the fused kernel does strictly more
        // than T× the unfused block FLOPs — but stores the same rows.
        let k1 = gen(StencilShape::star(1), 1, 32);
        let k3 = gen(StencilShape::star(1), 3, 32);
        assert!(k3.stats.flops() > 3 * k1.stats.flops());
        assert_eq!(k3.stats.stores, k1.stats.stores);
    }
}
