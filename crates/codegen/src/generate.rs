//! The vector code generator.
//!
//! Implements the three domain-specific optimisations of BrickLib's
//! generator (paper §3):
//!
//! 1. **Vector folding** (Yount): the brick's contiguous `x` extent equals
//!    the architecture vector width, so every value the kernel touches is
//!    one full-width vector — a brick row.
//! 2. **Reuse of array common subexpressions**: each input row is loaded
//!    exactly once per block and held in a register buffer; shifted
//!    x-variants are produced with register-file shuffles instead of
//!    reloads, "shifting iteration spaces rather than data".
//! 3. **Vector scatter** (associative reordering via statement splitting,
//!    Stock et al.): for high-order stencils the gather schedule's reuse
//!    buffers exceed the register budget, so the generator switches to
//!    scattering each input row into all output accumulators that use it.
//!
//! The same schedule serves both layouts ([`LayoutKind::Brick`] and
//! [`LayoutKind::Array`]); only row→address resolution differs, which is
//! exactly how the paper isolates the data-layout contribution from the
//! code-generation contribution.

use std::collections::HashMap;

use brick_core::BrickDims;
use brick_dsl::stencil::{CoeffBindings, LinCoeff, Stencil, StencilError};

use crate::ir::{CoeffIdx, KernelStats, LayoutKind, Reg, Strategy, VOp, VectorKernel};
use crate::regalloc;

/// Errors produced by the generator.
#[derive(Debug, Clone, PartialEq)]
pub enum CodegenError {
    /// Stencil reach exceeds what one neighbouring block can serve.
    #[allow(missing_docs)]
    ReachTooLarge { axis: usize, reach: i32, max: usize },
    /// Error resolving the stencil's coefficients.
    Stencil(StencilError),
    /// More coefficient classes than the IR can index.
    TooManyClasses(usize),
    /// Temporal fusion degree infeasible: `T·reach` exceeds the block
    /// extent on `axis` (the fused kernel would need loads more than one
    /// block away), or the degree is zero.
    #[allow(missing_docs)]
    TemporalTooDeep {
        degree: u32,
        axis: usize,
        reach: i64,
        max: usize,
    },
    /// The fused schedule would allocate more virtual registers than the
    /// `u16` id space holds ([`VREG_CAPACITY`]); counted exactly before
    /// any scheduling by [`fused_vreg_count`].
    #[allow(missing_docs)]
    ProgramTooLarge { vregs: usize, capacity: usize },
}

impl std::fmt::Display for CodegenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodegenError::ReachTooLarge { axis, reach, max } => write!(
                f,
                "stencil reach {reach} on axis {axis} exceeds the block extent {max} \
                 (accesses must stay within one neighbouring block)"
            ),
            CodegenError::Stencil(e) => write!(f, "{e}"),
            CodegenError::TooManyClasses(n) => write!(f, "{n} coefficient classes overflow u16"),
            CodegenError::TemporalTooDeep {
                degree,
                axis,
                reach,
                max,
            } => write!(
                f,
                "temporal degree {degree} needs fused reach {reach} on axis {axis}, \
                 exceeding the block extent {max} (accesses must stay within one \
                 neighbouring block)"
            ),
            CodegenError::ProgramTooLarge { vregs, capacity } => write!(
                f,
                "fused schedule needs {vregs} virtual registers, overflowing the \
                 id space (capacity {capacity})"
            ),
        }
    }
}

impl std::error::Error for CodegenError {}

impl From<StencilError> for CodegenError {
    fn from(e: StencilError) -> Self {
        CodegenError::Stencil(e)
    }
}

/// Generator options.
#[derive(Debug, Clone, Copy)]
pub struct CodegenOptions {
    /// Scheduling strategy; [`Strategy::Auto`] switches to scatter when the
    /// gather schedule's register pressure exceeds `register_budget`.
    pub strategy: Strategy,
    /// Per-thread register budget used by [`Strategy::Auto`] (a typical
    /// GPU exposes 255 registers per thread; sustaining occupancy needs
    /// far fewer, so the default is conservative).
    pub register_budget: u32,
    /// `y`/`z` extents of the home block (the brick's `by × bz`).
    pub block_yz: (usize, usize),
    /// Number of stencil timesteps to fuse into the kernel (AN5D-style
    /// temporal blocking). `1` generates the plain spatial kernel; `T > 1`
    /// streams `T − 1` levels of intermediate planes through registers and
    /// stores `stencil^T`, bit-identical to `T` sequential applications of
    /// the gather schedule. Requires `T·reach ≤ block extent` per axis.
    pub temporal_degree: u32,
}

impl Default for CodegenOptions {
    fn default() -> Self {
        CodegenOptions {
            strategy: Strategy::Auto,
            register_budget: 96,
            block_yz: (4, 4),
            temporal_degree: 1,
        }
    }
}

/// Generate a vector kernel for `stencil` on the given layout and vector
/// width.
pub fn generate(
    stencil: &Stencil,
    bindings: &CoeffBindings,
    layout: LayoutKind,
    width: usize,
    opts: CodegenOptions,
) -> Result<VectorKernel, CodegenError> {
    let _span = brick_obs::span_cat(format!("codegen:{}", stencil.name()), "codegen");
    let block = BrickDims::new(width, opts.block_yz.0, opts.block_yz.1);
    let reach = stencil.reach();
    for (axis, (&r, max)) in reach.iter().zip([block.bx, block.by, block.bz]).enumerate() {
        if r as usize > max {
            return Err(CodegenError::ReachTooLarge {
                axis,
                reach: r,
                max,
            });
        }
    }

    let t = opts.temporal_degree;
    if t != 1 {
        for (axis, (&r, max)) in reach.iter().zip([block.bx, block.by, block.bz]).enumerate() {
            let fused = t as i64 * r as i64;
            if t == 0 || fused > max as i64 {
                return Err(CodegenError::TemporalTooDeep {
                    degree: t,
                    axis,
                    reach: fused,
                    max,
                });
            }
        }
    }

    if t > 1 {
        let vregs = fused_vreg_count(stencil, opts.block_yz, t);
        if vregs > VREG_CAPACITY {
            return Err(CodegenError::ProgramTooLarge {
                vregs,
                capacity: VREG_CAPACITY,
            });
        }
    }

    let classes = {
        let _s = brick_obs::span_cat("group-classes", "codegen");
        group_classes(stencil, bindings)?
    };
    if classes.len() > u16::MAX as usize {
        return Err(CodegenError::TooManyClasses(classes.len()));
    }

    // A fused kernel is inherently gather-scheduled (each intermediate
    // plane is a class-summed gather over the previous level), so the
    // strategy choice only applies at T = 1.
    if t > 1 {
        return Ok(build(stencil, &classes, block, layout, Strategy::Gather, t));
    }

    let strategy = match opts.strategy {
        Strategy::Gather | Strategy::Scatter => opts.strategy,
        Strategy::Auto => {
            let gather = build(stencil, &classes, block, layout, Strategy::Gather, 1);
            if gather.stats.max_live <= opts.register_budget {
                return Ok(gather);
            }
            Strategy::Scatter
        }
    };
    Ok(build(stencil, &classes, block, layout, strategy, 1))
}

/// Registers the virtual-register allocator can hand out before ids
/// overflow `u16` (the IR's [`Reg`] type).
pub const VREG_CAPACITY: usize = u16::MAX as usize;

/// Exact number of virtual registers a `temporal_degree`-fused kernel of
/// `stencil` on a `block_yz` block would allocate — computed from the
/// tap offsets and need sets alone, before any IR is emitted, so callers
/// (the autotuner's validity predicate, [`generate`] itself) can reject
/// candidates whose fused schedule overflows [`VREG_CAPACITY`] without
/// paying for or crashing in compilation. Independent of the vector
/// width, the coefficient bindings and the class partition.
pub fn fused_vreg_count(
    stencil: &Stencil,
    block_yz: (usize, usize),
    temporal_degree: u32,
) -> usize {
    use std::sync::{Mutex, OnceLock};
    /// Memo key: the tap list itself (not a lossy hash of it — a
    /// collision between two stencils would silently return the wrong
    /// count), block extents, fusion degree.
    type MemoKey = (Vec<[i32; 3]>, usize, usize, u32);
    // the count is a pure function of (taps, block, T) and the need-set
    // dilation is not cheap for deep fusions of wide stencils; the
    // autotuner's validity predicate calls this per candidate, so memoize
    // globally (a handful of entries per shape)
    static MEMO: OnceLock<Mutex<HashMap<MemoKey, usize>>> = OnceLock::new();
    let taps: Vec<[i32; 3]> = stencil.taps().iter().map(|t| t.offset).collect();
    let key = (taps, block_yz.0, block_yz.1, temporal_degree);
    let memo = MEMO.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(&n) = memo.lock().expect("vreg memo poisoned").get(&key) {
        return n;
    }
    let block = BrickDims::new(1, block_yz.0, block_yz.1);
    let n = crate::temporal::fused_vreg_count(&key.0, block, temporal_degree);
    memo.lock().expect("vreg memo poisoned").insert(key, n);
    n
}

/// One coefficient class: resolved value plus the member tap offsets.
pub(crate) struct Class {
    pub(crate) value: f64,
    pub(crate) taps: Vec<[i32; 3]>,
}

pub(crate) fn group_classes(
    stencil: &Stencil,
    bindings: &CoeffBindings,
) -> Result<Vec<Class>, CodegenError> {
    let mut keys: Vec<&LinCoeff> = Vec::new();
    let mut classes: Vec<Class> = Vec::new();
    for t in stencil.taps() {
        match keys.iter().position(|k| **k == t.coeff) {
            Some(i) => classes[i].taps.push(t.offset),
            None => {
                keys.push(&t.coeff);
                classes.push(Class {
                    value: t.coeff.eval(bindings)?,
                    taps: vec![t.offset],
                });
            }
        }
    }
    Ok(classes)
}

fn build(
    stencil: &Stencil,
    classes: &[Class],
    block: BrickDims,
    layout: LayoutKind,
    strategy: Strategy,
    temporal_degree: u32,
) -> VectorKernel {
    let mut b = Builder::new(block.bx);
    {
        let _s = brick_obs::span_cat("schedule", "codegen");
        if temporal_degree > 1 {
            crate::temporal::schedule_temporal(&mut b, classes, block, temporal_degree);
        } else {
            match strategy {
                Strategy::Gather => schedule_gather(&mut b, classes, block),
                Strategy::Scatter => schedule_scatter(&mut b, classes, block),
                Strategy::Auto => unreachable!("Auto resolved by generate()"),
            }
        }
        narrow_edge_loads(&mut b.ops, block.bx);
    }
    let alloc = {
        let _s = brick_obs::span_cat("regalloc", "codegen");
        regalloc::allocate(&b.ops)
    };
    let stats = KernelStats::from_ops(&alloc.ops, alloc.max_live);
    brick_obs::counter_add("codegen.kernels", 1);
    brick_obs::counter_add("codegen.ops", alloc.ops.len() as u64);
    brick_obs::histogram_record("codegen.regalloc.max_live", alloc.max_live as f64);
    brick_obs::histogram_record("codegen.regalloc.num_regs", alloc.num_regs as f64);
    let name = if temporal_degree > 1 {
        format!(
            "{}_{}_cg_{}_t{}",
            stencil.name(),
            layout,
            strategy,
            temporal_degree
        )
    } else {
        format!("{}_{}_cg_{}", stencil.name(), layout, strategy)
    };
    VectorKernel {
        name,
        width: block.bx,
        block,
        layout,
        strategy,
        temporal_degree,
        coeffs: classes.iter().map(|c| c.value).collect(),
        ops: alloc.ops,
        num_regs: alloc.num_regs,
        stats,
    }
}

/// Emission helper holding the virtual-register program and the reuse
/// caches.
pub(crate) struct Builder {
    width: usize,
    pub(crate) ops: Vec<VOp>,
    next: Reg,
    rows: HashMap<(i8, i16, i16), Reg>,
    shifts: HashMap<(i16, i16, i16), Reg>,
}

impl Builder {
    pub(crate) fn new(width: usize) -> Self {
        Builder {
            width,
            ops: Vec::new(),
            next: 0,
            rows: HashMap::new(),
            shifts: HashMap::new(),
        }
    }

    fn fresh(&mut self) -> Reg {
        let r = self.next;
        self.next = self
            .next
            .checked_add(1)
            .expect("virtual register ids overflow u16");
        r
    }

    /// Load (or reuse) the input row `(rx, ry, rz)` — emitted as a full
    /// row; [`narrow_edge_loads`] later shrinks edge rows to the lanes
    /// their shuffles consume.
    pub(crate) fn row(&mut self, rx: i8, ry: i16, rz: i16) -> Reg {
        let w = self.width as u16;
        self.row_window(rx, ry, rz, 0, w)
    }

    /// Load (or reuse) row `(rx, ry, rz)` restricted to the lane window
    /// `[lane0, lane0 + lanes)`; the other lanes are zero-filled by the
    /// VM. The temporal scheduler uses this for neighbour-block rows whose
    /// valid halo is provably narrower than a full row, which keeps the
    /// kernel's load reach at `T·r` instead of a whole block.
    pub(crate) fn row_window(&mut self, rx: i8, ry: i16, rz: i16, lane0: u16, lanes: u16) -> Reg {
        if let Some(&r) = self.rows.get(&(rx, ry, rz)) {
            return r;
        }
        let dst = self.fresh();
        self.ops.push(VOp::LoadRow {
            dst,
            rx,
            ry,
            rz,
            lane0,
            lanes,
        });
        self.rows.insert((rx, ry, rz), dst);
        dst
    }

    /// The row `(0, ry, rz)` shifted by `dx` lanes (0 → the plain row),
    /// reusing a previously-produced shift where possible.
    fn shifted(&mut self, ry: i16, rz: i16, dx: i16) -> Reg {
        if dx == 0 {
            return self.row(0, ry, rz);
        }
        debug_assert!((dx.unsigned_abs() as usize) < self.width);
        if let Some(&r) = self.shifts.get(&(ry, rz, dx)) {
            return r;
        }
        let src = self.row(0, ry, rz);
        let edge = self.row(dx.signum() as i8, ry, rz);
        let dst = self.fresh();
        self.ops.push(VOp::ShiftX { dst, src, edge, dx });
        self.shifts.insert((ry, rz, dx), dst);
        dst
    }

    /// Emit a `ShiftX` on explicit source/edge registers (no reuse cache);
    /// used by the temporal scheduler, whose shift sources are computed
    /// intermediate planes rather than loaded rows.
    pub(crate) fn shift_raw(&mut self, src: Reg, edge: Reg, dx: i16) -> Reg {
        debug_assert!(dx != 0 && (dx.unsigned_abs() as usize) < self.width);
        let dst = self.fresh();
        self.ops.push(VOp::ShiftX { dst, src, edge, dx });
        dst
    }

    pub(crate) fn add(&mut self, a: Reg, b: Reg) -> Reg {
        let dst = self.fresh();
        self.ops.push(VOp::Add { dst, a, b });
        dst
    }

    pub(crate) fn mul(&mut self, a: Reg, coeff: CoeffIdx) -> Reg {
        let dst = self.fresh();
        self.ops.push(VOp::Mul { dst, a, coeff });
        dst
    }

    pub(crate) fn fma(&mut self, acc: Reg, a: Reg, coeff: CoeffIdx) -> Reg {
        let dst = self.fresh();
        self.ops.push(VOp::Fma { dst, acc, a, coeff });
        dst
    }

    pub(crate) fn store(&mut self, src: Reg, ry: i16, rz: i16) {
        self.ops.push(VOp::StoreRow { src, ry, rz });
    }

    /// Forget cached rows/shifts (used between scatter row groups to keep
    /// lifetimes short; loads stay unique because each row group is
    /// visited once).
    fn clear_caches(&mut self) {
        self.rows.clear();
        self.shifts.clear();
    }
}

/// Shrink edge-row loads (`rx ≠ 0`) to the lane range their shuffles
/// actually consume: a shift by `dx > 0` reads lanes `[0, dx)` of the
/// `+x` row, a shift by `dx < 0` reads lanes `[width−|dx|, width)` of the
/// `−x` row. Generated GPU code materialises exactly those elements with
/// a predicated load, so the brick's edge traffic is a few elements, not
/// a full row.
///
/// Only loads consumed *exclusively* as shuffle edges are narrowed: the
/// temporal scheduler also feeds `±x` rows into shuffle sources and
/// arithmetic (the first fused step of the neighbour-block intermediates),
/// and those uses need the full row.
fn narrow_edge_loads(ops: &mut [VOp], width: usize) {
    use std::collections::{HashMap as Map, HashSet as Set};
    // defining load per register at each point is unique in the virtual
    // program (SSA), so a single pass suffices.
    let mut def_load: Map<u16, usize> = Map::new();
    let mut range: Map<usize, (u16, u16)> = Map::new(); // op idx -> lane span
    let mut full_use: Set<u16> = Set::new(); // regs with a non-edge use
    for (i, op) in ops.iter().enumerate() {
        match *op {
            VOp::LoadRow { dst, rx, .. } if rx != 0 => {
                def_load.insert(dst, i);
            }
            VOp::ShiftX { src, edge, dx, .. } => {
                full_use.insert(src);
                if let Some(&li) = def_load.get(&edge) {
                    let (lo, hi) = if dx > 0 {
                        (0u16, dx as u16)
                    } else {
                        ((width as i32 + dx as i32) as u16, width as u16)
                    };
                    let e = range.entry(li).or_insert((lo, hi));
                    e.0 = e.0.min(lo);
                    e.1 = e.1.max(hi);
                }
            }
            _ => {
                full_use.extend(op.uses());
            }
        }
    }
    for (li, (lo, hi)) in range {
        if let VOp::LoadRow {
            dst, lane0, lanes, ..
        } = &mut ops[li]
        {
            if full_use.contains(dst) {
                continue;
            }
            *lane0 = lo;
            *lanes = hi - lo;
        }
    }
}

/// Gather schedule with class-summed evaluation: for every output row,
/// sum the shifted rows of each coefficient class, multiply once per
/// class, and chain classes with FMAs. Per output row this performs
/// exactly `points + classes − 1` vector FLOPs — the paper's normalised
/// minimum (§4.4).
fn schedule_gather(b: &mut Builder, classes: &[Class], block: BrickDims) {
    for rz in 0..block.bz as i16 {
        for ry in 0..block.by as i16 {
            let mut acc: Option<Reg> = None;
            for (ci, class) in classes.iter().enumerate() {
                let mut sum: Option<Reg> = None;
                for &[dx, dy, dz] in &class.taps {
                    let v = b.shifted(ry + dy as i16, rz + dz as i16, dx as i16);
                    sum = Some(match sum {
                        None => v,
                        Some(s) => b.add(s, v),
                    });
                }
                let s = sum.expect("classes are non-empty");
                acc = Some(match acc {
                    None => b.mul(s, ci as CoeffIdx),
                    Some(a) => b.fma(a, s, ci as CoeffIdx),
                });
            }
            b.store(acc.expect("stencil has at least one class"), ry, rz);
        }
    }
}

/// Scatter schedule: visit each *input* row group once (in `(rz, ry)`
/// order), produce its shifted variants, and FMA them into every output
/// accumulator that consumes them. Accumulators stay live for the whole
/// block; row groups die immediately — bounding register pressure by
/// `by·bz` plus one row group regardless of stencil order.
fn schedule_scatter(b: &mut Builder, classes: &[Class], block: BrickDims) {
    let (by, bz) = (block.by as i16, block.bz as i16);
    // (class, tap) pairs indexed for iteration.
    let taps: Vec<(CoeffIdx, [i32; 3])> = classes
        .iter()
        .enumerate()
        .flat_map(|(ci, c)| c.taps.iter().map(move |t| (ci as CoeffIdx, *t)))
        .collect();

    // Input row groups used by this block, in z-major order.
    let mut rows: Vec<(i16, i16)> = Vec::new();
    for (_, [_, dy, dz]) in &taps {
        for rz in 0..bz {
            for ry in 0..by {
                let key = (ry + *dy as i16, rz + *dz as i16);
                if !rows.contains(&key) {
                    rows.push(key);
                }
            }
        }
    }
    rows.sort_by_key(|&(j, k)| (k, j));

    let mut acc: HashMap<(i16, i16), Reg> = HashMap::new();
    for (j, k) in rows {
        b.clear_caches();
        for &(ci, [dx, dy, dz]) in &taps {
            let ry = j - dy as i16;
            let rz = k - dz as i16;
            if ry < 0 || ry >= by || rz < 0 || rz >= bz {
                continue;
            }
            let v = b.shifted(j, k, dx as i16);
            let next = match acc.get(&(ry, rz)) {
                None => b.mul(v, ci),
                Some(&a) => b.fma(a, v, ci),
            };
            acc.insert((ry, rz), next);
        }
    }
    let mut outs: Vec<((i16, i16), Reg)> = acc.into_iter().collect();
    outs.sort_by_key(|&((ry, rz), _)| (rz, ry));
    for ((ry, rz), r) in outs {
        b.store(r, ry, rz);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brick_dsl::shape::StencilShape;

    fn gen(
        shape: StencilShape,
        layout: LayoutKind,
        width: usize,
        strategy: Strategy,
    ) -> VectorKernel {
        let st = shape.stencil();
        let b = st.default_bindings();
        generate(
            &st,
            &b,
            layout,
            width,
            CodegenOptions {
                strategy,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn all_paper_stencils_generate_and_validate() {
        for shape in StencilShape::paper_suite() {
            for strategy in [Strategy::Gather, Strategy::Scatter, Strategy::Auto] {
                for width in [16, 32, 64] {
                    for layout in [LayoutKind::Brick, LayoutKind::Array] {
                        let k = gen(shape, layout, width, strategy);
                        k.validate()
                            .unwrap_or_else(|e| panic!("{shape} {strategy} w{width}: {e}"));
                    }
                }
            }
        }
    }

    #[test]
    fn loads_are_unique_for_both_strategies() {
        for shape in StencilShape::paper_suite() {
            for strategy in [Strategy::Gather, Strategy::Scatter] {
                let k = gen(shape, LayoutKind::Brick, 32, strategy);
                assert!(k.loads_are_unique(), "{shape} {strategy}");
            }
        }
    }

    #[test]
    fn gather_and_scatter_load_the_same_rows() {
        for shape in StencilShape::paper_suite() {
            let g = gen(shape, LayoutKind::Brick, 32, Strategy::Gather);
            let s = gen(shape, LayoutKind::Brick, 32, Strategy::Scatter);
            let mut gr = g.loaded_rows();
            let mut sr = s.loaded_rows();
            gr.sort_unstable();
            sr.sort_unstable();
            assert_eq!(gr, sr, "{shape}");
        }
    }

    #[test]
    fn gather_flops_match_normalised_minimum() {
        for shape in StencilShape::paper_suite() {
            let k = gen(shape, LayoutKind::Brick, 32, Strategy::Gather);
            let a = brick_dsl::StencilAnalysis::of_shape(&shape);
            let outputs = (k.block.by * k.block.bz) as u64;
            assert_eq!(
                k.stats.flops(),
                a.flops_per_point * outputs,
                "{shape}: vector flops per block"
            );
        }
    }

    #[test]
    fn scatter_flops_are_two_per_tap() {
        for shape in StencilShape::paper_suite() {
            let k = gen(shape, LayoutKind::Brick, 32, Strategy::Scatter);
            let outputs = (k.block.by * k.block.bz) as u64;
            assert_eq!(
                k.stats.flops(),
                2 * shape.points() as u64 * outputs - outputs,
                "{shape}"
            );
        }
    }

    #[test]
    fn scatter_pressure_bounded_gather_grows() {
        let g125 = gen(
            StencilShape::cube(2),
            LayoutKind::Brick,
            32,
            Strategy::Gather,
        );
        let s125 = gen(
            StencilShape::cube(2),
            LayoutKind::Brick,
            32,
            Strategy::Scatter,
        );
        assert!(
            s125.stats.max_live < g125.stats.max_live,
            "scatter {} !< gather {}",
            s125.stats.max_live,
            g125.stats.max_live
        );
        // scatter pressure ≈ 16 accumulators + one row group
        assert!(s125.stats.max_live <= 40, "{}", s125.stats.max_live);
    }

    #[test]
    fn auto_picks_gather_for_7pt_scatter_for_125pt() {
        let k7 = gen(StencilShape::star(1), LayoutKind::Brick, 32, Strategy::Auto);
        assert_eq!(k7.strategy, Strategy::Gather);
        let k125 = gen(StencilShape::cube(2), LayoutKind::Brick, 32, Strategy::Auto);
        assert_eq!(k125.strategy, Strategy::Scatter);
    }

    #[test]
    fn shuffle_counts_scale_with_x_reach() {
        let k7 = gen(
            StencilShape::star(1),
            LayoutKind::Brick,
            32,
            Strategy::Gather,
        );
        let k25 = gen(
            StencilShape::star(4),
            LayoutKind::Brick,
            32,
            Strategy::Gather,
        );
        // star r: 2r shifted variants per output row, 16 rows
        assert_eq!(k7.stats.shifts, 2 * 16);
        assert_eq!(k25.stats.shifts, 8 * 16);
    }

    #[test]
    fn store_count_equals_block_rows() {
        let k = gen(
            StencilShape::cube(1),
            LayoutKind::Array,
            16,
            Strategy::Gather,
        );
        assert_eq!(k.stats.stores, 16);
    }

    #[test]
    fn load_count_is_minimal_for_star1() {
        // star r1, 4x4 block: home rows 16 (each also shifted, needing ±x
        // edges: 32 edge rows), plus y-halo rows 2·4... distinct rows:
        // rx=0: (ry∈[0,4),rz∈[-1,5)) ∪ (ry∈[-1,5),rz∈[0,4)) = 24+24-16=32;
        // rx=±1: home rows only = 16 each.
        let k = gen(
            StencilShape::star(1),
            LayoutKind::Brick,
            32,
            Strategy::Gather,
        );
        assert_eq!(k.stats.loads, 32 + 32);
    }

    #[test]
    fn reach_too_large_rejected() {
        let st = StencilShape::star(4).stencil();
        let b = st.default_bindings();
        let err = generate(
            &st,
            &b,
            LayoutKind::Brick,
            32,
            CodegenOptions {
                block_yz: (2, 2),
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, CodegenError::ReachTooLarge { .. }));
    }

    #[test]
    fn kernel_name_encodes_config() {
        let k = gen(
            StencilShape::star(2),
            LayoutKind::Brick,
            32,
            Strategy::Gather,
        );
        assert!(k.name.contains("brick"));
        assert!(k.name.contains("gather"));
    }

    #[test]
    fn coefficient_table_matches_classes() {
        let shape = StencilShape::cube(1);
        let st = shape.stencil();
        let b = st.default_bindings();
        let k = generate(&st, &b, LayoutKind::Brick, 32, CodegenOptions::default()).unwrap();
        assert_eq!(k.coeffs.len(), 4);
        // classes appear in tap order; the table must hold exactly the
        // bound values (c0..c3), each once
        let mut got = k.coeffs.clone();
        let mut want: Vec<f64> = (0..4).map(|i| b.get(&format!("c{i}")).unwrap()).collect();
        got.sort_by(f64::total_cmp);
        want.sort_by(f64::total_cmp);
        assert_eq!(got, want);
    }
}
