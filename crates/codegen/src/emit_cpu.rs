//! CPU SIMD emitters: AVX2, AVX-512 and SVE renderings of generated
//! kernels.
//!
//! Beyond the GPU dialects of Fig. 2, BrickLib's generator also targets
//! CPUs: "architecture-specific implementations for CPUs include SIMD
//! instructions in AVX2, AVX512, and SVE" (paper §3), and the prior study
//! [Zhao et al., P3HPC'18] evaluated exactly those backends on KNL and
//! Skylake. This module maps the same vector IR onto CPU intrinsics: a
//! `width`-lane IR register becomes `width / isa_lanes` native vectors,
//! loads/stores become (un)aligned vector memory ops, [`VOp::ShiftX`]
//! becomes the ISA's lane-concatenation primitive (`valignq` /
//! `vperm2f128+vshufpd` / `svext`), and FMA chains map directly.

use std::fmt::Write;

use crate::ir::{VOp, VectorKernel};

/// CPU SIMD instruction set to emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CpuIsa {
    /// 256-bit AVX2 (4 × f64).
    Avx2,
    /// 512-bit AVX-512 (8 × f64).
    Avx512,
    /// Arm SVE at a 512-bit implementation width (8 × f64); predicated.
    Sve,
}

impl CpuIsa {
    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            CpuIsa::Avx2 => "AVX2",
            CpuIsa::Avx512 => "AVX512",
            CpuIsa::Sve => "SVE",
        }
    }

    /// `f64` lanes per native vector.
    pub fn lanes(&self) -> usize {
        match self {
            CpuIsa::Avx2 => 4,
            CpuIsa::Avx512 | CpuIsa::Sve => 8,
        }
    }

    /// The native vector type.
    pub fn vtype(&self) -> &'static str {
        match self {
            CpuIsa::Avx2 => "__m256d",
            CpuIsa::Avx512 => "__m512d",
            CpuIsa::Sve => "svfloat64_t",
        }
    }

    fn load(&self, ptr: &str) -> String {
        match self {
            CpuIsa::Avx2 => format!("_mm256_loadu_pd({ptr})"),
            CpuIsa::Avx512 => format!("_mm512_loadu_pd({ptr})"),
            CpuIsa::Sve => format!("svld1_f64(pg, {ptr})"),
        }
    }

    fn store(&self, ptr: &str, v: &str) -> String {
        match self {
            CpuIsa::Avx2 => format!("_mm256_storeu_pd({ptr}, {v})"),
            CpuIsa::Avx512 => format!("_mm512_storeu_pd({ptr}, {v})"),
            CpuIsa::Sve => format!("svst1_f64(pg, {ptr}, {v})"),
        }
    }

    fn add(&self, a: &str, b: &str) -> String {
        match self {
            CpuIsa::Avx2 => format!("_mm256_add_pd({a}, {b})"),
            CpuIsa::Avx512 => format!("_mm512_add_pd({a}, {b})"),
            CpuIsa::Sve => format!("svadd_f64_x(pg, {a}, {b})"),
        }
    }

    fn mul_bcast(&self, a: &str, c: &str) -> String {
        match self {
            CpuIsa::Avx2 => format!("_mm256_mul_pd({a}, _mm256_set1_pd({c}))"),
            CpuIsa::Avx512 => format!("_mm512_mul_pd({a}, _mm512_set1_pd({c}))"),
            CpuIsa::Sve => format!("svmul_n_f64_x(pg, {a}, {c})"),
        }
    }

    fn fma_bcast(&self, acc: &str, a: &str, c: &str) -> String {
        match self {
            CpuIsa::Avx2 => format!("_mm256_fmadd_pd({a}, _mm256_set1_pd({c}), {acc})"),
            CpuIsa::Avx512 => format!("_mm512_fmadd_pd({a}, _mm512_set1_pd({c}), {acc})"),
            CpuIsa::Sve => format!("svmla_n_f64_x(pg, {acc}, {a}, {c})"),
        }
    }

    /// Concatenate-and-extract of two native vectors by `k` lanes —
    /// the CPU analogue of the GPU shuffle pair.
    fn align(&self, lo: &str, hi: &str, k: usize) -> String {
        match self {
            CpuIsa::Avx2 => format!("avx2_align_pd({lo}, {hi}, {k}) /* vperm2f128+vshufpd */"),
            CpuIsa::Avx512 => {
                format!("_mm512_castsi512_pd(_mm512_alignr_epi64(_mm512_castpd_si512({hi}), _mm512_castpd_si512({lo}), {k}))")
            }
            CpuIsa::Sve => format!("svext_f64({lo}, {hi}, {k})"),
        }
    }
}

/// Render a generated kernel as CPU SIMD source for `isa`.
///
/// The kernel's `width`-lane registers are split into
/// `width / isa.lanes()` native vectors (vector folding on CPUs works the
/// same way — the brick row is one long folded vector); shifts chain
/// `align` ops across the sub-vectors.
pub fn emit_cpu_vector(kernel: &VectorKernel, isa: CpuIsa) -> String {
    let lanes = isa.lanes();
    assert!(
        kernel.width.is_multiple_of(lanes),
        "kernel width {} not a multiple of {} lanes",
        kernel.width,
        lanes
    );
    let chunks = kernel.width / lanes;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "// {} kernel for {}-lane f64 vectors: width {} = {} x {}",
        isa.name(),
        lanes,
        kernel.width,
        chunks,
        isa.vtype()
    );
    let _ = writeln!(
        s,
        "void {}_{}(const bElem *bIn, bElem *bOut, const unsigned *adj) {{",
        kernel.name.replace('-', "_"),
        isa.name().to_lowercase()
    );
    if isa == CpuIsa::Sve {
        let _ = writeln!(s, "  svbool_t pg = svptrue_b64();");
    }
    let _ = writeln!(s, "  {} r[{}][{}];", isa.vtype(), kernel.num_regs, chunks);
    for op in &kernel.ops {
        match *op {
            VOp::LoadRow {
                dst,
                rx,
                ry,
                rz,
                lane0,
                lanes: nl,
            } => {
                let _ = writeln!(
                    s,
                    "  {{ const bElem *p = row_ptr(bIn, adj, {rx}, {ry}, {rz}) + {lane0}; \
                     // {nl} lanes"
                );
                let full = (nl as usize).div_ceil(lanes);
                for ch in 0..full.min(chunks) {
                    let _ = writeln!(
                        s,
                        "    r[{dst}][{ch}] = {};",
                        isa.load(&format!("p + {}", ch * lanes))
                    );
                }
                let _ = writeln!(s, "  }}");
            }
            VOp::ShiftX { dst, src, edge, dx } => {
                // shift right by dx lanes across the chunk array: chunk i
                // takes lanes from (src[i], src[i+1]) or wraps into edge.
                let k = dx.rem_euclid(lanes as i16) as usize;
                for ch in 0..chunks {
                    let step = if dx > 0 { 1i64 } else { -1 };
                    let nb = ch as i64 + step;
                    let (lo, hi) = if dx > 0 {
                        (
                            format!("r[{src}][{ch}]"),
                            if (nb as usize) < chunks {
                                format!("r[{src}][{nb}]")
                            } else {
                                format!("r[{edge}][0]")
                            },
                        )
                    } else {
                        (
                            if nb >= 0 {
                                format!("r[{src}][{nb}]")
                            } else {
                                format!("r[{edge}][{}]", chunks - 1)
                            },
                            format!("r[{src}][{ch}]"),
                        )
                    };
                    let _ = writeln!(s, "  r[{dst}][{ch}] = {};", isa.align(&lo, &hi, k));
                }
            }
            VOp::Add { dst, a, b } => {
                for ch in 0..chunks {
                    let _ = writeln!(
                        s,
                        "  r[{dst}][{ch}] = {};",
                        isa.add(&format!("r[{a}][{ch}]"), &format!("r[{b}][{ch}]"))
                    );
                }
            }
            VOp::Mul { dst, a, coeff } => {
                let c = format!("{:?}", kernel.coeffs[coeff as usize]);
                for ch in 0..chunks {
                    let _ = writeln!(
                        s,
                        "  r[{dst}][{ch}] = {};",
                        isa.mul_bcast(&format!("r[{a}][{ch}]"), &c)
                    );
                }
            }
            VOp::Fma { dst, acc, a, coeff } => {
                let c = format!("{:?}", kernel.coeffs[coeff as usize]);
                for ch in 0..chunks {
                    let _ = writeln!(
                        s,
                        "  r[{dst}][{ch}] = {};",
                        isa.fma_bcast(&format!("r[{acc}][{ch}]"), &format!("r[{a}][{ch}]"), &c)
                    );
                }
            }
            VOp::StoreRow { src, ry, rz } => {
                let _ = writeln!(s, "  {{ bElem *p = out_row_ptr(bOut, {ry}, {rz});");
                for ch in 0..chunks {
                    let _ = writeln!(
                        s,
                        "    {};",
                        isa.store(&format!("p + {}", ch * lanes), &format!("r[{src}][{ch}]"))
                    );
                }
                let _ = writeln!(s, "  }}");
            }
        }
    }
    let _ = writeln!(s, "}}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate, CodegenOptions};
    use crate::ir::LayoutKind;
    use brick_dsl::shape::StencilShape;

    fn kernel(width: usize) -> VectorKernel {
        let st = StencilShape::star(2).stencil();
        let b = st.default_bindings();
        generate(&st, &b, LayoutKind::Brick, width, CodegenOptions::default()).unwrap()
    }

    #[test]
    fn avx512_uses_512_bit_ops() {
        let src = emit_cpu_vector(&kernel(32), CpuIsa::Avx512);
        assert!(src.contains("_mm512_loadu_pd"));
        assert!(src.contains("_mm512_fmadd_pd"));
        assert!(src.contains("_mm512_alignr_epi64"));
        assert!(src.contains("__m512d r["));
        // 32 lanes = 4 chunks of 8
        assert!(src.contains("width 32 = 4 x __m512d"));
    }

    #[test]
    fn avx2_uses_256_bit_ops() {
        let src = emit_cpu_vector(&kernel(16), CpuIsa::Avx2);
        assert!(src.contains("_mm256_loadu_pd"));
        assert!(src.contains("_mm256_fmadd_pd"));
        assert!(src.contains("avx2_align_pd"));
        assert!(src.contains("width 16 = 4 x __m256d"));
    }

    #[test]
    fn sve_is_predicated() {
        let src = emit_cpu_vector(&kernel(16), CpuIsa::Sve);
        assert!(src.contains("svbool_t pg = svptrue_b64();"));
        assert!(src.contains("svld1_f64(pg,"));
        assert!(src.contains("svmla_n_f64_x(pg,"));
        assert!(src.contains("svext_f64("));
    }

    #[test]
    fn chunk_count_scales_with_width() {
        for (w, chunks) in [(16usize, 2usize), (32, 4), (64, 8)] {
            let src = emit_cpu_vector(&kernel(w), CpuIsa::Avx512);
            assert!(
                src.contains(&format!("width {w} = {chunks} x __m512d")),
                "w={w}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn indivisible_width_rejected() {
        // width 20 is not a multiple of 8 lanes
        let st = StencilShape::star(1).stencil();
        let b = st.default_bindings();
        let k = generate(&st, &b, LayoutKind::Brick, 20, CodegenOptions::default()).unwrap();
        let _ = emit_cpu_vector(&k, CpuIsa::Avx512);
    }

    #[test]
    fn store_count_matches_kernel() {
        let k = kernel(16);
        let src = emit_cpu_vector(&k, CpuIsa::Avx512);
        let stores = src.matches("_mm512_storeu_pd").count();
        // 16 output rows x 2 chunks
        assert_eq!(stores, k.stats.stores as usize * 2);
    }
}
