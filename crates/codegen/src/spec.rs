//! First-class kernel specialization parameters.
//!
//! Historically the generator's tunables were scattered constants: the
//! brick's transverse extents lived in [`CodegenOptions::block_yz`], the
//! vector width was whatever the caller passed to [`crate::generate`],
//! the L2 interleave chunk was a per-suite simulator default, and fold
//! factor did not exist (one brick row was always exactly one hardware
//! vector). [`SpecParams`] promotes the whole specialization vector to
//! one comptime-style value — the CubeCL pattern of resolving launch
//! parameters per target — so the tuner can enumerate, fingerprint and
//! cache-key every axis uniformly:
//!
//! * **`vector_width`** — lanes per hardware vector (warp / wavefront /
//!   sub-group width the kernel is issued at).
//! * **`fold_factor`** — hardware vectors folded into one brick row
//!   (Yount-style vector folding): the brick `x` extent is
//!   `fold_factor · vector_width`, mapped to `fold_factor` SIMD groups
//!   per launch block.
//! * **`block_yz`** — transverse brick extents.
//! * **`ordering`** — brick memory ordering (lexicographic / Morton).
//! * **`strategy`** — gather vs scatter scheduling.
//! * **`interleave_chunk`** — L2 stream-rotation granularity of the
//!   memory simulation (a model parameter, but one the paper's
//!   measured counterpart — launch-stream batching — genuinely tunes).
//! * **`temporal_degree`** — AN5D-style timestep fusion depth.
//!
//! The canonical rendering ([`SpecParams::desc`]) and its FNV-1a
//! fingerprint ([`SpecParams::fingerprint`]) are stable across runs and
//! processes and are embedded in tuner cache keys, so two cells with
//! different specialization vectors can never alias.

use serde::{Deserialize, Serialize};
use std::fmt;

use brick_core::{BrickDims, BrickOrdering};

use crate::generate::CodegenOptions;
use crate::ir::Strategy;

/// The paper's transverse brick extents (`4 × 4`).
pub const PAPER_BLOCK_YZ: (usize, usize) = (4, 4);

/// The memory simulator's default L2 interleave chunk (events per block
/// stream before rotating).
pub const PAPER_INTERLEAVE_CHUNK: usize = 1024;

/// One complete kernel specialization vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SpecParams {
    /// Lanes per hardware vector the kernel is issued at.
    pub vector_width: usize,
    /// Hardware vectors folded into one brick row; the brick `x` extent
    /// is `fold_factor · vector_width`.
    pub fold_factor: u32,
    /// Transverse brick extents `(by, bz)`.
    pub block_yz: (usize, usize),
    /// Brick memory ordering.
    pub ordering: BrickOrdering,
    /// Codegen scheduling strategy.
    pub strategy: Strategy,
    /// L2 interleave chunk of the memory simulation.
    pub interleave_chunk: usize,
    /// Timesteps fused per kernel (AN5D temporal blocking); `1` is the
    /// plain spatial kernel.
    pub temporal_degree: u32,
}

impl SpecParams {
    /// The paper's fixed configuration for an architecture SIMD width:
    /// one hardware vector per row, `4 × 4` transverse extents,
    /// lexicographic ordering, gather scheduling, default interleave,
    /// no temporal fusion. This is the baseline every tuned
    /// configuration is compared (and must never lose) against.
    pub fn paper_default(simd_width: usize) -> SpecParams {
        SpecParams {
            vector_width: simd_width,
            fold_factor: 1,
            block_yz: PAPER_BLOCK_YZ,
            ordering: BrickOrdering::Lexicographic,
            strategy: Strategy::Gather,
            interleave_chunk: PAPER_INTERLEAVE_CHUNK,
            temporal_degree: 1,
        }
    }

    /// The brick `x` extent: `fold_factor · vector_width` — the width
    /// the vector kernel is generated at.
    pub fn width(&self) -> usize {
        self.vector_width * self.fold_factor as usize
    }

    /// Full brick dimensions of this specialization.
    pub fn brick_dims(&self) -> BrickDims {
        BrickDims::new(self.width(), self.block_yz.0, self.block_yz.1)
    }

    /// The generator options this specialization resolves to. The
    /// vector width is *not* part of [`CodegenOptions`] — pass
    /// [`SpecParams::width`] as the `width` argument of
    /// [`crate::generate`].
    pub fn codegen_options(&self) -> CodegenOptions {
        CodegenOptions {
            strategy: self.strategy,
            block_yz: self.block_yz,
            temporal_degree: self.temporal_degree,
            ..CodegenOptions::default()
        }
    }

    /// Canonical `name=value;…` rendering — the content the fingerprint
    /// and every cache key are derived from. Field order is part of the
    /// contract; adding a field is a schema change for consumers.
    pub fn desc(&self) -> String {
        format!(
            "vw={};fold={};by={};bz={};ord={:?};strat={};chunk={};t={}",
            self.vector_width,
            self.fold_factor,
            self.block_yz.0,
            self.block_yz.1,
            self.ordering,
            self.strategy,
            self.interleave_chunk,
            self.temporal_degree,
        )
    }

    /// Stable 64-bit fingerprint of the specialization vector (FNV-1a
    /// over [`SpecParams::desc`]) — identical across runs, platforms and
    /// processes.
    pub fn fingerprint(&self) -> u64 {
        brick_obs::manifest::fnv1a64(self.desc().as_bytes())
    }
}

impl fmt::Display for SpecParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{}x{}({}v{}) {:?} {} ic{} T{}",
            self.block_yz.1,
            self.block_yz.0,
            self.width(),
            self.fold_factor,
            self.vector_width,
            self.ordering,
            self.strategy,
            self.interleave_chunk,
            self.temporal_degree,
        )
    }
}

impl From<&SpecParams> for CodegenOptions {
    fn from(p: &SpecParams) -> CodegenOptions {
        p.codegen_options()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_codegen_defaults() {
        let p = SpecParams::paper_default(32);
        assert_eq!(p.width(), 32);
        assert_eq!(p.brick_dims(), BrickDims::for_simd_width(32));
        let o = p.codegen_options();
        assert_eq!(o.block_yz, CodegenOptions::default().block_yz);
        assert_eq!(o.temporal_degree, 1);
    }

    #[test]
    fn folding_scales_the_row() {
        let p = SpecParams {
            fold_factor: 2,
            ..SpecParams::paper_default(32)
        };
        assert_eq!(p.width(), 64);
        assert_eq!(p.brick_dims().bx, 64);
    }

    #[test]
    fn fingerprint_separates_every_axis() {
        let base = SpecParams::paper_default(32);
        let variants = [
            SpecParams {
                vector_width: 16,
                ..base
            },
            SpecParams {
                fold_factor: 2,
                ..base
            },
            SpecParams {
                block_yz: (8, 4),
                ..base
            },
            SpecParams {
                ordering: BrickOrdering::Morton,
                ..base
            },
            SpecParams {
                strategy: Strategy::Scatter,
                ..base
            },
            SpecParams {
                interleave_chunk: 256,
                ..base
            },
            SpecParams {
                temporal_degree: 2,
                ..base
            },
        ];
        let mut fps = vec![base.fingerprint()];
        for v in variants {
            let fp = v.fingerprint();
            assert!(!fps.contains(&fp), "fingerprint collision: {v}");
            fps.push(fp);
        }
    }

    #[test]
    fn desc_is_stable() {
        // The canonical rendering is a cache-key ingredient: changing it
        // silently retires every cached tuner cell, so pin it.
        assert_eq!(
            SpecParams::paper_default(32).desc(),
            "vw=32;fold=1;by=4;bz=4;ord=Lexicographic;strat=gather;chunk=1024;t=1"
        );
    }
}
