//! Source emitters: render kernels as CUDA, HIP or SYCL source text.
//!
//! BrickLib is a code *generator*: its output is kernel source for the
//! target programming model (paper Fig. 2). This module reproduces that
//! surface — both the scalar (non-codegen) kernels of Fig. 2 and the
//! block-structured vector-codegen kernels with their architecture
//!-specific shuffle primitives (§3: `__shfl_down_sync`/`__shfl_up_sync`
//! for CUDA ≥ 9, `__shfl_down`/`__shfl_up` for HIP, and
//! `sub_group_shuffle_down`/`sub_group_shuffle_up` for SYCL).
//!
//! The emitted text is documentation of what the simulated compiler
//! consumes; the executable form of the same kernels is the vector IR.

use std::fmt::Write;

use brick_dsl::stencil::{CoeffBindings, Stencil};

use crate::ir::{LayoutKind, VOp, VectorKernel};

/// Source dialect to emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dialect {
    /// NVIDIA CUDA.
    Cuda,
    /// AMD HIP (also compiles on NVIDIA through the wrapper).
    Hip,
    /// SYCL 2020.
    Sycl,
}

impl Dialect {
    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Dialect::Cuda => "CUDA",
            Dialect::Hip => "HIP",
            Dialect::Sycl => "SYCL",
        }
    }

    /// The shuffle-down primitive of the dialect.
    pub fn shuffle_down(&self) -> &'static str {
        match self {
            Dialect::Cuda => "__shfl_down_sync",
            Dialect::Hip => "__shfl_down",
            Dialect::Sycl => "sub_group_shuffle_down",
        }
    }

    /// The shuffle-up primitive of the dialect.
    pub fn shuffle_up(&self) -> &'static str {
        match self {
            Dialect::Cuda => "__shfl_up_sync",
            Dialect::Hip => "__shfl_up",
            Dialect::Sycl => "sub_group_shuffle_up",
        }
    }

    fn block_idx(&self, dim: char) -> String {
        match self {
            Dialect::Cuda => format!("blockIdx.{dim}"),
            Dialect::Hip => format!("hipBlockIdx_{dim}"),
            Dialect::Sycl => {
                let i = match dim {
                    'x' => 2,
                    'y' => 1,
                    _ => 0,
                };
                format!("WIid.get_group({i})")
            }
        }
    }

    fn thread_idx(&self, dim: char) -> String {
        match self {
            Dialect::Cuda => format!("threadIdx.{dim}"),
            Dialect::Hip => format!("hipThreadIdx_{dim}"),
            Dialect::Sycl => {
                let i = match dim {
                    'x' => 2,
                    'y' => 1,
                    _ => 0,
                };
                format!("WIid.get_local_id({i})")
            }
        }
    }
}

fn offset_expr(base: &str, off: i32) -> String {
    match off {
        0 => base.to_string(),
        v if v > 0 => format!("{base}+{v}"),
        v => format!("{base}{v}"),
    }
}

/// Emit the scalar (non-codegen) kernel for a stencil, in the style of the
/// paper's Fig. 2: one thread per output point, taps grouped by
/// coefficient class.
pub fn emit_scalar(
    stencil: &Stencil,
    bindings: &CoeffBindings,
    layout: LayoutKind,
    dialect: Dialect,
) -> String {
    let mut s = String::new();
    for (name, value) in bindings.iter() {
        let _ = writeln!(s, "#define {name} {value}");
    }
    let name = format!("{}_{}", stencil.name().replace('-', "_"), layout);
    let in_name = stencil.input().name();
    let out_name = stencil.output().name();

    let access = |grid: &str, o: [i32; 3]| -> String {
        let (i, j, k) = (
            offset_expr("i", o[0]),
            offset_expr("j", o[1]),
            offset_expr("k", o[2]),
        );
        match layout {
            LayoutKind::Brick => format!("b{grid}[b][{k}][{j}][{i}]"),
            LayoutKind::Array => format!("{grid}[{k}][{j}][{i}]"),
        }
    };

    // Class-grouped body expression.
    let mut classes: Vec<(&brick_dsl::stencil::LinCoeff, Vec<[i32; 3]>)> = Vec::new();
    for t in stencil.taps() {
        match classes.iter_mut().find(|(c, _)| **c == t.coeff) {
            Some((_, v)) => v.push(t.offset),
            None => classes.push((&t.coeff, vec![t.offset])),
        }
    }
    let mut body = String::new();
    for (ci, (coeff, offs)) in classes.iter().enumerate() {
        if ci > 0 {
            body.push_str("\n      + ");
        }
        let sum = offs
            .iter()
            .map(|o| access(in_name, *o))
            .collect::<Vec<_>>()
            .join(" + ");
        let cname = coeff
            .single_symbol()
            .map(|c| c.name().to_string())
            .unwrap_or_else(|| format!("({coeff})"));
        if offs.len() == 1 {
            let _ = write!(body, "{sum} * {cname}");
        } else {
            let _ = write!(body, "({sum}) * {cname}");
        }
    }

    match dialect {
        Dialect::Cuda | Dialect::Hip => {
            let _ = writeln!(s, "__global__ void {name}(");
            match layout {
                LayoutKind::Brick => {
                    let _ = writeln!(s, "    unsigned (*grid)[STRIDEB][STRIDEB],");
                    let _ = writeln!(s, "    Brick<Dim<BDIM>, Dim<VFOLD>> b{in_name},");
                    let _ = writeln!(s, "    Brick<Dim<BDIM>, Dim<VFOLD>> b{out_name}) {{");
                    for d in ['z', 'y', 'x'] {
                        let v = match d {
                            'z' => "tk",
                            'y' => "tj",
                            _ => "ti",
                        };
                        let _ = writeln!(s, "  long {v} = GB + {};", dialect.block_idx(d));
                    }
                    let _ = writeln!(s, "  unsigned b = grid[tk][tj][ti];");
                }
                LayoutKind::Array => {
                    let _ = writeln!(s, "    bElem (*{in_name})[STRIDE][STRIDE],");
                    let _ = writeln!(s, "    bElem (*{out_name})[STRIDE][STRIDE]) {{");
                    for d in ['z', 'y', 'x'] {
                        let v = match d {
                            'z' => "k",
                            'y' => "j",
                            _ => "i",
                        };
                        let _ = writeln!(
                            s,
                            "  long {v} = PADDING + {} * TILE_{v} + {};",
                            dialect.block_idx(d),
                            dialect.thread_idx(d)
                        );
                    }
                }
            }
            if layout == LayoutKind::Brick {
                for d in ['z', 'y', 'x'] {
                    let v = match d {
                        'z' => "k",
                        'y' => "j",
                        _ => "i",
                    };
                    let _ = writeln!(s, "  long {v} = {};", dialect.thread_idx(d));
                }
            }
            let out = access(out_name, [0, 0, 0]);
            let _ = writeln!(s, "  {out} =\n      {body};");
            let _ = writeln!(s, "}}");
        }
        Dialect::Sycl => {
            let _ = writeln!(
                s,
                "cgh.parallel_for<class {name}>(nworkitem, [=](nd_item<3> WIid) {{"
            );
            for d in ['z', 'y', 'x'] {
                let (bv, tv) = match d {
                    'z' => ("bk", "k"),
                    'y' => ("bj", "j"),
                    _ => ("bi", "i"),
                };
                let _ = writeln!(
                    s,
                    "  long {bv} = {}; long {tv} = {};",
                    dialect.block_idx(d),
                    dialect.thread_idx(d)
                );
            }
            match layout {
                LayoutKind::Brick => {
                    let _ = writeln!(s, "  bElem *bDat = (bElem *) bDat_s.get_pointer();");
                    let _ = writeln!(s, "  auto bSize = cal_size<BDIM>::value;");
                    let _ = writeln!(
                        s,
                        "  syclBrick<Dim<BDIM>, Dim<VFOLD>> b{in_name}(bInfo_s.get_pointer(), bDat, bSize * 2, 0);"
                    );
                    let _ = writeln!(
                        s,
                        "  syclBrick<Dim<BDIM>, Dim<VFOLD>> b{out_name}(bInfo_s.get_pointer(), bDat, bSize * 2, bSize);"
                    );
                    let _ = writeln!(
                        s,
                        "  unsigned b = bIdx_s[bi + (bj + bk * (STRIDEBY-2)) * (STRIDEBX-2)];"
                    );
                }
                LayoutKind::Array => {
                    let _ = writeln!(s, "  long i = PADDING + bi * TILE_i + i;");
                }
            }
            let out = access(out_name, [0, 0, 0]);
            let _ = writeln!(s, "  {out} =\n      {body};");
            let _ = writeln!(s, "}});");
        }
    }
    s
}

/// Emit the vector-codegen kernel body for a generated [`VectorKernel`]:
/// a sequence of code blocks (one per instruction) using vector buffers
/// and the dialect's shuffle primitives, mirroring the structure described
/// in §3 ("the code … looks like a sequence of code blocks that compute
/// portions of a brick's stencil grid").
pub fn emit_vector(kernel: &VectorKernel, dialect: Dialect) -> String {
    let mut s = String::new();
    let w = kernel.width;
    let _ = writeln!(
        s,
        "// {} kernel, {} layout, {} schedule, vector width {w}",
        dialect.name(),
        kernel.layout,
        kernel.strategy
    );
    let _ = writeln!(
        s,
        "// registers/thread: {}, vector ops: {}",
        kernel.num_regs,
        kernel.stats.total_instructions()
    );
    match dialect {
        Dialect::Cuda | Dialect::Hip => {
            let _ = writeln!(s, "__global__ void {}(...) {{", kernel.name);
            let _ = writeln!(s, "  int lane = {};", dialect.thread_idx('x'));
        }
        Dialect::Sycl => {
            let _ = writeln!(
                s,
                "cgh.parallel_for<class {}>(nworkitem, [=](nd_item<1> WIid) {{",
                kernel.name
            );
            let _ = writeln!(s, "  int lane = WIid.get_local_id(0);");
        }
    }
    let _ = writeln!(s, "  bElem r[{}];", kernel.num_regs);
    for op in &kernel.ops {
        match *op {
            VOp::LoadRow {
                dst,
                rx,
                ry,
                rz,
                lane0,
                lanes,
            } => {
                if lanes as usize == kernel.width {
                    let _ = writeln!(
                        s,
                        "  r[{dst}] = row_load(bIn, b, /*rx*/{rx}, /*ry*/{ry}, /*rz*/{rz}, lane);"
                    );
                } else {
                    let _ = writeln!(
                        s,
                        "  if (lane >= {lane0} && lane < {}) r[{dst}] = row_load(bIn, b, /*rx*/{rx}, /*ry*/{ry}, /*rz*/{rz}, lane);",
                        lane0 + lanes
                    );
                }
            }
            VOp::ShiftX { dst, src, edge, dx } => {
                let (prim, amt) = if dx > 0 {
                    (dialect.shuffle_down(), dx)
                } else {
                    (dialect.shuffle_up(), -dx)
                };
                let mask = match dialect {
                    Dialect::Cuda => "0xffffffff, ",
                    _ => "",
                };
                let cond = if dx > 0 {
                    format!("lane < {}", w as i32 - dx as i32)
                } else {
                    format!("lane >= {}", -dx)
                };
                let _ = writeln!(
                    s,
                    "  r[{dst}] = ({cond}) ? {prim}({mask}r[{src}], {amt}) : {prim}({mask}r[{edge}], {amt});"
                );
            }
            VOp::Add { dst, a, b } => {
                let _ = writeln!(s, "  r[{dst}] = r[{a}] + r[{b}];");
            }
            VOp::Mul { dst, a, coeff } => {
                let _ = writeln!(s, "  r[{dst}] = r[{a}] * coeff[{coeff}];");
            }
            VOp::Fma { dst, acc, a, coeff } => {
                let _ = writeln!(s, "  r[{dst}] = fma(r[{a}], coeff[{coeff}], r[{acc}]);");
            }
            VOp::StoreRow { src, ry, rz } => {
                let _ = writeln!(
                    s,
                    "  row_store(bOut, b, /*ry*/{ry}, /*rz*/{rz}, lane, r[{src}]);"
                );
            }
        }
    }
    match dialect {
        Dialect::Cuda | Dialect::Hip => {
            let _ = writeln!(s, "}}");
        }
        Dialect::Sycl => {
            let _ = writeln!(s, "}});");
        }
    }
    // Reference the bindings table in a trailing comment so emitted source
    // is self-describing.
    let _ = writeln!(s, "// coeff = {:?}", kernel.coeffs);
    let _ = bindings_note(&mut s, kernel);
    s
}

fn bindings_note(s: &mut String, kernel: &VectorKernel) -> std::fmt::Result {
    writeln!(
        s,
        "// loads/block: {}, shuffles/block: {}, stores/block: {}",
        kernel.stats.loads, kernel.stats.shifts, kernel.stats.stores
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate, CodegenOptions};
    use crate::ir::Strategy;
    use brick_dsl::shape::StencilShape;

    fn kernel(width: usize) -> VectorKernel {
        let st = StencilShape::star(2).stencil();
        let b = st.default_bindings();
        generate(
            &st,
            &b,
            LayoutKind::Brick,
            width,
            CodegenOptions {
                strategy: Strategy::Gather,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn cuda_scalar_kernel_matches_fig2_structure() {
        let st = StencilShape::star(2).stencil();
        let b = st.default_bindings();
        let src = emit_scalar(&st, &b, LayoutKind::Brick, Dialect::Cuda);
        assert!(src.contains("__global__ void"));
        assert!(src.contains("unsigned b = grid[tk][tj][ti];"));
        assert!(src.contains("blockIdx.z"));
        assert!(src.contains("bin[b][k+2][j][i]") || src.contains("bin[b][k][j][i+2]"));
        assert!(src.contains("* c2"));
    }

    #[test]
    fn hip_scalar_kernel_uses_hip_builtins() {
        let st = StencilShape::star(1).stencil();
        let b = st.default_bindings();
        let src = emit_scalar(&st, &b, LayoutKind::Brick, Dialect::Hip);
        assert!(src.contains("hipBlockIdx_z"));
        assert!(src.contains("hipThreadIdx_x"));
        assert!(!src.contains("blockIdx."));
    }

    #[test]
    fn sycl_scalar_kernel_uses_nd_item() {
        let st = StencilShape::star(1).stencil();
        let b = st.default_bindings();
        let src = emit_scalar(&st, &b, LayoutKind::Brick, Dialect::Sycl);
        assert!(src.contains("parallel_for"));
        assert!(src.contains("WIid.get_group(2)"));
        assert!(src.contains("syclBrick"));
    }

    #[test]
    fn array_scalar_kernel_has_no_brick_indirection() {
        let st = StencilShape::star(1).stencil();
        let b = st.default_bindings();
        let src = emit_scalar(&st, &b, LayoutKind::Array, Dialect::Cuda);
        assert!(!src.contains("unsigned b ="));
        assert!(src.contains("TILE_"));
    }

    #[test]
    fn vector_kernel_uses_dialect_shuffles() {
        let k = kernel(32);
        let cuda = emit_vector(&k, Dialect::Cuda);
        assert!(cuda.contains("__shfl_down_sync(0xffffffff,"));
        assert!(cuda.contains("__shfl_up_sync(0xffffffff,"));
        let hip = emit_vector(&k, Dialect::Hip);
        assert!(hip.contains("__shfl_down(r["));
        assert!(!hip.contains("0xffffffff"));
        let sycl = emit_vector(&k, Dialect::Sycl);
        assert!(sycl.contains("sub_group_shuffle_down"));
        assert!(sycl.contains("sub_group_shuffle_up"));
    }

    #[test]
    fn vector_kernel_mentions_register_count() {
        let k = kernel(16);
        let src = emit_vector(&k, Dialect::Cuda);
        assert!(src.contains(&format!("bElem r[{}];", k.num_regs)));
    }

    #[test]
    fn emitted_op_count_matches_ir() {
        let k = kernel(32);
        let src = emit_vector(&k, Dialect::Cuda);
        let loads = src.matches("row_load(").count();
        let stores = src.matches("row_store(").count();
        assert_eq!(loads as u32, k.stats.loads);
        assert_eq!(stores as u32, k.stats.stores);
    }
}
