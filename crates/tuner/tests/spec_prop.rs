//! Specialization-space property suite: the tuner may only ever rank
//! candidates that are *provably safe to run*.
//!
//! For every [`SpecParams`] the default space enumerates, exactly one of
//! two things must hold:
//!
//! 1. the per-target validity predicate rejects it with a stable reason,
//!    before any compilation; or
//! 2. it generates, passes the analyzer's full static verification
//!    (including the expected-stencil proof against the `T`-fold composed
//!    stencil), and executes correctly on a small grid — bit for bit
//!    against the scalar reference for gather-scheduled kernels (whose
//!    operation order the reference replicates, see `vm/tests/
//!    temporal_diff.rs`), and bit for bit against the interpreter under
//!    the compiled portable backend for every kernel, with the scatter
//!    schedule additionally pinned to the reference semantics under a
//!    tight relative tolerance (scatter reassociates the tap sum, so
//!    ULP-0 against the gather-order reference is not claimable).
//!
//! There is no third outcome: a candidate that validates but fails to
//! compile, lint or verify is a bug in the predicate, and the tuner
//! would have crashed on it mid-sweep.

use brick_codegen::{generate, LayoutKind, SpecParams, Strategy};
use brick_core::BrickGrid;
use brick_dsl::shape::StencilShape;
use brick_dsl::{reference, CoeffBindings, DenseGrid};
use brick_tuner::{validate, TuningSpace};
use brick_vm::{
    run_numeric_dense_mode, run_vector_brick_backend, Backend, ExecutionMode, KernelSpec,
};
use gpu_sim::GpuArch;
use proptest::prelude::*;
use std::sync::Arc;

/// Scatter vs gather-order reference: reassociation slack only.
const SCATTER_RTOL: f64 = 1e-12;

/// Domain extent the validity predicates are checked against — large
/// enough that every width/block in the default space divides it, so the
/// predicate exercises the architectural axes rather than `Indivisible`.
const VALIDITY_N: usize = 128;

fn arches() -> Vec<GpuArch> {
    vec![GpuArch::a100(), GpuArch::mi250x_gcd(), GpuArch::pvc_stack()]
}

/// An input grid one brick-column wide with transverse room for the
/// candidate's block and a `T·r` halo.
fn input_grid(p: &SpecParams, shape: &StencilShape) -> DenseGrid {
    let halo = (p.temporal_degree * shape.radius) as usize;
    let (by, bz) = p.block_yz;
    let mut d = DenseGrid::new(p.width(), (by * 2).max(8), (bz * 2).max(8), halo);
    d.fill_test_pattern();
    d
}

/// Generate + statically verify one valid candidate, panicking with the
/// analyzer's report on any lint finding.
fn build_verified(
    shape: &StencilShape,
    b: &CoeffBindings,
    p: &SpecParams,
) -> brick_codegen::VectorKernel {
    let st = shape.stencil();
    let kernel = generate(&st, b, LayoutKind::Brick, p.width(), p.codegen_options())
        .unwrap_or_else(|e| panic!("valid candidate {p} failed to generate: {e}"));
    let opts = brick_lint::LintOptions {
        expected: Some(
            brick_lint::ExpectedStencil::resolve_temporal(&st, b, p.temporal_degree)
                .expect("bindings resolve"),
        ),
        budgets: vec![],
    };
    let analysis = brick_lint::analyze(&kernel, &opts);
    assert!(
        analysis.is_clean(),
        "valid candidate {p} failed static verification:\n{}",
        analysis.report.render(Some(&kernel))
    );
    kernel
}

fn assert_bits_equal(oracle: &[f64], got: &[f64], ctx: &str) {
    assert_eq!(oracle.len(), got.len(), "{ctx}: storage length");
    for (i, (a, b)) in oracle.iter().zip(got).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{ctx}: word {i} differs ({a:e} vs {b:e})"
        );
    }
}

/// Full execution check for one valid candidate: interpreter vs scalar
/// reference (bit-for-bit for gather, [`SCATTER_RTOL`] for scatter) and
/// portable compiled backend vs interpreter (bit-for-bit, always).
fn check_execution(shape: &StencilShape, b: &CoeffBindings, p: &SpecParams) {
    let ctx = format!("{shape} {p}");
    let st = shape.stencil();
    let kernel = build_verified(shape, b, p);
    let input = input_grid(p, shape);
    let spec = KernelSpec::Vector(kernel.clone());

    let interp = run_numeric_dense_mode(&spec, &input, ExecutionMode::Scalar)
        .unwrap_or_else(|e| panic!("{ctx}: interpreter run failed: {e}"));

    // semantic oracle: the scalar reference on the same grid
    let (nx, ny, nz) = input.extents();
    let mut oracle = DenseGrid::new(nx, ny, nz, input.halo());
    reference::apply_temporal(&st, b, &input, &mut oracle, p.temporal_degree).unwrap();
    for z in 0..nz as i64 {
        for y in 0..ny as i64 {
            for x in 0..nx as i64 {
                let (o, g) = (oracle.get(x, y, z), interp.get(x, y, z));
                match p.strategy {
                    Strategy::Gather | Strategy::Auto => assert_eq!(
                        o.to_bits(),
                        g.to_bits(),
                        "{ctx}: ({x},{y},{z}) differs from reference ({o:e} vs {g:e})"
                    ),
                    Strategy::Scatter => assert!(
                        (o - g).abs() <= SCATTER_RTOL * o.abs().max(g.abs()).max(1.0),
                        "{ctx}: ({x},{y},{z}) outside scatter tolerance ({o:e} vs {g:e})"
                    ),
                }
            }
        }
    }

    // backend invariance: the compiled portable backend must reproduce
    // the interpreter bit for bit on the layout-native storage
    let bin = BrickGrid::from_dense(&input, kernel.block);
    let mut interp_out = BrickGrid::with_metadata(Arc::clone(bin.decomp()), Arc::clone(bin.info()));
    run_vector_brick_backend(&kernel, &bin, &mut interp_out, Backend::Interpreter).unwrap();
    let mut portable = BrickGrid::with_metadata(Arc::clone(bin.decomp()), Arc::clone(bin.info()));
    run_vector_brick_backend(&kernel, &bin, &mut portable, Backend::Portable).unwrap();
    assert_bits_equal(
        interp_out.raw(),
        portable.raw(),
        &format!("{ctx} via portable"),
    );
}

/// Distinct generated programs in a candidate list: ordering and
/// interleave chunk never reach the IR, so deduplicate on the axes that
/// do. Mirrors the tuner's own kernel-program memo.
fn distinct_programs(valid: &[SpecParams]) -> Vec<SpecParams> {
    let mut seen = std::collections::HashSet::new();
    valid
        .iter()
        .filter(|p| {
            seen.insert((
                p.width(),
                p.block_yz,
                format!("{}", p.strategy),
                p.temporal_degree,
            ))
        })
        .copied()
        .collect()
}

/// Exhaustive dichotomy over the full default space on every paper
/// architecture: each candidate is either rejected by the predicate or
/// generates and passes full static verification. Also the coverage
/// guarantee: no target silently skips everything (or nothing).
#[test]
fn every_candidate_is_rejected_or_verifiable() {
    let shape = StencilShape::star(1);
    let st = shape.stencil();
    let b = st.default_bindings();
    let space = TuningSpace::default().enumerate();
    for arch in arches() {
        let mut valid = Vec::new();
        let mut skipped = 0usize;
        for p in &space {
            match validate(p, &shape, &arch, VALIDITY_N) {
                Ok(()) => valid.push(*p),
                Err(_) => skipped += 1,
            }
        }
        assert_eq!(valid.len() + skipped, space.len());
        assert!(
            !valid.is_empty(),
            "{}: the default space must keep feasible candidates",
            arch.kind
        );
        assert!(
            skipped > 0,
            "{}: the default space must exercise the validity predicate",
            arch.kind
        );
        // the paper baseline is always a member of the feasible set
        assert!(
            validate(
                &SpecParams::paper_default(arch.simd_width),
                &shape,
                &arch,
                VALIDITY_N
            )
            .is_ok(),
            "{}: paper default must validate",
            arch.kind
        );
        for p in distinct_programs(&valid) {
            build_verified(&shape, &b, &p);
        }
    }
}

/// Generation-level dichotomy for the deeper paper shapes, where fused
/// schedules approach (and cross) the generator's u16 virtual-register
/// capacity. Every valid candidate must still generate and structurally
/// validate; the capacity planner must reject at least one deeply-fused
/// star-2 cell — the exact class that once crashed `bricks tune star 2`
/// mid-sweep with a vreg-id overflow panic.
#[test]
fn deep_shapes_generate_or_are_rejected() {
    let arch = GpuArch::a100();
    let space = TuningSpace::default().enumerate();
    let mut overflow_rejections = 0usize;
    for shape in [
        StencilShape::star(2),
        StencilShape::star(4),
        StencilShape::cube(2),
    ] {
        let st = shape.stencil();
        let b = st.default_bindings();
        let mut valid = Vec::new();
        for p in &space {
            match validate(p, &shape, &arch, VALIDITY_N) {
                Ok(()) => valid.push(*p),
                Err(e) if e.kind() == "vreg_overflow" => overflow_rejections += 1,
                Err(_) => {}
            }
        }
        for p in distinct_programs(&valid) {
            let k = generate(&st, &b, LayoutKind::Brick, p.width(), p.codegen_options())
                .unwrap_or_else(|e| panic!("{shape}: valid candidate {p} failed to generate: {e}"));
            k.validate()
                .unwrap_or_else(|e| panic!("{shape}: {p} generated an invalid kernel: {e}"));
        }
    }
    assert!(
        overflow_rejections > 0,
        "the capacity planner must prune some deeply-fused cells"
    );
}

/// Execution semantics for every distinct valid program on the reference
/// architecture (paper bindings): see module docs for the oracle split.
#[test]
fn valid_programs_match_the_scalar_oracle() {
    let shape = StencilShape::star(1);
    let st = shape.stencil();
    let b = st.default_bindings();
    let arch = GpuArch::a100();
    let valid: Vec<SpecParams> = TuningSpace::default()
        .enumerate()
        .into_iter()
        .filter(|p| validate(p, &shape, &arch, VALIDITY_N).is_ok())
        .collect();
    let programs = distinct_programs(&valid);
    assert!(
        programs.len() >= 8,
        "expected a real matrix, got {programs:?}"
    );
    for p in programs {
        check_execution(&shape, &b, &p);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Randomized slice of the dichotomy: random architecture, shape,
    /// candidate and coefficient bindings. Invalid candidates must fail
    /// deterministically with the same reason; valid ones must survive
    /// the full generate → verify → execute chain.
    #[test]
    fn random_candidates_uphold_the_dichotomy(
        arch_idx in 0usize..3,
        shape_idx in 0usize..4,
        cand_idx in 0usize..5760, // = TuningSpace::default().len()
        coeff_seed in 0u64..1u64 << 32,
    ) {
        let arch = arches()[arch_idx].clone();
        let shape = [
            StencilShape::star(1),
            StencilShape::star(2),
            StencilShape::cube(1),
            StencilShape::cube(2),
        ][shape_idx];
        let space = TuningSpace::default().enumerate();
        let p = space[cand_idx % space.len()];

        match validate(&p, &shape, &arch, VALIDITY_N) {
            Err(first) => {
                let again = validate(&p, &shape, &arch, VALIDITY_N).unwrap_err();
                prop_assert_eq!(first.kind(), again.kind(), "rejection must be stable");
            }
            Ok(()) => {
                let st = shape.stencil();
                let mut rng = proptest::TestRng::new(coeff_seed | 1);
                let mut b = CoeffBindings::new();
                for sym in st.symbols() {
                    let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                    let exp = (rng.below(9) as i32) - 4; // 2^-4 ..= 2^4
                    b.set(sym.name(), (u - 0.5) * (2f64).powi(exp));
                }
                check_execution(&shape, &b, &p);
            }
        }
    }
}
