//! The tuner's search space: the cross product of every specialization
//! axis, enumerated in one canonical order.
//!
//! A [`TuningSpace`] is a set of per-axis candidate lists; [`enumerate`]
//! expands them into concrete [`SpecParams`] in a fixed nesting order
//! (vector width → fold → block → ordering → strategy → chunk → degree),
//! so the raw candidate sequence — and therefore skipped-candidate
//! reports, cache keys and ranked tables — is identical on every run and
//! at every jobs count. Feasibility is *not* this module's business:
//! every combination is emitted, and [`crate::validity`] decides which
//! survive, so invalid cells are visible (counted, attributable) rather
//! than silently absent.

use serde::{Deserialize, Serialize};

use brick_codegen::{SpecParams, Strategy};
use brick_core::BrickOrdering;

/// Per-axis candidate lists; the searched space is their cross product.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TuningSpace {
    /// Candidate hardware vector widths in lanes. Widths that do not
    /// match the target's SIMD width are enumerated and then rejected by
    /// the validity predicate — a real searched axis, not a constant.
    pub vector_widths: Vec<usize>,
    /// Candidate fold factors (hardware vectors per brick row).
    pub fold_factors: Vec<u32>,
    /// Candidate `(by, bz)` brick extents.
    pub block_yz: Vec<(usize, usize)>,
    /// Candidate memory orderings.
    pub orderings: Vec<BrickOrdering>,
    /// Candidate strategies (never [`Strategy::Auto`]: the tuner *is* the
    /// policy that `Auto` approximates).
    pub strategies: Vec<Strategy>,
    /// Candidate L2 interleave chunks for the memory simulation.
    pub interleave_chunks: Vec<usize>,
    /// Candidate temporal fusion degrees.
    pub temporal_degrees: Vec<u32>,
}

impl Default for TuningSpace {
    fn default() -> Self {
        TuningSpace {
            vector_widths: vec![16, 32, 64],
            fold_factors: vec![1, 2],
            block_yz: vec![
                (2, 2),
                (4, 2),
                (2, 4),
                (4, 4),
                (8, 4),
                (4, 8),
                (8, 8),
                (16, 16),
            ],
            orderings: vec![BrickOrdering::Lexicographic, BrickOrdering::Morton],
            strategies: vec![Strategy::Gather, Strategy::Scatter],
            interleave_chunks: vec![256, 512, 1024, 2048, 4096],
            temporal_degrees: vec![1, 2, 4],
        }
    }
}

impl TuningSpace {
    /// A minimal space: the paper's fixed configuration plus the scatter
    /// alternative — two candidates per target.
    pub fn minimal() -> Self {
        TuningSpace {
            vector_widths: vec![16, 32, 64],
            fold_factors: vec![1],
            block_yz: vec![(4, 4)],
            orderings: vec![BrickOrdering::Lexicographic],
            strategies: vec![Strategy::Gather, Strategy::Scatter],
            interleave_chunks: vec![1024],
            temporal_degrees: vec![1],
        }
    }

    /// A reduced space for smoke runs (~200 valid cells over the full
    /// stencil × platform matrix): one block axis, both strategies, two
    /// chunks, no folding.
    pub fn smoke() -> Self {
        TuningSpace {
            vector_widths: vec![16, 32, 64],
            fold_factors: vec![1],
            block_yz: vec![(4, 4), (8, 8)],
            orderings: vec![BrickOrdering::Lexicographic],
            strategies: vec![Strategy::Gather, Strategy::Scatter],
            interleave_chunks: vec![1024],
            temporal_degrees: vec![1, 2],
        }
    }

    /// Number of raw candidates per target before validity filtering.
    pub fn len(&self) -> usize {
        self.vector_widths.len()
            * self.fold_factors.len()
            * self.block_yz.len()
            * self.orderings.len()
            * self.strategies.len()
            * self.interleave_chunks.len()
            * self.temporal_degrees.len()
    }

    /// True if any axis is empty (the cross product is empty).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expand the cross product in canonical order.
    pub fn enumerate(&self) -> Vec<SpecParams> {
        let mut out = Vec::with_capacity(self.len());
        for &vector_width in &self.vector_widths {
            for &fold_factor in &self.fold_factors {
                for &block_yz in &self.block_yz {
                    for &ordering in &self.orderings {
                        for &strategy in &self.strategies {
                            for &interleave_chunk in &self.interleave_chunks {
                                for &temporal_degree in &self.temporal_degrees {
                                    out.push(SpecParams {
                                        vector_width,
                                        fold_factor,
                                        block_yz,
                                        ordering,
                                        strategy,
                                        interleave_chunk,
                                        temporal_degree,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Stable fingerprint of the whole space (axis contents and order) —
    /// recorded in run provenance so two ranked tables are only
    /// comparable when they searched the same space.
    pub fn fingerprint(&self) -> u64 {
        let json = serde_json::to_string(self).expect("space serializes");
        brick_obs::manifest::fnv1a64(json.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumerate_covers_the_cross_product_in_order() {
        let space = TuningSpace::minimal();
        let all = space.enumerate();
        assert_eq!(all.len(), space.len());
        assert_eq!(all.len(), 3 * 2);
        // canonical order: widths outermost, strategies inner
        assert_eq!(all[0].vector_width, 16);
        assert_eq!(all[0].strategy, Strategy::Gather);
        assert_eq!(all[1].strategy, Strategy::Scatter);
        assert_eq!(all[2].vector_width, 32);
    }

    #[test]
    fn enumeration_is_deterministic() {
        let space = TuningSpace::default();
        assert_eq!(space.enumerate(), space.enumerate());
        assert_eq!(space.fingerprint(), space.fingerprint());
        assert_ne!(
            space.fingerprint(),
            TuningSpace::minimal().fingerprint(),
            "different spaces fingerprint differently"
        );
    }

    #[test]
    fn default_space_is_thousands_of_candidates_per_target() {
        // the tentpole scale check: 6 stencils × 6 (gpu, model) pairs of
        // this per-target space clear the 10k-valid-cell bar
        assert!(TuningSpace::default().len() >= 1500);
    }

    #[test]
    fn empty_axis_empties_the_space() {
        let mut s = TuningSpace::minimal();
        s.temporal_degrees.clear();
        assert!(s.is_empty());
        assert!(s.enumerate().is_empty());
    }
}
