//! Per-target validity predicates: decide, *before* any compilation,
//! whether a [`SpecParams`] candidate can produce a legal kernel for a
//! `(stencil, architecture, domain)` triple.
//!
//! Every rejection carries a machine-stable reason ([`Invalid`]) so the
//! tuner can report skipped-candidate counts per cause instead of
//! silently shrinking the space. The predicates are conservative in the
//! right direction: a candidate is rejected only when *no* compilation
//! could succeed (lane mismatch, indivisible domain, reach overflow,
//! fused-schedule constraints) or when a *lower bound* on its register
//! demand already exceeds the architecture's per-thread ceiling — a
//! candidate that passes may still spill or underperform, and the
//! simulator prices that honestly; a candidate that fails could never
//! have been measured at all.

use std::fmt;

use brick_codegen::{SpecParams, Strategy};
use brick_dsl::min_live_registers;
use brick_dsl::shape::StencilShape;
use gpu_sim::GpuArch;

/// Why a candidate was rejected. Display strings are stable (they appear
/// in reports and tests); [`Invalid::kind`] gives the counter slug.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Invalid {
    /// The candidate's lane width differs from the target's SIMD width —
    /// the kernel cannot be issued as whole hardware vectors.
    LaneWidth {
        /// Candidate vector width.
        got: usize,
        /// The architecture's SIMD width.
        want: usize,
    },
    /// The folded row's byte span is not a whole number of cache sectors,
    /// so row loads could not be issued at fetch granularity.
    SectorMisaligned {
        /// Row bytes (`width · 8`).
        row_bytes: usize,
        /// The architecture's L1 sector size.
        sector: usize,
    },
    /// The domain extent is not divisible by a brick extent on some axis.
    Indivisible {
        /// Axis name (`"x"`, `"y"`, `"z"`).
        axis: &'static str,
        /// Domain extent.
        n: usize,
        /// Brick extent on that axis.
        b: usize,
    },
    /// The stencil reach exceeds a brick extent: one neighbouring brick
    /// cannot serve the halo.
    ReachTooLarge {
        /// Axis name.
        axis: &'static str,
        /// Composed reach (`T · r`).
        reach: usize,
        /// Brick extent on that axis.
        b: usize,
    },
    /// Temporal fusion requires the gather schedule (the generator has no
    /// fused scatter lowering; accepting the cell would alias the gather
    /// kernel under a different label).
    TemporalNeedsGather,
    /// The fused schedule's exact virtual-register program overflows the
    /// generator's `u16` id space — compilation itself is impossible, not
    /// merely slow. Counted before any IR is emitted by
    /// [`brick_codegen::fused_vreg_count`].
    VregOverflow {
        /// Exact virtual registers the fused schedule would allocate.
        vregs: usize,
        /// The generator's id-space capacity.
        capacity: usize,
    },
    /// Even the structural lower bound on live registers
    /// ([`min_live_registers`]) exceeds the per-thread ceiling: every
    /// possible schedule spills before it starts.
    RegisterFloorExceeded {
        /// Lower-bound architectural demand per thread.
        demand: u32,
        /// The architecture's per-thread register ceiling.
        ceiling: u32,
    },
    /// Zero fold factor or temporal degree.
    DegenerateAxis(&'static str),
}

impl Invalid {
    /// Short stable slug for obs counters (`tune.skipped.<kind>`).
    pub fn kind(&self) -> &'static str {
        match self {
            Invalid::LaneWidth { .. } => "lane_width",
            Invalid::SectorMisaligned { .. } => "sector",
            Invalid::Indivisible { .. } => "indivisible",
            Invalid::ReachTooLarge { .. } => "reach",
            Invalid::TemporalNeedsGather => "temporal_scatter",
            Invalid::VregOverflow { .. } => "vreg_overflow",
            Invalid::RegisterFloorExceeded { .. } => "register_floor",
            Invalid::DegenerateAxis(_) => "degenerate",
        }
    }
}

impl fmt::Display for Invalid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Invalid::LaneWidth { got, want } => {
                write!(f, "vector width {got} != SIMD width {want}")
            }
            Invalid::SectorMisaligned { row_bytes, sector } => {
                write!(f, "row of {row_bytes} B not sector-aligned ({sector} B)")
            }
            Invalid::Indivisible { axis, n, b } => {
                write!(f, "domain {n} not divisible by {axis} extent {b}")
            }
            Invalid::ReachTooLarge { axis, reach, b } => {
                write!(f, "reach {reach} exceeds {axis} extent {b}")
            }
            Invalid::TemporalNeedsGather => f.write_str("temporal fusion requires gather"),
            Invalid::VregOverflow { vregs, capacity } => {
                write!(
                    f,
                    "fused schedule needs {vregs} vregs (capacity {capacity})"
                )
            }
            Invalid::RegisterFloorExceeded { demand, ceiling } => {
                write!(
                    f,
                    "register floor {demand}/thread exceeds ceiling {ceiling}"
                )
            }
            Invalid::DegenerateAxis(a) => write!(f, "degenerate {a}"),
        }
    }
}

/// Check `params` against stencil `shape`, target `arch` and an `n³`
/// domain. `Ok(())` means [`brick_codegen::generate`] must succeed and
/// the simulator must accept the launch — the proptest harness holds the
/// tuner to exactly this contract.
pub fn validate(
    params: &SpecParams,
    shape: &StencilShape,
    arch: &GpuArch,
    n: usize,
) -> Result<(), Invalid> {
    if params.fold_factor == 0 {
        return Err(Invalid::DegenerateAxis("fold factor"));
    }
    if params.temporal_degree == 0 {
        return Err(Invalid::DegenerateAxis("temporal degree"));
    }
    if params.vector_width != arch.simd_width {
        return Err(Invalid::LaneWidth {
            got: params.vector_width,
            want: arch.simd_width,
        });
    }
    let row_bytes = params.width() * 8;
    if !row_bytes.is_multiple_of(arch.l1_sector) {
        return Err(Invalid::SectorMisaligned {
            row_bytes,
            sector: arch.l1_sector,
        });
    }
    let (by, bz) = params.block_yz;
    for (axis, b) in [("x", params.width()), ("y", by), ("z", bz)] {
        if b == 0 || !n.is_multiple_of(b) {
            return Err(Invalid::Indivisible { axis, n, b });
        }
    }
    if params.temporal_degree > 1 && params.strategy != Strategy::Gather {
        return Err(Invalid::TemporalNeedsGather);
    }
    let reach = params.temporal_degree as usize * shape.radius as usize;
    for (axis, b) in [("x", params.width()), ("y", by), ("z", bz)] {
        if reach > b {
            return Err(Invalid::ReachTooLarge { axis, reach, b });
        }
    }
    if params.temporal_degree > 1 {
        // exact — the planner counts the registers the fused scheduler
        // would allocate, so a passing candidate can never crash codegen
        let vregs = brick_codegen::fused_vreg_count(
            &shape.stencil(),
            params.block_yz,
            params.temporal_degree,
        );
        if vregs > brick_codegen::VREG_CAPACITY {
            return Err(Invalid::VregOverflow {
                vregs,
                capacity: brick_codegen::VREG_CAPACITY,
            });
        }
    }
    let demand = brick_lint::occupancy::reg_demand(min_live_registers(
        shape.radius as usize,
        params.temporal_degree,
    ));
    if demand > arch.max_regs_per_thread {
        return Err(Invalid::RegisterFloorExceeded {
            demand,
            ceiling: arch.max_regs_per_thread,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use brick_core::BrickOrdering;

    fn base(arch: &GpuArch) -> SpecParams {
        SpecParams::paper_default(arch.simd_width)
    }

    #[test]
    fn paper_default_is_valid_on_every_target() {
        for arch in GpuArch::table() {
            for shape in StencilShape::paper_suite() {
                assert_eq!(validate(&base(arch), &shape, arch, 64), Ok(()), "{shape}");
            }
        }
    }

    #[test]
    fn lane_width_mismatch_rejected() {
        let arch = GpuArch::a100();
        let p = SpecParams {
            vector_width: 16,
            ..base(&arch)
        };
        assert!(matches!(
            validate(&p, &StencilShape::star(1), &arch, 64),
            Err(Invalid::LaneWidth { got: 16, want: 32 })
        ));
    }

    #[test]
    fn fold_must_divide_domain() {
        // fold 2 on MI250X: 128-wide rows cannot tile a 64³ domain
        let arch = GpuArch::mi250x_gcd();
        let p = SpecParams {
            fold_factor: 2,
            ..base(&arch)
        };
        assert!(matches!(
            validate(&p, &StencilShape::star(1), &arch, 64),
            Err(Invalid::Indivisible { axis: "x", .. })
        ));
        assert_eq!(validate(&p, &StencilShape::star(1), &arch, 128), Ok(()));
    }

    #[test]
    fn composed_reach_checked_per_axis() {
        let arch = GpuArch::a100();
        let p = SpecParams {
            block_yz: (2, 2),
            temporal_degree: 1,
            ..base(&arch)
        };
        assert!(matches!(
            validate(&p, &StencilShape::star(4), &arch, 64),
            Err(Invalid::ReachTooLarge { axis: "y", .. })
        ));
        // T=2 doubles the reach: radius 2 no longer fits a 2-extent
        let p2 = SpecParams {
            block_yz: (2, 2),
            temporal_degree: 2,
            ..base(&arch)
        };
        assert!(validate(&p2, &StencilShape::star(2), &arch, 64).is_err());
    }

    #[test]
    fn fused_scatter_rejected() {
        let arch = GpuArch::a100();
        let p = SpecParams {
            strategy: Strategy::Scatter,
            temporal_degree: 2,
            ..base(&arch)
        };
        assert_eq!(
            validate(&p, &StencilShape::star(1), &arch, 64),
            Err(Invalid::TemporalNeedsGather)
        );
    }

    #[test]
    fn register_floor_rejects_on_tiny_register_files() {
        // a synthetic arch whose ceiling is below even the structural
        // floor of a deeply fused kernel
        let mut arch = GpuArch::a100();
        arch.max_regs_per_thread = 24;
        let p = SpecParams {
            temporal_degree: 4,
            block_yz: (4, 4),
            ..base(&arch)
        };
        // floor: (4-1)·3+2 = 11 live → 2·11+16 = 38 > 24
        assert!(matches!(
            validate(&p, &StencilShape::star(1), &arch, 64),
            Err(Invalid::RegisterFloorExceeded { demand: 38, .. })
        ));
        // the spatial kernel still passes: floor 2 → demand 20 ≤ 24
        assert_eq!(
            validate(&base(&arch), &StencilShape::star(1), &arch, 64),
            Ok(())
        );
    }

    #[test]
    fn oversized_fused_programs_rejected_before_codegen() {
        // cube-2 fused twice over a 16×16 block: the exact planner says
        // the schedule overflows the u16 vreg space, so the predicate
        // must reject it — letting it through crashes the sweep mid-tune
        let arch = GpuArch::a100();
        let p = SpecParams {
            temporal_degree: 2,
            block_yz: (16, 16),
            ..base(&arch)
        };
        assert!(matches!(
            validate(&p, &StencilShape::cube(2), &arch, 64),
            Err(Invalid::VregOverflow { .. })
        ));
        // the same cell shrunk to the paper block fits comfortably
        let small = SpecParams {
            temporal_degree: 2,
            ..base(&arch)
        };
        assert_eq!(validate(&small, &StencilShape::cube(2), &arch, 64), Ok(()));
    }

    #[test]
    fn every_reason_has_a_stable_kind() {
        let reasons = [
            Invalid::LaneWidth { got: 1, want: 2 },
            Invalid::SectorMisaligned {
                row_bytes: 8,
                sector: 32,
            },
            Invalid::Indivisible {
                axis: "x",
                n: 64,
                b: 3,
            },
            Invalid::ReachTooLarge {
                axis: "y",
                reach: 9,
                b: 4,
            },
            Invalid::TemporalNeedsGather,
            Invalid::VregOverflow {
                vregs: 70_000,
                capacity: 65_535,
            },
            Invalid::RegisterFloorExceeded {
                demand: 99,
                ceiling: 10,
            },
            Invalid::DegenerateAxis("fold factor"),
        ];
        let kinds: Vec<&str> = reasons.iter().map(Invalid::kind).collect();
        let mut dedup = kinds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), kinds.len(), "kinds must be distinct");
    }

    #[test]
    fn morton_and_chunk_do_not_affect_validity() {
        let arch = GpuArch::pvc_stack();
        for shape in StencilShape::paper_suite() {
            let p = SpecParams {
                ordering: BrickOrdering::Morton,
                interleave_chunk: 256,
                ..base(&arch)
            };
            assert_eq!(validate(&p, &shape, &arch, 64), Ok(()), "{shape}");
        }
    }
}
