//! # brick-tuner
//!
//! Autotuning over brick dimension, memory ordering and code-generation
//! strategy. The paper attributes BrickLib's performance portability to
//! exactly this search ("With the addition of autotuning for brick
//! dimension, layout, and ordering, BrickLib demonstrates some level of
//! performance portability", §3) and names brick-size tuning as the path
//! to the remaining 2–4× of its potential-speed-up plot (§5.2.2).
//!
//! The tuner enumerates a [`TuningSpace`], simulates every candidate on
//! the target GPU/programming model, and ranks by simulated GFLOP/s:
//!
//! ```no_run
//! use brick_tuner::{autotune, TuningSpace};
//! use brick_dsl::shape::StencilShape;
//! use gpu_sim::{GpuArch, ProgModel};
//!
//! let result = autotune(
//!     &StencilShape::star(2),
//!     &GpuArch::a100(),
//!     ProgModel::Cuda,
//!     128,
//!     &TuningSpace::default(),
//! )
//! .unwrap();
//! println!("best: {} at {:.0} GFLOP/s", result.best().0, result.best().1);
//! ```

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

use brick_codegen::{generate, CodegenOptions, LayoutKind, Strategy};
use brick_core::{BrickDecomp, BrickDims, BrickNav, BrickOrdering};
use brick_dsl::shape::StencilShape;
use brick_dsl::StencilAnalysis;
use brick_vm::{KernelSpec, TraceGeometry};
use gpu_sim::{simulate, GpuArch, ProgModel, SimResult};

/// One candidate configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TuningPoint {
    /// Brick `y` extent.
    pub by: usize,
    /// Brick `z` extent.
    pub bz: usize,
    /// Brick memory ordering.
    pub ordering: BrickOrdering,
    /// Codegen scheduling strategy (never `Auto` in results).
    pub strategy: Strategy,
}

impl fmt::Display for TuningPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{}xW {:?} {}",
            self.bz, self.by, self.ordering, self.strategy
        )
    }
}

/// The search space.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TuningSpace {
    /// Candidate `(by, bz)` brick extents.
    pub block_yz: Vec<(usize, usize)>,
    /// Candidate memory orderings.
    pub orderings: Vec<BrickOrdering>,
    /// Candidate strategies.
    pub strategies: Vec<Strategy>,
}

impl Default for TuningSpace {
    fn default() -> Self {
        TuningSpace {
            block_yz: vec![(2, 2), (4, 2), (2, 4), (4, 4), (8, 4), (4, 8), (8, 8)],
            orderings: vec![BrickOrdering::Lexicographic, BrickOrdering::Morton],
            strategies: vec![Strategy::Gather, Strategy::Scatter],
        }
    }
}

impl TuningSpace {
    /// A minimal space (the paper's fixed 4×4 brick, both strategies).
    pub fn minimal() -> Self {
        TuningSpace {
            block_yz: vec![(4, 4)],
            orderings: vec![BrickOrdering::Lexicographic],
            strategies: vec![Strategy::Gather, Strategy::Scatter],
        }
    }

    /// Number of raw candidates before feasibility filtering.
    pub fn len(&self) -> usize {
        self.block_yz.len() * self.orderings.len() * self.strategies.len()
    }

    /// True if the space is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Errors from the tuner.
#[derive(Debug, Clone, PartialEq)]
pub enum TuneError {
    /// The programming model is not supported on the GPU.
    Unsupported(ProgModel),
    /// No candidate in the space was feasible for the stencil/domain.
    NoFeasiblePoint,
    /// Domain extent incompatible with the architecture SIMD width.
    BadDomain(String),
}

impl fmt::Display for TuneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TuneError::Unsupported(m) => write!(f, "{m} unsupported on this GPU"),
            TuneError::NoFeasiblePoint => f.write_str("no feasible tuning point"),
            TuneError::BadDomain(e) => write!(f, "bad domain: {e}"),
        }
    }
}

impl std::error::Error for TuneError {}

/// Outcome of a search: every evaluated point with its simulation,
/// sorted best-first.
#[derive(Debug, Clone)]
pub struct TuningResult {
    /// `(point, result)` pairs, best GFLOP/s first.
    pub ranked: Vec<(TuningPoint, SimResult)>,
    /// Points skipped as infeasible (reach exceeds the brick, indivisible
    /// domain), with the reason.
    pub skipped: Vec<(TuningPoint, String)>,
}

impl TuningResult {
    /// The winning point and its GFLOP/s.
    pub fn best(&self) -> (TuningPoint, f64) {
        let (p, r) = &self.ranked[0];
        (*p, r.gflops)
    }

    /// Speed-up of the best point over the worst evaluated one.
    pub fn spread(&self) -> f64 {
        let best = self.ranked.first().map(|(_, r)| r.gflops).unwrap_or(0.0);
        let worst = self.ranked.last().map(|(_, r)| r.gflops).unwrap_or(best);
        best / worst
    }

    /// Speed-up of the best point over the paper's fixed `4×4×W` gather
    /// default, if that point was evaluated.
    pub fn gain_over_default(&self) -> Option<f64> {
        let default = self
            .ranked
            .iter()
            .find(|(p, _)| p.by == 4 && p.bz == 4 && p.ordering == BrickOrdering::Lexicographic)
            .map(|(_, r)| r.gflops)?;
        Some(self.best().1 / default)
    }
}

/// Search the space for the fastest bricks-codegen configuration of
/// `shape` on `arch` under `model`, over an `n³` domain.
pub fn autotune(
    shape: &StencilShape,
    arch: &GpuArch,
    model: ProgModel,
    n: usize,
    space: &TuningSpace,
) -> Result<TuningResult, TuneError> {
    if !model.supports(arch.kind) {
        return Err(TuneError::Unsupported(model));
    }
    let w = arch.simd_width;
    if n == 0 || !n.is_multiple_of(w) {
        return Err(TuneError::BadDomain(format!(
            "extent {n} not a multiple of the SIMD width {w}"
        )));
    }
    let stencil = shape.stencil();
    let bindings = stencil.default_bindings();
    let analysis = StencilAnalysis::of_shape(shape);
    let radius = shape.radius as usize;

    let mut ranked = Vec::new();
    let mut skipped = Vec::new();
    for &(by, bz) in &space.block_yz {
        for &ordering in &space.orderings {
            for &strategy in &space.strategies {
                let point = TuningPoint {
                    by,
                    bz,
                    ordering,
                    strategy,
                };
                if !n.is_multiple_of(by) || !n.is_multiple_of(bz) {
                    skipped.push((point, format!("domain {n} not divisible by {by}x{bz}")));
                    continue;
                }
                let kernel = match generate(
                    &stencil,
                    &bindings,
                    LayoutKind::Brick,
                    w,
                    CodegenOptions {
                        strategy,
                        block_yz: (by, bz),
                        ..Default::default()
                    },
                ) {
                    Ok(k) => k,
                    Err(e) => {
                        skipped.push((point, e.to_string()));
                        continue;
                    }
                };
                let decomp = Arc::new(BrickDecomp::new(
                    (n, n, n),
                    BrickDims::new(w, by, bz),
                    radius,
                    ordering,
                ));
                let geom = TraceGeometry::brick(Arc::new(BrickNav::new(decomp)));
                let sim = simulate(
                    &KernelSpec::Vector(kernel),
                    &geom,
                    arch,
                    model,
                    analysis.flops_per_point,
                )
                .expect("support checked above");
                ranked.push((point, sim));
            }
        }
    }
    if ranked.is_empty() {
        return Err(TuneError::NoFeasiblePoint);
    }
    ranked.sort_by(|a, b| b.1.gflops.total_cmp(&a.1.gflops));
    Ok(TuningResult { ranked, skipped })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_space() -> TuningSpace {
        TuningSpace {
            block_yz: vec![(4, 4), (8, 8)],
            orderings: vec![BrickOrdering::Lexicographic],
            strategies: vec![Strategy::Gather, Strategy::Scatter],
        }
    }

    #[test]
    fn tuner_ranks_candidates() {
        let r = autotune(
            &StencilShape::star(1),
            &GpuArch::a100(),
            ProgModel::Cuda,
            64,
            &small_space(),
        )
        .unwrap();
        assert_eq!(r.ranked.len(), 4);
        // ranking is descending
        for w in r.ranked.windows(2) {
            assert!(w[0].1.gflops >= w[1].1.gflops);
        }
        assert!(r.spread() >= 1.0);
    }

    #[test]
    fn infeasible_points_are_reported_not_fatal() {
        // radius 4 does not fit a 2x2 brick
        let space = TuningSpace {
            block_yz: vec![(2, 2), (4, 4)],
            orderings: vec![BrickOrdering::Lexicographic],
            strategies: vec![Strategy::Gather],
        };
        let r = autotune(
            &StencilShape::star(4),
            &GpuArch::a100(),
            ProgModel::Cuda,
            64,
            &space,
        )
        .unwrap();
        assert_eq!(r.ranked.len(), 1);
        assert_eq!(r.skipped.len(), 1);
        assert!(r.skipped[0].1.contains("reach"));
    }

    #[test]
    fn unsupported_model_rejected() {
        assert_eq!(
            autotune(
                &StencilShape::star(1),
                &GpuArch::pvc_stack(),
                ProgModel::Cuda,
                64,
                &TuningSpace::minimal(),
            )
            .unwrap_err(),
            TuneError::Unsupported(ProgModel::Cuda)
        );
    }

    #[test]
    fn bad_domain_rejected() {
        assert!(matches!(
            autotune(
                &StencilShape::star(1),
                &GpuArch::a100(),
                ProgModel::Cuda,
                100,
                &TuningSpace::minimal(),
            ),
            Err(TuneError::BadDomain(_))
        ));
    }

    #[test]
    fn empty_feasible_set_is_an_error() {
        let space = TuningSpace {
            block_yz: vec![(2, 2)],
            orderings: vec![BrickOrdering::Lexicographic],
            strategies: vec![Strategy::Gather],
        };
        // radius 4 exceeds the 2×2 brick on both y and z
        assert_eq!(
            autotune(
                &StencilShape::star(4),
                &GpuArch::a100(),
                ProgModel::Cuda,
                64,
                &space,
            )
            .unwrap_err(),
            TuneError::NoFeasiblePoint
        );
    }

    #[test]
    fn gain_over_default_present_when_default_in_space() {
        let r = autotune(
            &StencilShape::cube(1),
            &GpuArch::a100(),
            ProgModel::Cuda,
            64,
            &small_space(),
        )
        .unwrap();
        let g = r.gain_over_default().unwrap();
        assert!(g >= 1.0, "{g}");
    }
}
