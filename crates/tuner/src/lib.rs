//! # brick-tuner
//!
//! Autotuning over the full kernel-specialization space. The paper
//! attributes BrickLib's performance portability to exactly this search
//! ("With the addition of autotuning for brick dimension, layout, and
//! ordering, BrickLib demonstrates some level of performance
//! portability", §3) and names brick-size tuning as the path to the
//! remaining 2–4× of its potential-speed-up plot (§5.2.2).
//!
//! The tuner drives the specialization vector
//! ([`brick_codegen::SpecParams`]: vector width, fold factor, brick
//! shape, ordering, strategy, interleave chunk, temporal degree) through
//! three stages:
//!
//! 1. **Validity** ([`validity`]) — per-target predicates reject
//!    candidates no compilation could satisfy (lane mismatch, reach
//!    overflow, register floor) *before* any codegen, with per-reason
//!    skip counts surfaced through brick-obs.
//! 2. **Pruning** ([`roofline_upper_bound`]) — a provable upper bound on
//!    each candidate's simulated GFLOP/s (theoretical Roofline at the
//!    compulsory-traffic AI, derated by an occupancy *upper* bound from
//!    the register-demand *lower* bound). Candidates bounded below the
//!    already-measured paper baseline are dropped without simulation.
//! 3. **Measurement** — surviving cells are generated, statically
//!    verified by `brick-lint`, simulated through the shared substrate,
//!    and ranked by GFLOP/s with fingerprint tie-breaks, in parallel via
//!    [`brick_sweep::map_cells`] with content-addressed caching.
//!
//! The ranked table is deterministic: byte-identical at any `--jobs`
//! count and across warm/cold cache runs.
//!
//! ```no_run
//! use brick_tuner::{autotune, TuningSpace};
//! use brick_dsl::shape::StencilShape;
//! use gpu_sim::{GpuArch, ProgModel};
//!
//! let group = autotune(
//!     &StencilShape::star(2),
//!     &GpuArch::a100(),
//!     ProgModel::Cuda,
//!     64,
//!     &TuningSpace::default(),
//! )
//! .unwrap();
//! println!("best: {} at {:.0} GFLOP/s", group.best().params, group.best().gflops);
//! ```

pub mod space;
pub mod validity;

pub use space::TuningSpace;
pub use validity::{validate, Invalid};

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, OnceLock};

use serde::{Deserialize, Serialize};

use brick_codegen::{generate, LayoutKind, SpecParams};
use brick_core::{BrickDecomp, BrickNav};
use brick_dsl::shape::StencilShape;
use brick_dsl::{min_live_registers, StencilAnalysis};
use brick_sweep::{map_cells, CacheKey, CacheOutcome, DiskCache, Jobs, KeyBuilder};
use brick_vm::{KernelSpec, TraceGeometry};
use gpu_sim::{
    assemble, compile_only, simulate_memory_opts, GpuArch, GpuKind, MemCounters, ProgModel,
    SimFidelity, SimOptions,
};
use roofline::Roofline;

/// Version of the tuner's cache schema. The `tune` domain was introduced
/// at v1 **after** the specialization-vector refactor, so no pre-spec
/// record can alias a specialized one: older tuner runs never wrote to
/// this domain at all, and the key embeds the [`SpecParams`] fingerprint
/// explicitly.
///
/// v2 keys cells on the *stencil shape* fingerprint instead of the
/// generated kernel's: the program is a pure function of `(shape, spec
/// vector, generator version)`, and hashing the shape lets a warm rerun
/// serve every cell — including pruned ones, cached as markers — without
/// generating or lint-verifying a single kernel. The flip side of
/// dropping the program hash from the key: a codegen or analyzer change
/// that alters tuner records MUST bump this version.
pub const TUNE_SCHEMA_VERSION: u64 = 2;

/// Safety margin on the pruning bound: a candidate is dropped only when
/// its upper bound times this margin is still below the measured paper
/// baseline (absorbs the simulator's ≤0.1% AI accounting slop).
const PRUNE_MARGIN: f64 = 1.05;

/// Stable fingerprint of a full architecture description (every field,
/// via its canonical JSON) — editing the arch table invalidates that
/// GPU's cached tuner cells.
pub fn arch_fingerprint(arch: &GpuArch) -> u64 {
    let json = serde_json::to_string(arch).expect("GpuArch serializes");
    brick_obs::manifest::fnv1a64(json.as_bytes())
}

/// Stable fingerprint of a stencil shape: label, radius and the full
/// tap list (offsets + coefficient symbol per tap, which pins the class
/// structure). Together with the spec-vector fingerprint this identifies
/// the generated program for a fixed generator version.
pub fn shape_fingerprint(shape: &StencilShape) -> u64 {
    let st = shape.stencil();
    let mut desc = format!("{};r={}", shape.label(), shape.radius);
    for t in st.taps() {
        use std::fmt::Write as _;
        let _ = write!(
            &mut desc,
            ";{},{},{}:{}",
            t.offset[0], t.offset[1], t.offset[2], t.coeff
        );
    }
    brick_obs::manifest::fnv1a64(desc.as_bytes())
}

/// Cache key for one tuner cell. Identity = stencil shape + full
/// specialization vector (its own fingerprint — two cells whose
/// *programs* coincide, e.g. differing only in ordering or interleave
/// chunk, must still never share a record) + architecture + model +
/// domain + scoring inputs + the pruning mode (a pruned-marker written
/// under `prune` must never mask a measurement a full run owes).
#[allow(clippy::too_many_arguments)]
pub fn tune_cell_key(
    shape_fp: u64,
    params: &SpecParams,
    arch: &GpuArch,
    model: ProgModel,
    n: usize,
    flops_per_point: u64,
    theoretical_ai: f64,
    roofline: &Roofline,
    fidelity: SimFidelity,
    prune: bool,
) -> CacheKey {
    KeyBuilder::new("tune", TUNE_SCHEMA_VERSION)
        .fingerprint("shape", shape_fp)
        .fingerprint("spec", params.fingerprint())
        .fingerprint("arch", arch_fingerprint(arch))
        .field("model", model)
        .field("n", n)
        .field("flops", flops_per_point)
        .field("fidelity", fidelity)
        .field("prune", prune)
        .f64_bits("theory_ai", theoretical_ai)
        .f64_bits("rl_peak", roofline.peak_gflops)
        .f64_bits("rl_bw", roofline.bandwidth_gbs)
        .build()
}

/// The cached value of one tuner cell: a measured record, or `None` for
/// a cell the Roofline bound pruned — cached too, so warm reruns skip
/// the (kernel-compiling) prune pass entirely.
#[derive(Serialize, Deserialize)]
struct CachedCell {
    record: Option<TunedRecord>,
}

/// Cache key for a target's empirical Roofline (the tuner's own domain so
/// schema bumps here never collide with the experiment harness's).
pub fn tune_roofline_key(arch: &GpuArch, model: ProgModel) -> CacheKey {
    KeyBuilder::new("tune-roofline", TUNE_SCHEMA_VERSION)
        .fingerprint("arch", arch_fingerprint(arch))
        .field("model", model)
        .build()
}

/// Provable upper bound on the simulated GFLOP/s of a candidate, used for
/// pruning. Sound by construction:
///
/// * empirical AI never exceeds the compulsory-traffic bound
///   `T · theoretical_ai` (DRAM moves at least 16 B per point per launch);
/// * achieved occupancy never exceeds the bound derived from the
///   *structural lower bound* on register demand
///   ([`min_live_registers`] → [`brick_lint::occupancy::reg_demand`]);
/// * the memory system derates bandwidth by `min(1, occ/sat)`, and
///   simulated time is at least the derated-DRAM time;
/// * the theoretical ceilings dominate the measured ones.
///
/// Therefore `simulated_gflops ≤ bound` for every valid candidate, and
/// dropping candidates bounded below an already-measured competitor can
/// never drop the winner.
pub fn roofline_upper_bound(params: &SpecParams, shape: &StencilShape, arch: &GpuArch) -> f64 {
    let demand_lb = brick_lint::occupancy::reg_demand(min_live_registers(
        shape.radius as usize,
        params.temporal_degree,
    ));
    let threads = params.width() as u32;
    let by_regs = arch.regfile_per_sm / (demand_lb * threads).max(1);
    let by_threads = arch.max_threads_per_sm / threads.max(1);
    let blocks_ub = by_regs.min(by_threads).min(arch.max_blocks_per_sm).max(1);
    let warps_ub = (blocks_ub * params.fold_factor).min(arch.max_warps_per_sm());
    let occ_ub = warps_ub as f64 / arch.max_warps_per_sm() as f64;
    occupancy_upper_bound(params, shape, arch, occ_ub)
}

/// The same Roofline bound, tightened with a known occupancy fraction —
/// the tuner applies it with the *compiled* occupancy (from the cheap
/// [`compile_only`] pass) before paying for the memory trace. Sound for
/// the same reasons as [`roofline_upper_bound`]: simulated time is at
/// least the occupancy-derated DRAM time at compulsory traffic.
pub fn occupancy_upper_bound(
    params: &SpecParams,
    shape: &StencilShape,
    arch: &GpuArch,
    occupancy: f64,
) -> f64 {
    let analysis = StencilAnalysis::of_shape(shape);
    let ai_ub = analysis.theoretical_ai * params.temporal_degree as f64;
    let derate = (occupancy / arch.bw_saturation_occupancy).min(1.0);
    (ai_ub * arch.hbm_gbs * derate).min(arch.fp64_gflops)
}

/// One measured tuner cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TunedRecord {
    /// The full specialization vector.
    pub params: SpecParams,
    /// [`SpecParams::fingerprint`] — the ranking tie-break and the
    /// provenance link into cache keys.
    pub fingerprint: u64,
    /// Analyzer content hash of the generated program.
    pub kernel_fingerprint: u64,
    /// GFLOP/s at the normalised FLOP count (`T ×` per-step for fused
    /// cells, so degrees rank against each other fairly).
    pub gflops: f64,
    /// Empirical arithmetic intensity.
    pub ai: f64,
    /// Kernel time in seconds.
    pub time_s: f64,
    /// HBM traffic in bytes.
    pub dram_bytes: u64,
    /// Occupancy fraction.
    pub occupancy: f64,
    /// Registers per thread after compilation.
    pub regs_per_thread: u32,
    /// Whether the compiler spilled.
    pub spilled: bool,
    /// Limiting resource.
    pub limiter: String,
    /// Fraction of the target's *empirical* Roofline achieved.
    pub roofline_frac: f64,
}

/// The tuning outcome for one `(stencil, GPU, model)` group.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TuneGroup {
    /// Paper stencil label (`"7pt"` … `"125pt"`).
    pub stencil: String,
    /// Stencil shape.
    pub shape: StencilShape,
    /// GPU.
    pub gpu: GpuKind,
    /// Programming model.
    pub model: ProgModel,
    /// The paper's fixed configuration, always measured (never pruned) —
    /// the anchor of the tuned-vs-paper comparison.
    pub baseline: TunedRecord,
    /// Measured candidates, best GFLOP/s first, fingerprint tie-break;
    /// includes the baseline. Truncated to the request's `top_k`.
    pub ranked: Vec<TunedRecord>,
    /// Cells actually simulated (or served from cache).
    pub evaluated: u64,
    /// Cells dropped by the Roofline upper bound.
    pub pruned: u64,
    /// Cells rejected by the validity predicate.
    pub skipped: u64,
    /// Skip counts per [`Invalid::kind`], sorted by reason slug.
    pub skip_reasons: Vec<(String, u64)>,
    /// Raw candidates enumerated for this group before filtering.
    pub raw_candidates: u64,
}

impl TuneGroup {
    /// The winning record.
    pub fn best(&self) -> &TunedRecord {
        &self.ranked[0]
    }

    /// Speed-up of the winner over the paper's fixed configuration
    /// (≥ 1 by construction: the baseline competes in the ranking).
    pub fn gain_over_paper(&self) -> f64 {
        self.best().gflops / self.baseline.gflops
    }

    /// Speed-up of the best ranked cell over the worst ranked cell.
    pub fn spread(&self) -> f64 {
        let best = self.best().gflops;
        let worst = self.ranked.last().map_or(best, |r| r.gflops);
        best / worst
    }
}

/// A complete tuning run: every group plus provenance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TuneReport {
    /// Domain extent (`n³`).
    pub n: usize,
    /// [`TuningSpace::fingerprint`] of the searched space.
    pub space_fingerprint: u64,
    /// One group per `(stencil, GPU, model)`, in canonical order
    /// (stencils outer, targets inner).
    pub groups: Vec<TuneGroup>,
    /// Run provenance (includes tuner cell accounting).
    pub manifest: brick_obs::RunManifest,
}

impl TuneReport {
    /// The group for an exact `(gpu, model, stencil)` point.
    pub fn group(&self, gpu: GpuKind, model: ProgModel, stencil: &str) -> Option<&TuneGroup> {
        self.groups
            .iter()
            .find(|g| g.gpu == gpu && g.model == model && g.stencil == stencil)
    }

    /// Total cells measured across groups.
    pub fn total_evaluated(&self) -> u64 {
        self.groups.iter().map(|g| g.evaluated).sum()
    }
}

/// One tuning target: an architecture description plus a programming
/// model. Owning the arch (rather than a `GpuKind`) lets tests tune
/// synthetic or scaled machines.
#[derive(Debug, Clone)]
pub struct TuneTarget {
    /// Architecture to tune for.
    pub arch: GpuArch,
    /// Programming model.
    pub model: ProgModel,
}

/// Request for [`tune_matrix`]: which stencils × targets to tune, over
/// which space, with which scheduling/caching.
#[derive(Debug, Clone)]
pub struct TuneOptions {
    /// Domain extent.
    pub n: usize,
    /// Stencils to tune (defaults to the paper suite).
    pub shapes: Vec<StencilShape>,
    /// `(arch, model)` targets (defaults to the paper's 6-pair matrix).
    pub targets: Vec<TuneTarget>,
    /// The search space.
    pub space: TuningSpace,
    /// Worker threads.
    pub jobs: Jobs,
    /// On-disk cache directory (`None` = no persistent cache).
    pub cache_dir: Option<PathBuf>,
    /// Simulation fidelity.
    pub fidelity: SimFidelity,
    /// Enable Roofline upper-bound pruning.
    pub prune: bool,
    /// Ranked-table truncation per group.
    pub top_k: usize,
}

impl TuneOptions {
    /// The paper's full matrix at `n³` over the default space.
    pub fn new(n: usize) -> TuneOptions {
        TuneOptions {
            n,
            shapes: StencilShape::paper_suite().to_vec(),
            targets: ProgModel::paper_matrix()
                .into_iter()
                .map(|(gpu, model)| TuneTarget {
                    arch: GpuArch::by_kind(gpu).clone(),
                    model,
                })
                .collect(),
            space: TuningSpace::default(),
            jobs: Jobs::Auto,
            cache_dir: None,
            fidelity: SimFidelity::default(),
            prune: true,
            top_k: 10,
        }
    }

    /// Set the worker count.
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = Jobs::N(jobs);
        self
    }

    /// Set the cache directory.
    pub fn cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Replace the search space.
    pub fn space(mut self, space: TuningSpace) -> Self {
        self.space = space;
        self
    }

    /// Restrict the stencil list.
    pub fn shapes(mut self, shapes: Vec<StencilShape>) -> Self {
        self.shapes = shapes;
        self
    }

    /// Restrict the target list.
    pub fn targets(mut self, targets: Vec<TuneTarget>) -> Self {
        self.targets = targets;
        self
    }

    /// Enable/disable pruning.
    pub fn prune(mut self, prune: bool) -> Self {
        self.prune = prune;
        self
    }

    /// Set the ranked-table truncation.
    pub fn top_k(mut self, k: usize) -> Self {
        self.top_k = k.max(1);
        self
    }
}

/// Errors from the tuner.
#[derive(Debug, Clone, PartialEq)]
pub enum TuneError {
    /// The programming model is not supported on the GPU.
    Unsupported(GpuKind, ProgModel),
    /// Domain/baseline incompatible with a target (the paper-default
    /// anchor itself fails validity).
    BadDomain(String),
    /// A group's entire candidate space failed validity.
    NoFeasiblePoint {
        /// Stencil label.
        stencil: String,
        /// GPU.
        gpu: GpuKind,
        /// Programming model.
        model: ProgModel,
    },
    /// The search space has an empty axis.
    EmptySpace,
    /// Cache directory could not be opened.
    Cache(String),
}

impl fmt::Display for TuneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TuneError::Unsupported(g, m) => write!(f, "{m} unsupported on {g}"),
            TuneError::BadDomain(e) => write!(f, "bad domain: {e}"),
            TuneError::NoFeasiblePoint {
                stencil,
                gpu,
                model,
            } => write!(f, "no feasible tuning point for {stencil} on {gpu}/{model}"),
            TuneError::EmptySpace => f.write_str("empty tuning space"),
            TuneError::Cache(e) => write!(f, "cache: {e}"),
        }
    }
}

impl std::error::Error for TuneError {}

/// Serialized run configuration hashed into the manifest.
#[derive(Serialize)]
struct TuneConfig {
    n: usize,
    fidelity: String,
    prune: bool,
    targets: Vec<(GpuKind, ProgModel)>,
    space: TuningSpace,
}

/// Kernel-program identity: everything the generated IR depends on.
/// Candidates differing only in ordering or interleave chunk share one
/// generated (and one lint-verified) program.
type KernelKey = (String, usize, usize, usize, brick_codegen::Strategy, u32);

fn kernel_key(label: &str, p: &SpecParams) -> KernelKey {
    (
        label.to_string(),
        p.width(),
        p.block_yz.0,
        p.block_yz.1,
        p.strategy,
        p.temporal_degree,
    )
}

/// Generate and statically verify the program for one kernel key.
/// Panics with the rendered lint report if the analyzer rejects the
/// kernel — the tuner must never rank a program the oracle would reject.
fn build_verified_spec(shape: &StencilShape, p: &SpecParams) -> KernelSpec {
    let st = shape.stencil();
    let b = st.default_bindings();
    let kernel = generate(&st, &b, LayoutKind::Brick, p.width(), p.codegen_options())
        .expect("validity predicate admits only generatable candidates");
    let opts = brick_lint::LintOptions {
        expected: Some(
            brick_lint::ExpectedStencil::resolve_temporal(&st, &b, p.temporal_degree)
                .expect("paper bindings resolve"),
        ),
        // no register budgets here: the validity predicate already
        // enforced the per-target floor, and the compiler model prices
        // residual pressure (spills, occupancy) honestly in simulation
        budgets: vec![],
    };
    let analysis = brick_lint::analyze(&kernel, &opts);
    assert!(
        analysis.is_clean(),
        "tuner candidate failed static verification ({p}):\n{}",
        analysis.report.render(Some(&kernel))
    );
    KernelSpec::Vector(kernel)
}

/// Run the full tuning matrix. Deterministic: the serialized `groups`
/// are byte-identical at any jobs count and across warm/cold caches.
pub fn tune_matrix(opts: &TuneOptions) -> Result<TuneReport, TuneError> {
    if opts.space.is_empty() {
        return Err(TuneError::EmptySpace);
    }
    for t in &opts.targets {
        if !t.model.supports(t.arch.kind) {
            return Err(TuneError::Unsupported(t.arch.kind, t.model));
        }
    }
    let start = std::time::Instant::now();
    let config = TuneConfig {
        n: opts.n,
        fidelity: opts.fidelity.to_string(),
        prune: opts.prune,
        targets: opts
            .targets
            .iter()
            .map(|t| (t.arch.kind, t.model))
            .collect(),
        space: opts.space.clone(),
    };
    let manifest =
        brick_obs::RunManifest::begin(&serde_json::to_string(&config).expect("config serializes"));
    let _span = brick_obs::span_cat(format!("tune:{}^3", opts.n), "sweep");
    let cache = match &opts.cache_dir {
        Some(dir) => Some(DiskCache::open(dir).map_err(|e| TuneError::Cache(e.to_string()))?),
        None => None,
    };
    let cache_counters = || {
        (
            brick_obs::counter_value("sweep.cache.hits"),
            brick_obs::counter_value("sweep.cache.misses"),
            brick_obs::counter_value("sweep.cache.corrupt"),
        )
    };
    let cache_before = cache_counters();

    // Empirical rooflines per target (reported in records; pruning uses
    // the theoretical ceilings, which dominate these).
    let rooflines: Vec<Roofline> = opts
        .targets
        .iter()
        .map(|t| {
            let measure =
                || roofline::measure(&t.arch, t.model).expect("supported targets have rooflines");
            match &cache {
                Some(c) => c.get_or_compute(&tune_roofline_key(&t.arch, t.model), measure),
                None => measure(),
            }
        })
        .collect();

    // Plan groups: enumerate + validate, in canonical order.
    struct GroupPlan {
        shape: StencilShape,
        shape_fp: u64,
        label: String,
        target: usize,
        baseline: SpecParams,
        valid: Vec<SpecParams>,
        skip_reasons: BTreeMap<&'static str, u64>,
        skipped: u64,
        raw: u64,
    }
    let candidates = opts.space.enumerate();
    let mut plans: Vec<GroupPlan> = Vec::new();
    for shape in &opts.shapes {
        for (ti, target) in opts.targets.iter().enumerate() {
            let baseline = SpecParams::paper_default(target.arch.simd_width);
            if let Err(reason) = validate(&baseline, shape, &target.arch, opts.n) {
                return Err(TuneError::BadDomain(format!(
                    "paper baseline invalid for {} on {}/{}: {reason}",
                    shape.label(),
                    target.arch.kind,
                    target.model
                )));
            }
            let mut valid = Vec::new();
            let mut skip_reasons: BTreeMap<&'static str, u64> = BTreeMap::new();
            for p in &candidates {
                match validate(p, shape, &target.arch, opts.n) {
                    Ok(()) => {
                        if *p != baseline {
                            valid.push(*p);
                        }
                    }
                    Err(reason) => {
                        *skip_reasons.entry(reason.kind()).or_insert(0) += 1;
                        brick_obs::counter_add("tune.skipped", 1);
                        brick_obs::counter_add(&format!("tune.skipped.{}", reason.kind()), 1);
                    }
                }
            }
            let skipped: u64 = skip_reasons.values().sum();
            if valid.is_empty() && !candidates.contains(&baseline) {
                return Err(TuneError::NoFeasiblePoint {
                    stencil: shape.label(),
                    gpu: target.arch.kind,
                    model: target.model,
                });
            }
            plans.push(GroupPlan {
                shape: *shape,
                shape_fp: shape_fingerprint(shape),
                label: shape.label(),
                target: ti,
                baseline,
                valid,
                skip_reasons,
                skipped,
                raw: candidates.len() as u64,
            });
        }
    }
    let valid_total: u64 = plans.iter().map(|p| p.valid.len() as u64 + 1).sum();
    brick_obs::info!(
        "tune: {} groups, {} valid cells (of {} raw) at n={} (planned in {:.2}s)",
        plans.len(),
        valid_total,
        plans.len() as u64 * candidates.len() as u64,
        opts.n,
        start.elapsed().as_secs_f64()
    );

    // Phase 1 — one lazy slot per distinct program. Generation and lint
    // verification run at most once per program, on demand from the
    // measurement fan-out: a cache-warm rerun never compiles anything,
    // which is what keeps warm wall time a small fraction of cold.
    let specs: HashMap<KernelKey, OnceLock<KernelSpec>> = {
        let mut slots = HashMap::new();
        for plan in &plans {
            for p in std::iter::once(&plan.baseline).chain(plan.valid.iter()) {
                slots.entry(kernel_key(&plan.label, p)).or_default();
            }
        }
        slots
    };
    let spec_of = |plan: &GroupPlan, p: &SpecParams| -> &KernelSpec {
        specs[&kernel_key(&plan.label, p)].get_or_init(|| {
            let _phase = brick_obs::span_cat("lint-verify", "phase");
            build_verified_spec(&plan.shape, p)
        })
    };

    // Shared evaluation machinery: geometry and memory-counter memos.
    // The memory counters depend on the traced geometry (which carries
    // the brick ordering), not just the generated program — so MemKey
    // embeds the full GeomKey: two candidates differing only in
    // ordering must never share a counter slot.
    type GeomKey = (usize, usize, usize, brick_core::BrickOrdering, usize);
    type MemKey = (u64, GpuKind, u32, usize, GeomKey);
    let geom_memo: Mutex<HashMap<GeomKey, Arc<OnceLock<TraceGeometry>>>> =
        Mutex::new(HashMap::new());
    let mem_memo: Mutex<HashMap<MemKey, Arc<OnceLock<MemCounters>>>> = Mutex::new(HashMap::new());
    fn memo_slot<K: std::hash::Hash + Eq, V>(
        map: &Mutex<HashMap<K, Arc<OnceLock<V>>>>,
        key: K,
    ) -> Arc<OnceLock<V>> {
        Arc::clone(
            map.lock()
                .expect("memo lock poisoned")
                .entry(key)
                .or_default(),
        )
    }

    // Evaluate one cell end to end: cache lookup (measured record or
    // pruned marker), then — only on a miss — the Roofline prune tiers
    // (when `prune_ref` carries the group's baseline GFLOP/s) and the
    // full compile + simulate pipeline. `None` means pruned. A warm
    // rerun resolves every cell in the first step, before any kernel is
    // generated.
    let eval_cell =
        |plan: &GroupPlan, p: &SpecParams, prune_ref: Option<f64>| -> (Option<TunedRecord>, f64) {
            let t0 = std::time::Instant::now();
            let target = &opts.targets[plan.target];
            let arch = &target.arch;
            let rl = &rooflines[plan.target];
            let _rec_span = brick_obs::span_cat(
                format!("{}/{}/{}/{p}", plan.label, arch.kind, target.model),
                "record",
            );
            let analysis = StencilAnalysis::of_shape(&plan.shape);
            let t = p.temporal_degree;
            let flops_per_point = analysis.flops_per_point * t as u64;
            let theoretical_ai = analysis.theoretical_ai * t as f64;
            let key = cache.as_ref().map(|_| {
                tune_cell_key(
                    plan.shape_fp,
                    p,
                    arch,
                    target.model,
                    opts.n,
                    flops_per_point,
                    theoretical_ai,
                    rl,
                    opts.fidelity,
                    opts.prune,
                )
            });
            if let (Some(c), Some(key)) = (cache.as_ref(), key.as_ref()) {
                let _phase = brick_obs::span_cat("cache-io", "phase");
                match c.get::<CachedCell>(key) {
                    CacheOutcome::Hit(CachedCell {
                        record: Some(record),
                    }) => return (Some(record), t0.elapsed().as_secs_f64()),
                    // a marker only settles cells this run may prune; the
                    // baseline owes a measurement regardless
                    CacheOutcome::Hit(CachedCell { record: None }) if prune_ref.is_some() => {
                        brick_obs::counter_add("tune.pruned", 1);
                        return (None, t0.elapsed().as_secs_f64());
                    }
                    _ => {}
                }
            }
            if let Some(reference) = prune_ref {
                // two tiers: the structural bound costs nothing; when it is
                // inconclusive, a cheap compile pass yields the real
                // occupancy, tightening the bound without a memory trace
                let mut bound = roofline_upper_bound(p, &plan.shape, arch);
                if bound * PRUNE_MARGIN >= reference {
                    if let Some((_, _, occ)) = compile_only(spec_of(plan, p), arch, target.model) {
                        bound = occupancy_upper_bound(p, &plan.shape, arch, occ.occupancy);
                    }
                }
                if bound * PRUNE_MARGIN < reference {
                    brick_obs::counter_add("tune.pruned", 1);
                    if let (Some(c), Some(key)) = (cache.as_ref(), key.as_ref()) {
                        let _phase = brick_obs::span_cat("cache-io", "phase");
                        if let Err(e) = c.put(key, &CachedCell { record: None }) {
                            brick_obs::warn!("could not cache {}: {e}", key.file_name());
                        }
                    }
                    return (None, t0.elapsed().as_secs_f64());
                }
            }
            let spec = spec_of(plan, p);
            let (cm, compiled, occ) = compile_only(spec, arch, target.model)
                .expect("targets were support-checked up front");
            let kernel_fp = match spec {
                KernelSpec::Vector(k) => brick_lint::fingerprint(k),
                KernelSpec::Scalar(_) => unreachable!("tuner specs are vector kernels"),
            };
            let reach = t as usize * plan.shape.radius as usize;
            let gkey: GeomKey = (p.width(), p.block_yz.0, p.block_yz.1, p.ordering, reach);
            let geom_slot = memo_slot(&geom_memo, gkey);
            let mem_slot = memo_slot(
                &mem_memo,
                (
                    kernel_fp,
                    arch.kind,
                    occ.blocks_per_sm,
                    p.interleave_chunk,
                    gkey,
                ),
            );
            let (geom, mem) = {
                let _phase = brick_obs::span_cat("simulate", "phase");
                let geom = geom_slot.get_or_init(|| {
                    let decomp = Arc::new(BrickDecomp::new(
                        (opts.n, opts.n, opts.n),
                        p.brick_dims(),
                        reach,
                        p.ordering,
                    ));
                    TraceGeometry::brick(Arc::new(BrickNav::new(decomp)))
                });
                let mem = *mem_slot.get_or_init(|| {
                    let sim_opts = SimOptions {
                        fidelity: opts.fidelity,
                        interleave_chunk: p.interleave_chunk,
                    };
                    simulate_memory_opts(spec, geom, arch, occ.blocks_per_sm, &sim_opts).counters()
                });
                (geom, mem)
            };
            let sim = {
                let _phase = brick_obs::span_cat("score", "phase");
                assemble(spec, geom, arch, &cm, &compiled, mem, flops_per_point)
            };
            let record = TunedRecord {
                params: *p,
                fingerprint: p.fingerprint(),
                kernel_fingerprint: kernel_fp,
                gflops: sim.gflops,
                ai: sim.ai,
                time_s: sim.time_s,
                dram_bytes: sim.mem.dram_bytes,
                occupancy: sim.occupancy.occupancy,
                regs_per_thread: sim.regs_per_thread,
                spilled: sim.spilled,
                limiter: sim.breakdown.limiter().to_string(),
                roofline_frac: rl.fraction(sim.gflops, sim.ai),
            };
            brick_obs::counter_add("tune.cells.evaluated", 1);
            if let (Some(c), Some(key)) = (cache.as_ref(), key.as_ref()) {
                let _phase = brick_obs::span_cat("cache-io", "phase");
                let cell = CachedCell {
                    record: Some(record.clone()),
                };
                if let Err(e) = c.put(key, &cell) {
                    brick_obs::warn!("could not cache {}: {e}", key.file_name());
                }
            }
            (Some(record), t0.elapsed().as_secs_f64())
        };

    // Phase 2 — measure every group's paper baseline (never pruned:
    // it is both the comparison anchor and the pruning reference).
    let t_base = std::time::Instant::now();
    let plan_refs: Vec<usize> = (0..plans.len()).collect();
    let baselines: Vec<(TunedRecord, f64)> =
        map_cells("tune.baselines", &plan_refs, opts.jobs, |_, &gi| {
            let (record, wall) = eval_cell(&plans[gi], &plans[gi].baseline, None);
            (record.expect("the baseline is never pruned"), wall)
        });
    brick_obs::info!("tune: baselines in {:.2}s", t_base.elapsed().as_secs_f64());

    // Phase 3 — prune + measure candidates, all groups in one fan-out.
    let flat: Vec<(usize, SpecParams)> = plans
        .iter()
        .enumerate()
        .flat_map(|(gi, plan)| plan.valid.iter().map(move |p| (gi, *p)))
        .collect();
    enum Outcome {
        Measured(TunedRecord, f64),
        Pruned,
    }
    let t_cells = std::time::Instant::now();
    let outcomes = map_cells("tune.cells", &flat, opts.jobs, |_, &(gi, p)| {
        let plan = &plans[gi];
        let prune_ref = opts.prune.then(|| baselines[gi].0.gflops);
        match eval_cell(plan, &p, prune_ref) {
            (Some(record), wall) => Outcome::Measured(record, wall),
            (None, _) => Outcome::Pruned,
        }
    });
    brick_obs::info!(
        "tune: {} cells in {:.2}s",
        flat.len(),
        t_cells.elapsed().as_secs_f64()
    );

    // Reduce: rank per group.
    let mut per_group: Vec<Vec<TunedRecord>> = plans.iter().map(|_| Vec::new()).collect();
    let mut pruned_per_group: Vec<u64> = vec![0; plans.len()];
    let mut record_wall_s: Vec<f64> = baselines.iter().map(|(_, w)| *w).collect();
    for (&(gi, _), outcome) in flat.iter().zip(outcomes) {
        match outcome {
            Outcome::Measured(record, wall) => {
                per_group[gi].push(record);
                record_wall_s.push(wall);
            }
            Outcome::Pruned => pruned_per_group[gi] += 1,
        }
    }

    let mut groups = Vec::with_capacity(plans.len());
    for (gi, plan) in plans.iter().enumerate() {
        let (baseline, _) = &baselines[gi];
        let mut ranked = std::mem::take(&mut per_group[gi]);
        ranked.push(baseline.clone());
        let evaluated = ranked.len() as u64;
        ranked.sort_by(|a, b| {
            b.gflops
                .total_cmp(&a.gflops)
                .then_with(|| a.fingerprint.cmp(&b.fingerprint))
        });
        ranked.truncate(opts.top_k);
        let target = &opts.targets[plan.target];
        groups.push(TuneGroup {
            stencil: plan.label.clone(),
            shape: plan.shape,
            gpu: target.arch.kind,
            model: target.model,
            baseline: baseline.clone(),
            ranked,
            evaluated,
            pruned: pruned_per_group[gi],
            skipped: plan.skipped,
            skip_reasons: plan
                .skip_reasons
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
            raw_candidates: plan.raw,
        });
    }

    let cache_after = cache_counters();
    let manifest = manifest
        .finish(start.elapsed().as_secs_f64(), record_wall_s)
        .with_sweep_info(
            &opts.fidelity.to_string(),
            opts.jobs.count() as u64,
            (
                cache_after.0 - cache_before.0,
                cache_after.1 - cache_before.1,
                cache_after.2 - cache_before.2,
            ),
        )
        .with_tune_info(
            opts.space.fingerprint(),
            groups.iter().map(|g| g.raw_candidates).sum(),
            groups.iter().map(|g| g.evaluated).sum(),
            groups.iter().map(|g| g.pruned).sum(),
            groups.iter().map(|g| g.skipped).sum(),
        );
    Ok(TuneReport {
        n: opts.n,
        space_fingerprint: opts.space.fingerprint(),
        groups,
        manifest,
    })
}

/// Tune one `(stencil, GPU, model)` group — the single-target convenience
/// wrapper around [`tune_matrix`] (full ranking, no pruning, no cache).
pub fn autotune(
    shape: &StencilShape,
    arch: &GpuArch,
    model: ProgModel,
    n: usize,
    space: &TuningSpace,
) -> Result<TuneGroup, TuneError> {
    let opts = TuneOptions {
        n,
        shapes: vec![*shape],
        targets: vec![TuneTarget {
            arch: arch.clone(),
            model,
        }],
        space: space.clone(),
        jobs: Jobs::Auto,
        cache_dir: None,
        fidelity: SimFidelity::default(),
        prune: false,
        top_k: usize::MAX,
    };
    let mut report = tune_matrix(&opts)?;
    Ok(report.groups.remove(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use brick_codegen::Strategy;
    use brick_core::BrickOrdering;

    fn small_space() -> TuningSpace {
        TuningSpace {
            vector_widths: vec![16, 32, 64],
            fold_factors: vec![1],
            block_yz: vec![(4, 4), (8, 8)],
            orderings: vec![BrickOrdering::Lexicographic],
            strategies: vec![Strategy::Gather, Strategy::Scatter],
            interleave_chunks: vec![1024],
            temporal_degrees: vec![1],
        }
    }

    #[test]
    fn tuner_ranks_candidates() {
        let g = autotune(
            &StencilShape::star(1),
            &GpuArch::a100(),
            ProgModel::Cuda,
            64,
            &small_space(),
        )
        .unwrap();
        // 4 valid cells at width 32 (2 blocks × 2 strategies); the
        // baseline is one of them (4×4 gather at the default chunk)
        assert_eq!(g.evaluated, 4);
        assert_eq!(g.ranked.len(), 4);
        for w in g.ranked.windows(2) {
            assert!(w[0].gflops >= w[1].gflops, "ranking is descending");
        }
        assert!(g.spread() >= 1.0);
        assert!(g.gain_over_paper() >= 1.0);
        // the two non-matching vector widths were skipped, not silently
        // dropped: 8 candidates (2 widths × 2 blocks × 2 strategies)
        assert_eq!(g.skipped, 8);
        assert!(g
            .skip_reasons
            .iter()
            .any(|(k, c)| k == "lane_width" && *c == 8));
        assert_eq!(g.raw_candidates, 12);
    }

    #[test]
    fn unsupported_model_rejected() {
        assert_eq!(
            autotune(
                &StencilShape::star(1),
                &GpuArch::pvc_stack(),
                ProgModel::Cuda,
                64,
                &small_space(),
            )
            .unwrap_err(),
            TuneError::Unsupported(GpuKind::PvcStack, ProgModel::Cuda)
        );
    }

    #[test]
    fn bad_domain_rejected() {
        assert!(matches!(
            autotune(
                &StencilShape::star(1),
                &GpuArch::a100(),
                ProgModel::Cuda,
                100,
                &small_space(),
            ),
            Err(TuneError::BadDomain(_))
        ));
    }

    #[test]
    fn empty_space_is_an_error() {
        let mut space = small_space();
        space.strategies.clear();
        assert_eq!(
            autotune(
                &StencilShape::star(1),
                &GpuArch::a100(),
                ProgModel::Cuda,
                64,
                &space,
            )
            .unwrap_err(),
            TuneError::EmptySpace
        );
    }

    #[test]
    fn infeasible_candidates_are_counted_not_fatal() {
        // radius 4 does not fit (4,4) at T=1? reach 4 ≤ 4 — fits; use
        // (2,2) to force reach rejections
        let space = TuningSpace {
            block_yz: vec![(2, 2), (8, 8)],
            ..small_space()
        };
        let g = autotune(
            &StencilShape::star(4),
            &GpuArch::a100(),
            ProgModel::Cuda,
            64,
            &space,
        )
        .unwrap();
        assert!(g.skip_reasons.iter().any(|(k, _)| k == "reach"));
        assert!(g.evaluated >= 2, "the (8,8) cells measured");
    }

    #[test]
    fn upper_bound_dominates_measured_gflops() {
        // soundness of the pruning bound on every paper target
        let space = small_space();
        for (gpu, model) in ProgModel::paper_matrix() {
            let arch = GpuArch::by_kind(gpu);
            for shape in [StencilShape::star(1), StencilShape::cube(2)] {
                let g = autotune(&shape, arch, model, 64, &space).unwrap();
                for r in &g.ranked {
                    let structural = roofline_upper_bound(&r.params, &shape, arch);
                    let refined = occupancy_upper_bound(&r.params, &shape, arch, r.occupancy);
                    let bound = structural.min(refined);
                    assert!(
                        r.gflops <= bound * PRUNE_MARGIN,
                        "{gpu}/{model} {shape}: measured {:.1} exceeds bound {:.1}",
                        r.gflops,
                        bound
                    );
                }
            }
        }
    }

    #[test]
    fn pruning_never_changes_the_winner() {
        let shapes = vec![StencilShape::star(1)];
        let targets = vec![TuneTarget {
            arch: GpuArch::a100(),
            model: ProgModel::Cuda,
        }];
        let space = TuningSpace {
            temporal_degrees: vec![1, 2, 4],
            ..small_space()
        };
        let run = |prune: bool| {
            let opts = TuneOptions::new(64)
                .shapes(shapes.clone())
                .targets(targets.clone())
                .space(space.clone())
                .jobs(2)
                .prune(prune);
            tune_matrix(&opts).unwrap()
        };
        let full = run(false);
        let pruned = run(true);
        let (f, p) = (&full.groups[0], &pruned.groups[0]);
        assert_eq!(f.best().fingerprint, p.best().fingerprint);
        assert!((f.best().gflops - p.best().gflops).abs() < 1e-12);
        assert_eq!(f.evaluated, p.evaluated + p.pruned);
    }

    #[test]
    fn pruning_fires_on_occupancy_starved_targets() {
        // a register file that keeps the lean T=1 baseline at saturating
        // occupancy but holds only one spilled T=4 block: the fused
        // candidate's occupancy-refined bound lands far below the
        // measured baseline and the cell is dropped without a trace
        let mut arch = GpuArch::a100();
        arch.regfile_per_sm = 8_192;
        arch.bw_saturation_occupancy = 0.11;
        let space = TuningSpace {
            vector_widths: vec![32],
            block_yz: vec![(4, 4)],
            strategies: vec![Strategy::Gather],
            temporal_degrees: vec![1, 4],
            ..small_space()
        };
        let opts = TuneOptions::new(64)
            .shapes(vec![StencilShape::star(1)])
            .targets(vec![TuneTarget {
                arch,
                model: ProgModel::Cuda,
            }])
            .space(space)
            .jobs(1);
        let report = tune_matrix(&opts).unwrap();
        let g = &report.groups[0];
        assert!(g.pruned > 0, "expected T=4 cells pruned: {g:?}");
        assert_eq!(report.manifest.tune_pruned_cells, g.pruned);
        assert!(g.gain_over_paper() >= 1.0);
    }

    #[test]
    fn report_provenance_counts_cells() {
        let opts = TuneOptions::new(64)
            .shapes(vec![StencilShape::star(1), StencilShape::star(2)])
            .targets(vec![TuneTarget {
                arch: GpuArch::a100(),
                model: ProgModel::Cuda,
            }])
            .space(small_space())
            .jobs(2)
            .top_k(3);
        let report = tune_matrix(&opts).unwrap();
        assert_eq!(report.groups.len(), 2);
        for g in &report.groups {
            assert!(g.ranked.len() <= 3);
            assert!(g.evaluated + g.pruned + g.skipped >= g.raw_candidates);
        }
        assert_eq!(report.manifest.tune_valid_cells, report.total_evaluated());
        assert_eq!(
            report.manifest.tune_space_fingerprint,
            report.space_fingerprint
        );
        assert!(report
            .group(GpuKind::A100, ProgModel::Cuda, "7pt")
            .is_some());
        assert!(report.group(GpuKind::A100, ProgModel::Hip, "7pt").is_none());
    }
}
