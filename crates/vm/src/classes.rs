//! Block-class trace memoization.
//!
//! A kernel's address stream over one launch block is determined entirely
//! by the block's *boundary signature* — how its neighbourhood is laid out
//! in memory relative to the block itself. Two blocks with the same
//! signature issue byte-for-byte identical streams up to a single constant
//! address shift, so the stream only has to be generated (and decoded from
//! the vector IR) once per class:
//!
//! * **Array layout**: [`crate::ArrayAddr::addr`] is affine in the logical
//!   coordinates, so every tile's trace is a pure translation of every
//!   other tile's — one class covers the whole launch.
//! * **Brick layout**: a load that leaves the home brick resolves through
//!   the 27-entry adjacency row, so the signature is the vector of
//!   *neighbour-id deltas* relative to the home brick. Under
//!   [`brick_core::BrickOrdering::Lexicographic`] every interior brick has
//!   the same deltas (one class); under `Morton` the deltas vary and the
//!   launch splits into more classes — fewer memoization wins, but replay
//!   stays exact because identical deltas still imply identical relative
//!   streams. With identical deltas, every event address of block *i*
//!   differs from the representative's by `(home_i − home_rep) × brick
//!   bytes`, for loads and stores alike (both allocations index by brick
//!   id), which is exactly the per-block rebase [`BlockClasses::block`]
//!   hands out.
//!
//! [`BlockClasses::compile`] partitions a launch into classes, records the
//! representative stream of each through the ordinary
//! [`crate::KernelSpec::trace_block`] oracle path (so compiled streams can
//! never drift from it), and exposes per-block `(events, delta)` pairs for
//! replay. Event order is preserved exactly as issued — cache hit/miss
//! state depends on order, and the GPU simulator's fast path must be
//! bit-identical to the exact path.

use std::collections::HashMap;

use brick_codegen::LayoutKind;
use brick_core::NO_BRICK;

use crate::exec::VmError;
use crate::geom::TraceGeometry;
use crate::trace::TraceSink;
use crate::KernelSpec;

/// One transaction of a compiled stream: the absolute address it has in
/// the *representative* block's trace, plus size and direction. Replaying
/// for another block of the class adds that block's rebase delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamEvent {
    /// Absolute byte address in the representative block's trace.
    pub addr: u64,
    /// Transaction size in bytes.
    pub bytes: u32,
    /// True for stores, false for loads.
    pub is_store: bool,
}

/// The compiled, compact stream of one block class, in issue order.
#[derive(Debug, Clone, Default)]
pub struct CompiledTrace {
    /// Events of the representative block, in the exact order the kernel
    /// issues them.
    pub events: Vec<StreamEvent>,
    /// Launch index of the block the stream was recorded from.
    pub representative: usize,
}

impl TraceSink for CompiledTrace {
    fn load(&mut self, addr: u64, bytes: u32) {
        self.events.push(StreamEvent {
            addr,
            bytes,
            is_store: false,
        });
    }

    fn store(&mut self, addr: u64, bytes: u32) {
        self.events.push(StreamEvent {
            addr,
            bytes,
            is_store: true,
        });
    }
}

/// Class membership of one launch block: which compiled stream to replay
/// and the address shift to apply to every event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BlockReplay {
    class: u32,
    delta: i64,
}

/// A launch partitioned into block classes with one compiled stream per
/// class — the memoized form of `for i in 0..num_blocks { trace_block(i) }`.
#[derive(Debug, Clone)]
pub struct BlockClasses {
    classes: Vec<CompiledTrace>,
    blocks: Vec<BlockReplay>,
}

/// Boundary signature + rebase base address of one block.
fn block_signature(geom: &TraceGeometry, i: usize) -> (Vec<i64>, i64) {
    match geom.layout() {
        LayoutKind::Brick => {
            let nav = geom.nav();
            let home = geom.home_brick(i);
            let brick_bytes = nav.dims().volume() as i64 * 8;
            // The adjacency row pins every address the block can touch;
            // unreached NO_BRICK entries get a position-unique sentinel so
            // blocks missing different neighbours never share a class.
            let sig = nav
                .info()
                .row(home)
                .iter()
                .enumerate()
                .map(|(j, &n)| {
                    if n == NO_BRICK {
                        i64::MIN + j as i64
                    } else {
                        n as i64 - home as i64
                    }
                })
                .collect();
            (sig, home as i64 * brick_bytes)
        }
        LayoutKind::Array => {
            // Affine addressing: all tiles are one class; the tile origin's
            // address is the rebase base.
            let [ox, oy, oz] = geom.tile_origin(i);
            (Vec::new(), geom.array_addr().addr(ox, oy, oz) as i64)
        }
    }
}

impl BlockClasses {
    /// Partition the launch of `spec` over `geom` into block classes and
    /// compile one stream per class through the exact
    /// [`KernelSpec::trace_block`] path.
    ///
    /// Fails exactly where `trace_block` would (kernel/geometry mismatch).
    pub fn compile(spec: &KernelSpec, geom: &TraceGeometry) -> Result<BlockClasses, VmError> {
        let num_blocks = geom.num_blocks();
        let mut by_sig: HashMap<Vec<i64>, u32> = HashMap::new();
        let mut classes: Vec<CompiledTrace> = Vec::new();
        let mut class_bases: Vec<i64> = Vec::new();
        let mut blocks = Vec::with_capacity(num_blocks);
        for i in 0..num_blocks {
            let (sig, base) = block_signature(geom, i);
            let class = match by_sig.get(&sig) {
                Some(&c) => c,
                None => {
                    let c = classes.len() as u32;
                    let mut trace = CompiledTrace {
                        events: Vec::new(),
                        representative: i,
                    };
                    spec.trace_block(geom, i, &mut trace)?;
                    classes.push(trace);
                    class_bases.push(base);
                    by_sig.insert(sig, c);
                    c
                }
            };
            blocks.push(BlockReplay {
                class,
                delta: base - class_bases[class as usize],
            });
        }
        Ok(BlockClasses { classes, blocks })
    }

    /// Number of launch blocks covered.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Number of distinct block classes (1 for array layouts and
    /// lexicographic brick orderings).
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Class index of launch block `i`.
    pub fn class_of(&self, i: usize) -> usize {
        self.blocks[i].class as usize
    }

    /// The compiled stream of class `c`.
    pub fn class(&self, c: usize) -> &CompiledTrace {
        &self.classes[c]
    }

    /// Replay data for launch block `i`: the class events plus the rebase
    /// delta to add (wrapping) to every event address.
    #[inline]
    pub fn block(&self, i: usize) -> (&[StreamEvent], i64) {
        let r = self.blocks[i];
        (&self.classes[r.class as usize].events, r.delta)
    }

    /// Replay block `i` into an ordinary [`TraceSink`] — equivalent to
    /// [`KernelSpec::trace_block`] on the same block, event for event.
    pub fn replay_block(&self, i: usize, sink: &mut impl TraceSink) {
        let (events, delta) = self.block(i);
        for e in events {
            let addr = e.addr.wrapping_add_signed(delta);
            if e.is_store {
                sink.store(addr, e.bytes);
            } else {
                sink.load(addr, e.bytes);
            }
        }
    }

    /// Total events across all blocks (what an exact trace would issue).
    pub fn total_events(&self) -> u64 {
        self.blocks
            .iter()
            .map(|b| self.classes[b.class as usize].events.len() as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::RecordingSink;
    use brick_codegen::{generate, CodegenOptions};
    use brick_core::{BrickDecomp, BrickDims, BrickNav, BrickOrdering};
    use brick_dsl::shape::StencilShape;
    use std::sync::Arc;

    fn brick_geom(n: usize, width: usize, radius: usize, ordering: BrickOrdering) -> TraceGeometry {
        let d = Arc::new(BrickDecomp::new(
            (n.max(width), n, n),
            BrickDims::for_simd_width(width),
            radius,
            ordering,
        ));
        TraceGeometry::brick(Arc::new(BrickNav::new(d)))
    }

    fn vector_spec(shape: StencilShape, layout: LayoutKind, width: usize) -> KernelSpec {
        let st = shape.stencil();
        let b = st.default_bindings();
        KernelSpec::Vector(generate(&st, &b, layout, width, CodegenOptions::default()).unwrap())
    }

    fn assert_replay_matches_oracle(spec: &KernelSpec, geom: &TraceGeometry) {
        let classes = BlockClasses::compile(spec, geom).unwrap();
        assert_eq!(classes.num_blocks(), geom.num_blocks());
        for i in 0..geom.num_blocks() {
            let mut oracle = RecordingSink::default();
            spec.trace_block(geom, i, &mut oracle).unwrap();
            let mut replay = RecordingSink::default();
            classes.replay_block(i, &mut replay);
            assert_eq!(replay.events, oracle.events, "block {i} diverged");
        }
    }

    #[test]
    fn lexicographic_bricks_collapse_to_one_class() {
        let spec = vector_spec(StencilShape::star(2), LayoutKind::Brick, 16);
        let geom = brick_geom(16, 16, 2, BrickOrdering::Lexicographic);
        let classes = BlockClasses::compile(&spec, &geom).unwrap();
        assert_eq!(classes.num_classes(), 1);
        assert_replay_matches_oracle(&spec, &geom);
    }

    #[test]
    fn array_tiles_collapse_to_one_class() {
        let spec = vector_spec(StencilShape::cube(1), LayoutKind::Array, 16);
        let geom = TraceGeometry::array((16, 16, 16), 1, BrickDims::for_simd_width(16));
        let classes = BlockClasses::compile(&spec, &geom).unwrap();
        assert_eq!(classes.num_classes(), 1);
        assert_replay_matches_oracle(&spec, &geom);
    }

    #[test]
    fn morton_ordering_splits_but_replays_exactly() {
        let spec = vector_spec(StencilShape::star(1), LayoutKind::Brick, 16);
        let geom = brick_geom(16, 16, 1, BrickOrdering::Morton);
        let classes = BlockClasses::compile(&spec, &geom).unwrap();
        assert!(classes.num_classes() >= 1);
        assert!(classes.num_classes() <= classes.num_blocks());
        assert_replay_matches_oracle(&spec, &geom);
    }

    #[test]
    fn scalar_kernels_compile_too() {
        let st = StencilShape::star(2).stencil();
        let b = st.default_bindings();
        let spec =
            KernelSpec::Scalar(crate::ScalarKernel::new(&st, &b, LayoutKind::Brick, 16).unwrap());
        let geom = brick_geom(16, 16, 2, BrickOrdering::Lexicographic);
        assert_replay_matches_oracle(&spec, &geom);
    }

    #[test]
    fn total_events_matches_oracle_totals() {
        let spec = vector_spec(StencilShape::star(1), LayoutKind::Brick, 16);
        let geom = brick_geom(16, 16, 1, BrickOrdering::Lexicographic);
        let classes = BlockClasses::compile(&spec, &geom).unwrap();
        let mut oracle = RecordingSink::default();
        for i in 0..geom.num_blocks() {
            spec.trace_block(&geom, i, &mut oracle).unwrap();
        }
        assert_eq!(classes.total_events(), oracle.events.len() as u64);
    }

    #[test]
    fn mismatched_geometry_is_rejected() {
        let spec = vector_spec(StencilShape::star(1), LayoutKind::Brick, 16);
        let geom = TraceGeometry::array((16, 16, 16), 1, BrickDims::for_simd_width(16));
        assert!(matches!(
            BlockClasses::compile(&spec, &geom),
            Err(VmError::Mismatch(_))
        ));
    }
}
