//! # brick-vm
//!
//! Executes the kernels of the BrickLib reproduction:
//!
//! * numerically, over real field data, parallelised with Rayon — used to
//!   validate every generated kernel against the scalar reference;
//! * as an address trace streamed into a [`TraceSink`] — used by the GPU
//!   simulator at full problem scale (no field data is allocated).
//!
//! [`KernelSpec`] unifies the two kernel families the paper evaluates:
//! generated vector kernels ([`brick_codegen::VectorKernel`], the
//! `* codegen` configurations) and scalar SIMT kernels ([`ScalarKernel`],
//! the plain `array` configuration).

pub mod classes;
pub mod exec;
pub mod geom;
pub mod native;
pub mod scalar;
pub mod trace;

pub use classes::{BlockClasses, CompiledTrace, StreamEvent};
pub use exec::{
    kernel_reach, run_vector_array, run_vector_array_backend, run_vector_array_mode,
    run_vector_brick, run_vector_brick_backend, run_vector_brick_mode, trace_vector_block, VmError,
};
pub use geom::{ArrayAddr, TraceGeometry, DEFAULT_IN_BASE, DEFAULT_OUT_BASE};
pub use native::{resolve, resolve_with, Backend, CpuFeatures, ExecutionMode, Plan, SafetySummary};
pub use scalar::{run_scalar_array, run_scalar_brick, trace_scalar_block, ScalarKernel};
pub use trace::{CountingSink, NullSink, RecordingSink, TraceSink};

use brick_codegen::{LayoutKind, VectorKernel};
use brick_core::{ArrayGrid, BrickDims, BrickGrid};
use brick_dsl::DenseGrid;

/// A kernel of either family, ready to execute or trace.
#[derive(Debug, Clone, PartialEq)]
pub enum KernelSpec {
    /// Generated vector kernel (`array codegen` / `bricks codegen`).
    Vector(VectorKernel),
    /// Scalar SIMT kernel (`array`, or un-generated brick kernels).
    Scalar(ScalarKernel),
}

impl KernelSpec {
    /// The kernel's name.
    pub fn name(&self) -> &str {
        match self {
            KernelSpec::Vector(k) => &k.name,
            KernelSpec::Scalar(k) => &k.name,
        }
    }

    /// The layout the kernel addresses.
    pub fn layout(&self) -> LayoutKind {
        match self {
            KernelSpec::Vector(k) => k.layout,
            KernelSpec::Scalar(k) => k.layout,
        }
    }

    /// Home-block geometry.
    pub fn block(&self) -> BrickDims {
        match self {
            KernelSpec::Vector(k) => k.block,
            KernelSpec::Scalar(k) => k.block,
        }
    }

    /// True for generated (vector) kernels.
    pub fn is_codegen(&self) -> bool {
        matches!(self, KernelSpec::Vector(_))
    }

    /// Replay the address stream of launch block `i` into `sink`.
    ///
    /// Fails with [`VmError`] when `geom` does not match the kernel's layout
    /// or block geometry, or `i` is out of range. Full static verification of
    /// vector kernels happens once per kernel (see [`brick_lint::verify`]),
    /// not per traced block.
    pub fn trace_block(
        &self,
        geom: &TraceGeometry,
        i: usize,
        sink: &mut impl TraceSink,
    ) -> Result<(), VmError> {
        match self {
            KernelSpec::Vector(k) => trace_vector_block(k, geom, i, sink),
            KernelSpec::Scalar(k) => trace_scalar_block(k, geom, i, sink),
        }
    }
}

/// Run any kernel numerically over a dense input and return the dense
/// result — the one-call validation path used by tests and examples.
///
/// Builds the layout-appropriate grids (brick decomposition or padded
/// array), executes out-of-place, and converts back.
///
/// Back-compat wrapper for [`run_numeric_dense_mode`] using the process
/// default mode (`BRICK_EXEC`, else `Auto`); all modes are bit-identical.
pub fn run_numeric_dense(spec: &KernelSpec, input: &DenseGrid) -> Result<DenseGrid, VmError> {
    run_numeric_dense_mode(spec, input, ExecutionMode::from_env())
}

/// [`run_numeric_dense`] under an explicit [`ExecutionMode`]. Scalar
/// (SIMT) kernels have no vector IR to compile and always run their own
/// reference loop, whatever the mode.
pub fn run_numeric_dense_mode(
    spec: &KernelSpec,
    input: &DenseGrid,
    mode: ExecutionMode,
) -> Result<DenseGrid, VmError> {
    match (spec, spec.layout()) {
        (KernelSpec::Vector(k), LayoutKind::Brick) => {
            let in_grid = BrickGrid::from_dense(input, k.block);
            let mut out_grid = BrickGrid::with_metadata(
                std::sync::Arc::clone(in_grid.decomp()),
                std::sync::Arc::clone(in_grid.info()),
            );
            run_vector_brick_mode(k, &in_grid, &mut out_grid, mode)?;
            Ok(out_grid.to_dense())
        }
        (KernelSpec::Vector(k), LayoutKind::Array) => {
            let in_grid = ArrayGrid::from_dense(input);
            let (nx, ny, nz) = input.extents();
            let mut out_grid = ArrayGrid::new(nx, ny, nz, input.halo());
            run_vector_array_mode(k, &in_grid, &mut out_grid, mode)?;
            Ok(out_grid.to_dense())
        }
        (KernelSpec::Scalar(k), LayoutKind::Brick) => {
            let in_grid = BrickGrid::from_dense(input, k.block);
            let mut out_grid = BrickGrid::with_metadata(
                std::sync::Arc::clone(in_grid.decomp()),
                std::sync::Arc::clone(in_grid.info()),
            );
            run_scalar_brick(k, &in_grid, &mut out_grid)?;
            Ok(out_grid.to_dense())
        }
        (KernelSpec::Scalar(k), LayoutKind::Array) => {
            let in_grid = ArrayGrid::from_dense(input);
            let (nx, ny, nz) = input.extents();
            let mut out_grid = ArrayGrid::new(nx, ny, nz, input.halo());
            run_scalar_array(k, &in_grid, &mut out_grid)?;
            Ok(out_grid.to_dense())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brick_codegen::{generate, CodegenOptions};
    use brick_dsl::reference;
    use brick_dsl::shape::StencilShape;

    #[test]
    fn kernel_spec_dispatch_all_four_paths() {
        let shape = StencilShape::star(2);
        let st = shape.stencil();
        let b = st.default_bindings();
        let mut input = DenseGrid::new(16, 8, 8, 2);
        input.fill_test_pattern();
        let mut expect = DenseGrid::new(16, 8, 8, 2);
        reference::apply(&st, &b, &input, &mut expect).unwrap();

        for layout in [LayoutKind::Brick, LayoutKind::Array] {
            let vk = KernelSpec::Vector(
                generate(&st, &b, layout, 16, CodegenOptions::default()).unwrap(),
            );
            let sk = KernelSpec::Scalar(ScalarKernel::new(&st, &b, layout, 16).unwrap());
            for spec in [vk, sk] {
                let got = run_numeric_dense(&spec, &input).unwrap();
                let diff = got.max_rel_diff(&expect);
                assert!(diff < 1e-12, "{} ({layout}): {diff}", spec.name());
                assert_eq!(spec.layout(), layout);
            }
        }
    }

    #[test]
    fn spec_metadata_accessors() {
        let st = StencilShape::star(1).stencil();
        let b = st.default_bindings();
        let vk = KernelSpec::Vector(
            generate(&st, &b, LayoutKind::Brick, 32, CodegenOptions::default()).unwrap(),
        );
        assert!(vk.is_codegen());
        assert_eq!(vk.block().bx, 32);
        let sk = KernelSpec::Scalar(ScalarKernel::new(&st, &b, LayoutKind::Array, 64).unwrap());
        assert!(!sk.is_codegen());
        assert_eq!(sk.block().bx, 64);
        assert!(sk.name().contains("array"));
    }
}
