//! Execution of generated vector kernels.
//!
//! Two modes, matching how the paper's measurements were taken:
//!
//! * **numeric** ([`run_vector_brick`], [`run_vector_array`]): interpret
//!   the IR over real field data, in parallel over blocks, to validate
//!   that generated code computes the stencil correctly;
//! * **trace** ([`trace_vector_block`]): replay only the address stream of
//!   one block into a [`TraceSink`] — no field data, no floating point —
//!   which is what the GPU simulator consumes at full problem scale.

use brick_codegen::{LayoutKind, VOp, VectorKernel};
use brick_core::{ArrayGrid, BrickGrid, BrickNav};
use rayon::prelude::*;

use crate::geom::TraceGeometry;
use crate::trace::TraceSink;

/// Errors surfaced by the VM.
#[derive(Debug, Clone, PartialEq)]
pub enum VmError {
    /// The kernel failed static analysis; the report carries the full
    /// structured diagnostics (op-index spans, `BLxxx` codes).
    InvalidKernel(Box<brick_lint::Report>),
    /// Kernel and grid disagree (layout, block shape, extents, halo).
    Mismatch(String),
}

impl VmError {
    /// The analyzer report, when the error is a rejected kernel.
    pub fn report(&self) -> Option<&brick_lint::Report> {
        match self {
            VmError::InvalidKernel(r) => Some(r),
            VmError::Mismatch(_) => None,
        }
    }
}

impl std::fmt::Display for VmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VmError::InvalidKernel(e) => write!(f, "invalid kernel: {e}"),
            VmError::Mismatch(e) => write!(f, "kernel/grid mismatch: {e}"),
        }
    }
}

impl std::error::Error for VmError {}

/// Per-axis reach of the kernel's loads: `[x, y, z]` distances outside the
/// home block, i.e. the ghost/halo coverage the kernel requires.
///
/// Delegates to the analyzer's footprint pass ([`brick_lint::load_reach`]),
/// which derives it from load *addresses* — the shift-distance inference
/// that used to live here is subsumed because narrowed edge loads
/// materialise exactly the lanes the shuffles consume.
pub fn kernel_reach(kernel: &VectorKernel) -> [i64; 3] {
    brick_lint::load_reach(kernel)
}

/// Straight-line IR interpreter over one block.
///
/// `read_row(rx, ry, rz, dst)` must fill `dst` with the input row;
/// `write_row(ry, rz, src)` must store an output row.
fn exec_block(
    kernel: &VectorKernel,
    regs: &mut [f64],
    scratch: &mut [f64],
    mut read_row: impl FnMut(i8, i16, i16, usize, &mut [f64]),
    mut write_row: impl FnMut(i16, i16, &[f64]),
) {
    let w = kernel.width;
    debug_assert_eq!(regs.len(), kernel.num_regs * w);
    debug_assert_eq!(scratch.len(), w);
    let row = |r: u16| -> std::ops::Range<usize> {
        let s = r as usize * w;
        s..s + w
    };
    for op in &kernel.ops {
        match *op {
            VOp::LoadRow {
                dst,
                rx,
                ry,
                rz,
                lane0,
                lanes,
            } => {
                let r = row(dst);
                regs[r.clone()].fill(0.0);
                let s = r.start;
                read_row(
                    rx,
                    ry,
                    rz,
                    lane0 as usize,
                    &mut regs[s + lane0 as usize..s + lane0 as usize + lanes as usize],
                );
            }
            VOp::ShiftX { dst, src, edge, dx } => {
                // Compute into scratch first: dst may alias src or edge.
                {
                    let srcr = &regs[row(src)];
                    let edger = &regs[row(edge)];
                    for (i, s) in scratch.iter_mut().enumerate() {
                        let j = i as i64 + dx as i64;
                        *s = if j >= 0 && (j as usize) < w {
                            srcr[j as usize]
                        } else if j < 0 {
                            edger[(j + w as i64) as usize]
                        } else {
                            edger[(j - w as i64) as usize]
                        };
                    }
                }
                regs[row(dst)].copy_from_slice(scratch);
            }
            VOp::Add { dst, a, b } => {
                for i in 0..w {
                    scratch[i] = regs[a as usize * w + i] + regs[b as usize * w + i];
                }
                regs[row(dst)].copy_from_slice(scratch);
            }
            VOp::Mul { dst, a, coeff } => {
                let c = kernel.coeffs[coeff as usize];
                for i in 0..w {
                    scratch[i] = regs[a as usize * w + i] * c;
                }
                regs[row(dst)].copy_from_slice(scratch);
            }
            VOp::Fma { dst, acc, a, coeff } => {
                let c = kernel.coeffs[coeff as usize];
                for i in 0..w {
                    scratch[i] = regs[a as usize * w + i].mul_add(c, regs[acc as usize * w + i]);
                }
                regs[row(dst)].copy_from_slice(scratch);
            }
            VOp::StoreRow { src, ry, rz } => {
                write_row(ry, rz, &regs[row(src)]);
            }
        }
    }
}

fn check_brick(
    kernel: &VectorKernel,
    input: &BrickGrid,
    output: &BrickGrid,
) -> Result<(), VmError> {
    let footprint = brick_lint::verify(kernel).map_err(VmError::InvalidKernel)?;
    if kernel.layout != LayoutKind::Brick {
        return Err(VmError::Mismatch("array kernel on brick grids".into()));
    }
    if kernel.block != input.dims() {
        return Err(VmError::Mismatch(format!(
            "kernel block {} != brick dims {}",
            kernel.block,
            input.dims()
        )));
    }
    if input.decomp().extents() != output.decomp().extents()
        || input.decomp().ordering() != output.decomp().ordering()
    {
        return Err(VmError::Mismatch(
            "input/output decomposition mismatch".into(),
        ));
    }
    let reach = footprint.reach;
    let ghost = input.decomp().ghost_layers();
    let d = input.dims();
    for (axis, (&r, cover)) in reach
        .iter()
        .zip([ghost[0] * d.bx, ghost[1] * d.by, ghost[2] * d.bz])
        .enumerate()
    {
        if r > cover as i64 {
            return Err(VmError::Mismatch(format!(
                "kernel reach {r} on axis {axis} exceeds ghost coverage {cover}"
            )));
        }
    }
    Ok(())
}

/// Execute a brick-layout vector kernel out-of-place over all interior
/// bricks, in parallel (one Rayon task per brick; output bricks are
/// disjoint storage chunks, so no synchronisation is needed).
pub fn run_vector_brick(
    kernel: &VectorKernel,
    input: &BrickGrid,
    output: &mut BrickGrid,
) -> Result<(), VmError> {
    check_brick(kernel, input, output)?;
    let nav = input.nav().clone();
    let dims = input.dims();
    let vol = dims.volume();
    let w = kernel.width;
    let in_raw = input.raw();
    let decomp = std::sync::Arc::clone(input.decomp());
    output
        .raw_mut()
        .par_chunks_mut(vol)
        .enumerate()
        .for_each(|(id, out_chunk)| {
            let home = id as u32;
            if !decomp.is_interior(home) {
                return;
            }
            let mut regs = vec![0.0; kernel.num_regs * w];
            let mut scratch = vec![0.0; w];
            exec_block(
                kernel,
                &mut regs,
                &mut scratch,
                |rx, ry, rz, lane0, dst| {
                    let (b, off) =
                        nav.resolve_rel(home, rx as i64 * w as i64, ry as i64, rz as i64);
                    let s = b as usize * vol + off + lane0;
                    dst.copy_from_slice(&in_raw[s..s + dst.len()]);
                },
                |ry, rz, src| {
                    let off = dims.row_offset(ry as usize, rz as usize);
                    out_chunk[off..off + w].copy_from_slice(src);
                },
            );
        });
    Ok(())
}

/// Execute an array-layout vector kernel out-of-place over all tiles, in
/// parallel over z-slabs of tiles (whose output rows are disjoint,
/// contiguous storage ranges).
pub fn run_vector_array(
    kernel: &VectorKernel,
    input: &ArrayGrid,
    output: &mut ArrayGrid,
) -> Result<(), VmError> {
    let footprint = brick_lint::verify(kernel).map_err(VmError::InvalidKernel)?;
    if kernel.layout != LayoutKind::Array {
        return Err(VmError::Mismatch("brick kernel on array grids".into()));
    }
    let (nx, ny, nz) = input.extents();
    if output.extents() != (nx, ny, nz) {
        return Err(VmError::Mismatch("input/output extent mismatch".into()));
    }
    let block = kernel.block;
    if nx % block.bx != 0 || ny % block.by != 0 || nz % block.bz != 0 {
        return Err(VmError::Mismatch(format!(
            "extents {nx}x{ny}x{nz} not divisible by tile {block}"
        )));
    }
    let halo = input.dense().halo();
    let reach = footprint.reach;
    if reach[1] > halo as i64 || reach[2] > halo as i64 || reach[0] > halo as i64 {
        return Err(VmError::Mismatch(format!(
            "kernel reach {reach:?} exceeds array halo {halo}"
        )));
    }

    let w = kernel.width;
    let dense_in = input.dense();
    let (hx, hy) = (halo as i64, halo as i64);
    let sx = nx + 2 * halo;
    let sy = ny + 2 * halo;
    let plane = sx * sy;
    let tiles_x = nx / block.bx;
    let tiles_y = ny / block.by;

    // Interior z planes as disjoint slabs of `bz` planes each.
    if output.dense().halo() != halo {
        return Err(VmError::Mismatch(format!(
            "output halo {} != input halo {halo}",
            output.dense().halo()
        )));
    }
    let raw_out = output.dense_mut().raw_mut();
    let body = &mut raw_out[halo * plane..(halo + nz) * plane];
    body.par_chunks_mut(block.bz * plane)
        .enumerate()
        .for_each(|(tz, slab)| {
            let oz = (tz * block.bz) as i64;
            let mut regs = vec![0.0; kernel.num_regs * w];
            let mut scratch = vec![0.0; w];
            for ty in 0..tiles_y {
                for tx in 0..tiles_x {
                    let ox = (tx * block.bx) as i64;
                    let oy = (ty * block.by) as i64;
                    exec_block(
                        kernel,
                        &mut regs,
                        &mut scratch,
                        |rx, ry, rz, lane0, dst| {
                            let y = oy + ry as i64;
                            let z = oz + rz as i64;
                            let x0 = ox + rx as i64 * w as i64 + lane0 as i64;
                            // Narrowed edge loads stay within the halo as
                            // long as the kernel's reach does; guard the
                            // degenerate boundary lanes anyway.
                            for (i, d) in dst.iter_mut().enumerate() {
                                let x = x0 + i as i64;
                                *d = if x >= -hx && x < nx as i64 + hx {
                                    dense_in.get(x, y, z)
                                } else {
                                    0.0
                                };
                            }
                        },
                        |ry, rz, src| {
                            // Index within the slab: z-local plane, full row.
                            let zloc = rz as usize;
                            let row = ((zloc * sy) as i64 + (oy + ry as i64 + hy)) as usize;
                            let start = row * sx + (ox + hx) as usize;
                            slab[start..start + w].copy_from_slice(src);
                        },
                    );
                }
            }
        });
    Ok(())
}

/// Cheap per-trace compatibility check between a kernel and a geometry.
///
/// Full static verification ([`brick_lint::verify`]) runs once per kernel
/// at the execution/sweep level; the per-block trace path only re-checks
/// the O(1) geometry invariants that make address resolution meaningful.
pub(crate) fn check_trace_compat(
    layout: LayoutKind,
    block: brick_core::BrickDims,
    geom: &TraceGeometry,
    i: usize,
) -> Result<(), VmError> {
    if layout != geom.layout() {
        return Err(VmError::Mismatch(format!(
            "{layout} kernel traced over {} geometry",
            geom.layout()
        )));
    }
    if block != geom.block() {
        return Err(VmError::Mismatch(format!(
            "kernel block {block} != geometry block {}",
            geom.block()
        )));
    }
    if i >= geom.num_blocks() {
        return Err(VmError::Mismatch(format!(
            "launch block {i} outside the {}-block domain",
            geom.num_blocks()
        )));
    }
    Ok(())
}

/// Replay the address stream of launch block `i` of a vector kernel into
/// `sink`. Loads and stores are full vector transactions (`width × 8`
/// bytes), in program order — no data is touched.
///
/// Rejects kernel/geometry mismatches; full kernel verification is the
/// caller's responsibility (see [`brick_lint::verify`]) so the hot trace
/// loop stays O(ops).
pub fn trace_vector_block(
    kernel: &VectorKernel,
    geom: &TraceGeometry,
    i: usize,
    sink: &mut impl TraceSink,
) -> Result<(), VmError> {
    check_trace_compat(kernel.layout, kernel.block, geom, i)?;
    let w = kernel.width as u64;
    let bytes = (w * 8) as u32;
    match kernel.layout {
        LayoutKind::Brick => {
            let nav: &BrickNav = geom.nav();
            let home = geom.home_brick(i);
            let dims = nav.dims();
            for op in &kernel.ops {
                match *op {
                    VOp::LoadRow {
                        rx,
                        ry,
                        rz,
                        lane0,
                        lanes,
                        ..
                    } => {
                        let (b, off) =
                            nav.resolve_rel(home, rx as i64 * w as i64, ry as i64, rz as i64);
                        sink.load(
                            geom.in_base + nav.element_addr(b, off) + lane0 as u64 * 8,
                            lanes as u32 * 8,
                        );
                    }
                    VOp::StoreRow { ry, rz, .. } => {
                        let off = dims.row_offset(ry as usize, rz as usize);
                        sink.store(geom.out_base + nav.element_addr(home, off), bytes);
                    }
                    _ => {}
                }
            }
        }
        LayoutKind::Array => {
            let [ox, oy, oz] = geom.tile_origin(i);
            let addr = geom.array_addr();
            for op in &kernel.ops {
                match *op {
                    VOp::LoadRow {
                        rx,
                        ry,
                        rz,
                        lane0,
                        lanes,
                        ..
                    } => {
                        let a = addr.addr(
                            ox + rx as i64 * w as i64 + lane0 as i64,
                            oy + ry as i64,
                            oz + rz as i64,
                        );
                        sink.load(geom.in_base + a, lanes as u32 * 8);
                    }
                    VOp::StoreRow { ry, rz, .. } => {
                        let a = addr.addr(ox, oy + ry as i64, oz + rz as i64);
                        sink.store(geom.out_base + a, bytes);
                    }
                    _ => {}
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{CountingSink, RecordingSink};
    use brick_codegen::{generate, CodegenOptions, Strategy};
    use brick_core::BrickDims;
    use brick_dsl::shape::StencilShape;
    use brick_dsl::{reference, DenseGrid};
    use std::sync::Arc;

    fn run_brick_case(shape: StencilShape, width: usize, strategy: Strategy, n: usize) {
        let st = shape.stencil();
        let b = st.default_bindings();
        let kernel = generate(
            &st,
            &b,
            LayoutKind::Brick,
            width,
            CodegenOptions {
                strategy,
                ..Default::default()
            },
        )
        .unwrap();

        let halo = st.radius() as usize;
        let mut dense = DenseGrid::new(n.max(width), n, n, halo);
        dense.fill_test_pattern();
        let mut expect = DenseGrid::new(n.max(width), n, n, halo);
        reference::apply(&st, &b, &dense, &mut expect).unwrap();

        let input = BrickGrid::from_dense(&dense, BrickDims::for_simd_width(width));
        let mut output =
            BrickGrid::with_metadata(Arc::clone(input.decomp()), Arc::clone(input.info()));
        run_vector_brick(&kernel, &input, &mut output).unwrap();
        let got = output.to_dense();
        let diff = got.max_rel_diff(&expect);
        assert!(diff < 1e-12, "{shape} {strategy} w{width}: rel diff {diff}");
    }

    fn run_array_case(shape: StencilShape, width: usize, strategy: Strategy, n: usize) {
        let st = shape.stencil();
        let b = st.default_bindings();
        let kernel = generate(
            &st,
            &b,
            LayoutKind::Array,
            width,
            CodegenOptions {
                strategy,
                ..Default::default()
            },
        )
        .unwrap();

        let halo = st.radius() as usize;
        let mut dense = DenseGrid::new(n.max(width), n, n, halo);
        dense.fill_test_pattern();
        let mut expect = DenseGrid::new(n.max(width), n, n, halo);
        reference::apply(&st, &b, &dense, &mut expect).unwrap();

        let input = ArrayGrid::from_dense(&dense);
        let mut output = ArrayGrid::new(n.max(width), n, n, halo);
        run_vector_array(&kernel, &input, &mut output).unwrap();
        let diff = output.to_dense().max_rel_diff(&expect);
        assert!(diff < 1e-12, "{shape} {strategy} w{width}: rel diff {diff}");
    }

    #[test]
    fn brick_gather_matches_reference_all_stencils() {
        for shape in StencilShape::paper_suite() {
            run_brick_case(shape, 16, Strategy::Gather, 8);
        }
    }

    #[test]
    fn brick_scatter_matches_reference_all_stencils() {
        for shape in StencilShape::paper_suite() {
            run_brick_case(shape, 16, Strategy::Scatter, 8);
        }
    }

    #[test]
    fn brick_width_32_and_64() {
        run_brick_case(StencilShape::star(2), 32, Strategy::Gather, 8);
        run_brick_case(StencilShape::cube(1), 64, Strategy::Scatter, 8);
    }

    #[test]
    fn array_gather_matches_reference_all_stencils() {
        for shape in StencilShape::paper_suite() {
            run_array_case(shape, 16, Strategy::Gather, 8);
        }
    }

    #[test]
    fn array_scatter_matches_reference() {
        run_array_case(StencilShape::cube(2), 16, Strategy::Scatter, 8);
        run_array_case(StencilShape::star(4), 32, Strategy::Scatter, 8);
    }

    #[test]
    fn kernel_reach_matches_stencil_radius() {
        for shape in StencilShape::paper_suite() {
            let st = shape.stencil();
            let b = st.default_bindings();
            let k = generate(&st, &b, LayoutKind::Brick, 16, CodegenOptions::default()).unwrap();
            let r = shape.radius as i64;
            assert_eq!(kernel_reach(&k), [r, r, r], "{shape}");
        }
    }

    #[test]
    fn broken_kernel_rejected_with_structured_diagnostics() {
        let st = StencilShape::star(1).stencil();
        let b = st.default_bindings();
        let mut k = generate(&st, &b, LayoutKind::Brick, 16, CodegenOptions::default()).unwrap();
        // Drop the final store: the verifier must reject before execution.
        let last_store = k
            .ops
            .iter()
            .rposition(|op| matches!(op, VOp::StoreRow { .. }))
            .unwrap();
        k.ops.remove(last_store);
        let mut dense = DenseGrid::cubic(16, 1);
        dense.fill_test_pattern();
        let input = BrickGrid::from_dense(&dense, BrickDims::for_simd_width(16));
        let mut output =
            BrickGrid::with_metadata(Arc::clone(input.decomp()), Arc::clone(input.info()));
        let err = run_vector_brick(&k, &input, &mut output).unwrap_err();
        let report = err.report().expect("structured report");
        assert!(report.has_errors());
        assert!(!report
            .with_code(brick_lint::LintCode::IncompleteStores)
            .is_empty());
    }

    #[test]
    fn trace_geometry_mismatch_rejected() {
        let st = StencilShape::star(1).stencil();
        let b = st.default_bindings();
        let k = generate(&st, &b, LayoutKind::Brick, 16, CodegenOptions::default()).unwrap();
        let geom = TraceGeometry::array((16, 16, 16), 1, BrickDims::for_simd_width(16));
        let mut sink = CountingSink::default();
        assert!(matches!(
            trace_vector_block(&k, &geom, 0, &mut sink),
            Err(VmError::Mismatch(_))
        ));
        let bgeom = {
            let dense = DenseGrid::cubic(16, 1);
            let input = BrickGrid::from_dense(&dense, BrickDims::for_simd_width(16));
            TraceGeometry::brick(Arc::new(input.nav().clone()))
        };
        assert!(matches!(
            trace_vector_block(&k, &bgeom, usize::MAX, &mut sink),
            Err(VmError::Mismatch(_))
        ));
    }

    #[test]
    fn layout_mismatch_rejected() {
        let st = StencilShape::star(1).stencil();
        let b = st.default_bindings();
        let k = generate(&st, &b, LayoutKind::Array, 16, CodegenOptions::default()).unwrap();
        let mut dense = DenseGrid::cubic(16, 1);
        dense.fill_test_pattern();
        let input = BrickGrid::from_dense(&dense, BrickDims::for_simd_width(16));
        let mut output =
            BrickGrid::with_metadata(Arc::clone(input.decomp()), Arc::clone(input.info()));
        assert!(matches!(
            run_vector_brick(&k, &input, &mut output),
            Err(VmError::Mismatch(_))
        ));
    }

    #[test]
    fn trace_counts_match_kernel_stats() {
        let st = StencilShape::star(2).stencil();
        let b = st.default_bindings();
        let k = generate(&st, &b, LayoutKind::Brick, 16, CodegenOptions::default()).unwrap();
        let dense = DenseGrid::cubic(16, 2);
        let input = BrickGrid::from_dense(&dense, BrickDims::for_simd_width(16));
        let geom = TraceGeometry::brick(Arc::new(input.nav().clone()));
        let mut sink = CountingSink::default();
        for i in 0..geom.num_blocks() {
            trace_vector_block(&k, &geom, i, &mut sink).unwrap();
        }
        let blocks = geom.num_blocks() as u64;
        assert_eq!(sink.loads, k.stats.loads as u64 * blocks);
        assert_eq!(sink.stores, k.stats.stores as u64 * blocks);
        // partial edge loads: trace bytes equal the kernel's own account
        assert_eq!(sink.load_bytes, k.loaded_bytes() * blocks);
        assert!(sink.load_bytes < sink.loads * 16 * 8);
        assert_eq!(sink.store_bytes, sink.stores * 16 * 8);
    }

    #[test]
    fn brick_trace_addresses_are_slab_aligned_vectors() {
        let st = StencilShape::star(1).stencil();
        let b = st.default_bindings();
        let k = generate(&st, &b, LayoutKind::Brick, 16, CodegenOptions::default()).unwrap();
        let dense = DenseGrid::cubic(16, 1);
        let input = BrickGrid::from_dense(&dense, BrickDims::for_simd_width(16));
        let geom = TraceGeometry::brick(Arc::new(input.nav().clone()));
        let mut sink = RecordingSink::default();
        trace_vector_block(&k, &geom, 0, &mut sink).unwrap();
        for (is_store, addr, bytes) in &sink.events {
            if *is_store || *bytes == 16 * 8 {
                assert_eq!(addr % (16 * 8), 0, "full rows are row-aligned");
            } else {
                // narrowed edge load: at most the stencil reach in lanes
                assert!(*bytes <= 8, "edge load of {bytes} bytes");
            }
        }
    }

    #[test]
    fn array_trace_store_addresses_distinct_per_row() {
        let st = StencilShape::star(1).stencil();
        let b = st.default_bindings();
        let k = generate(&st, &b, LayoutKind::Array, 16, CodegenOptions::default()).unwrap();
        let geom = TraceGeometry::array((16, 16, 16), 1, BrickDims::for_simd_width(16));
        let mut sink = RecordingSink::default();
        trace_vector_block(&k, &geom, 0, &mut sink).unwrap();
        let stores: Vec<u64> = sink
            .events
            .iter()
            .filter(|(s, _, _)| *s)
            .map(|(_, a, _)| *a)
            .collect();
        assert_eq!(stores.len(), 16);
        let mut sorted = stores.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 16);
        // all stores land in the output allocation
        assert!(stores.iter().all(|a| *a >= geom.out_base));
    }

    #[test]
    fn multi_iteration_sweep_stays_finite() {
        // ping-pong two brick grids for several sweeps (as the examples do)
        let st = StencilShape::star(1).stencil();
        let b = brick_dsl::CoeffBindings::new()
            .bind("c0", 0.4)
            .bind("c1", 0.1);
        let k = generate(&st, &b, LayoutKind::Brick, 16, CodegenOptions::default()).unwrap();
        let mut dense = DenseGrid::cubic(16, 1);
        dense.fill_test_pattern();
        let mut a = BrickGrid::from_dense(&dense, BrickDims::for_simd_width(16));
        let mut bgrid = BrickGrid::with_metadata(Arc::clone(a.decomp()), Arc::clone(a.info()));
        for _ in 0..4 {
            run_vector_brick(&k, &a, &mut bgrid).unwrap();
            std::mem::swap(&mut a, &mut bgrid);
        }
        let sum = a.to_dense().interior_sum();
        assert!(sum.is_finite());
    }
}
