//! Execution of generated vector kernels.
//!
//! Two modes, matching how the paper's measurements were taken:
//!
//! * **numeric** ([`run_vector_brick`], [`run_vector_array`]): interpret
//!   the IR over real field data, in parallel over blocks, to validate
//!   that generated code computes the stencil correctly;
//! * **trace** ([`trace_vector_block`]): replay only the address stream of
//!   one block into a [`TraceSink`] — no field data, no floating point —
//!   which is what the GPU simulator consumes at full problem scale.

use brick_codegen::{LayoutKind, VOp, VectorKernel};
use brick_core::{ArrayGrid, BrickGrid, BrickNav};
use rayon::prelude::*;

use crate::geom::TraceGeometry;
use crate::native::{self, Backend, ExecutionMode, NativeOps, Plan, RowOps};
use crate::trace::TraceSink;

/// Errors surfaced by the VM.
#[derive(Debug, Clone, PartialEq)]
pub enum VmError {
    /// The kernel failed static analysis; the report carries the full
    /// structured diagnostics (op-index spans, `BLxxx` codes).
    InvalidKernel(Box<brick_lint::Report>),
    /// Kernel and grid disagree (layout, block shape, extents, halo).
    Mismatch(String),
    /// A forced [`ExecutionMode`] the running host cannot execute
    /// (e.g. `avx2` without AVX2+FMA). `Auto` never produces this.
    Unsupported(String),
    /// The lowered plan failed the brick-safe memory-safety proof; the
    /// report carries the undischarged `BSxxx` obligations. Such a plan
    /// is never dispatched to a native backend.
    UnsafePlan(Box<brick_lint::Report>),
}

impl VmError {
    /// The analyzer report, when the error is a rejected kernel or an
    /// unprovable plan.
    pub fn report(&self) -> Option<&brick_lint::Report> {
        match self {
            VmError::InvalidKernel(r) | VmError::UnsafePlan(r) => Some(r),
            VmError::Mismatch(_) | VmError::Unsupported(_) => None,
        }
    }
}

impl std::fmt::Display for VmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VmError::InvalidKernel(e) => write!(f, "invalid kernel: {e}"),
            VmError::Mismatch(e) => write!(f, "kernel/grid mismatch: {e}"),
            VmError::Unsupported(e) => write!(f, "unsupported execution mode: {e}"),
            VmError::UnsafePlan(e) => write!(f, "unsafe plan rejected: {e}"),
        }
    }
}

impl std::error::Error for VmError {}

/// Per-axis reach of the kernel's loads: `[x, y, z]` distances outside the
/// home block, i.e. the ghost/halo coverage the kernel requires.
///
/// Delegates to the analyzer's footprint pass ([`brick_lint::load_reach`]),
/// which derives it from load *addresses* — the shift-distance inference
/// that used to live here is subsumed because narrowed edge loads
/// materialise exactly the lanes the shuffles consume.
pub fn kernel_reach(kernel: &VectorKernel) -> [i64; 3] {
    brick_lint::load_reach(kernel)
}

/// Straight-line IR interpreter over one block.
///
/// `read_row(rx, ry, rz, dst)` must fill `dst` with the input row;
/// `write_row(ry, rz, src)` must store an output row.
fn exec_block(
    kernel: &VectorKernel,
    regs: &mut [f64],
    scratch: &mut [f64],
    mut read_row: impl FnMut(i8, i16, i16, usize, &mut [f64]),
    mut write_row: impl FnMut(i16, i16, &[f64]),
) {
    let w = kernel.width;
    debug_assert_eq!(regs.len(), kernel.num_regs * w);
    debug_assert_eq!(scratch.len(), w);
    let row = |r: u16| -> std::ops::Range<usize> {
        let s = r as usize * w;
        s..s + w
    };
    for op in &kernel.ops {
        match *op {
            VOp::LoadRow {
                dst,
                rx,
                ry,
                rz,
                lane0,
                lanes,
            } => {
                let r = row(dst);
                regs[r.clone()].fill(0.0);
                let s = r.start;
                read_row(
                    rx,
                    ry,
                    rz,
                    lane0 as usize,
                    &mut regs[s + lane0 as usize..s + lane0 as usize + lanes as usize],
                );
            }
            VOp::ShiftX { dst, src, edge, dx } => {
                // Compute into scratch first: dst may alias src or edge.
                {
                    let srcr = &regs[row(src)];
                    let edger = &regs[row(edge)];
                    for (i, s) in scratch.iter_mut().enumerate() {
                        let j = i as i64 + dx as i64;
                        *s = if j >= 0 && (j as usize) < w {
                            srcr[j as usize]
                        } else if j < 0 {
                            edger[(j + w as i64) as usize]
                        } else {
                            edger[(j - w as i64) as usize]
                        };
                    }
                }
                regs[row(dst)].copy_from_slice(scratch);
            }
            VOp::Add { dst, a, b } => {
                for i in 0..w {
                    scratch[i] = regs[a as usize * w + i] + regs[b as usize * w + i];
                }
                regs[row(dst)].copy_from_slice(scratch);
            }
            VOp::Mul { dst, a, coeff } => {
                let c = kernel.coeffs[coeff as usize];
                for i in 0..w {
                    scratch[i] = regs[a as usize * w + i] * c;
                }
                regs[row(dst)].copy_from_slice(scratch);
            }
            VOp::Fma { dst, acc, a, coeff } => {
                let c = kernel.coeffs[coeff as usize];
                for i in 0..w {
                    scratch[i] = regs[a as usize * w + i].mul_add(c, regs[acc as usize * w + i]);
                }
                regs[row(dst)].copy_from_slice(scratch);
            }
            VOp::StoreRow { src, ry, rz } => {
                write_row(ry, rz, &regs[row(src)]);
            }
        }
    }
}

fn check_brick(
    kernel: &VectorKernel,
    input: &BrickGrid,
    output: &BrickGrid,
) -> Result<(), VmError> {
    let footprint = brick_lint::verify(kernel).map_err(VmError::InvalidKernel)?;
    if kernel.layout != LayoutKind::Brick {
        return Err(VmError::Mismatch("array kernel on brick grids".into()));
    }
    if kernel.block != input.dims() {
        return Err(VmError::Mismatch(format!(
            "kernel block {} != brick dims {}",
            kernel.block,
            input.dims()
        )));
    }
    if input.decomp().extents() != output.decomp().extents()
        || input.decomp().ordering() != output.decomp().ordering()
    {
        return Err(VmError::Mismatch(
            "input/output decomposition mismatch".into(),
        ));
    }
    let reach = footprint.reach;
    let ghost = input.decomp().ghost_layers();
    let d = input.dims();
    for (axis, (&r, cover)) in reach
        .iter()
        .zip([ghost[0] * d.bx, ghost[1] * d.by, ghost[2] * d.bz])
        .enumerate()
    {
        if r > cover as i64 {
            return Err(VmError::Mismatch(format!(
                "kernel reach {r} on axis {axis} exceeds ghost coverage {cover}"
            )));
        }
    }
    Ok(())
}

/// Execute a brick-layout vector kernel out-of-place over all interior
/// bricks, in parallel (one Rayon task per brick; output bricks are
/// disjoint storage chunks, so no synchronisation is needed).
///
/// Back-compat wrapper for [`run_vector_brick_mode`] using the process
/// default mode (`BRICK_EXEC`, else `Auto`). Every mode computes
/// bit-identical results; see [`crate::native`].
pub fn run_vector_brick(
    kernel: &VectorKernel,
    input: &BrickGrid,
    output: &mut BrickGrid,
) -> Result<(), VmError> {
    run_vector_brick_mode(kernel, input, output, ExecutionMode::from_env())
}

/// [`run_vector_brick`] under an explicit [`ExecutionMode`].
pub fn run_vector_brick_mode(
    kernel: &VectorKernel,
    input: &BrickGrid,
    output: &mut BrickGrid,
    mode: ExecutionMode,
) -> Result<(), VmError> {
    let backend = native::resolve(mode)?;
    run_vector_brick_backend(kernel, input, output, backend)
}

/// [`run_vector_brick`] under an explicitly resolved [`Backend`] —
/// the differential-test and benchmark entry (e.g. to force the portable
/// compiled backend on a host whose `Auto` resolves to a SIMD one).
/// Errors (never panics) when this host cannot execute `backend`.
pub fn run_vector_brick_backend(
    kernel: &VectorKernel,
    input: &BrickGrid,
    output: &mut BrickGrid,
    backend: Backend,
) -> Result<(), VmError> {
    check_brick(kernel, input, output)?;
    match backend {
        Backend::Interpreter => {
            run_brick_interp(kernel, input, output);
            Ok(())
        }
        backend => {
            let plan = Plan::compile(kernel)?;
            match native::ops_for(backend)? {
                NativeOps::Portable(ops) => run_brick_plan(&plan, &ops, input, output),
                #[cfg(target_arch = "x86_64")]
                NativeOps::Avx2(ops) => run_brick_plan(&plan, &ops, input, output),
                #[cfg(target_arch = "aarch64")]
                NativeOps::Neon(ops) => run_brick_plan(&plan, &ops, input, output),
            }
            Ok(())
        }
    }
}

/// The interpreter path of [`run_vector_brick_mode`] — retained verbatim
/// as the differential oracle for the compiled backends.
fn run_brick_interp(kernel: &VectorKernel, input: &BrickGrid, output: &mut BrickGrid) {
    let nav = input.nav().clone();
    let dims = input.dims();
    let vol = dims.volume();
    let w = kernel.width;
    let in_raw = input.raw();
    let decomp = std::sync::Arc::clone(input.decomp());
    output
        .raw_mut()
        .par_chunks_mut(vol)
        .enumerate()
        .for_each(|(id, out_chunk)| {
            let home = id as u32;
            if !decomp.is_interior(home) {
                return;
            }
            let mut regs = vec![0.0; kernel.num_regs * w];
            let mut scratch = vec![0.0; w];
            exec_block(
                kernel,
                &mut regs,
                &mut scratch,
                |rx, ry, rz, lane0, dst| {
                    let (b, off) =
                        nav.resolve_rel(home, rx as i64 * w as i64, ry as i64, rz as i64);
                    let s = b as usize * vol + off + lane0;
                    dst.copy_from_slice(&in_raw[s..s + dst.len()]);
                },
                |ry, rz, src| {
                    let off = dims.row_offset(ry as usize, rz as usize);
                    out_chunk[off..off + w].copy_from_slice(src);
                },
            );
        });
}

/// Compiled-plan path of [`run_vector_brick_mode`]: same parallel
/// structure as the interpreter, with the per-block IR walk replaced by
/// [`Plan::exec_block`] over backend `B`. Input rows resolve through
/// `BrickNav` exactly as the interpreter's do; the reach-vs-ghost check in
/// [`check_brick`] (backed by the analyzer's bounds proof) guarantees every
/// resolved row is inside the input allocation, so the row copies below
/// cannot panic for a verified kernel.
fn run_brick_plan<B: RowOps>(plan: &Plan, ops: &B, input: &BrickGrid, output: &mut BrickGrid) {
    if let Some(fused) = plan.fused() {
        return run_brick_fused(fused, plan, ops, input, output);
    }
    let nav = input.nav().clone();
    let dims = input.dims();
    let vol = dims.volume();
    let w = plan.width();
    let in_raw = input.raw();
    let decomp = std::sync::Arc::clone(input.decomp());
    output
        .raw_mut()
        .par_chunks_mut(vol)
        .enumerate()
        .for_each(|(id, out_chunk)| {
            let home = id as u32;
            if !decomp.is_interior(home) {
                return;
            }
            let mut regs = vec![0.0; plan.regs_len()];
            plan.exec_block(
                ops,
                &mut regs,
                |rx, ry, rz, lane0, dst| {
                    let (b, off) =
                        nav.resolve_rel(home, rx as i64 * w as i64, ry as i64, rz as i64);
                    let s = b as usize * vol + off + lane0;
                    dst.copy_from_slice(&in_raw[s..s + dst.len()]);
                },
                |ry, rz, src| {
                    let off = dims.row_offset(ry as usize, rz as usize);
                    out_chunk[off..off + w].copy_from_slice(src);
                },
            );
        });
}

/// Fused-row brick executor: per interior block, resolve every tap once
/// through the 27-neighbour table (indices precomputed at plan-compile
/// time — no `div_euclid` chains here), then evaluate each output row's
/// tape straight from the input slab. The register file never exists;
/// see [`crate::native::fuse`] for why this is bit-identical to the
/// interpreter and the step machine.
fn run_brick_fused<B: RowOps>(
    fused: &crate::native::fuse::FusedKernel,
    plan: &Plan,
    ops: &B,
    input: &BrickGrid,
    output: &mut BrickGrid,
) {
    use crate::native::fuse::MAX_TAPS;
    let ntaps = fused.taps_len();
    assert!(ntaps <= MAX_TAPS, "fused tap table exceeds executor buffer");
    // Tier the per-block tap buffer so common kernels don't pay a
    // MAX_TAPS-sized zeroing per block (the table holds one entry per
    // distinct (tap, row) pair: star-7 on a 32x4x4 brick needs 64,
    // star-13 and cube-27 just over 100).
    if ntaps <= SMALL_TAPS {
        run_brick_fused_nt::<B, SMALL_TAPS>(fused, plan, ops, input, output)
    } else if ntaps <= MID_TAPS {
        run_brick_fused_nt::<B, MID_TAPS>(fused, plan, ops, input, output)
    } else {
        run_brick_fused_nt::<B, MAX_TAPS>(fused, plan, ops, input, output)
    }
}

/// Tap-buffer tiers; SMALL covers star-7 on the default brick, MID the
/// rest of the paper suite except star-25.
const SMALL_TAPS: usize = 64;
const MID_TAPS: usize = 128;

fn run_brick_fused_nt<B: RowOps, const NT: usize>(
    fused: &crate::native::fuse::FusedKernel,
    plan: &Plan,
    ops: &B,
    input: &BrickGrid,
    output: &mut BrickGrid,
) {
    use crate::native::fuse::RTap;
    let info = std::sync::Arc::clone(input.info());
    let dims = input.dims();
    let vol = dims.volume();
    let w = plan.width();
    let in_raw = input.raw();
    let decomp = std::sync::Arc::clone(input.decomp());
    let ntaps = fused.taps_len();
    debug_assert!(ntaps <= NT);
    // Per-run premise of the compile-time tap-bounds proof (BS001/BS002):
    // the slab is whole bricks, and every adjacency entry of an interior
    // brick names an allocated one. Combined with the proved per-tap fact
    // `off + w ≤ vol`, every resolved base `id·vol + off` then satisfies
    // `base + w ≤ in_raw.len()` — which is why the hot loop below no
    // longer re-checks the resolved taps per block.
    let nb = in_raw.len() / vol;
    assert_eq!(in_raw.len(), nb * vol, "input slab is not whole bricks");
    for id in 0..nb as u32 {
        if decomp.is_interior(id) {
            for &n in info.row(id) {
                assert!(
                    n != brick_core::NO_BRICK && (n as usize) < nb,
                    "adjacency entry {n} of interior brick {id} outside the {nb}-brick slab"
                );
            }
        }
    }
    output
        .raw_mut()
        .par_chunks_mut(vol)
        .enumerate()
        .for_each(|(id, out_chunk)| {
            let home = id as u32;
            if !decomp.is_interior(home) {
                return;
            }
            let mut rtaps = [RTap::Direct { base: 0 }; NT];
            fused.resolve_brick(info.row(home), vol, &mut rtaps[..ntaps]);
            ops.eval_block(fused, &rtaps[..ntaps], in_raw, w, out_chunk, |rp| {
                rp.out_off
            });
        });
}

/// Shared validation for the array executors: layout, extents,
/// divisibility, and the kernel's load reach against the halo. The reach
/// check is what makes the compiled path's unguarded row reads total: a
/// verified kernel's loads stay within `[-halo, n + halo)` on every axis.
fn check_array(
    kernel: &VectorKernel,
    input: &ArrayGrid,
    output: &ArrayGrid,
) -> Result<(), VmError> {
    let footprint = brick_lint::verify(kernel).map_err(VmError::InvalidKernel)?;
    if kernel.layout != LayoutKind::Array {
        return Err(VmError::Mismatch("brick kernel on array grids".into()));
    }
    let (nx, ny, nz) = input.extents();
    if output.extents() != (nx, ny, nz) {
        return Err(VmError::Mismatch("input/output extent mismatch".into()));
    }
    let block = kernel.block;
    if nx % block.bx != 0 || ny % block.by != 0 || nz % block.bz != 0 {
        return Err(VmError::Mismatch(format!(
            "extents {nx}x{ny}x{nz} not divisible by tile {block}"
        )));
    }
    let halo = input.dense().halo();
    let reach = footprint.reach;
    if reach[1] > halo as i64 || reach[2] > halo as i64 || reach[0] > halo as i64 {
        return Err(VmError::Mismatch(format!(
            "kernel reach {reach:?} exceeds array halo {halo}"
        )));
    }
    if output.dense().halo() != halo {
        return Err(VmError::Mismatch(format!(
            "output halo {} != input halo {halo}",
            output.dense().halo()
        )));
    }
    Ok(())
}

/// Execute an array-layout vector kernel out-of-place over all tiles, in
/// parallel over z-slabs of tiles (whose output rows are disjoint,
/// contiguous storage ranges).
///
/// Back-compat wrapper for [`run_vector_array_mode`] using the process
/// default mode (`BRICK_EXEC`, else `Auto`). Every mode computes
/// bit-identical results; see [`crate::native`].
pub fn run_vector_array(
    kernel: &VectorKernel,
    input: &ArrayGrid,
    output: &mut ArrayGrid,
) -> Result<(), VmError> {
    run_vector_array_mode(kernel, input, output, ExecutionMode::from_env())
}

/// [`run_vector_array`] under an explicit [`ExecutionMode`].
pub fn run_vector_array_mode(
    kernel: &VectorKernel,
    input: &ArrayGrid,
    output: &mut ArrayGrid,
    mode: ExecutionMode,
) -> Result<(), VmError> {
    let backend = native::resolve(mode)?;
    run_vector_array_backend(kernel, input, output, backend)
}

/// [`run_vector_array`] under an explicitly resolved [`Backend`]; see
/// [`run_vector_brick_backend`].
pub fn run_vector_array_backend(
    kernel: &VectorKernel,
    input: &ArrayGrid,
    output: &mut ArrayGrid,
    backend: Backend,
) -> Result<(), VmError> {
    check_array(kernel, input, output)?;
    match backend {
        Backend::Interpreter => {
            run_array_interp(kernel, input, output);
            Ok(())
        }
        backend => {
            let plan = Plan::compile(kernel)?;
            match native::ops_for(backend)? {
                NativeOps::Portable(ops) => run_array_plan(&plan, &ops, input, output),
                #[cfg(target_arch = "x86_64")]
                NativeOps::Avx2(ops) => run_array_plan(&plan, &ops, input, output),
                #[cfg(target_arch = "aarch64")]
                NativeOps::Neon(ops) => run_array_plan(&plan, &ops, input, output),
            }
            Ok(())
        }
    }
}

/// The interpreter path of [`run_vector_array_mode`] — retained verbatim
/// as the differential oracle for the compiled backends.
fn run_array_interp(kernel: &VectorKernel, input: &ArrayGrid, output: &mut ArrayGrid) {
    let (nx, ny, nz) = input.extents();
    let block = kernel.block;
    let halo = input.dense().halo();
    let w = kernel.width;
    let dense_in = input.dense();
    let (hx, hy) = (halo as i64, halo as i64);
    let sx = nx + 2 * halo;
    let sy = ny + 2 * halo;
    let plane = sx * sy;
    let tiles_x = nx / block.bx;
    let tiles_y = ny / block.by;

    // Interior z planes as disjoint slabs of `bz` planes each.
    let raw_out = output.dense_mut().raw_mut();
    let body = &mut raw_out[halo * plane..(halo + nz) * plane];
    body.par_chunks_mut(block.bz * plane)
        .enumerate()
        .for_each(|(tz, slab)| {
            let oz = (tz * block.bz) as i64;
            let mut regs = vec![0.0; kernel.num_regs * w];
            let mut scratch = vec![0.0; w];
            for ty in 0..tiles_y {
                for tx in 0..tiles_x {
                    let ox = (tx * block.bx) as i64;
                    let oy = (ty * block.by) as i64;
                    exec_block(
                        kernel,
                        &mut regs,
                        &mut scratch,
                        |rx, ry, rz, lane0, dst| {
                            let y = oy + ry as i64;
                            let z = oz + rz as i64;
                            let x0 = ox + rx as i64 * w as i64 + lane0 as i64;
                            // Narrowed edge loads stay within the halo as
                            // long as the kernel's reach does; guard the
                            // degenerate boundary lanes anyway.
                            for (i, d) in dst.iter_mut().enumerate() {
                                let x = x0 + i as i64;
                                *d = if x >= -hx && x < nx as i64 + hx {
                                    dense_in.get(x, y, z)
                                } else {
                                    0.0
                                };
                            }
                        },
                        |ry, rz, src| {
                            // Index within the slab: z-local plane, full row.
                            let zloc = rz as usize;
                            let row = ((zloc * sy) as i64 + (oy + ry as i64 + hy)) as usize;
                            let start = row * sx + (ox + hx) as usize;
                            slab[start..start + w].copy_from_slice(src);
                        },
                    );
                }
            }
        });
}

/// Compiled-plan path of [`run_vector_array_mode`]: the per-element halo
/// branch of the interpreter's read path is replaced by one contiguous
/// row copy from padded dense storage. The reach-vs-halo check in
/// [`check_array`] (backed by the analyzer's bounds proof) guarantees
/// every read row lies inside `[-halo, n + halo)` on all axes, so the
/// slice copies below cannot panic for a verified kernel.
fn run_array_plan<B: RowOps>(plan: &Plan, ops: &B, input: &ArrayGrid, output: &mut ArrayGrid) {
    if let Some(fused) = plan.fused() {
        return run_array_fused(fused, plan, ops, input, output);
    }
    let (nx, ny, nz) = input.extents();
    let block = plan.block();
    let halo = input.dense().halo();
    let w = plan.width();
    let raw_in = input.dense().raw();
    let h = halo as i64;
    let sx = nx + 2 * halo;
    let sy = ny + 2 * halo;
    let plane = sx * sy;
    let tiles_x = nx / block.bx;
    let tiles_y = ny / block.by;

    let raw_out = output.dense_mut().raw_mut();
    let body = &mut raw_out[halo * plane..(halo + nz) * plane];
    body.par_chunks_mut(block.bz * plane)
        .enumerate()
        .for_each(|(tz, slab)| {
            let oz = (tz * block.bz) as i64;
            let mut regs = vec![0.0; plan.regs_len()];
            for ty in 0..tiles_y {
                for tx in 0..tiles_x {
                    let ox = (tx * block.bx) as i64;
                    let oy = (ty * block.by) as i64;
                    plan.exec_block(
                        ops,
                        &mut regs,
                        |rx, ry, rz, lane0, dst| {
                            let y = oy + ry as i64;
                            let z = oz + rz as i64;
                            let x0 = ox + rx as i64 * w as i64 + lane0 as i64;
                            let start =
                                (((z + h) * sy as i64 + (y + h)) * sx as i64 + (x0 + h)) as usize;
                            dst.copy_from_slice(&raw_in[start..start + dst.len()]);
                        },
                        |ry, rz, src| {
                            // Index within the slab: z-local plane, full row.
                            let zloc = rz as usize;
                            let row = ((zloc * sy) as i64 + (oy + ry as i64 + h)) as usize;
                            let start = row * sx + (ox + h) as usize;
                            slab[start..start + w].copy_from_slice(src);
                        },
                    );
                }
            }
        });
}

/// Fused-row array executor. On the dense layout every tap — including
/// shifted ones, since rows are contiguous in `x` across tile seams —
/// collapses to a single stride delta from the tile origin, computed once
/// per run; per tile the taps resolve with one add each. The kernel's
/// reach stays within the halo ([`check_array`]), so every resolved row
/// lies inside the padded slab.
fn run_array_fused<B: RowOps>(
    fused: &crate::native::fuse::FusedKernel,
    plan: &Plan,
    ops: &B,
    input: &ArrayGrid,
    output: &mut ArrayGrid,
) {
    use crate::native::fuse::{RTap, Tap, MAX_TAPS};
    let (nx, ny, nz) = input.extents();
    let block = plan.block();
    let halo = input.dense().halo();
    let w = plan.width();
    let raw_in = input.dense().raw();
    let h = halo as i64;
    let sx = nx + 2 * halo;
    let sy = ny + 2 * halo;
    let plane = (sx * sy) as i64;
    let tiles_x = nx / block.bx;
    let tiles_y = ny / block.by;
    let ntaps = fused.taps_len();
    assert!(ntaps <= MAX_TAPS, "fused tap table exceeds executor buffer");
    // Per-run instantiation of the tap-bounds obligation (BS001) for this
    // concrete geometry: every tap row of every tile stays inside the
    // padded slab. `check_array` already bounds the reach by the halo;
    // this is the direct interval check the hot loop relies on instead of
    // re-validating resolved taps per block.
    plan.check_array_geometry(nx, ny, nz, halo)
        .expect("array geometry violates the compile-time tap-bounds proof");
    let deltas: Vec<i64> = fused
        .taps()
        .iter()
        .map(|t| match *t {
            Tap::Direct { rx, ry, rz } => {
                rz as i64 * plane + ry as i64 * sx as i64 + rx as i64 * w as i64
            }
            Tap::Shifted { ry, rz, dx } => rz as i64 * plane + ry as i64 * sx as i64 + dx as i64,
        })
        .collect();

    let raw_out = output.dense_mut().raw_mut();
    let body = &mut raw_out[halo * (plane as usize)..(halo + nz) * (plane as usize)];
    body.par_chunks_mut(block.bz * plane as usize)
        .enumerate()
        .for_each(|(tz, slab)| {
            let oz = (tz * block.bz) as i64;
            let mut rtaps = [RTap::Direct { base: 0 }; MAX_TAPS];
            for ty in 0..tiles_y {
                for tx in 0..tiles_x {
                    let ox = (tx * block.bx) as i64;
                    let oy = (ty * block.by) as i64;
                    let origin = ((oz + h) * sy as i64 + (oy + h)) * sx as i64 + (ox + h);
                    for (slot, d) in deltas.iter().enumerate() {
                        rtaps[slot] = RTap::Direct {
                            base: (origin + d) as usize,
                        };
                    }
                    ops.eval_block(fused, &rtaps[..ntaps], raw_in, w, slab, |rp| {
                        let row = rp.rz as i64 * sy as i64 + (oy + rp.ry as i64 + h);
                        (row * sx as i64 + ox + h) as usize
                    });
                }
            }
        });
}

/// Cheap per-trace compatibility check between a kernel and a geometry.
///
/// Full static verification ([`brick_lint::verify`]) runs once per kernel
/// at the execution/sweep level; the per-block trace path only re-checks
/// the O(1) geometry invariants that make address resolution meaningful.
pub(crate) fn check_trace_compat(
    layout: LayoutKind,
    block: brick_core::BrickDims,
    geom: &TraceGeometry,
    i: usize,
) -> Result<(), VmError> {
    if layout != geom.layout() {
        return Err(VmError::Mismatch(format!(
            "{layout} kernel traced over {} geometry",
            geom.layout()
        )));
    }
    if block != geom.block() {
        return Err(VmError::Mismatch(format!(
            "kernel block {block} != geometry block {}",
            geom.block()
        )));
    }
    if i >= geom.num_blocks() {
        return Err(VmError::Mismatch(format!(
            "launch block {i} outside the {}-block domain",
            geom.num_blocks()
        )));
    }
    Ok(())
}

/// Replay the address stream of launch block `i` of a vector kernel into
/// `sink`. Loads and stores are full vector transactions (`width × 8`
/// bytes), in program order — no data is touched.
///
/// Rejects kernel/geometry mismatches; full kernel verification is the
/// caller's responsibility (see [`brick_lint::verify`]) so the hot trace
/// loop stays O(ops).
pub fn trace_vector_block(
    kernel: &VectorKernel,
    geom: &TraceGeometry,
    i: usize,
    sink: &mut impl TraceSink,
) -> Result<(), VmError> {
    check_trace_compat(kernel.layout, kernel.block, geom, i)?;
    let w = kernel.width as u64;
    let bytes = (w * 8) as u32;
    match kernel.layout {
        LayoutKind::Brick => {
            let nav: &BrickNav = geom.nav();
            let home = geom.home_brick(i);
            let dims = nav.dims();
            for op in &kernel.ops {
                match *op {
                    VOp::LoadRow {
                        rx,
                        ry,
                        rz,
                        lane0,
                        lanes,
                        ..
                    } => {
                        let (b, off) =
                            nav.resolve_rel(home, rx as i64 * w as i64, ry as i64, rz as i64);
                        sink.load(
                            geom.in_base + nav.element_addr(b, off) + lane0 as u64 * 8,
                            lanes as u32 * 8,
                        );
                    }
                    VOp::StoreRow { ry, rz, .. } => {
                        let off = dims.row_offset(ry as usize, rz as usize);
                        sink.store(geom.out_base + nav.element_addr(home, off), bytes);
                    }
                    _ => {}
                }
            }
        }
        LayoutKind::Array => {
            let [ox, oy, oz] = geom.tile_origin(i);
            let addr = geom.array_addr();
            for op in &kernel.ops {
                match *op {
                    VOp::LoadRow {
                        rx,
                        ry,
                        rz,
                        lane0,
                        lanes,
                        ..
                    } => {
                        let a = addr.addr(
                            ox + rx as i64 * w as i64 + lane0 as i64,
                            oy + ry as i64,
                            oz + rz as i64,
                        );
                        sink.load(geom.in_base + a, lanes as u32 * 8);
                    }
                    VOp::StoreRow { ry, rz, .. } => {
                        let a = addr.addr(ox, oy + ry as i64, oz + rz as i64);
                        sink.store(geom.out_base + a, bytes);
                    }
                    _ => {}
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{CountingSink, RecordingSink};
    use brick_codegen::{generate, CodegenOptions, Strategy};
    use brick_core::BrickDims;
    use brick_dsl::shape::StencilShape;
    use brick_dsl::{reference, DenseGrid};
    use std::sync::Arc;

    fn run_brick_case(shape: StencilShape, width: usize, strategy: Strategy, n: usize) {
        let st = shape.stencil();
        let b = st.default_bindings();
        let kernel = generate(
            &st,
            &b,
            LayoutKind::Brick,
            width,
            CodegenOptions {
                strategy,
                ..Default::default()
            },
        )
        .unwrap();

        let halo = st.radius() as usize;
        let mut dense = DenseGrid::new(n.max(width), n, n, halo);
        dense.fill_test_pattern();
        let mut expect = DenseGrid::new(n.max(width), n, n, halo);
        reference::apply(&st, &b, &dense, &mut expect).unwrap();

        let input = BrickGrid::from_dense(&dense, BrickDims::for_simd_width(width));
        let mut output =
            BrickGrid::with_metadata(Arc::clone(input.decomp()), Arc::clone(input.info()));
        run_vector_brick(&kernel, &input, &mut output).unwrap();
        let got = output.to_dense();
        let diff = got.max_rel_diff(&expect);
        assert!(diff < 1e-12, "{shape} {strategy} w{width}: rel diff {diff}");
    }

    fn run_array_case(shape: StencilShape, width: usize, strategy: Strategy, n: usize) {
        let st = shape.stencil();
        let b = st.default_bindings();
        let kernel = generate(
            &st,
            &b,
            LayoutKind::Array,
            width,
            CodegenOptions {
                strategy,
                ..Default::default()
            },
        )
        .unwrap();

        let halo = st.radius() as usize;
        let mut dense = DenseGrid::new(n.max(width), n, n, halo);
        dense.fill_test_pattern();
        let mut expect = DenseGrid::new(n.max(width), n, n, halo);
        reference::apply(&st, &b, &dense, &mut expect).unwrap();

        let input = ArrayGrid::from_dense(&dense);
        let mut output = ArrayGrid::new(n.max(width), n, n, halo);
        run_vector_array(&kernel, &input, &mut output).unwrap();
        let diff = output.to_dense().max_rel_diff(&expect);
        assert!(diff < 1e-12, "{shape} {strategy} w{width}: rel diff {diff}");
    }

    #[test]
    fn brick_gather_matches_reference_all_stencils() {
        for shape in StencilShape::paper_suite() {
            run_brick_case(shape, 16, Strategy::Gather, 8);
        }
    }

    #[test]
    fn brick_scatter_matches_reference_all_stencils() {
        for shape in StencilShape::paper_suite() {
            run_brick_case(shape, 16, Strategy::Scatter, 8);
        }
    }

    #[test]
    fn brick_width_32_and_64() {
        run_brick_case(StencilShape::star(2), 32, Strategy::Gather, 8);
        run_brick_case(StencilShape::cube(1), 64, Strategy::Scatter, 8);
    }

    #[test]
    fn array_gather_matches_reference_all_stencils() {
        for shape in StencilShape::paper_suite() {
            run_array_case(shape, 16, Strategy::Gather, 8);
        }
    }

    #[test]
    fn array_scatter_matches_reference() {
        run_array_case(StencilShape::cube(2), 16, Strategy::Scatter, 8);
        run_array_case(StencilShape::star(4), 32, Strategy::Scatter, 8);
    }

    #[test]
    fn kernel_reach_matches_stencil_radius() {
        for shape in StencilShape::paper_suite() {
            let st = shape.stencil();
            let b = st.default_bindings();
            let k = generate(&st, &b, LayoutKind::Brick, 16, CodegenOptions::default()).unwrap();
            let r = shape.radius as i64;
            assert_eq!(kernel_reach(&k), [r, r, r], "{shape}");
        }
    }

    #[test]
    fn broken_kernel_rejected_with_structured_diagnostics() {
        let st = StencilShape::star(1).stencil();
        let b = st.default_bindings();
        let mut k = generate(&st, &b, LayoutKind::Brick, 16, CodegenOptions::default()).unwrap();
        // Drop the final store: the verifier must reject before execution.
        let last_store = k
            .ops
            .iter()
            .rposition(|op| matches!(op, VOp::StoreRow { .. }))
            .unwrap();
        k.ops.remove(last_store);
        let mut dense = DenseGrid::cubic(16, 1);
        dense.fill_test_pattern();
        let input = BrickGrid::from_dense(&dense, BrickDims::for_simd_width(16));
        let mut output =
            BrickGrid::with_metadata(Arc::clone(input.decomp()), Arc::clone(input.info()));
        let err = run_vector_brick(&k, &input, &mut output).unwrap_err();
        let report = err.report().expect("structured report");
        assert!(report.has_errors());
        assert!(!report
            .with_code(brick_lint::LintCode::IncompleteStores)
            .is_empty());
    }

    #[test]
    fn trace_geometry_mismatch_rejected() {
        let st = StencilShape::star(1).stencil();
        let b = st.default_bindings();
        let k = generate(&st, &b, LayoutKind::Brick, 16, CodegenOptions::default()).unwrap();
        let geom = TraceGeometry::array((16, 16, 16), 1, BrickDims::for_simd_width(16));
        let mut sink = CountingSink::default();
        assert!(matches!(
            trace_vector_block(&k, &geom, 0, &mut sink),
            Err(VmError::Mismatch(_))
        ));
        let bgeom = {
            let dense = DenseGrid::cubic(16, 1);
            let input = BrickGrid::from_dense(&dense, BrickDims::for_simd_width(16));
            TraceGeometry::brick(Arc::new(input.nav().clone()))
        };
        assert!(matches!(
            trace_vector_block(&k, &bgeom, usize::MAX, &mut sink),
            Err(VmError::Mismatch(_))
        ));
    }

    #[test]
    fn layout_mismatch_rejected() {
        let st = StencilShape::star(1).stencil();
        let b = st.default_bindings();
        let k = generate(&st, &b, LayoutKind::Array, 16, CodegenOptions::default()).unwrap();
        let mut dense = DenseGrid::cubic(16, 1);
        dense.fill_test_pattern();
        let input = BrickGrid::from_dense(&dense, BrickDims::for_simd_width(16));
        let mut output =
            BrickGrid::with_metadata(Arc::clone(input.decomp()), Arc::clone(input.info()));
        assert!(matches!(
            run_vector_brick(&k, &input, &mut output),
            Err(VmError::Mismatch(_))
        ));
    }

    #[test]
    fn trace_counts_match_kernel_stats() {
        let st = StencilShape::star(2).stencil();
        let b = st.default_bindings();
        let k = generate(&st, &b, LayoutKind::Brick, 16, CodegenOptions::default()).unwrap();
        let dense = DenseGrid::cubic(16, 2);
        let input = BrickGrid::from_dense(&dense, BrickDims::for_simd_width(16));
        let geom = TraceGeometry::brick(Arc::new(input.nav().clone()));
        let mut sink = CountingSink::default();
        for i in 0..geom.num_blocks() {
            trace_vector_block(&k, &geom, i, &mut sink).unwrap();
        }
        let blocks = geom.num_blocks() as u64;
        assert_eq!(sink.loads, k.stats.loads as u64 * blocks);
        assert_eq!(sink.stores, k.stats.stores as u64 * blocks);
        // partial edge loads: trace bytes equal the kernel's own account
        assert_eq!(sink.load_bytes, k.loaded_bytes() * blocks);
        assert!(sink.load_bytes < sink.loads * 16 * 8);
        assert_eq!(sink.store_bytes, sink.stores * 16 * 8);
    }

    #[test]
    fn brick_trace_addresses_are_slab_aligned_vectors() {
        let st = StencilShape::star(1).stencil();
        let b = st.default_bindings();
        let k = generate(&st, &b, LayoutKind::Brick, 16, CodegenOptions::default()).unwrap();
        let dense = DenseGrid::cubic(16, 1);
        let input = BrickGrid::from_dense(&dense, BrickDims::for_simd_width(16));
        let geom = TraceGeometry::brick(Arc::new(input.nav().clone()));
        let mut sink = RecordingSink::default();
        trace_vector_block(&k, &geom, 0, &mut sink).unwrap();
        for (is_store, addr, bytes) in &sink.events {
            if *is_store || *bytes == 16 * 8 {
                assert_eq!(addr % (16 * 8), 0, "full rows are row-aligned");
            } else {
                // narrowed edge load: at most the stencil reach in lanes
                assert!(*bytes <= 8, "edge load of {bytes} bytes");
            }
        }
    }

    #[test]
    fn array_trace_store_addresses_distinct_per_row() {
        let st = StencilShape::star(1).stencil();
        let b = st.default_bindings();
        let k = generate(&st, &b, LayoutKind::Array, 16, CodegenOptions::default()).unwrap();
        let geom = TraceGeometry::array((16, 16, 16), 1, BrickDims::for_simd_width(16));
        let mut sink = RecordingSink::default();
        trace_vector_block(&k, &geom, 0, &mut sink).unwrap();
        let stores: Vec<u64> = sink
            .events
            .iter()
            .filter(|(s, _, _)| *s)
            .map(|(_, a, _)| *a)
            .collect();
        assert_eq!(stores.len(), 16);
        let mut sorted = stores.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 16);
        // all stores land in the output allocation
        assert!(stores.iter().all(|a| *a >= geom.out_base));
    }

    #[test]
    fn multi_iteration_sweep_stays_finite() {
        // ping-pong two brick grids for several sweeps (as the examples do)
        let st = StencilShape::star(1).stencil();
        let b = brick_dsl::CoeffBindings::new()
            .bind("c0", 0.4)
            .bind("c1", 0.1);
        let k = generate(&st, &b, LayoutKind::Brick, 16, CodegenOptions::default()).unwrap();
        let mut dense = DenseGrid::cubic(16, 1);
        dense.fill_test_pattern();
        let mut a = BrickGrid::from_dense(&dense, BrickDims::for_simd_width(16));
        let mut bgrid = BrickGrid::with_metadata(Arc::clone(a.decomp()), Arc::clone(a.info()));
        for _ in 0..4 {
            run_vector_brick(&k, &a, &mut bgrid).unwrap();
            std::mem::swap(&mut a, &mut bgrid);
        }
        let sum = a.to_dense().interior_sum();
        assert!(sum.is_finite());
    }
}
