//! Fused-row fast path: output rows evaluated straight from the grid.
//!
//! The step machine ([`super::Plan::exec_block`]) materializes every
//! intermediate IR register as a row in an in-memory register file. For
//! low-arithmetic kernels (the 7-point star moves ~13 rows through the
//! file per output row it stores) that movement — plus the per-step
//! dispatch and the per-row neighbour resolution — dominates the wall
//! time, and a SIMD backend that only accelerates the arithmetic steps
//! barely moves the total. This module removes the register file from the
//! hot loop entirely:
//!
//! 1. **Symbolic analysis** ([`fuse`], compile time): the verified IR is
//!    re-executed over *symbolic* register values. A full-row load is the
//!    symbol `Row(rx, ry, rz)`; a `ShiftX` whose edge row provably covers
//!    the wrapped lanes becomes `Off(ry, rz, dx)` — lane `i` reads grid
//!    element `x0 + i + dx`, with no edge row at runtime; arithmetic
//!    builds an expression tree over those leaves. Any op the analysis
//!    cannot prove equivalent (an edge row consumed directly, a shift of
//!    a computed row as the scatter strategy emits, …) aborts fusion and
//!    the plan falls back to the step machine — fusion is an optimization,
//!    never a semantics change.
//! 2. **Tape linearization**: each stored tree is flattened to a short
//!    accumulator program ([`TapeOp`]) over *taps* — the distinct grid
//!    rows the tree reads. Operand order of every `Add`/`Mul`/`Fma` is
//!    preserved exactly (left/right variants, a tiny value stack for
//!    two-sided subtrees), so each output lane computes the identical
//!    floating-point expression the interpreter does: the fused path
//!    stays bit-identical to the oracle (ULP bound 0).
//! 3. **Tap pre-resolution**: for brick layouts every tap's neighbour
//!    table index and in-brick offset are computed here, once; per block
//!    the executor does one table read and one multiply-add per tap —
//!    no `div_euclid` chains in the hot loop. Array taps collapse to a
//!    single stride delta per run ([`Tap`] is layout-independent; the
//!    executors in `crate::exec` own the stride math).
//!
//! Everything in this module is safe code. The preconditions the SIMD
//! evaluators in [`super::avx2`]/[`super::neon`] rely on are discharged
//! *statically* by the brick-safe prover ([`super::safe`]) at
//! `Plan::compile` time (BS001–BS011), plus one cheap per-run premise
//! check in `crate::exec` (slab length and adjacency-table validity);
//! [`check_taps`]/[`check_tape`] remain as the debug-build and test-entry
//! restatements of the same conditions. The portable evaluator below is
//! ordinary checked Rust and doubles as the reference for what a tape
//! computes.

use brick_codegen::{LayoutKind, VOp, VectorKernel};
use brick_core::{neighbor_index, BrickDims, NO_BRICK};

/// Widest vector width the fixed row buffers accommodate (the generated
/// kernels use 16/32/64).
pub(crate) const MAX_W: usize = 64;

/// Most taps a fused kernel may read (a 5×5×5 cube kernel needs 125).
pub(crate) const MAX_TAPS: usize = 256;

/// Deepest value stack a row tape may use; trees needing more bail out
/// of fusion at compile time.
pub(crate) const MAX_STACK: usize = 4;

/// Longest tape per output row; guards against pathological expression
/// DAGs re-expanding into huge trees.
const MAX_TAPE: usize = 1024;

/// A distinct input row a fused row program reads, in kernel-relative
/// coordinates (layout-independent).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Tap {
    /// Lane `i` reads grid element `(x0 + rx·w + i, y0 + ry, z0 + rz)`.
    Direct { rx: i8, ry: i16, rz: i16 },
    /// Lane `i` reads grid element `(x0 + i + dx, y0 + ry, z0 + rz)` —
    /// a `ShiftX` folded into its loads, `0 < |dx| < w`.
    Shifted { ry: i16, rz: i16, dx: i16 },
}

/// A [`Tap`] pre-resolved against the brick adjacency geometry: the
/// 27-entry neighbour index (or indices) and the in-brick row offset.
#[derive(Debug, Clone, Copy)]
pub(crate) enum BrickTap {
    /// Whole row in one brick.
    Direct { nidx: usize, off: usize },
    /// Shifted row spanning the home-column brick and its x-neighbour
    /// (both at the same `(ry, rz)` row offset `off`).
    Split {
        hnidx: usize,
        nnidx: usize,
        off: usize,
        dx: isize,
    },
}

/// A tap resolved to concrete bases in the input slab, per block/tile.
#[derive(Debug, Clone, Copy)]
pub(crate) enum RTap {
    /// Lane `i` reads `raw[base + i]`.
    Direct { base: usize },
    /// Lane `i` reads `raw[home + i + dx]` when `0 ≤ i + dx < w`, else
    /// the wrapped lane `i + dx ∓ w` of the `nbr` row.
    Split { home: usize, nbr: usize, dx: isize },
}

/// One instruction of a row program. `acc` is the current row value; tap
/// operands load lanes through the resolved [`RTap`] table. The left/
/// right and reversed variants preserve the IR's operand order exactly —
/// the bit-identity contract.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum TapeOp {
    /// `acc = tap`.
    Set { tap: u16 },
    /// `acc = acc + tap` (tap was the right operand).
    AddTap { tap: u16 },
    /// `acc = tap + acc` (tap was the left operand).
    TapAdd { tap: u16 },
    /// `acc = acc · c`.
    Mul { c: f64 },
    /// `acc = fma(tap, c, acc)`.
    Fma { tap: u16, c: f64 },
    /// `acc = fma(acc, c, tap)`.
    FmaRev { tap: u16, c: f64 },
    /// Push `acc` onto the value stack.
    Push,
    /// `acc = pop() + acc` (popped value was the left operand).
    PopAdd,
    /// `acc = fma(acc, c, pop())`.
    PopFma { c: f64 },
}

impl TapeOp {
    /// The tap this op loads, if any (for the executors' bounds checks).
    pub(crate) fn tap(&self) -> Option<u16> {
        match *self {
            TapeOp::Set { tap }
            | TapeOp::AddTap { tap }
            | TapeOp::TapAdd { tap }
            | TapeOp::Fma { tap, .. }
            | TapeOp::FmaRev { tap, .. } => Some(tap),
            _ => None,
        }
    }
}

/// One output row: where it goes and the tape that computes it.
#[derive(Debug, Clone)]
pub(crate) struct RowProg {
    /// Home-block y row (in `0..by`).
    pub(crate) ry: u16,
    /// Home-block z row (in `0..bz`).
    pub(crate) rz: u16,
    /// Flat offset of the row inside a brick (`row_offset(ry, rz)`).
    pub(crate) out_off: usize,
    /// The accumulator program.
    pub(crate) tape: Vec<TapeOp>,
    /// Maximum value-stack depth of `tape` (0 for straight chains), fixed
    /// at linearization; lets block evaluators pick a stackless
    /// instantiation without re-walking the tape per row.
    pub(crate) max_sp: usize,
    /// Chain form of `tape` when it is a straight accumulation
    /// (`Set · {Fma,AddTap,TapAdd}* · Mul?`) — the shape every star
    /// stencil linearizes to. SIMD backends evaluate this with a uniform
    /// tap loop instead of the general tape interpreter, which keeps the
    /// row accumulators register-resident (the interpreter's many-armed
    /// dispatch forces them onto the stack).
    pub(crate) fast: Option<FastRow>,
}

/// Straight accumulation chain: `acc = tap[first]`, then
/// `acc = fma(tap, c, acc)` per entry, then optionally `acc *= scale`.
/// Additions ride as `c = 1.0` entries: `fma(t, 1.0, acc)` rounds once
/// with `t·1.0` exact, so it is bit-identical to the tape's `acc + t` /
/// `t + acc` for all non-NaN inputs (addition is commutative in IEEE-754
/// up to NaN payload selection).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct FastRow {
    /// Tap that seeds the accumulator.
    pub(crate) first: u16,
    /// `(tap, coefficient)` accumulation entries, in tape order.
    pub(crate) fmas: Vec<(u16, f64)>,
    /// Trailing scale, if the tape ends in a `Mul`.
    pub(crate) scale: Option<f64>,
}

/// Extract the chain form from a finished tape, if it has the shape.
/// `pub(crate)` so the brick-safe prover can recompute it and compare
/// against the stored form (obligation BS011).
pub(crate) fn fast_row(tape: &[TapeOp]) -> Option<FastRow> {
    let Some((&TapeOp::Set { tap: first }, rest)) = tape.split_first() else {
        return None;
    };
    let mut fmas = Vec::with_capacity(rest.len());
    let mut scale = None;
    for (i, op) in rest.iter().enumerate() {
        match *op {
            TapeOp::Fma { tap, c } => fmas.push((tap, c)),
            TapeOp::AddTap { tap } | TapeOp::TapAdd { tap } => fmas.push((tap, 1.0)),
            // a Mul is only chain-compatible as the final op
            TapeOp::Mul { c } if i == rest.len() - 1 => scale = Some(c),
            _ => return None,
        }
    }
    Some(FastRow { first, fmas, scale })
}

/// A fully fused kernel: the tap table and one program per output row.
/// Fields are crate-visible so the brick-safe prover can walk (and, in
/// its mutation harness, perturb) the program; external code goes through
/// the accessors.
#[derive(Debug, Clone)]
pub(crate) struct FusedKernel {
    pub(crate) taps: Vec<Tap>,
    /// Parallel to `taps`; populated only for brick-layout kernels.
    pub(crate) brick_taps: Vec<BrickTap>,
    pub(crate) rows: Vec<RowProg>,
}

impl FusedKernel {
    /// The tap table (layout-independent form).
    pub(crate) fn taps(&self) -> &[Tap] {
        &self.taps
    }

    /// Number of taps (the executors size their resolved tables by it).
    pub(crate) fn taps_len(&self) -> usize {
        self.taps.len()
    }

    /// The per-output-row programs.
    pub(crate) fn rows(&self) -> &[RowProg] {
        &self.rows
    }

    /// Resolve every tap against one brick's 27-neighbour row. `out` must
    /// hold [`FusedKernel::taps_len`] entries; `vol` is the brick volume.
    /// Panics on a `NO_BRICK` neighbour — unreachable for interior bricks
    /// of a decomposition whose ghost shell covers the kernel's reach
    /// (checked by `check_brick` before execution).
    pub(crate) fn resolve_brick(&self, row27: &[u32; 27], vol: usize, out: &mut [RTap]) {
        let brick = |n: usize| -> usize {
            let b = row27[n];
            assert_ne!(b, NO_BRICK, "fused tap crosses the allocated brick shell");
            b as usize * vol
        };
        for (slot, bt) in self.brick_taps.iter().enumerate() {
            out[slot] = match *bt {
                BrickTap::Direct { nidx, off } => RTap::Direct {
                    base: brick(nidx) + off,
                },
                BrickTap::Split {
                    hnidx,
                    nnidx,
                    off,
                    dx,
                } => RTap::Split {
                    home: brick(hnidx) + off,
                    nbr: brick(nnidx) + off,
                    dx,
                },
            };
        }
    }
}

/// Symbolic value of an IR register during the analysis walk.
#[derive(Debug, Clone, Copy)]
enum Sym {
    /// Full input row `(rx, ry, rz)`.
    Row { rx: i8, ry: i16, rz: i16 },
    /// Partial (edge) load: lanes `[lane0, lane0 + lanes)` hold the row,
    /// the rest are zero. Only consumable as a `ShiftX` edge operand.
    Edge {
        rx: i8,
        ry: i16,
        rz: i16,
        lane0: u16,
        lanes: u16,
    },
    /// Shifted row: lane `i` is grid element `x0 + i + dx` of `(ry, rz)`.
    Off { ry: i16, rz: i16, dx: i16 },
    /// Node in the expression arena.
    Expr(u32),
    /// Unknown (never written, or past an unfusable op).
    Opaque,
}

/// Expression-tree node. Children are symbolic *values*, so rebinding a
/// register later never invalidates a node that captured its old value.
#[derive(Debug, Clone, Copy)]
enum Node {
    /// `a + b`, operand order as in the IR.
    Add(Sym, Sym),
    /// `a · c`.
    Mul(Sym, f64),
    /// `fma(a, c, acc)` — the IR's `dst = acc + a·c`, fused.
    Fma { acc: Sym, a: Sym, c: f64 },
}

/// Try to fuse a verified kernel. `None` means "use the step machine" —
/// any IR shape the analysis cannot prove row-fusable (edge rows consumed
/// arithmetically, shifts of computed rows, out-of-range geometry, …).
pub(crate) fn fuse(kernel: &VectorKernel) -> Option<FusedKernel> {
    let w = kernel.width;
    if !(w == 16 || w == 32 || w == 64) || kernel.block.bx != w {
        return None;
    }
    let mut regs: Vec<Sym> = vec![Sym::Opaque; kernel.num_regs];
    let mut nodes: Vec<Node> = Vec::new();
    let mut taps: Vec<Tap> = Vec::new();
    let mut rows: Vec<RowProg> = Vec::new();

    // A register is a *value* operand when it holds a row, a shifted row,
    // or an expression — never a zero-filled edge or an unwritten slot.
    let value = |regs: &[Sym], r: u16| -> Option<Sym> {
        match *regs.get(r as usize)? {
            s @ (Sym::Row { .. } | Sym::Off { .. } | Sym::Expr(_)) => Some(s),
            Sym::Edge { .. } | Sym::Opaque => None,
        }
    };

    for op in &kernel.ops {
        match *op {
            VOp::LoadRow {
                dst,
                rx,
                ry,
                rz,
                lane0,
                lanes,
            } => {
                let full = lane0 == 0 && lanes as usize == w;
                *regs.get_mut(dst as usize)? = if full {
                    Sym::Row { rx, ry, rz }
                } else {
                    Sym::Edge {
                        rx,
                        ry,
                        rz,
                        lane0,
                        lanes,
                    }
                };
            }
            VOp::ShiftX { dst, src, edge, dx } => {
                let off = shift_sym(*regs.get(src as usize)?, *regs.get(edge as usize)?, dx, w)?;
                *regs.get_mut(dst as usize)? = off;
            }
            VOp::Add { dst, a, b } => {
                let node = Node::Add(value(&regs, a)?, value(&regs, b)?);
                *regs.get_mut(dst as usize)? = push_node(&mut nodes, node)?;
            }
            VOp::Mul { dst, a, coeff } => {
                let c = *kernel.coeffs.get(coeff as usize)?;
                let node = Node::Mul(value(&regs, a)?, c);
                *regs.get_mut(dst as usize)? = push_node(&mut nodes, node)?;
            }
            VOp::Fma { dst, acc, a, coeff } => {
                let c = *kernel.coeffs.get(coeff as usize)?;
                let node = Node::Fma {
                    acc: value(&regs, acc)?,
                    a: value(&regs, a)?,
                    c,
                };
                *regs.get_mut(dst as usize)? = push_node(&mut nodes, node)?;
            }
            VOp::StoreRow { src, ry, rz } => {
                let (ry, rz) = (usize::try_from(ry).ok()?, usize::try_from(rz).ok()?);
                if ry >= kernel.block.by || rz >= kernel.block.bz {
                    return None;
                }
                let mut tape = Vec::new();
                let mut depth = Depth::default();
                linearize(value(&regs, src)?, &nodes, &mut taps, &mut tape, &mut depth)?;
                if depth.max > MAX_STACK || tape.len() > MAX_TAPE {
                    return None;
                }
                let fast = fast_row(&tape);
                rows.push(RowProg {
                    ry: ry as u16,
                    rz: rz as u16,
                    out_off: kernel.block.row_offset(ry, rz),
                    tape,
                    max_sp: depth.max,
                    fast,
                });
            }
        }
        if taps.len() > MAX_TAPS {
            return None;
        }
    }
    if rows.is_empty() {
        return None;
    }
    let brick_taps = if kernel.layout == LayoutKind::Brick {
        let mut v = Vec::with_capacity(taps.len());
        for t in &taps {
            v.push(brick_tap(t, kernel.block)?);
        }
        v
    } else {
        Vec::new()
    };
    Some(FusedKernel {
        taps,
        brick_taps,
        rows,
    })
}

/// Fold a `ShiftX` into a shifted-row symbol, iff the edge row provably
/// supplies exactly the wrapped lanes. `dst[i] = src[i+dx]` in range;
/// for `dx > 0` lanes `[w-d, w)` wrap to `edge[0..d)`, which must equal
/// grid lanes `[0, d)` of the `+x` neighbour row — i.e. an edge load at
/// `rx = +1` covering `[0, d)` (mirrored for `dx < 0`).
fn shift_sym(src: Sym, edge: Sym, dx: i16, w: usize) -> Option<Sym> {
    let Sym::Row { rx: 0, ry, rz } = src else {
        return None;
    };
    let Sym::Edge {
        rx: erx,
        ry: ery,
        rz: erz,
        lane0,
        lanes,
    } = edge
    else {
        return None;
    };
    if (ery, erz) != (ry, rz) || dx == 0 {
        return None;
    }
    let d = dx.unsigned_abs() as usize;
    if d >= w {
        return None;
    }
    let (lane0, lanes) = (lane0 as usize, lanes as usize);
    let covered = if dx > 0 {
        erx == 1 && lane0 == 0 && lanes >= d
    } else {
        erx == -1 && lane0 <= w - d && lane0 + lanes >= w
    };
    covered.then_some(Sym::Off { ry, rz, dx })
}

/// Intern an expression node, bailing past `u32` ids (never in practice).
fn push_node(nodes: &mut Vec<Node>, node: Node) -> Option<Sym> {
    let id = u32::try_from(nodes.len()).ok()?;
    nodes.push(node);
    Some(Sym::Expr(id))
}

/// Value-stack depth bookkeeping during linearization.
#[derive(Default)]
struct Depth {
    cur: usize,
    max: usize,
}

/// Intern a leaf symbol as a tap id.
fn tap_of(taps: &mut Vec<Tap>, leaf: Sym) -> Option<u16> {
    let t = match leaf {
        Sym::Row { rx, ry, rz } => Tap::Direct { rx, ry, rz },
        Sym::Off { ry, rz, dx } => Tap::Shifted { ry, rz, dx },
        _ => return None,
    };
    let idx = match taps.iter().position(|&u| u == t) {
        Some(i) => i,
        None => {
            taps.push(t);
            taps.len() - 1
        }
    };
    u16::try_from(idx).ok()
}

fn is_leaf(s: Sym) -> bool {
    matches!(s, Sym::Row { .. } | Sym::Off { .. })
}

/// Flatten an expression tree into a [`TapeOp`] program, preserving the
/// operand order of every node (see the bit-identity argument in the
/// module docs). Two-sided nodes (both children computed) evaluate the
/// left child first, park it on the value stack, and combine — exactly
/// the tree value, no re-association.
fn linearize(
    sym: Sym,
    nodes: &[Node],
    taps: &mut Vec<Tap>,
    tape: &mut Vec<TapeOp>,
    depth: &mut Depth,
) -> Option<()> {
    if tape.len() > MAX_TAPE {
        return None;
    }
    match sym {
        Sym::Row { .. } | Sym::Off { .. } => {
            let tap = tap_of(taps, sym)?;
            tape.push(TapeOp::Set { tap });
        }
        Sym::Expr(id) => match *nodes.get(id as usize)? {
            Node::Add(l, r) => {
                if is_leaf(r) {
                    linearize(l, nodes, taps, tape, depth)?;
                    tape.push(TapeOp::AddTap {
                        tap: tap_of(taps, r)?,
                    });
                } else if is_leaf(l) {
                    linearize(r, nodes, taps, tape, depth)?;
                    tape.push(TapeOp::TapAdd {
                        tap: tap_of(taps, l)?,
                    });
                } else {
                    linearize(l, nodes, taps, tape, depth)?;
                    tape.push(TapeOp::Push);
                    depth.cur += 1;
                    depth.max = depth.max.max(depth.cur);
                    linearize(r, nodes, taps, tape, depth)?;
                    tape.push(TapeOp::PopAdd);
                    depth.cur -= 1;
                }
            }
            Node::Mul(a, c) => {
                linearize(a, nodes, taps, tape, depth)?;
                tape.push(TapeOp::Mul { c });
            }
            Node::Fma { acc, a, c } => {
                if is_leaf(a) {
                    linearize(acc, nodes, taps, tape, depth)?;
                    tape.push(TapeOp::Fma {
                        tap: tap_of(taps, a)?,
                        c,
                    });
                } else if is_leaf(acc) {
                    linearize(a, nodes, taps, tape, depth)?;
                    tape.push(TapeOp::FmaRev {
                        tap: tap_of(taps, acc)?,
                        c,
                    });
                } else {
                    linearize(acc, nodes, taps, tape, depth)?;
                    tape.push(TapeOp::Push);
                    depth.cur += 1;
                    depth.max = depth.max.max(depth.cur);
                    linearize(a, nodes, taps, tape, depth)?;
                    tape.push(TapeOp::PopFma { c });
                    depth.cur -= 1;
                }
            }
        },
        Sym::Edge { .. } | Sym::Opaque => return None,
    }
    Some(())
}

/// Split a relative row coordinate into (brick step, local row); fusable
/// only one brick out (the verifier's reach-vs-ghost check already bounds
/// real kernels to that).
fn split_axis(r: i16, extent: usize) -> Option<(i32, usize)> {
    let e = i16::try_from(extent).ok()?;
    let (s, l) = (r.div_euclid(e), r.rem_euclid(e));
    (-1..=1).contains(&s).then_some((s as i32, l as usize))
}

/// Pre-resolve one tap against the brick geometry.
fn brick_tap(t: &Tap, b: BrickDims) -> Option<BrickTap> {
    match *t {
        Tap::Direct { rx, ry, rz } => {
            if !(-1..=1).contains(&rx) {
                return None;
            }
            let (sy, ly) = split_axis(ry, b.by)?;
            let (sz, lz) = split_axis(rz, b.bz)?;
            Some(BrickTap::Direct {
                nidx: neighbor_index(rx as i32, sy, sz),
                off: b.row_offset(ly, lz),
            })
        }
        Tap::Shifted { ry, rz, dx } => {
            let (sy, ly) = split_axis(ry, b.by)?;
            let (sz, lz) = split_axis(rz, b.bz)?;
            let sx = if dx > 0 { 1 } else { -1 };
            Some(BrickTap::Split {
                hnidx: neighbor_index(0, sy, sz),
                nnidx: neighbor_index(sx, sy, sz),
                off: b.row_offset(ly, lz),
                dx: dx as isize,
            })
        }
    }
}

/// Copy one tap row into `buf[..w]` (the portable evaluator's load).
fn load_tap(rt: &RTap, raw: &[f64], w: usize, buf: &mut [f64]) {
    match *rt {
        RTap::Direct { base } => buf[..w].copy_from_slice(&raw[base..base + w]),
        RTap::Split { home, nbr, dx } => {
            if dx > 0 {
                let d = dx as usize;
                buf[..w - d].copy_from_slice(&raw[home + d..home + w]);
                buf[w - d..w].copy_from_slice(&raw[nbr..nbr + d]);
            } else {
                let d = (-dx) as usize;
                buf[..d].copy_from_slice(&raw[nbr + w - d..nbr + w]);
                buf[d..w].copy_from_slice(&raw[home..home + w - d]);
            }
        }
    }
}

/// Evaluate one row program in safe code — the `Auto` floor's fused
/// executor and the reference semantics of a tape. Panics (cleanly, via
/// slice checks) on malformed input; `Plan::compile` only produces tapes
/// whose taps, stack depth, and widths are in range.
// `*a = *t + *a`, not `*a += *t`: the tap is the *left* addend and the
// operand order is part of the bit-identity contract with the interpreter
// (NaN payload propagation follows the first operand).
#[allow(clippy::assign_op_pattern)]
pub(crate) fn eval_row_portable(
    tape: &[TapeOp],
    rtaps: &[RTap],
    raw: &[f64],
    w: usize,
    out: &mut [f64],
) {
    assert!(w <= MAX_W, "width {w} exceeds fused row buffer");
    assert_eq!(out.len(), w, "output row length mismatch");
    let mut acc = [0.0f64; MAX_W];
    let mut tbuf = [0.0f64; MAX_W];
    let mut stack = [[0.0f64; MAX_W]; MAX_STACK];
    let mut sp = 0usize;
    for op in tape {
        if let Some(t) = op.tap() {
            load_tap(&rtaps[t as usize], raw, w, &mut tbuf);
        }
        match *op {
            TapeOp::Set { .. } => acc[..w].copy_from_slice(&tbuf[..w]),
            TapeOp::AddTap { .. } => {
                for i in 0..w {
                    acc[i] += tbuf[i];
                }
            }
            TapeOp::TapAdd { .. } => {
                for (a, t) in acc[..w].iter_mut().zip(&tbuf[..w]) {
                    *a = *t + *a;
                }
            }
            TapeOp::Mul { c } => {
                for a in acc[..w].iter_mut() {
                    *a *= c;
                }
            }
            TapeOp::Fma { c, .. } => {
                for i in 0..w {
                    acc[i] = tbuf[i].mul_add(c, acc[i]);
                }
            }
            TapeOp::FmaRev { c, .. } => {
                for i in 0..w {
                    acc[i] = acc[i].mul_add(c, tbuf[i]);
                }
            }
            TapeOp::Push => {
                stack[sp][..w].copy_from_slice(&acc[..w]);
                sp += 1;
            }
            TapeOp::PopAdd => {
                sp -= 1;
                for (a, t) in acc[..w].iter_mut().zip(&stack[sp][..w]) {
                    *a = *t + *a;
                }
            }
            TapeOp::PopFma { c } => {
                sp -= 1;
                for i in 0..w {
                    acc[i] = acc[i].mul_add(c, stack[sp][i]);
                }
            }
        }
    }
    out.copy_from_slice(&acc[..w]);
}

/// Validate everything a SIMD tape evaluator dereferences: every tap id
/// resolves, every tap row lies inside `raw`, shift distances are in
/// `(0, w)`, and the value stack stays within [`MAX_STACK`]. Called by
/// the unsafe backends before any pointer is formed; panics on violation
/// (unreachable for programs built by [`fuse`] over verified kernels).
/// Returns the tape's maximum value-stack depth so the evaluators can
/// skip materializing a stack for the (common) straight-chain tapes.
pub(crate) fn check_tape(tape: &[TapeOp], rtaps: &[RTap], raw_len: usize, w: usize) -> usize {
    let mut sp = 0usize;
    let mut max_sp = 0usize;
    for op in tape {
        if let Some(t) = op.tap() {
            match rtaps[t as usize] {
                RTap::Direct { base } => {
                    assert!(
                        base + w <= raw_len,
                        "tap row {base}+{w} escapes slab {raw_len}"
                    );
                }
                RTap::Split { home, nbr, dx } => {
                    assert!(
                        home + w <= raw_len,
                        "tap row {home}+{w} escapes slab {raw_len}"
                    );
                    assert!(
                        nbr + w <= raw_len,
                        "tap row {nbr}+{w} escapes slab {raw_len}"
                    );
                    assert!(dx != 0 && dx.unsigned_abs() < w, "shift {dx} out of range");
                }
            }
        }
        match op {
            TapeOp::Push => {
                sp += 1;
                max_sp = max_sp.max(sp);
                assert!(sp <= MAX_STACK, "tape value stack overflow");
            }
            TapeOp::PopAdd | TapeOp::PopFma { .. } => {
                sp = sp.checked_sub(1).expect("tape value stack underflow");
            }
            _ => {}
        }
    }
    max_sp
}

/// Validate a resolved tap table against the input slab: every row a
/// SIMD evaluator may load lies inside `raw`, and every shift distance is
/// in `(0, w)`. This restates, against one concrete block, what the
/// brick-safe prover ([`super::safe`]) establishes statically for *all*
/// blocks (BS001–BS003) given the per-run premise checks in `crate::exec`
/// — so the release hot path no longer runs it; the SIMD `eval_block`s
/// keep it as a debug-build assertion, and tests use it as the oracle for
/// mutation-survivor harmlessness. Panics on violation.
pub(crate) fn check_taps(rtaps: &[RTap], raw_len: usize, w: usize) {
    for rt in rtaps {
        match *rt {
            RTap::Direct { base } => {
                assert!(
                    base + w <= raw_len,
                    "tap row {base}+{w} escapes slab {raw_len}"
                );
            }
            RTap::Split { home, nbr, dx } => {
                assert!(
                    home + w <= raw_len,
                    "tap row {home}+{w} escapes slab {raw_len}"
                );
                assert!(
                    nbr + w <= raw_len,
                    "tap row {nbr}+{w} escapes slab {raw_len}"
                );
                assert!(dx != 0 && dx.unsigned_abs() < w, "shift {dx} out of range");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brick_codegen::{generate, CodegenOptions, Strategy};
    use brick_dsl::shape::StencilShape;

    fn kernel(shape: StencilShape, layout: LayoutKind, strategy: Strategy) -> VectorKernel {
        let st = shape.stencil();
        let b = st.default_bindings();
        let opts = CodegenOptions {
            strategy,
            ..CodegenOptions::default()
        };
        generate(&st, &b, layout, 32, opts).unwrap()
    }

    #[test]
    fn star_gather_kernels_fuse_with_one_row_per_store() {
        for shape in [StencilShape::star(1), StencilShape::star(4)] {
            for layout in [LayoutKind::Brick, LayoutKind::Array] {
                let k = kernel(shape, layout, Strategy::Gather);
                let f = fuse(&k).expect("gather kernels fuse");
                let stores = k
                    .ops
                    .iter()
                    .filter(|op| matches!(op, VOp::StoreRow { .. }))
                    .count();
                assert_eq!(f.rows().len(), stores, "{shape} {layout}");
                assert!(f.taps_len() > 0 && f.taps_len() <= MAX_TAPS);
                for rp in f.rows() {
                    assert!(!rp.tape.is_empty());
                    check_tape(&rp.tape, &resolve_identity(&f), usize::MAX / 2, k.width);
                }
            }
        }
    }

    /// Stand-in resolution (base 0 everywhere) so `check_tape`'s tap-id
    /// and stack-discipline checks can run without a grid.
    fn resolve_identity(f: &FusedKernel) -> Vec<RTap> {
        f.taps()
            .iter()
            .map(|t| match *t {
                Tap::Direct { .. } => RTap::Direct { base: 0 },
                Tap::Shifted { dx, .. } => RTap::Split {
                    home: 0,
                    nbr: 0,
                    dx: dx as isize,
                },
            })
            .collect()
    }

    // Diagnostic: print fused-program shape for the bench kernel.
    // `cargo test -p brick-vm --release -- --ignored --nocapture fused_shape`
    #[test]
    #[ignore]
    fn fused_shape_report() {
        for shape in StencilShape::paper_suite() {
            for layout in [LayoutKind::Brick, LayoutKind::Array] {
                let k = kernel(shape, layout, Strategy::Gather);
                if let Some(f) = fuse(&k) {
                    let ops: usize = f.rows().iter().map(|r| r.tape.len()).sum();
                    println!(
                        "{shape} {layout:?}: taps={} rows={} ops/row={:.1}",
                        f.taps_len(),
                        f.rows().len(),
                        ops as f64 / f.rows().len() as f64
                    );
                }
            }
        }
    }

    #[test]
    fn fusion_never_panics_across_the_paper_suite() {
        for shape in StencilShape::paper_suite() {
            for layout in [LayoutKind::Brick, LayoutKind::Array] {
                for strategy in [Strategy::Gather, Strategy::Scatter] {
                    let k = kernel(shape, layout, strategy);
                    // Some shapes fuse, some (scatter pipelines) bail to
                    // the step machine; both outcomes are valid. What is
                    // not valid is a panic or a malformed program.
                    if let Some(f) = fuse(&k) {
                        let rt = resolve_identity(&f);
                        for rp in f.rows() {
                            check_tape(&rp.tape, &rt, usize::MAX / 2, k.width);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn tape_evaluates_the_exact_expression() {
        // acc = fma(t1, c, t0 + t1) with operand order preserved:
        // portable eval vs a hand scalar evaluation, bit for bit.
        let w = 16;
        let raw: Vec<f64> = (0..2 * w).map(|i| 0.37 * (i as f64) - 2.0).collect();
        let rtaps = [RTap::Direct { base: 0 }, RTap::Direct { base: w }];
        let tape = [
            TapeOp::Set { tap: 0 },
            TapeOp::AddTap { tap: 1 },
            TapeOp::Fma { tap: 1, c: 0.125 },
            TapeOp::Mul { c: -3.0 },
        ];
        let mut out = vec![0.0; w];
        eval_row_portable(&tape, &rtaps, &raw, w, &mut out);
        for i in 0..w {
            let (t0, t1) = (raw[i], raw[w + i]);
            let want = t1.mul_add(0.125, t0 + t1) * -3.0;
            assert_eq!(out[i].to_bits(), want.to_bits(), "lane {i}");
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // index i mirrors the lane math under test
    fn split_taps_read_across_the_seam() {
        let w = 16;
        // home row = 0..16, neighbour row = 100..116
        let mut raw = vec![0.0; 2 * w];
        for i in 0..w {
            raw[i] = i as f64;
            raw[w + i] = 100.0 + i as f64;
        }
        for dx in [-3isize, -1, 1, 3] {
            let rtaps = [RTap::Split {
                home: 0,
                nbr: w,
                dx,
            }];
            let tape = [TapeOp::Set { tap: 0 }];
            let mut out = vec![0.0; w];
            eval_row_portable(&tape, &rtaps, &raw, w, &mut out);
            for i in 0..w {
                let j = i as isize + dx;
                let want = if (0..w as isize).contains(&j) {
                    j as f64
                } else if j >= w as isize {
                    100.0 + (j - w as isize) as f64
                } else {
                    100.0 + (j + w as isize) as f64
                };
                assert_eq!(out[i], want, "dx={dx} lane {i}");
            }
        }
    }

    #[test]
    fn check_tape_rejects_escaping_rows_and_bad_stacks() {
        let tape = [TapeOp::Set { tap: 0 }];
        let rtaps = [RTap::Direct { base: 100 }];
        check_tape(&tape, &rtaps, 116, 16); // exactly fits
        assert!(std::panic::catch_unwind(|| check_tape(&tape, &rtaps, 115, 16)).is_err());
        let underflow = [TapeOp::PopAdd];
        assert!(std::panic::catch_unwind(|| check_tape(&underflow, &rtaps, 116, 16)).is_err());
    }
}
