//! Step-machine obligations: every register-file access of the lowered
//! [`Step`] program stays inside the file [`Plan::regs_len`] sizes, shift
//! distances are representable, aliased shifts go through scratch, and
//! stores land inside the home block.
//!
//! [`Plan::regs_len`]: super::super::Plan::regs_len

use brick_core::BrickDims;
use brick_lint::LintCode;

use super::super::plan::Step;
use super::Prover;

/// A row base offset must be row-aligned and leave a whole row inside
/// the register file (obligation BS009).
fn row_in_file(p: &mut Prover, i: usize, what: &str, off: usize, w: usize, regs_len: usize) {
    p.obligation(
        off.is_multiple_of(w) && off + w <= regs_len,
        LintCode::UnsafeRegRowEscapesFile,
        Some(i),
        || format!("step {i}: {what} row offset {off} escapes the {regs_len}-slot register file (width {w})"),
    );
}

/// Discharge the step-machine obligations over `steps`.
pub(crate) fn prove_steps(
    p: &mut Prover,
    w: usize,
    num_regs: usize,
    block: BrickDims,
    steps: &[Step],
) {
    let regs_len = (num_regs + 1) * w;
    // BS008: the SIMD row primitives (add/mul/fma over 4-lane AVX2 /
    // 2-lane NEON chunks) require the width to chunk evenly; w % 4 == 0
    // covers both, and the generated widths {16, 32, 64} all satisfy it.
    p.obligation(
        w > 0 && w.is_multiple_of(4),
        LintCode::UnsafeLaneGeometry,
        None,
        || format!("vector width {w} is not a positive multiple of 4 lanes"),
    );
    for (i, step) in steps.iter().enumerate() {
        match *step {
            Step::Load {
                dst0, lane0, lanes, ..
            } => {
                row_in_file(p, i, "load destination", dst0, w, regs_len);
                p.obligation(
                    lanes >= 1 && lane0 + lanes <= w,
                    LintCode::UnsafeRegRowEscapesFile,
                    Some(i),
                    || format!("step {i}: load lanes {lane0}+{lanes} escape width {w}"),
                );
            }
            Step::Shift {
                dst0,
                src0,
                edge0,
                dx,
            } => {
                row_in_file(p, i, "shift destination", dst0, w, regs_len);
                row_in_file(p, i, "shift source", src0, w, regs_len);
                row_in_file(p, i, "shift edge", edge0, w, regs_len);
                p.obligation(
                    dx != 0 && dx.unsigned_abs() < w,
                    LintCode::UnsafeShiftInvalid,
                    Some(i),
                    || format!("step {i}: shift distance {dx} invalid for width {w}"),
                );
                // The two-copy shift clobbers dst before it finishes
                // reading src/edge; aliasing must have been routed
                // through ShiftScratch at lowering.
                p.obligation(
                    dst0 != src0 && dst0 != edge0,
                    LintCode::UnsafeShiftInvalid,
                    Some(i),
                    || format!("step {i}: aliased shift (dst {dst0} = src {src0} / edge {edge0}) not routed through scratch"),
                );
            }
            Step::ShiftScratch {
                dst0,
                src0,
                edge0,
                dx,
            } => {
                row_in_file(p, i, "shift destination", dst0, w, regs_len);
                row_in_file(p, i, "shift source", src0, w, regs_len);
                row_in_file(p, i, "shift edge", edge0, w, regs_len);
                p.obligation(
                    dx != 0 && dx.unsigned_abs() < w,
                    LintCode::UnsafeShiftInvalid,
                    Some(i),
                    || format!("step {i}: shift distance {dx} invalid for width {w}"),
                );
                // The scratch row is the file's last row; sources inside
                // the kernel's own registers never alias it.
                let scratch0 = num_regs * w;
                p.obligation(
                    src0 != scratch0 && edge0 != scratch0,
                    LintCode::UnsafeShiftInvalid,
                    Some(i),
                    || format!("step {i}: scratch shift reads the scratch row it writes"),
                );
            }
            Step::Add { dst0, a0, b0 } => {
                row_in_file(p, i, "add destination", dst0, w, regs_len);
                row_in_file(p, i, "add left operand", a0, w, regs_len);
                row_in_file(p, i, "add right operand", b0, w, regs_len);
            }
            Step::Mul { dst0, a0, .. } => {
                row_in_file(p, i, "mul destination", dst0, w, regs_len);
                row_in_file(p, i, "mul operand", a0, w, regs_len);
            }
            Step::Fma { dst0, acc0, a0, .. } => {
                row_in_file(p, i, "fma destination", dst0, w, regs_len);
                row_in_file(p, i, "fma accumulator", acc0, w, regs_len);
                row_in_file(p, i, "fma multiplicand", a0, w, regs_len);
            }
            Step::Store { src0, ry, rz } => {
                row_in_file(p, i, "store source", src0, w, regs_len);
                // BS006: stores only target home-block rows.
                p.obligation(
                    ry >= 0 && (ry as usize) < block.by && rz >= 0 && (rz as usize) < block.bz,
                    LintCode::UnsafeStoreEscapesBlock,
                    Some(i),
                    || {
                        format!(
                            "step {i}: store row ({ry}, {rz}) outside the {}x{} home block",
                            block.by, block.bz
                        )
                    },
                );
            }
        }
    }
}
