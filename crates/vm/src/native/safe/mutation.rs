//! Mutation harness gating the brick-safe prover.
//!
//! Two guarantees, mirroring the analyzer's `tests/mutation.rs`:
//!
//! 1. **Sensitivity**: of all single-site perturbations of compiled
//!    plans — tap offsets, neighbour indices, seam splits, store
//!    targets, tape indices, stack depths, fast chains, widths, step
//!    offsets — the prover (compile-time pass plus the per-run array
//!    geometry check) must reject at least 95%.
//! 2. **Soundness of survivors**: every accepted mutant is proven
//!    *memory*-harmless against real geometry — brick survivors run the
//!    full resolve/check/evaluate path per interior brick under
//!    `catch_unwind` with the debug oracles ([`fuse::check_taps`],
//!    [`fuse::check_tape`], [`fuse::eval_row_portable`]) armed; array
//!    survivors have every tap base of every tile re-derived with the
//!    executor's own address math and bounds-checked, across
//!    proptest-generated grid geometries. brick-safe proves memory
//!    safety, not numerics — a survivor may compute wrong values (e.g.
//!    a tap shifted one row), but it must never touch memory outside
//!    its slabs.

use std::panic::{catch_unwind, AssertUnwindSafe};

use brick_codegen::{generate, CodegenOptions, LayoutKind, Strategy};
use brick_core::BrickGrid;
use brick_dsl::shape::StencilShape;
use brick_dsl::DenseGrid;

use super::super::fuse::{self, BrickTap, RTap, Tap, TapeOp, MAX_STACK, MAX_TAPS};
use super::super::plan::{Plan, Step};
use super::prove_plan;

/// A base plan plus the representative run geometry its kill criterion
/// and harmlessness oracle use (`n` interior points per axis, halo).
struct Base {
    name: &'static str,
    layout: LayoutKind,
    plan: Plan,
    n: usize,
    halo: usize,
}

fn compile(shape: StencilShape, layout: LayoutKind) -> Plan {
    let st = shape.stencil();
    let b = st.default_bindings();
    let opts = CodegenOptions {
        strategy: Strategy::Gather,
        ..CodegenOptions::default()
    };
    let k = generate(&st, &b, layout, 32, opts).unwrap();
    Plan::compile(&k).unwrap()
}

fn bases() -> Vec<Base> {
    let mk = |name, shape: StencilShape, layout, n| Base {
        name,
        layout,
        plan: compile(shape, layout),
        n,
        halo: shape.radius as usize,
    };
    vec![
        mk("star1-brick", StencilShape::star(1), LayoutKind::Brick, 32),
        mk("star4-brick", StencilShape::star(4), LayoutKind::Brick, 32),
        mk("cube1-brick", StencilShape::cube(1), LayoutKind::Brick, 32),
        mk("star1-array", StencilShape::star(1), LayoutKind::Array, 64),
    ]
}

/// Kill criterion: the compile-time prover rejects the plan, or the
/// per-run geometry premise rejects it at the base's representative
/// grid. This is exactly the pair of gates a real run passes through.
fn killed(m: &Plan, b: &Base) -> bool {
    prove_plan(m).is_err() || m.check_array_geometry(b.n, b.n, b.n, b.halo).is_err()
}

/// All single-site mutants of `base`, each labelled. Every perturbation
/// targets one field the unsafe evaluators trust; mutations whose site
/// does not exist in this plan are skipped. Exactly one mutant per base
/// is benign by construction (see its label) — kept to show the
/// survivor-harmlessness oracle has teeth.
fn mutants_of(base: &Base) -> Vec<(String, Plan)> {
    let p = &base.plan;
    let mut out: Vec<(String, Plan)> = Vec::new();
    let f = p.fused.as_ref().expect("gather bases fuse");
    let vol = p.block.volume();
    let w = p.width;
    let ntaps = f.taps.len() as u16;

    // --- brick-tap killers (brick layouts only) ---
    if let Some(i) = f
        .brick_taps
        .iter()
        .position(|bt| matches!(bt, BrickTap::Direct { .. }))
    {
        let mutate = |label: &str, g: &dyn Fn(&mut usize, &mut usize), out: &mut Vec<_>| {
            let mut m = p.clone();
            let bts = &mut m.fused.as_mut().unwrap().brick_taps;
            if let BrickTap::Direct { nidx, off } = &mut bts[i] {
                g(nidx, off);
            }
            out.push((label.to_string(), m));
        };
        mutate("bt-direct-off-vol", &|_, off| *off = vol, &mut out);
        mutate(
            "bt-direct-off-overhang",
            &|_, off| *off = vol - w + 1,
            &mut out,
        );
        mutate("bt-direct-nidx-27", &|nidx, _| *nidx = 27, &mut out);
        mutate("bt-direct-nidx-100", &|nidx, _| *nidx = 100, &mut out);
    }
    if let Some(i) = f
        .brick_taps
        .iter()
        .position(|bt| matches!(bt, BrickTap::Split { .. }))
    {
        let mutate = |label: &str,
                      g: &dyn Fn(&mut usize, &mut usize, &mut usize, &mut isize),
                      out: &mut Vec<_>| {
            let mut m = p.clone();
            let bts = &mut m.fused.as_mut().unwrap().brick_taps;
            if let BrickTap::Split {
                hnidx,
                nnidx,
                off,
                dx,
            } = &mut bts[i]
            {
                g(hnidx, nnidx, off, dx);
            }
            out.push((label.to_string(), m));
        };
        mutate("bt-split-dx-0", &|_, _, _, dx| *dx = 0, &mut out);
        mutate("bt-split-dx-w", &|_, _, _, dx| *dx = w as isize, &mut out);
        mutate(
            "bt-split-dx-negw",
            &|_, _, _, dx| *dx = -(w as isize),
            &mut out,
        );
        mutate("bt-split-off-vol", &|_, _, off, _| *off = vol, &mut out);
        mutate("bt-split-hnidx-27", &|h, _, _, _| *h = 27, &mut out);
    }

    // --- row killers ---
    {
        let mut m = p.clone();
        m.fused.as_mut().unwrap().rows[0].out_off = vol;
        out.push(("row-out-off-vol".to_string(), m));
    }
    {
        let mut m = p.clone();
        m.fused.as_mut().unwrap().rows[0].out_off += 1;
        out.push(("row-out-off-misaligned".to_string(), m));
    }
    if f.rows.len() >= 2 {
        let mut m = p.clone();
        let dup = m.fused.as_ref().unwrap().rows[1].out_off;
        m.fused.as_mut().unwrap().rows[0].out_off = dup;
        out.push(("row-out-off-duplicate".to_string(), m));
    }
    {
        let mut m = p.clone();
        m.fused.as_mut().unwrap().rows[0].ry = p.block.by as u16;
        out.push(("row-ry-escapes-block".to_string(), m));
    }

    // --- tape killers ---
    if let Some(j) = f.rows[0].tape.iter().position(|op| op.tap().is_some()) {
        for (label, tap) in [("tape-tap-ntaps", ntaps), ("tape-tap-max", u16::MAX)] {
            let mut m = p.clone();
            let t = &mut m.fused.as_mut().unwrap().rows[0].tape[j];
            *t = match *t {
                TapeOp::Set { .. } => TapeOp::Set { tap },
                TapeOp::AddTap { .. } => TapeOp::AddTap { tap },
                TapeOp::TapAdd { .. } => TapeOp::TapAdd { tap },
                TapeOp::Fma { c, .. } => TapeOp::Fma { tap, c },
                TapeOp::FmaRev { c, .. } => TapeOp::FmaRev { tap, c },
                other => other,
            };
            out.push((label.to_string(), m));
        }
    }
    {
        let mut m = p.clone();
        m.fused.as_mut().unwrap().rows[0]
            .tape
            .insert(0, TapeOp::PopAdd);
        out.push(("tape-underflow".to_string(), m));
    }
    {
        let mut m = p.clone();
        let rp = &mut m.fused.as_mut().unwrap().rows[0];
        rp.tape
            .extend(std::iter::repeat_n(TapeOp::Push, MAX_STACK + 1));
        rp.max_sp = MAX_STACK + 1;
        out.push(("tape-overflow".to_string(), m));
    }
    {
        let mut m = p.clone();
        m.fused.as_mut().unwrap().rows[0].max_sp += 1;
        out.push(("tape-max-sp-overdeclared".to_string(), m));
    }
    // Target a depth-0 row: appending a Push there raises the true max
    // depth above the declared one. (On a row already using the stack,
    // a trailing balanced Push would not change the max — not a
    // corruption the evaluators could trip over.)
    if let Some(r0) = f.rows.iter().position(|rp| rp.max_sp == 0) {
        let mut m = p.clone();
        m.fused.as_mut().unwrap().rows[r0].tape.push(TapeOp::Push);
        out.push(("tape-push-undeclared".to_string(), m));
    }

    // --- fast-chain killers ---
    if f.rows[0].fast.is_some() {
        let mut m = p.clone();
        m.fused.as_mut().unwrap().rows[0]
            .fast
            .as_mut()
            .unwrap()
            .first = ntaps;
        out.push(("fast-first-invalid".to_string(), m));
        let mut m = p.clone();
        let fr = m.fused.as_mut().unwrap().rows[0].fast.as_mut().unwrap();
        if !fr.fmas.is_empty() {
            fr.fmas[0].1 += 1.0;
            out.push(("fast-coeff-divergent".to_string(), m));
        }
    }

    // --- width killers ---
    for (label, bad_w) in [("width-18", 18usize), ("width-doubled", 2 * w)] {
        let mut m = p.clone();
        m.width = bad_w;
        out.push((label.to_string(), m));
    }

    // --- step killers ---
    if let Some(j) = p.steps.iter().position(|s| matches!(s, Step::Load { .. })) {
        let regs_len = (p.num_regs + 1) * w;
        for (label, g) in [
            (
                "step-load-dst-escapes",
                Box::new(move |s: &mut Step| {
                    if let Step::Load { dst0, .. } = s {
                        *dst0 = regs_len;
                    }
                }) as Box<dyn Fn(&mut Step)>,
            ),
            (
                "step-load-dst-misaligned",
                Box::new(|s: &mut Step| {
                    if let Step::Load { dst0, .. } = s {
                        *dst0 += 1;
                    }
                }),
            ),
            (
                "step-load-lane-escapes",
                Box::new(move |s: &mut Step| {
                    if let Step::Load { lane0, .. } = s {
                        *lane0 = w;
                    }
                }),
            ),
        ] {
            let mut m = p.clone();
            g(&mut m.steps[j]);
            out.push((label.to_string(), m));
        }
    }
    if let Some(j) = p.steps.iter().position(|s| matches!(s, Step::Store { .. })) {
        let mut m = p.clone();
        if let Step::Store { ry, .. } = &mut m.steps[j] {
            *ry = p.block.by as i16;
        }
        out.push(("step-store-escapes-block".to_string(), m));
    }
    if let Some(j) = p.steps.iter().position(|s| matches!(s, Step::Shift { .. })) {
        let mut m = p.clone();
        if let Step::Shift { dx, .. } = &mut m.steps[j] {
            *dx = 0;
        }
        out.push(("step-shift-dx-0".to_string(), m));
    }

    // --- geometry killers (array layouts: survive the compile-time
    // pass by design, die at the per-run premise) ---
    if base.layout == LayoutKind::Array {
        if let Some(i) = f.taps.iter().position(|t| matches!(t, Tap::Direct { .. })) {
            let mut m = p.clone();
            if let Tap::Direct { rx, .. } = &mut m.fused.as_mut().unwrap().taps[i] {
                *rx = 100;
            }
            out.push(("geom-direct-rx-100".to_string(), m));
            let mut m = p.clone();
            if let Tap::Direct { ry, .. } = &mut m.fused.as_mut().unwrap().taps[i] {
                *ry = 30000;
            }
            out.push(("geom-direct-ry-30000".to_string(), m));
        }
    }

    // --- exactly one benign mutant per base ---
    match base.layout {
        LayoutKind::Brick => {
            // Nudge one in-bounds tap row by a single element: still
            // aligned-enough (no alignment obligation on input taps),
            // still inside the brick, so provably memory-safe — the
            // numerics are wrong, the addresses are not.
            let i = f
                .brick_taps
                .iter()
                .position(|bt| matches!(bt, BrickTap::Direct { off, .. } if off + 1 + w <= vol))
                .expect("brick bases have a nudgeable tap");
            let mut m = p.clone();
            if let BrickTap::Direct { off, .. } = &mut m.fused.as_mut().unwrap().brick_taps[i] {
                *off += 1;
            }
            out.push(("benign-tap-nudge".to_string(), m));
        }
        LayoutKind::Array => {
            // Flip one seam shift's sign: star stencils carry both
            // signs, so the flipped tap stays within the halo.
            let i = f
                .taps
                .iter()
                .position(|t| matches!(t, Tap::Shifted { .. }))
                .expect("array star base has shifted taps");
            let mut m = p.clone();
            if let Tap::Shifted { dx, .. } = &mut m.fused.as_mut().unwrap().taps[i] {
                *dx = -*dx;
            }
            out.push(("benign-seam-flip".to_string(), m));
        }
    }

    out
}

/// Memory-harmlessness oracle for brick survivors: per interior brick of
/// a real grid, resolve the mutant's taps and run the debug-build
/// checks plus the portable evaluator. Any out-of-slab address panics
/// inside `catch_unwind`.
fn brick_survivor_is_harmless(b: &Base, m: &Plan, n: usize) -> bool {
    let f = m.fused.as_ref().unwrap();
    let mut dense = DenseGrid::new(n.max(m.width), n, n, b.halo);
    dense.fill_test_pattern();
    let grid = BrickGrid::from_dense(&dense, m.block);
    let raw = grid.raw();
    let vol = m.block.volume();
    let info = grid.info();
    let decomp = grid.decomp();
    let ntaps = f.taps_len();
    let w = m.width;
    let ok = catch_unwind(AssertUnwindSafe(|| {
        let mut rtaps = [RTap::Direct { base: 0 }; MAX_TAPS];
        let mut row = vec![0.0f64; w];
        for id in 0..decomp.num_bricks() as u32 {
            if !decomp.is_interior(id) {
                continue;
            }
            f.resolve_brick(info.row(id), vol, &mut rtaps[..ntaps]);
            fuse::check_taps(&rtaps[..ntaps], raw.len(), w);
            for rp in f.rows() {
                fuse::check_tape(&rp.tape, &rtaps[..ntaps], raw.len(), w);
                fuse::eval_row_portable(&rp.tape, &rtaps[..ntaps], raw, w, &mut row);
                assert!(rp.out_off + w <= vol, "store escapes the output brick");
            }
        }
    }));
    ok.is_ok()
}

/// Memory-harmlessness oracle for array survivors: re-derive every tap
/// base of every tile with the executor's own address math
/// (`crate::exec::run_array_fused`) and bounds-check it against the
/// padded slab.
fn array_survivor_is_harmless(m: &Plan, nx: usize, ny: usize, nz: usize, halo: usize) -> bool {
    let f = m.fused.as_ref().unwrap();
    let b = m.block;
    let w = m.width as i64;
    let h = halo as i64;
    let sx = (nx + 2 * halo) as i64;
    let sy = (ny + 2 * halo) as i64;
    let sz = (nz + 2 * halo) as i64;
    let plane = sx * sy;
    let slab_len = plane * sz;
    for tz in 0..nz / b.bz {
        for ty in 0..ny / b.by {
            for tx in 0..nx / b.bx {
                let (ox, oy, oz) = ((tx * b.bx) as i64, (ty * b.by) as i64, (tz * b.bz) as i64);
                let origin = ((oz + h) * sy + (oy + h)) * sx + (ox + h);
                for t in f.taps() {
                    let delta = match *t {
                        Tap::Direct { rx, ry, rz } => {
                            rz as i64 * plane + ry as i64 * sx + rx as i64 * w
                        }
                        Tap::Shifted { ry, rz, dx } => {
                            rz as i64 * plane + ry as i64 * sx + dx as i64
                        }
                    };
                    let base = origin + delta;
                    if base < 0 || base + w > slab_len {
                        return false;
                    }
                }
            }
        }
    }
    true
}

fn survivor_is_harmless(b: &Base, m: &Plan, n: usize) -> bool {
    match b.layout {
        LayoutKind::Brick => brick_survivor_is_harmless(b, m, n),
        LayoutKind::Array => array_survivor_is_harmless(m, n, n, n, b.halo),
    }
}

#[test]
fn single_site_mutants_are_killed_at_95_percent() {
    let mut total = 0usize;
    let mut kills = 0usize;
    let mut survivors: Vec<(String, String)> = Vec::new();
    for b in bases() {
        for (label, m) in mutants_of(&b) {
            total += 1;
            if killed(&m, &b) {
                kills += 1;
            } else {
                assert!(
                    survivor_is_harmless(&b, &m, b.n),
                    "{}/{label}: surviving mutant touches memory out of bounds",
                    b.name
                );
                survivors.push((b.name.to_string(), label));
            }
        }
    }
    let rate = kills as f64 / total as f64;
    assert!(
        rate >= 0.95,
        "kill rate {rate:.3} ({kills}/{total}) below 0.95; survivors: {survivors:?}"
    );
    // The benign mutants exist precisely to exercise the harmlessness
    // oracle; they must be among the survivors.
    assert!(
        survivors.iter().any(|(_, l)| l.starts_with("benign")),
        "benign control mutants were unexpectedly killed"
    );
}

mod survivor_geometry {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Survivors stay memory-harmless across *randomized* grid
        /// geometries, not just the representative one: acceptance by
        /// brick-safe is a memory-safety proof for every geometry that
        /// passes the per-run premise checks.
        #[test]
        fn survivors_are_harmless_on_random_geometry(ty in 1usize..5, tz in 1usize..5) {
            for b in bases() {
                // Axes stay multiples of the block extents (32×4×4) so
                // every tile is visited; x stays one brick wide.
                let (nx, ny, nz) = (32, 4 * ty, 4 * tz);
                for (label, m) in mutants_of(&b) {
                    if prove_plan(&m).is_err() {
                        continue;
                    }
                    let ok = match b.layout {
                        LayoutKind::Brick => {
                            brick_survivor_is_harmless(&b, &m, ny.max(nz))
                        }
                        // Gate exactly as the executor does: only
                        // geometries the per-run premise admits must be
                        // memory-harmless.
                        LayoutKind::Array => {
                            m.check_array_geometry(nx, ny, nz, b.halo).is_err()
                                || array_survivor_is_harmless(&m, nx, ny, nz, b.halo)
                        }
                    };
                    prop_assert!(
                        ok,
                        "{}/{label}: survivor unsafe at {nx}x{ny}x{nz}",
                        b.name
                    );
                }
            }
        }
    }
}
