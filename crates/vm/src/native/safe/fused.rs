//! Fused-path obligations: the compile-time half of the argument that
//! every unsafe load/store in the SIMD fused evaluators is in bounds.
//!
//! The brick executor computes each tap's base as
//! `brick_id · vol + off` with `brick_id` drawn from the adjacency table.
//! Proving `off + w ≤ vol` here (BS001), together with the per-run
//! premise that the slab holds exactly `nb` whole bricks and every
//! interior adjacency entry is a valid id `< nb` (checked in
//! `crate::exec::run_brick_fused_nt`), gives `base + w ≤ raw.len()` for
//! every tap of every interior brick — translation invariance does the
//! rest. Array layouts leave `brick_taps` empty; their geometry half
//! lives in [`super::geometry`].

use brick_core::BrickDims;
use brick_lint::LintCode;

use super::super::fuse::{self, BrickTap, FusedKernel, Tap, MAX_STACK, MAX_TAPS};
use super::Prover;

/// Discharge the fused-path obligations over `f`.
pub(crate) fn prove_fused(p: &mut Prover, w: usize, block: BrickDims, f: &FusedKernel) {
    let vol = block.volume();
    // BS008: the fused evaluators index lanes as `x = i mod w` within a
    // block row, which is only the grid row when the block x-extent IS
    // the vector width; and their dispatch tables cover w ∈ {16, 32, 64}.
    p.obligation(
        matches!(w, 16 | 32 | 64) && block.bx == w,
        LintCode::UnsafeLaneGeometry,
        None,
        || {
            format!(
                "fused width {w} / block x-extent {} outside the proven lane geometries",
                block.bx
            )
        },
    );
    let ntaps = f.taps.len();
    // BS004: executors size their resolved-tap arrays from taps_len and
    // index them in lock-step with brick_taps.
    p.obligation(
        ntaps <= MAX_TAPS,
        LintCode::UnsafeTapIndexInvalid,
        None,
        || format!("{ntaps} taps exceed the MAX_TAPS = {MAX_TAPS} resolved-tap buffer"),
    );
    p.obligation(
        f.brick_taps.is_empty() || f.brick_taps.len() == ntaps,
        LintCode::UnsafeTapIndexInvalid,
        None,
        || {
            format!(
                "brick tap table ({} entries) is not parallel to the tap table ({ntaps})",
                f.brick_taps.len()
            )
        },
    );
    for (i, tap) in f.taps.iter().enumerate() {
        if let Tap::Shifted { dx, .. } = *tap {
            // BS003: split-row gathers assume a genuine two-brick seam.
            p.obligation(
                dx != 0 && (dx.unsigned_abs() as usize) < w,
                LintCode::UnsafeSeamInvalid,
                Some(i),
                || format!("tap {i}: shift distance {dx} invalid for width {w}"),
            );
        }
    }
    for (i, bt) in f.brick_taps.iter().enumerate() {
        match *bt {
            BrickTap::Direct { nidx, off } => {
                p.obligation(
                    nidx < 27,
                    LintCode::UnsafeTapNeighborInvalid,
                    Some(i),
                    || format!("brick tap {i}: neighbour index {nidx} outside the 27-entry table"),
                );
                p.obligation(
                    off + w <= vol,
                    LintCode::UnsafeTapEscapesSlab,
                    Some(i),
                    || format!("brick tap {i}: row offset {off} + width {w} escapes brick volume {vol}"),
                );
            }
            BrickTap::Split {
                hnidx,
                nnidx,
                off,
                dx,
            } => {
                p.obligation(
                    hnidx < 27 && nnidx < 27,
                    LintCode::UnsafeTapNeighborInvalid,
                    Some(i),
                    || format!("brick tap {i}: neighbour indices ({hnidx}, {nnidx}) outside the 27-entry table"),
                );
                p.obligation(
                    off + w <= vol,
                    LintCode::UnsafeTapEscapesSlab,
                    Some(i),
                    || format!("brick tap {i}: row offset {off} + width {w} escapes brick volume {vol}"),
                );
                p.obligation(
                    dx != 0 && dx.unsigned_abs() < w,
                    LintCode::UnsafeSeamInvalid,
                    Some(i),
                    || format!("brick tap {i}: seam shift {dx} invalid for width {w}"),
                );
            }
        }
    }
    let mut out_offs: Vec<usize> = Vec::with_capacity(f.rows.len());
    for (r, rp) in f.rows.iter().enumerate() {
        let (ry, rz) = (rp.ry as usize, rp.rz as usize);
        // BS006: the streaming store targets `out[out_off .. out_off+w]`
        // of a vol-sized block; out_off must be the block's own row
        // offset (the decomposition's writeback relies on it), aligned,
        // and in bounds.
        let in_block = ry < block.by && rz < block.bz;
        p.obligation(in_block, LintCode::UnsafeStoreEscapesBlock, Some(r), || {
            format!(
                "row {r}: output row ({ry}, {rz}) outside the {}x{} home block",
                block.by, block.bz
            )
        });
        // row_offset asserts its coordinates in debug builds — only
        // consult it once the row is known to be in the block.
        p.obligation(
            in_block
                && rp.out_off == block.row_offset(ry, rz)
                && rp.out_off % w == 0
                && rp.out_off + w <= vol,
            LintCode::UnsafeStoreEscapesBlock,
            Some(r),
            || {
                format!(
                    "row {r}: store offset {} is not the in-bounds row base for ({ry}, {rz})",
                    rp.out_off
                )
            },
        );
        out_offs.push(rp.out_off);
        prove_tape(p, r, rp, ntaps);
    }
    // BS007: non-temporal stores bypass the cache; two rows writing the
    // same offset would race with themselves and with any tap that the
    // sfence was meant to order. Distinct offsets plus the proven
    // out ≠ in slabs (separate allocations in the executors) give
    // no-alias outright.
    out_offs.sort_unstable();
    let dup = out_offs.windows(2).position(|pair| pair[0] == pair[1]);
    p.obligation(dup.is_none(), LintCode::UnsafeStoreOverlap, None, || {
        format!(
            "two fused rows store to the same block offset {}",
            out_offs[dup.unwrap()]
        )
    });
}

/// Per-row tape obligations: tap indices (BS004), stack discipline
/// (BS005), and fast-chain fidelity (BS011).
fn prove_tape(p: &mut Prover, r: usize, rp: &fuse::RowProg, ntaps: usize) {
    let mut sp: usize = 0;
    let mut max_sp: usize = 0;
    let mut underflow = false;
    for (i, op) in rp.tape.iter().enumerate() {
        if let Some(tap) = op.tap() {
            // BS004: the evaluators index the resolved-tap array with
            // this id unchecked in release builds.
            p.obligation(
                (tap as usize) < ntaps,
                LintCode::UnsafeTapIndexInvalid,
                Some(i),
                || format!("row {r} tape op {i}: tap {tap} outside the {ntaps}-entry table"),
            );
        }
        match op {
            fuse::TapeOp::Push => {
                sp += 1;
                max_sp = max_sp.max(sp);
            }
            fuse::TapeOp::PopAdd | fuse::TapeOp::PopFma { .. } => {
                if sp == 0 {
                    underflow = true;
                } else {
                    sp -= 1;
                }
            }
            _ => {}
        }
    }
    // BS005: the evaluators' fixed-size value stacks index `stack[sp]`
    // unchecked; the declared max_sp picks the (possibly stackless)
    // instantiation, so it must equal the true depth exactly.
    p.obligation(
        !underflow && max_sp <= MAX_STACK && rp.max_sp == max_sp,
        LintCode::UnsafeStackDiscipline,
        Some(r),
        || {
            format!(
                "row {r}: declared stack depth {} disagrees with the tape (depth {max_sp}, underflow: {underflow})",
                rp.max_sp
            )
        },
    );
    // BS011: the fast-chain evaluators execute `rp.fast` INSTEAD of the
    // tape; a divergent chain would read taps the tape obligations never
    // covered. Recompute it from the tape and demand equality. A stored
    // `None` where a chain exists merely forfeits the fast path — safe.
    if let Some(fr) = &rp.fast {
        p.obligation(
            fuse::fast_row(&rp.tape).as_ref() == Some(fr),
            LintCode::UnsafeFastRowDivergent,
            Some(r),
            || format!("row {r}: stored fast chain diverges from its tape"),
        );
    }
}
