//! brick-safe: compile-time memory-safety prover for the native backends.
//!
//! The SIMD evaluators in [`super::avx2`]/[`super::neon`] and the fused
//! executors in `crate::exec` contain `unsafe` loads and stores whose
//! correctness rests on properties of the compiled program — tap offsets
//! inside the brick volume, store offsets inside the home block, tape
//! indices inside the tap table, value-stack discipline, lane geometry.
//! Rather than re-checking those properties per block at run time, this
//! module proves them *once*, at [`super::Plan::compile`] time, by
//! abstract interpretation over the lowered [`super::plan::Step`] program
//! and the fused [`super::fuse::FusedKernel`] tape.
//!
//! Every property is an explicit **proof obligation** with a stable
//! diagnostic code (`BS001`–`BS011`, catalogued in
//! [`brick_lint::LintCode`] and DESIGN.md §13). A violated obligation
//! becomes a [`brick_lint::Diagnostic`] anchored at the offending tape op
//! or step; the whole report is returned as
//! `VmError::UnsafePlan` and the plan is rejected before any dispatcher
//! can see it. Obligations whose truth depends on the run-time grid
//! (array slab extents, brick adjacency tables) are split: the
//! program-shape half is discharged here, and a cheap per-run premise
//! check in `crate::exec` (array: [`geometry`]; brick: slab length +
//! adjacency validity) closes the argument.
//!
//! The prover is deterministic — same plan, same verdict — and a plan's
//! verdict is keyed by the kernel alone, so it caches under
//! `brick_lint::fingerprint` exactly like lint reports do.

mod fused;
mod geometry;
mod steps;

#[cfg(test)]
mod mutation;

use brick_core::BrickDims;
use brick_lint::{Diagnostic, LintCode, Report};

use super::fuse::FusedKernel;
use super::plan::{Plan, Step};

/// Outcome of a successful brick-safe proof: what was proved, and how
/// much of it. Returned by [`super::Plan::safety`] /
/// [`super::Plan::verify_safety`] and printed by `bricks lint --native`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SafetySummary {
    /// Total proof obligations discharged (each bounds comparison,
    /// alias check, and stack-discipline condition counts once).
    pub obligations: usize,
    /// Whether the plan carries a fused-row program (the fused
    /// obligations BS001–BS004, BS006–BS008, BS011 only apply then).
    pub fused: bool,
    /// Number of taps in the fused tap table (0 when not fused).
    pub taps: usize,
    /// Number of fused output-row programs (0 when not fused).
    pub rows: usize,
}

/// Accumulates obligations and failures during a proof pass.
pub(crate) struct Prover {
    report: Report,
    obligations: usize,
}

impl Prover {
    pub(crate) fn new(name: &str) -> Self {
        Prover {
            report: Report::new(name),
            obligations: 0,
        }
    }

    /// Discharge one obligation: record it, and on failure push a
    /// diagnostic (anchored at tape-op/step index `op` when given).
    /// The message closure only runs on failure.
    pub(crate) fn obligation(
        &mut self,
        ok: bool,
        code: LintCode,
        op: Option<usize>,
        msg: impl FnOnce() -> String,
    ) {
        self.obligations += 1;
        if !ok {
            let d = match op {
                Some(i) => Diagnostic::at(code, i, msg()),
                None => Diagnostic::global(code, msg()),
            };
            self.report.push(d);
        }
    }

    /// Finish the pass: the obligation count on success, the full report
    /// on any failure.
    pub(crate) fn finish(self) -> Result<usize, Box<Report>> {
        if self.report.has_errors() {
            Err(Box::new(self.report))
        } else {
            Ok(self.obligations)
        }
    }
}

/// Prove a lowered program safe. Called by [`super::Plan::compile`] on
/// every plan; the components are the plan's own fields (passed
/// separately because the `Plan` does not exist yet at that point).
pub(crate) fn prove(
    name: &str,
    width: usize,
    num_regs: usize,
    block: BrickDims,
    steps: &[Step],
    fused: Option<&FusedKernel>,
) -> Result<SafetySummary, Box<Report>> {
    let mut p = Prover::new(name);
    steps::prove_steps(&mut p, width, num_regs, block, steps);
    if let Some(f) = fused {
        fused::prove_fused(&mut p, width, block, f);
    }
    let obligations = p.finish()?;
    Ok(SafetySummary {
        obligations,
        fused: fused.is_some(),
        taps: fused.map_or(0, FusedKernel::taps_len),
        rows: fused.map_or(0, |f| f.rows().len()),
    })
}

/// Re-prove a finished plan (the `bricks lint --native` / benchmark
/// entry; `Plan::compile` already ran [`prove`] once).
pub(crate) fn prove_plan(plan: &Plan) -> Result<SafetySummary, Box<Report>> {
    prove(
        "plan",
        plan.width,
        plan.num_regs,
        plan.block,
        &plan.steps,
        plan.fused.as_ref(),
    )
}

/// Per-run geometry premise for array layouts: see [`geometry`].
pub(crate) fn check_array_geometry(
    plan: &Plan,
    nx: usize,
    ny: usize,
    nz: usize,
    halo: usize,
) -> Result<(), Box<Report>> {
    geometry::check(plan, nx, ny, nz, halo)
}
