//! Per-run geometry premise for fused array execution (the run-time half
//! of obligation BS001 on dense layouts).
//!
//! The array executor (`crate::exec::run_array_fused`) resolves each tap
//! to `base = origin + delta` with `origin = ((oz+h)·sy + (oy+h))·sx +
//! (ox+h)` per tile and `delta = rz·plane + ry·sx + dxe` per tap
//! (`dxe = rx·w` for direct taps, the fold-in shift `dx` for shifted
//! ones), then reads lanes `raw[base .. base+w]` unchecked in the SIMD
//! paths. That is in bounds iff each coordinate axis of every tap row of
//! every tile stays inside the padded slab — a condition linear in the
//! tile origin, so checking the extreme origins per axis covers all
//! tiles. The check is O(taps), run once per `run()`.

use brick_lint::Report;

use super::super::fuse::Tap;
use super::super::plan::Plan;
use super::Prover;
use brick_lint::LintCode;

/// Check every tap of `plan`'s fused program against an `nx × ny × nz`
/// interior with `halo` cells of padding on each side. Vacuously `Ok`
/// for non-fused plans (the step machine bounds-checks through safe
/// slices) and for brick-resolved plans (their bounds are discharged at
/// compile time plus the adjacency premise in `crate::exec`).
pub(crate) fn check(
    plan: &Plan,
    nx: usize,
    ny: usize,
    nz: usize,
    halo: usize,
) -> Result<(), Box<Report>> {
    let Some(f) = plan.fused.as_ref() else {
        return Ok(());
    };
    if !f.brick_taps.is_empty() {
        return Ok(());
    }
    let b = plan.block;
    let w = plan.width as i64;
    let h = halo as i64;
    let (tiles_x, tiles_y, tiles_z) = (nx / b.bx, ny / b.by, nz / b.bz);
    if tiles_x == 0 || tiles_y == 0 || tiles_z == 0 {
        // No tiles are visited; nothing to prove.
        return Ok(());
    }
    let sx = (nx + 2 * halo) as i64;
    let sy = (ny + 2 * halo) as i64;
    let sz = (nz + 2 * halo) as i64;
    let max_ox = (tiles_x as i64 - 1) * b.bx as i64;
    let max_oy = (tiles_y as i64 - 1) * b.by as i64;
    let max_oz = (tiles_z as i64 - 1) * b.bz as i64;
    let mut p = Prover::new(&format!("array {nx}x{ny}x{nz} halo {halo}"));
    for (i, tap) in f.taps.iter().enumerate() {
        let (dxe, ry, rz) = match *tap {
            Tap::Direct { rx, ry, rz } => (rx as i64 * w, ry as i64, rz as i64),
            Tap::Shifted { ry, rz, dx } => (dx as i64, ry as i64, rz as i64),
        };
        // Tap base address decomposes per axis; each axis index is
        // monotone in the tile origin, so the two extreme origins bound
        // all tiles.
        let x_ok = h + dxe >= 0 && max_ox + h + dxe + w <= sx;
        let y_ok = h + ry >= 0 && max_oy + h + ry < sy;
        let z_ok = h + rz >= 0 && max_oz + h + rz < sz;
        p.obligation(
            x_ok && y_ok && z_ok,
            LintCode::UnsafeTapEscapesSlab,
            Some(i),
            || {
                format!(
                    "tap {i} (dx {dxe}, ry {ry}, rz {rz}) escapes the \
                     {sx}x{sy}x{sz} padded slab for some tile"
                )
            },
        );
    }
    p.finish().map(|_| ())
}
