//! Lowering: verified vector IR → flat step program.
//!
//! [`Plan::compile`] runs once per kernel. It first obtains the analyzer's
//! bounds proof ([`brick_lint::prove_bounds`] — register, lane, shift, and
//! coefficient indices re-checked against the kernel's declared shape, plus
//! the footprint pass's load reach), then lowers each op to a [`Step`] with
//! the register *offsets* (`reg * width`) pre-resolved and coefficient
//! *values* inlined. The lowering preserves the interpreter's operation
//! order and arithmetic exactly — see the bit-identity argument in
//! [`super`] — and re-validates every offset it emits, so executing a plan
//! cannot index outside the register file it sizes via
//! [`Plan::regs_len`].
//!
//! `ShiftX` lowers to at most two contiguous range copies: for `dx > 0`,
//! `dst[0..w-dx] = src[dx..w]` and `dst[w-dx..w] = edge[0..dx]` (mirrored
//! for `dx < 0`). When the destination row aliases a source row the copy
//! order could clobber inputs, so aliased shifts are detected *at compile
//! time* and routed through the plan's single scratch row instead.

use brick_codegen::{VOp, VectorKernel};

use super::fuse::{self, FusedKernel};
use super::safe::{self, SafetySummary};
use super::RowOps;
use crate::exec::VmError;

/// One lowered instruction. Offsets are row bases into the register file.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Step {
    /// Fill `lanes` values at `dst0 + lane0` from the input row at
    /// `(rx, ry, rz)`; `full` is true when the row is fully covered
    /// (`lane0 == 0 && lanes == w`), skipping the zero-fill.
    Load {
        /// Destination row base offset.
        dst0: usize,
        /// First lane written.
        lane0: usize,
        /// Number of lanes read.
        lanes: usize,
        /// Whole row covered: no zero-fill needed.
        full: bool,
        /// Relative x in vector widths.
        rx: i8,
        /// Relative y row.
        ry: i16,
        /// Relative z row.
        rz: i16,
    },
    /// Two-copy shift; `dst0` is distinct from both source rows.
    Shift {
        /// Destination row base offset.
        dst0: usize,
        /// Shifted-in row.
        src0: usize,
        /// Wrap-around (edge) row.
        edge0: usize,
        /// Shift distance, `0 < |dx| < w`.
        dx: isize,
    },
    /// Shift whose destination aliases `src` or `edge`: compute into the
    /// scratch row, then copy to the destination.
    ShiftScratch {
        /// Destination row base offset.
        dst0: usize,
        /// Shifted-in row.
        src0: usize,
        /// Wrap-around (edge) row.
        edge0: usize,
        /// Shift distance, `0 < |dx| < w`.
        dx: isize,
    },
    /// `dst[i] = a[i] + b[i]`.
    Add {
        /// Destination row base offset.
        dst0: usize,
        /// Left operand row.
        a0: usize,
        /// Right operand row.
        b0: usize,
    },
    /// `dst[i] = a[i] * c` (coefficient value inlined).
    Mul {
        /// Destination row base offset.
        dst0: usize,
        /// Operand row.
        a0: usize,
        /// Inlined coefficient value.
        c: f64,
    },
    /// `dst[i] = fma(a[i], c, acc[i])`.
    Fma {
        /// Destination row base offset.
        dst0: usize,
        /// Accumulator row.
        acc0: usize,
        /// Multiplicand row.
        a0: usize,
        /// Inlined coefficient value.
        c: f64,
    },
    /// Write the row at `src0` to the home-block output row `(ry, rz)`.
    Store {
        /// Source row base offset.
        src0: usize,
        /// Home-block y row.
        ry: i16,
        /// Home-block z row.
        rz: i16,
    },
}

/// A compiled kernel: the lowered step program plus the shape facts the
/// executors rely on. Fields are crate-visible so the brick-safe prover
/// ([`super::safe`]) can walk — and, in its mutation harness, perturb —
/// the lowered program; external code goes through the accessors.
#[derive(Debug, Clone)]
pub struct Plan {
    pub(crate) width: usize,
    pub(crate) num_regs: usize,
    pub(crate) block: brick_core::BrickDims,
    pub(crate) steps: Vec<Step>,
    pub(crate) reach: [i64; 3],
    /// Fused-row program when the kernel's IR proved row-fusable (see
    /// [`super::fuse`]); `None` falls back to the step machine.
    pub(crate) fused: Option<FusedKernel>,
    /// Summary of the brick-safe proof discharged by [`Plan::compile`].
    pub(crate) safety: SafetySummary,
}

impl Plan {
    /// Lower a kernel. Verification (including the analyzer's bounds
    /// proof) happens here; a kernel that fails it is rejected with the
    /// full structured report.
    pub fn compile(kernel: &VectorKernel) -> Result<Plan, VmError> {
        let proof = brick_lint::prove_bounds(kernel).map_err(VmError::InvalidKernel)?;
        let w = kernel.width;
        let num_regs = kernel.num_regs;
        let row = |r: u16| -> Result<usize, VmError> {
            let r = r as usize;
            if r < num_regs {
                Ok(r * w)
            } else {
                // Unreachable after the bounds proof; kept as an error (not
                // a panic) so the plan can never be built from an offset
                // the proof did not cover.
                Err(VmError::Mismatch(format!(
                    "native lowering: register r{r} outside {num_regs} registers"
                )))
            }
        };
        let coeff = |c: u16| -> Result<f64, VmError> {
            kernel.coeffs.get(c as usize).copied().ok_or_else(|| {
                VmError::Mismatch(format!("native lowering: coefficient c{c} out of range"))
            })
        };
        let mut steps = Vec::with_capacity(kernel.ops.len());
        for op in &kernel.ops {
            steps.push(match *op {
                VOp::LoadRow {
                    dst,
                    rx,
                    ry,
                    rz,
                    lane0,
                    lanes,
                } => {
                    let (lane0, lanes) = (lane0 as usize, lanes as usize);
                    if lanes == 0 || lane0 + lanes > w {
                        return Err(VmError::Mismatch(format!(
                            "native lowering: lanes {lane0}+{lanes} escape width {w}"
                        )));
                    }
                    Step::Load {
                        dst0: row(dst)?,
                        lane0,
                        lanes,
                        full: lane0 == 0 && lanes == w,
                        rx,
                        ry,
                        rz,
                    }
                }
                VOp::ShiftX { dst, src, edge, dx } => {
                    let d = dx.unsigned_abs() as usize;
                    if dx == 0 || d >= w {
                        return Err(VmError::Mismatch(format!(
                            "native lowering: shift distance {dx} invalid for width {w}"
                        )));
                    }
                    let (dst0, src0, edge0) = (row(dst)?, row(src)?, row(edge)?);
                    if dst0 == src0 || dst0 == edge0 {
                        Step::ShiftScratch {
                            dst0,
                            src0,
                            edge0,
                            dx: dx as isize,
                        }
                    } else {
                        Step::Shift {
                            dst0,
                            src0,
                            edge0,
                            dx: dx as isize,
                        }
                    }
                }
                VOp::Add { dst, a, b } => Step::Add {
                    dst0: row(dst)?,
                    a0: row(a)?,
                    b0: row(b)?,
                },
                VOp::Mul { dst, a, coeff: c } => Step::Mul {
                    dst0: row(dst)?,
                    a0: row(a)?,
                    c: coeff(c)?,
                },
                VOp::Fma {
                    dst,
                    acc,
                    a,
                    coeff: c,
                } => Step::Fma {
                    dst0: row(dst)?,
                    acc0: row(acc)?,
                    a0: row(a)?,
                    c: coeff(c)?,
                },
                VOp::StoreRow { src, ry, rz } => Step::Store {
                    src0: row(src)?,
                    ry,
                    rz,
                },
            });
        }
        let fused = fuse::fuse(kernel);
        // brick-safe: discharge every memory-safety obligation the native
        // backends rely on (BS001–BS011) before the plan can exist. An
        // unprovable plan never reaches a dispatcher.
        let safety = safe::prove(
            &kernel.name,
            w,
            num_regs,
            kernel.block,
            &steps,
            fused.as_ref(),
        )
        .map_err(VmError::UnsafePlan)?;
        Ok(Plan {
            width: w,
            num_regs,
            block: kernel.block,
            steps,
            reach: proof.reach,
            fused,
            safety,
        })
    }

    /// The fused-row program, when the kernel proved fusable.
    pub(crate) fn fused(&self) -> Option<&FusedKernel> {
        self.fused.as_ref()
    }

    /// Summary of the brick-safe proof discharged at compile time.
    pub fn safety(&self) -> SafetySummary {
        self.safety
    }

    /// Re-run the brick-safe prover over this plan and return the fresh
    /// summary. [`Plan::compile`] already proved the plan once; this is
    /// the standalone entry for the `bricks lint --native` CLI and the
    /// overhead benchmark.
    pub fn verify_safety(&self) -> Result<SafetySummary, VmError> {
        safe::prove_plan(self).map_err(VmError::UnsafePlan)
    }

    /// Discharge the geometry-dependent half of the tap-bounds obligation
    /// (BS001) for an array grid of `nx × ny × nz` interior points with
    /// `halo` cells of padding: every tap row of every tile the executor
    /// will visit stays inside the padded slab. Vacuously `Ok` for
    /// non-fused plans and for brick-resolved plans, whose tap bounds are
    /// fully discharged at compile time (plus the per-run adjacency
    /// premise checked in `crate::exec`).
    pub fn check_array_geometry(
        &self,
        nx: usize,
        ny: usize,
        nz: usize,
        halo: usize,
    ) -> Result<(), VmError> {
        safe::check_array_geometry(self, nx, ny, nz, halo).map_err(VmError::UnsafePlan)
    }

    /// Vector width of the compiled kernel.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Home-block geometry of the compiled kernel.
    pub fn block(&self) -> brick_core::BrickDims {
        self.block
    }

    /// Per-axis load reach carried over from the bounds proof.
    pub fn reach(&self) -> [i64; 3] {
        self.reach
    }

    /// Length of the register file the executors need: the kernel's
    /// registers plus one scratch row for aliased shifts.
    pub fn regs_len(&self) -> usize {
        (self.num_regs + 1) * self.width
    }

    /// Execute the plan over one block. Mirrors the interpreter's
    /// `exec_block` contract: `read_row(rx, ry, rz, lane0, dst)` fills an
    /// input row segment, `write_row(ry, rz, src)` stores an output row.
    /// `regs` must be [`Plan::regs_len`] long.
    pub(crate) fn exec_block<B: RowOps>(
        &self,
        ops: &B,
        regs: &mut [f64],
        mut read_row: impl FnMut(i8, i16, i16, usize, &mut [f64]),
        mut write_row: impl FnMut(i16, i16, &[f64]),
    ) {
        let w = self.width;
        assert_eq!(regs.len(), self.regs_len(), "register file size mismatch");
        let scratch0 = self.num_regs * w;
        for step in &self.steps {
            match *step {
                Step::Load {
                    dst0,
                    lane0,
                    lanes,
                    full,
                    rx,
                    ry,
                    rz,
                } => {
                    if !full {
                        regs[dst0..dst0 + w].fill(0.0);
                    }
                    read_row(
                        rx,
                        ry,
                        rz,
                        lane0,
                        &mut regs[dst0 + lane0..dst0 + lane0 + lanes],
                    );
                }
                Step::Shift {
                    dst0,
                    src0,
                    edge0,
                    dx,
                } => shift_rows(regs, w, dst0, src0, edge0, dx),
                Step::ShiftScratch {
                    dst0,
                    src0,
                    edge0,
                    dx,
                } => {
                    shift_rows(regs, w, scratch0, src0, edge0, dx);
                    regs.copy_within(scratch0..scratch0 + w, dst0);
                }
                Step::Add { dst0, a0, b0 } => ops.add(regs, dst0, a0, b0, w),
                Step::Mul { dst0, a0, c } => ops.mul(regs, dst0, a0, c, w),
                Step::Fma { dst0, acc0, a0, c } => ops.fma(regs, dst0, acc0, a0, c, w),
                Step::Store { src0, ry, rz } => write_row(ry, rz, &regs[src0..src0 + w]),
            }
        }
    }
}

/// The two-copy shift. `dst0` must differ from `src0` and `edge0`; each
/// copy is a `memmove` within the register file. Matches the interpreter's
/// `ShiftX` semantics: `dst[i] = src[i+dx]` in range, wrapping into `edge`.
fn shift_rows(regs: &mut [f64], w: usize, dst0: usize, src0: usize, edge0: usize, dx: isize) {
    debug_assert!(dst0 != src0 && dst0 != edge0);
    if dx > 0 {
        let d = dx as usize;
        regs.copy_within(src0 + d..src0 + w, dst0);
        regs.copy_within(edge0..edge0 + d, dst0 + w - d);
    } else {
        let d = (-dx) as usize;
        regs.copy_within(edge0 + w - d..edge0 + w, dst0);
        regs.copy_within(src0..src0 + w - d, dst0 + d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brick_codegen::{generate, CodegenOptions, LayoutKind};
    use brick_dsl::shape::StencilShape;

    #[test]
    #[allow(clippy::needless_range_loop)] // index i mirrors the lane math under test
    fn shift_rows_matches_interpreter_semantics() {
        let w = 8;
        // rows: 0 = dst, 1 = src, 2 = edge
        let mut regs = vec![0.0; 3 * w];
        for i in 0..w {
            regs[w + i] = 10.0 + i as f64; // src
            regs[2 * w + i] = 100.0 + i as f64; // edge
        }
        for dx in [-7isize, -3, -1, 1, 3, 7] {
            let (src, edge): (Vec<f64>, Vec<f64>) =
                (regs[w..2 * w].to_vec(), regs[2 * w..3 * w].to_vec());
            shift_rows(&mut regs, w, 0, w, 2 * w, dx);
            for i in 0..w {
                let j = i as isize + dx;
                let want = if (0..w as isize).contains(&j) {
                    src[j as usize]
                } else if j < 0 {
                    edge[(j + w as isize) as usize]
                } else {
                    edge[(j - w as isize) as usize]
                };
                assert_eq!(regs[i], want, "dx={dx} lane {i}");
            }
        }
    }

    #[test]
    fn compile_accepts_the_paper_suite_and_sizes_the_register_file() {
        for shape in StencilShape::paper_suite() {
            let st = shape.stencil();
            let b = st.default_bindings();
            for layout in [LayoutKind::Brick, LayoutKind::Array] {
                let k = generate(&st, &b, layout, 16, CodegenOptions::default()).unwrap();
                let plan = Plan::compile(&k).unwrap();
                assert_eq!(plan.width(), 16);
                assert_eq!(plan.regs_len(), (k.num_regs + 1) * 16);
                assert_eq!(plan.reach(), brick_lint::load_reach(&k), "{shape}");
            }
        }
    }

    #[test]
    fn compile_rejects_invalid_kernels_with_the_full_report() {
        let st = StencilShape::star(1).stencil();
        let b = st.default_bindings();
        let mut k = generate(&st, &b, LayoutKind::Brick, 16, CodegenOptions::default()).unwrap();
        let last = k
            .ops
            .iter()
            .rposition(|op| matches!(op, VOp::StoreRow { .. }))
            .unwrap();
        k.ops.remove(last);
        match Plan::compile(&k) {
            Err(VmError::InvalidKernel(report)) => assert!(report.has_errors()),
            other => panic!("expected InvalidKernel, got {other:?}"),
        }
    }
}
