//! Portable row backend: safe Rust, the `Auto` floor on hosts without a
//! SIMD backend.
//!
//! Each operation is a straight in-place loop the compiler can
//! auto-vectorize for the baseline target (`Add`/`Mul` lower to packed
//! SSE2 on x86-64). `Fma` keeps `f64::mul_add` — the correctly-rounded
//! fused operation the interpreter uses — so the backend stays
//! bit-identical to the oracle even where that costs a libm call on
//! targets without a hardware FMA unit.

use super::RowOps;

/// The portable backend. Always available.
pub(crate) struct PortableOps;

impl RowOps for PortableOps {
    fn add(&self, regs: &mut [f64], dst0: usize, a0: usize, b0: usize, w: usize) {
        for i in 0..w {
            regs[dst0 + i] = regs[a0 + i] + regs[b0 + i];
        }
    }

    fn mul(&self, regs: &mut [f64], dst0: usize, a0: usize, c: f64, w: usize) {
        for i in 0..w {
            regs[dst0 + i] = regs[a0 + i] * c;
        }
    }

    fn fma(&self, regs: &mut [f64], dst0: usize, acc0: usize, a0: usize, c: f64, w: usize) {
        for i in 0..w {
            regs[dst0 + i] = regs[a0 + i].mul_add(c, regs[acc0 + i]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_compute_elementwise_and_tolerate_aliasing() {
        let w = 8;
        let mut regs = vec![0.0; 3 * w];
        for i in 0..w {
            regs[w + i] = i as f64; // r1
            regs[2 * w + i] = 2.0 * i as f64; // r2
        }
        let ops = PortableOps;
        ops.add(&mut regs, 0, w, 2 * w, w);
        assert_eq!(regs[3], 9.0);
        ops.mul(&mut regs, 0, 0, 0.5, w); // dst aliases a
        assert_eq!(regs[3], 4.5);
        ops.fma(&mut regs, 0, 0, w, 2.0, w); // acc aliases dst
        assert_eq!(regs[3], 3.0f64.mul_add(2.0, 4.5));
    }
}
