//! AVX2+FMA row backend (x86-64).
//!
//! This module and [`super::neon`] are the only places in the workspace
//! allowed to use `unsafe` (the crate downgrades the workspace-wide
//! `unsafe_code = "forbid"` to `deny` exactly for them; see
//! `crates/vm/Cargo.toml`). The safety argument has three layers:
//!
//! 1. [`Plan::compile`](super::Plan::compile) only emits programs the
//!    brick-safe prover ([`super::safe`]) accepts: every obligation the
//!    pointer code below relies on — tap rows inside their slab (BS001,
//!    with the per-run premise checks in `crate::exec`), neighbour and
//!    tap indices in range (BS002/BS004), seam shifts in `(0, w)`
//!    (BS003), value-stack discipline (BS005), stores inside the home
//!    block and non-overlapping (BS006/BS007), lane geometry (BS008),
//!    register rows inside the file (BS009/BS010), and fast-chain
//!    fidelity (BS011) — is discharged *statically*, before a plan
//!    exists. Debug builds re-assert the per-block conditions
//!    ([`fuse::check_taps`]); release builds run on the proof alone.
//! 2. Each safe wrapper below re-asserts, per call, that every row offset
//!    plus the width fits inside the register file and that the width is a
//!    whole number of 4-lane vectors — no pointer is formed otherwise.
//! 3. [`Avx2Ops::new`] returns `None` unless `is_x86_feature_detected!`
//!    confirms `avx2` *and* `fma`, so the `#[target_feature]` functions are
//!    only ever reached on hosts that support them.
//!
//! `_mm256_fmadd_pd` computes the correctly-rounded IEEE-754 fused
//! multiply-add — the same value `f64::mul_add` produces lane-by-lane — so
//! this backend is bit-identical to the interpreter (ULP bound 0).
#![allow(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

use core::arch::x86_64::{
    __m256d, _mm256_add_pd, _mm256_fmadd_pd, _mm256_loadu_pd, _mm256_mul_pd, _mm256_set1_pd,
    _mm256_setzero_pd, _mm256_storeu_pd, _mm256_stream_pd, _mm_prefetch, _mm_sfence, _MM_HINT_T0,
};

use super::fuse::{self, RTap, TapeOp, MAX_STACK};
use super::RowOps;

/// AVX2+FMA rows. Constructible only when the host supports both features.
pub(crate) struct Avx2Ops(());

impl Avx2Ops {
    /// Detect and construct; `None` when the host lacks `avx2`/`fma`.
    pub(crate) fn new() -> Option<Avx2Ops> {
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            Some(Avx2Ops(()))
        } else {
            None
        }
    }
}

/// Check the preconditions of the pointer loops: `w` is a positive whole
/// number of 4-lane vectors and every row `[off, off + w)` lies inside
/// `regs`. Panics (never UB) on violation — unreachable for offsets
/// produced by `Plan::compile`.
fn check_rows(len: usize, w: usize, offs: [usize; 3]) {
    assert!(
        w >= 4 && w.is_multiple_of(4),
        "width {w} is not a multiple of 4"
    );
    for off in offs {
        assert!(off + w <= len, "row {off}+{w} escapes register file {len}");
    }
}

impl RowOps for Avx2Ops {
    fn add(&self, regs: &mut [f64], dst0: usize, a0: usize, b0: usize, w: usize) {
        check_rows(regs.len(), w, [dst0, a0, b0]);
        // SAFETY: rows checked in-bounds above; avx2+fma verified by `new`.
        unsafe { add_rows(regs.as_mut_ptr(), dst0, a0, b0, w) }
    }

    fn mul(&self, regs: &mut [f64], dst0: usize, a0: usize, c: f64, w: usize) {
        check_rows(regs.len(), w, [dst0, a0, a0]);
        // SAFETY: rows checked in-bounds above; avx2+fma verified by `new`.
        unsafe { mul_rows(regs.as_mut_ptr(), dst0, a0, c, w) }
    }

    fn fma(&self, regs: &mut [f64], dst0: usize, acc0: usize, a0: usize, c: f64, w: usize) {
        check_rows(regs.len(), w, [dst0, acc0, a0]);
        // SAFETY: rows checked in-bounds above; avx2+fma verified by `new`.
        unsafe { fma_rows(regs.as_mut_ptr(), dst0, acc0, a0, c, w) }
    }

    fn eval_row(&self, tape: &[TapeOp], rtaps: &[RTap], raw: &[f64], w: usize, out: &mut [f64]) {
        assert_eq!(out.len(), w, "output row length mismatch");
        // `check_tape` walks the whole program first: every tap row it
        // will load is proven inside `raw`, shift distances are in
        // `(0, w)`, and the value stack stays within MAX_STACK — no
        // pointer below is formed otherwise. Straight-chain tapes (the
        // common case) dispatch to a stackless instantiation so no stack
        // array is materialized per row.
        let max_sp = fuse::check_tape(tape, rtaps, raw.len(), w);
        // SAFETY: bounds established by `check_tape`/the assert above;
        // avx2+fma verified by `Avx2Ops::new`. The width is dispatched to
        // a const chunk count so the accumulators live in ymm registers.
        unsafe {
            match (w, max_sp) {
                (16, 0) => eval_tape::<4, 0>(tape, rtaps, raw, out),
                (16, _) => eval_tape::<4, MAX_STACK>(tape, rtaps, raw, out),
                (32, 0) => eval_tape::<8, 0>(tape, rtaps, raw, out),
                (32, _) => eval_tape::<8, MAX_STACK>(tape, rtaps, raw, out),
                (64, 0) => eval_tape::<16, 0>(tape, rtaps, raw, out),
                (64, _) => eval_tape::<16, MAX_STACK>(tape, rtaps, raw, out),
                _ => fuse::eval_row_portable(tape, rtaps, raw, w, out),
            }
        }
    }

    fn eval_block<F: Fn(&fuse::RowProg) -> usize>(
        &self,
        fused: &fuse::FusedKernel,
        rtaps: &[RTap],
        raw: &[f64],
        w: usize,
        out: &mut [f64],
        row_start: F,
    ) {
        // The tap-bounds argument (every row base the tapes can load is
        // inside `raw`, shift distances in `(0, w)`) is discharged at
        // compile time by brick-safe (BS001–BS003) plus the per-run
        // premise checks in `crate::exec`; debug builds re-assert it per
        // block. The per-tape half (tap ids, stack discipline) is
        // enforced by ordinary bounds-checked indexing inside
        // `eval_tape`/`eval_fast`, so no pointer can escape the slab even
        // for a malformed tape.
        if cfg!(debug_assertions) {
            fuse::check_taps(rtaps, raw.len(), w);
        }
        // The block's input rows are short bursts (a few cache lines
        // each) scattered across up to 27 neighbour bricks — a pattern
        // the hardware prefetcher cannot follow across slab boundaries.
        // Issue one prefetch per cache line of every tap row up front so
        // the DRAM fetches overlap the first rows' arithmetic.
        let touch = |base: usize| {
            let mut line = 0;
            while line < w {
                // SAFETY: prefetch is a hint — it cannot fault — and
                // `base + w <= raw.len()` holds by the BS001 proof plus
                // the executor's per-run premise anyway.
                unsafe {
                    _mm_prefetch::<_MM_HINT_T0>(raw.as_ptr().add(base + line).cast());
                }
                line += 8;
            }
        };
        for rt in rtaps {
            match *rt {
                RTap::Direct { base } => touch(base),
                RTap::Split { home, nbr, .. } => {
                    touch(home);
                    touch(nbr);
                }
            }
        }
        for rp in fused.rows() {
            let s = row_start(rp);
            let out_row = &mut out[s..s + w];
            // SAFETY: tap rows in-bounds by the BS001–BS003 proof plus
            // the executor's per-run premise (re-asserted above in debug
            // builds); `out_row.len() == w` by the slice; avx2+fma
            // verified by `Avx2Ops::new`. `max_sp` was proven equal to
            // the tape's true depth (BS005) — and a stale value would
            // only shift which instantiation runs, with the stack
            // indexing inside staying bounds-checked.
            unsafe {
                match (w, &rp.fast) {
                    (16, Some(fr)) => eval_fast::<4>(fr, rtaps, raw, out_row),
                    (32, Some(fr)) => eval_fast::<8>(fr, rtaps, raw, out_row),
                    (64, Some(fr)) => eval_fast::<16>(fr, rtaps, raw, out_row),
                    (16, None) if rp.max_sp == 0 => {
                        eval_tape::<4, 0>(&rp.tape, rtaps, raw, out_row)
                    }
                    (16, None) => eval_tape::<4, MAX_STACK>(&rp.tape, rtaps, raw, out_row),
                    (32, None) if rp.max_sp == 0 => {
                        eval_tape::<8, 0>(&rp.tape, rtaps, raw, out_row)
                    }
                    (32, None) => eval_tape::<8, MAX_STACK>(&rp.tape, rtaps, raw, out_row),
                    (64, None) if rp.max_sp == 0 => {
                        eval_tape::<16, 0>(&rp.tape, rtaps, raw, out_row)
                    }
                    (64, None) => eval_tape::<16, MAX_STACK>(&rp.tape, rtaps, raw, out_row),
                    _ => fuse::eval_row_portable(&rp.tape, rtaps, raw, w, out_row),
                }
            }
        }
        // Drain the write-combining buffers of `eval_fast`'s non-temporal
        // stores before the output chunk is handed back (required for
        // cross-thread visibility under a parallel executor; a plain
        // store fence, negligible once per block).
        // SAFETY: SFENCE is baseline SSE on x86-64, no memory operand.
        unsafe { _mm_sfence() };
    }
}

/// Straight-chain row evaluator — the hot path for star stencils. Unlike
/// [`eval_tape`], the loop body is uniform (always a broadcast + `NC`
/// fused multiply-adds), so LLVM keeps all `NC` accumulators in ymm
/// registers for the whole row; the seam gather of split taps is
/// outlined cold to keep the hot loop's control flow trivial.
///
/// # Safety
/// Same contract as [`eval_tape`]: every tap row in-bounds for
/// `raw.len()`/`w` (the brick-safe proof BS001–BS003 plus the executor's
/// per-run premise, or an explicit [`fuse::check_taps`] run),
/// `out.len() == w == 4·NC`, avx2+fma present. Tap ids are
/// bounds-checked slice accesses.
#[target_feature(enable = "avx2,fma")]
unsafe fn eval_fast<const NC: usize>(
    fr: &fuse::FastRow,
    rtaps: &[RTap],
    raw: &[f64],
    out: &mut [f64],
) {
    let p = raw.as_ptr();
    let mut acc = [_mm256_setzero_pd(); NC];
    match rtaps[fr.first as usize] {
        RTap::Direct { base } => {
            for (c, a) in acc.iter_mut().enumerate() {
                // SAFETY: lanes [4c, 4c+4) of row `base`, in-bounds by
                // BS001 + the per-run premise (this fn's contract).
                *a = unsafe { _mm256_loadu_pd(p.add(base + 4 * c)) };
            }
        }
        rt => {
            for (c, a) in acc.iter_mut().enumerate() {
                // SAFETY: split-row contract of `load_split` (BS001 rows
                // + BS003 shift), chunk c < NC.
                *a = unsafe { load_split::<NC>(rt, p, c) };
            }
        }
    }
    for &(t, coeff) in &fr.fmas {
        let cv = _mm256_set1_pd(coeff);
        match rtaps[t as usize] {
            RTap::Direct { base } => {
                for (c, a) in acc.iter_mut().enumerate() {
                    // SAFETY: lanes [4c, 4c+4) of row `base`, in-bounds
                    // by BS001 + the per-run premise.
                    let tv = unsafe { _mm256_loadu_pd(p.add(base + 4 * c)) };
                    *a = _mm256_fmadd_pd(tv, cv, *a);
                }
            }
            rt => {
                for (c, a) in acc.iter_mut().enumerate() {
                    // SAFETY: split-row contract of `load_split` (BS001
                    // rows + BS003 shift), chunk c < NC.
                    let tv = unsafe { load_split::<NC>(rt, p, c) };
                    *a = _mm256_fmadd_pd(tv, cv, *a);
                }
            }
        }
    }
    if let Some(s) = fr.scale {
        let sv = _mm256_set1_pd(s);
        for a in acc.iter_mut() {
            *a = _mm256_mul_pd(*a, sv);
        }
    }
    let op = out.as_mut_ptr();
    if (op as usize).is_multiple_of(32) {
        // Non-temporal stores: the output is write-only during a sweep,
        // so bypassing the cache avoids the read-for-ownership — a third
        // of the sweep's DRAM traffic at full scale. Rows are whole
        // cache lines here (aligned, w ≥ 16). The caller fences once per
        // block (`_mm_sfence`) before the chunk is handed back.
        for (c, a) in acc.iter().enumerate() {
            // SAFETY: out.len() == 4·NC asserted by the caller; 32-byte
            // alignment checked above.
            unsafe { _mm256_stream_pd(op.add(4 * c), *a) };
        }
    } else {
        for (c, a) in acc.iter().enumerate() {
            // SAFETY: out.len() == 4·NC asserted by the caller.
            unsafe { _mm256_storeu_pd(op.add(4 * c), *a) };
        }
    }
}

/// One 4-lane chunk of a split (shifted) tap; the rare mixed chunk at the
/// home/neighbour seam goes through the cold outlined gather.
///
/// # Safety
/// `check_taps` invariants (`home/nbr + w ≤ raw.len()`, `0 < |dx| < w`)
/// with `w = 4·NC` and `c < NC`.
#[target_feature(enable = "avx2,fma")]
#[inline]
unsafe fn load_split<const NC: usize>(rt: RTap, p: *const f64, c: usize) -> __m256d {
    let RTap::Split { home, nbr, dx } = rt else {
        // Direct taps are handled by the callers' fast arms; reloading
        // here keeps this total for the (cold) mixed dispatch.
        let RTap::Direct { base } = rt else {
            unreachable!()
        };
        // SAFETY: validated row `base`.
        return unsafe { _mm256_loadu_pd(p.add(base + 4 * c)) };
    };
    let w = (NC * 4) as isize;
    let j0 = (4 * c) as isize + dx;
    // SAFETY: in every branch, lane j of `home` is read only for
    // 0 ≤ j < w; the wrapped lane j∓w ∈ [0, w) of `nbr` otherwise —
    // both rows in-bounds per this fn's contract (BS001 + premise).
    unsafe {
        if j0 >= 0 && j0 + 3 < w {
            _mm256_loadu_pd(p.add(home).offset(j0))
        } else if dx > 0 && j0 >= w {
            _mm256_loadu_pd(p.add(nbr).offset(j0 - w))
        } else if dx < 0 && j0 + 3 < 0 {
            _mm256_loadu_pd(p.add(nbr).offset(j0 + w))
        } else {
            gather_seam(p, home, nbr, w, j0)
        }
    }
}

/// Lane-by-lane gather of the one chunk per row that straddles the
/// home/neighbour seam. Cold + never inlined so the hot chunk loops above
/// stay branch-light and fully register-allocated.
///
/// # Safety
/// Same invariants as [`load_split`]; `j0` is the chunk's first lane
/// index relative to the home row.
#[target_feature(enable = "avx2,fma")]
#[cold]
#[inline(never)]
unsafe fn gather_seam(p: *const f64, home: usize, nbr: usize, w: isize, j0: isize) -> __m256d {
    let mut t = [0.0f64; 4];
    for (l, v) in t.iter_mut().enumerate() {
        let j = j0 + l as isize;
        // SAFETY: each lane reads inside the validated home or wrapped
        // neighbour row.
        *v = unsafe {
            if j < 0 {
                *p.add(nbr).offset(j + w)
            } else if j < w {
                *p.add(home).offset(j)
            } else {
                *p.add(nbr).offset(j - w)
            }
        };
    }
    // SAFETY: `t` is a local 4-lane buffer.
    unsafe { _mm256_loadu_pd(t.as_ptr()) }
}

/// Combine one accumulator chunk with one tap chunk; `MODE` selects the
/// operation at monomorphization time (0 = set, 1 = acc+t, 2 = t+acc,
/// 3 = fma(t,c,acc), 4 = fma(acc,c,t)) so the per-op dispatch happens
/// once per tape op, not once per chunk. Operand order is preserved
/// exactly — the bit-identity contract.
#[target_feature(enable = "avx2,fma")]
#[inline]
fn combine<const MODE: u8>(acc: __m256d, t: __m256d, cv: __m256d) -> __m256d {
    match MODE {
        0 => t,
        1 => _mm256_add_pd(acc, t),
        2 => _mm256_add_pd(t, acc),
        3 => _mm256_fmadd_pd(t, cv, acc),
        _ => _mm256_fmadd_pd(acc, cv, t),
    }
}

/// Apply one tap op across all `NC` accumulator chunks. Direct taps
/// compile to a fully unrolled run of contiguous loads; split (shifted)
/// taps branch per chunk, but only the one seam chunk per row gathers
/// lane by lane.
///
/// # Safety
/// `check_tape` invariants: `base/home/nbr + w ≤ raw.len()` and
/// `0 < |dx| < w`, with `w = 4·NC`.
#[target_feature(enable = "avx2,fma")]
#[inline]
unsafe fn apply<const NC: usize, const MODE: u8>(
    acc: &mut [__m256d; NC],
    rt: RTap,
    p: *const f64,
    cv: __m256d,
) {
    match rt {
        RTap::Direct { base } => {
            for (c, a) in acc.iter_mut().enumerate() {
                // SAFETY: lanes [4c, 4c+4) of the checked row `base`.
                let t = unsafe { _mm256_loadu_pd(p.add(base + 4 * c)) };
                *a = combine::<MODE>(*a, t, cv);
            }
        }
        RTap::Split { home, nbr, dx } => {
            let w = (NC * 4) as isize;
            for (c, a) in acc.iter_mut().enumerate() {
                let j0 = (4 * c) as isize + dx;
                // SAFETY: lane j of `home` is read only for 0 ≤ j < w and
                // the wrapped lane j∓w ∈ [0, w) of `nbr` otherwise; both
                // rows checked in-bounds.
                let t = unsafe {
                    if j0 >= 0 && j0 + 3 < w {
                        _mm256_loadu_pd(p.add(home).offset(j0))
                    } else if dx > 0 && j0 >= w {
                        _mm256_loadu_pd(p.add(nbr).offset(j0 - w))
                    } else if dx < 0 && j0 + 3 < 0 {
                        _mm256_loadu_pd(p.add(nbr).offset(j0 + w))
                    } else {
                        let mut t = [0.0f64; 4];
                        for (l, v) in t.iter_mut().enumerate() {
                            let j = j0 + l as isize;
                            *v = if j < 0 {
                                *p.add(nbr).offset(j + w)
                            } else if j < w {
                                *p.add(home).offset(j)
                            } else {
                                *p.add(nbr).offset(j - w)
                            };
                        }
                        _mm256_loadu_pd(t.as_ptr())
                    }
                };
                *a = combine::<MODE>(*a, t, cv);
            }
        }
    }
}

/// In-register fused-tape interpreter: the accumulator row is `NC` ymm
/// vectors (`w = 4·NC`), every tap op streams its chunks straight from
/// the input slab, and nothing round-trips through memory until the final
/// row store. `SP` sizes the value stack (0 for straight-chain tapes, so
/// the common case touches no stack memory at all).
///
/// # Safety
/// Every tap row must be in-bounds for `raw.len()` and `w` — established
/// by the brick-safe proof (BS001–BS003) plus the executor's per-run
/// premise, or by an explicit [`fuse::check_taps`]/[`fuse::check_tape`]
/// run — `out.len() == w == 4·NC` must hold, and the host must support
/// avx2+fma. Tap ids and the `SP`-sized value stack are accessed with
/// bounds-checked indexing, so a malformed tape panics rather than
/// forming a stray pointer.
#[target_feature(enable = "avx2,fma")]
unsafe fn eval_tape<const NC: usize, const SP: usize>(
    tape: &[TapeOp],
    rtaps: &[RTap],
    raw: &[f64],
    out: &mut [f64],
) {
    let p = raw.as_ptr();
    let zero = _mm256_setzero_pd();
    let mut acc = [zero; NC];
    let mut stack = [[zero; NC]; SP];
    let mut sp = 0usize;
    for op in tape {
        match *op {
            // SAFETY: tap rows in-bounds per this fn's contract
            // (BS001–BS003 + premise); tap id bounds-checked here.
            TapeOp::Set { tap } => unsafe {
                apply::<NC, 0>(&mut acc, rtaps[tap as usize], p, zero)
            },
            // SAFETY: as for Set.
            TapeOp::AddTap { tap } => unsafe {
                apply::<NC, 1>(&mut acc, rtaps[tap as usize], p, zero)
            },
            // SAFETY: as for Set.
            TapeOp::TapAdd { tap } => unsafe {
                apply::<NC, 2>(&mut acc, rtaps[tap as usize], p, zero)
            },
            TapeOp::Mul { c } => {
                let cv = _mm256_set1_pd(c);
                for a in acc.iter_mut() {
                    *a = _mm256_mul_pd(*a, cv);
                }
            }
            // SAFETY: as for Set.
            TapeOp::Fma { tap, c } => unsafe {
                apply::<NC, 3>(&mut acc, rtaps[tap as usize], p, _mm256_set1_pd(c))
            },
            // SAFETY: as for Set.
            TapeOp::FmaRev { tap, c } => unsafe {
                apply::<NC, 4>(&mut acc, rtaps[tap as usize], p, _mm256_set1_pd(c))
            },
            TapeOp::Push => {
                stack[sp] = acc;
                sp += 1;
            }
            TapeOp::PopAdd => {
                sp -= 1;
                for c in 0..NC {
                    acc[c] = _mm256_add_pd(stack[sp][c], acc[c]);
                }
            }
            TapeOp::PopFma { c } => {
                sp -= 1;
                let cv = _mm256_set1_pd(c);
                for ch in 0..NC {
                    acc[ch] = _mm256_fmadd_pd(acc[ch], cv, stack[sp][ch]);
                }
            }
        }
    }
    for (c, a) in acc.iter().enumerate() {
        // SAFETY: out.len() == 4·NC asserted by the caller.
        unsafe { _mm256_storeu_pd(out.as_mut_ptr().add(4 * c), *a) };
    }
}

/// # Safety
/// `p + off + w <=` allocation for every offset; `w % 4 == 0`; host
/// supports avx2+fma (checked by [`Avx2Ops::new`]).
#[target_feature(enable = "avx2,fma")]
unsafe fn add_rows(p: *mut f64, dst0: usize, a0: usize, b0: usize, w: usize) {
    for i in (0..w).step_by(4) {
        // SAFETY: i + 4 <= w, so every lane is inside the checked rows.
        unsafe {
            let a = _mm256_loadu_pd(p.add(a0 + i));
            let b = _mm256_loadu_pd(p.add(b0 + i));
            _mm256_storeu_pd(p.add(dst0 + i), _mm256_add_pd(a, b));
        }
    }
}

/// # Safety
/// Same contract as [`add_rows`].
#[target_feature(enable = "avx2,fma")]
unsafe fn mul_rows(p: *mut f64, dst0: usize, a0: usize, c: f64, w: usize) {
    let cv = _mm256_set1_pd(c);
    for i in (0..w).step_by(4) {
        // SAFETY: i + 4 <= w, so every lane is inside the checked rows.
        unsafe {
            let a = _mm256_loadu_pd(p.add(a0 + i));
            _mm256_storeu_pd(p.add(dst0 + i), _mm256_mul_pd(a, cv));
        }
    }
}

/// # Safety
/// Same contract as [`add_rows`].
#[target_feature(enable = "avx2,fma")]
unsafe fn fma_rows(p: *mut f64, dst0: usize, acc0: usize, a0: usize, c: f64, w: usize) {
    let cv = _mm256_set1_pd(c);
    for i in (0..w).step_by(4) {
        // SAFETY: i + 4 <= w, so every lane is inside the checked rows.
        unsafe {
            let a = _mm256_loadu_pd(p.add(a0 + i));
            let acc = _mm256_loadu_pd(p.add(acc0 + i));
            _mm256_storeu_pd(p.add(dst0 + i), _mm256_fmadd_pd(a, cv, acc));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avx2_rows_are_bit_identical_to_mul_add() {
        let Some(ops) = Avx2Ops::new() else {
            return; // host without avx2+fma: constructor refuses, nothing to test
        };
        let w = 16;
        let mut regs = vec![0.0; 3 * w];
        for i in 0..w {
            regs[w + i] = 0.1 * (i as f64) - 0.3;
            regs[2 * w + i] = 1.0 / (1.0 + i as f64);
        }
        let (r1, r2) = (regs[w..2 * w].to_vec(), regs[2 * w..3 * w].to_vec());
        let c = 0.123456789;
        ops.fma(&mut regs, 0, w, 2 * w, c, w);
        for i in 0..w {
            let want = r2[i].mul_add(c, r1[i]);
            assert_eq!(regs[i].to_bits(), want.to_bits(), "lane {i}");
        }
        ops.add(&mut regs, 0, 0, w, w);
        ops.mul(&mut regs, 0, 0, -2.5, w);
        for i in 0..w {
            let want = (r2[i].mul_add(c, r1[i]) + r1[i]) * -2.5;
            assert_eq!(regs[i].to_bits(), want.to_bits(), "lane {i}");
        }
    }

    #[test]
    fn fused_tape_matches_the_portable_evaluator_bitwise() {
        let Some(ops) = Avx2Ops::new() else {
            return; // host without avx2+fma
        };
        for w in [16usize, 32, 64] {
            let raw: Vec<f64> = (0..4 * w).map(|i| 0.173 * (i as f64) - 11.0).collect();
            let rtaps = [
                RTap::Direct { base: 0 },
                RTap::Split {
                    home: w,
                    nbr: 2 * w,
                    dx: 3,
                },
                RTap::Split {
                    home: w,
                    nbr: 3 * w,
                    dx: -5,
                },
            ];
            let tape = [
                TapeOp::Set { tap: 1 },
                TapeOp::TapAdd { tap: 0 },
                TapeOp::Push,
                TapeOp::Set { tap: 2 },
                TapeOp::Mul { c: 0.75 },
                TapeOp::PopFma { c: -1.25 },
                TapeOp::Fma { tap: 0, c: 2.5 },
                TapeOp::FmaRev { tap: 2, c: 0.5 },
                TapeOp::AddTap { tap: 1 },
            ];
            let mut want = vec![0.0; w];
            fuse::eval_row_portable(&tape, &rtaps, &raw, w, &mut want);
            let mut got = vec![0.0; w];
            ops.eval_row(&tape, &rtaps, &raw, w, &mut got);
            for i in 0..w {
                assert_eq!(got[i].to_bits(), want[i].to_bits(), "w={w} lane {i}");
            }
        }
    }

    // Micro-benchmark for the fused evaluator, kept out of normal runs:
    // `cargo test -p brick-vm --release -- --ignored --nocapture eval_row_micro`
    #[test]
    #[ignore]
    fn eval_row_micro() {
        let Some(ops) = Avx2Ops::new() else {
            return;
        };
        let w = 32usize;
        let raw: Vec<f64> = (0..64 * w).map(|i| 0.173 * (i as f64) - 11.0).collect();
        // star-7-shaped tape: 7 direct/split taps, straight chain
        let rtaps: Vec<RTap> = (0..7)
            .map(|t| {
                if t < 5 {
                    RTap::Direct { base: t * w }
                } else {
                    RTap::Split {
                        home: t * w,
                        nbr: (t + 1) * w,
                        dx: if t == 5 { 1 } else { -1 },
                    }
                }
            })
            .collect();
        let tape = [
            TapeOp::Set { tap: 0 },
            TapeOp::Fma { tap: 1, c: 0.1 },
            TapeOp::Fma { tap: 2, c: 0.2 },
            TapeOp::Fma { tap: 3, c: 0.3 },
            TapeOp::Fma { tap: 4, c: 0.4 },
            TapeOp::Fma { tap: 5, c: 0.5 },
            TapeOp::Fma { tap: 6, c: 0.6 },
        ];
        let mut out = vec![0.0; w];
        let iters = 4_000_000u64;
        let t0 = std::time::Instant::now();
        for _ in 0..iters {
            ops.eval_row(&tape, &rtaps, &raw, w, &mut out);
            std::hint::black_box(&mut out);
        }
        let dt = t0.elapsed().as_secs_f64();
        let rows_per_s = iters as f64 / dt;
        println!(
            "eval_row micro: {:.1} Mrows/s ({:.1} Mpts/s, {:.0} cycles/row at 2.1GHz)",
            rows_per_s / 1e6,
            rows_per_s * w as f64 / 1e6,
            2.1e9 / rows_per_s
        );
    }

    // Same, but through the block path on a real fused star-7 kernel —
    // the executor's hot loop minus grid traffic.
    // `cargo test -p brick-vm --release -- --ignored --nocapture eval_block_micro`
    #[test]
    #[ignore]
    fn eval_block_micro() {
        use brick_codegen::{generate, CodegenOptions, LayoutKind};
        use brick_dsl::shape::StencilShape;

        let Some(ops) = Avx2Ops::new() else {
            return;
        };
        let st = StencilShape::star(1).stencil();
        let b = st.default_bindings();
        let k = generate(&st, &b, LayoutKind::Brick, 32, CodegenOptions::default()).unwrap();
        let fused = fuse::fuse(&k).expect("star-7 fuses");
        let w = k.width;
        let vol = k.block.bx * k.block.by * k.block.bz;
        let raw: Vec<f64> = (0..32 * vol).map(|i| 0.173 * (i as f64) - 11.0).collect();
        // resolve every tap into the middle of the buffer, mimicking a
        // brick whose neighbours are all allocated
        let rtaps: Vec<RTap> = fused
            .taps()
            .iter()
            .enumerate()
            .map(|(i, t)| match *t {
                fuse::Tap::Direct { .. } => RTap::Direct {
                    base: (i % 16) * vol / 16,
                },
                fuse::Tap::Shifted { dx, .. } => RTap::Split {
                    home: (i % 16) * vol / 16,
                    nbr: 16 * vol + (i % 16) * w,
                    dx: dx as isize,
                },
            })
            .collect();
        let mut out = vec![0.0; vol];
        let iters = 400_000u64;
        let t0 = std::time::Instant::now();
        for _ in 0..iters {
            ops.eval_block(&fused, &rtaps, &raw, w, &mut out, |rp| rp.out_off);
            std::hint::black_box(&mut out);
        }
        let dt = t0.elapsed().as_secs_f64();
        let rows = fused.rows().len() as f64;
        let rows_per_s = iters as f64 * rows / dt;
        println!(
            "eval_block micro: {:.1} Mrows/s ({:.1} Mpts/s, {:.0} cycles/row at 2.1GHz)",
            rows_per_s / 1e6,
            rows_per_s * w as f64 / 1e6,
            2.1e9 / rows_per_s
        );

        // per-brick resolve cost, the other half of the executor loop
        let row27: [u32; 27] = std::array::from_fn(|i| i as u32);
        let mut rbuf = vec![RTap::Direct { base: 0 }; fused.taps_len()];
        let t0 = std::time::Instant::now();
        for _ in 0..iters {
            fused.resolve_brick(&row27, 0, &mut rbuf);
            std::hint::black_box(&mut rbuf);
        }
        let dt = t0.elapsed().as_secs_f64();
        println!(
            "resolve micro: {:.0} cycles/brick ({:.1} cycles/row)",
            2.1e9 * dt / iters as f64,
            2.1e9 * dt / (iters as f64 * rows)
        );
    }

    #[test]
    #[should_panic(expected = "escapes register file")]
    fn out_of_bounds_rows_panic_before_any_pointer_forms() {
        let Some(ops) = Avx2Ops::new() else {
            panic!("escapes register file (host lacks avx2; nothing to check)")
        };
        let mut regs = vec![0.0; 8];
        ops.add(&mut regs, 8, 0, 0, 8);
    }
}
