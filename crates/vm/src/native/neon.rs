//! NEON row backend (aarch64).
//!
//! Mirrors [`super::avx2`] with 2-lane `float64x2_t` vectors; see that
//! module for the three-layer safety argument (brick-safe compile-time
//! proof BS001–BS011, per-call row assertions, feature-gated
//! construction). NEON is part of
//! the aarch64 baseline, so detection is trivially true on this
//! architecture. `vfmaq_f64` is the correctly-rounded IEEE-754 fused
//! multiply-add — bit-identical to `f64::mul_add` — so this backend is
//! exact against the interpreter (ULP bound 0).
#![allow(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

use core::arch::aarch64::{
    float64x2_t, vaddq_f64, vdupq_n_f64, vfmaq_f64, vld1q_f64, vmovq_n_f64, vmulq_f64, vst1q_f64,
};

use super::fuse::{self, RTap, TapeOp, MAX_STACK};
use super::RowOps;

/// NEON rows. On aarch64 the feature is baseline, so construction is
/// infallible there (the type does not exist on other architectures).
pub(crate) struct NeonOps(());

impl NeonOps {
    /// Construct the backend (NEON is baseline on aarch64).
    pub(crate) fn new() -> NeonOps {
        NeonOps(())
    }
}

/// Same contract as the AVX2 `check_rows`, with 2-lane vectors.
fn check_rows(len: usize, w: usize, offs: [usize; 3]) {
    assert!(w >= 2 && w % 2 == 0, "width {w} is not a multiple of 2");
    for off in offs {
        assert!(off + w <= len, "row {off}+{w} escapes register file {len}");
    }
}

impl RowOps for NeonOps {
    fn add(&self, regs: &mut [f64], dst0: usize, a0: usize, b0: usize, w: usize) {
        check_rows(regs.len(), w, [dst0, a0, b0]);
        // SAFETY: rows checked in-bounds above; NEON is aarch64 baseline.
        unsafe { add_rows(regs.as_mut_ptr(), dst0, a0, b0, w) }
    }

    fn mul(&self, regs: &mut [f64], dst0: usize, a0: usize, c: f64, w: usize) {
        check_rows(regs.len(), w, [dst0, a0, a0]);
        // SAFETY: rows checked in-bounds above; NEON is aarch64 baseline.
        unsafe { mul_rows(regs.as_mut_ptr(), dst0, a0, c, w) }
    }

    fn fma(&self, regs: &mut [f64], dst0: usize, acc0: usize, a0: usize, c: f64, w: usize) {
        check_rows(regs.len(), w, [dst0, acc0, a0]);
        // SAFETY: rows checked in-bounds above; NEON is aarch64 baseline.
        unsafe { fma_rows(regs.as_mut_ptr(), dst0, acc0, a0, c, w) }
    }

    fn eval_row(&self, tape: &[TapeOp], rtaps: &[RTap], raw: &[f64], w: usize, out: &mut [f64]) {
        assert_eq!(out.len(), w, "output row length mismatch");
        // Same contract as the AVX2 evaluator: check_tape proves every
        // row the program loads is inside `raw` before any pointer forms,
        // and its returned stack depth picks a stackless instantiation
        // for straight-chain tapes.
        let max_sp = fuse::check_tape(tape, rtaps, raw.len(), w);
        // SAFETY: bounds established above; NEON is aarch64 baseline.
        unsafe {
            match (w, max_sp) {
                (16, 0) => eval_tape::<8, 0>(tape, rtaps, raw, out),
                (16, _) => eval_tape::<8, MAX_STACK>(tape, rtaps, raw, out),
                (32, 0) => eval_tape::<16, 0>(tape, rtaps, raw, out),
                (32, _) => eval_tape::<16, MAX_STACK>(tape, rtaps, raw, out),
                (64, 0) => eval_tape::<32, 0>(tape, rtaps, raw, out),
                (64, _) => eval_tape::<32, MAX_STACK>(tape, rtaps, raw, out),
                _ => fuse::eval_row_portable(tape, rtaps, raw, w, out),
            }
        }
    }

    fn eval_block<F: Fn(&fuse::RowProg) -> usize>(
        &self,
        fused: &fuse::FusedKernel,
        rtaps: &[RTap],
        raw: &[f64],
        w: usize,
        out: &mut [f64],
        row_start: F,
    ) {
        // Same split as the AVX2 backend: tap-table bounds hold by the
        // brick-safe proof (BS001–BS003) plus the executor's per-run
        // premise, re-asserted here in debug builds; tap ids and stack
        // depth stay bounds-checked per op.
        if cfg!(debug_assertions) {
            fuse::check_taps(rtaps, raw.len(), w);
        }
        for rp in fused.rows() {
            let s = row_start(rp);
            let out_row = &mut out[s..s + w];
            // SAFETY: tap rows in-bounds by the BS001–BS003 proof plus
            // the executor's per-run premise (re-asserted above in debug
            // builds); `out_row.len() == w` by the slice; NEON is
            // aarch64 baseline.
            unsafe {
                match (w, &rp.fast) {
                    (16, Some(fr)) => eval_fast::<8>(fr, rtaps, raw, out_row),
                    (32, Some(fr)) => eval_fast::<16>(fr, rtaps, raw, out_row),
                    (64, Some(fr)) => eval_fast::<32>(fr, rtaps, raw, out_row),
                    (16, None) if rp.max_sp == 0 => {
                        eval_tape::<8, 0>(&rp.tape, rtaps, raw, out_row)
                    }
                    (16, None) => eval_tape::<8, MAX_STACK>(&rp.tape, rtaps, raw, out_row),
                    (32, None) if rp.max_sp == 0 => {
                        eval_tape::<16, 0>(&rp.tape, rtaps, raw, out_row)
                    }
                    (32, None) => eval_tape::<16, MAX_STACK>(&rp.tape, rtaps, raw, out_row),
                    (64, None) if rp.max_sp == 0 => {
                        eval_tape::<32, 0>(&rp.tape, rtaps, raw, out_row)
                    }
                    (64, None) => eval_tape::<32, MAX_STACK>(&rp.tape, rtaps, raw, out_row),
                    _ => fuse::eval_row_portable(&rp.tape, rtaps, raw, w, out_row),
                }
            }
        }
    }
}

/// Combine one accumulator chunk with one tap chunk; mirrors the AVX2
/// `combine` (0 = set, 1 = acc+t, 2 = t+acc, 3 = acc+t·c fused,
/// 4 = t+acc·c fused). Operand order is preserved exactly.
#[target_feature(enable = "neon")]
#[inline]
fn combine<const MODE: u8>(acc: float64x2_t, t: float64x2_t, cv: float64x2_t) -> float64x2_t {
    match MODE {
        0 => t,
        1 => vaddq_f64(acc, t),
        2 => vaddq_f64(t, acc),
        // vfmaq_f64(a, b, c) = a + b·c, fused
        3 => vfmaq_f64(acc, t, cv),
        _ => vfmaq_f64(t, acc, cv),
    }
}

/// Apply one tap op across all `NC` accumulator chunks; mirrors the AVX2
/// `apply` with 2-lane chunks.
///
/// # Safety
/// `check_tape` invariants: `base/home/nbr + w ≤ raw.len()` and
/// `0 < |dx| < w`, with `w = 2·NC`.
#[target_feature(enable = "neon")]
#[inline]
unsafe fn apply<const NC: usize, const MODE: u8>(
    acc: &mut [float64x2_t; NC],
    rt: RTap,
    p: *const f64,
    cv: float64x2_t,
) {
    match rt {
        RTap::Direct { base } => {
            for c in 0..NC {
                // SAFETY: lanes [2c, 2c+2) of the checked row `base`.
                let t = unsafe { vld1q_f64(p.add(base + 2 * c)) };
                acc[c] = combine::<MODE>(acc[c], t, cv);
            }
        }
        RTap::Split { home, nbr, dx } => {
            let w = (NC * 2) as isize;
            for c in 0..NC {
                let j0 = (2 * c) as isize + dx;
                // SAFETY: lane j of `home` is read only for 0 ≤ j < w and
                // the wrapped lane j∓w ∈ [0, w) of `nbr` otherwise; both
                // rows checked in-bounds.
                let t = unsafe {
                    if j0 >= 0 && j0 + 1 < w {
                        vld1q_f64(p.add(home).offset(j0))
                    } else if dx > 0 && j0 >= w {
                        vld1q_f64(p.add(nbr).offset(j0 - w))
                    } else if dx < 0 && j0 + 1 < 0 {
                        vld1q_f64(p.add(nbr).offset(j0 + w))
                    } else {
                        let mut t = [0.0f64; 2];
                        for (l, v) in t.iter_mut().enumerate() {
                            let j = j0 + l as isize;
                            *v = if j < 0 {
                                *p.add(nbr).offset(j + w)
                            } else if j < w {
                                *p.add(home).offset(j)
                            } else {
                                *p.add(nbr).offset(j - w)
                            };
                        }
                        vld1q_f64(t.as_ptr())
                    }
                };
                acc[c] = combine::<MODE>(acc[c], t, cv);
            }
        }
    }
}

/// Straight-chain fast path: mirrors the AVX2 `eval_fast` with 2-lane
/// chunks. [`fuse::FastRow`] is a `Set · Fma* · Mul?` chain, so the body
/// is pure unrolled FMA with no per-op dispatch — the accumulators stay
/// in registers for the whole row. Plain stores only: A64 streaming
/// stores (STNP) have no stable intrinsic, and this backend cannot be
/// perf-validated on the x86 reference host anyway.
///
/// # Safety
/// Every tap row must be in-bounds for `raw.len()` and `w` — established
/// by the brick-safe proof (BS001–BS003) plus the executor's per-run
/// premise, or by an explicit [`fuse::check_taps`] run — and
/// `out.len() == w == 2·NC` must hold. Tap ids are accessed with
/// bounds-checked indexing.
#[target_feature(enable = "neon")]
unsafe fn eval_fast<const NC: usize>(
    fr: &fuse::FastRow,
    rtaps: &[RTap],
    raw: &[f64],
    out: &mut [f64],
) {
    let p = raw.as_ptr();
    let zero = vmovq_n_f64(0.0);
    let mut acc = [zero; NC];
    // SAFETY: tap rows in-bounds per this fn's contract (BS001–BS003 +
    // premise); tap id bounds-checked by the slice index.
    unsafe { apply::<NC, 0>(&mut acc, rtaps[fr.first as usize], p, zero) };
    for &(t, coeff) in &fr.fmas {
        // SAFETY: as above.
        unsafe { apply::<NC, 3>(&mut acc, rtaps[t as usize], p, vdupq_n_f64(coeff)) };
    }
    if let Some(s) = fr.scale {
        let sv = vdupq_n_f64(s);
        for a in acc.iter_mut() {
            *a = vmulq_f64(*a, sv);
        }
    }
    for (c, a) in acc.iter().enumerate() {
        // SAFETY: out.len() == 2·NC asserted by the caller.
        unsafe { vst1q_f64(out.as_mut_ptr().add(2 * c), *a) };
    }
}

/// In-register fused-tape interpreter over `NC` 2-lane vectors
/// (`w = 2·NC`); mirrors the AVX2 evaluator. `SP` sizes the value stack
/// (0 for straight-chain tapes).
///
/// # Safety
/// Every tap row must be in-bounds for `raw.len()` and `w` — established
/// by the brick-safe proof (BS001–BS003) plus the executor's per-run
/// premise, or by an explicit [`fuse::check_taps`]/[`fuse::check_tape`]
/// run — and `out.len() == w == 2·NC` must hold. Tap ids and the
/// `SP`-sized value stack are accessed with bounds-checked indexing, so
/// a malformed tape panics rather than forming a stray pointer.
#[target_feature(enable = "neon")]
unsafe fn eval_tape<const NC: usize, const SP: usize>(
    tape: &[TapeOp],
    rtaps: &[RTap],
    raw: &[f64],
    out: &mut [f64],
) {
    let p = raw.as_ptr();
    let zero = vmovq_n_f64(0.0);
    let mut acc = [zero; NC];
    let mut stack = [[zero; NC]; SP];
    let mut sp = 0usize;
    for op in tape {
        match *op {
            // SAFETY: tap rows in-bounds per this fn's contract
            // (BS001–BS003 + premise); tap id bounds-checked here.
            TapeOp::Set { tap } => unsafe {
                apply::<NC, 0>(&mut acc, rtaps[tap as usize], p, zero)
            },
            // SAFETY: as for Set.
            TapeOp::AddTap { tap } => unsafe {
                apply::<NC, 1>(&mut acc, rtaps[tap as usize], p, zero)
            },
            // SAFETY: as for Set.
            TapeOp::TapAdd { tap } => unsafe {
                apply::<NC, 2>(&mut acc, rtaps[tap as usize], p, zero)
            },
            TapeOp::Mul { c } => {
                let cv = vdupq_n_f64(c);
                for a in acc.iter_mut() {
                    *a = vmulq_f64(*a, cv);
                }
            }
            // SAFETY: as for Set.
            TapeOp::Fma { tap, c } => unsafe {
                apply::<NC, 3>(&mut acc, rtaps[tap as usize], p, vdupq_n_f64(c))
            },
            // SAFETY: as for Set.
            TapeOp::FmaRev { tap, c } => unsafe {
                apply::<NC, 4>(&mut acc, rtaps[tap as usize], p, vdupq_n_f64(c))
            },
            TapeOp::Push => {
                stack[sp] = acc;
                sp += 1;
            }
            TapeOp::PopAdd => {
                sp -= 1;
                for c in 0..NC {
                    acc[c] = vaddq_f64(stack[sp][c], acc[c]);
                }
            }
            TapeOp::PopFma { c } => {
                sp -= 1;
                let cv = vdupq_n_f64(c);
                for ch in 0..NC {
                    // pop + acc·c, fused
                    acc[ch] = vfmaq_f64(stack[sp][ch], acc[ch], cv);
                }
            }
        }
    }
    for (c, a) in acc.iter().enumerate() {
        // SAFETY: out.len() == 2·NC asserted by the caller.
        unsafe { vst1q_f64(out.as_mut_ptr().add(2 * c), *a) };
    }
}

/// # Safety
/// `p + off + w <=` allocation for every offset; `w % 2 == 0`.
#[target_feature(enable = "neon")]
unsafe fn add_rows(p: *mut f64, dst0: usize, a0: usize, b0: usize, w: usize) {
    for i in (0..w).step_by(2) {
        // SAFETY: i + 2 <= w, so every lane is inside the checked rows.
        unsafe {
            let a = vld1q_f64(p.add(a0 + i));
            let b = vld1q_f64(p.add(b0 + i));
            vst1q_f64(p.add(dst0 + i), vaddq_f64(a, b));
        }
    }
}

/// # Safety
/// Same contract as [`add_rows`].
#[target_feature(enable = "neon")]
unsafe fn mul_rows(p: *mut f64, dst0: usize, a0: usize, c: f64, w: usize) {
    let cv = vdupq_n_f64(c);
    for i in (0..w).step_by(2) {
        // SAFETY: i + 2 <= w, so every lane is inside the checked rows.
        unsafe {
            let a = vld1q_f64(p.add(a0 + i));
            vst1q_f64(p.add(dst0 + i), vmulq_f64(a, cv));
        }
    }
}

/// # Safety
/// Same contract as [`add_rows`].
#[target_feature(enable = "neon")]
unsafe fn fma_rows(p: *mut f64, dst0: usize, acc0: usize, a0: usize, c: f64, w: usize) {
    let cv = vdupq_n_f64(c);
    for i in (0..w).step_by(2) {
        // SAFETY: i + 2 <= w, so every lane is inside the checked rows.
        unsafe {
            let a = vld1q_f64(p.add(a0 + i));
            let acc = vld1q_f64(p.add(acc0 + i));
            // vfmaq_f64(acc, a, c) = acc + a*c, fused
            vst1q_f64(p.add(dst0 + i), vfmaq_f64(acc, a, cv));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neon_rows_are_bit_identical_to_mul_add() {
        let ops = NeonOps::new();
        let w = 16;
        let mut regs = vec![0.0; 3 * w];
        for i in 0..w {
            regs[w + i] = 0.1 * (i as f64) - 0.3;
            regs[2 * w + i] = 1.0 / (1.0 + i as f64);
        }
        let (r1, r2) = (regs[w..2 * w].to_vec(), regs[2 * w..3 * w].to_vec());
        let c = 0.123456789;
        ops.fma(&mut regs, 0, w, 2 * w, c, w);
        for i in 0..w {
            let want = r2[i].mul_add(c, r1[i]);
            assert_eq!(regs[i].to_bits(), want.to_bits(), "lane {i}");
        }
    }
}
