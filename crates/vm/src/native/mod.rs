//! Native execution backend: the vector IR compiled instead of interpreted.
//!
//! The interpreter in [`crate::exec`] walks the IR op-by-op with closure
//! indirection per row and a scratch copy per elementwise op; worse, on
//! baseline x86-64 (no FMA target feature) every `f64::mul_add` lane is a
//! libm call. This module recovers the performance the paper's generated
//! kernels are supposed to have, in two layers:
//!
//! 1. **Lowering** ([`Plan::compile`]): the verified IR is lowered once per
//!    kernel to a flat step program with pre-resolved register offsets,
//!    inlined coefficient values, and shuffles (`ShiftX`) reduced to at most
//!    two contiguous range copies. Elementwise steps write their destination
//!    row in place (lane `i` depends only on lane `i`, so no scratch row is
//!    needed except for the rare aliased shift).
//! 2. **Row backends** ([`RowOps`]): the elementwise steps (`Add`/`Mul`/
//!    `Fma`) execute through a monomorphic backend — a safe portable
//!    implementation (the `Auto` floor on hosts without SIMD), AVX2+FMA
//!    intrinsics behind `is_x86_feature_detected!`, or NEON on aarch64.
//!
//! Every backend is **bit-identical** to the interpreter: lowering preserves
//! the interpreter's operation order and fusion exactly, and the only
//! rounding-relevant instruction — FMA — is the correctly-rounded IEEE fused
//! multiply-add in all implementations (`f64::mul_add`, `_mm256_fmadd_pd`,
//! and `vfmaq_f64` compute the same value for the same operands). The
//! documented ULP bound for the SIMD backends is therefore **zero**: no FMA
//! contraction is introduced beyond what the interpreter already fuses.
//!
//! # Safety argument
//!
//! The `unsafe` surface is confined to the [`avx2`]/[`neon`] submodules
//! (pointer arithmetic into the register file and input slab). Its
//! preconditions are discharged *statically* by **brick-safe**
//! ([`safe`]): an abstract-interpretation pass over the lowered
//! `Plan`/`RowProg` program that [`Plan::compile`] runs before the plan
//! can reach a dispatcher. Each precondition is a named obligation with a
//! stable `BSxxx` diagnostic code (catalogued in DESIGN.md §13); an
//! unprovable plan is rejected with `VmError::UnsafePlan` carrying the
//! full report. The layers beneath it:
//!
//! * the analyzer's bounds proof ([`brick_lint::prove_bounds`]) — every
//!   register index, lane range, shift distance, and coefficient index is
//!   re-checked against the kernel's declared shape before lowering, and the
//!   footprint pass's load reach bounds every out-of-block access (checked
//!   against ghost/halo coverage by the callers in [`crate::exec`]);
//! * brick-safe's obligations over the lowered form (BS001–BS011) — tap and
//!   store rows in-slab for all blocks, seam shifts in range, tape stack
//!   discipline, lane geometry, register-file bounds — plus the cheap
//!   per-run premise checks in [`crate::exec`] (whole-brick slab with valid
//!   interior adjacency rows; array tap intervals inside the padded slab
//!   via `Plan::check_array_geometry`);
//! * a runtime assertion per step-machine row op in the safe wrappers —
//!   offsets are checked against the register file length before any
//!   pointer is formed — and debug-build re-checks of the resolved tap
//!   tables in the fused evaluators ([`fuse::check_taps`]).

pub(crate) mod fuse;
mod plan;
mod portable;
pub(crate) mod safe;

#[cfg(target_arch = "x86_64")]
mod avx2;
#[cfg(target_arch = "aarch64")]
mod neon;

pub use plan::Plan;
pub(crate) use portable::PortableOps;
pub use safe::SafetySummary;

use crate::exec::VmError;

/// How a vector kernel should be executed.
///
/// Modeled on the `KernelExecutor` dispatch of cpu-sparse-experiments:
/// `Scalar` is always available, `Auto` picks the best backend the host
/// supports, and the forced modes fail (gracefully, with a [`VmError`])
/// when the host cannot run them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExecutionMode {
    /// The reference interpreter ([`crate::exec`]) — the differential
    /// oracle every compiled backend is validated against.
    Scalar,
    /// Runtime dispatch: AVX2+FMA when detected, NEON on aarch64,
    /// otherwise the portable compiled backend. Never fails.
    #[default]
    Auto,
    /// Force the AVX2+FMA backend; errors when the host lacks it.
    Avx2,
    /// Force the NEON backend; errors off aarch64.
    Neon,
}

impl ExecutionMode {
    /// All modes, for CLI help and test sweeps.
    pub const ALL: [ExecutionMode; 4] = [
        ExecutionMode::Scalar,
        ExecutionMode::Auto,
        ExecutionMode::Avx2,
        ExecutionMode::Neon,
    ];

    /// Parse a mode name (`scalar`/`auto`/`avx2`/`neon`, case-insensitive).
    pub fn parse(s: &str) -> Result<ExecutionMode, String> {
        match s.to_ascii_lowercase().as_str() {
            "scalar" | "interp" | "interpreter" => Ok(ExecutionMode::Scalar),
            "auto" => Ok(ExecutionMode::Auto),
            "avx2" => Ok(ExecutionMode::Avx2),
            "neon" => Ok(ExecutionMode::Neon),
            other => Err(format!(
                "unknown execution mode `{other}` (expected scalar, auto, avx2, or neon)"
            )),
        }
    }

    /// The process-wide default mode: `BRICK_EXEC` when set to a valid mode
    /// name, otherwise [`ExecutionMode::Auto`]. An unset, empty, or invalid
    /// variable falls back to `Auto` (the CLIs parse `--exec-mode`
    /// strictly; this lossy path only backs the parameterless wrappers).
    pub fn from_env() -> ExecutionMode {
        match std::env::var("BRICK_EXEC") {
            Ok(v) if !v.trim().is_empty() => {
                ExecutionMode::parse(v.trim()).unwrap_or(ExecutionMode::Auto)
            }
            _ => ExecutionMode::Auto,
        }
    }
}

impl std::fmt::Display for ExecutionMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ExecutionMode::Scalar => "scalar",
            ExecutionMode::Auto => "auto",
            ExecutionMode::Avx2 => "avx2",
            ExecutionMode::Neon => "neon",
        })
    }
}

impl std::str::FromStr for ExecutionMode {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ExecutionMode::parse(s)
    }
}

/// SIMD capabilities of a host, as used by backend resolution.
///
/// A plain value (rather than inline `is_x86_feature_detected!` calls) so
/// resolution is a pure function — the AVX2-unavailable fallback path is
/// testable on any machine by handing [`resolve_with`] a synthetic feature
/// set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CpuFeatures {
    /// x86-64 AVX2 (256-bit integer/double lanes).
    pub avx2: bool,
    /// x86-64 FMA3 (fused multiply-add).
    pub fma: bool,
    /// aarch64 Advanced SIMD (baseline on aarch64).
    pub neon: bool,
}

impl CpuFeatures {
    /// Detect the running host's features.
    pub fn detect() -> CpuFeatures {
        CpuFeatures {
            #[cfg(target_arch = "x86_64")]
            avx2: std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(target_arch = "x86_64")]
            fma: std::arch::is_x86_feature_detected!("fma"),
            #[cfg(not(target_arch = "x86_64"))]
            avx2: false,
            #[cfg(not(target_arch = "x86_64"))]
            fma: false,
            neon: cfg!(target_arch = "aarch64"),
        }
    }
}

impl std::fmt::Display for CpuFeatures {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut any = false;
        for (on, name) in [(self.avx2, "avx2"), (self.fma, "fma"), (self.neon, "neon")] {
            if on {
                if any {
                    f.write_str("+")?;
                }
                f.write_str(name)?;
                any = true;
            }
        }
        if !any {
            f.write_str("(none)")?;
        }
        Ok(())
    }
}

/// The concrete executor a mode resolved to on a given host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The reference interpreter.
    Interpreter,
    /// Compiled plan, portable safe row ops.
    Portable,
    /// Compiled plan, AVX2+FMA row ops.
    Avx2,
    /// Compiled plan, NEON row ops.
    Neon,
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Backend::Interpreter => "interpreter",
            Backend::Portable => "portable",
            Backend::Avx2 => "avx2",
            Backend::Neon => "neon",
        })
    }
}

/// Resolve a mode against an explicit feature set. Pure: the only
/// fallible cases are the forced modes on hosts that lack them, which
/// return `Err` (degrade with a message, never panic).
pub fn resolve_with(mode: ExecutionMode, features: CpuFeatures) -> Result<Backend, String> {
    match mode {
        ExecutionMode::Scalar => Ok(Backend::Interpreter),
        ExecutionMode::Auto => Ok(if features.avx2 && features.fma {
            Backend::Avx2
        } else if features.neon {
            Backend::Neon
        } else {
            Backend::Portable
        }),
        ExecutionMode::Avx2 => {
            if features.avx2 && features.fma {
                Ok(Backend::Avx2)
            } else {
                Err(format!(
                    "execution mode `avx2` needs avx2+fma, host has {features}"
                ))
            }
        }
        ExecutionMode::Neon => {
            if features.neon {
                Ok(Backend::Neon)
            } else {
                Err(format!(
                    "execution mode `neon` needs aarch64 NEON, host has {features}"
                ))
            }
        }
    }
}

/// Resolve a mode on the running host.
pub fn resolve(mode: ExecutionMode) -> Result<Backend, VmError> {
    resolve_with(mode, CpuFeatures::detect()).map_err(VmError::Unsupported)
}

/// Elementwise row operations over the register file, implemented per
/// backend. `regs` is the flat register file; `*0` arguments are row base
/// offsets (`reg * width`) pre-validated by [`Plan::compile`]. All three
/// operations are elementwise (lane `i` of the destination depends only on
/// lane `i` of the sources), so implementations may write `dst` in place
/// even when it aliases a source row.
pub(crate) trait RowOps: Sync {
    /// `dst[i] = a[i] + b[i]` for `i in 0..w`.
    fn add(&self, regs: &mut [f64], dst0: usize, a0: usize, b0: usize, w: usize);
    /// `dst[i] = a[i] * c`.
    fn mul(&self, regs: &mut [f64], dst0: usize, a0: usize, c: f64, w: usize);
    /// `dst[i] = fma(a[i], c, acc[i])` — correctly-rounded fused.
    fn fma(&self, regs: &mut [f64], dst0: usize, acc0: usize, a0: usize, c: f64, w: usize);

    /// Evaluate one fused row program ([`fuse::TapeOp`]) over resolved
    /// taps straight from the input slab into an output row — the
    /// register-file-free fast path. The default is the safe portable
    /// evaluator; SIMD backends override it with an in-register tape
    /// interpreter behind their own bounds checks.
    ///
    /// The execution pipeline now enters through [`RowOps::eval_block`];
    /// this row-granularity entry is retained for the differential and
    /// micro tests, which exercise single rows against the portable
    /// evaluator.
    #[allow(dead_code)]
    fn eval_row(
        &self,
        tape: &[fuse::TapeOp],
        rtaps: &[fuse::RTap],
        raw: &[f64],
        w: usize,
        out: &mut [f64],
    ) {
        fuse::eval_row_portable(tape, rtaps, raw, w, out);
    }

    /// Evaluate every row program of a fused kernel for one resolved
    /// block. `row_start(rp)` maps a row program to its starting offset
    /// in `out` (brick-local for bricks, slab-relative for arrays). The
    /// block granularity lets SIMD backends validate the tap table once
    /// instead of re-walking each tape per row — the hot path for the
    /// compiled backends.
    fn eval_block<F: Fn(&fuse::RowProg) -> usize>(
        &self,
        fused: &fuse::FusedKernel,
        rtaps: &[fuse::RTap],
        raw: &[f64],
        w: usize,
        out: &mut [f64],
        row_start: F,
    ) {
        for rp in fused.rows() {
            let s = row_start(rp);
            fuse::eval_row_portable(&rp.tape, rtaps, raw, w, &mut out[s..s + w]);
        }
    }
}

/// A resolved backend's row ops, constructed only after feature checks.
pub(crate) enum NativeOps {
    /// Safe portable rows.
    Portable(PortableOps),
    /// AVX2+FMA rows (x86-64 with detected support only).
    #[cfg(target_arch = "x86_64")]
    Avx2(avx2::Avx2Ops),
    /// NEON rows (aarch64 only).
    #[cfg(target_arch = "aarch64")]
    Neon(neon::NeonOps),
}

/// Row ops for a compiled backend. `backend` must come from [`resolve`] on
/// this host (forced-mode errors have already been surfaced there); an
/// unsupported backend still degrades to an error, never a panic.
pub(crate) fn ops_for(backend: Backend) -> Result<NativeOps, VmError> {
    match backend {
        Backend::Interpreter => Err(VmError::Unsupported(
            "interpreter has no native row ops".into(),
        )),
        Backend::Portable => Ok(NativeOps::Portable(PortableOps)),
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => avx2::Avx2Ops::new()
            .map(NativeOps::Avx2)
            .ok_or_else(|| VmError::Unsupported("host lost avx2+fma after resolve".into())),
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => Ok(NativeOps::Neon(neon::NeonOps::new())),
        #[allow(unreachable_patterns)]
        other => Err(VmError::Unsupported(format!(
            "backend `{other}` is not compiled into this host's binary"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_names_round_trip() {
        for mode in ExecutionMode::ALL {
            assert_eq!(ExecutionMode::parse(&mode.to_string()), Ok(mode));
        }
        assert!(ExecutionMode::parse("sse9").is_err());
        assert_eq!(
            ExecutionMode::parse("Interpreter"),
            Ok(ExecutionMode::Scalar)
        );
    }

    #[test]
    fn auto_never_fails_and_degrades_without_simd() {
        // the AVX2-unavailable fallback: Auto on a host with no SIMD at all
        let none = CpuFeatures::default();
        assert_eq!(
            resolve_with(ExecutionMode::Auto, none),
            Ok(Backend::Portable)
        );
        // avx2 without fma is not enough for the fused backend
        let avx2_only = CpuFeatures {
            avx2: true,
            ..CpuFeatures::default()
        };
        assert_eq!(
            resolve_with(ExecutionMode::Auto, avx2_only),
            Ok(Backend::Portable)
        );
        let full = CpuFeatures {
            avx2: true,
            fma: true,
            neon: false,
        };
        assert_eq!(resolve_with(ExecutionMode::Auto, full), Ok(Backend::Avx2));
        let arm = CpuFeatures {
            neon: true,
            ..CpuFeatures::default()
        };
        assert_eq!(resolve_with(ExecutionMode::Auto, arm), Ok(Backend::Neon));
    }

    #[test]
    fn forced_modes_error_gracefully_when_unsupported() {
        let none = CpuFeatures::default();
        let err = resolve_with(ExecutionMode::Avx2, none).unwrap_err();
        assert!(err.contains("avx2"), "{err}");
        let err = resolve_with(ExecutionMode::Neon, none).unwrap_err();
        assert!(err.contains("neon"), "{err}");
        // and through the host-detecting path they surface as VmError
        let host = CpuFeatures::detect();
        if !host.neon {
            assert!(matches!(
                resolve(ExecutionMode::Neon),
                Err(VmError::Unsupported(_))
            ));
        }
    }

    #[test]
    fn scalar_always_resolves_to_the_interpreter() {
        for feats in [
            CpuFeatures::default(),
            CpuFeatures {
                avx2: true,
                fma: true,
                neon: true,
            },
        ] {
            assert_eq!(
                resolve_with(ExecutionMode::Scalar, feats),
                Ok(Backend::Interpreter)
            );
        }
    }

    #[test]
    fn env_default_is_auto() {
        // BRICK_EXEC is unset in the test environment
        if std::env::var("BRICK_EXEC").is_err() {
            assert_eq!(ExecutionMode::from_env(), ExecutionMode::Auto);
        }
    }

    #[test]
    fn feature_display_is_compact() {
        assert_eq!(CpuFeatures::default().to_string(), "(none)");
        let full = CpuFeatures {
            avx2: true,
            fma: true,
            neon: false,
        };
        assert_eq!(full.to_string(), "avx2+fma");
    }
}
