//! Address-space geometry for trace generation.
//!
//! Traces never need field *data* — only the address each transaction
//! touches. [`ArrayAddr`] models the padded allocation of an array-layout
//! field, and [`TraceGeometry`] bundles everything required to trace a
//! kernel over a domain: layout, block geometry, and the base addresses of
//! the input and output allocations.

use std::sync::Arc;

use brick_codegen::LayoutKind;
use brick_core::{BrickDims, BrickNav, TileIter};

/// Default base address of the input allocation (arbitrary, distinct from
/// the output so the cache simulator never aliases them).
pub const DEFAULT_IN_BASE: u64 = 0x1000_0000;
/// Default base address of the output allocation.
pub const DEFAULT_OUT_BASE: u64 = 0x9000_0000;

/// Padded lexicographic address space of an array-layout field.
///
/// Rows are padded in `x` by `pad_x` elements on each side so that the
/// full-vector edge loads of generated code stay in-bounds, exactly like
/// the `PADDING` of the paper's array kernels; `y`/`z` carry the stencil
/// halo only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrayAddr {
    nx: usize,
    ny: usize,
    nz: usize,
    halo: usize,
    pad_x: usize,
}

impl ArrayAddr {
    /// Address space for a domain of `extents` with the given `y`/`z` halo
    /// and an x padding of `pad_x ≥ halo` elements.
    pub fn new(extents: (usize, usize, usize), halo: usize, pad_x: usize) -> Self {
        assert!(pad_x >= halo, "x padding must cover the stencil halo");
        ArrayAddr {
            nx: extents.0,
            ny: extents.1,
            nz: extents.2,
            halo,
            pad_x,
        }
    }

    /// Total allocated elements.
    pub fn storage_len(&self) -> usize {
        (self.nx + 2 * self.pad_x) * (self.ny + 2 * self.halo) * (self.nz + 2 * self.halo)
    }

    /// Allocated bytes.
    pub fn storage_bytes(&self) -> u64 {
        self.storage_len() as u64 * 8
    }

    /// Byte offset of a logical point (interior origin at `(0,0,0)`;
    /// negative coordinates address halo/padding).
    #[inline]
    pub fn addr(&self, x: i64, y: i64, z: i64) -> u64 {
        let sx = (self.nx + 2 * self.pad_x) as i64;
        let sy = (self.ny + 2 * self.halo) as i64;
        let px = self.pad_x as i64;
        let h = self.halo as i64;
        debug_assert!(
            x >= -px && x < self.nx as i64 + px,
            "x {x} outside padded row"
        );
        debug_assert!(y >= -h && y < self.ny as i64 + h, "y {y} outside halo");
        debug_assert!(z >= -h && z < self.nz as i64 + h, "z {z} outside halo");
        let idx = ((z + h) * sy + (y + h)) * sx + (x + px);
        idx as u64 * 8
    }
}

/// Everything needed to replay a kernel's address stream over a domain.
#[derive(Debug, Clone)]
pub struct TraceGeometry {
    layout: LayoutKind,
    block: BrickDims,
    extents: (usize, usize, usize),
    /// Brick navigation (brick layout only).
    nav: Option<Arc<BrickNav>>,
    /// Array addressing (array layout only).
    array: Option<ArrayAddr>,
    /// Base address of the input allocation.
    pub in_base: u64,
    /// Base address of the output allocation.
    pub out_base: u64,
}

impl TraceGeometry {
    /// Geometry for a brick-layout field.
    pub fn brick(nav: Arc<BrickNav>) -> Self {
        let extents = nav.decomp().extents();
        let block = nav.dims();
        TraceGeometry {
            layout: LayoutKind::Brick,
            block,
            extents,
            nav: Some(nav),
            array: None,
            in_base: DEFAULT_IN_BASE,
            out_base: DEFAULT_OUT_BASE,
        }
    }

    /// Geometry for an array-layout field tiled by `block`, with halo
    /// `halo` and vector-width x padding.
    pub fn array(extents: (usize, usize, usize), halo: usize, block: BrickDims) -> Self {
        TraceGeometry {
            layout: LayoutKind::Array,
            block,
            extents,
            nav: None,
            array: Some(ArrayAddr::new(extents, halo, block.bx.max(halo))),
            in_base: DEFAULT_IN_BASE,
            out_base: DEFAULT_OUT_BASE,
        }
    }

    /// Override the allocation base addresses.
    pub fn with_bases(mut self, in_base: u64, out_base: u64) -> Self {
        self.in_base = in_base;
        self.out_base = out_base;
        self
    }

    /// The layout this geometry models.
    pub fn layout(&self) -> LayoutKind {
        self.layout
    }

    /// Home-block geometry.
    pub fn block(&self) -> BrickDims {
        self.block
    }

    /// Interior extents.
    pub fn extents(&self) -> (usize, usize, usize) {
        self.extents
    }

    /// Interior points.
    pub fn interior_points(&self) -> u64 {
        let (nx, ny, nz) = self.extents;
        (nx * ny * nz) as u64
    }

    /// Number of kernel blocks (bricks or tiles) launched over the domain.
    pub fn num_blocks(&self) -> usize {
        let (nx, ny, nz) = self.extents;
        (nx / self.block.bx) * (ny / self.block.by) * (nz / self.block.bz)
    }

    /// Brick navigation (panics on array geometry).
    pub fn nav(&self) -> &BrickNav {
        self.nav
            .as_ref()
            .expect("brick navigation on array geometry")
    }

    /// Array addressing (panics on brick geometry).
    pub fn array_addr(&self) -> &ArrayAddr {
        self.array
            .as_ref()
            .expect("array addressing on brick geometry")
    }

    /// Home brick id of launch block `i` (brick layout).
    pub fn home_brick(&self, i: usize) -> u32 {
        self.nav().decomp().interior_brick(i)
    }

    /// Tile origin of launch block `i` (array layout).
    pub fn tile_origin(&self, i: usize) -> [i64; 3] {
        TileIter::over(self.extents, self.block).tile(i).origin
    }

    /// Compulsory (cold, infinite-cache) bytes for one out-of-place sweep:
    /// one read + one write per interior point.
    pub fn compulsory_bytes(&self) -> u64 {
        self.interior_points() * 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brick_core::{BrickDecomp, BrickOrdering};

    #[test]
    fn array_addr_contiguous_in_x() {
        let a = ArrayAddr::new((8, 8, 8), 2, 32);
        assert_eq!(a.addr(1, 0, 0), a.addr(0, 0, 0) + 8);
        // row stride includes 2*pad_x
        assert_eq!(a.addr(0, 1, 0), a.addr(0, 0, 0) + (8 + 64) as u64 * 8);
    }

    #[test]
    fn array_addr_padding_in_bounds() {
        let a = ArrayAddr::new((8, 8, 8), 2, 32);
        assert_eq!(a.addr(-32, 0, 0), a.addr(0, 0, 0) - 32 * 8);
        assert!(a.storage_len() >= (8 + 64) * 12 * 12);
    }

    #[test]
    #[should_panic(expected = "x padding must cover")]
    fn pad_smaller_than_halo_rejected() {
        let _ = ArrayAddr::new((8, 8, 8), 4, 2);
    }

    fn brick_geom() -> TraceGeometry {
        let d = Arc::new(BrickDecomp::new(
            (8, 8, 8),
            BrickDims::new(4, 4, 4),
            2,
            BrickOrdering::Lexicographic,
        ));
        TraceGeometry::brick(Arc::new(BrickNav::new(d)))
    }

    #[test]
    fn block_counts_match_between_layouts() {
        let bg = brick_geom();
        let ag = TraceGeometry::array((8, 8, 8), 2, BrickDims::new(4, 4, 4));
        assert_eq!(bg.num_blocks(), 8);
        assert_eq!(ag.num_blocks(), 8);
        assert_eq!(bg.interior_points(), 512);
        assert_eq!(bg.compulsory_bytes(), 512 * 16);
    }

    #[test]
    fn home_brick_enumerates_interior() {
        let bg = brick_geom();
        let d = bg.nav().decomp();
        for i in 0..bg.num_blocks() {
            assert!(d.is_interior(bg.home_brick(i)));
        }
    }

    #[test]
    fn tile_origin_matches_tile_iter() {
        let ag = TraceGeometry::array((8, 8, 8), 1, BrickDims::new(4, 4, 4));
        assert_eq!(ag.tile_origin(0), [0, 0, 0]);
        assert_eq!(ag.tile_origin(1), [4, 0, 0]);
        assert_eq!(ag.tile_origin(2), [0, 4, 0]);
    }

    #[test]
    fn bases_default_distinct() {
        let g = TraceGeometry::array((8, 8, 8), 1, BrickDims::new(4, 4, 4));
        assert_ne!(g.in_base, g.out_base);
        let g2 = g.with_bases(0, 1 << 30);
        assert_eq!(g2.in_base, 0);
    }
}
