//! Scalar (non-codegen) kernels — the paper's `array` configuration and
//! the un-generated brick kernels of Fig. 2.
//!
//! One GPU thread computes one output point, gathering every tap with an
//! individual load; taps sharing a coefficient class are summed before the
//! multiply, exactly as written in the Fig. 2 sources. The address trace
//! is produced at warp granularity: the `width` threads of a row issue
//! each tap as one (or, across a brick boundary, two) contiguous
//! transactions which the cache hierarchy then coalesces into sectors.

use brick_codegen::LayoutKind;
use brick_core::{ArrayGrid, BrickDims, BrickGrid};
use brick_dsl::stencil::{CoeffBindings, Stencil, StencilError};
use rayon::prelude::*;

use crate::exec::VmError;
use crate::geom::TraceGeometry;
use crate::trace::TraceSink;

/// A scalar stencil kernel bound to a layout and block shape.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalarKernel {
    /// Kernel name, e.g. `13pt-star-r2_array`.
    pub name: String,
    /// Layout the kernel addresses.
    pub layout: LayoutKind,
    /// Thread-block / tile shape (`bx` = architecture SIMD width).
    pub block: BrickDims,
    /// Coefficient classes: `(weight, member offsets)`.
    pub classes: Vec<(f64, Vec<[i32; 3]>)>,
}

impl ScalarKernel {
    /// Bind `stencil` to a scalar kernel over the given layout with a
    /// `4 × 4 × width` thread block.
    pub fn new(
        stencil: &Stencil,
        bindings: &CoeffBindings,
        layout: LayoutKind,
        width: usize,
    ) -> Result<Self, StencilError> {
        let mut classes: Vec<(&brick_dsl::stencil::LinCoeff, f64, Vec<[i32; 3]>)> = Vec::new();
        for t in stencil.taps() {
            match classes.iter_mut().find(|(c, _, _)| **c == t.coeff) {
                Some((_, _, offs)) => offs.push(t.offset),
                None => classes.push((&t.coeff, t.coeff.eval(bindings)?, vec![t.offset])),
            }
        }
        Ok(ScalarKernel {
            name: format!("{}_{}", stencil.name(), layout),
            layout,
            block: BrickDims::for_simd_width(width),
            classes: classes.into_iter().map(|(_, w, o)| (w, o)).collect(),
        })
    }

    /// Number of stencil points.
    pub fn points(&self) -> usize {
        self.classes.iter().map(|(_, o)| o.len()).sum()
    }

    /// Number of coefficient classes.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Per-axis reach of the taps.
    pub fn reach(&self) -> [i32; 3] {
        let mut r = [0; 3];
        for (_, offs) in &self.classes {
            for o in offs {
                for d in 0..3 {
                    r[d] = r[d].max(o[d].abs());
                }
            }
        }
        r
    }

    /// Taps in issue order (class by class) — the order loads appear in
    /// the kernel body.
    pub fn taps_in_order(&self) -> impl Iterator<Item = (f64, [i32; 3])> + '_ {
        self.classes
            .iter()
            .flat_map(|(w, offs)| offs.iter().map(move |o| (*w, *o)))
    }
}

fn point_value_brick(
    kernel: &ScalarKernel,
    input: &BrickGrid,
    home: u32,
    lx: i64,
    ly: i64,
    lz: i64,
) -> f64 {
    let mut acc = 0.0;
    for (w, offs) in &kernel.classes {
        let mut s = 0.0;
        for o in offs {
            s += input.get_rel(home, lx + o[0] as i64, ly + o[1] as i64, lz + o[2] as i64);
        }
        acc += w * s;
    }
    acc
}

/// Execute a brick-layout scalar kernel out-of-place over all interior
/// bricks, in parallel over bricks.
pub fn run_scalar_brick(
    kernel: &ScalarKernel,
    input: &BrickGrid,
    output: &mut BrickGrid,
) -> Result<(), VmError> {
    if kernel.layout != LayoutKind::Brick {
        return Err(VmError::Mismatch("array kernel on brick grids".into()));
    }
    if kernel.block != input.dims() {
        return Err(VmError::Mismatch(format!(
            "kernel block {} != brick dims {}",
            kernel.block,
            input.dims()
        )));
    }
    let dims = input.dims();
    let vol = dims.volume();
    let decomp = std::sync::Arc::clone(input.decomp());
    output
        .raw_mut()
        .par_chunks_mut(vol)
        .enumerate()
        .for_each(|(id, out_chunk)| {
            let home = id as u32;
            if !decomp.is_interior(home) {
                return;
            }
            for lz in 0..dims.bz as i64 {
                for ly in 0..dims.by as i64 {
                    for lx in 0..dims.bx as i64 {
                        let v = point_value_brick(kernel, input, home, lx, ly, lz);
                        let off = dims.element_offset(lx as usize, ly as usize, lz as usize);
                        out_chunk[off] = v;
                    }
                }
            }
        });
    Ok(())
}

/// Execute an array-layout scalar kernel out-of-place over all tiles, in
/// parallel over z-slabs.
pub fn run_scalar_array(
    kernel: &ScalarKernel,
    input: &ArrayGrid,
    output: &mut ArrayGrid,
) -> Result<(), VmError> {
    if kernel.layout != LayoutKind::Array {
        return Err(VmError::Mismatch("brick kernel on array grids".into()));
    }
    let (nx, ny, nz) = input.extents();
    if output.extents() != (nx, ny, nz) || output.dense().halo() != input.dense().halo() {
        return Err(VmError::Mismatch("input/output shape mismatch".into()));
    }
    let reach = kernel.reach();
    let halo = input.dense().halo();
    if reach.iter().any(|r| *r as usize > halo) {
        return Err(VmError::Mismatch(format!(
            "stencil reach {reach:?} exceeds halo {halo}"
        )));
    }
    let dense_in = input.dense();
    let sx = nx + 2 * halo;
    let sy = ny + 2 * halo;
    let plane = sx * sy;
    let classes = &kernel.classes;
    let raw_out = output.dense_mut().raw_mut();
    let body = &mut raw_out[halo * plane..(halo + nz) * plane];
    body.par_chunks_mut(plane)
        .enumerate()
        .for_each(|(zi, out_plane)| {
            let z = zi as i64;
            for y in 0..ny as i64 {
                for x in 0..nx as i64 {
                    let mut acc = 0.0;
                    for (w, offs) in classes {
                        let mut s = 0.0;
                        for o in offs {
                            s += dense_in.get(x + o[0] as i64, y + o[1] as i64, z + o[2] as i64);
                        }
                        acc += w * s;
                    }
                    out_plane[(y as usize + halo) * sx + x as usize + halo] = acc;
                }
            }
        });
    Ok(())
}

/// Replay the address stream of launch block `i` of a scalar kernel.
///
/// Per output row (one warp/wavefront), each tap is issued as a contiguous
/// `width`-element read — split in two where it straddles a brick border —
/// followed by one row store.
pub fn trace_scalar_block(
    kernel: &ScalarKernel,
    geom: &TraceGeometry,
    i: usize,
    sink: &mut impl TraceSink,
) -> Result<(), VmError> {
    crate::exec::check_trace_compat(kernel.layout, kernel.block, geom, i)?;
    let dims = kernel.block;
    let w = dims.bx as i64;
    match kernel.layout {
        LayoutKind::Brick => {
            let nav = geom.nav();
            let home = geom.home_brick(i);
            for rz in 0..dims.bz as i64 {
                for ry in 0..dims.by as i64 {
                    for (_, o) in kernel.taps_in_order() {
                        let (dx, dy, dz) = (o[0] as i64, o[1] as i64, o[2] as i64);
                        let (y, z) = (ry + dy, rz + dz);
                        // lanes cover x ∈ [dx, dx + w): up to two segments
                        // split at the brick borders 0 and w.
                        let mut x = dx;
                        while x < dx + w {
                            let seg_end = if x < 0 {
                                0.min(dx + w)
                            } else if x < w {
                                w.min(dx + w)
                            } else {
                                dx + w
                            };
                            let (b, off) = nav.resolve_rel(home, x, y, z);
                            sink.load(
                                geom.in_base + nav.element_addr(b, off),
                                ((seg_end - x) * 8) as u32,
                            );
                            x = seg_end;
                        }
                    }
                    let off = dims.row_offset(ry as usize, rz as usize);
                    sink.store(geom.out_base + nav.element_addr(home, off), (w * 8) as u32);
                }
            }
        }
        LayoutKind::Array => {
            let [ox, oy, oz] = geom.tile_origin(i);
            let addr = geom.array_addr();
            for rz in 0..dims.bz as i64 {
                for ry in 0..dims.by as i64 {
                    for (_, o) in kernel.taps_in_order() {
                        let a = addr.addr(
                            ox + o[0] as i64,
                            oy + ry + o[1] as i64,
                            oz + rz + o[2] as i64,
                        );
                        sink.load(geom.in_base + a, (w * 8) as u32);
                    }
                    let a = addr.addr(ox, oy + ry, oz + rz);
                    sink.store(geom.out_base + a, (w * 8) as u32);
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{CountingSink, RecordingSink};
    use brick_dsl::shape::StencilShape;
    use brick_dsl::{reference, DenseGrid};
    use std::sync::Arc;

    fn dense(n: usize, halo: usize) -> DenseGrid {
        let mut d = DenseGrid::new(n.max(16), n, n, halo);
        d.fill_test_pattern();
        d
    }

    #[test]
    fn scalar_brick_matches_reference_all_stencils() {
        for shape in StencilShape::paper_suite() {
            let st = shape.stencil();
            let b = st.default_bindings();
            let k = ScalarKernel::new(&st, &b, LayoutKind::Brick, 16).unwrap();
            let input_dense = dense(8, st.radius() as usize);
            let mut expect = DenseGrid::new(16, 8, 8, st.radius() as usize);
            reference::apply(&st, &b, &input_dense, &mut expect).unwrap();
            let input = BrickGrid::from_dense(&input_dense, BrickDims::for_simd_width(16));
            let mut output =
                BrickGrid::with_metadata(Arc::clone(input.decomp()), Arc::clone(input.info()));
            run_scalar_brick(&k, &input, &mut output).unwrap();
            let diff = output.to_dense().max_rel_diff(&expect);
            assert!(diff < 1e-12, "{shape}: {diff}");
        }
    }

    #[test]
    fn scalar_array_matches_reference_all_stencils() {
        for shape in StencilShape::paper_suite() {
            let st = shape.stencil();
            let b = st.default_bindings();
            let k = ScalarKernel::new(&st, &b, LayoutKind::Array, 16).unwrap();
            let input_dense = dense(8, st.radius() as usize);
            let mut expect = DenseGrid::new(16, 8, 8, st.radius() as usize);
            reference::apply(&st, &b, &input_dense, &mut expect).unwrap();
            let input = ArrayGrid::from_dense(&input_dense);
            let mut output = ArrayGrid::new(16, 8, 8, st.radius() as usize);
            run_scalar_array(&k, &input, &mut output).unwrap();
            let diff = output.to_dense().max_rel_diff(&expect);
            assert!(diff < 1e-12, "{shape}: {diff}");
        }
    }

    #[test]
    fn kernel_metadata() {
        let st = StencilShape::cube(1).stencil();
        let b = st.default_bindings();
        let k = ScalarKernel::new(&st, &b, LayoutKind::Array, 32).unwrap();
        assert_eq!(k.points(), 27);
        assert_eq!(k.num_classes(), 4);
        assert_eq!(k.reach(), [1, 1, 1]);
        assert_eq!(k.taps_in_order().count(), 27);
        assert_eq!(k.block, BrickDims::new(32, 4, 4));
    }

    #[test]
    fn array_trace_load_count_is_taps_times_rows() {
        let st = StencilShape::star(2).stencil();
        let b = st.default_bindings();
        let k = ScalarKernel::new(&st, &b, LayoutKind::Array, 16).unwrap();
        let geom = TraceGeometry::array((16, 16, 16), 2, BrickDims::for_simd_width(16));
        let mut sink = CountingSink::default();
        trace_scalar_block(&k, &geom, 0, &mut sink).unwrap();
        assert_eq!(sink.loads, 13 * 16);
        assert_eq!(sink.stores, 16);
        assert_eq!(sink.load_bytes, 13 * 16 * 16 * 8);
    }

    #[test]
    fn brick_trace_splits_cross_brick_taps() {
        let st = StencilShape::star(1).stencil();
        let b = st.default_bindings();
        let k = ScalarKernel::new(&st, &b, LayoutKind::Brick, 16).unwrap();
        let d = dense(16, 1);
        let input = BrickGrid::from_dense(&d, BrickDims::for_simd_width(16));
        let geom = TraceGeometry::brick(Arc::new(input.nav().clone()));
        let mut sink = RecordingSink::default();
        trace_scalar_block(&k, &geom, 0, &mut sink).unwrap();
        // per row: 7 taps; the two x-taps split into 2 segments each
        let loads: Vec<_> = sink.events.iter().filter(|(s, _, _)| !s).collect();
        assert_eq!(loads.len(), (7 + 2) * 16);
        // segment byte sizes: the x-split taps produce one 8-byte and one
        // (w-1)*8-byte segment
        let small = loads.iter().filter(|(_, _, b)| *b == 8).count();
        assert_eq!(small, 2 * 16);
        let total: u64 = loads.iter().map(|(_, _, b)| *b as u64).sum();
        assert_eq!(total, 7 * 16 * 16 * 8);
    }

    #[test]
    fn trace_bytes_conserved_between_layouts() {
        // same stencil, same block: array and brick traces move the same
        // logical bytes per block (brick may split transactions)
        let st = StencilShape::cube(1).stencil();
        let b = st.default_bindings();
        let ka = ScalarKernel::new(&st, &b, LayoutKind::Array, 16).unwrap();
        let kb = ScalarKernel::new(&st, &b, LayoutKind::Brick, 16).unwrap();
        let d = dense(16, 1);
        let input = BrickGrid::from_dense(&d, BrickDims::for_simd_width(16));
        let bg = TraceGeometry::brick(Arc::new(input.nav().clone()));
        let ag = TraceGeometry::array((16, 16, 16), 1, BrickDims::for_simd_width(16));
        let (mut sa, mut sb) = (CountingSink::default(), CountingSink::default());
        trace_scalar_block(&ka, &ag, 0, &mut sa).unwrap();
        trace_scalar_block(&kb, &bg, 0, &mut sb).unwrap();
        assert_eq!(sa.load_bytes, sb.load_bytes);
        assert_eq!(sa.store_bytes, sb.store_bytes);
        assert!(sb.loads >= sa.loads);
    }

    #[test]
    fn layout_mismatch_rejected() {
        let st = StencilShape::star(1).stencil();
        let b = st.default_bindings();
        let k = ScalarKernel::new(&st, &b, LayoutKind::Brick, 16).unwrap();
        let d = dense(8, 1);
        let input = ArrayGrid::from_dense(&d);
        let mut output = ArrayGrid::new(16, 8, 8, 1);
        assert!(run_scalar_array(&k, &input, &mut output).is_err());
    }
}
