//! Memory-trace sinks.
//!
//! The VM streams every memory transaction a kernel issues — it never
//! materialises a trace in memory, because a 512³ sweep of a 125-point
//! stencil produces hundreds of millions of transactions. Consumers
//! implement [`TraceSink`]; the GPU simulator's per-SM L1 models are the
//! production sinks, and [`CountingSink`]/[`RecordingSink`] serve tests
//! and quick accounting.

/// Receives the memory transactions of a running kernel, in issue order.
pub trait TraceSink {
    /// A read of `bytes` bytes starting at absolute address `addr`.
    fn load(&mut self, addr: u64, bytes: u32);
    /// A write of `bytes` bytes starting at absolute address `addr`.
    fn store(&mut self, addr: u64, bytes: u32);
}

/// Tallies transaction counts and byte totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountingSink {
    /// Number of load transactions.
    pub loads: u64,
    /// Bytes loaded.
    pub load_bytes: u64,
    /// Number of store transactions.
    pub stores: u64,
    /// Bytes stored.
    pub store_bytes: u64,
}

impl CountingSink {
    /// Total bytes moved.
    pub fn total_bytes(&self) -> u64 {
        self.load_bytes + self.store_bytes
    }
}

impl TraceSink for CountingSink {
    fn load(&mut self, _addr: u64, bytes: u32) {
        self.loads += 1;
        self.load_bytes += bytes as u64;
    }

    fn store(&mut self, _addr: u64, bytes: u32) {
        self.stores += 1;
        self.store_bytes += bytes as u64;
    }
}

/// One recorded transaction: `(is_store, addr, bytes)`.
pub type Event = (bool, u64, u32);

/// Records every transaction (tests only — unbounded memory).
#[derive(Debug, Clone, Default)]
pub struct RecordingSink {
    /// The recorded events in issue order.
    pub events: Vec<Event>,
}

impl TraceSink for RecordingSink {
    fn load(&mut self, addr: u64, bytes: u32) {
        self.events.push((false, addr, bytes));
    }

    fn store(&mut self, addr: u64, bytes: u32) {
        self.events.push((true, addr, bytes));
    }
}

/// Discards everything.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn load(&mut self, _addr: u64, _bytes: u32) {}
    fn store(&mut self, _addr: u64, _bytes: u32) {}
}

impl<S: TraceSink + ?Sized> TraceSink for &mut S {
    fn load(&mut self, addr: u64, bytes: u32) {
        (**self).load(addr, bytes)
    }

    fn store(&mut self, addr: u64, bytes: u32) {
        (**self).store(addr, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_sink_tallies() {
        let mut s = CountingSink::default();
        s.load(0, 256);
        s.load(256, 256);
        s.store(4096, 128);
        assert_eq!(s.loads, 2);
        assert_eq!(s.load_bytes, 512);
        assert_eq!(s.stores, 1);
        assert_eq!(s.total_bytes(), 640);
    }

    #[test]
    fn recording_sink_preserves_order() {
        let mut s = RecordingSink::default();
        s.load(8, 32);
        s.store(16, 64);
        assert_eq!(s.events, vec![(false, 8, 32), (true, 16, 64)]);
    }

    #[test]
    fn sink_by_mut_ref() {
        fn feed<S: TraceSink>(mut s: S) {
            s.load(0, 8);
        }
        let mut c = CountingSink::default();
        feed(&mut c);
        assert_eq!(c.loads, 1);
    }
}
