//! Differential suite: every compiled execution backend against the
//! interpreter oracle, **bit for bit**.
//!
//! Random kernels (stencil shape × codegen strategy × randomized
//! coefficient bindings) × layouts × widths are executed under every
//! backend this host can run — `Scalar` (the interpreter itself, via the
//! mode dispatch), the portable compiled backend, and AVX2/NEON when
//! detected — and the full output storage is compared with `to_bits`.
//!
//! The documented ULP bound for the SIMD backends is **zero**: lowering
//! preserves the interpreter's operation order and fusion exactly, and
//! `_mm256_fmadd_pd`/`vfmaq_f64` compute the same correctly-rounded IEEE
//! fused multiply-add as the interpreter's `f64::mul_add`. FMA contraction
//! never "legitimately differs" here because the compiled backends fuse
//! exactly where the interpreter already fuses — so the exact comparison
//! applies everywhere, and any future lowering change that reorders or
//! re-fuses arithmetic must loosen this suite *explicitly*.

use brick_codegen::{generate, CodegenOptions, LayoutKind, Strategy};
use brick_core::{ArrayGrid, BrickGrid};
use brick_dsl::shape::StencilShape;
use brick_dsl::DenseGrid;
use brick_vm::{
    resolve_with, run_vector_array_backend, run_vector_brick_backend, Backend, CpuFeatures,
    ExecutionMode, KernelSpec, VmError,
};
use proptest::prelude::*;
use std::sync::Arc;

fn shape_of(idx: usize) -> StencilShape {
    match idx {
        0 => StencilShape::star(1),
        1 => StencilShape::star(2),
        2 => StencilShape::star(3),
        3 => StencilShape::star(4),
        4 => StencilShape::cube(1),
        _ => StencilShape::cube(2),
    }
}

/// The compiled backends this host can execute (the interpreter oracle is
/// not in the list — it is what we compare against).
fn compiled_backends() -> Vec<Backend> {
    let feats = CpuFeatures::detect();
    let mut v = vec![Backend::Portable];
    if feats.avx2 && feats.fma {
        v.push(Backend::Avx2);
    }
    if feats.neon {
        v.push(Backend::Neon);
    }
    v
}

/// Run one kernel under `backend` over `dense`, returning the raw output
/// storage of the layout-native grid (not the dense round-trip, so halo
/// handling differences would show too).
fn run_backend(
    kernel: &brick_codegen::VectorKernel,
    dense: &DenseGrid,
    backend: Backend,
) -> Vec<f64> {
    match kernel.layout {
        LayoutKind::Brick => {
            let input = BrickGrid::from_dense(dense, kernel.block);
            let mut output =
                BrickGrid::with_metadata(Arc::clone(input.decomp()), Arc::clone(input.info()));
            run_vector_brick_backend(kernel, &input, &mut output, backend).unwrap();
            output.raw().to_vec()
        }
        LayoutKind::Array => {
            let input = ArrayGrid::from_dense(dense);
            let (nx, ny, nz) = dense.extents();
            let mut output = ArrayGrid::new(nx, ny, nz, dense.halo());
            run_vector_array_backend(kernel, &input, &mut output, backend).unwrap();
            output.dense().raw().to_vec()
        }
    }
}

fn assert_bits_equal(oracle: &[f64], got: &[f64], ctx: &str) {
    assert_eq!(oracle.len(), got.len(), "{ctx}: storage length");
    for (i, (a, b)) in oracle.iter().zip(got).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{ctx}: word {i} differs ({a:e} vs {b:e})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The paper's kernel matrix, randomized: every compiled backend is
    /// bit-identical to the interpreter on the same grids.
    #[test]
    fn compiled_backends_match_interpreter_bit_for_bit(
        shape_idx in 0usize..6,
        width_idx in 0usize..3,
        layout_idx in 0usize..2,
        strategy_idx in 0usize..2,
        coeff_seed in 0u64..1u64 << 32,
    ) {
        let shape = shape_of(shape_idx);
        let width = [16usize, 32, 64][width_idx];
        let layout = [LayoutKind::Brick, LayoutKind::Array][layout_idx];
        let strategy = [Strategy::Gather, Strategy::Scatter][strategy_idx];
        let st = shape.stencil();

        // Randomized coefficient bindings: deterministic per case seed,
        // magnitudes spread across several binades so FMA rounding is
        // actually exercised.
        let mut rng = proptest::TestRng::new(coeff_seed | 1);
        let mut b = brick_dsl::CoeffBindings::new();
        for sym in st.symbols() {
            let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            let exp = (rng.below(9) as i32) - 4; // 2^-4 ..= 2^4
            b.set(sym.name(), (u - 0.5) * (2f64).powi(exp));
        }

        let kernel = generate(&st, &b, layout, width, CodegenOptions {
            strategy,
            ..Default::default()
        }).unwrap();

        let n = 8usize.max(shape.radius as usize * 2);
        let mut dense = DenseGrid::new(n.max(width), n, n, shape.radius as usize);
        dense.fill_test_pattern();

        let oracle = run_backend(&kernel, &dense, Backend::Interpreter);
        for backend in compiled_backends() {
            let got = run_backend(&kernel, &dense, backend);
            assert_bits_equal(
                &oracle,
                &got,
                &format!("{shape} {strategy} {layout} w{width} via {backend}"),
            );
        }
    }
}

/// `Scalar` mode through the public mode dispatch is the interpreter —
/// trivially bit-identical (the mode must not reroute to a compiled
/// backend).
#[test]
fn scalar_mode_is_the_interpreter() {
    let feats = CpuFeatures::detect();
    assert_eq!(
        resolve_with(ExecutionMode::Scalar, feats),
        Ok(Backend::Interpreter)
    );
    let st = StencilShape::star(2).stencil();
    let b = st.default_bindings();
    let kernel = generate(&st, &b, LayoutKind::Brick, 16, CodegenOptions::default()).unwrap();
    let mut dense = DenseGrid::new(16, 8, 8, 2);
    dense.fill_test_pattern();
    let input = BrickGrid::from_dense(&dense, kernel.block);
    let mut out_interp =
        BrickGrid::with_metadata(Arc::clone(input.decomp()), Arc::clone(input.info()));
    let mut out_scalar =
        BrickGrid::with_metadata(Arc::clone(input.decomp()), Arc::clone(input.info()));
    run_vector_brick_backend(&kernel, &input, &mut out_interp, Backend::Interpreter).unwrap();
    brick_vm::run_vector_brick_mode(&kernel, &input, &mut out_scalar, ExecutionMode::Scalar)
        .unwrap();
    assert_bits_equal(out_interp.raw(), out_scalar.raw(), "scalar mode");
}

/// The AVX2-unavailable fallback: on a host without AVX2+FMA, `Auto`
/// degrades to the portable backend and still executes correctly, while a
/// forced `avx2` mode errors gracefully (no panic). Exercised with a
/// synthetic featureless CPU so the path is covered on every host.
#[test]
fn auto_degrades_gracefully_without_avx2() {
    let featureless = CpuFeatures::default();
    let backend = resolve_with(ExecutionMode::Auto, featureless).unwrap();
    assert_eq!(backend, Backend::Portable);
    assert!(resolve_with(ExecutionMode::Avx2, featureless).is_err());

    // The degraded backend really runs — and matches the oracle.
    let st = StencilShape::star(1).stencil();
    let b = st.default_bindings();
    let kernel = generate(&st, &b, LayoutKind::Array, 16, CodegenOptions::default()).unwrap();
    let mut dense = DenseGrid::new(16, 8, 8, 1);
    dense.fill_test_pattern();
    let oracle = run_backend(&kernel, &dense, Backend::Interpreter);
    let got = run_backend(&kernel, &dense, backend);
    assert_bits_equal(&oracle, &got, "portable fallback");
}

/// Forcing a backend the host cannot run errors, never panics — including
/// through the full grid execution path.
#[test]
fn forced_unsupported_mode_errors_not_panics() {
    let feats = CpuFeatures::detect();
    let st = StencilShape::star(1).stencil();
    let b = st.default_bindings();
    let kernel = generate(&st, &b, LayoutKind::Brick, 16, CodegenOptions::default()).unwrap();
    let mut dense = DenseGrid::new(16, 8, 8, 1);
    dense.fill_test_pattern();
    let input = BrickGrid::from_dense(&dense, kernel.block);
    let mut output = BrickGrid::with_metadata(Arc::clone(input.decomp()), Arc::clone(input.info()));
    for (supported, mode) in [
        (feats.avx2 && feats.fma, ExecutionMode::Avx2),
        (feats.neon, ExecutionMode::Neon),
    ] {
        let r = brick_vm::run_vector_brick_mode(&kernel, &input, &mut output, mode);
        if supported {
            assert!(r.is_ok(), "{mode} supported but failed: {r:?}");
        } else {
            assert!(
                matches!(r, Err(VmError::Unsupported(_))),
                "{mode} unsupported must error gracefully, got {r:?}"
            );
        }
    }
}

/// Miri smoke: the scalar and portable execution paths on a tiny grid,
/// bit-compared against the interpreter. These are the tests the CI
/// sanitizer job runs under `cargo miri test -- miri_smoke` — they stay
/// deliberately small (16×8×8, star(1), w=16) so the interpreter-speed
/// Miri run finishes quickly, and they avoid the SIMD intrinsics Miri
/// cannot execute. A leak, uninitialized read, or out-of-bounds access
/// anywhere in grid construction, plan compilation (including the
/// brick-safe prover), or portable fused evaluation fails the run.
#[test]
fn miri_smoke_portable_brick_matches_interpreter() {
    let st = StencilShape::star(1).stencil();
    let b = st.default_bindings();
    let kernel = generate(&st, &b, LayoutKind::Brick, 16, CodegenOptions::default()).unwrap();
    let mut dense = DenseGrid::new(16, 8, 8, 1);
    dense.fill_test_pattern();
    let oracle = run_backend(&kernel, &dense, Backend::Interpreter);
    let got = run_backend(&kernel, &dense, Backend::Portable);
    assert_bits_equal(&oracle, &got, "miri smoke: brick portable");
}

/// Miri smoke, array-layout flank: exercises the array fused path and the
/// per-run `check_array_geometry` premise under Miri.
#[test]
fn miri_smoke_portable_array_matches_interpreter() {
    let st = StencilShape::star(1).stencil();
    let b = st.default_bindings();
    let kernel = generate(&st, &b, LayoutKind::Array, 16, CodegenOptions::default()).unwrap();
    let mut dense = DenseGrid::new(16, 8, 8, 1);
    dense.fill_test_pattern();
    let oracle = run_backend(&kernel, &dense, Backend::Interpreter);
    let got = run_backend(&kernel, &dense, Backend::Portable);
    assert_bits_equal(&oracle, &got, "miri smoke: array portable");
}

/// `KernelSpec`-level numeric execution under every mode this host
/// supports agrees with the scalar reference to the usual tolerance and
/// with the interpreter bitwise.
#[test]
fn numeric_dense_mode_matches_reference_and_oracle() {
    let shape = StencilShape::cube(1);
    let st = shape.stencil();
    let b = st.default_bindings();
    let mut input = DenseGrid::new(16, 8, 8, 1);
    input.fill_test_pattern();
    let mut expect = DenseGrid::new(16, 8, 8, 1);
    brick_dsl::reference::apply(&st, &b, &input, &mut expect).unwrap();

    for layout in [LayoutKind::Brick, LayoutKind::Array] {
        let spec =
            KernelSpec::Vector(generate(&st, &b, layout, 16, CodegenOptions::default()).unwrap());
        let oracle =
            brick_vm::run_numeric_dense_mode(&spec, &input, ExecutionMode::Scalar).unwrap();
        assert!(oracle.max_rel_diff(&expect) < 1e-12);
        let auto = brick_vm::run_numeric_dense_mode(&spec, &input, ExecutionMode::Auto).unwrap();
        assert_bits_equal(oracle.raw(), auto.raw(), &format!("{layout} auto"));
    }
}
