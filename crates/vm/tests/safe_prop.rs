//! brick-safe acceptance properties over the full paper matrix.
//!
//! The prover must be *complete* for the compiler: every plan
//! `Plan::compile` produces — paper suite × layouts × widths ×
//! strategies — proves safe (zero false positives; `compile` itself runs
//! the prover, so a false positive would abort compilation). One verdict
//! covers every execution mode: the obligations target the strictest
//! backend (SIMD fused with streaming stores), and the scalar/portable
//! modes rely on strictly weaker subsets.
//!
//! Verdicts must also be *deterministic* and *fingerprint-cacheable*:
//! same kernel → same `SafetySummary`, and kernels with equal
//! `brick_lint::fingerprint` values can share a verdict through the same
//! `FingerprintCache` the sweep runner uses for lint reports.

use brick_codegen::{generate, CodegenOptions, LayoutKind, Strategy};
use brick_dsl::shape::StencilShape;
use brick_lint::FingerprintCache;
use brick_vm::{Plan, SafetySummary};

fn paper_matrix() -> impl Iterator<Item = (StencilShape, LayoutKind, usize, Strategy)> {
    StencilShape::paper_suite().into_iter().flat_map(|shape| {
        [LayoutKind::Brick, LayoutKind::Array]
            .into_iter()
            .flat_map(move |layout| {
                [16usize, 32, 64].into_iter().flat_map(move |w| {
                    [Strategy::Gather, Strategy::Scatter]
                        .into_iter()
                        .map(move |s| (shape, layout, w, s))
                })
            })
    })
}

fn compile(shape: StencilShape, layout: LayoutKind, w: usize, strategy: Strategy) -> Plan {
    let st = shape.stencil();
    let b = st.default_bindings();
    let opts = CodegenOptions {
        strategy,
        ..CodegenOptions::default()
    };
    let k = generate(&st, &b, layout, w, opts).unwrap();
    Plan::compile(&k).unwrap_or_else(|e| panic!("false positive on {shape} {layout} w{w}: {e}"))
}

#[test]
fn brick_safe_accepts_the_entire_paper_matrix() {
    let mut proved = 0usize;
    for (shape, layout, w, strategy) in paper_matrix() {
        let plan = compile(shape, layout, w, strategy);
        let s = plan.safety();
        assert!(s.obligations > 0, "{shape} {layout} w{w}: empty proof");
        assert_eq!(
            s.fused,
            s.taps > 0,
            "{shape} {layout} w{w}: tap count inconsistent with fused flag"
        );
        // The standalone re-proof (the `bricks lint --native` entry)
        // agrees with the verdict compile embedded.
        let again = plan.verify_safety().expect("re-proof of a compiled plan");
        assert_eq!(s, again, "{shape} {layout} w{w}: verdict not deterministic");
        proved += 1;
    }
    // paper_suite × 2 layouts × 3 widths × 2 strategies
    assert_eq!(proved, StencilShape::paper_suite().len() * 12);
}

#[test]
fn array_geometry_premise_holds_at_paper_sizes() {
    for (shape, layout, w, strategy) in paper_matrix() {
        if layout != LayoutKind::Array {
            continue;
        }
        let plan = compile(shape, layout, w, strategy);
        let halo = shape.radius as usize;
        for n in [64usize, 128, 256] {
            plan.check_array_geometry(n, n, n, halo)
                .unwrap_or_else(|e| {
                    panic!("false positive: {shape} w{w} at {n}^3 halo {halo}: {e}")
                });
        }
    }
}

#[test]
fn verdicts_are_fingerprint_cacheable() {
    // Two independent generations of the same kernel: equal fingerprints
    // and equal safety verdicts, so a sweep may key verdicts by the same
    // fingerprint cache it uses for lint reports.
    let shape = StencilShape::star(2);
    let st = shape.stencil();
    let b = st.default_bindings();
    let k1 = generate(&st, &b, LayoutKind::Brick, 32, CodegenOptions::default()).unwrap();
    let k2 = generate(&st, &b, LayoutKind::Brick, 32, CodegenOptions::default()).unwrap();
    assert_eq!(brick_lint::fingerprint(&k1), brick_lint::fingerprint(&k2));
    let (s1, s2) = (
        Plan::compile(&k1).unwrap().safety(),
        Plan::compile(&k2).unwrap().safety(),
    );
    assert_eq!(s1, s2, "equal fingerprints must imply equal verdicts");

    let cache = FingerprintCache::new();
    let mut verdicts: std::collections::HashMap<u64, SafetySummary> = Default::default();
    let mut proofs_run = 0usize;
    for k in [&k1, &k2] {
        let fp = brick_lint::fingerprint(k);
        if cache.check_or_insert(fp) {
            // hit: reuse the stored verdict, as the sweep runner does
            assert_eq!(verdicts[&fp], s1);
        } else {
            verdicts.insert(fp, Plan::compile(k).unwrap().safety());
            proofs_run += 1;
        }
    }
    assert_eq!(proofs_run, 1, "second identical kernel must be a cache hit");
}
