//! Temporal differential oracle suite — **bit for bit, ULP 0**.
//!
//! A `temporal_degree = T` kernel claims to be `T` launches of the
//! `T = 1` gather kernel folded into one. This suite pins that claim
//! three ways, all with `to_bits` equality:
//!
//! 1. **Scalar T-step reference** (`brick_dsl::reference::apply_temporal`)
//!    — replicates the gather schedule's class-sum + `mul_add` op order
//!    per point per step. The fused kernel's whole interior must match it
//!    exactly: both consume the same real input halo, so there is no
//!    boundary caveat.
//! 2. **T sequential launches of the T=1 gather kernel** — compared on
//!    the *deep* interior only (≥ `(T−1)·r` from the boundary): the
//!    sequential chain writes zero output ghosts, so its values near the
//!    boundary consume zeros where the fused kernel consumed real halo
//!    data. Inside that margin the fusion must be exact.
//! 3. **Native execution modes** — the fused kernel under the portable
//!    compiled backend (and AVX2/NEON where detected) against the
//!    interpreter, full raw storage. Temporal kernels shift *computed*
//!    rows, which the native tape-fusion pass refuses by design; this
//!    pins the step-machine fallback to the interpreter bit for bit.
//!
//! The exactness argument lives in DESIGN.md §14; any change that
//! reassociates the fused schedule must loosen this suite explicitly.

use brick_codegen::{generate, CodegenOptions, LayoutKind, Strategy};
use brick_core::{ArrayGrid, BrickGrid};
use brick_dsl::shape::StencilShape;
use brick_dsl::{reference, CoeffBindings, DenseGrid};
use brick_vm::{
    run_numeric_dense_mode, run_vector_array_backend, run_vector_brick_backend, Backend,
    CpuFeatures, ExecutionMode, KernelSpec,
};
use proptest::prelude::*;
use std::sync::Arc;

fn shape_of(idx: usize) -> StencilShape {
    match idx {
        0 => StencilShape::star(1),
        1 => StencilShape::star(2),
        2 => StencilShape::star(3),
        3 => StencilShape::star(4),
        4 => StencilShape::cube(1),
        _ => StencilShape::cube(2),
    }
}

/// Feasible fusion degrees under the default 4×4 block: `T·r ≤ 4`.
fn max_degree(shape: &StencilShape) -> u32 {
    4 / shape.radius
}

fn fused(
    shape: &StencilShape,
    b: &CoeffBindings,
    layout: LayoutKind,
    width: usize,
    t: u32,
) -> brick_codegen::VectorKernel {
    let st = shape.stencil();
    generate(
        &st,
        b,
        layout,
        width,
        CodegenOptions {
            temporal_degree: t,
            // T>1 is inherently gather-scheduled; pin T=1 to the same
            // schedule so the scalar reference (which replicates the
            // gather op order) is a valid ULP-0 oracle at every degree.
            strategy: Strategy::Gather,
            ..Default::default()
        },
    )
    .unwrap()
}

/// Input grid sized for one block column of `width` with a `T·r` halo.
fn input_grid(shape: &StencilShape, width: usize, t: u32) -> DenseGrid {
    let halo = (t * shape.radius) as usize;
    let mut d = DenseGrid::new(width, 8, 8, halo);
    d.fill_test_pattern();
    d
}

fn assert_bits_equal(oracle: &[f64], got: &[f64], ctx: &str) {
    assert_eq!(oracle.len(), got.len(), "{ctx}: storage length");
    for (i, (a, b)) in oracle.iter().zip(got).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{ctx}: word {i} differs ({a:e} vs {b:e})"
        );
    }
}

/// Compare two dense grids bit for bit on the interior points at least
/// `margin` away from the interior boundary on every axis.
fn assert_deep_interior_equal(a: &DenseGrid, b: &DenseGrid, margin: i64, ctx: &str) {
    let (nx, ny, nz) = a.extents();
    let mut checked = 0usize;
    for z in margin..nz as i64 - margin {
        for y in margin..ny as i64 - margin {
            for x in margin..nx as i64 - margin {
                assert_eq!(
                    a.get(x, y, z).to_bits(),
                    b.get(x, y, z).to_bits(),
                    "{ctx}: point ({x},{y},{z}) differs ({:e} vs {:e})",
                    a.get(x, y, z),
                    b.get(x, y, z)
                );
                checked += 1;
            }
        }
    }
    assert!(checked > 0, "{ctx}: margin {margin} left nothing to check");
}

/// The three-way differential for one configuration.
fn check_config(shape: &StencilShape, b: &CoeffBindings, layout: LayoutKind, width: usize, t: u32) {
    let ctx = format!("{shape} {layout} w{width} t{t}");
    let st = shape.stencil();
    let kt = fused(shape, b, layout, width, t);
    let input = input_grid(shape, width, t);

    // interpreter execution of the fused kernel
    let spec = KernelSpec::Vector(kt.clone());
    let interp = run_numeric_dense_mode(&spec, &input, ExecutionMode::Scalar).unwrap();

    // 1. scalar T-step reference: the whole interior, bit for bit (the
    //    dense round-trips may carry different halo widths, so compare
    //    point-wise rather than raw storage)
    let (nx, ny, nz) = input.extents();
    let mut reference = DenseGrid::new(nx, ny, nz, input.halo());
    reference::apply_temporal(&st, b, &input, &mut reference, t).unwrap();
    assert_deep_interior_equal(
        &reference,
        &interp,
        0,
        &format!("{ctx} vs scalar reference"),
    );

    // 2. T sequential launches of the T=1 gather kernel: deep interior
    let k1 = generate(
        &st,
        b,
        layout,
        width,
        CodegenOptions {
            strategy: Strategy::Gather,
            ..Default::default()
        },
    )
    .unwrap();
    let spec1 = KernelSpec::Vector(k1);
    let mut cur = input.clone();
    for _ in 0..t {
        cur = run_numeric_dense_mode(&spec1, &cur, ExecutionMode::Scalar).unwrap();
    }
    let margin = (t as i64 - 1) * shape.radius as i64;
    assert_deep_interior_equal(&cur, &interp, margin, &format!("{ctx} vs sequential"));

    // 3. native backends: full layout-native storage vs the interpreter
    let feats = CpuFeatures::detect();
    let mut backends = vec![Backend::Portable];
    if feats.avx2 && feats.fma {
        backends.push(Backend::Avx2);
    }
    if feats.neon {
        backends.push(Backend::Neon);
    }
    match layout {
        LayoutKind::Brick => {
            let bin = BrickGrid::from_dense(&input, kt.block);
            let mut oracle =
                BrickGrid::with_metadata(Arc::clone(bin.decomp()), Arc::clone(bin.info()));
            run_vector_brick_backend(&kt, &bin, &mut oracle, Backend::Interpreter).unwrap();
            for backend in backends {
                let mut out =
                    BrickGrid::with_metadata(Arc::clone(bin.decomp()), Arc::clone(bin.info()));
                run_vector_brick_backend(&kt, &bin, &mut out, backend).unwrap();
                assert_bits_equal(oracle.raw(), out.raw(), &format!("{ctx} via {backend}"));
            }
        }
        LayoutKind::Array => {
            let ain = ArrayGrid::from_dense(&input);
            let mut oracle = ArrayGrid::new(nx, ny, nz, input.halo());
            run_vector_array_backend(&kt, &ain, &mut oracle, Backend::Interpreter).unwrap();
            for backend in backends {
                let mut out = ArrayGrid::new(nx, ny, nz, input.halo());
                run_vector_array_backend(&kt, &ain, &mut out, backend).unwrap();
                assert_bits_equal(
                    oracle.dense().raw(),
                    out.dense().raw(),
                    &format!("{ctx} via {backend}"),
                );
            }
        }
    }
}

/// Exhaustive sweep with the default (paper) coefficient bindings: every
/// feasible `(shape, layout, width, T)` cell of the matrix.
#[test]
fn fused_kernels_match_all_oracles_paper_bindings() {
    for shape in StencilShape::paper_suite() {
        let st = shape.stencil();
        let b = st.default_bindings();
        for t in 1..=max_degree(&shape) {
            for layout in [LayoutKind::Brick, LayoutKind::Array] {
                for width in [16, 32, 64] {
                    check_config(&shape, &b, layout, width, t);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Randomized coefficient bindings across the feasible matrix: the
    /// bit-for-bit contract holds for arbitrary weights, not just the
    /// paper's.
    #[test]
    fn fused_kernels_match_all_oracles_random_bindings(
        shape_idx in 0usize..6,
        width_idx in 0usize..3,
        layout_idx in 0usize..2,
        t_idx in 0u32..4,
        coeff_seed in 0u64..1u64 << 32,
    ) {
        let shape = shape_of(shape_idx);
        let t = 1 + t_idx % max_degree(&shape);
        let width = [16usize, 32, 64][width_idx];
        let layout = [LayoutKind::Brick, LayoutKind::Array][layout_idx];
        let st = shape.stencil();

        let mut rng = proptest::TestRng::new(coeff_seed | 1);
        let mut b = CoeffBindings::new();
        for sym in st.symbols() {
            let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            let exp = (rng.below(9) as i32) - 4; // 2^-4 ..= 2^4
            b.set(sym.name(), (u - 0.5) * (2f64).powi(exp));
        }
        check_config(&shape, &b, layout, width, t);
    }
}

/// Miri smoke for the temporal path: tiny fused kernel through plan
/// compilation (including brick-safe) and portable execution.
#[test]
fn miri_smoke_temporal_portable_matches_interpreter() {
    let shape = StencilShape::star(1);
    let st = shape.stencil();
    let b = st.default_bindings();
    let kt = fused(&shape, &b, LayoutKind::Brick, 16, 2);
    let mut input = DenseGrid::new(16, 8, 8, 2);
    input.fill_test_pattern();
    let bin = BrickGrid::from_dense(&input, kt.block);
    let mut oracle = BrickGrid::with_metadata(Arc::clone(bin.decomp()), Arc::clone(bin.info()));
    run_vector_brick_backend(&kt, &bin, &mut oracle, Backend::Interpreter).unwrap();
    let mut got = BrickGrid::with_metadata(Arc::clone(bin.decomp()), Arc::clone(bin.info()));
    run_vector_brick_backend(&kt, &bin, &mut got, Backend::Portable).unwrap();
    assert_bits_equal(oracle.raw(), got.raw(), "miri smoke: temporal portable");
}

/// `TestRng` import sanity: `run_numeric_dense` under `Auto` resolves to a
/// compiled backend on this host yet stays bit-identical for fused
/// kernels (the step-machine fallback, since tape fusion refuses shifts
/// of computed rows).
#[test]
fn numeric_dense_auto_matches_interpreter_for_fused() {
    let shape = StencilShape::cube(1);
    let st = shape.stencil();
    let b = st.default_bindings();
    for t in [2u32, 4] {
        let kt = fused(&shape, &b, LayoutKind::Brick, 16, t);
        let spec = KernelSpec::Vector(kt);
        let mut input = DenseGrid::new(16, 8, 8, t as usize);
        input.fill_test_pattern();
        let oracle = run_numeric_dense_mode(&spec, &input, ExecutionMode::Scalar).unwrap();
        let auto = run_numeric_dense_mode(&spec, &input, ExecutionMode::Auto).unwrap();
        assert_bits_equal(oracle.raw(), auto.raw(), &format!("t{t} auto"));
    }
}
