//! Property tests for block-class trace memoization.
//!
//! Over random (stencil, kernel family, layout, width, domain, brick
//! ordering) combinations:
//!
//! * the class partition covers every launch block exactly once, and each
//!   class representative rebases with delta 0;
//! * replaying the rebased class stream reproduces the directly traced
//!   per-block stream **event for event** — same order, same addresses,
//!   same sizes, same load/store kinds.

use brick_codegen::{generate, CodegenOptions, LayoutKind};
use brick_core::{BrickDecomp, BrickDims, BrickNav, BrickOrdering};
use brick_dsl::shape::StencilShape;
use brick_vm::{BlockClasses, KernelSpec, RecordingSink, ScalarKernel, TraceGeometry};
use proptest::prelude::*;
use std::sync::Arc;

fn shape_of(idx: usize) -> StencilShape {
    match idx {
        0 => StencilShape::star(1),
        1 => StencilShape::star(2),
        2 => StencilShape::star(3),
        3 => StencilShape::star(4),
        4 => StencilShape::cube(1),
        _ => StencilShape::cube(2),
    }
}

fn geometry(
    layout: LayoutKind,
    n: usize,
    width: usize,
    radius: usize,
    morton: bool,
) -> TraceGeometry {
    let extents = (n.max(width), n, n);
    match layout {
        LayoutKind::Brick => {
            let ordering = if morton {
                BrickOrdering::Morton
            } else {
                BrickOrdering::Lexicographic
            };
            let d = Arc::new(BrickDecomp::new(
                extents,
                BrickDims::for_simd_width(width),
                radius,
                ordering,
            ));
            TraceGeometry::brick(Arc::new(BrickNav::new(d)))
        }
        LayoutKind::Array => {
            TraceGeometry::array(extents, radius, BrickDims::for_simd_width(width))
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn partition_covers_and_replay_matches_oracle(
        shape_idx in 0usize..6,
        width_idx in 0usize..2,
        n_idx in 0usize..2,
        layout_idx in 0usize..2,
        morton in 0usize..2,
        scalar in 0usize..2,
    ) {
        let shape = shape_of(shape_idx);
        let width = [16usize, 32][width_idx];
        let n = [32usize, 64][n_idx];
        let layout = [LayoutKind::Brick, LayoutKind::Array][layout_idx];
        let radius = shape.radius as usize;
        let st = shape.stencil();
        let b = st.default_bindings();
        let spec = if scalar == 1 {
            KernelSpec::Scalar(ScalarKernel::new(&st, &b, layout, width).unwrap())
        } else {
            KernelSpec::Vector(
                generate(&st, &b, layout, width, CodegenOptions::default()).unwrap(),
            )
        };
        let geom = geometry(layout, n, width, radius, morton == 1);
        let classes = BlockClasses::compile(&spec, &geom).unwrap();

        // -- coverage: every block belongs to exactly one class ----------
        prop_assert_eq!(classes.num_blocks(), geom.num_blocks());
        let mut members = vec![0usize; classes.num_classes()];
        for i in 0..classes.num_blocks() {
            let c = classes.class_of(i);
            prop_assert!(c < classes.num_classes(), "class index out of range");
            members[c] += 1;
        }
        prop_assert_eq!(
            members.iter().sum::<usize>(),
            geom.num_blocks(),
            "partition must cover the launch exactly once"
        );
        for (c, &count) in members.iter().enumerate() {
            prop_assert!(count > 0, "class {} has no members", c);
            let rep = classes.class(c).representative;
            prop_assert_eq!(classes.class_of(rep), c);
            let (_, delta) = classes.block(rep);
            prop_assert_eq!(delta, 0i64, "representative must rebase by 0");
        }

        // -- fidelity: rebased replay == direct trace, event for event ---
        for i in 0..geom.num_blocks() {
            let mut oracle = RecordingSink::default();
            spec.trace_block(&geom, i, &mut oracle).unwrap();
            let mut replay = RecordingSink::default();
            classes.replay_block(i, &mut replay);
            prop_assert_eq!(
                &replay.events,
                &oracle.events,
                "block {} of {} diverged",
                i,
                spec.name()
            );
        }
    }
}
