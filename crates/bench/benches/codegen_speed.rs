//! Criterion bench: the code generator itself — generation latency per
//! stencil/strategy (BrickLib generates at build time; our generator runs
//! at runtime and should stay interactive even for the 125-point cube).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use brick_codegen::{emit_vector, generate, CodegenOptions, Dialect, LayoutKind, Strategy};
use brick_dsl::shape::StencilShape;

fn bench_generate(c: &mut Criterion) {
    let mut group = c.benchmark_group("codegen");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    for shape in StencilShape::paper_suite() {
        let st = shape.stencil();
        let b = st.default_bindings();
        for strategy in [Strategy::Gather, Strategy::Scatter] {
            group.bench_with_input(
                BenchmarkId::new(format!("{strategy}"), shape.label()),
                &strategy,
                |bench, &strategy| {
                    bench.iter(|| {
                        generate(
                            &st,
                            &b,
                            LayoutKind::Brick,
                            32,
                            CodegenOptions {
                                strategy,
                                ..Default::default()
                            },
                        )
                        .unwrap()
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_emit(c: &mut Criterion) {
    let mut group = c.benchmark_group("emit");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    let st = StencilShape::cube(2).stencil();
    let b = st.default_bindings();
    let kernel = generate(&st, &b, LayoutKind::Brick, 32, CodegenOptions::default()).unwrap();
    for dialect in [Dialect::Cuda, Dialect::Hip, Dialect::Sycl] {
        group.bench_function(dialect.name(), |bench| {
            bench.iter(|| emit_vector(&kernel, dialect));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_generate, bench_emit);
criterion_main!(benches);
