//! Criterion bench: simulator throughput — cache accesses and full
//! memory-hierarchy simulations per second. These are the costs that
//! bound how large a domain the experiment harness can sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::sync::Arc;
use std::time::Duration;

use brick_codegen::{generate, CodegenOptions, LayoutKind};
use brick_core::{BrickDecomp, BrickDims, BrickNav, BrickOrdering};
use brick_dsl::shape::StencilShape;
use brick_vm::{KernelSpec, ScalarKernel, TraceGeometry};
use gpu_sim::{
    simulate_memory, simulate_memory_opts, Cache, CacheConfig, GpuArch, SimFidelity, SimOptions,
    WritePolicy,
};

fn bench_raw_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_access");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    // a strided read pattern with ~50% hit rate
    let accesses: Vec<u64> = (0..100_000u64).map(|i| (i * 96) % (1 << 22)).collect();
    group.throughput(Throughput::Elements(accesses.len() as u64));
    group.bench_function("l1_sectored_read", |bench| {
        bench.iter(|| {
            let mut cache = Cache::new(CacheConfig {
                bytes: 192 * 1024,
                line: 128,
                sector: 32,
                assoc: 8,
                write: WritePolicy::ThroughNoAllocate,
            });
            let mut sink = 0u64;
            for &a in &accesses {
                cache.read(a, 32, &mut |t| sink += t.bytes as u64);
            }
            sink
        });
    });
    group.finish();
}

fn bench_hierarchy(c: &mut Criterion) {
    let mut group = c.benchmark_group("memory_hierarchy");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    let arch = GpuArch::a100();
    let n = 128;
    for shape in [StencilShape::star(2), StencilShape::cube(2)] {
        let st = shape.stencil();
        let b = st.default_bindings();
        let radius = shape.radius as usize;

        let vector = KernelSpec::Vector(
            generate(&st, &b, LayoutKind::Brick, 32, CodegenOptions::default()).unwrap(),
        );
        let decomp = Arc::new(BrickDecomp::new(
            (n, n, n),
            BrickDims::for_simd_width(32),
            radius,
            BrickOrdering::Lexicographic,
        ));
        let bgeom = TraceGeometry::brick(Arc::new(BrickNav::new(decomp)));
        group.bench_with_input(
            BenchmarkId::new("bricks_codegen", shape.label()),
            &vector,
            |bench, spec| {
                bench.iter(|| simulate_memory(spec, &bgeom, &arch, 32));
            },
        );

        let scalar = KernelSpec::Scalar(ScalarKernel::new(&st, &b, LayoutKind::Array, 32).unwrap());
        let ageom = TraceGeometry::array((n, n, n), radius, BrickDims::for_simd_width(32));
        group.bench_with_input(
            BenchmarkId::new("array_scalar", shape.label()),
            &scalar,
            |bench, spec| {
                bench.iter(|| simulate_memory(spec, &ageom, &arch, 4));
            },
        );
    }
    group.finish();
}

fn bench_fidelity(c: &mut Criterion) {
    // exact (per-block interpreter trace) vs fast (block-class replay) on
    // the acceptance cell: star-2 bricks codegen on the A100 — the
    // speedup reported in BENCH_sim.json comes from this same pair. 128³
    // exercises the SM-group memoization alone; the paper's 512³ is where
    // the wave-periodic fast-forward engages on top of it.
    let mut group = c.benchmark_group("sim_fidelity");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    let arch = GpuArch::a100();
    let shape = StencilShape::star(2);
    let st = shape.stencil();
    let b = st.default_bindings();
    let spec = KernelSpec::Vector(
        generate(&st, &b, LayoutKind::Brick, 32, CodegenOptions::default()).unwrap(),
    );
    for n in [128usize, 512] {
        let decomp = Arc::new(BrickDecomp::new(
            (n, n, n),
            BrickDims::for_simd_width(32),
            shape.radius as usize,
            BrickOrdering::Lexicographic,
        ));
        let geom = TraceGeometry::brick(Arc::new(BrickNav::new(decomp)));
        for fidelity in [SimFidelity::Exact, SimFidelity::Fast] {
            let opts = SimOptions {
                fidelity,
                ..SimOptions::default()
            };
            group.bench_with_input(
                BenchmarkId::new(format!("star2_a100_{n}"), fidelity),
                &opts,
                |bench, opts| {
                    bench.iter(|| simulate_memory_opts(&spec, &geom, &arch, 32, opts));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_raw_cache, bench_hierarchy, bench_fidelity);
criterion_main!(benches);
