//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! 1. **brick memory ordering** — lexicographic vs Morton (BrickLib
//!    autotunes brick ordering; the adjacency indirection is what makes
//!    the choice free);
//! 2. **gather vs scatter scheduling** — register pressure vs FLOPs, the
//!    trade the Auto strategy arbitrates;
//! 3. **brick shape** — `by×bz` of 2×2 / 4×4 / 8×8 at constant width (the
//!    paper's conclusion names brick-size tuning as the path to the
//!    remaining 2–4x of Fig. 7);
//! 4. **partial vs full edge loads** — measured via kernel loaded bytes.
//!
//! Run with `cargo bench --bench ablations` (env `BRICKS_BENCH_N`,
//! default 128, multiple of 64).

use std::sync::Arc;

use brick_codegen::{generate, CodegenOptions, LayoutKind, Strategy};
use brick_core::{BrickDecomp, BrickDims, BrickNav, BrickOrdering};
use brick_dsl::shape::StencilShape;
use brick_dsl::StencilAnalysis;
use brick_vm::{KernelSpec, ScalarKernel, TraceGeometry};
use gpu_sim::{simulate, GpuArch, ProgModel};

fn geom(n: usize, dims: BrickDims, radius: usize, ordering: BrickOrdering) -> TraceGeometry {
    let d = Arc::new(BrickDecomp::new((n, n, n), dims, radius, ordering));
    TraceGeometry::brick(Arc::new(BrickNav::new(d)))
}

fn main() {
    let n: usize = std::env::var("BRICKS_BENCH_N")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(128);
    assert!(
        n.is_multiple_of(64),
        "BRICKS_BENCH_N must be a multiple of 64"
    );
    let arch = GpuArch::a100();
    let w = arch.simd_width;

    println!("== ablation 1: brick memory ordering (A100 CUDA, {n}^3) ==");
    println!(
        "{:8} {:14} {:>9} {:>9} {:>8}",
        "stencil", "ordering", "GFLOP/s", "DRAM GB", "pagehit"
    );
    for shape in [StencilShape::star(2), StencilShape::cube(2)] {
        let st = shape.stencil();
        let b = st.default_bindings();
        let a = StencilAnalysis::of_shape(&shape);
        let spec = KernelSpec::Vector(
            generate(&st, &b, LayoutKind::Brick, w, CodegenOptions::default()).unwrap(),
        );
        for ordering in [BrickOrdering::Lexicographic, BrickOrdering::Morton] {
            let g = geom(
                n,
                BrickDims::for_simd_width(w),
                shape.radius as usize,
                ordering,
            );
            let r = simulate(&spec, &g, &arch, ProgModel::Cuda, a.flops_per_point).unwrap();
            println!(
                "{:8} {:14} {:>9.0} {:>9.3} {:>8.2}",
                shape.label(),
                format!("{ordering:?}"),
                r.gflops,
                r.mem.dram_bytes as f64 / 1e9,
                r.mem.pages.hit_rate()
            );
        }
    }

    println!("\n== ablation 2: gather vs scatter scheduling (A100 CUDA, {n}^3) ==");
    println!(
        "{:8} {:9} {:>6} {:>9} {:>7} {:>9}",
        "stencil", "strategy", "regs", "instr/blk", "occup", "GFLOP/s"
    );
    for shape in StencilShape::paper_suite() {
        let st = shape.stencil();
        let b = st.default_bindings();
        let a = StencilAnalysis::of_shape(&shape);
        for strategy in [Strategy::Gather, Strategy::Scatter] {
            let k = generate(
                &st,
                &b,
                LayoutKind::Brick,
                w,
                CodegenOptions {
                    strategy,
                    ..Default::default()
                },
            )
            .unwrap();
            let instr = k.stats.total_instructions();
            let spec = KernelSpec::Vector(k);
            let g = geom(
                n,
                BrickDims::for_simd_width(w),
                shape.radius as usize,
                BrickOrdering::Lexicographic,
            );
            let r = simulate(&spec, &g, &arch, ProgModel::Cuda, a.flops_per_point).unwrap();
            println!(
                "{:8} {:9} {:>6} {:>9} {:>6.2} {:>9.0}",
                shape.label(),
                strategy.to_string(),
                r.regs_per_thread,
                instr,
                r.occupancy.occupancy,
                r.gflops
            );
        }
    }

    println!("\n== ablation 3: brick shape by x bz at width {w} (13pt, A100 CUDA, {n}^3) ==");
    println!(
        "{:8} {:>9} {:>9} {:>7}",
        "shape", "GFLOP/s", "DRAM GB", "regs"
    );
    let shape = StencilShape::star(2);
    let st = shape.stencil();
    let b = st.default_bindings();
    let a = StencilAnalysis::of_shape(&shape);
    for (by, bz) in [(2usize, 2usize), (4, 4), (8, 8)] {
        let k = generate(
            &st,
            &b,
            LayoutKind::Brick,
            w,
            CodegenOptions {
                block_yz: (by, bz),
                ..Default::default()
            },
        )
        .unwrap();
        let spec = KernelSpec::Vector(k);
        let g = geom(
            n,
            BrickDims::new(w, by, bz),
            shape.radius as usize,
            BrickOrdering::Lexicographic,
        );
        let r = simulate(&spec, &g, &arch, ProgModel::Cuda, a.flops_per_point).unwrap();
        println!(
            "{:8} {:>9.0} {:>9.3} {:>7}",
            format!("{bz}x{by}x{w}"),
            r.gflops,
            r.mem.dram_bytes as f64 / 1e9,
            r.regs_per_thread
        );
    }

    println!(
        "\n== ablation 5: Fig. 2 scalar kernels, bricks vs array layout (A100 CUDA, {n}^3) =="
    );
    println!(
        "{:8} {:8} {:>9} {:>9} {:>9}",
        "stencil", "layout", "GFLOP/s", "DRAM GB", "L1 GB"
    );
    for shape in [StencilShape::star(1), StencilShape::cube(2)] {
        let st = shape.stencil();
        let b = st.default_bindings();
        let a = StencilAnalysis::of_shape(&shape);
        for layout in [LayoutKind::Array, LayoutKind::Brick] {
            let spec = KernelSpec::Scalar(ScalarKernel::new(&st, &b, layout, w).unwrap());
            let g = match layout {
                LayoutKind::Array => TraceGeometry::array(
                    (n, n, n),
                    shape.radius as usize,
                    BrickDims::for_simd_width(w),
                ),
                LayoutKind::Brick => geom(
                    n,
                    BrickDims::for_simd_width(w),
                    shape.radius as usize,
                    BrickOrdering::Lexicographic,
                ),
            };
            let r = simulate(&spec, &g, &arch, ProgModel::Cuda, a.flops_per_point).unwrap();
            println!(
                "{:8} {:8} {:>9.0} {:>9.3} {:>9.3}",
                shape.label(),
                layout.to_string(),
                r.gflops,
                r.mem.dram_bytes as f64 / 1e9,
                r.mem.l1_bytes as f64 / 1e9
            );
        }
    }

    println!("\n== ablation 4: edge-load narrowing (loaded bytes per block) ==");
    println!(
        "{:8} {:>12} {:>14}",
        "stencil", "loaded bytes", "full-row bytes"
    );
    for shape in StencilShape::paper_suite() {
        let st = shape.stencil();
        let b = st.default_bindings();
        let k = generate(&st, &b, LayoutKind::Brick, w, CodegenOptions::default()).unwrap();
        let full: u64 = k.stats.loads as u64 * w as u64 * 8;
        println!("{:8} {:>12} {:>14}", shape.label(), k.loaded_bytes(), full);
    }
}
