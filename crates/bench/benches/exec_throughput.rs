//! Criterion bench: execution-backend throughput — the interpreter against
//! the compiled portable backend and the SIMD backend `Auto` dispatches on
//! this host, on identical kernels and grids.
//!
//! This is the micro-benchmark behind the `BENCH_exec.json` acceptance
//! artifact (see `experiments --bench-exec` for the gated, manifest-carrying
//! measurement): the backend is forced per series via
//! `run_vector_*_backend`, so the series keep their meaning regardless of
//! `BRICK_EXEC` or the host CPU. Backends the host cannot run are skipped,
//! not failed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::sync::Arc;
use std::time::Duration;

use brick_codegen::{generate, CodegenOptions, LayoutKind};
use brick_core::{ArrayGrid, BrickDims, BrickGrid};
use brick_dsl::shape::StencilShape;
use brick_dsl::DenseGrid;
use brick_vm::{run_vector_array_backend, run_vector_brick_backend, Backend, CpuFeatures};

const N: usize = 64;
const WIDTH: usize = 32;

/// Every backend this host can execute, interpreter first (the baseline
/// series).
fn backends() -> Vec<Backend> {
    let feats = CpuFeatures::detect();
    let mut v = vec![Backend::Interpreter, Backend::Portable];
    if feats.avx2 && feats.fma {
        v.push(Backend::Avx2);
    }
    if feats.neon {
        v.push(Backend::Neon);
    }
    v
}

fn bench_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("exec_throughput");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .throughput(Throughput::Elements((N * N * N) as u64));

    for shape in [
        StencilShape::star(1),
        StencilShape::star(4),
        StencilShape::cube(2),
    ] {
        let st = shape.stencil();
        let b = st.default_bindings();
        let halo = st.radius() as usize;
        let mut dense = DenseGrid::cubic(N, halo);
        dense.fill_test_pattern();

        // bricks layout
        {
            let kernel =
                generate(&st, &b, LayoutKind::Brick, WIDTH, CodegenOptions::default()).unwrap();
            let input = BrickGrid::from_dense(&dense, BrickDims::for_simd_width(WIDTH));
            let mut output =
                BrickGrid::with_metadata(Arc::clone(input.decomp()), Arc::clone(input.info()));
            for backend in backends() {
                group.bench_with_input(
                    BenchmarkId::new(format!("bricks/{backend}"), shape.label()),
                    &kernel,
                    |bench, k| {
                        bench.iter(|| {
                            run_vector_brick_backend(k, &input, &mut output, backend).unwrap()
                        });
                    },
                );
            }
        }

        // array layout
        {
            let kernel =
                generate(&st, &b, LayoutKind::Array, WIDTH, CodegenOptions::default()).unwrap();
            let input = ArrayGrid::from_dense(&dense);
            let mut output = ArrayGrid::new(N, N, N, halo);
            for backend in backends() {
                group.bench_with_input(
                    BenchmarkId::new(format!("array/{backend}"), shape.label()),
                    &kernel,
                    |bench, k| {
                        bench.iter(|| {
                            run_vector_array_backend(k, &input, &mut output, backend).unwrap()
                        });
                    },
                );
            }
        }
    }
    group.finish();
}

/// The acceptance-target cell at full paper scale: 7-point star (`star1`)
/// at 512³, bricks layout, per backend. ~1 GiB per grid and an interpreted
/// full sweep per sample — gated behind `BRICK_BENCH_FULL=1`.
fn bench_full_scale(c: &mut Criterion) {
    if std::env::var("BRICK_BENCH_FULL").as_deref() != Ok("1") {
        return;
    }
    const NFULL: usize = 512;
    let st = StencilShape::star(1).stencil();
    let b = st.default_bindings();
    let mut dense = DenseGrid::cubic(NFULL, 1);
    dense.fill_test_pattern();
    let kernel = generate(&st, &b, LayoutKind::Brick, WIDTH, CodegenOptions::default()).unwrap();
    let input = BrickGrid::from_dense(&dense, BrickDims::for_simd_width(WIDTH));
    let mut output = BrickGrid::with_metadata(Arc::clone(input.decomp()), Arc::clone(input.info()));

    let mut group = c.benchmark_group("exec_throughput_full");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(10))
        .throughput(Throughput::Elements((NFULL * NFULL * NFULL) as u64));
    for backend in backends() {
        group.bench_with_input(
            BenchmarkId::new(format!("bricks/{backend}"), "star1-512"),
            &kernel,
            |bench, k| {
                bench.iter(|| run_vector_brick_backend(k, &input, &mut output, backend).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_backends, bench_full_scale);
criterion_main!(benches);
