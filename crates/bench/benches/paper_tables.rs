//! `cargo bench` target that regenerates every table and figure of the
//! paper (the same drivers as the `experiments` binary), timing each
//! phase once. Not a criterion bench: the sweep is minutes-long and the
//! artifact itself is the result.
//!
//! Domain size: `BRICKS_BENCH_N` env var (default 256; the paper's 512
//! with `BRICKS_BENCH_N=512`).

use std::time::Instant;

use experiments::report::*;
use experiments::{figures, tables, ExperimentParams};

fn main() {
    // `cargo bench -- --bench` passes flags; ignore them.
    let n: usize = std::env::var("BRICKS_BENCH_N")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(256);
    let params = ExperimentParams { n };
    params
        .validate()
        .expect("BRICKS_BENCH_N must be a multiple of 64");

    println!("==============================================================");
    println!(" paper reproduction benchmark: {n}^3 doubles, all platforms");
    println!("==============================================================\n");

    println!("== Table 1: systems and toolchains ==");
    println!("{}", render_table1(&tables::table1()));
    println!("== Table 2: stencil suite ==");
    println!("{}", render_table2(&tables::table2()));
    println!("== Table 4: theoretical arithmetic intensity ==");
    println!("{}", render_table4(&tables::table4()));

    let t0 = Instant::now();
    let sweep = experiments::sweep(params);
    let sweep_time = t0.elapsed().as_secs_f64();
    println!("full sweep (6 stencils x 3 configs x 6 platform pairs): {sweep_time:.1}s\n");

    println!("== Table 3: P from fraction of Roofline (bricks codegen) ==");
    println!("{}", render_portability(&tables::table3(&sweep)));
    println!("== Table 5: P from fraction of theoretical AI (bricks codegen) ==");
    println!("{}", render_portability(&tables::table5(&sweep)));

    println!("== Fig. 3: Rooflines ==");
    println!("{}", render_fig3(&figures::fig3(&sweep)));
    println!("== Fig. 4: L1 data movement ==");
    println!("{}", render_fig4(&figures::fig4(&sweep)));
    println!("{}", render_correlation(&figures::fig5(&sweep), "Fig. 5"));
    println!("{}", render_correlation(&figures::fig6(&sweep), "Fig. 6"));

    println!("== Fig. 7: potential speed-up (bricks codegen) ==");
    for p in figures::fig7(&sweep) {
        println!(
            "  {:28} frac_AI {:.2}  frac_roofline {:.2}  potential {:.1}x",
            p.label,
            p.frac_ai,
            p.frac_roofline,
            p.potential()
        );
    }

    let dir = std::path::Path::new("artifacts");
    let _ = std::fs::create_dir_all(dir);
    let _ = write_sweep_csv(&sweep, &dir.join("bench_sweep.csv"));
    println!("\nartifacts/bench_sweep.csv written; sweep wall time {sweep_time:.1}s");
}
