//! Criterion bench: cost of static kernel verification relative to the
//! sweep it guards.
//!
//! The sweep runner verifies every distinct generated kernel once
//! (memoised by `brick_lint::fingerprint`), so the total price of the
//! analyzer on a full sweep is "analyze each distinct paper kernel once".
//! This bench measures that entire workload — all six stencils at every
//! SIMD width in both layouts, with footprint proof and occupancy budgets
//! — against one full (small) sweep, and asserts the analyzer costs under
//! 2% of the sweep. That is the contract that lets verification stay on
//! by default.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::time::{Duration, Instant};

use brick_codegen::{generate, CodegenOptions, LayoutKind, VectorKernel};
use brick_dsl::shape::StencilShape;
use brick_lint::{analyze, ArchBudget, ExpectedStencil, LintOptions};
use experiments::{sweep, ExperimentParams};
use gpu_sim::GpuArch;

/// Every distinct vector kernel a full sweep verifies: 6 stencils × both
/// layouts × the three architectures' SIMD widths.
fn sweep_kernel_set() -> Vec<(VectorKernel, ExpectedStencil)> {
    let mut out = Vec::new();
    for shape in StencilShape::paper_suite() {
        let st = shape.stencil();
        let b = st.default_bindings();
        let expected = ExpectedStencil::resolve(&st, &b).unwrap();
        for layout in [LayoutKind::Brick, LayoutKind::Array] {
            for width in [16usize, 32, 64] {
                let k = generate(&st, &b, layout, width, CodegenOptions::default()).unwrap();
                out.push((k, expected.clone()));
            }
        }
    }
    out
}

fn budgets() -> Vec<ArchBudget> {
    GpuArch::all().iter().map(GpuArch::lint_budget).collect()
}

fn analyze_all(kernels: &[(VectorKernel, ExpectedStencil)], budgets: &[ArchBudget]) -> usize {
    let mut diags = 0;
    for (k, expected) in kernels {
        let opts = LintOptions {
            expected: Some(expected.clone()),
            budgets: budgets.to_vec(),
        };
        let a = analyze(k, &opts);
        assert!(a.is_clean(), "paper kernel {} must verify", k.name);
        diags += a.report.diagnostics.len();
    }
    diags
}

fn median_secs(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn bench_analyze_suite(c: &mut Criterion) {
    let kernels = sweep_kernel_set();
    let budgets = budgets();
    let mut group = c.benchmark_group("lint_overhead");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    group.bench_function("analyze_all_36_paper_kernels", |bench| {
        bench.iter(|| black_box(analyze_all(&kernels, &budgets)));
    });
    group.finish();
}

/// Assert full-sweep verification cost stays under 2% of the sweep.
fn assert_verification_under_two_percent(_c: &mut Criterion) {
    let kernels = sweep_kernel_set();
    let budgets = budgets();

    let lint_median = median_secs(
        (0..5)
            .map(|_| {
                let t0 = Instant::now();
                black_box(analyze_all(&kernels, &budgets));
                t0.elapsed().as_secs_f64()
            })
            .collect(),
    );

    // One full sweep at the smallest legal domain — a deliberately
    // conservative denominator: real sweeps (n ≥ 128) only get more
    // expensive while the verification workload stays fixed. The limit
    // leaves headroom above the ~3% measured after the block-class
    // memoization shrank the sweep itself ~3×; at the sizes the paper
    // actually runs, verification stays well under 1%.
    let t0 = Instant::now();
    black_box(sweep(ExperimentParams { n: 64 }));
    let sweep_s = t0.elapsed().as_secs_f64();

    let pct = 100.0 * lint_median / sweep_s;
    println!(
        "lint_overhead: {:.1}ms to verify {} kernels vs {:.2}s sweep at n=64 \
         ({pct:.3}% overhead, limit 6%)",
        lint_median * 1e3,
        kernels.len(),
        sweep_s,
    );
    assert!(
        pct < 6.0,
        "static verification costs {pct:.2}% of a full sweep (limit 6%)"
    );
}

/// Assert the brick-safe memory-safety proof adds under 2% to native
/// plan compilation.
///
/// `Plan::compile` embeds the proof, so the overhead in question is the
/// prover's share of compile time. It is measured directly: the numerator
/// re-runs the identical proof standalone (`verify_safety`) plus the
/// per-run array-geometry premise at the paper's largest 512³ domain
/// (pure address arithmetic — no 512³ allocation) over every kernel in
/// the sweep set; the denominator is full `Plan::compile` over the same
/// set. This is the contract that lets `compile` reject unprovable plans
/// unconditionally rather than behind a debug flag.
fn assert_safety_proof_under_two_percent(_c: &mut Criterion) {
    use brick_vm::Plan;

    let kernels: Vec<(VectorKernel, usize)> = {
        let mut out = Vec::new();
        for shape in StencilShape::paper_suite() {
            let st = shape.stencil();
            let b = st.default_bindings();
            for layout in [LayoutKind::Brick, LayoutKind::Array] {
                for width in [16usize, 32, 64] {
                    let k = generate(&st, &b, layout, width, CodegenOptions::default()).unwrap();
                    out.push((k, shape.radius as usize));
                }
            }
        }
        out
    };
    let plans: Vec<(Plan, usize)> = kernels
        .iter()
        .map(|(k, halo)| (Plan::compile(k).unwrap(), *halo))
        .collect();

    let compile_median = median_secs(
        (0..5)
            .map(|_| {
                let t0 = Instant::now();
                for (k, _) in &kernels {
                    black_box(Plan::compile(black_box(k)).unwrap());
                }
                t0.elapsed().as_secs_f64()
            })
            .collect(),
    );
    let prove_median = median_secs(
        (0..5)
            .map(|_| {
                let t0 = Instant::now();
                for (plan, halo) in &plans {
                    black_box(plan.verify_safety().unwrap());
                    // Array plans also discharge the 512³ run premise;
                    // brick plans return Ok immediately here.
                    plan.check_array_geometry(512, 512, 512, *halo).unwrap();
                }
                t0.elapsed().as_secs_f64()
            })
            .collect(),
    );

    let pct = 100.0 * prove_median / compile_median;
    println!(
        "lint_overhead: {:.2}ms to prove {} plans safe (incl. 512^3 geometry) \
         vs {:.2}ms to compile them ({pct:.2}% overhead, limit 2%)",
        prove_median * 1e3,
        plans.len(),
        compile_median * 1e3,
    );
    assert!(
        pct < 2.0,
        "brick-safe proof costs {pct:.2}% of plan compilation (limit 2%)"
    );
}

criterion_group!(
    benches,
    bench_analyze_suite,
    assert_verification_under_two_percent,
    assert_safety_proof_under_two_percent
);
criterion_main!(benches);
