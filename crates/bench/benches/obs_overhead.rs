//! Criterion bench: cost of the brick-obs instrumentation threaded
//! through `simulate()`. Two questions:
//!
//! 1. How much slower is a simulation with span tracing *enabled*?
//!    (Informational — tracing is opt-in via `--trace`/`BRICK_TRACE`.)
//! 2. With everything *off* (the default: `BRICK_LOG` unset, no tracing,
//!    no metrics registry), is the residual gate cost under 5% of a
//!    simulation? This is the contract the instrumentation was written
//!    against, so the bench asserts it.
//! 3. With *full attribution* on (span tracing plus the brick-prof
//!    allocation clock), does a 64^3 sweep stay within 15% of the
//!    disabled-path sweep? This is the contract `--prof` was written
//!    against, asserted by `assert_full_attribution_is_cheap`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use std::time::{Duration, Instant};

use brick_codegen::{generate, CodegenOptions, LayoutKind};
use brick_core::{BrickDecomp, BrickDims, BrickNav, BrickOrdering};
use brick_dsl::shape::StencilShape;
use brick_dsl::StencilAnalysis;
use brick_obs::span;
use brick_vm::{KernelSpec, TraceGeometry};
use gpu_sim::{simulate, GpuArch, ProgModel};

fn workload() -> (KernelSpec, TraceGeometry, GpuArch, u64) {
    let shape = StencilShape::star(1);
    let st = shape.stencil();
    let b = st.default_bindings();
    let spec = KernelSpec::Vector(
        generate(&st, &b, LayoutKind::Brick, 32, CodegenOptions::default()).unwrap(),
    );
    let decomp = Arc::new(BrickDecomp::new(
        (64, 64, 64),
        BrickDims::for_simd_width(32),
        shape.radius as usize,
        BrickOrdering::Lexicographic,
    ));
    let geom = TraceGeometry::brick(Arc::new(BrickNav::new(decomp)));
    let flops = StencilAnalysis::of_shape(&shape).flops_per_point;
    (spec, geom, GpuArch::a100(), flops)
}

fn median_secs(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn bench_tracing_on_vs_off(c: &mut Criterion) {
    let (spec, geom, arch, flops) = workload();
    let mut group = c.benchmark_group("obs_overhead");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    span::set_tracing(false);
    group.bench_function("simulate_tracing_off", |bench| {
        bench.iter(|| simulate(&spec, &geom, &arch, ProgModel::Cuda, flops));
    });

    group.bench_function("simulate_tracing_on", |bench| {
        span::set_tracing(true);
        bench.iter(|| {
            let r = simulate(&spec, &geom, &arch, ProgModel::Cuda, flops);
            span::clear_spans();
            r
        });
        span::set_tracing(false);
        span::clear_spans();
    });
    group.finish();
}

/// Assert the disabled instrumentation path stays under 5% of a
/// simulation. Rather than racing two medians of the same binary (the
/// instrumentation cannot be compiled out, so "uninstrumented" is not
/// measurable here), this prices the gates directly: count the spans one
/// traced run opens, measure the per-call cost of a *disabled* gate, and
/// compare the product against the median simulation time.
fn assert_disabled_gates_are_cheap(_c: &mut Criterion) {
    let (spec, geom, arch, flops) = workload();

    span::clear_spans();
    span::set_tracing(true);
    simulate(&spec, &geom, &arch, ProgModel::Cuda, flops);
    let spans_per_run = span::spans_recorded().max(1);
    span::set_tracing(false);
    span::clear_spans();

    let sim_median = median_secs(
        (0..7)
            .map(|_| {
                let t0 = Instant::now();
                black_box(simulate(&spec, &geom, &arch, ProgModel::Cuda, flops));
                t0.elapsed().as_secs_f64()
            })
            .collect(),
    );

    // Per-call price of one closed gate: an inert SpanGuard plus a
    // counter_add against the absent registry, the two operations every
    // instrumentation point in the pipeline bottoms out in when off.
    const CALLS: u64 = 1_000_000;
    let gate_median = median_secs(
        (0..5)
            .map(|_| {
                let t0 = Instant::now();
                for i in 0..CALLS {
                    drop(black_box(span::span_cat("bench-gate", "bench")));
                    brick_obs::counter_add("bench.gate", black_box(i) & 1);
                }
                t0.elapsed().as_secs_f64() / CALLS as f64
            })
            .collect(),
    );

    let overhead = gate_median * spans_per_run as f64;
    let pct = 100.0 * overhead / sim_median;
    println!(
        "obs_overhead: {spans_per_run} spans/run x {:.1}ns/gate = {:.3}us \
         vs {:.3}ms simulate ({pct:.4}% overhead, limit 5%)",
        gate_median * 1e9,
        overhead * 1e6,
        sim_median * 1e3,
    );
    assert!(
        pct < 5.0,
        "disabled instrumentation costs {pct:.2}% of a simulate() run (limit 5%)"
    );
}

/// Assert full attribution (span tracing + the prof allocation clock)
/// keeps a 64^3 sweep within 15% of the disabled path. The disabled
/// baseline is measured first, before `brick_prof::init()` registers the
/// allocation clock, so it prices exactly what a default (no `--prof`)
/// run pays.
fn assert_full_attribution_is_cheap(_c: &mut Criterion) {
    use experiments::{sweep_with, ExperimentParams, SweepOptions};

    let opts = SweepOptions::new(ExperimentParams { n: 64 }).jobs(1);
    let run = |opts: &SweepOptions| {
        let t0 = Instant::now();
        black_box(sweep_with(opts).expect("sweep runs"));
        t0.elapsed().as_secs_f64()
    };

    span::set_tracing(false);
    run(&opts); // warm-up: fault in code paths before either measurement
    let off_median = median_secs((0..5).map(|_| run(&opts)).collect());

    brick_prof::init();
    span::set_tracing(true);
    let on_median = median_secs(
        (0..5)
            .map(|_| {
                span::clear_spans();
                run(&opts)
            })
            .collect(),
    );
    span::set_tracing(false);
    span::clear_spans();

    let pct = 100.0 * (on_median / off_median - 1.0);
    println!(
        "obs_overhead: 64^3 sweep {:.1}ms disabled vs {:.1}ms full attribution \
         ({pct:+.2}% overhead, limit 15%)",
        off_median * 1e3,
        on_median * 1e3,
    );
    assert!(
        pct < 15.0,
        "full attribution costs {pct:.2}% on a 64^3 sweep (limit 15%)"
    );
}

criterion_group!(
    benches,
    bench_tracing_on_vs_off,
    assert_disabled_gates_are_cheap,
    assert_full_attribution_is_cheap
);
criterion_main!(benches);
