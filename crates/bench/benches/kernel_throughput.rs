//! Criterion bench: numeric execution throughput of the three kernel
//! configurations on the VM — the library's real (CPU-side) stencil
//! performance, reported in points/second per configuration.
//!
//! This is the micro-benchmark counterpart of the paper's Fig. 3 sweep:
//! same stencils, same configurations, measured as actual Rust kernels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::sync::Arc;
use std::time::Duration;

use brick_codegen::{generate, CodegenOptions, LayoutKind};
use brick_core::{ArrayGrid, BrickDims, BrickGrid};
use brick_dsl::shape::StencilShape;
use brick_dsl::DenseGrid;
use brick_vm::{
    run_scalar_array, run_vector_array_mode, run_vector_brick_mode, ExecutionMode, ScalarKernel,
};

const N: usize = 64;
const WIDTH: usize = 32;

/// Execution modes benchmarked per codegen configuration. `Scalar` pins the
/// interpreter, so the historical `array-codegen`/`bricks-codegen` series
/// keep their pre-native meaning; the `@auto` variants measure whatever
/// `ExecutionMode::Auto` dispatches on this host (AVX2 on x86_64).
const MODES: [(ExecutionMode, &str); 2] =
    [(ExecutionMode::Scalar, ""), (ExecutionMode::Auto, "@auto")];

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_throughput");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .throughput(Throughput::Elements((N * N * N) as u64));

    for shape in [
        StencilShape::star(1),
        StencilShape::star(4),
        StencilShape::cube(1),
        StencilShape::cube(2),
    ] {
        let st = shape.stencil();
        let b = st.default_bindings();
        let halo = st.radius() as usize;
        let mut dense = DenseGrid::cubic(N, halo);
        dense.fill_test_pattern();

        // array (scalar)
        {
            let kernel = ScalarKernel::new(&st, &b, LayoutKind::Array, WIDTH).unwrap();
            let input = ArrayGrid::from_dense(&dense);
            let mut output = ArrayGrid::new(N, N, N, halo);
            group.bench_with_input(
                BenchmarkId::new("array", shape.label()),
                &kernel,
                |bench, k| {
                    bench.iter(|| run_scalar_array(k, &input, &mut output).unwrap());
                },
            );
        }

        // array codegen — interpreter series plus the Auto-dispatched backend
        {
            let kernel =
                generate(&st, &b, LayoutKind::Array, WIDTH, CodegenOptions::default()).unwrap();
            let input = ArrayGrid::from_dense(&dense);
            let mut output = ArrayGrid::new(N, N, N, halo);
            for (mode, suffix) in MODES {
                group.bench_with_input(
                    BenchmarkId::new(format!("array-codegen{suffix}"), shape.label()),
                    &kernel,
                    |bench, k| {
                        bench.iter(|| run_vector_array_mode(k, &input, &mut output, mode).unwrap());
                    },
                );
            }
        }

        // bricks codegen — interpreter series plus the Auto-dispatched backend
        {
            let kernel =
                generate(&st, &b, LayoutKind::Brick, WIDTH, CodegenOptions::default()).unwrap();
            let input = BrickGrid::from_dense(&dense, BrickDims::for_simd_width(WIDTH));
            let mut output =
                BrickGrid::with_metadata(Arc::clone(input.decomp()), Arc::clone(input.info()));
            for (mode, suffix) in MODES {
                group.bench_with_input(
                    BenchmarkId::new(format!("bricks-codegen{suffix}"), shape.label()),
                    &kernel,
                    |bench, k| {
                        bench.iter(|| run_vector_brick_mode(k, &input, &mut output, mode).unwrap());
                    },
                );
            }
        }
    }
    group.finish();
}

/// Full-scale cell from the paper's problem size: the 7-point star at 512³,
/// bricks layout, interpreter vs Auto. Expensive (two ~1 GiB grids and an
/// interpreted full sweep per sample), so it only runs when
/// `BRICK_BENCH_FULL=1` is set — CI and quick local runs skip it.
fn bench_full_scale(c: &mut Criterion) {
    if std::env::var("BRICK_BENCH_FULL").as_deref() != Ok("1") {
        return;
    }
    const NFULL: usize = 512;
    let st = StencilShape::star(1).stencil();
    let b = st.default_bindings();
    let mut dense = DenseGrid::cubic(NFULL, 1);
    dense.fill_test_pattern();
    let kernel = generate(&st, &b, LayoutKind::Brick, WIDTH, CodegenOptions::default()).unwrap();
    let input = BrickGrid::from_dense(&dense, BrickDims::for_simd_width(WIDTH));
    let mut output = BrickGrid::with_metadata(Arc::clone(input.decomp()), Arc::clone(input.info()));

    let mut group = c.benchmark_group("kernel_throughput_full");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(10))
        .throughput(Throughput::Elements((NFULL * NFULL * NFULL) as u64));
    for (mode, suffix) in MODES {
        group.bench_with_input(
            BenchmarkId::new(format!("bricks-codegen{suffix}"), "star1-512"),
            &kernel,
            |bench, k| {
                bench.iter(|| run_vector_brick_mode(k, &input, &mut output, mode).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_layout_conversion(c: &mut Criterion) {
    let mut group = c.benchmark_group("layout_conversion");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .throughput(Throughput::Elements((N * N * N) as u64));
    let mut dense = DenseGrid::cubic(N, 2);
    dense.fill_test_pattern();
    group.bench_function("dense_to_bricks", |bench| {
        bench.iter(|| BrickGrid::from_dense(&dense, BrickDims::for_simd_width(WIDTH)));
    });
    let grid = BrickGrid::from_dense(&dense, BrickDims::for_simd_width(WIDTH));
    group.bench_function("bricks_to_dense", |bench| {
        bench.iter(|| grid.to_dense());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_kernels,
    bench_layout_conversion,
    bench_full_scale
);
criterion_main!(benches);
