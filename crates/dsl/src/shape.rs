//! Benchmark stencil shape generators (paper Table 2).
//!
//! Two extensible shape classes proxy common high-order finite-difference
//! stencils:
//!
//! * **star** — points on the three axes within `radius` of the centre
//!   (7/13/19/25-point for radius 1–4);
//! * **cube** — every point of the `(2·radius+1)³` bounding box
//!   (27/125-point for radius 1–2).
//!
//! As in the paper, a minimal number of unique coefficients is used by
//! exploiting symmetry: all taps at the same "distance class" share one
//! coefficient symbol.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::expr::ConstRef;
use crate::stencil::{LinCoeff, Offset, Stencil, Tap};

/// The two shape families evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ShapeKind {
    /// Grid-axis-aligned points only.
    Star,
    /// Full cubical bounding box.
    Cube,
}

impl fmt::Display for ShapeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShapeKind::Star => f.write_str("star"),
            ShapeKind::Cube => f.write_str("cube"),
        }
    }
}

/// A (shape, radius) pair — one row of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StencilShape {
    /// Shape family.
    pub kind: ShapeKind,
    /// Stencil radius (≥ 1).
    pub radius: u32,
}

impl StencilShape {
    /// A star-shaped stencil of the given radius.
    pub fn star(radius: u32) -> Self {
        StencilShape {
            kind: ShapeKind::Star,
            radius,
        }
    }

    /// A cube-shaped stencil of the given radius.
    pub fn cube(radius: u32) -> Self {
        StencilShape {
            kind: ShapeKind::Cube,
            radius,
        }
    }

    /// The six configurations benchmarked in the paper (Table 2):
    /// star radius 1–4 and cube radius 1–2.
    pub fn paper_suite() -> Vec<StencilShape> {
        vec![
            StencilShape::star(1),
            StencilShape::star(2),
            StencilShape::star(3),
            StencilShape::star(4),
            StencilShape::cube(1),
            StencilShape::cube(2),
        ]
    }

    /// Number of points in the stencil.
    pub fn points(&self) -> usize {
        let r = self.radius as usize;
        match self.kind {
            ShapeKind::Star => 6 * r + 1,
            ShapeKind::Cube => (2 * r + 1).pow(3),
        }
    }

    /// Number of unique coefficient classes under symmetry.
    ///
    /// For a star this is `radius + 1` (centre plus one class per
    /// distance); for a cube it is the number of multisets of size 3 drawn
    /// from `{0..radius}` — each sorted `(|dx|,|dy|,|dz|)` triple is one
    /// class (4 for the 27-point, 10 for the 125-point stencil).
    pub fn unique_coefficients(&self) -> usize {
        let r = self.radius as usize;
        match self.kind {
            ShapeKind::Star => r + 1,
            // multisets of size 3 from (r+1) values: C(r+3, 3)
            ShapeKind::Cube => (r + 1) * (r + 2) * (r + 3) / 6,
        }
    }

    /// Human-readable name matching the paper's labels, e.g. `"13pt"`.
    pub fn label(&self) -> String {
        format!("{}pt", self.points())
    }

    /// Full name including the family, e.g. `"13pt-star-r2"`.
    pub fn full_name(&self) -> String {
        format!("{}pt-{}-r{}", self.points(), self.kind, self.radius)
    }

    /// Generate the taps with symmetric coefficient classes.
    ///
    /// Class symbols are `c0, c1, …` ordered by distance class; `c0` is
    /// always the centre point.
    pub fn taps(&self) -> Vec<Tap> {
        let r = self.radius as i32;
        let mut taps = Vec::with_capacity(self.points());
        match self.kind {
            ShapeKind::Star => {
                taps.push(tap([0, 0, 0], 0));
                for d in 1..=r {
                    let class = d as usize;
                    for axis in 0..3 {
                        for sign in [-1, 1] {
                            let mut o = [0i32; 3];
                            o[axis] = sign * d;
                            taps.push(tap(o, class));
                        }
                    }
                }
            }
            ShapeKind::Cube => {
                let classes = cube_classes(self.radius);
                for dz in -r..=r {
                    for dy in -r..=r {
                        for dx in -r..=r {
                            let key = sorted_abs([dx, dy, dz]);
                            let class = classes.iter().position(|c| *c == key).expect(
                                "every offset's distance class is enumerated by cube_classes",
                            );
                            taps.push(tap([dx, dy, dz], class));
                        }
                    }
                }
            }
        }
        taps.sort_by_key(|t| t.offset);
        taps
    }

    /// Build the full normalised [`Stencil`] for this shape.
    pub fn stencil(&self) -> Stencil {
        Stencil::from_taps(self.full_name(), "out", "in", self.taps())
    }
}

impl fmt::Display for StencilShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} r{} ({})", self.kind, self.radius, self.label())
    }
}

fn tap(offset: Offset, class: usize) -> Tap {
    let mut coeff = LinCoeff::default();
    coeff.terms.insert(ConstRef::new(format!("c{class}")), 1.0);
    Tap { offset, coeff }
}

fn sorted_abs(o: Offset) -> [i32; 3] {
    let mut a = [o[0].abs(), o[1].abs(), o[2].abs()];
    a.sort_unstable();
    a
}

/// Distance classes of a cube stencil, ordered with the centre first then
/// lexicographically: all sorted `(a ≤ b ≤ c)` triples with entries in
/// `0..=radius`.
fn cube_classes(radius: u32) -> Vec<[i32; 3]> {
    let r = radius as i32;
    let mut out = Vec::new();
    for a in 0..=r {
        for b in a..=r {
            for c in b..=r {
                out.push([a, b, c]);
            }
        }
    }
    out
}

/// Convenience constructor: the classic radius-`r` star stencil.
pub fn star(radius: u32) -> Stencil {
    StencilShape::star(radius).stencil()
}

/// Convenience constructor: the radius-`r` cube stencil.
pub fn cube(radius: u32) -> Stencil {
    StencilShape::cube(radius).stencil()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 2 of the paper, verbatim.
    const TABLE2: &[(ShapeKind, u32, usize, usize)] = &[
        (ShapeKind::Star, 1, 7, 2),
        (ShapeKind::Star, 2, 13, 3),
        (ShapeKind::Star, 3, 19, 4),
        (ShapeKind::Star, 4, 25, 5),
        (ShapeKind::Cube, 1, 27, 4),
        (ShapeKind::Cube, 2, 125, 10),
    ];

    #[test]
    fn closed_forms_match_table2() {
        for &(kind, radius, points, coeffs) in TABLE2 {
            let s = StencilShape { kind, radius };
            assert_eq!(s.points(), points, "{s}");
            assert_eq!(s.unique_coefficients(), coeffs, "{s}");
        }
    }

    #[test]
    fn generated_taps_match_closed_forms() {
        for &(kind, radius, points, coeffs) in TABLE2 {
            let shape = StencilShape { kind, radius };
            let st = shape.stencil();
            assert_eq!(st.points(), points, "{shape}");
            assert_eq!(st.coefficient_classes(), coeffs, "{shape}");
            assert_eq!(st.symbols().len(), coeffs, "{shape}");
            assert_eq!(st.radius(), radius as i32, "{shape}");
        }
    }

    #[test]
    fn paper_suite_is_the_six_configs() {
        let suite = StencilShape::paper_suite();
        assert_eq!(suite.len(), 6);
        let labels: Vec<String> = suite.iter().map(|s| s.label()).collect();
        assert_eq!(labels, ["7pt", "13pt", "19pt", "25pt", "27pt", "125pt"]);
    }

    #[test]
    fn star_taps_lie_on_axes() {
        let st = star(4);
        for t in st.taps() {
            let nonzero = t.offset.iter().filter(|o| **o != 0).count();
            assert!(nonzero <= 1, "star tap off axis: {:?}", t.offset);
        }
    }

    #[test]
    fn cube_taps_fill_bounding_box() {
        let st = cube(2);
        assert_eq!(st.points(), 125);
        // all offsets distinct
        let mut offs: Vec<_> = st.taps().iter().map(|t| t.offset).collect();
        offs.dedup();
        assert_eq!(offs.len(), 125);
        for t in st.taps() {
            assert!(t.offset.iter().all(|o| o.abs() <= 2));
        }
    }

    #[test]
    fn symmetric_offsets_share_class() {
        let st = cube(1);
        let b = st.default_bindings();
        let taps = st.resolve(&b).unwrap();
        let w = |o: Offset| taps.iter().find(|(t, _)| *t == o).unwrap().1;
        // face/face, edge/edge, corner/corner symmetry
        assert_eq!(w([1, 0, 0]), w([0, 0, -1]));
        assert_eq!(w([1, 1, 0]), w([0, -1, 1]));
        assert_eq!(w([1, 1, 1]), w([-1, -1, -1]));
        assert_ne!(w([1, 0, 0]), w([1, 1, 0]));
    }

    #[test]
    fn center_class_is_c0() {
        for shape in StencilShape::paper_suite() {
            let st = shape.stencil();
            let c = st
                .taps()
                .iter()
                .find(|t| t.offset == [0, 0, 0])
                .expect("center tap");
            assert_eq!(c.coeff.single_symbol().unwrap().name(), "c0");
        }
    }

    #[test]
    fn reach_is_isotropic() {
        for shape in StencilShape::paper_suite() {
            let st = shape.stencil();
            let r = shape.radius as i32;
            assert_eq!(st.reach(), [r, r, r]);
        }
    }

    #[test]
    fn cube_classes_count() {
        assert_eq!(cube_classes(1).len(), 4);
        assert_eq!(cube_classes(2).len(), 10);
        assert_eq!(cube_classes(3).len(), 20);
    }
}
