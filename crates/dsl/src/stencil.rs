//! Normalised stencil form and coefficient binding.
//!
//! The DSL expression tree is lowered into a canonical *tap list*: one
//! entry per distinct input offset, each with a linear coefficient
//! expression (`scale·symbol + … + constant`). Every downstream consumer —
//! the scalar reference executor, the tiled array kernels and the vector
//! code generator — works from this normal form.

use std::collections::BTreeMap;
use std::fmt;

use crate::expr::{ConstRef, Expr, GridRef};

/// A constant 3-D offset from the output point; `[dx, dy, dz]` with `dx`
/// the contiguous (fastest-varying) dimension.
pub type Offset = [i32; 3];

/// Errors produced while normalising a DSL expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StencilError {
    /// A product of two sub-expressions that both contain grid accesses —
    /// the stencil would not be linear.
    NonLinear(String),
    /// Accesses to more than one input grid in a single stencil.
    MultipleInputGrids(String, String),
    /// The expression contains no grid accesses at all.
    NoAccesses,
    /// A coefficient symbol had no bound value at evaluation time.
    UnboundCoefficient(String),
}

impl fmt::Display for StencilError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StencilError::NonLinear(e) => {
                write!(f, "stencil expression is not linear in grid accesses: {e}")
            }
            StencilError::MultipleInputGrids(a, b) => {
                write!(f, "stencil reads more than one input grid: {a} and {b}")
            }
            StencilError::NoAccesses => write!(f, "stencil expression reads no grid"),
            StencilError::UnboundCoefficient(name) => {
                write!(f, "coefficient {name} has no bound value")
            }
        }
    }
}

impl std::error::Error for StencilError {}

/// A linear combination of coefficient symbols plus a numeric constant:
/// the weight attached to one tap.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LinCoeff {
    /// Numeric part of the weight.
    pub constant: f64,
    /// `symbol -> scale` terms; kept sorted for deterministic iteration.
    pub terms: BTreeMap<ConstRef, f64>,
}

impl LinCoeff {
    fn lit(v: f64) -> Self {
        LinCoeff {
            constant: v,
            terms: BTreeMap::new(),
        }
    }

    fn sym(c: ConstRef) -> Self {
        let mut terms = BTreeMap::new();
        terms.insert(c, 1.0);
        LinCoeff {
            constant: 0.0,
            terms,
        }
    }

    fn add(&mut self, other: &LinCoeff, sign: f64) {
        self.constant += sign * other.constant;
        for (k, v) in &other.terms {
            *self.terms.entry(k.clone()).or_insert(0.0) += sign * v;
        }
        self.terms.retain(|_, v| *v != 0.0);
    }

    fn mul(&self, other: &LinCoeff) -> Result<LinCoeff, StencilError> {
        // Linear-coefficient algebra only supports products where at least
        // one side is a pure number; products of two symbols never appear
        // in the paper's stencils and are rejected for clarity.
        if self.terms.is_empty() {
            let mut out = other.clone();
            out.scale(self.constant);
            Ok(out)
        } else if other.terms.is_empty() {
            let mut out = self.clone();
            out.scale(other.constant);
            Ok(out)
        } else {
            Err(StencilError::NonLinear(
                "product of two symbolic coefficients".into(),
            ))
        }
    }

    fn scale(&mut self, s: f64) {
        self.constant *= s;
        for v in self.terms.values_mut() {
            *v *= s;
        }
        self.terms.retain(|_, v| *v != 0.0);
    }

    /// Evaluate the weight under the given coefficient bindings.
    pub fn eval(&self, bindings: &CoeffBindings) -> Result<f64, StencilError> {
        let mut acc = self.constant;
        for (sym, scale) in &self.terms {
            let v = bindings
                .get(sym.name())
                .ok_or_else(|| StencilError::UnboundCoefficient(sym.name().to_string()))?;
            acc += scale * v;
        }
        Ok(acc)
    }

    /// The single coefficient symbol, if the weight is exactly `1·symbol`.
    pub fn single_symbol(&self) -> Option<&ConstRef> {
        if self.constant == 0.0 && self.terms.len() == 1 {
            let (sym, scale) = self.terms.iter().next().unwrap();
            if *scale == 1.0 {
                return Some(sym);
            }
        }
        None
    }
}

impl fmt::Display for LinCoeff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (sym, scale) in &self.terms {
            if !first {
                f.write_str(" + ")?;
            }
            first = false;
            if *scale == 1.0 {
                write!(f, "{sym}")?;
            } else {
                write!(f, "{scale}*{sym}")?;
            }
        }
        if self.constant != 0.0 || first {
            if !first {
                f.write_str(" + ")?;
            }
            write!(f, "{}", self.constant)?;
        }
        Ok(())
    }
}

/// One tap of the normalised stencil: a weighted read at a fixed offset.
#[derive(Debug, Clone, PartialEq)]
pub struct Tap {
    /// Offset from the output point, `[dx, dy, dz]`.
    pub offset: Offset,
    /// Weight of this tap.
    pub coeff: LinCoeff,
}

/// Numeric values for coefficient symbols.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CoeffBindings {
    values: BTreeMap<String, f64>,
}

impl CoeffBindings {
    /// Empty binding set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bind `name` to `value`, replacing any previous binding.
    pub fn bind(mut self, name: impl Into<String>, value: f64) -> Self {
        self.values.insert(name.into(), value);
        self
    }

    /// Bind in place.
    pub fn set(&mut self, name: impl Into<String>, value: f64) {
        self.values.insert(name.into(), value);
    }

    /// Look up a bound value.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.values.get(name).copied()
    }

    /// Iterate over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.values.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Number of bound symbols.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if no symbols are bound.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// A normalised stencil: `output(i,j,k) = Σ taps coeff·input(i+dx, j+dy, k+dz)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Stencil {
    output: GridRef,
    input: GridRef,
    taps: Vec<Tap>,
    name: String,
}

impl Stencil {
    /// Normalise `expr` into a stencil writing grid `output`.
    ///
    /// Fails if the expression is non-linear in grid accesses, reads more
    /// than one grid, or reads no grid at all. Taps at the same offset are
    /// merged; taps whose weight is identically zero are dropped.
    pub fn assign(output: impl Into<String>, expr: Expr) -> Result<Self, StencilError> {
        let mut acc: BTreeMap<Offset, LinCoeff> = BTreeMap::new();
        let mut input: Option<GridRef> = None;
        Self::collect(&expr, &LinCoeff::lit(1.0), &mut acc, &mut input)?;
        let input = input.ok_or(StencilError::NoAccesses)?;
        let taps: Vec<Tap> = acc
            .into_iter()
            .filter(|(_, c)| c.constant != 0.0 || !c.terms.is_empty())
            .map(|(offset, coeff)| Tap { offset, coeff })
            .collect();
        if taps.is_empty() {
            return Err(StencilError::NoAccesses);
        }
        let output = output.into();
        Ok(Stencil {
            name: format!("{}pt", taps.len()),
            output: GridRef::new(output),
            input,
            taps,
        })
    }

    fn collect(
        expr: &Expr,
        weight: &LinCoeff,
        acc: &mut BTreeMap<Offset, LinCoeff>,
        input: &mut Option<GridRef>,
    ) -> Result<(), StencilError> {
        match expr {
            Expr::Access { grid, offset } => {
                match input {
                    Some(g) if g != grid => {
                        return Err(StencilError::MultipleInputGrids(
                            g.name().to_string(),
                            grid.name().to_string(),
                        ))
                    }
                    Some(_) => {}
                    None => *input = Some(grid.clone()),
                }
                acc.entry(*offset).or_default().add(weight, 1.0);
                Ok(())
            }
            Expr::Coeff(_) | Expr::Lit(_) => Err(StencilError::NonLinear(format!(
                "bare coefficient term {expr} added to the stencil (every \
                 term must multiply a grid access)"
            ))),
            Expr::Add(a, b) => {
                Self::collect(a, weight, acc, input)?;
                Self::collect(b, weight, acc, input)
            }
            Expr::Sub(a, b) => {
                Self::collect(a, weight, acc, input)?;
                let mut neg = weight.clone();
                neg.scale(-1.0);
                Self::collect(b, &neg, acc, input)
            }
            Expr::Neg(a) => {
                let mut neg = weight.clone();
                neg.scale(-1.0);
                Self::collect(a, &neg, acc, input)
            }
            Expr::Mul(a, b) => {
                let (coeff_side, access_side) = match (a.is_coefficient(), b.is_coefficient()) {
                    (true, false) => (a, b),
                    (false, true) => (b, a),
                    (true, true) => {
                        return Err(StencilError::NonLinear(format!(
                            "coefficient-only product {expr} outside an access"
                        )))
                    }
                    (false, false) => {
                        return Err(StencilError::NonLinear(format!(
                            "product of two grid accesses in {expr}"
                        )))
                    }
                };
                let c = Self::eval_coeff(coeff_side)?;
                let w = weight.mul(&c)?;
                Self::collect(access_side, &w, acc, input)
            }
        }
    }

    fn eval_coeff(expr: &Expr) -> Result<LinCoeff, StencilError> {
        match expr {
            Expr::Coeff(c) => Ok(LinCoeff::sym(c.clone())),
            Expr::Lit(v) => Ok(LinCoeff::lit(*v)),
            Expr::Add(a, b) => {
                let mut l = Self::eval_coeff(a)?;
                l.add(&Self::eval_coeff(b)?, 1.0);
                Ok(l)
            }
            Expr::Sub(a, b) => {
                let mut l = Self::eval_coeff(a)?;
                l.add(&Self::eval_coeff(b)?, -1.0);
                Ok(l)
            }
            Expr::Neg(a) => {
                let mut l = Self::eval_coeff(a)?;
                l.scale(-1.0);
                Ok(l)
            }
            Expr::Mul(a, b) => Self::eval_coeff(a)?.mul(&Self::eval_coeff(b)?),
            Expr::Access { .. } => Err(StencilError::NonLinear(
                "grid access inside a coefficient expression".into(),
            )),
        }
    }

    /// Construct directly from a tap list (used by the shape generators).
    pub fn from_taps(
        name: impl Into<String>,
        output: impl Into<String>,
        input: impl Into<String>,
        taps: Vec<Tap>,
    ) -> Self {
        Stencil {
            name: name.into(),
            output: GridRef::new(output),
            input: GridRef::new(input),
            taps,
        }
    }

    /// Override the display name (e.g. `"13pt-star"`).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Display name of the stencil.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The grid written by the stencil.
    pub fn output(&self) -> &GridRef {
        &self.output
    }

    /// The grid read by the stencil.
    pub fn input(&self) -> &GridRef {
        &self.input
    }

    /// The normalised tap list, sorted by offset.
    pub fn taps(&self) -> &[Tap] {
        &self.taps
    }

    /// Number of points (taps).
    pub fn points(&self) -> usize {
        self.taps.len()
    }

    /// Stencil radius: the maximum `|offset|` component over all taps.
    pub fn radius(&self) -> i32 {
        self.taps
            .iter()
            .flat_map(|t| t.offset.iter().map(|o| o.abs()))
            .max()
            .unwrap_or(0)
    }

    /// Per-axis reach `[rx, ry, rz]`: the maximum `|offset|` per dimension.
    pub fn reach(&self) -> [i32; 3] {
        let mut r = [0; 3];
        for t in &self.taps {
            for (rd, o) in r.iter_mut().zip(&t.offset) {
                *rd = (*rd).max(o.abs());
            }
        }
        r
    }

    /// Number of distinct coefficient classes.
    ///
    /// Taps whose weights are the identical linear form share a class (a
    /// 7-point star has 2: the centre and the six faces). This matches the
    /// paper's "unique coefficients" column in Table 2.
    pub fn coefficient_classes(&self) -> usize {
        let mut classes: Vec<&LinCoeff> = Vec::new();
        for t in &self.taps {
            if !classes.iter().any(|c| **c == t.coeff) {
                classes.push(&t.coeff);
            }
        }
        classes.len()
    }

    /// All distinct coefficient symbols appearing in the weights, sorted.
    pub fn symbols(&self) -> Vec<ConstRef> {
        let mut out: Vec<ConstRef> = Vec::new();
        for t in &self.taps {
            for sym in t.coeff.terms.keys() {
                if !out.contains(sym) {
                    out.push(sym.clone());
                }
            }
        }
        out.sort();
        out
    }

    /// Resolve every tap weight to a number under `bindings`.
    pub fn resolve(&self, bindings: &CoeffBindings) -> Result<Vec<(Offset, f64)>, StencilError> {
        self.taps
            .iter()
            .map(|t| Ok((t.offset, t.coeff.eval(bindings)?)))
            .collect()
    }

    /// Default bindings: symbol `s_n` gets a deterministic smooth value so
    /// examples and tests have well-conditioned weights out of the box.
    pub fn default_bindings(&self) -> CoeffBindings {
        let syms = self.symbols();
        let n = syms.len().max(1) as f64;
        let mut b = CoeffBindings::new();
        for (idx, sym) in syms.iter().enumerate() {
            // Descending magnitudes, sum of magnitudes bounded by ~1.36
            // (harmonic-like) so repeated application stays stable.
            b.set(sym.name(), 0.5 / (n * (idx as f64 + 1.0)));
        }
        b
    }
}

impl fmt::Display for Stencil {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}(i, j, k) = sum of {} taps from {}:",
            self.output,
            self.taps.len(),
            self.input
        )?;
        for t in &self.taps {
            writeln!(
                f,
                "  [{:+}, {:+}, {:+}] * ({})",
                t.offset[0], t.offset[1], t.offset[2], t.coeff
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{ConstRef, GridRef};

    fn star7() -> Stencil {
        let g = GridRef::new("in");
        let a0 = ConstRef::new("a0");
        let a1 = ConstRef::new("a1");
        let e = a0 * g.center()
            + a1.clone() * g.offset(1, 0, 0)
            + a1.clone() * g.offset(-1, 0, 0)
            + a1.clone() * g.offset(0, 1, 0)
            + a1.clone() * g.offset(0, -1, 0)
            + a1.clone() * g.offset(0, 0, 1)
            + a1.clone() * g.offset(0, 0, -1);
        Stencil::assign("out", e).unwrap()
    }

    #[test]
    fn star7_normalises_to_7_taps_2_classes() {
        let s = star7();
        assert_eq!(s.points(), 7);
        assert_eq!(s.coefficient_classes(), 2);
        assert_eq!(s.radius(), 1);
        assert_eq!(s.reach(), [1, 1, 1]);
    }

    #[test]
    fn duplicate_offsets_merge() {
        let g = GridRef::new("in");
        let e = g.center() + g.center() + 2.0 * g.offset(1, 0, 0);
        let s = Stencil::assign("out", e).unwrap();
        assert_eq!(s.points(), 2);
        let taps = s.resolve(&CoeffBindings::new()).unwrap();
        assert_eq!(taps, vec![([0, 0, 0], 2.0), ([1, 0, 0], 2.0)]);
    }

    #[test]
    fn subtraction_negates_weight() {
        let g = GridRef::new("in");
        let e = g.offset(1, 0, 0) - g.offset(-1, 0, 0);
        let s = Stencil::assign("out", e).unwrap();
        let taps = s.resolve(&CoeffBindings::new()).unwrap();
        assert_eq!(taps, vec![([-1, 0, 0], -1.0), ([1, 0, 0], 1.0)]);
    }

    #[test]
    fn cancelling_taps_are_dropped() {
        let g = GridRef::new("in");
        let e = g.offset(2, 0, 0) - g.offset(2, 0, 0) + g.center();
        let s = Stencil::assign("out", e).unwrap();
        assert_eq!(s.points(), 1);
        assert_eq!(s.radius(), 0);
    }

    #[test]
    fn nonlinear_product_rejected() {
        let g = GridRef::new("in");
        let e = g.center() * g.offset(1, 0, 0);
        assert!(matches!(
            Stencil::assign("out", e),
            Err(StencilError::NonLinear(_))
        ));
    }

    #[test]
    fn two_input_grids_rejected() {
        let g = GridRef::new("in");
        let h = GridRef::new("other");
        let e = g.center() + h.center();
        assert!(matches!(
            Stencil::assign("out", e),
            Err(StencilError::MultipleInputGrids(_, _))
        ));
    }

    #[test]
    fn bare_coefficient_rejected() {
        let g = GridRef::new("in");
        let a = ConstRef::new("a");
        let e = g.center() + Expr::Coeff(a);
        assert!(matches!(
            Stencil::assign("out", e),
            Err(StencilError::NonLinear(_))
        ));
    }

    #[test]
    fn unbound_coefficient_errors_at_resolve() {
        let s = star7();
        let b = CoeffBindings::new().bind("a0", 1.0);
        assert!(matches!(
            s.resolve(&b),
            Err(StencilError::UnboundCoefficient(_))
        ));
    }

    #[test]
    fn resolve_with_bindings() {
        let s = star7();
        let b = CoeffBindings::new().bind("a0", -6.0).bind("a1", 1.0);
        let taps = s.resolve(&b).unwrap();
        let center = taps.iter().find(|(o, _)| *o == [0, 0, 0]).unwrap();
        assert_eq!(center.1, -6.0);
        assert_eq!(taps.iter().map(|(_, w)| *w).sum::<f64>(), 0.0);
    }

    #[test]
    fn default_bindings_cover_all_symbols() {
        let s = star7();
        let b = s.default_bindings();
        assert_eq!(b.len(), 2);
        assert!(s.resolve(&b).is_ok());
    }

    #[test]
    fn scaled_symbol_coefficients() {
        let g = GridRef::new("in");
        let a = ConstRef::new("a");
        let e = (2.0 * a.clone()) * g.center() + a * g.offset(1, 0, 0);
        let s = Stencil::assign("out", e).unwrap();
        // two taps, two distinct classes (2a vs a)
        assert_eq!(s.points(), 2);
        assert_eq!(s.coefficient_classes(), 2);
        assert_eq!(s.symbols().len(), 1);
        let taps = s.resolve(&CoeffBindings::new().bind("a", 3.0)).unwrap();
        assert_eq!(taps, vec![([0, 0, 0], 6.0), ([1, 0, 0], 3.0)]);
    }

    #[test]
    fn lincoeff_display() {
        let g = GridRef::new("in");
        let a = ConstRef::new("a");
        let e = (a * g.center()) + 0.5 * g.center();
        let s = Stencil::assign("out", e).unwrap();
        assert_eq!(s.taps()[0].coeff.to_string(), "a + 0.5");
    }
}
