//! Expression AST for the stencil DSL.
//!
//! Mirrors the python-like input language of BrickLib (paper Fig. 1):
//! `Index`, `Grid`, `ConstRef` and arithmetic on them. Expressions must be
//! *linear* in grid accesses — the normaliser in [`crate::stencil`] rejects
//! products of two accesses.

use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};
use std::sync::Arc;

/// A named symbolic constant coefficient (`ConstRef("MPI_B0")` in the DSL).
///
/// Coefficients are symbols at stencil-definition time; numeric values are
/// bound later through [`crate::stencil::CoeffBindings`]. Two `ConstRef`s
/// with the same name denote the same coefficient class.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConstRef {
    name: Arc<str>,
}

impl ConstRef {
    /// Create a coefficient symbol with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        ConstRef {
            name: Arc::from(name.into().into_boxed_str()),
        }
    }

    /// The symbol's name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl fmt::Display for ConstRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// A named grid (field) that stencil expressions read from.
///
/// In this reproduction stencils read from a single input grid and write a
/// single output grid, matching every kernel evaluated in the paper; the
/// name is carried through to the emitted CUDA/HIP/SYCL source.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct GridRef {
    name: Arc<str>,
}

impl GridRef {
    /// Declare a 3-D grid with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        GridRef {
            name: Arc::from(name.into().into_boxed_str()),
        }
    }

    /// The grid's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Access this grid at a constant offset `(dx, dy, dz)` from the output
    /// point. `dx` is the contiguous (fastest-varying) dimension.
    pub fn offset(&self, dx: i32, dy: i32, dz: i32) -> Expr {
        Expr::Access {
            grid: self.clone(),
            offset: [dx, dy, dz],
        }
    }

    /// Access at the centre point — shorthand for `offset(0, 0, 0)`.
    pub fn center(&self) -> Expr {
        self.offset(0, 0, 0)
    }
}

impl fmt::Display for GridRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// A stencil expression tree.
///
/// Built with ordinary Rust operators from [`GridRef::offset`] accesses,
/// [`ConstRef`] symbols and `f64` literals.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Read of `grid` at a constant offset from the output point.
    #[allow(missing_docs)]
    Access { grid: GridRef, offset: [i32; 3] },
    /// A symbolic coefficient.
    Coeff(ConstRef),
    /// A numeric literal.
    Lit(f64),
    /// Sum of two sub-expressions.
    Add(Box<Expr>, Box<Expr>),
    /// Difference of two sub-expressions.
    Sub(Box<Expr>, Box<Expr>),
    /// Product of two sub-expressions (at most one side may contain grid
    /// accesses; enforced at normalisation time).
    Mul(Box<Expr>, Box<Expr>),
    /// Negation.
    Neg(Box<Expr>),
}

impl Expr {
    /// Number of grid-access leaves in the expression (before
    /// normalisation, so repeated offsets count multiple times).
    pub fn access_count(&self) -> usize {
        match self {
            Expr::Access { .. } => 1,
            Expr::Coeff(_) | Expr::Lit(_) => 0,
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) => {
                a.access_count() + b.access_count()
            }
            Expr::Neg(a) => a.access_count(),
        }
    }

    /// True if the expression contains no grid accesses (it is a pure
    /// coefficient expression).
    pub fn is_coefficient(&self) -> bool {
        self.access_count() == 0
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Access { grid, offset } => {
                write!(f, "{}(", grid)?;
                for (d, (name, o)) in ["i", "j", "k"].iter().zip(offset).enumerate() {
                    if d > 0 {
                        f.write_str(", ")?;
                    }
                    match *o {
                        0 => write!(f, "{name}")?,
                        v if v > 0 => write!(f, "{name}+{v}")?,
                        v => write!(f, "{name}{v}")?,
                    }
                }
                f.write_str(")")
            }
            Expr::Coeff(c) => write!(f, "{c}"),
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Add(a, b) => write!(f, "({a} + {b})"),
            Expr::Sub(a, b) => write!(f, "({a} - {b})"),
            Expr::Mul(a, b) => write!(f, "{a}*{b}"),
            Expr::Neg(a) => write!(f, "(-{a})"),
        }
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $variant:ident) => {
        impl $trait for Expr {
            type Output = Expr;
            fn $method(self, rhs: Expr) -> Expr {
                Expr::$variant(Box::new(self), Box::new(rhs))
            }
        }
        impl $trait<Expr> for ConstRef {
            type Output = Expr;
            fn $method(self, rhs: Expr) -> Expr {
                Expr::$variant(Box::new(Expr::Coeff(self)), Box::new(rhs))
            }
        }
        impl $trait<ConstRef> for Expr {
            type Output = Expr;
            fn $method(self, rhs: ConstRef) -> Expr {
                Expr::$variant(Box::new(self), Box::new(Expr::Coeff(rhs)))
            }
        }
        impl $trait<Expr> for f64 {
            type Output = Expr;
            fn $method(self, rhs: Expr) -> Expr {
                Expr::$variant(Box::new(Expr::Lit(self)), Box::new(rhs))
            }
        }
        impl $trait<f64> for Expr {
            type Output = Expr;
            fn $method(self, rhs: f64) -> Expr {
                Expr::$variant(Box::new(self), Box::new(Expr::Lit(rhs)))
            }
        }
    };
}

impl_binop!(Add, add, Add);
impl_binop!(Sub, sub, Sub);
impl_binop!(Mul, mul, Mul);

impl Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        Expr::Neg(Box::new(self))
    }
}

impl Mul<ConstRef> for f64 {
    type Output = Expr;
    fn mul(self, rhs: ConstRef) -> Expr {
        Expr::Mul(Box::new(Expr::Lit(self)), Box::new(Expr::Coeff(rhs)))
    }
}

impl From<ConstRef> for Expr {
    fn from(c: ConstRef) -> Expr {
        Expr::Coeff(c)
    }
}

impl From<f64> for Expr {
    fn from(v: f64) -> Expr {
        Expr::Lit(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_ref_identity_by_name() {
        let a = ConstRef::new("a");
        let b = ConstRef::new("a");
        assert_eq!(a, b);
        assert_eq!(a.name(), "a");
    }

    #[test]
    fn build_and_display_simple_expr() {
        let g = GridRef::new("in");
        let a = ConstRef::new("c0");
        let e = a * g.offset(1, 0, -1);
        assert_eq!(e.to_string(), "c0*in(i+1, j, k-1)");
        assert_eq!(e.access_count(), 1);
    }

    #[test]
    fn access_count_sums_over_tree() {
        let g = GridRef::new("in");
        let e = g.offset(0, 0, 0) + g.offset(1, 0, 0) - g.offset(-1, 0, 0);
        assert_eq!(e.access_count(), 3);
        assert!(!e.is_coefficient());
    }

    #[test]
    fn coefficient_expression_has_no_accesses() {
        let a = ConstRef::new("a");
        let e = 2.0 * a + 1.0;
        assert!(e.is_coefficient());
    }

    #[test]
    fn neg_display() {
        let g = GridRef::new("u");
        let e = -g.center();
        assert_eq!(e.to_string(), "(-u(i, j, k))");
    }

    #[test]
    fn scalar_ops_both_sides() {
        let g = GridRef::new("u");
        let e1 = 2.0 * g.center();
        let e2 = g.center() * 2.0;
        assert_eq!(e1.access_count(), 1);
        assert_eq!(e2.access_count(), 1);
    }
}
