//! Scalar reference executor — the numerical gold standard.
//!
//! Applies a normalised [`Stencil`] to a [`DenseGrid`] out-of-place with a
//! straightforward triple loop. Every other execution path in the
//! workspace (tiled array kernels, brick kernels, generated vector code on
//! the VM) is validated against this implementation.

use crate::dense::DenseGrid;
use crate::stencil::{CoeffBindings, Offset, Stencil, StencilError};

/// Apply `stencil` to `input`, writing the interior of `output`.
///
/// The input halo must be at least the stencil radius wide. Uses the naive
/// gather schedule (weight × tap per point) with taps visited in
/// normalised (offset-sorted) order, which fixes the floating-point
/// summation order.
pub fn apply(
    stencil: &Stencil,
    bindings: &CoeffBindings,
    input: &DenseGrid,
    output: &mut DenseGrid,
) -> Result<(), StencilError> {
    assert_eq!(
        input.extents(),
        output.extents(),
        "input/output extent mismatch"
    );
    let radius = stencil.radius() as usize;
    assert!(
        input.halo() >= radius,
        "input halo {} narrower than stencil radius {}",
        input.halo(),
        radius
    );
    let taps = stencil.resolve(bindings)?;
    let (nx, ny, nz) = input.extents();
    for z in 0..nz as i64 {
        for y in 0..ny as i64 {
            for x in 0..nx as i64 {
                let mut acc = 0.0;
                for &(o, w) in &taps {
                    acc += w * input.get(x + o[0] as i64, y + o[1] as i64, z + o[2] as i64);
                }
                output.set(x, y, z, acc);
            }
        }
    }
    Ok(())
}

/// Apply the stencil with the *symmetry-exploiting* schedule the paper's
/// minimum FLOP count is based on: per coefficient class, sum the taps
/// first, then multiply by the class weight once, then combine classes.
///
/// Produces the same result as [`apply`] up to floating-point
/// reassociation; used by tests to confirm that the normalised FLOP count
/// (`points + classes − 1`) corresponds to a real evaluation order.
pub fn apply_symmetric(
    stencil: &Stencil,
    bindings: &CoeffBindings,
    input: &DenseGrid,
    output: &mut DenseGrid,
) -> Result<(), StencilError> {
    assert_eq!(input.extents(), output.extents());
    let radius = stencil.radius() as usize;
    assert!(input.halo() >= radius);

    // Group taps into classes of identical *symbolic* weight so symmetric
    // taps group together even if two symbols happen to share a value.
    let mut classes: Vec<(&crate::stencil::LinCoeff, f64, Vec<Offset>)> = Vec::new();
    for t in stencil.taps() {
        match classes.iter_mut().find(|(c, _, _)| **c == t.coeff) {
            Some((_, _, offs)) => offs.push(t.offset),
            None => classes.push((&t.coeff, t.coeff.eval(bindings)?, vec![t.offset])),
        }
    }
    let classes: Vec<(f64, Vec<Offset>)> =
        classes.into_iter().map(|(_, w, offs)| (w, offs)).collect();

    let (nx, ny, nz) = input.extents();
    for z in 0..nz as i64 {
        for y in 0..ny as i64 {
            for x in 0..nx as i64 {
                let mut acc = 0.0;
                for (w, offs) in &classes {
                    let mut class_sum = 0.0;
                    for o in offs {
                        class_sum += input.get(x + o[0] as i64, y + o[1] as i64, z + o[2] as i64);
                    }
                    acc += w * class_sum;
                }
                output.set(x, y, z, acc);
            }
        }
    }
    Ok(())
}

/// Apply `stencil` `t` times with the *vector gather schedule's* exact
/// operation order — the ground-truth oracle for temporally fused
/// kernels, bit-for-bit.
///
/// Per point and per step: for each coefficient class (grouped by
/// symbolic weight, in first-occurrence order), the taps are summed in
/// tap order with plain adds; the first class is scaled with one
/// multiply and every later class is folded in with `f64::mul_add` —
/// exactly the `Add`/`Mul`/`Fma` sequence the code generator emits and
/// the VM interpreter executes (single rounding per FMA). A fused
/// `temporal_degree = t` kernel must reproduce this function's interior
/// to the last bit; `crates/vm/tests/temporal_diff.rs` pins that.
///
/// Intermediate steps are evaluated on a shrinking extended region: step
/// `s` covers `[−(t−s)·r, n + (t−s)·r)` per axis, so the final step's
/// interior only ever consumes real data. The input halo must therefore
/// be at least `t·r` wide. Only the interior of `output` is written (its
/// halo is zeroed), matching the VM's output convention.
pub fn apply_temporal(
    stencil: &Stencil,
    bindings: &CoeffBindings,
    input: &DenseGrid,
    output: &mut DenseGrid,
    t: u32,
) -> Result<(), StencilError> {
    assert_eq!(input.extents(), output.extents());
    assert!(t >= 1, "temporal degree must be ≥ 1");
    let radius = stencil.radius() as usize;
    assert!(
        input.halo() >= t as usize * radius,
        "input halo {} narrower than fused reach {}",
        input.halo(),
        t as usize * radius
    );

    // Class grouping identical to the code generator's: by symbolic
    // weight, classes and taps both in stencil tap order.
    let mut sym_classes: Vec<(&crate::stencil::LinCoeff, f64, Vec<Offset>)> = Vec::new();
    for tap in stencil.taps() {
        match sym_classes.iter_mut().find(|(c, _, _)| **c == tap.coeff) {
            Some((_, _, offs)) => offs.push(tap.offset),
            None => sym_classes.push((&tap.coeff, tap.coeff.eval(bindings)?, vec![tap.offset])),
        }
    }
    let classes: Vec<(f64, Vec<Offset>)> = sym_classes
        .into_iter()
        .map(|(_, w, offs)| (w, offs))
        .collect();

    let (nx, ny, nz) = input.extents();
    let mut cur = input.clone();
    for s in 1..=t {
        let m = ((t - s) as usize * radius) as i64;
        let mut next = DenseGrid::new(nx, ny, nz, input.halo());
        for z in -m..nz as i64 + m {
            for y in -m..ny as i64 + m {
                for x in -m..nx as i64 + m {
                    let mut acc = 0.0;
                    for (ci, (w, offs)) in classes.iter().enumerate() {
                        let mut sum = 0.0;
                        for (ti, o) in offs.iter().enumerate() {
                            let v = cur.get(x + o[0] as i64, y + o[1] as i64, z + o[2] as i64);
                            // first tap is the register itself, not 0 + v
                            // (0.0 + (−0.0) would flip the sign bit)
                            sum = if ti == 0 { v } else { sum + v };
                        }
                        acc = if ci == 0 {
                            sum * w
                        } else {
                            sum.mul_add(*w, acc)
                        };
                    }
                    next.set(x, y, z, acc);
                }
            }
        }
        cur = next;
    }
    output.raw_mut().copy_from_slice(cur.raw());
    Ok(())
}

/// Count the FLOPs the symmetric schedule performs per point; used to
/// cross-check [`crate::analysis::StencilAnalysis::flops_per_point`].
pub fn symmetric_schedule_flops(stencil: &Stencil) -> u64 {
    let points = stencil.points() as u64;
    let classes = stencil.coefficient_classes() as u64;
    // (points − classes) in-class adds + classes multiplies + (classes − 1)
    // cross-class adds.
    points + classes - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::StencilAnalysis;
    use crate::shape::{cube, star, StencilShape};

    fn run(stencil: &crate::stencil::Stencil, n: usize) -> (DenseGrid, DenseGrid) {
        let halo = stencil.radius() as usize;
        let mut input = DenseGrid::cubic(n, halo);
        input.fill_test_pattern();
        let mut out_naive = DenseGrid::cubic(n, halo);
        let mut out_sym = DenseGrid::cubic(n, halo);
        let b = stencil.default_bindings();
        apply(stencil, &b, &input, &mut out_naive).unwrap();
        apply_symmetric(stencil, &b, &input, &mut out_sym).unwrap();
        (out_naive, out_sym)
    }

    #[test]
    fn laplacian_of_linear_field_is_zero() {
        // 7pt with weights (-6, 1, …) annihilates linear functions.
        let st = star(1);
        let b = CoeffBindings::new().bind("c0", -6.0).bind("c1", 1.0);
        let mut input = DenseGrid::cubic(6, 1);
        input.fill_with(|x, y, z| 1.0 + 2.0 * x as f64 - 3.0 * y as f64 + 0.5 * z as f64);
        let mut out = DenseGrid::cubic(6, 1);
        apply(&st, &b, &input, &mut out).unwrap();
        for (x, y, z) in out.interior_coords() {
            assert!(out.get(x, y, z).abs() < 1e-12, "({x},{y},{z})");
        }
    }

    #[test]
    fn known_point_value_13pt() {
        let st = star(2);
        let b = CoeffBindings::new()
            .bind("c0", 1.0)
            .bind("c1", 10.0)
            .bind("c2", 100.0);
        let mut input = DenseGrid::cubic(4, 2);
        input.fill_with(|x, _, _| x as f64);
        let mut out = DenseGrid::cubic(4, 2);
        apply(&st, &b, &input, &mut out).unwrap();
        // at x=1: center 1, ±x at 2 and 0 (sum 2), ±2x at 3 and −1 (sum 2),
        // y/z neighbours all equal x=1.
        let expect = 1.0 * 1.0 + 10.0 * (2.0 + 4.0 * 1.0) + 100.0 * (2.0 + 4.0 * 1.0);
        assert!((out.get(1, 1, 1) - expect).abs() < 1e-12);
    }

    #[test]
    fn symmetric_schedule_agrees_with_naive() {
        for shape in StencilShape::paper_suite() {
            let st = shape.stencil();
            let (a, b) = run(&st, 6);
            assert!(
                a.max_rel_diff(&b) < 1e-12,
                "{shape}: {}",
                a.max_rel_diff(&b)
            );
        }
    }

    #[test]
    fn schedule_flops_match_analysis() {
        for shape in StencilShape::paper_suite() {
            let st = shape.stencil();
            assert_eq!(
                symmetric_schedule_flops(&st),
                StencilAnalysis::of(&st).flops_per_point
            );
        }
    }

    #[test]
    fn cube2_executes_on_minimal_grid() {
        let st = cube(2);
        let (a, b) = run(&st, 4);
        assert!(a.max_rel_diff(&b) < 1e-12);
    }

    #[test]
    fn temporal_degree_one_agrees_with_symmetric() {
        for shape in StencilShape::paper_suite() {
            let st = shape.stencil();
            let b = st.default_bindings();
            let halo = st.radius() as usize;
            let mut input = DenseGrid::cubic(6, halo);
            input.fill_test_pattern();
            let mut sym = DenseGrid::cubic(6, halo);
            let mut tmp = DenseGrid::cubic(6, halo);
            apply_symmetric(&st, &b, &input, &mut sym).unwrap();
            apply_temporal(&st, &b, &input, &mut tmp, 1).unwrap();
            assert!(sym.max_rel_diff(&tmp) < 1e-12, "{shape}");
        }
    }

    #[test]
    fn temporal_two_steps_annihilate_linear_fields_twice() {
        // The Laplacian-weighted 7-point star maps linear fields to zero;
        // two fused steps map *any* field whose first application is
        // linear-plus-zero to zero as well. A linear input is the simple
        // case: both steps produce zero.
        let st = star(1);
        let b = CoeffBindings::new().bind("c0", -6.0).bind("c1", 1.0);
        let mut input = DenseGrid::cubic(6, 2);
        input.fill_with(|x, y, z| 1.0 + 2.0 * x as f64 - 3.0 * y as f64 + 0.5 * z as f64);
        let mut out = DenseGrid::cubic(6, 2);
        apply_temporal(&st, &b, &input, &mut out, 2).unwrap();
        for (x, y, z) in out.interior_coords() {
            assert!(out.get(x, y, z).abs() < 1e-9, "({x},{y},{z})");
        }
    }

    #[test]
    fn temporal_matches_composed_convolution() {
        // stencil^2 evaluated directly (taps convolved, then one naive
        // application) agrees with the two-step schedule numerically.
        let st = star(1);
        let b = st.default_bindings();
        let taps = st.resolve(&b).unwrap();
        let mut composed: std::collections::BTreeMap<[i32; 3], f64> = Default::default();
        for &(oa, wa) in &taps {
            for &(ob, wb) in &taps {
                *composed
                    .entry([oa[0] + ob[0], oa[1] + ob[1], oa[2] + ob[2]])
                    .or_insert(0.0) += wa * wb;
            }
        }
        let mut input = DenseGrid::cubic(6, 2);
        input.fill_test_pattern();
        let mut direct = DenseGrid::cubic(6, 2);
        for z in 0..6i64 {
            for y in 0..6i64 {
                for x in 0..6i64 {
                    let mut acc = 0.0;
                    for (o, w) in &composed {
                        acc += w * input.get(x + o[0] as i64, y + o[1] as i64, z + o[2] as i64);
                    }
                    direct.set(x, y, z, acc);
                }
            }
        }
        let mut fused = DenseGrid::cubic(6, 2);
        apply_temporal(&st, &b, &input, &mut fused, 2).unwrap();
        assert!(direct.max_rel_diff(&fused) < 1e-9);
    }

    #[test]
    #[should_panic(expected = "halo")]
    fn temporal_narrow_halo_panics() {
        let st = star(1);
        let input = DenseGrid::cubic(4, 1);
        let mut out = DenseGrid::cubic(4, 1);
        let b = st.default_bindings();
        let _ = apply_temporal(&st, &b, &input, &mut out, 2);
    }

    #[test]
    #[should_panic(expected = "halo")]
    fn narrow_halo_panics() {
        let st = star(2);
        let input = DenseGrid::cubic(4, 1);
        let mut out = DenseGrid::cubic(4, 1);
        let b = st.default_bindings();
        let _ = apply(&st, &b, &input, &mut out);
    }

    #[test]
    fn unbound_coefficient_is_an_error() {
        let st = star(1);
        let input = DenseGrid::cubic(4, 1);
        let mut out = DenseGrid::cubic(4, 1);
        assert!(apply(&st, &CoeffBindings::new(), &input, &mut out).is_err());
    }
}
