//! Scalar reference executor — the numerical gold standard.
//!
//! Applies a normalised [`Stencil`] to a [`DenseGrid`] out-of-place with a
//! straightforward triple loop. Every other execution path in the
//! workspace (tiled array kernels, brick kernels, generated vector code on
//! the VM) is validated against this implementation.

use crate::dense::DenseGrid;
use crate::stencil::{CoeffBindings, Offset, Stencil, StencilError};

/// Apply `stencil` to `input`, writing the interior of `output`.
///
/// The input halo must be at least the stencil radius wide. Uses the naive
/// gather schedule (weight × tap per point) with taps visited in
/// normalised (offset-sorted) order, which fixes the floating-point
/// summation order.
pub fn apply(
    stencil: &Stencil,
    bindings: &CoeffBindings,
    input: &DenseGrid,
    output: &mut DenseGrid,
) -> Result<(), StencilError> {
    assert_eq!(
        input.extents(),
        output.extents(),
        "input/output extent mismatch"
    );
    let radius = stencil.radius() as usize;
    assert!(
        input.halo() >= radius,
        "input halo {} narrower than stencil radius {}",
        input.halo(),
        radius
    );
    let taps = stencil.resolve(bindings)?;
    let (nx, ny, nz) = input.extents();
    for z in 0..nz as i64 {
        for y in 0..ny as i64 {
            for x in 0..nx as i64 {
                let mut acc = 0.0;
                for &(o, w) in &taps {
                    acc += w * input.get(x + o[0] as i64, y + o[1] as i64, z + o[2] as i64);
                }
                output.set(x, y, z, acc);
            }
        }
    }
    Ok(())
}

/// Apply the stencil with the *symmetry-exploiting* schedule the paper's
/// minimum FLOP count is based on: per coefficient class, sum the taps
/// first, then multiply by the class weight once, then combine classes.
///
/// Produces the same result as [`apply`] up to floating-point
/// reassociation; used by tests to confirm that the normalised FLOP count
/// (`points + classes − 1`) corresponds to a real evaluation order.
pub fn apply_symmetric(
    stencil: &Stencil,
    bindings: &CoeffBindings,
    input: &DenseGrid,
    output: &mut DenseGrid,
) -> Result<(), StencilError> {
    assert_eq!(input.extents(), output.extents());
    let radius = stencil.radius() as usize;
    assert!(input.halo() >= radius);

    // Group taps into classes of identical *symbolic* weight so symmetric
    // taps group together even if two symbols happen to share a value.
    let mut classes: Vec<(&crate::stencil::LinCoeff, f64, Vec<Offset>)> = Vec::new();
    for t in stencil.taps() {
        match classes.iter_mut().find(|(c, _, _)| **c == t.coeff) {
            Some((_, _, offs)) => offs.push(t.offset),
            None => classes.push((&t.coeff, t.coeff.eval(bindings)?, vec![t.offset])),
        }
    }
    let classes: Vec<(f64, Vec<Offset>)> =
        classes.into_iter().map(|(_, w, offs)| (w, offs)).collect();

    let (nx, ny, nz) = input.extents();
    for z in 0..nz as i64 {
        for y in 0..ny as i64 {
            for x in 0..nx as i64 {
                let mut acc = 0.0;
                for (w, offs) in &classes {
                    let mut class_sum = 0.0;
                    for o in offs {
                        class_sum += input.get(x + o[0] as i64, y + o[1] as i64, z + o[2] as i64);
                    }
                    acc += w * class_sum;
                }
                output.set(x, y, z, acc);
            }
        }
    }
    Ok(())
}

/// Count the FLOPs the symmetric schedule performs per point; used to
/// cross-check [`crate::analysis::StencilAnalysis::flops_per_point`].
pub fn symmetric_schedule_flops(stencil: &Stencil) -> u64 {
    let points = stencil.points() as u64;
    let classes = stencil.coefficient_classes() as u64;
    // (points − classes) in-class adds + classes multiplies + (classes − 1)
    // cross-class adds.
    points + classes - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::StencilAnalysis;
    use crate::shape::{cube, star, StencilShape};

    fn run(stencil: &crate::stencil::Stencil, n: usize) -> (DenseGrid, DenseGrid) {
        let halo = stencil.radius() as usize;
        let mut input = DenseGrid::cubic(n, halo);
        input.fill_test_pattern();
        let mut out_naive = DenseGrid::cubic(n, halo);
        let mut out_sym = DenseGrid::cubic(n, halo);
        let b = stencil.default_bindings();
        apply(stencil, &b, &input, &mut out_naive).unwrap();
        apply_symmetric(stencil, &b, &input, &mut out_sym).unwrap();
        (out_naive, out_sym)
    }

    #[test]
    fn laplacian_of_linear_field_is_zero() {
        // 7pt with weights (-6, 1, …) annihilates linear functions.
        let st = star(1);
        let b = CoeffBindings::new().bind("c0", -6.0).bind("c1", 1.0);
        let mut input = DenseGrid::cubic(6, 1);
        input.fill_with(|x, y, z| 1.0 + 2.0 * x as f64 - 3.0 * y as f64 + 0.5 * z as f64);
        let mut out = DenseGrid::cubic(6, 1);
        apply(&st, &b, &input, &mut out).unwrap();
        for (x, y, z) in out.interior_coords() {
            assert!(out.get(x, y, z).abs() < 1e-12, "({x},{y},{z})");
        }
    }

    #[test]
    fn known_point_value_13pt() {
        let st = star(2);
        let b = CoeffBindings::new()
            .bind("c0", 1.0)
            .bind("c1", 10.0)
            .bind("c2", 100.0);
        let mut input = DenseGrid::cubic(4, 2);
        input.fill_with(|x, _, _| x as f64);
        let mut out = DenseGrid::cubic(4, 2);
        apply(&st, &b, &input, &mut out).unwrap();
        // at x=1: center 1, ±x at 2 and 0 (sum 2), ±2x at 3 and −1 (sum 2),
        // y/z neighbours all equal x=1.
        let expect = 1.0 * 1.0 + 10.0 * (2.0 + 4.0 * 1.0) + 100.0 * (2.0 + 4.0 * 1.0);
        assert!((out.get(1, 1, 1) - expect).abs() < 1e-12);
    }

    #[test]
    fn symmetric_schedule_agrees_with_naive() {
        for shape in StencilShape::paper_suite() {
            let st = shape.stencil();
            let (a, b) = run(&st, 6);
            assert!(
                a.max_rel_diff(&b) < 1e-12,
                "{shape}: {}",
                a.max_rel_diff(&b)
            );
        }
    }

    #[test]
    fn schedule_flops_match_analysis() {
        for shape in StencilShape::paper_suite() {
            let st = shape.stencil();
            assert_eq!(
                symmetric_schedule_flops(&st),
                StencilAnalysis::of(&st).flops_per_point
            );
        }
    }

    #[test]
    fn cube2_executes_on_minimal_grid() {
        let st = cube(2);
        let (a, b) = run(&st, 4);
        assert!(a.max_rel_diff(&b) < 1e-12);
    }

    #[test]
    #[should_panic(expected = "halo")]
    fn narrow_halo_panics() {
        let st = star(2);
        let input = DenseGrid::cubic(4, 1);
        let mut out = DenseGrid::cubic(4, 1);
        let b = st.default_bindings();
        let _ = apply(&st, &b, &input, &mut out);
    }

    #[test]
    fn unbound_coefficient_is_an_error() {
        let st = star(1);
        let input = DenseGrid::cubic(4, 1);
        let mut out = DenseGrid::cubic(4, 1);
        assert!(apply(&st, &CoeffBindings::new(), &input, &mut out).is_err());
    }
}
