//! # brick-dsl
//!
//! A Rust embedding of the BrickLib stencil DSL from the paper
//! *"Performance Portability Evaluation of Blocked Stencil Computations on
//! GPUs"* (SC-W 2023, Fig. 1).
//!
//! Stencils are expressed as linear combinations of shifted grid accesses
//! with symbolic constant coefficients:
//!
//! ```
//! use brick_dsl::{GridRef, ConstRef, Stencil};
//!
//! let input = GridRef::new("in");
//! let a0 = ConstRef::new("MPI_B0");
//! let a1 = ConstRef::new("MPI_B1");
//!
//! // 7-point star stencil (radius 1)
//! let calc = a0 * input.offset(0, 0, 0)
//!     + a1.clone() * input.offset(1, 0, 0)
//!     + a1.clone() * input.offset(-1, 0, 0)
//!     + a1.clone() * input.offset(0, 1, 0)
//!     + a1.clone() * input.offset(0, -1, 0)
//!     + a1.clone() * input.offset(0, 0, 1)
//!     + a1.clone() * input.offset(0, 0, -1);
//!
//! let stencil = Stencil::assign("out", calc).unwrap();
//! assert_eq!(stencil.points(), 7);
//! assert_eq!(stencil.coefficient_classes(), 2);
//! ```
//!
//! The crate also provides the paper's benchmark shape generators
//! ([`shape::star`], [`shape::cube`], Table 2), static analysis used by the
//! Roofline study (FLOPs per point, theoretical arithmetic intensity,
//! Table 4) and a scalar reference executor ([`mod@reference`]) that serves as
//! the numerical gold standard for every generated kernel.

pub mod analysis;
pub mod dense;
pub mod expr;
pub mod reference;
pub mod shape;
pub mod stencil;

pub use analysis::{min_live_registers, StencilAnalysis, BYTES_PER_POINT};
pub use dense::DenseGrid;
pub use expr::{ConstRef, Expr, GridRef};
pub use shape::{ShapeKind, StencilShape};
pub use stencil::{CoeffBindings, Offset, Stencil, Tap};
