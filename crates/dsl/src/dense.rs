//! A plain row-major 3-D grid with a ghost halo.
//!
//! `DenseGrid` is the canonical logical view of a field: every layout in
//! the workspace (tiled arrays, bricks) converts to and from it, and the
//! scalar reference executor runs on it. The halo plays the role of the
//! ghost bricks ("GB") surrounding the domain in BrickLib experiments.

use std::fmt;

/// Row-major 3-D grid of `f64` with an interior of `nx × ny × nz` points
/// and a ghost halo of `halo` points on every face.
///
/// Logical coordinates run over `-halo .. n + halo` per axis; the interior
/// is `0 .. n`. `x` is the contiguous dimension.
#[derive(Clone, PartialEq)]
pub struct DenseGrid {
    nx: usize,
    ny: usize,
    nz: usize,
    halo: usize,
    data: Vec<f64>,
}

impl DenseGrid {
    /// Zero-filled grid with the given interior extents and halo width.
    pub fn new(nx: usize, ny: usize, nz: usize, halo: usize) -> Self {
        assert!(nx > 0 && ny > 0 && nz > 0, "empty grid");
        let sx = nx + 2 * halo;
        let sy = ny + 2 * halo;
        let sz = nz + 2 * halo;
        DenseGrid {
            nx,
            ny,
            nz,
            halo,
            data: vec![0.0; sx * sy * sz],
        }
    }

    /// Cubic grid, `n³` interior.
    pub fn cubic(n: usize, halo: usize) -> Self {
        Self::new(n, n, n, halo)
    }

    /// Interior extents `(nx, ny, nz)`.
    pub fn extents(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    /// Halo width.
    pub fn halo(&self) -> usize {
        self.halo
    }

    /// Number of interior points.
    pub fn interior_len(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Total allocated points including halo.
    pub fn storage_len(&self) -> usize {
        self.data.len()
    }

    #[inline]
    fn idx(&self, x: i64, y: i64, z: i64) -> usize {
        let h = self.halo as i64;
        debug_assert!(
            x >= -h
                && x < (self.nx as i64 + h)
                && y >= -h
                && y < (self.ny as i64 + h)
                && z >= -h
                && z < (self.nz as i64 + h),
            "index ({x},{y},{z}) outside grid+halo"
        );
        let sx = self.nx + 2 * self.halo;
        let sy = self.ny + 2 * self.halo;
        ((z + h) as usize * sy + (y + h) as usize) * sx + (x + h) as usize
    }

    /// Flat storage index of logical coordinates: the element's position
    /// in [`Self::raw`]. Exposed so layout simulators can derive memory
    /// addresses (`base + 8 × storage_index`).
    #[inline]
    pub fn storage_index(&self, x: i64, y: i64, z: i64) -> usize {
        self.idx(x, y, z)
    }

    /// Read the value at logical coordinates (may address the halo).
    #[inline]
    pub fn get(&self, x: i64, y: i64, z: i64) -> f64 {
        self.data[self.idx(x, y, z)]
    }

    /// Write the value at logical coordinates (may address the halo).
    #[inline]
    pub fn set(&mut self, x: i64, y: i64, z: i64, v: f64) {
        let i = self.idx(x, y, z);
        self.data[i] = v;
    }

    /// Fill the whole grid (halo included) from a coordinate function.
    pub fn fill_with(&mut self, mut f: impl FnMut(i64, i64, i64) -> f64) {
        let h = self.halo as i64;
        for z in -h..(self.nz as i64 + h) {
            for y in -h..(self.ny as i64 + h) {
                for x in -h..(self.nx as i64 + h) {
                    let i = self.idx(x, y, z);
                    self.data[i] = f(x, y, z);
                }
            }
        }
    }

    /// Deterministic smooth test pattern covering halo and interior; used
    /// throughout the test suites so every layout starts from identical
    /// data.
    pub fn fill_test_pattern(&mut self) {
        self.fill_with(|x, y, z| {
            0.1 + 0.01 * x as f64
                + 0.02 * y as f64
                + 0.03 * z as f64
                + 1e-4 * ((x * 7 + y * 13 + z * 29) % 97) as f64
        });
    }

    /// Iterate over interior coordinates in storage order `(z, y, x)`.
    pub fn interior_coords(&self) -> impl Iterator<Item = (i64, i64, i64)> + '_ {
        let (nx, ny, nz) = (self.nx as i64, self.ny as i64, self.nz as i64);
        (0..nz).flat_map(move |z| (0..ny).flat_map(move |y| (0..nx).map(move |x| (x, y, z))))
    }

    /// Maximum absolute difference over interior points.
    pub fn max_abs_diff(&self, other: &DenseGrid) -> f64 {
        assert_eq!(self.extents(), other.extents(), "extent mismatch");
        self.interior_coords()
            .map(|(x, y, z)| (self.get(x, y, z) - other.get(x, y, z)).abs())
            .fold(0.0, f64::max)
    }

    /// Maximum relative difference over interior points
    /// (`|a−b| / max(1, |a|)`), tolerant of reassociated summation.
    pub fn max_rel_diff(&self, other: &DenseGrid) -> f64 {
        assert_eq!(self.extents(), other.extents(), "extent mismatch");
        self.interior_coords()
            .map(|(x, y, z)| {
                let a = self.get(x, y, z);
                let b = other.get(x, y, z);
                (a - b).abs() / a.abs().max(1.0)
            })
            .fold(0.0, f64::max)
    }

    /// Sum of interior values (useful as a cheap checksum in benches).
    pub fn interior_sum(&self) -> f64 {
        self.interior_coords()
            .map(|(x, y, z)| self.get(x, y, z))
            .sum()
    }

    /// Raw storage slice (halo included), storage order.
    pub fn raw(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw storage slice.
    pub fn raw_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }
}

impl fmt::Debug for DenseGrid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DenseGrid {{ {}x{}x{} + halo {} }}",
            self.nx, self.ny, self.nz, self.halo
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_grid_is_zeroed() {
        let g = DenseGrid::cubic(4, 2);
        assert_eq!(g.storage_len(), 8 * 8 * 8);
        assert_eq!(g.interior_len(), 64);
        assert_eq!(g.get(0, 0, 0), 0.0);
        assert_eq!(g.get(-2, -2, -2), 0.0);
        assert_eq!(g.get(5, 5, 5), 0.0);
    }

    #[test]
    fn set_get_roundtrip_interior_and_halo() {
        let mut g = DenseGrid::new(3, 4, 5, 1);
        g.set(0, 0, 0, 1.5);
        g.set(2, 3, 4, 2.5);
        g.set(-1, -1, -1, 3.5);
        g.set(3, 4, 5, 4.5);
        assert_eq!(g.get(0, 0, 0), 1.5);
        assert_eq!(g.get(2, 3, 4), 2.5);
        assert_eq!(g.get(-1, -1, -1), 3.5);
        assert_eq!(g.get(3, 4, 5), 4.5);
    }

    #[test]
    fn x_is_contiguous() {
        let mut g = DenseGrid::new(4, 2, 2, 0);
        g.fill_with(|x, y, z| (x + 10 * y + 100 * z) as f64);
        assert_eq!(&g.raw()[0..4], &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn interior_coords_cover_exactly_interior() {
        let g = DenseGrid::new(3, 2, 2, 2);
        let coords: Vec<_> = g.interior_coords().collect();
        assert_eq!(coords.len(), 12);
        assert_eq!(coords[0], (0, 0, 0));
        assert_eq!(*coords.last().unwrap(), (2, 1, 1));
    }

    #[test]
    fn diff_metrics() {
        let mut a = DenseGrid::cubic(4, 1);
        let mut b = DenseGrid::cubic(4, 1);
        a.fill_test_pattern();
        b.fill_test_pattern();
        assert_eq!(a.max_abs_diff(&b), 0.0);
        assert_eq!(a.max_rel_diff(&b), 0.0);
        b.set(1, 1, 1, b.get(1, 1, 1) + 0.5);
        assert!((a.max_abs_diff(&b) - 0.5).abs() < 1e-15);
        assert!(a.max_rel_diff(&b) > 0.0);
    }

    #[test]
    fn halo_difference_is_ignored_by_diff() {
        let mut a = DenseGrid::cubic(4, 1);
        let b = DenseGrid::cubic(4, 1);
        a.set(-1, 0, 0, 9.0);
        assert_eq!(a.max_abs_diff(&b), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty grid")]
    fn zero_extent_panics() {
        let _ = DenseGrid::new(0, 4, 4, 1);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "outside grid")]
    fn out_of_halo_access_panics_in_debug() {
        let g = DenseGrid::cubic(4, 1);
        let _ = g.get(5, 0, 0);
    }
}
