//! Static stencil analysis: FLOP counts and theoretical arithmetic
//! intensity (paper §4.4 and Table 4).
//!
//! The paper normalises every kernel to the *minimum* FLOP count for a
//! given stencil: the symmetry-exploiting schedule that sums the taps of
//! each coefficient class first, multiplies each class sum by its
//! coefficient once, and adds the class results:
//!
//! ```text
//! flops/point = (points − classes) adds within classes
//!             +  classes           multiplies
//!             + (classes − 1)      adds across classes
//!             =  points + classes − 1
//! ```
//!
//! Theoretical arithmetic intensity assumes compulsory-only data movement
//! for an out-of-place double-precision sweep: 8 B read + 8 B written per
//! point → 16 B.

use serde::{Deserialize, Serialize};

use crate::shape::StencilShape;
use crate::stencil::Stencil;

/// Compulsory bytes moved per grid point: one `f64` read + one `f64`
/// written (out-of-place), assuming perfect reuse of neighbouring reads.
pub const BYTES_PER_POINT: f64 = 16.0;

/// Static analysis results for one stencil.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StencilAnalysis {
    /// Number of stencil points (taps).
    pub points: usize,
    /// Number of unique coefficient classes.
    pub classes: usize,
    /// Minimum FLOPs per output point (`points + classes − 1`), the
    /// normalised count the paper uses for every kernel.
    pub flops_per_point: u64,
    /// FLOPs per point of the naive schedule that multiplies every tap
    /// individually (`2·points − 1`).
    pub naive_flops_per_point: u64,
    /// Theoretical arithmetic intensity in FLOP/Byte (Table 4).
    pub theoretical_ai: f64,
}

impl StencilAnalysis {
    /// Analyse a normalised stencil.
    pub fn of(stencil: &Stencil) -> Self {
        let points = stencil.points();
        let classes = stencil.coefficient_classes();
        Self::from_counts(points, classes)
    }

    /// Analyse a shape via its closed forms (identical to analysing the
    /// generated stencil; verified by tests).
    pub fn of_shape(shape: &StencilShape) -> Self {
        Self::from_counts(shape.points(), shape.unique_coefficients())
    }

    fn from_counts(points: usize, classes: usize) -> Self {
        assert!(points >= 1 && classes >= 1 && classes <= points);
        let flops_per_point = (points + classes - 1) as u64;
        StencilAnalysis {
            points,
            classes,
            flops_per_point,
            naive_flops_per_point: (2 * points - 1) as u64,
            theoretical_ai: flops_per_point as f64 / BYTES_PER_POINT,
        }
    }

    /// Total normalised FLOPs for a sweep over `n` output points.
    pub fn total_flops(&self, n: u64) -> u64 {
        self.flops_per_point * n
    }

    /// Compulsory bytes for a sweep over `n` output points.
    pub fn compulsory_bytes(&self, n: u64) -> u64 {
        (BYTES_PER_POINT as u64) * n
    }
}

/// Structural lower bound on live vector registers for any schedule of a
/// radius-`radius` star stencil fused over `temporal_degree` timesteps.
///
/// A spatial kernel (`temporal_degree == 1`) needs at least one
/// accumulator and one in-flight load. A fused kernel additionally keeps
/// every intermediate plane window register-resident (the PR 9 temporal
/// lowering): each of the `temporal_degree − 1` intermediate stages holds
/// a `2·radius + 1`-plane sliding window. No register allocator can go
/// below this, so converting it through the occupancy lint's demand
/// formula yields a sound *upper* bound on achievable occupancy — exactly
/// what validity predicates and roofline pruning need (rejecting on a
/// lower bound of demand never rejects a feasible kernel).
pub fn min_live_registers(radius: usize, temporal_degree: u32) -> u32 {
    let windows = temporal_degree.saturating_sub(1) * (2 * radius as u32 + 1);
    windows + 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::StencilShape;

    /// Table 4 of the paper, verbatim.
    const TABLE4: &[(usize, f64)] = &[
        (7, 0.5),
        (13, 0.9375),
        (19, 1.375),
        (25, 1.8125),
        (27, 1.875),
        (125, 8.375),
    ];

    #[test]
    fn theoretical_ai_matches_table4() {
        for (shape, &(points, ai)) in StencilShape::paper_suite().iter().zip(TABLE4) {
            let a = StencilAnalysis::of_shape(shape);
            assert_eq!(a.points, points);
            assert_eq!(a.theoretical_ai, ai, "{shape}");
        }
    }

    #[test]
    fn flops_per_point_closed_form() {
        // star r1: 8, r2: 15, r3: 22, r4: 29; cube r1: 30, r2: 134
        let expected = [8, 15, 22, 29, 30, 134];
        for (shape, &fp) in StencilShape::paper_suite().iter().zip(&expected) {
            assert_eq!(StencilAnalysis::of_shape(shape).flops_per_point, fp);
        }
    }

    #[test]
    fn shape_and_stencil_analyses_agree() {
        for shape in StencilShape::paper_suite() {
            let via_shape = StencilAnalysis::of_shape(&shape);
            let via_stencil = StencilAnalysis::of(&shape.stencil());
            assert_eq!(via_shape, via_stencil, "{shape}");
        }
    }

    #[test]
    fn naive_flops_exceed_normalised() {
        for shape in StencilShape::paper_suite() {
            let a = StencilAnalysis::of_shape(&shape);
            assert!(a.naive_flops_per_point > a.flops_per_point);
        }
    }

    #[test]
    fn totals_scale_linearly() {
        let a = StencilAnalysis::of_shape(&StencilShape::star(2));
        assert_eq!(a.total_flops(512 * 512 * 512), 15 * 512u64.pow(3));
        // paper: 512³ × 16 B = 2.147 GB ("2.15 GBytes")
        let gb = a.compulsory_bytes(512u64.pow(3)) as f64 / 1e9;
        assert!((gb - 2.147).abs() < 0.01);
    }

    #[test]
    #[should_panic]
    fn zero_points_rejected() {
        let _ = StencilAnalysis::from_counts(0, 0);
    }

    #[test]
    fn min_live_lower_bound() {
        // spatial kernels: a shape-independent floor
        assert_eq!(min_live_registers(1, 1), 2);
        assert_eq!(min_live_registers(4, 1), 2);
        // fused kernels: one (2r+1)-plane window per intermediate stage
        assert_eq!(min_live_registers(1, 2), 3 + 2);
        assert_eq!(min_live_registers(1, 4), 3 * 3 + 2);
        assert_eq!(min_live_registers(2, 2), 5 + 2);
    }
}
