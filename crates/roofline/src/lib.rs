//! # roofline
//!
//! The Roofline performance model (Williams, Waterman, Patterson) and a
//! mixbench-style microbenchmark that derives *empirical* ceilings from
//! the GPU simulator — the same method the paper uses to draw its
//! Roofline plots (§4.4: mixbench for A100/MI250X, Intel Advisor for
//! PVC).

pub mod mixbench;
pub mod model;

pub use mixbench::{empirical_roofline, measure, mixbench_sweep, MixbenchPoint};
pub use model::Roofline;
