//! A mixbench-style microbenchmark over the simulated GPUs.
//!
//! mixbench (Konstantinidis & Cotronis) runs a family of kernels whose
//! arithmetic intensity is a compile-time parameter — each element is
//! streamed once and receives `k` fused multiply-adds — and reads the
//! empirical memory and compute ceilings off the resulting curve. We do
//! exactly that against the simulator's compiler/occupancy/timing models,
//! so the "empirical" Roofline reflects what the simulated machine +
//! programming model can actually deliver, not the vendor datasheet.

use serde::{Deserialize, Serialize};

use gpu_sim::{kernel_time, CompiledKernel, CompilerModel, GpuArch, MemCounters, ProgModel};

use crate::model::Roofline;

/// One point of the mixbench sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MixbenchPoint {
    /// FMAs per element.
    pub flops_per_element: u32,
    /// Arithmetic intensity in FLOP/Byte.
    pub ai: f64,
    /// Measured GFLOP/s.
    pub gflops: f64,
}

/// Synthetic streaming kernel: grid-stride loop, one read + one write per
/// element, `k` FMAs in between.
fn streaming_kernel(k: u32, elements: u64, blocks: u64) -> CompiledKernel {
    let threads = 256u32;
    let per_block = elements / blocks;
    CompiledKernel {
        name: format!("mixbench_k{k}"),
        regs_per_thread: 40,
        threads_per_block: threads,
        warps_per_block: 8,
        // load + store + k FMAs + loop overhead, per element
        instrs_per_block: per_block as f64 * (2.0 + k as f64 + 4.0) / 32.0,
        exec_flops_per_block: 2 * k as u64 * per_block,
        spill_read_bytes_per_block: 0,
        spill_write_bytes_per_block: 0,
    }
}

/// Run the sweep for one `(architecture, model)` pair; `None` when the
/// model is unsupported there.
pub fn mixbench_sweep(arch: &GpuArch, model: ProgModel) -> Option<Vec<MixbenchPoint>> {
    let cm = CompilerModel::resolve(arch.kind, model)?;
    // 256 MiB of doubles streamed in and out, like mixbench's buffer.
    let elements: u64 = 32 * 1024 * 1024;
    let bytes = elements * 16;
    let blocks = 16 * arch.num_sms as u64;
    let mut out = Vec::new();
    for k in [0u32, 1, 2, 4, 8, 16, 32, 64, 128, 256] {
        let kern = streaming_kernel(k, elements, blocks);
        let flops = 2 * k as u64 * elements;
        let mem = MemCounters {
            l1_bytes: bytes,
            l2_bytes: bytes,
            dram_bytes: bytes,
            dram_read_bytes: bytes / 2,
            dram_write_bytes: bytes / 2,
            // mixbench streams two perfectly contiguous buffers: the row
            // buffers stay open (one activation per KiB page)
            pages: gpu_sim::PageStats {
                hits: bytes / 32 - bytes / 1024,
                misses: bytes / 1024,
            },
        };
        let t = kernel_time(arch, &cm, &kern, &mem, blocks);
        let ai = flops as f64 / bytes as f64;
        out.push(MixbenchPoint {
            flops_per_element: k,
            ai,
            gflops: flops as f64 / t.time / 1e9,
        });
    }
    Some(out)
}

/// Fit the empirical Roofline from a sweep: bandwidth from the
/// memory-bound points, peak from the top of the curve.
pub fn empirical_roofline(points: &[MixbenchPoint]) -> Roofline {
    let bw = points
        .iter()
        .filter(|p| p.ai > 0.0)
        .map(|p| p.gflops / p.ai)
        .fold(0.0f64, f64::max);
    let peak = points.iter().map(|p| p.gflops).fold(0.0f64, f64::max);
    Roofline::from_ceilings(peak, bw)
}

/// Convenience: empirical Roofline for `(arch, model)`, `None` when
/// unsupported.
pub fn measure(arch: &GpuArch, model: ProgModel) -> Option<Roofline> {
    mixbench_sweep(arch, model).map(|pts| empirical_roofline(&pts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::GpuKind;

    #[test]
    fn sweep_is_monotone_then_saturates() {
        let arch = GpuArch::a100();
        let pts = mixbench_sweep(&arch, ProgModel::Cuda).unwrap();
        assert!(pts.len() >= 8);
        for w in pts.windows(2) {
            assert!(w[1].gflops >= w[0].gflops * 0.999, "{w:?}");
        }
        let last = pts.last().unwrap();
        let prev = &pts[pts.len() - 2];
        // compute-bound tail: doubling AI no longer doubles GFLOP/s
        assert!(last.gflops / prev.gflops < 1.5);
    }

    #[test]
    fn empirical_ceilings_below_theoretical() {
        for arch in GpuArch::all() {
            let r = measure(&arch, ProgModel::Sycl).unwrap();
            assert!(r.peak_gflops <= arch.fp64_gflops * 1.001, "{}", arch.name);
            assert!(r.bandwidth_gbs <= arch.hbm_gbs * 1.001, "{}", arch.name);
            // and not absurdly low either
            assert!(r.peak_gflops >= 0.4 * arch.fp64_gflops, "{}", arch.name);
            assert!(r.bandwidth_gbs >= 0.6 * arch.hbm_gbs, "{}", arch.name);
        }
    }

    #[test]
    fn cuda_ceilings_at_least_sycl_on_a100() {
        let arch = GpuArch::a100();
        let cuda = measure(&arch, ProgModel::Cuda).unwrap();
        let sycl = measure(&arch, ProgModel::Sycl).unwrap();
        assert!(cuda.peak_gflops >= sycl.peak_gflops);
        assert!(cuda.bandwidth_gbs >= sycl.bandwidth_gbs * 0.999);
    }

    #[test]
    fn unsupported_pair_is_none() {
        assert!(mixbench_sweep(&GpuArch::pvc_stack(), ProgModel::Cuda).is_none());
        assert_eq!(GpuArch::pvc_stack().kind, GpuKind::PvcStack);
    }

    #[test]
    fn k0_point_has_zero_ai() {
        let pts = mixbench_sweep(&GpuArch::mi250x_gcd(), ProgModel::Hip).unwrap();
        assert_eq!(pts[0].flops_per_element, 0);
        assert_eq!(pts[0].ai, 0.0);
        assert_eq!(pts[0].gflops, 0.0);
    }
}
