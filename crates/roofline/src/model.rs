//! The Roofline model: attainable performance as a function of arithmetic
//! intensity.

use serde::{Deserialize, Serialize};

use gpu_sim::GpuArch;

/// A two-ceiling Roofline: one memory-bandwidth diagonal and one compute
/// roof.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Roofline {
    /// Compute roof in GFLOP/s.
    pub peak_gflops: f64,
    /// Memory ceiling in GB/s.
    pub bandwidth_gbs: f64,
}

impl Roofline {
    /// Theoretical roofline of an architecture (vendor peaks).
    pub fn theoretical(arch: &GpuArch) -> Self {
        Roofline {
            peak_gflops: arch.fp64_gflops,
            bandwidth_gbs: arch.hbm_gbs,
        }
    }

    /// Roofline from explicitly measured ceilings (e.g. a mixbench sweep).
    pub fn from_ceilings(peak_gflops: f64, bandwidth_gbs: f64) -> Self {
        assert!(peak_gflops > 0.0 && bandwidth_gbs > 0.0);
        Roofline {
            peak_gflops,
            bandwidth_gbs,
        }
    }

    /// Attainable GFLOP/s at arithmetic intensity `ai` (FLOP/Byte).
    pub fn attainable(&self, ai: f64) -> f64 {
        (self.bandwidth_gbs * ai).min(self.peak_gflops)
    }

    /// The ridge point: the AI where the diagonal meets the roof.
    pub fn ridge_ai(&self) -> f64 {
        self.peak_gflops / self.bandwidth_gbs
    }

    /// Fraction of the Roofline achieved by a measurement — the
    /// performance-efficiency `e_i(a, p)` of the paper's Table 3.
    pub fn fraction(&self, gflops: f64, ai: f64) -> f64 {
        gflops / self.attainable(ai)
    }

    /// True if a kernel at `ai` sits in the memory-bound regime.
    pub fn memory_bound(&self, ai: f64) -> bool {
        ai < self.ridge_ai()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rl() -> Roofline {
        Roofline::from_ceilings(10_000.0, 1_500.0)
    }

    #[test]
    fn attainable_is_min_of_ceilings() {
        let r = rl();
        assert_eq!(r.attainable(1.0), 1_500.0);
        assert_eq!(r.attainable(100.0), 10_000.0);
        let ridge = r.ridge_ai();
        assert!((r.attainable(ridge) - 10_000.0).abs() < 1e-9);
    }

    #[test]
    fn fraction_of_roofline() {
        let r = rl();
        // memory bound: 750 GFLOP/s at AI 1 is half the 1500 attainable
        assert!((r.fraction(750.0, 1.0) - 0.5).abs() < 1e-12);
        // compute bound
        assert!((r.fraction(5_000.0, 100.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn regime_classification() {
        let r = rl();
        assert!(r.memory_bound(1.0));
        assert!(!r.memory_bound(10.0));
    }

    #[test]
    fn theoretical_matches_arch() {
        let arch = GpuArch::a100();
        let r = Roofline::theoretical(&arch);
        assert_eq!(r.peak_gflops, arch.fp64_gflops);
        assert_eq!(r.bandwidth_gbs, arch.hbm_gbs);
        // paper stencils (AI ≤ 8.375) are memory-bound on every GPU except
        // near the A100 ridge
        assert!(r.memory_bound(1.875));
    }

    #[test]
    #[should_panic]
    fn zero_ceiling_rejected() {
        let _ = Roofline::from_ceilings(0.0, 10.0);
    }
}
