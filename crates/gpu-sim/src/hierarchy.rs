//! Trace-driven memory-hierarchy simulation.
//!
//! Blocks launch in waves of `num_sms × blocks_per_sm` — the concurrently
//! resident set the occupancy model predicts. Within a wave each SM runs
//! its blocks through its private L1 (in parallel, one Rayon task per SM;
//! L1 state persists across waves), buffering the per-block L1-miss
//! streams. The streams then feed the shared L2 sequentially, interleaved
//! round-robin in small chunks to approximate concurrent execution —
//! deterministically, so every simulation of the same workload produces
//! identical byte counts. L2 misses and write-backs accumulate into the
//! DRAM counters; a final flush accounts the write-back of the resident
//! output.

use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use brick_vm::{BlockClasses, KernelSpec, TraceGeometry, TraceSink};

use crate::arch::GpuArch;
use crate::cache::{Cache, CacheConfig, CacheStats, NextLevel, WritePolicy};
use crate::dram::{DramModel, PageStats};
use crate::introspect::{
    ClassTraffic, SimIntrospection, SmGroupTraffic, TrafficBucket, WaveSample,
};
use crate::timing::MemCounters;

/// How the simulator generates the per-block address streams.
///
/// Both modes produce **bit-identical** [`MemCounters`] and [`CacheStats`]
/// — `Fast` is a memoization, not an approximation — which is enforced by
/// the differential suite in `tests/fidelity.rs`. `Exact` is kept as the
/// oracle the fast path is verified against.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SimFidelity {
    /// Trace every launch block through the full VM dispatch path
    /// (per-lane callback dispatch, one IR decode per block).
    Exact,
    /// Compile one compact stream per block class
    /// ([`brick_vm::BlockClasses`]) and replay it with a per-block address
    /// rebase through the batched [`Cache::access_run`] entry. SMs whose
    /// whole launch schedule is a line-aligned translation of another
    /// SM's share one L1 simulation (see [`plan_sm_groups`]).
    #[default]
    Fast,
}

/// Group SMs whose entire launch schedules are translations of each
/// other, so the fast path simulates one private L1 per *group* instead
/// of one per SM.
///
/// Returns, for every SM, `(representative_sm, byte_shift)`. Soundness:
/// the cache model's set index is `(addr / line) % sets`, its tag is
/// `addr / line`, LRU is driven by access order only, and sector indices
/// are offsets within a line — so translating an access stream by a
/// multiple of the line size rotates the set mapping and shifts every
/// tag without changing any hit/miss/eviction decision. Two SMs whose
/// block sequences visit the same classes with pairwise-constant,
/// line-aligned base shifts therefore run byte-isomorphic L1
/// simulations: identical [`CacheStats`], and miss streams that differ
/// only by the shift. The grouping key (per-block class ids, base deltas
/// relative to the SM's first block, and the first base modulo the line
/// size) encodes exactly those conditions; SMs with irregular schedules
/// (e.g. Morton orderings) simply land in singleton groups and are
/// simulated directly.
fn plan_sm_groups(
    classes: &BlockClasses,
    num_blocks: usize,
    num_sms: usize,
    active: usize,
    line: usize,
) -> Vec<(usize, i64)> {
    let mut sched: Vec<Vec<usize>> = vec![Vec::new(); num_sms];
    let mut wave_start = 0;
    while wave_start < num_blocks {
        let wave_len = active.min(num_blocks - wave_start);
        for pos in 0..wave_len {
            sched[pos % num_sms].push(wave_start + pos);
        }
        wave_start += wave_len;
    }
    let line = line as i64;
    type GroupKey = (Vec<usize>, Vec<i64>, i64);
    let mut reps: HashMap<GroupKey, (usize, i64)> = HashMap::new();
    let mut plan = Vec::with_capacity(num_sms);
    for blocks in &sched {
        let cls: Vec<usize> = blocks.iter().map(|&b| classes.class_of(b)).collect();
        let deltas: Vec<i64> = blocks.iter().map(|&b| classes.block(b).1).collect();
        let d0 = deltas.first().copied().unwrap_or(0);
        let rel: Vec<i64> = deltas.iter().map(|d| d - d0).collect();
        let sm = plan.len();
        let (rep, rep_d0) = *reps
            .entry((cls, rel, d0.rem_euclid(line)))
            .or_insert((sm, d0));
        plan.push((rep, d0 - rep_d0));
    }
    plan
}

/// Longest schedule period, in waves, the fast path will search for.
/// Bounds the `find_wave_period` scan; the single rolling snapshot keeps
/// memory flat regardless of the period found.
const MAX_PERIOD_WAVES: usize = 128;

/// Completed full waves to simulate before taking the first steady-state
/// snapshot — enough for the L2 working set of typical paper-suite cells
/// to cycle through its cold start.
const PERIOD_WARMUP_WAVES: usize = 4;

/// A launch schedule that repeats, translated, every `waves` full waves.
#[derive(Clone, Copy)]
struct WavePeriod {
    /// Period length in full waves.
    waves: usize,
    /// Byte shift between corresponding blocks one period apart.
    shift: i64,
}

/// Find the smallest wave count `p` such that every block is the
/// translation, by one constant byte shift, of the block `p` waves
/// earlier (same class, base delta differing by exactly `shift`), with
/// `shift` aligned to every granularity the hierarchy's state depends on
/// (L1/L2 lines and the DRAM page). When such a period exists, the
/// simulated machine — per-SM L1s, shared L2, row-buffer state — evolves
/// periodically modulo translation once its caches shake out their cold
/// start, which `simulate_memory_opts` detects and exploits by
/// fast-forwarding whole periods. Lexicographic brick and array tile
/// orderings are periodic at the wave count that realigns with the
/// brick-grid plane; Morton orderings simply return `None` and are
/// simulated in full.
fn find_wave_period(
    classes: &BlockClasses,
    num_blocks: usize,
    active: usize,
    aligns: [i64; 3],
    max_period: usize,
) -> Option<WavePeriod> {
    let full_waves = num_blocks / active;
    for p in 1..=max_period {
        // A period only pays if there is room for the warmup, the
        // snapshot-to-check distance, and at least one skipped period.
        if full_waves < 2 * p + 1 {
            break;
        }
        let lag = p * active;
        let shift = classes.block(lag).1 - classes.block(0).1;
        if aligns.iter().any(|&a| shift % a != 0) {
            continue;
        }
        let ok = (lag..num_blocks).all(|b| {
            classes.class_of(b) == classes.class_of(b - lag)
                && classes.block(b).1 - classes.block(b - lag).1 == shift
        });
        if ok {
            return Some(WavePeriod { waves: p, shift });
        }
    }
    None
}

/// Machine state captured at a full-wave boundary: the stateful parts of
/// the hierarchy plus the counters accumulated so far, used to verify
/// steady state one period later and to compute the per-period counter
/// delta.
struct WaveSnapshot {
    /// Representative L1s, in `rep_ids` order.
    l1s: Vec<Cache>,
    l2: Cache,
    dram: DramModel,
    dram_read: u64,
    dram_write: u64,
    /// Attribution accumulators at the snapshot moment, captured only
    /// when introspecting, so the fast-forward can scale the per-class
    /// deltas with exactly the arithmetic it applies to the totals.
    intro: Option<IntroSnap>,
}

/// Introspection accumulators, live during an instrumented simulation.
struct IntroAcc {
    /// Per representative-slot, per-class L1 counter deltas from block
    /// walks (exact fidelity: one slot per SM; fast: one per SM group).
    l1: Vec<Vec<CacheStats>>,
    /// Per-class L2/DRAM/page deltas from the interleaved L2 feed (the
    /// `l1` field of these buckets stays zero; L1 is per-slot above).
    buckets: Vec<TrafficBucket>,
    /// The end-of-kernel flush, attributable to no single block.
    flush: TrafficBucket,
    /// Cumulative counters at sampled full-wave boundaries.
    timeline: Vec<WaveSample>,
    /// Sample every `stride` full waves (bounds the timeline size).
    stride: u64,
    wave_period: Option<u64>,
    waves_skipped: u64,
}

/// The scalable parts of [`IntroAcc`], snapshotted with [`WaveSnapshot`].
struct IntroSnap {
    l1: Vec<Vec<CacheStats>>,
    buckets: Vec<TrafficBucket>,
}

impl fmt::Display for SimFidelity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SimFidelity::Exact => "exact",
            SimFidelity::Fast => "fast",
        })
    }
}

impl FromStr for SimFidelity {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "exact" => Ok(SimFidelity::Exact),
            "fast" => Ok(SimFidelity::Fast),
            other => Err(format!("unknown fidelity '{other}' (exact|fast)")),
        }
    }
}

/// Tunables of the memory-hierarchy simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SimOptions {
    /// Trace generation mode; see [`SimFidelity`].
    pub fidelity: SimFidelity,
    /// Events fed to the L2 per stream before rotating to the next block's
    /// stream. Real blocks start staggered and retire continuously rather
    /// than running in lock-step, so a coarse interleave (about one block's
    /// compulsory footprint per turn) approximates the pipelined miss
    /// stream an L2 actually sees; a fine-grained rotation would overstate
    /// conflict misses on small L2s (MI250X) by maximising every reuse
    /// distance. The default of 1024 is part of the simulator's schema —
    /// changing it changes every simulated byte count.
    pub interleave_chunk: usize,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            fidelity: SimFidelity::default(),
            interleave_chunk: 1024,
        }
    }
}

/// Adapter: kernel trace → L1 cache → buffered miss stream.
struct L1Sink<'a> {
    l1: &'a mut Cache,
    out: &'a mut Vec<NextLevel>,
}

impl TraceSink for L1Sink<'_> {
    fn load(&mut self, addr: u64, bytes: u32) {
        let out = &mut *self.out;
        self.l1.read(addr, bytes, &mut |t| out.push(t));
    }

    fn store(&mut self, addr: u64, bytes: u32) {
        let out = &mut *self.out;
        self.l1.write(addr, bytes, &mut |t| out.push(t));
    }
}

/// Detailed result of a memory simulation.
#[derive(Debug, Clone, Default)]
pub struct MemoryReport {
    /// Merged per-SM L1 statistics.
    pub l1: CacheStats,
    /// L1 line size the statistics were collected with.
    pub l1_line: usize,
    /// L2 statistics.
    pub l2: CacheStats,
    /// HBM bytes read (L2 fills).
    pub dram_read_bytes: u64,
    /// HBM bytes written (L2 write-backs).
    pub dram_write_bytes: u64,
    /// Row-buffer locality of the HBM stream.
    pub pages: PageStats,
}

impl MemoryReport {
    /// Collapse into the counters the timing model consumes.
    ///
    /// The L1 volume is reported at *delivered-line* granularity (one
    /// line-visit costs one L1 cycle on real GPUs), which is what makes
    /// the many unaligned per-tap loads of the scalar kernels expensive
    /// relative to the aligned row loads of generated code (Fig. 4).
    pub fn counters(&self) -> MemCounters {
        MemCounters {
            l1_bytes: self.l1.delivered_bytes(self.l1_line),
            l2_bytes: self.l2.requested_bytes,
            dram_bytes: self.dram_read_bytes + self.dram_write_bytes,
            dram_read_bytes: self.dram_read_bytes,
            dram_write_bytes: self.dram_write_bytes,
            pages: self.pages,
        }
    }
}

fn l1_config(arch: &GpuArch) -> CacheConfig {
    CacheConfig {
        bytes: arch.l1_bytes,
        line: arch.l1_line,
        sector: arch.l1_sector,
        assoc: arch.l1_assoc,
        write: WritePolicy::ThroughNoAllocate,
    }
}

fn l2_config(arch: &GpuArch) -> CacheConfig {
    CacheConfig {
        bytes: arch.l2_bytes,
        line: arch.l2_line,
        sector: arch.l2_sector,
        assoc: arch.l2_assoc,
        write: WritePolicy::BackAllocate,
    }
}

/// Simulate the full launch of `spec` over `geom` on `arch` with
/// `blocks_per_sm` resident blocks per SM, under default [`SimOptions`]
/// (fast fidelity, interleave chunk 1024).
pub fn simulate_memory(
    spec: &KernelSpec,
    geom: &TraceGeometry,
    arch: &GpuArch,
    blocks_per_sm: u32,
) -> MemoryReport {
    simulate_memory_opts(spec, geom, arch, blocks_per_sm, &SimOptions::default())
}

/// [`simulate_memory`] with explicit [`SimOptions`].
pub fn simulate_memory_opts(
    spec: &KernelSpec,
    geom: &TraceGeometry,
    arch: &GpuArch,
    blocks_per_sm: u32,
    opts: &SimOptions,
) -> MemoryReport {
    simulate_memory_inner(spec, geom, arch, blocks_per_sm, opts, false).0
}

/// [`simulate_memory_opts`] with full attribution: besides the report,
/// returns a [`SimIntrospection`] breaking every counter down by block
/// class, SM group and wave. The attribution is computed with the same
/// integer arithmetic as the totals, so its per-class rows (plus the
/// flush bucket) sum to the report **bit-for-bit** in both fidelity
/// modes; the totals themselves are unchanged by introspection.
pub fn simulate_memory_introspect(
    spec: &KernelSpec,
    geom: &TraceGeometry,
    arch: &GpuArch,
    blocks_per_sm: u32,
    opts: &SimOptions,
) -> (MemoryReport, SimIntrospection) {
    let (report, intro) = simulate_memory_inner(spec, geom, arch, blocks_per_sm, opts, true);
    (report, intro.expect("introspection was requested"))
}

fn simulate_memory_inner(
    spec: &KernelSpec,
    geom: &TraceGeometry,
    arch: &GpuArch,
    blocks_per_sm: u32,
    opts: &SimOptions,
    introspect: bool,
) -> (MemoryReport, Option<SimIntrospection>) {
    let _span = brick_obs::span_cat(format!("memory-sim:{}", spec.name()), "memory-sim");
    let num_blocks = geom.num_blocks();
    let num_sms = arch.num_sms;
    let active = num_sms * blocks_per_sm.max(1) as usize;
    let interleave_chunk = opts.interleave_chunk.max(1);
    let replay = opts.fidelity == SimFidelity::Fast;

    // Fast fidelity compiles the per-class streams once, up front; the
    // wave loop then replays them with a per-block rebase. Introspection
    // needs the classes as attribution *labels* even in exact mode, where
    // every block still goes through the full VM dispatch path.
    let classes = (replay || introspect).then(|| {
        BlockClasses::compile(spec, geom).expect("kernel/geometry verified before simulation")
    });
    let replay_classes = if replay { classes.as_ref() } else { None };
    // One (representative_sm, byte_shift) entry per SM; members of a
    // group reuse the representative's L1 simulation. Exact mode (and
    // irregular schedules) degenerate to every SM representing itself.
    let plan: Option<Vec<(usize, i64)>> =
        replay_classes.map(|c| plan_sm_groups(c, num_blocks, num_sms, active, arch.l1_line));
    if let Some(c) = replay_classes {
        brick_obs::counter_add("sim.classes.launches", 1);
        brick_obs::counter_add("sim.classes.classes", c.num_classes() as u64);
        brick_obs::counter_add("sim.classes.blocks", c.num_blocks() as u64);
        if let Some(p) = &plan {
            let groups = p
                .iter()
                .enumerate()
                .filter(|&(sm, &(r, _))| sm == r)
                .count();
            brick_obs::counter_add("sim.classes.sm_groups", groups as u64);
        }
    }
    let is_rep = |sm: usize| plan.as_ref().is_none_or(|p| p[sm].0 == sm);
    let rep_ids: Vec<usize> = match &plan {
        Some(p) => p
            .iter()
            .enumerate()
            .filter(|&(sm, &(rep, _))| sm == rep)
            .map(|(sm, _)| sm)
            .collect(),
        None => Vec::new(),
    };
    // Attribution slot per SM: its position in `rep_ids` under a grouping
    // plan, its own id otherwise (each SM its own slot in exact mode).
    let (slot_of, num_slots): (Vec<usize>, usize) = match &plan {
        Some(_) => {
            let mut slot = vec![usize::MAX; num_sms];
            for (i, &sm) in rep_ids.iter().enumerate() {
                slot[sm] = i;
            }
            (slot, rep_ids.len())
        }
        None => ((0..num_sms).collect(), num_sms),
    };

    let l1_line = arch.l1_line as i64;
    let l2_line = arch.l2_line as i64;
    // Wave-periodic fast-forward (fast mode only): if the schedule repeats
    // under translation every `period.waves` waves, detect the moment the
    // hierarchy's state does too, then account all remaining full periods
    // at once. `None` (exact mode, aperiodic orderings, or short launches)
    // simulates every wave.
    let full_waves = num_blocks / active;
    let mut period = replay_classes.and_then(|c| {
        find_wave_period(
            c,
            num_blocks,
            active,
            [l1_line, l2_line, crate::dram::PAGE_BYTES as i64],
            MAX_PERIOD_WAVES,
        )
    });
    if let Some(pd) = &period {
        brick_obs::counter_add("sim.classes.wave_period", pd.waves as u64);
    }
    let mut snapshot: Option<(usize, WaveSnapshot)> = None;
    let mut intro: Option<IntroAcc> = introspect.then(|| {
        let nc = classes.as_ref().map_or(1, |c| c.num_classes().max(1));
        IntroAcc {
            l1: vec![vec![CacheStats::default(); nc]; num_slots],
            buckets: vec![TrafficBucket::default(); nc],
            flush: TrafficBucket::default(),
            timeline: Vec::new(),
            stride: (full_waves / 256).max(1) as u64,
            wave_period: period.as_ref().map(|pd| pd.waves as u64),
            waves_skipped: 0,
        }
    });

    let mut l1s: Vec<Cache> = (0..num_sms).map(|_| Cache::new(l1_config(arch))).collect();
    let mut l2 = Cache::new(l2_config(arch));
    let mut dram = DramModel::new();
    let mut dram_read: u64 = 0;
    let mut dram_write: u64 = 0;

    let mut wave_start = 0;
    while wave_start < num_blocks {
        let wave_len = active.min(num_blocks - wave_start);
        // Each representative SM simulates its blocks of the wave through
        // its L1; grouped SMs skip the cache walk entirely and later reuse
        // the representative's miss streams under their shift. When
        // introspecting, each block also carries the L1 counter delta its
        // walk caused (zero otherwise).
        let per_sm: Vec<Vec<(usize, Vec<NextLevel>, CacheStats)>> = l1s
            .par_iter_mut()
            .enumerate()
            .map(|(sm, l1)| {
                if !is_rep(sm) {
                    return Vec::new();
                }
                let mut out = Vec::new();
                let mut pos = sm;
                while pos < wave_len {
                    let block = wave_start + pos;
                    let mut misses = Vec::new();
                    let before = introspect.then_some(l1.stats);
                    match replay_classes {
                        Some(c) => {
                            let (events, delta) = c.block(block);
                            l1.access_run(
                                events.iter().map(|e| {
                                    (e.addr.wrapping_add_signed(delta), e.bytes, e.is_store)
                                }),
                                &mut |t| misses.push(t),
                            );
                        }
                        None => {
                            let mut sink = L1Sink {
                                l1,
                                out: &mut misses,
                            };
                            spec.trace_block(geom, block, &mut sink)
                                .expect("kernel/geometry verified before simulation");
                        }
                    }
                    let delta = before.map(|b| l1.stats.diff(&b)).unwrap_or_default();
                    out.push((pos, misses, delta));
                    pos += num_sms;
                }
                out
            })
            .collect();

        // Attribute each walked block's L1 delta to its class, on the SM's
        // slot (per-member scaling happens once at the end).
        if let (Some(acc), Some(labels)) = (intro.as_mut(), classes.as_ref()) {
            for (sm, sm_blocks) in per_sm.iter().enumerate() {
                for (pos, _, delta) in sm_blocks {
                    acc.l1[slot_of[sm]][labels.class_of(wave_start + pos)].merge(delta);
                }
            }
        }

        // Order the wave's miss streams by block position. Grouped SMs
        // view their representative's streams through their byte shift —
        // no materialised copy.
        let mut streams: Vec<(&[NextLevel], i64)> = vec![(&[][..], 0); wave_len];
        match &plan {
            None => {
                for sm_streams in &per_sm {
                    for (pos, stream, _) in sm_streams {
                        streams[*pos] = (stream.as_slice(), 0);
                    }
                }
            }
            Some(p) => {
                for (sm, &(rep, shift)) in p.iter().enumerate() {
                    for (j, (rep_pos, stream, _)) in per_sm[rep].iter().enumerate() {
                        let pos = sm + j * num_sms;
                        debug_assert_eq!(*rep_pos, rep + j * num_sms);
                        // Equal group keys force equal schedule lengths, so
                        // a member has a block in this wave exactly when its
                        // representative does.
                        assert!(pos < wave_len, "SM group schedules diverged");
                        streams[pos] = (stream.as_slice(), shift);
                    }
                }
            }
        }

        // Feed the shared L2: round-robin chunks across the wave's blocks.
        // Each chunk belongs to exactly one block, so when introspecting,
        // the L2/DRAM/page deltas it causes are attributed to that block's
        // class by differencing the counters around the chunk.
        let mut cursors = vec![0usize; wave_len];
        let mut remaining: usize = streams.iter().map(|(s, _)| s.len()).sum();
        while remaining > 0 {
            for (pos, (&(stream, shift), cursor)) in
                streams.iter().zip(cursors.iter_mut()).enumerate()
            {
                let end = (*cursor + interleave_chunk).min(stream.len());
                let before = (introspect && end > *cursor).then_some((
                    l2.stats,
                    dram_read,
                    dram_write,
                    dram.hits,
                    dram.misses,
                ));
                for t in &stream[*cursor..end] {
                    let addr = t.addr.wrapping_add_signed(shift);
                    let dram = &mut dram;
                    let mut lower = |n: NextLevel| {
                        dram.access(n.addr);
                        if n.is_write {
                            dram_write += n.bytes as u64;
                        } else {
                            dram_read += n.bytes as u64;
                        }
                    };
                    if t.is_write {
                        l2.write(addr, t.bytes, &mut lower);
                    } else {
                        l2.read(addr, t.bytes, &mut lower);
                    }
                }
                if let (Some(acc), Some((s0, r0, w0, h0, m0))) = (intro.as_mut(), before) {
                    let class = classes.as_ref().map_or(0, |c| c.class_of(wave_start + pos));
                    let b = &mut acc.buckets[class];
                    b.l2.merge(&l2.stats.diff(&s0));
                    b.dram_read_bytes += dram_read - r0;
                    b.dram_write_bytes += dram_write - w0;
                    b.page_hits += dram.hits - h0;
                    b.page_misses += dram.misses - m0;
                }
                remaining -= end - *cursor;
                *cursor = end;
            }
        }
        wave_start += wave_len;

        // Timeline sample at full-wave boundaries (strided to bound size).
        if let Some(acc) = intro.as_mut() {
            if wave_len == active {
                let completed = (wave_start / active) as u64;
                if completed.is_multiple_of(acc.stride) || completed == full_waves as u64 {
                    acc.timeline.push(WaveSample {
                        wave: completed,
                        fast_forwarded: false,
                        l2_requested_bytes: l2.stats.requested_bytes,
                        dram_read_bytes: dram_read,
                        dram_write_bytes: dram_write,
                        page_hits: dram.hits,
                        page_misses: dram.misses,
                    });
                }
            }
        }

        // Steady-state detection and fast-forward at full-wave boundaries.
        if let Some(pd) = period {
            if wave_len == active {
                let completed = wave_start / active;
                let mut skipped = false;
                let mut checked = false;
                if let Some((at, snap)) = &snapshot {
                    if completed == at + pd.waves {
                        checked = true;
                        let e_l2 = l2.equiv_translated(&snap.l2, pd.shift / l2_line);
                        let e_dram = dram.equiv_translated(
                            &snap.dram,
                            pd.shift / crate::dram::PAGE_BYTES as i64,
                        );
                        let e_l1 = rep_ids.iter().enumerate().all(|(idx, &sm)| {
                            l1s[sm].equiv_translated(&snap.l1s[idx], pd.shift / l1_line)
                        });
                        let equiv = e_l2 && e_dram && e_l1;
                        if equiv {
                            // Each of the next `k` periods provably repeats
                            // this period's counter deltas; account them and
                            // translate the state past them.
                            let k = ((full_waves - completed) / pd.waves) as u64;
                            if k > 0 {
                                // Scale the attribution with the same
                                // verified per-period deltas the totals
                                // get below, and synthesize the timeline
                                // samples the skipped periods would have
                                // produced (pre-scale cumulative values
                                // plus j periods' worth of delta).
                                if let Some(acc) = intro.as_mut() {
                                    let isnap = snap
                                        .intro
                                        .as_ref()
                                        .expect("introspecting snapshots carry intro state");
                                    let d_l2 =
                                        l2.stats.requested_bytes - snap.l2.stats.requested_bytes;
                                    let d_r = dram_read - snap.dram_read;
                                    let d_w = dram_write - snap.dram_write;
                                    let d_h = dram.hits - snap.dram.hits;
                                    let d_m = dram.misses - snap.dram.misses;
                                    for j in 1..=k {
                                        let wave = completed as u64 + j * pd.waves as u64;
                                        if wave.is_multiple_of(acc.stride) || j == k {
                                            acc.timeline.push(WaveSample {
                                                wave,
                                                fast_forwarded: true,
                                                l2_requested_bytes: l2.stats.requested_bytes
                                                    + d_l2 * j,
                                                dram_read_bytes: dram_read + d_r * j,
                                                dram_write_bytes: dram_write + d_w * j,
                                                page_hits: dram.hits + d_h * j,
                                                page_misses: dram.misses + d_m * j,
                                            });
                                        }
                                    }
                                    for (row, srow) in acc.l1.iter_mut().zip(&isnap.l1) {
                                        for (st, s0) in row.iter_mut().zip(srow) {
                                            let d = st.diff(s0);
                                            st.add_scaled(&d, k);
                                        }
                                    }
                                    for (b, s0) in acc.buckets.iter_mut().zip(&isnap.buckets) {
                                        let d = b.diff(s0);
                                        b.add_scaled(&d, k);
                                    }
                                    acc.waves_skipped += k * pd.waves as u64;
                                }
                                for (idx, &sm) in rep_ids.iter().enumerate() {
                                    let d = l1s[sm].stats.diff(&snap.l1s[idx].stats);
                                    l1s[sm].stats.add_scaled(&d, k);
                                }
                                let d = l2.stats.diff(&snap.l2.stats);
                                l2.stats.add_scaled(&d, k);
                                dram_read += (dram_read - snap.dram_read) * k;
                                dram_write += (dram_write - snap.dram_write) * k;
                                dram.hits += (dram.hits - snap.dram.hits) * k;
                                dram.misses += (dram.misses - snap.dram.misses) * k;
                                let shift = pd.shift * k as i64;
                                for &sm in &rep_ids {
                                    l1s[sm].translate(shift / l1_line);
                                }
                                l2.translate(shift / l2_line);
                                dram.translate(shift / crate::dram::PAGE_BYTES as i64);
                                wave_start += k as usize * pd.waves * active;
                                brick_obs::counter_add(
                                    "sim.classes.waves_skipped",
                                    k * pd.waves as u64,
                                );
                                skipped = true;
                            }
                        }
                    }
                }
                if skipped {
                    period = None;
                    snapshot = None;
                } else if (checked || snapshot.is_none())
                    && wave_start / active >= PERIOD_WARMUP_WAVES.min(full_waves - 2 * pd.waves)
                    && wave_start / active + 2 * pd.waves <= full_waves
                {
                    // First eligible snapshot, or roll it forward after a
                    // failed check (the state had not settled yet).
                    snapshot = Some((
                        wave_start / active,
                        WaveSnapshot {
                            l1s: rep_ids.iter().map(|&sm| l1s[sm].clone()).collect(),
                            l2: l2.clone(),
                            dram: dram.clone(),
                            dram_read,
                            dram_write,
                            intro: intro.as_ref().map(|acc| IntroSnap {
                                l1: acc.l1.clone(),
                                buckets: acc.buckets.clone(),
                            }),
                        },
                    ));
                }
            }
        }
    }

    // Account the resident dirty output. No single block causes these
    // write-backs, so the attribution gives them their own bucket.
    let flush_before = introspect.then_some((l2.stats, dram_write, dram.hits, dram.misses));
    l2.flush(&mut |n| {
        dram.access(n.addr);
        if n.is_write {
            dram_write += n.bytes as u64;
        }
    });
    if let (Some(acc), Some((s0, w0, h0, m0))) = (intro.as_mut(), flush_before) {
        acc.flush.l2 = l2.stats.diff(&s0);
        acc.flush.dram_write_bytes = dram_write - w0;
        acc.flush.page_hits = dram.hits - h0;
        acc.flush.page_misses = dram.misses - m0;
    }

    // Every SM contributes its L1 statistics; a grouped SM's are by
    // construction identical to its representative's, so merge those.
    let mut l1_total = CacheStats::default();
    match &plan {
        None => {
            for l1 in &l1s {
                l1_total.merge(&l1.stats);
            }
        }
        Some(p) => {
            for &(rep, _) in p {
                l1_total.merge(&l1s[rep].stats);
            }
        }
    }

    // Assemble the introspection: per-class rows get each slot's L1
    // deltas scaled by the group's member count — the same weighting the
    // total merge above applies — so class sums reproduce the totals
    // exactly.
    let introspection = intro.map(|acc| {
        let labels = classes
            .as_ref()
            .expect("classes are compiled when introspecting");
        let nc = labels.num_classes();
        let mut blocks_per_class = vec![0u64; nc];
        for b in 0..num_blocks {
            blocks_per_class[labels.class_of(b)] += 1;
        }
        let (slot_sms, members): (Vec<usize>, Vec<u64>) = match &plan {
            Some(p) => {
                let mut m = vec![0u64; rep_ids.len()];
                for &(rep, _) in p {
                    m[slot_of[rep]] += 1;
                }
                (rep_ids.clone(), m)
            }
            None => ((0..num_sms).collect(), vec![1; num_sms]),
        };
        let class_rows: Vec<ClassTraffic> = (0..nc)
            .map(|c| {
                let mut t = acc.buckets[c].clone();
                for (slot, row) in acc.l1.iter().enumerate() {
                    t.l1.add_scaled(&row[c], members[slot]);
                }
                ClassTraffic {
                    class: c as u64,
                    blocks: blocks_per_class[c],
                    traffic: t,
                }
            })
            .collect();
        let sm_groups: Vec<SmGroupTraffic> = slot_sms
            .iter()
            .enumerate()
            .map(|(slot, &sm)| SmGroupTraffic {
                representative: sm as u64,
                members: members[slot],
                l1: l1s[sm].stats,
            })
            .collect();
        SimIntrospection {
            fidelity: opts.fidelity,
            num_blocks: num_blocks as u64,
            num_classes: nc as u64,
            l1_line: arch.l1_line as u64,
            wave_period: acc.wave_period,
            waves_skipped: acc.waves_skipped,
            classes: class_rows,
            flush: acc.flush,
            sm_groups,
            timeline: acc.timeline,
        }
    });

    let report = MemoryReport {
        l1: l1_total,
        l1_line: arch.l1_line,
        l2: l2.stats,
        dram_read_bytes: dram_read,
        dram_write_bytes: dram_write,
        pages: PageStats {
            hits: dram.hits,
            misses: dram.misses,
        },
    };
    (report, introspection)
}

#[cfg(test)]
mod tests {
    use super::*;
    use brick_codegen::{generate, CodegenOptions, LayoutKind};
    use brick_core::{BrickDecomp, BrickDims, BrickNav, BrickOrdering};
    use brick_dsl::shape::StencilShape;
    use brick_vm::ScalarKernel;
    use std::sync::Arc;

    fn brick_geom(n: usize, width: usize, radius: usize) -> TraceGeometry {
        let d = Arc::new(BrickDecomp::new(
            (n.max(width), n, n),
            BrickDims::for_simd_width(width),
            radius,
            BrickOrdering::Lexicographic,
        ));
        TraceGeometry::brick(Arc::new(BrickNav::new(d)))
    }

    fn vector_spec(shape: StencilShape, layout: LayoutKind, width: usize) -> KernelSpec {
        let st = shape.stencil();
        let b = st.default_bindings();
        KernelSpec::Vector(generate(&st, &b, layout, width, CodegenOptions::default()).unwrap())
    }

    #[test]
    fn bricks_codegen_dram_close_to_compulsory() {
        // 64^3 domain on a small-L2 architecture model: interior reads +
        // halo + writes; DRAM must be ≥ compulsory and ≤ ~2.5x (the ghost
        // shell and halo refetches add overhead at this tiny size).
        let shape = StencilShape::star(1);
        let spec = vector_spec(shape, LayoutKind::Brick, 32);
        let geom = brick_geom(64, 32, 1);
        let arch = GpuArch::a100();
        let rep = simulate_memory(&spec, &geom, &arch, 8);
        let compulsory = geom.compulsory_bytes();
        let dram = rep.dram_read_bytes + rep.dram_write_bytes;
        assert!(dram >= compulsory, "{dram} < {compulsory}");
        assert!(
            (dram as f64) < 2.5 * compulsory as f64,
            "dram {dram} vs compulsory {compulsory}"
        );
    }

    #[test]
    fn hierarchy_bytes_monotone() {
        // L1 requested ≥ L2 requested ≥ DRAM (stencils reuse data).
        let spec = vector_spec(StencilShape::star(2), LayoutKind::Brick, 32);
        let geom = brick_geom(64, 32, 2);
        let arch = GpuArch::a100();
        let rep = simulate_memory(&spec, &geom, &arch, 8);
        assert!(rep.l1.requested_bytes >= rep.l2.requested_bytes);
        assert!(rep.l2.requested_bytes >= rep.dram_read_bytes + rep.dram_write_bytes);
    }

    #[test]
    fn writes_match_output_size_for_vector_kernels() {
        // full-row stores: write-back traffic equals the interior exactly
        let spec = vector_spec(StencilShape::star(1), LayoutKind::Brick, 32);
        let geom = brick_geom(64, 32, 1);
        let arch = GpuArch::a100();
        let rep = simulate_memory(&spec, &geom, &arch, 8);
        assert_eq!(rep.dram_write_bytes, geom.interior_points() * 8);
    }

    #[test]
    fn scalar_array_moves_more_l1_bytes_than_codegen() {
        let shape = StencilShape::cube(2);
        let st = shape.stencil();
        let b = st.default_bindings();
        let scalar = KernelSpec::Scalar(ScalarKernel::new(&st, &b, LayoutKind::Array, 32).unwrap());
        let codegen = vector_spec(shape, LayoutKind::Array, 32);
        let geom = TraceGeometry::array((64, 64, 64), 2, BrickDims::for_simd_width(32));
        let arch = GpuArch::a100();
        let rs = simulate_memory(&scalar, &geom, &arch, 4);
        let rc = simulate_memory(&codegen, &geom, &arch, 8);
        assert!(
            rs.l1.requested_bytes > 5 * rc.l1.requested_bytes,
            "scalar L1 {} vs codegen L1 {}",
            rs.l1.requested_bytes,
            rc.l1.requested_bytes
        );
    }

    #[test]
    fn determinism() {
        let spec = vector_spec(StencilShape::star(2), LayoutKind::Brick, 32);
        let geom = brick_geom(64, 32, 2);
        let arch = GpuArch::a100();
        let a = simulate_memory(&spec, &geom, &arch, 8).counters();
        let b = simulate_memory(&spec, &geom, &arch, 8).counters();
        assert_eq!(a, b);
    }

    #[test]
    fn counters_roundtrip() {
        let rep = MemoryReport {
            dram_read_bytes: 10,
            dram_write_bytes: 5,
            ..Default::default()
        };
        let c = rep.counters();
        assert_eq!(c.dram_bytes, 15);
        assert_eq!(c.dram_read_bytes, 10);
    }
}
