//! Trace-driven memory-hierarchy simulation.
//!
//! Blocks launch in waves of `num_sms × blocks_per_sm` — the concurrently
//! resident set the occupancy model predicts. Within a wave each SM runs
//! its blocks through its private L1 (in parallel, one Rayon task per SM;
//! L1 state persists across waves), buffering the per-block L1-miss
//! streams. The streams then feed the shared L2 sequentially, interleaved
//! round-robin in small chunks to approximate concurrent execution —
//! deterministically, so every simulation of the same workload produces
//! identical byte counts. L2 misses and write-backs accumulate into the
//! DRAM counters; a final flush accounts the write-back of the resident
//! output.

use rayon::prelude::*;

use brick_vm::{KernelSpec, TraceGeometry, TraceSink};

use crate::arch::GpuArch;
use crate::cache::{Cache, CacheConfig, CacheStats, NextLevel, WritePolicy};
use crate::dram::{DramModel, PageStats};
use crate::timing::MemCounters;

/// Events fed to the L2 per stream before rotating to the next block's
/// stream. Real blocks start staggered and retire continuously rather
/// than running in lock-step, so a coarse interleave (about one block's
/// compulsory footprint per turn) approximates the pipelined miss stream
/// an L2 actually sees; a fine-grained rotation would overstate conflict
/// misses on small L2s (MI250X) by maximising every reuse distance.
const INTERLEAVE_CHUNK: usize = 1024;

/// Adapter: kernel trace → L1 cache → buffered miss stream.
struct L1Sink<'a> {
    l1: &'a mut Cache,
    out: &'a mut Vec<NextLevel>,
}

impl TraceSink for L1Sink<'_> {
    fn load(&mut self, addr: u64, bytes: u32) {
        let out = &mut *self.out;
        self.l1.read(addr, bytes, &mut |t| out.push(t));
    }

    fn store(&mut self, addr: u64, bytes: u32) {
        let out = &mut *self.out;
        self.l1.write(addr, bytes, &mut |t| out.push(t));
    }
}

/// Detailed result of a memory simulation.
#[derive(Debug, Clone, Default)]
pub struct MemoryReport {
    /// Merged per-SM L1 statistics.
    pub l1: CacheStats,
    /// L1 line size the statistics were collected with.
    pub l1_line: usize,
    /// L2 statistics.
    pub l2: CacheStats,
    /// HBM bytes read (L2 fills).
    pub dram_read_bytes: u64,
    /// HBM bytes written (L2 write-backs).
    pub dram_write_bytes: u64,
    /// Row-buffer locality of the HBM stream.
    pub pages: PageStats,
}

impl MemoryReport {
    /// Collapse into the counters the timing model consumes.
    ///
    /// The L1 volume is reported at *delivered-line* granularity (one
    /// line-visit costs one L1 cycle on real GPUs), which is what makes
    /// the many unaligned per-tap loads of the scalar kernels expensive
    /// relative to the aligned row loads of generated code (Fig. 4).
    pub fn counters(&self) -> MemCounters {
        MemCounters {
            l1_bytes: self.l1.delivered_bytes(self.l1_line),
            l2_bytes: self.l2.requested_bytes,
            dram_bytes: self.dram_read_bytes + self.dram_write_bytes,
            dram_read_bytes: self.dram_read_bytes,
            dram_write_bytes: self.dram_write_bytes,
            pages: self.pages,
        }
    }
}

fn l1_config(arch: &GpuArch) -> CacheConfig {
    CacheConfig {
        bytes: arch.l1_bytes,
        line: arch.l1_line,
        sector: arch.l1_sector,
        assoc: arch.l1_assoc,
        write: WritePolicy::ThroughNoAllocate,
    }
}

fn l2_config(arch: &GpuArch) -> CacheConfig {
    CacheConfig {
        bytes: arch.l2_bytes,
        line: arch.l2_line,
        sector: arch.l2_sector,
        assoc: arch.l2_assoc,
        write: WritePolicy::BackAllocate,
    }
}

/// Simulate the full launch of `spec` over `geom` on `arch` with
/// `blocks_per_sm` resident blocks per SM.
pub fn simulate_memory(
    spec: &KernelSpec,
    geom: &TraceGeometry,
    arch: &GpuArch,
    blocks_per_sm: u32,
) -> MemoryReport {
    let _span = brick_obs::span_cat(format!("memory-sim:{}", spec.name()), "memory-sim");
    let num_blocks = geom.num_blocks();
    let num_sms = arch.num_sms;
    let active = num_sms * blocks_per_sm.max(1) as usize;

    let mut l1s: Vec<Cache> = (0..num_sms).map(|_| Cache::new(l1_config(arch))).collect();
    let mut l2 = Cache::new(l2_config(arch));
    let mut dram = DramModel::new();
    let mut dram_read: u64 = 0;
    let mut dram_write: u64 = 0;

    let mut wave_start = 0;
    while wave_start < num_blocks {
        let wave_len = active.min(num_blocks - wave_start);
        // Each SM simulates its blocks of the wave through its L1.
        let mut per_sm: Vec<Vec<(usize, Vec<NextLevel>)>> = l1s
            .par_iter_mut()
            .enumerate()
            .map(|(sm, l1)| {
                let mut out = Vec::new();
                let mut pos = sm;
                while pos < wave_len {
                    let block = wave_start + pos;
                    let mut misses = Vec::new();
                    let mut sink = L1Sink {
                        l1,
                        out: &mut misses,
                    };
                    spec.trace_block(geom, block, &mut sink)
                        .expect("kernel/geometry verified before simulation");
                    out.push((pos, misses));
                    pos += num_sms;
                }
                out
            })
            .collect();

        // Order the wave's miss streams by block position.
        let mut streams: Vec<Vec<NextLevel>> = vec![Vec::new(); wave_len];
        for sm_streams in per_sm.drain(..) {
            for (pos, stream) in sm_streams {
                streams[pos] = stream;
            }
        }

        // Feed the shared L2: round-robin chunks across the wave's blocks.
        let mut cursors = vec![0usize; wave_len];
        let mut remaining: usize = streams.iter().map(Vec::len).sum();
        while remaining > 0 {
            for (stream, cursor) in streams.iter().zip(cursors.iter_mut()) {
                let end = (*cursor + INTERLEAVE_CHUNK).min(stream.len());
                for t in &stream[*cursor..end] {
                    let dram = &mut dram;
                    let mut lower = |n: NextLevel| {
                        dram.access(n.addr);
                        if n.is_write {
                            dram_write += n.bytes as u64;
                        } else {
                            dram_read += n.bytes as u64;
                        }
                    };
                    if t.is_write {
                        l2.write(t.addr, t.bytes, &mut lower);
                    } else {
                        l2.read(t.addr, t.bytes, &mut lower);
                    }
                }
                remaining -= end - *cursor;
                *cursor = end;
            }
        }
        wave_start += wave_len;
    }

    // Account the resident dirty output.
    l2.flush(&mut |n| {
        dram.access(n.addr);
        if n.is_write {
            dram_write += n.bytes as u64;
        }
    });

    let mut l1_total = CacheStats::default();
    for l1 in &l1s {
        l1_total.merge(&l1.stats);
    }
    MemoryReport {
        l1: l1_total,
        l1_line: arch.l1_line,
        l2: l2.stats,
        dram_read_bytes: dram_read,
        dram_write_bytes: dram_write,
        pages: PageStats {
            hits: dram.hits,
            misses: dram.misses,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brick_codegen::{generate, CodegenOptions, LayoutKind};
    use brick_core::{BrickDecomp, BrickDims, BrickNav, BrickOrdering};
    use brick_dsl::shape::StencilShape;
    use brick_vm::ScalarKernel;
    use std::sync::Arc;

    fn brick_geom(n: usize, width: usize, radius: usize) -> TraceGeometry {
        let d = Arc::new(BrickDecomp::new(
            (n.max(width), n, n),
            BrickDims::for_simd_width(width),
            radius,
            BrickOrdering::Lexicographic,
        ));
        TraceGeometry::brick(Arc::new(BrickNav::new(d)))
    }

    fn vector_spec(shape: StencilShape, layout: LayoutKind, width: usize) -> KernelSpec {
        let st = shape.stencil();
        let b = st.default_bindings();
        KernelSpec::Vector(generate(&st, &b, layout, width, CodegenOptions::default()).unwrap())
    }

    #[test]
    fn bricks_codegen_dram_close_to_compulsory() {
        // 64^3 domain on a small-L2 architecture model: interior reads +
        // halo + writes; DRAM must be ≥ compulsory and ≤ ~2.5x (the ghost
        // shell and halo refetches add overhead at this tiny size).
        let shape = StencilShape::star(1);
        let spec = vector_spec(shape, LayoutKind::Brick, 32);
        let geom = brick_geom(64, 32, 1);
        let arch = GpuArch::a100();
        let rep = simulate_memory(&spec, &geom, &arch, 8);
        let compulsory = geom.compulsory_bytes();
        let dram = rep.dram_read_bytes + rep.dram_write_bytes;
        assert!(dram >= compulsory, "{dram} < {compulsory}");
        assert!(
            (dram as f64) < 2.5 * compulsory as f64,
            "dram {dram} vs compulsory {compulsory}"
        );
    }

    #[test]
    fn hierarchy_bytes_monotone() {
        // L1 requested ≥ L2 requested ≥ DRAM (stencils reuse data).
        let spec = vector_spec(StencilShape::star(2), LayoutKind::Brick, 32);
        let geom = brick_geom(64, 32, 2);
        let arch = GpuArch::a100();
        let rep = simulate_memory(&spec, &geom, &arch, 8);
        assert!(rep.l1.requested_bytes >= rep.l2.requested_bytes);
        assert!(rep.l2.requested_bytes >= rep.dram_read_bytes + rep.dram_write_bytes);
    }

    #[test]
    fn writes_match_output_size_for_vector_kernels() {
        // full-row stores: write-back traffic equals the interior exactly
        let spec = vector_spec(StencilShape::star(1), LayoutKind::Brick, 32);
        let geom = brick_geom(64, 32, 1);
        let arch = GpuArch::a100();
        let rep = simulate_memory(&spec, &geom, &arch, 8);
        assert_eq!(rep.dram_write_bytes, geom.interior_points() * 8);
    }

    #[test]
    fn scalar_array_moves_more_l1_bytes_than_codegen() {
        let shape = StencilShape::cube(2);
        let st = shape.stencil();
        let b = st.default_bindings();
        let scalar = KernelSpec::Scalar(ScalarKernel::new(&st, &b, LayoutKind::Array, 32).unwrap());
        let codegen = vector_spec(shape, LayoutKind::Array, 32);
        let geom = TraceGeometry::array((64, 64, 64), 2, BrickDims::for_simd_width(32));
        let arch = GpuArch::a100();
        let rs = simulate_memory(&scalar, &geom, &arch, 4);
        let rc = simulate_memory(&codegen, &geom, &arch, 8);
        assert!(
            rs.l1.requested_bytes > 5 * rc.l1.requested_bytes,
            "scalar L1 {} vs codegen L1 {}",
            rs.l1.requested_bytes,
            rc.l1.requested_bytes
        );
    }

    #[test]
    fn determinism() {
        let spec = vector_spec(StencilShape::star(2), LayoutKind::Brick, 32);
        let geom = brick_geom(64, 32, 2);
        let arch = GpuArch::a100();
        let a = simulate_memory(&spec, &geom, &arch, 8).counters();
        let b = simulate_memory(&spec, &geom, &arch, 8).counters();
        assert_eq!(a, b);
    }

    #[test]
    fn counters_roundtrip() {
        let rep = MemoryReport {
            dram_read_bytes: 10,
            dram_write_bytes: 5,
            ..Default::default()
        };
        let c = rep.counters();
        assert_eq!(c.dram_bytes, 15);
        assert_eq!(c.dram_read_bytes, 10);
    }
}
