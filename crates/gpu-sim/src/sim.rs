//! Top-level kernel simulation: one call produces everything the paper
//! measures for one `(stencil, kernel config, GPU, programming model)`
//! point — FLOP rate, arithmetic intensity, per-level data movement,
//! occupancy and the limiting resource.

use serde::{Deserialize, Serialize};

use brick_vm::{KernelSpec, TraceGeometry};

use crate::arch::{GpuArch, GpuKind};
use crate::compiler::{compile, CompiledKernel};
use crate::hierarchy::{simulate_memory_opts, SimOptions};
use crate::progmodel::{CompilerModel, ProgModel};
use crate::timing::{kernel_time, occupancy, MemCounters, Occupancy, TimeBreakdown};

/// Fraction of spill traffic that misses the L1 and reaches the L2
/// (spill working sets are thread-private and mostly L2-contained).
const SPILL_L2_FRACTION: f64 = 0.5;

/// Everything measured for one simulated kernel launch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimResult {
    /// Kernel name.
    pub kernel: String,
    /// GPU simulated.
    pub gpu: GpuKind,
    /// Programming model.
    pub model: ProgModel,
    /// Launch blocks.
    pub num_blocks: u64,
    /// Interior grid points.
    pub points: u64,
    /// Simulated byte totals (spill traffic folded in).
    pub mem: MemCounters,
    /// Normalised FLOPs (the paper's minimum count, §4.4).
    pub normalized_flops: u64,
    /// FLOPs the kernel actually executes.
    pub executed_flops: u64,
    /// Kernel time in seconds.
    pub time_s: f64,
    /// Performance in GFLOP/s at the normalised FLOP count.
    pub gflops: f64,
    /// Empirical arithmetic intensity: normalised FLOPs / DRAM bytes.
    pub ai: f64,
    /// Occupancy picture.
    pub occupancy: Occupancy,
    /// Registers per thread after compilation.
    pub regs_per_thread: u32,
    /// True if the compiler spilled.
    pub spilled: bool,
    /// Time breakdown by limiting resource.
    pub breakdown: TimeBreakdown,
}

impl SimResult {
    /// Bytes moved per interior point at the DRAM level. A degenerate
    /// geometry with no interior points reports 0.0 rather than NaN/inf,
    /// so downstream averages and serialized artifacts stay finite.
    pub fn dram_bytes_per_point(&self) -> f64 {
        if self.points == 0 {
            return 0.0;
        }
        self.mem.dram_bytes as f64 / self.points as f64
    }
}

/// Simulate `spec` over `geom` on `arch` under `model`.
///
/// `normalized_flops_per_point` is the symmetry-minimal FLOP count from
/// [`brick_dsl::StencilAnalysis`], applied identically to every kernel as
/// §4.4 prescribes. Returns `None` when the programming model is not
/// supported on the GPU (Table 1).
pub fn simulate(
    spec: &KernelSpec,
    geom: &TraceGeometry,
    arch: &GpuArch,
    model: ProgModel,
    normalized_flops_per_point: u64,
) -> Option<SimResult> {
    simulate_opts(
        spec,
        geom,
        arch,
        model,
        normalized_flops_per_point,
        &SimOptions::default(),
    )
}

/// [`simulate`] with explicit [`SimOptions`] (fidelity mode and L2
/// interleave chunk).
pub fn simulate_opts(
    spec: &KernelSpec,
    geom: &TraceGeometry,
    arch: &GpuArch,
    model: ProgModel,
    normalized_flops_per_point: u64,
    opts: &SimOptions,
) -> Option<SimResult> {
    let cm = CompilerModel::resolve(arch.kind, model)?;
    // A folded row (vector folding, paper §3) maps to several hardware
    // vectors per block; the row extent must tile the SIMD width exactly.
    assert!(
        spec.block().bx.is_multiple_of(arch.simd_width) && spec.block().bx > 0,
        "kernel built for SIMD width {} run on {} (width {})",
        spec.block().bx,
        arch.name,
        arch.simd_width
    );
    let _span = brick_obs::span_cat(
        format!("simulate:{}:{}/{model}", spec.name(), arch.kind),
        "simulate",
    );
    let compiled = {
        let _s = brick_obs::span_cat("compile", "compile");
        compile(spec, arch, &cm)
    };
    let occ = occupancy(arch, &compiled);
    let report = simulate_memory_opts(spec, geom, arch, occ.blocks_per_sm, opts);
    record_cache_metrics(arch.kind, &report);
    Some(assemble(
        spec,
        geom,
        arch,
        &cm,
        &compiled,
        report.counters(),
        normalized_flops_per_point,
    ))
}

/// Tally per-level cache behaviour into the global metrics registry (one
/// update per simulated kernel, tagged by GPU).
fn record_cache_metrics(gpu: GpuKind, report: &crate::hierarchy::MemoryReport) {
    for (level, stats) in [("l1", &report.l1), ("l2", &report.l2)] {
        brick_obs::counter_add(&format!("sim.{gpu}.{level}.hit_sectors"), stats.hit_sectors);
        brick_obs::counter_add(
            &format!("sim.{gpu}.{level}.miss_sectors"),
            stats.miss_sectors,
        );
        let total = stats.hit_sectors + stats.miss_sectors;
        if total > 0 {
            brick_obs::histogram_record(
                &format!("sim.{gpu}.{level}.hit_pct"),
                100.0 * stats.hit_sectors as f64 / total as f64,
            );
        }
    }
    brick_obs::counter_add(
        &format!("sim.{gpu}.dram.read_bytes"),
        report.dram_read_bytes,
    );
    brick_obs::counter_add(
        &format!("sim.{gpu}.dram.write_bytes"),
        report.dram_write_bytes,
    );
    brick_obs::counter_add(&format!("sim.{gpu}.dram.page_hits"), report.pages.hits);
    brick_obs::counter_add(&format!("sim.{gpu}.dram.page_misses"), report.pages.misses);
}

/// Assemble a [`SimResult`] from precomputed memory counters (lets
/// callers reuse one memory simulation across compiler models whose
/// occupancy matches).
pub fn assemble(
    spec: &KernelSpec,
    geom: &TraceGeometry,
    arch: &GpuArch,
    cm: &CompilerModel,
    compiled: &CompiledKernel,
    mut mem: MemCounters,
    normalized_flops_per_point: u64,
) -> SimResult {
    let num_blocks = geom.num_blocks() as u64;
    let spill = compiled.spill_bytes_per_block() * num_blocks;
    mem.l1_bytes += spill;
    mem.l2_bytes += (spill as f64 * SPILL_L2_FRACTION) as u64;
    if spill > 0 {
        brick_obs::counter_add("sim.spill.kernels", 1);
        brick_obs::counter_add("sim.spill.bytes", spill);
    }

    let points = geom.interior_points();
    let normalized_flops = normalized_flops_per_point * points;
    let executed_flops = compiled.exec_flops_per_block * num_blocks;

    let breakdown = {
        let _s = brick_obs::span_cat("timing", "timing");
        kernel_time(arch, cm, compiled, &mem, num_blocks)
    };
    let occ = occupancy(arch, compiled);
    brick_obs::counter_add(&format!("sim.limiter.{}", breakdown.limiter()), 1);
    brick_obs::histogram_record("sim.regs_per_thread", compiled.regs_per_thread as f64);
    brick_obs::histogram_record("sim.occupancy_pct", occ.occupancy * 100.0);
    SimResult {
        kernel: spec.name().to_string(),
        gpu: arch.kind,
        model: cm.model,
        num_blocks,
        points,
        mem,
        normalized_flops,
        executed_flops,
        time_s: breakdown.time,
        gflops: normalized_flops as f64 / breakdown.time / 1e9,
        ai: normalized_flops as f64 / mem.dram_bytes as f64,
        occupancy: occ,
        regs_per_thread: compiled.regs_per_thread,
        spilled: compiled.spills(),
        breakdown,
    }
}

/// Compile and report occupancy without running the memory simulation
/// (used by callers that want to decide whether counters can be shared).
pub fn compile_only(
    spec: &KernelSpec,
    arch: &GpuArch,
    model: ProgModel,
) -> Option<(CompilerModel, CompiledKernel, Occupancy)> {
    let cm = CompilerModel::resolve(arch.kind, model)?;
    let compiled = compile(spec, arch, &cm);
    let occ = occupancy(arch, &compiled);
    Some((cm, compiled, occ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use brick_codegen::{generate, CodegenOptions, LayoutKind};
    use brick_core::{BrickDecomp, BrickDims, BrickNav, BrickOrdering};
    use brick_dsl::shape::StencilShape;
    use brick_dsl::StencilAnalysis;
    use brick_vm::ScalarKernel;
    use std::sync::Arc;

    fn geom_for(layout: LayoutKind, n: usize, width: usize, radius: usize) -> TraceGeometry {
        match layout {
            LayoutKind::Brick => {
                let d = Arc::new(BrickDecomp::new(
                    (n.max(4 * width), n, n),
                    BrickDims::for_simd_width(width),
                    radius,
                    BrickOrdering::Lexicographic,
                ));
                TraceGeometry::brick(Arc::new(BrickNav::new(d)))
            }
            LayoutKind::Array => TraceGeometry::array(
                (n.max(4 * width), n, n),
                radius,
                BrickDims::for_simd_width(width),
            ),
        }
    }

    fn run(
        shape: StencilShape,
        layout: LayoutKind,
        codegen: bool,
        arch: &GpuArch,
        model: ProgModel,
        n: usize,
    ) -> Option<SimResult> {
        let st = shape.stencil();
        let b = st.default_bindings();
        let w = arch.simd_width;
        let spec = if codegen {
            KernelSpec::Vector(generate(&st, &b, layout, w, CodegenOptions::default()).unwrap())
        } else {
            KernelSpec::Scalar(ScalarKernel::new(&st, &b, layout, w).unwrap())
        };
        let geom = geom_for(layout, n, w, shape.radius as usize);
        let a = StencilAnalysis::of_shape(&shape);
        simulate(&spec, &geom, arch, model, a.flops_per_point)
    }

    #[test]
    fn unsupported_model_returns_none() {
        let arch = GpuArch::pvc_stack();
        assert!(run(
            StencilShape::star(1),
            LayoutKind::Brick,
            true,
            &arch,
            ProgModel::Cuda,
            32
        )
        .is_none());
    }

    #[test]
    fn bricks_codegen_beats_scalar_array_on_every_platform() {
        // scaled-down caches put the 64³ test grid in the paper's
        // regime: grid ≫ L2, so DRAM traffic governs as at 512³
        for (arch, model) in [
            (GpuArch::a100().scaled_down(32), ProgModel::Cuda),
            (GpuArch::mi250x_gcd().scaled_down(32), ProgModel::Hip),
            (GpuArch::pvc_stack().scaled_down(64), ProgModel::Sycl),
        ] {
            let shape = StencilShape::cube(1);
            let bricks = run(shape, LayoutKind::Brick, true, &arch, model, 64).unwrap();
            let array = run(shape, LayoutKind::Array, false, &arch, model, 64).unwrap();
            assert!(
                bricks.gflops > array.gflops,
                "{}: bricks {:.0} !> array {:.0} GFLOP/s",
                arch.name,
                bricks.gflops,
                array.gflops
            );
            // At this test size the domain is only a few bricks wide, so
            // ghost-brick edge reads are a large fraction of traffic and
            // depress the bricks AI (on MI250X a 64-wide brick row is
            // 512 B, making the shell overhead worst). Only guard against
            // gross inversions here — the full-scale AI ordering is the
            // Fig. 3 experiment's job.
            assert!(bricks.ai >= array.ai * 0.45, "{}: AI ordering", arch.name);
        }
    }

    #[test]
    fn sycl_array_gap_exceeds_cuda_array_gap() {
        // paper §5.1: codegen helps a little under CUDA, enormously under
        // SYCL for the high-order stencils
        let arch = GpuArch::a100();
        let shape = StencilShape::cube(2);
        let cuda_scalar = run(shape, LayoutKind::Array, false, &arch, ProgModel::Cuda, 64).unwrap();
        let cuda_cg = run(shape, LayoutKind::Array, true, &arch, ProgModel::Cuda, 64).unwrap();
        let sycl_scalar = run(shape, LayoutKind::Array, false, &arch, ProgModel::Sycl, 64).unwrap();
        let sycl_cg = run(shape, LayoutKind::Array, true, &arch, ProgModel::Sycl, 64).unwrap();
        let cuda_gap = cuda_cg.gflops / cuda_scalar.gflops;
        let sycl_gap = sycl_cg.gflops / sycl_scalar.gflops;
        assert!(
            sycl_gap > 2.0 * cuda_gap,
            "sycl gap {sycl_gap:.1} vs cuda gap {cuda_gap:.1}"
        );
        assert!(sycl_scalar.spilled);
    }

    #[test]
    fn ai_bounded_by_theory() {
        // empirical AI can never exceed the compulsory-traffic bound
        for shape in [StencilShape::star(1), StencilShape::cube(1)] {
            let arch = GpuArch::a100();
            let r = run(shape, LayoutKind::Brick, true, &arch, ProgModel::Cuda, 64).unwrap();
            let theory = StencilAnalysis::of_shape(&shape).theoretical_ai;
            assert!(
                r.ai <= theory * 1.001,
                "{shape}: AI {:.3} > theory {theory:.3}",
                r.ai
            );
            assert!(
                r.ai > 0.2 * theory,
                "{shape}: AI {:.3} way below theory",
                r.ai
            );
        }
    }

    #[test]
    fn hip_equals_cuda_on_a100() {
        let shape = StencilShape::star(2);
        let arch = GpuArch::a100();
        let c = run(shape, LayoutKind::Brick, true, &arch, ProgModel::Cuda, 64).unwrap();
        let h = run(shape, LayoutKind::Brick, true, &arch, ProgModel::Hip, 64).unwrap();
        assert_eq!(c.mem, h.mem);
        assert!((c.gflops - h.gflops).abs() < 1e-9);
    }

    #[test]
    fn gflops_consistent_with_time() {
        let shape = StencilShape::star(1);
        let arch = GpuArch::mi250x_gcd();
        let r = run(shape, LayoutKind::Brick, true, &arch, ProgModel::Hip, 64).unwrap();
        let recomputed = r.normalized_flops as f64 / r.time_s / 1e9;
        assert!((r.gflops - recomputed).abs() / recomputed < 1e-12);
        assert!(r.dram_bytes_per_point() >= 16.0);
    }

    #[test]
    #[should_panic(expected = "SIMD width")]
    fn width_mismatch_panics() {
        let shape = StencilShape::star(1);
        // kernel for width 16 on A100 (width 32): not a whole number of
        // hardware vectors per row, so no fold factor makes it legal
        let st = shape.stencil();
        let b = st.default_bindings();
        let spec = KernelSpec::Vector(
            generate(&st, &b, LayoutKind::Brick, 16, CodegenOptions::default()).unwrap(),
        );
        let geom = geom_for(LayoutKind::Brick, 32, 16, 1);
        let arch = GpuArch::a100();
        let _ = simulate(&spec, &geom, &arch, ProgModel::Cuda, 8);
    }

    #[test]
    fn folded_row_simulates_as_two_warps() {
        // a fold-2 kernel (64-wide row on A100) is a legal launch: two
        // hardware vectors per block, occupancy accounted at 64 threads
        let st = StencilShape::star(1).stencil();
        let b = st.default_bindings();
        let spec = KernelSpec::Vector(
            generate(&st, &b, LayoutKind::Brick, 64, CodegenOptions::default()).unwrap(),
        );
        let geom = geom_for(LayoutKind::Brick, 64, 64, 1);
        let arch = GpuArch::a100();
        let r = simulate(&spec, &geom, &arch, ProgModel::Cuda, 8).unwrap();
        assert!(r.gflops > 0.0);
        assert_eq!(
            r.occupancy.resident_warps,
            2 * r.occupancy.blocks_per_sm,
            "fold-2 block holds two hardware vectors"
        );
    }
}
