//! HBM row-buffer (page) model.
//!
//! The brick layout's stated advantage is that "accesses within a brick
//! are part of a single address stream", exploiting "hardware features
//! that optimize data movement of contiguous addresses" (paper §3). At
//! the DRAM level that hardware feature is the row buffer: a transaction
//! that hits a bank's open page streams at full rate, while switching
//! pages pays activate/precharge latency that many concurrent streams
//! cannot fully hide.
//!
//! The model tracks one open page per bank (page-interleaved address
//! mapping, as HBM stacks use) over the L2-miss/write-back stream the
//! hierarchy produces, and reports the page hit rate. The timing model
//! converts it into a bandwidth efficiency: an all-hit stream gets the
//! full pin bandwidth, an all-miss stream a floor fraction typical of
//! random fine-grained access.

use serde::{Deserialize, Serialize};

/// Page (row-buffer) size in bytes. HBM2e rows are 1 KiB per
/// pseudo-channel.
pub const PAGE_BYTES: u64 = 1024;

/// Total banks across the stack (pseudo-channels × banks/channel).
pub const NUM_BANKS: usize = 512;

/// Fraction of peak bandwidth a stream of pure page misses sustains.
pub const MISS_EFFICIENCY: f64 = 0.35;

/// Row-buffer state and counters.
#[derive(Debug, Clone)]
pub struct DramModel {
    open: Vec<u64>,
    /// Page hits observed.
    pub hits: u64,
    /// Page misses (activations) observed.
    pub misses: u64,
}

impl Default for DramModel {
    fn default() -> Self {
        Self::new()
    }
}

impl DramModel {
    /// Fresh model with all banks closed.
    pub fn new() -> Self {
        DramModel {
            open: vec![u64::MAX; NUM_BANKS],
            hits: 0,
            misses: 0,
        }
    }

    /// Present one DRAM transaction (an L2 fill or write-back).
    #[inline]
    pub fn access(&mut self, addr: u64) {
        let page = addr / PAGE_BYTES;
        let bank = (page as usize) % NUM_BANKS;
        if self.open[bank] == page {
            self.hits += 1;
        } else {
            self.misses += 1;
            self.open[bank] = page;
        }
    }

    /// Translate the open-page state by `shift_pages` rows.
    ///
    /// `bank = page % NUM_BANKS`, so adding a constant to every page id
    /// rotates the bank vector and shifts each open row; closed banks
    /// (sentinel) stay closed. Mirrors [`crate::Cache::translate`] for the
    /// wave-periodic fast-forward.
    pub(crate) fn translate(&mut self, shift_pages: i64) {
        let rot = shift_pages.rem_euclid(NUM_BANKS as i64) as usize;
        self.open.rotate_right(rot);
        for page in &mut self.open {
            if *page != u64::MAX {
                *page = page.wrapping_add_signed(shift_pages);
            }
        }
    }

    /// Is `self` the row-buffer state reached from `earlier` under an
    /// input stream translated by `shift_pages` rows? (Counters are
    /// ignored; the caller compares those separately.)
    pub(crate) fn equiv_translated(&self, earlier: &DramModel, shift_pages: i64) -> bool {
        let rot = shift_pages.rem_euclid(NUM_BANKS as i64) as usize;
        earlier.open.iter().enumerate().all(|(i, &page)| {
            let cur = self.open[(i + rot) % NUM_BANKS];
            if page == u64::MAX {
                cur == u64::MAX
            } else {
                cur == page.wrapping_add_signed(shift_pages)
            }
        })
    }

    /// Observed page hit rate (1.0 when idle — no evidence of thrash).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 1.0;
        }
        self.hits as f64 / total as f64
    }
}

/// Bandwidth efficiency for a given page hit rate: linear between the
/// all-miss floor and full rate.
pub fn bandwidth_efficiency(hit_rate: f64) -> f64 {
    MISS_EFFICIENCY + (1.0 - MISS_EFFICIENCY) * hit_rate.clamp(0.0, 1.0)
}

/// Page-locality counters carried in [`crate::MemCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageStats {
    /// Row-buffer hits.
    pub hits: u64,
    /// Row-buffer misses.
    pub misses: u64,
}

impl PageStats {
    /// Hit rate; 1.0 when no traffic.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 1.0;
        }
        self.hits as f64 / total as f64
    }

    /// Bandwidth efficiency of this stream.
    pub fn efficiency(&self) -> f64 {
        bandwidth_efficiency(self.hit_rate())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_stream_mostly_hits() {
        let mut d = DramModel::new();
        // stream 64 KiB in 32 B sectors: one miss per 1 KiB page
        for i in 0..2048u64 {
            d.access(i * 32);
        }
        assert_eq!(d.misses, 64);
        assert_eq!(d.hits, 2048 - 64);
        assert!(d.hit_rate() > 0.96);
    }

    #[test]
    fn strided_page_stream_always_misses_on_one_bank() {
        let mut d = DramModel::new();
        // pages NUM_BANKS apart land on the same bank with different rows
        for i in 0..100u64 {
            d.access(i * PAGE_BYTES * NUM_BANKS as u64);
        }
        assert_eq!(d.misses, 100);
        assert_eq!(d.hits, 0);
    }

    #[test]
    fn interleaved_streams_fit_in_banks() {
        let mut d = DramModel::new();
        // 8 streams on different banks, round-robin: after warm-up every
        // access hits
        for round in 0..64u64 {
            for s in 0..8u64 {
                d.access(s * PAGE_BYTES + round * 32 % PAGE_BYTES);
            }
        }
        assert_eq!(d.misses, 8);
    }

    #[test]
    fn efficiency_mapping() {
        assert!((bandwidth_efficiency(1.0) - 1.0).abs() < 1e-12);
        assert!((bandwidth_efficiency(0.0) - MISS_EFFICIENCY).abs() < 1e-12);
        let mid = bandwidth_efficiency(0.5);
        assert!(mid > MISS_EFFICIENCY && mid < 1.0);
    }

    #[test]
    fn idle_model_reports_full_efficiency() {
        assert_eq!(DramModel::new().hit_rate(), 1.0);
        assert_eq!(PageStats::default().efficiency(), 1.0);
    }

    #[test]
    fn page_stats_roundtrip() {
        let s = PageStats { hits: 3, misses: 1 };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert!(s.efficiency() > bandwidth_efficiency(0.74));
    }
}
