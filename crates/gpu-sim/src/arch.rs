//! GPU architecture models for the paper's three systems (§4.1):
//! Perlmutter's NVIDIA A100, one GCD of Crusher's AMD MI250X, and one
//! stack of Florentia's Intel Ponte Vecchio.
//!
//! Parameters follow the paper's §4.1 hardware description where it gives
//! numbers (peak FP64, HBM bandwidth, cache sizes, SIMD widths) and public
//! vendor documentation for microarchitectural details (sector sizes,
//! register files, scheduler widths). They parameterise a simulator, not a
//! spec sheet: the reproduction targets relative behaviour across the
//! three machines, which these ratios capture.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a modelled GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GpuKind {
    /// NVIDIA A100 (Perlmutter).
    A100,
    /// One Graphics Compute Die of an AMD MI250X (Crusher/Frontier).
    Mi250xGcd,
    /// One stack of an Intel Data Center GPU Max ("Ponte Vecchio",
    /// Florentia/Aurora).
    PvcStack,
}

impl fmt::Display for GpuKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpuKind::A100 => f.write_str("A100"),
            GpuKind::Mi250xGcd => f.write_str("MI250X"),
            GpuKind::PvcStack => f.write_str("PVC"),
        }
    }
}

/// Full architecture description consumed by the cache, occupancy and
/// timing models.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuArch {
    /// Which GPU this describes.
    pub kind: GpuKind,
    /// Marketing/system name used in reports.
    pub name: &'static str,
    /// Warp / wavefront / sub-group width in lanes — the paper's
    /// `SIMD_width` (32 / 64 / 16) and therefore the brick `x` extent.
    pub simd_width: usize,
    /// Streaming multiprocessors / compute units / Xe-cores.
    pub num_sms: usize,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Peak double-precision rate in GFLOP/s.
    pub fp64_gflops: f64,
    /// HBM bandwidth in GB/s.
    pub hbm_gbs: f64,
    /// Aggregate L2 bandwidth in GB/s.
    pub l2_gbs: f64,
    /// Aggregate L1 bandwidth in GB/s (all SMs).
    pub l1_gbs: f64,
    /// Per-SM L1 data cache capacity in bytes.
    pub l1_bytes: usize,
    /// L1 line size in bytes.
    pub l1_line: usize,
    /// L1 sector size in bytes (fetch granularity; equals the line size on
    /// architectures without sectoring).
    pub l1_sector: usize,
    /// L1 associativity.
    pub l1_assoc: usize,
    /// Device-level L2/L3 capacity in bytes.
    pub l2_bytes: usize,
    /// L2 line size in bytes.
    pub l2_line: usize,
    /// L2 sector size in bytes.
    pub l2_sector: usize,
    /// L2 associativity.
    pub l2_assoc: usize,
    /// Architectural registers available per thread.
    pub max_regs_per_thread: u32,
    /// Register-file capacity per SM, in 4-byte registers.
    pub regfile_per_sm: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum resident thread blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Instruction issue rate per SM in instructions/cycle (all
    /// schedulers).
    pub issue_per_cycle: f64,
    /// Occupancy (fraction of max resident warps) at which the memory
    /// system saturates for streaming access patterns.
    pub bw_saturation_occupancy: f64,
}

impl GpuArch {
    /// NVIDIA A100-40GB as on Perlmutter: 108 SMs, warp 32, 9.7 FP64
    /// TFLOP/s, 40 MB L2, 1.555 TB/s HBM (§4.1).
    pub fn a100() -> Self {
        GpuArch {
            kind: GpuKind::A100,
            name: "NVIDIA A100 (Perlmutter)",
            simd_width: 32,
            num_sms: 108,
            clock_ghz: 1.41,
            fp64_gflops: 9_700.0,
            hbm_gbs: 1_555.0,
            l2_gbs: 4_800.0,
            l1_gbs: 19_000.0,
            l1_bytes: 192 * 1024,
            l1_line: 128,
            l1_sector: 32,
            l1_assoc: 8,
            l2_bytes: 40 * 1024 * 1024,
            l2_line: 128,
            l2_sector: 32,
            l2_assoc: 16,
            max_regs_per_thread: 255,
            regfile_per_sm: 65_536,
            max_threads_per_sm: 2_048,
            max_blocks_per_sm: 32,
            issue_per_cycle: 4.0,
            bw_saturation_occupancy: 0.25,
        }
    }

    /// One GCD of an AMD MI250X as on Crusher: 110 CUs, wave 64, ~24 FP64
    /// TFLOP/s, 8 MB L2, 1.6 TB/s HBM (§4.1).
    pub fn mi250x_gcd() -> Self {
        GpuArch {
            kind: GpuKind::Mi250xGcd,
            name: "AMD MI250X single GCD (Crusher)",
            simd_width: 64,
            num_sms: 110,
            clock_ghz: 1.70,
            fp64_gflops: 23_900.0,
            hbm_gbs: 1_600.0,
            l2_gbs: 4_000.0,
            l1_gbs: 23_000.0,
            l1_bytes: 16 * 1024,
            l1_line: 64,
            l1_sector: 64,
            l1_assoc: 16,
            l2_bytes: 8 * 1024 * 1024,
            l2_line: 64,
            l2_sector: 64,
            l2_assoc: 16,
            max_regs_per_thread: 255,
            regfile_per_sm: 131_072,
            max_threads_per_sm: 2_048,
            // CDNA2 caps resident workgroups per CU at 16
            max_blocks_per_sm: 16,
            issue_per_cycle: 4.0,
            bw_saturation_occupancy: 0.25,
        }
    }

    /// One stack of an Intel Data Center GPU Max (PVC) as on Florentia:
    /// 64 Xe-cores, sub-group 16, ~16 FP64 TFLOP/s, 208 MB L3 ("L2" in
    /// our two-level model), 1.64 TB/s HBM (§4.1).
    pub fn pvc_stack() -> Self {
        GpuArch {
            kind: GpuKind::PvcStack,
            name: "Intel PVC single stack (Florentia)",
            simd_width: 16,
            num_sms: 64,
            clock_ghz: 1.40,
            fp64_gflops: 16_000.0,
            hbm_gbs: 1_640.0,
            l2_gbs: 3_700.0,
            l1_gbs: 17_000.0,
            l1_bytes: 192 * 1024,
            l1_line: 64,
            l1_sector: 64,
            l1_assoc: 8,
            l2_bytes: 208 * 1024 * 1024,
            l2_line: 64,
            l2_sector: 64,
            l2_assoc: 16,
            max_regs_per_thread: 256,
            regfile_per_sm: 131_072,
            max_threads_per_sm: 1_024,
            max_blocks_per_sm: 64,
            issue_per_cycle: 8.0,
            bw_saturation_occupancy: 0.3,
        }
    }

    /// The three architectures of the study.
    pub fn all() -> Vec<GpuArch> {
        Self::table().to_vec()
    }

    /// The shared, process-wide architecture table: one immutable copy of
    /// the study's three machines, built once. Parallel sweep cells borrow
    /// from this table instead of each carrying (or rebuilding) their own
    /// descriptions, which keeps per-cell state down to the genuinely
    /// per-cell pieces (kernel, geometry, counters).
    pub fn table() -> &'static [GpuArch] {
        static TABLE: std::sync::OnceLock<Vec<GpuArch>> = std::sync::OnceLock::new();
        TABLE.get_or_init(|| vec![Self::a100(), Self::mi250x_gcd(), Self::pvc_stack()])
    }

    /// The shared table entry for `kind`.
    pub fn by_kind(kind: GpuKind) -> &'static GpuArch {
        Self::table()
            .iter()
            .find(|a| a.kind == kind)
            .expect("every GpuKind is in the table")
    }

    /// A CI-scale variant: caches and SM count shrunk by `factor` so that
    /// small test grids exercise the same capacity regime as the paper's
    /// `512³` runs on the full machine (grid ≫ L2 ≫ per-block footprint).
    /// Bandwidths and peak rates are left untouched — only capacities
    /// shrink, preserving every capacity *ratio*.
    pub fn scaled_down(mut self, factor: usize) -> Self {
        assert!(factor >= 1);
        self.num_sms = (self.num_sms / factor).max(2);
        self.l1_bytes = (self.l1_bytes / factor).max(self.l1_line * self.l1_assoc);
        self.l2_bytes = (self.l2_bytes / factor).max(self.l2_line * self.l2_assoc * 16);
        self
    }

    /// Machine-balance arithmetic intensity (FLOP/Byte at the ridge point
    /// of the Roofline).
    pub fn ridge_ai(&self) -> f64 {
        self.fp64_gflops / self.hbm_gbs
    }

    /// Maximum resident warps per SM.
    pub fn max_warps_per_sm(&self) -> u32 {
        self.max_threads_per_sm / self.simd_width as u32
    }

    /// The register/occupancy budget of this architecture, in the form the
    /// static analyzer's occupancy lint consumes ([`brick_lint::ArchBudget`]).
    pub fn lint_budget(&self) -> brick_lint::ArchBudget {
        brick_lint::ArchBudget {
            name: self.name.to_string(),
            simd_width: self.simd_width,
            max_regs_per_thread: self.max_regs_per_thread,
            regfile_per_sm: self.regfile_per_sm,
            max_threads_per_sm: self.max_threads_per_sm,
            max_blocks_per_sm: self.max_blocks_per_sm,
            bw_saturation_occupancy: self.bw_saturation_occupancy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_table_matches_constructors() {
        assert_eq!(GpuArch::table().len(), 3);
        assert_eq!(GpuArch::all(), GpuArch::table().to_vec());
        for kind in [GpuKind::A100, GpuKind::Mi250xGcd, GpuKind::PvcStack] {
            assert_eq!(GpuArch::by_kind(kind).kind, kind);
        }
        // the table is one shared allocation, not a rebuild per call
        assert!(std::ptr::eq(GpuArch::table(), GpuArch::table()));
    }

    #[test]
    fn simd_widths_match_paper() {
        assert_eq!(GpuArch::a100().simd_width, 32);
        assert_eq!(GpuArch::mi250x_gcd().simd_width, 64);
        assert_eq!(GpuArch::pvc_stack().simd_width, 16);
    }

    #[test]
    fn paper_peak_ratios_hold() {
        let (a, m, p) = (GpuArch::a100(), GpuArch::mi250x_gcd(), GpuArch::pvc_stack());
        // §4.1: MI250X GCD ≈ 2.5x A100 FP64; PVC ≈ 1.6x A100 and ≈ 0.6x
        // of MI250X; HBM within ~5% of each other.
        assert!(m.fp64_gflops / a.fp64_gflops > 2.0);
        assert!((p.fp64_gflops / a.fp64_gflops - 1.6).abs() < 0.1);
        assert!(p.fp64_gflops < m.fp64_gflops);
        for g in [&a, &m, &p] {
            assert!((g.hbm_gbs - 1_600.0).abs() / 1_600.0 < 0.05);
        }
    }

    #[test]
    fn ridge_points_are_compute_rich() {
        // all three GPUs need AI of several FLOP/Byte to leave the
        // memory-bound regime; the A100 ridge is lowest
        for g in GpuArch::all() {
            assert!(g.ridge_ai() > 4.0, "{}", g.name);
        }
        assert!(GpuArch::a100().ridge_ai() < GpuArch::mi250x_gcd().ridge_ai());
    }

    #[test]
    fn sector_divides_line() {
        for g in GpuArch::all() {
            assert_eq!(g.l1_line % g.l1_sector, 0);
            assert_eq!(g.l2_line % g.l2_sector, 0);
            assert!(g.l1_bytes % g.l1_line == 0);
        }
    }

    #[test]
    fn warp_capacity_sane() {
        let a = GpuArch::a100();
        assert_eq!(a.max_warps_per_sm(), 64);
        assert_eq!(GpuArch::mi250x_gcd().max_warps_per_sm(), 32);
        assert_eq!(GpuArch::pvc_stack().max_warps_per_sm(), 64);
    }
}
