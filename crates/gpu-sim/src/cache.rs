//! Sectored, set-associative cache model.
//!
//! Matches the structure GPU profilers expose: lines carry per-sector
//! valid/dirty bits, fills happen at sector granularity, LRU replacement
//! within a set. Two write policies cover the hierarchy:
//!
//! * GPU L1s are **write-through, no-write-allocate** for global stores;
//! * the device L2 is **write-back, write-allocate**, except that a write
//!   covering a whole sector allocates without fetching (which is why the
//!   full-row stores of the generated kernels reach the theoretical
//!   2-bytes-per-point minimum, §5.2.1).
//!
//! Every transaction to the next level is reported through a callback so
//! the hierarchy can be composed without materialising miss streams.

use serde::{Deserialize, Serialize};

/// Write policy of a cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WritePolicy {
    /// Stores pass to the next level immediately and do not allocate.
    ThroughNoAllocate,
    /// Stores allocate and mark sectors dirty; dirty sectors are written
    /// back on eviction (or flush).
    BackAllocate,
}

/// Geometry and policy of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub bytes: usize,
    /// Line size in bytes (tag granularity).
    pub line: usize,
    /// Sector size in bytes (fill granularity; `line % sector == 0`).
    pub sector: usize,
    /// Associativity (lines per set).
    pub assoc: usize,
    /// Write policy.
    pub write: WritePolicy,
}

impl CacheConfig {
    fn num_sets(&self) -> usize {
        let sets = self.bytes / (self.line * self.assoc);
        assert!(sets > 0, "cache smaller than one set");
        sets
    }
}

/// Byte counters of one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Transactions presented to this level.
    pub accesses: u64,
    /// Bytes requested of this level, rounded to touched sectors — the
    /// "data movement" a profiler reports for the level.
    pub requested_bytes: u64,
    /// Sector hits.
    pub hit_sectors: u64,
    /// Sector misses (fills from the next level).
    pub miss_sectors: u64,
    /// Bytes filled from the next level.
    pub fill_bytes: u64,
    /// Bytes written to the next level (write-through traffic or dirty
    /// write-backs).
    pub writeout_bytes: u64,
    /// Cache lines visited, counting one per distinct line per request —
    /// the "wavefronts" a GPU L1 serialises on (one line per cycle).
    pub line_visits: u64,
}

impl CacheStats {
    /// Sector hit rate in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hit_sectors + self.miss_sectors;
        if total == 0 {
            return 0.0;
        }
        self.hit_sectors as f64 / total as f64
    }

    /// Total bytes exchanged with the next level.
    pub fn next_level_bytes(&self) -> u64 {
        self.fill_bytes + self.writeout_bytes
    }

    /// Bytes the cache *delivers* at line granularity
    /// (`line_visits × line size`) — the bandwidth-relevant volume for a
    /// one-line-per-cycle data path.
    pub fn delivered_bytes(&self, line: usize) -> u64 {
        self.line_visits * line as u64
    }

    /// Accumulate another stats block (used to merge per-SM L1s).
    pub fn merge(&mut self, other: &CacheStats) {
        self.accesses += other.accesses;
        self.requested_bytes += other.requested_bytes;
        self.hit_sectors += other.hit_sectors;
        self.miss_sectors += other.miss_sectors;
        self.fill_bytes += other.fill_bytes;
        self.writeout_bytes += other.writeout_bytes;
        self.line_visits += other.line_visits;
    }

    /// Field-wise difference `self − earlier` of two monotone counter
    /// snapshots (`earlier` must be an older snapshot of the same cache).
    pub fn diff(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            accesses: self.accesses - earlier.accesses,
            requested_bytes: self.requested_bytes - earlier.requested_bytes,
            hit_sectors: self.hit_sectors - earlier.hit_sectors,
            miss_sectors: self.miss_sectors - earlier.miss_sectors,
            fill_bytes: self.fill_bytes - earlier.fill_bytes,
            writeout_bytes: self.writeout_bytes - earlier.writeout_bytes,
            line_visits: self.line_visits - earlier.line_visits,
        }
    }

    /// Add `delta` scaled by `k` — the fast-forward step of the wave-
    /// periodic simulation, which accounts `k` skipped periods that each
    /// provably contribute `delta`.
    pub fn add_scaled(&mut self, delta: &CacheStats, k: u64) {
        self.accesses += delta.accesses * k;
        self.requested_bytes += delta.requested_bytes * k;
        self.hit_sectors += delta.hit_sectors * k;
        self.miss_sectors += delta.miss_sectors * k;
        self.fill_bytes += delta.fill_bytes * k;
        self.writeout_bytes += delta.writeout_bytes * k;
        self.line_visits += delta.line_visits * k;
    }
}

#[derive(Debug, Clone)]
struct Line {
    tag: u64,
    valid: u32,
    dirty: u32,
    last_use: u64,
}

/// One cache level.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Vec<Line>>,
    clock: u64,
    sectors_per_line: u32,
    /// Most-recently-used line memo: skips the set walk when consecutive
    /// sectors land on the same line, which is the common case for the
    /// row-granular streams the kernels issue. Pure lookup acceleration —
    /// validated against the set contents on every use, so hit/miss
    /// accounting is identical with or without it.
    mru_line: u64,
    mru_set: usize,
    mru_way: usize,
    /// Running statistics.
    pub stats: CacheStats,
}

/// A transaction this level issues to the next one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NextLevel {
    /// Address of the sector.
    pub addr: u64,
    /// Bytes (always one sector).
    pub bytes: u32,
    /// True for write-backs / write-throughs; false for fills.
    pub is_write: bool,
}

impl Cache {
    /// Empty cache of the given geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(cfg.line.is_power_of_two() && cfg.sector.is_power_of_two());
        assert_eq!(cfg.line % cfg.sector, 0);
        assert!(cfg.assoc >= 1);
        let sets = cfg.num_sets();
        Cache {
            cfg,
            sets: vec![Vec::new(); sets],
            clock: 0,
            sectors_per_line: (cfg.line / cfg.sector) as u32,
            mru_line: u64::MAX,
            mru_set: 0,
            mru_way: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Present a read of `bytes` at `addr`; next-level transactions are
    /// reported through `next`.
    pub fn read(&mut self, addr: u64, bytes: u32, next: &mut impl FnMut(NextLevel)) {
        self.access(addr, bytes, false, next)
    }

    /// Present a write of `bytes` at `addr`.
    pub fn write(&mut self, addr: u64, bytes: u32, next: &mut impl FnMut(NextLevel)) {
        self.access(addr, bytes, true, next)
    }

    /// Present a batch of `(addr, bytes, is_write)` transactions in issue
    /// order — the replay entry point of the fast (block-class) simulation
    /// path. Exactly equivalent to calling [`Cache::read`]/[`Cache::write`]
    /// per element; batching keeps the MRU line memo hot across a whole
    /// compiled stream so same-line runs skip the per-access set walk.
    pub fn access_run(
        &mut self,
        run: impl IntoIterator<Item = (u64, u32, bool)>,
        next: &mut impl FnMut(NextLevel),
    ) {
        for (addr, bytes, is_write) in run {
            self.access(addr, bytes, is_write, next);
        }
    }

    /// Locate the way holding `tag` in `set_idx`, consulting the MRU memo
    /// first. The memo is only trusted after re-validating the tag — ways
    /// shift on `swap_remove` eviction — and tags are unique within a set,
    /// so a validated memo hit is exactly the line a linear walk would find.
    #[inline]
    fn find_way(&mut self, set_idx: usize, line_addr: u64, tag: u64) -> Option<usize> {
        if self.mru_line == line_addr
            && self.mru_set == set_idx
            && self.sets[set_idx]
                .get(self.mru_way)
                .is_some_and(|l| l.tag == tag)
        {
            return Some(self.mru_way);
        }
        let way = self.sets[set_idx].iter().position(|l| l.tag == tag)?;
        self.mru_line = line_addr;
        self.mru_set = set_idx;
        self.mru_way = way;
        Some(way)
    }

    fn access(&mut self, addr: u64, bytes: u32, is_write: bool, next: &mut impl FnMut(NextLevel)) {
        debug_assert!(bytes > 0);
        self.stats.accesses += 1;
        let sector = self.cfg.sector as u64;
        let line = self.cfg.line as u64;
        let mut s = addr & !(sector - 1);
        let end = addr + bytes as u64;
        let mut last_line = u64::MAX;
        while s < end {
            let this_line = s & !(line - 1);
            if this_line != last_line {
                self.stats.line_visits += 1;
                last_line = this_line;
            }
            // Full coverage means the write overwrites the whole sector,
            // permitting allocate-without-fetch.
            let full = is_write && s >= addr && s + sector <= end;
            self.touch_sector(s, is_write, full, next);
            s += sector;
        }
    }

    fn touch_sector(
        &mut self,
        sector_addr: u64,
        is_write: bool,
        full_cover: bool,
        next: &mut impl FnMut(NextLevel),
    ) {
        let cfg = self.cfg;
        self.stats.requested_bytes += cfg.sector as u64;
        // The recency clock ticks per sector transaction, so `last_use`
        // values are globally unique and LRU replacement never ties —
        // which makes every decision independent of within-set storage
        // order (a property the wave-periodic fast-forward relies on).
        self.clock += 1;
        let line_addr = sector_addr & !(cfg.line as u64 - 1);
        let sector_idx = ((sector_addr - line_addr) / cfg.sector as u64) as u32;
        let bit = 1u32 << sector_idx;
        let set_idx = ((line_addr / cfg.line as u64) as usize) % self.sets.len();
        let tag = line_addr / cfg.line as u64;
        let clock = self.clock;

        if is_write && cfg.write == WritePolicy::ThroughNoAllocate {
            // Write-through: forward, update in place if present.
            next(NextLevel {
                addr: sector_addr,
                bytes: cfg.sector as u32,
                is_write: true,
            });
            self.stats.writeout_bytes += cfg.sector as u64;
            if let Some(way) = self.find_way(set_idx, line_addr, tag) {
                self.sets[set_idx][way].last_use = clock;
                // sector contents refreshed; validity unchanged
            }
            return;
        }

        if let Some(way) = self.find_way(set_idx, line_addr, tag) {
            let l = &mut self.sets[set_idx][way];
            l.last_use = clock;
            if l.valid & bit != 0 {
                self.stats.hit_sectors += 1;
                if is_write {
                    l.dirty |= bit;
                }
                return;
            }
            // line present, sector not resident
            self.stats.miss_sectors += 1;
            if is_write && full_cover {
                l.valid |= bit;
                l.dirty |= bit;
                return;
            }
            next(NextLevel {
                addr: sector_addr,
                bytes: cfg.sector as u32,
                is_write: false,
            });
            self.stats.fill_bytes += cfg.sector as u64;
            let l = &mut self.sets[set_idx][way];
            l.valid |= bit;
            if is_write {
                l.dirty |= bit;
            }
            return;
        }

        // Line miss: allocate, possibly evicting LRU.
        self.stats.miss_sectors += 1;
        if self.sets[set_idx].len() >= cfg.assoc {
            let lru = self.sets[set_idx]
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.last_use)
                .map(|(i, _)| i)
                .expect("non-empty set");
            let victim = self.sets[set_idx].swap_remove(lru);
            Self::write_back_line(&cfg, self.sectors_per_line, &victim, &mut self.stats, next);
        }
        let mut line = Line {
            tag,
            valid: 0,
            dirty: 0,
            last_use: clock,
        };
        if is_write && full_cover {
            line.valid |= bit;
            line.dirty |= bit;
        } else {
            next(NextLevel {
                addr: sector_addr,
                bytes: cfg.sector as u32,
                is_write: false,
            });
            self.stats.fill_bytes += cfg.sector as u64;
            line.valid |= bit;
            if is_write {
                line.dirty |= bit;
            }
        }
        self.sets[set_idx].push(line);
        self.mru_line = line_addr;
        self.mru_set = set_idx;
        self.mru_way = self.sets[set_idx].len() - 1;
    }

    fn write_back_line(
        cfg: &CacheConfig,
        sectors_per_line: u32,
        line: &Line,
        stats: &mut CacheStats,
        next: &mut impl FnMut(NextLevel),
    ) {
        if line.dirty == 0 {
            return;
        }
        let base = line.tag * cfg.line as u64;
        for s in 0..sectors_per_line {
            if line.dirty & (1 << s) != 0 {
                next(NextLevel {
                    addr: base + s as u64 * cfg.sector as u64,
                    bytes: cfg.sector as u32,
                    is_write: true,
                });
                stats.writeout_bytes += cfg.sector as u64;
            }
        }
    }

    /// Write back every dirty sector (end-of-kernel accounting) and clear
    /// the contents.
    ///
    /// Each set drains in ascending tag order, so the write-back stream
    /// (and therefore the DRAM page accounting downstream) depends only on
    /// the cached contents, not on the incidental within-set storage order
    /// left behind by `swap_remove` eviction churn. That invariance is
    /// what lets the wave-periodic fast-forward compare states as
    /// LRU-ordered multisets.
    pub fn flush(&mut self, next: &mut impl FnMut(NextLevel)) {
        let cfg = self.cfg;
        let spl = self.sectors_per_line;
        for set in &mut self.sets {
            let mut lines = std::mem::take(set);
            lines.sort_unstable_by_key(|l| l.tag);
            for line in &lines {
                Self::write_back_line(&cfg, spl, line, &mut self.stats, next);
            }
        }
        self.mru_line = u64::MAX;
    }

    /// Drop contents without writing back (between independent kernels).
    pub fn invalidate(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
        self.mru_line = u64::MAX;
    }

    /// Translate the cached contents by `shift_lines` cache lines.
    ///
    /// Because the tag is `addr / line` and the set index is `tag % sets`,
    /// adding a constant to every tag moves whole sets together: the set
    /// vector rotates by `shift_lines` positions while every within-set
    /// order, valid/dirty mask, and LRU timestamp is preserved. The result
    /// is exactly the state a from-scratch simulation of the translated
    /// access stream would have reached — the fast-forward step of the
    /// wave-periodic simulation. Statistics are left untouched (the caller
    /// scales them) and the MRU memo is dropped (it is a pure lookup
    /// accelerator).
    pub(crate) fn translate(&mut self, shift_lines: i64) {
        let n = self.sets.len();
        let rot = shift_lines.rem_euclid(n as i64) as usize;
        self.sets.rotate_right(rot);
        for set in &mut self.sets {
            for line in set {
                line.tag = line.tag.wrapping_add_signed(shift_lines);
            }
        }
        self.mru_line = u64::MAX;
    }

    /// Is `self` the state a simulation would reach from `earlier`'s input
    /// stream translated by `shift_lines` cache lines?
    ///
    /// Compares each (rotated) set pair as an LRU-ordered multiset: same
    /// number of lines, and when both are sorted by recency the sequences
    /// agree on shifted tag, valid mask, and dirty mask. Absolute clock
    /// values and within-set storage order are deliberately ignored —
    /// storage order is an artifact of `swap_remove` eviction churn that
    /// never influences behavior: the recency clock ticks per sector so
    /// `last_use` values are globally unique (the defensive tie check
    /// below rejects anything else), making the LRU victim a strict
    /// minimum; tag lookup is position-independent; and `flush` drains in
    /// tag order. Under these invariants, two states that pass this check
    /// respond to any future translated input pair with identical
    /// statistics and translated output streams, which is what licenses
    /// the wave-periodic fast-forward.
    pub(crate) fn equiv_translated(&self, earlier: &Cache, shift_lines: i64) -> bool {
        let n = self.sets.len();
        debug_assert_eq!(n, earlier.sets.len());
        let rot = shift_lines.rem_euclid(n as i64) as usize;
        let mut ord_a: Vec<usize> = Vec::new();
        let mut ord_b: Vec<usize> = Vec::new();
        for (i, a) in earlier.sets.iter().enumerate() {
            let b = &self.sets[(i + rot) % n];
            if a.len() != b.len() {
                return false;
            }
            ord_a.clear();
            ord_a.extend(0..a.len());
            ord_a.sort_unstable_by_key(|&w| a[w].last_use);
            ord_b.clear();
            ord_b.extend(0..b.len());
            ord_b.sort_unstable_by_key(|&w| b[w].last_use);
            for (r, (&wa, &wb)) in ord_a.iter().zip(&ord_b).enumerate() {
                let (la, lb) = (&a[wa], &b[wb]);
                if lb.tag != la.tag.wrapping_add_signed(shift_lines)
                    || la.valid != lb.valid
                    || la.dirty != lb.dirty
                {
                    return false;
                }
                // A last_use tie would make eviction depend on storage
                // order, invalidating the multiset comparison; the
                // per-sector clock makes ties impossible, but verify.
                if r > 0
                    && (a[ord_a[r - 1]].last_use == la.last_use
                        || b[ord_b[r - 1]].last_use == lb.last_use)
                {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l1_cfg() -> CacheConfig {
        CacheConfig {
            bytes: 4096,
            line: 128,
            sector: 32,
            assoc: 4,
            write: WritePolicy::ThroughNoAllocate,
        }
    }

    fn l2_cfg() -> CacheConfig {
        CacheConfig {
            bytes: 4096,
            line: 128,
            sector: 32,
            assoc: 4,
            write: WritePolicy::BackAllocate,
        }
    }

    fn collect(c: &mut Cache, addr: u64, bytes: u32, is_write: bool) -> Vec<NextLevel> {
        let mut out = Vec::new();
        if is_write {
            c.write(addr, bytes, &mut |t| out.push(t));
        } else {
            c.read(addr, bytes, &mut |t| out.push(t));
        }
        out
    }

    #[test]
    fn cold_read_fills_per_sector() {
        let mut c = Cache::new(l2_cfg());
        let t = collect(&mut c, 0, 128, false);
        assert_eq!(t.len(), 4);
        assert!(t.iter().all(|x| !x.is_write && x.bytes == 32));
        assert_eq!(c.stats.miss_sectors, 4);
        assert_eq!(c.stats.requested_bytes, 128);
    }

    #[test]
    fn warm_read_hits() {
        let mut c = Cache::new(l2_cfg());
        collect(&mut c, 0, 128, false);
        let t = collect(&mut c, 0, 128, false);
        assert!(t.is_empty());
        assert_eq!(c.stats.hit_sectors, 4);
    }

    #[test]
    fn unaligned_read_touches_extra_sector() {
        let mut c = Cache::new(l2_cfg());
        // 64 bytes starting at 16 spans sectors 0,16..etc: [0,32),[32,64),[64,96)
        let t = collect(&mut c, 16, 64, false);
        assert_eq!(t.len(), 3);
        assert_eq!(c.stats.requested_bytes, 96);
    }

    #[test]
    fn full_sector_write_allocates_without_fetch() {
        let mut c = Cache::new(l2_cfg());
        let t = collect(&mut c, 0, 128, true);
        assert!(t.is_empty(), "no fetch on full-sector store");
        assert_eq!(c.stats.fill_bytes, 0);
        // flush writes the dirty sectors back
        let mut wb = Vec::new();
        c.flush(&mut |t| wb.push(t));
        assert_eq!(wb.len(), 4);
        assert!(wb.iter().all(|x| x.is_write));
    }

    #[test]
    fn partial_sector_write_fetches_then_dirties() {
        let mut c = Cache::new(l2_cfg());
        let t = collect(&mut c, 8, 8, true);
        assert_eq!(t.len(), 1);
        assert!(!t[0].is_write, "partial write must fetch");
        let mut wb = Vec::new();
        c.flush(&mut |t| wb.push(t));
        assert_eq!(wb.len(), 1);
        assert_eq!(wb[0].bytes, 32);
    }

    #[test]
    fn write_through_forwards_and_does_not_allocate() {
        let mut c = Cache::new(l1_cfg());
        let t = collect(&mut c, 0, 64, true);
        assert_eq!(t.len(), 2);
        assert!(t.iter().all(|x| x.is_write));
        assert_eq!(c.stats.writeout_bytes, 64);
        // subsequent read misses (store did not allocate)
        let t = collect(&mut c, 0, 32, false);
        assert_eq!(t.len(), 1);
        assert!(!t[0].is_write);
    }

    #[test]
    fn lru_eviction_and_capacity() {
        // 4096B, 128B lines, assoc 4 -> 8 sets; lines mapping to set 0 are
        // 1KB apart
        let mut c = Cache::new(l2_cfg());
        for i in 0..5u64 {
            collect(&mut c, i * 1024, 32, false);
        }
        // line 0 was LRU and must have been evicted: rereading it misses
        let before = c.stats.miss_sectors;
        collect(&mut c, 0, 32, false);
        assert_eq!(c.stats.miss_sectors, before + 1);
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let mut c = Cache::new(l2_cfg());
        let mut wb = Vec::new();
        c.write(0, 32, &mut |t| wb.push(t));
        for i in 1..5u64 {
            c.read(i * 1024, 32, &mut |t| wb.push(t));
        }
        assert!(
            wb.iter().any(|t| t.is_write && t.addr == 0),
            "evicting the dirty line must write it back: {wb:?}"
        );
    }

    #[test]
    fn hit_rate_and_merge() {
        let mut c = Cache::new(l2_cfg());
        collect(&mut c, 0, 32, false);
        collect(&mut c, 0, 32, false);
        assert!((c.stats.hit_rate() - 0.5).abs() < 1e-12);
        let mut total = CacheStats::default();
        total.merge(&c.stats);
        total.merge(&c.stats);
        assert_eq!(total.accesses, 2 * c.stats.accesses);
    }

    #[test]
    fn invalidate_drops_without_writeback() {
        let mut c = Cache::new(l2_cfg());
        collect(&mut c, 0, 32, true);
        c.invalidate();
        let mut wb = Vec::new();
        c.flush(&mut |t| wb.push(t));
        assert!(wb.is_empty());
    }

    #[test]
    fn non_pow2_set_count_supported() {
        // 192 KB / (128 B x 8) = 192 sets, as on the A100 L1
        let mut c = Cache::new(CacheConfig {
            bytes: 192 * 1024,
            line: 128,
            sector: 32,
            assoc: 8,
            write: WritePolicy::BackAllocate,
        });
        collect(&mut c, 0, 32, false);
        collect(&mut c, 0, 32, false);
        assert_eq!(c.stats.hit_sectors, 1);
    }

    #[test]
    fn mru_memo_survives_swap_remove_eviction() {
        // assoc-4 set; lines to set 0 are 1 KiB apart. Fill ways 0..3 with
        // L0..L3, refresh L0 so L1 is LRU, then allocate L4: evicting L1
        // swap_removes way 1, moving L3 there — any memo pointing at L3's
        // old way is now stale. Re-reading L3 must still hit.
        let mut c = Cache::new(l2_cfg());
        for i in 0..4u64 {
            collect(&mut c, i * 1024, 32, false);
        }
        collect(&mut c, 0, 32, false); // L0 refreshed; memoised
        collect(&mut c, 4 * 1024, 32, false); // evicts L1, relocates L3
        let hits = c.stats.hit_sectors;
        collect(&mut c, 3 * 1024, 32, false);
        assert_eq!(c.stats.hit_sectors, hits + 1, "relocated line must hit");
    }

    #[test]
    fn access_run_equals_individual_accesses() {
        let trace: Vec<(u64, u32, bool)> = vec![
            (0, 128, false),
            (32, 32, true),
            (1024, 64, false),
            (0, 256, false),
            (8, 8, true),
            (5 * 1024, 32, false),
        ];
        for cfg in [l1_cfg(), l2_cfg()] {
            let mut a = Cache::new(cfg);
            let mut a_next = Vec::new();
            a.access_run(trace.iter().copied(), &mut |t| a_next.push(t));
            let mut b = Cache::new(cfg);
            let mut b_next = Vec::new();
            for &(addr, bytes, is_write) in &trace {
                if is_write {
                    b.write(addr, bytes, &mut |t| b_next.push(t));
                } else {
                    b.read(addr, bytes, &mut |t| b_next.push(t));
                }
            }
            assert_eq!(a.stats, b.stats);
            assert_eq!(a_next, b_next);
        }
    }

    #[test]
    #[should_panic(expected = "smaller than one set")]
    fn degenerate_cache_rejected() {
        let _ = Cache::new(CacheConfig {
            bytes: 64,
            line: 128,
            sector: 32,
            assoc: 4,
            write: WritePolicy::BackAllocate,
        });
    }
}
