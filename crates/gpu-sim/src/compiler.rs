//! Lowering kernels through a compiler model: register demand, spills,
//! dynamic instruction counts.
//!
//! This is where the programming models differentiate. The same kernel
//! source (IR or scalar tap list) passes through the
//! [`CompilerModel`] of the `(GPU, model)` pair, producing the
//! register/instruction picture that drives occupancy, spill traffic and
//! issue time — the mechanisms behind the CUDA-vs-SYCL gaps of §5.

use serde::{Deserialize, Serialize};

use brick_vm::KernelSpec;

use crate::arch::GpuArch;
use crate::progmodel::CompilerModel;

/// Fixed per-thread instruction overhead (prologue, bounds, block-index
/// arithmetic).
const THREAD_OVERHEAD_INSTRS: f64 = 15.0;

/// Average dynamic uses of a spilled value (1 store + `uses` reloads).
const SPILL_USES: u64 = 2;

/// A kernel lowered for one `(architecture, programming model)` pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledKernel {
    /// Kernel name.
    pub name: String,
    /// 32-bit architectural registers per thread (doubles take two).
    pub regs_per_thread: u32,
    /// Threads per launch block.
    pub threads_per_block: u32,
    /// Warps (SIMD groups) per launch block.
    pub warps_per_block: u32,
    /// Dynamic warp-instructions per block.
    pub instrs_per_block: f64,
    /// Executed lane FLOPs per block (FMA = 2).
    pub exec_flops_per_block: u64,
    /// Local-memory bytes read per block due to register spills.
    pub spill_read_bytes_per_block: u64,
    /// Local-memory bytes written per block due to register spills.
    pub spill_write_bytes_per_block: u64,
}

impl CompiledKernel {
    /// Total spill traffic per block.
    pub fn spill_bytes_per_block(&self) -> u64 {
        self.spill_read_bytes_per_block + self.spill_write_bytes_per_block
    }

    /// True if the compiler had to spill registers.
    pub fn spills(&self) -> bool {
        self.spill_bytes_per_block() > 0
    }
}

/// Lower `spec` for `arch` under `cm`.
pub fn compile(spec: &KernelSpec, arch: &GpuArch, cm: &CompilerModel) -> CompiledKernel {
    match spec {
        KernelSpec::Vector(k) => {
            let w = k.width as u32;
            // Vector folding: a row wider than the hardware vector maps to
            // `fold` SIMD groups per block, each executing every IR vector
            // op on its slice of the row.
            let fold = (w / arch.simd_width as u32).max(1);
            // A vector register is one f64 per lane = 2 architectural
            // 32-bit registers per thread.
            let demand =
                (2.0 * k.num_regs as f64 * cm.reg_inflation).ceil() as u32 + cm.reg_overhead;
            let regs = demand.min(arch.max_regs_per_thread);
            let spilled_f64 =
                demand.saturating_sub(cm.spill_ceiling.min(arch.max_regs_per_thread)) as u64 / 2;
            // Spill traffic: each spilled value is stored once and
            // reloaded SPILL_USES times per block, lane-wide.
            let spill_write = spilled_f64 * 8 * w as u64;
            let spill_read = spilled_f64 * 8 * w as u64 * SPILL_USES;

            let s = &k.stats;
            // One ShiftX = two shuffle primitives (up+down halves) plus a
            // lane select.
            let shift_instrs = s.shifts as f64 * (2.0 * cm.shuffle_instrs + 1.0);
            let mem_instrs = (s.loads + s.stores) as f64 * (1.0 + cm.addr_instrs_per_access * 0.5);
            let alu_instrs = (s.fmas + s.adds + s.muls) as f64;
            let spill_instrs = (spilled_f64 * (1 + SPILL_USES)) as f64;
            // Each warp issues the full op stream over its row slice, so
            // dynamic warp-instructions scale with the fold factor.
            let instrs = (shift_instrs + mem_instrs + alu_instrs + spill_instrs) * fold as f64
                + THREAD_OVERHEAD_INSTRS;

            CompiledKernel {
                name: k.name.clone(),
                regs_per_thread: regs,
                threads_per_block: w,
                warps_per_block: fold,
                instrs_per_block: instrs,
                exec_flops_per_block: s.flops() * w as u64,
                spill_read_bytes_per_block: spill_read,
                spill_write_bytes_per_block: spill_write,
            }
        }
        KernelSpec::Scalar(k) => {
            let block = k.block;
            let threads = block.volume() as u32;
            let warps = (block.volume() / block.bx) as u32;
            let points = k.points() as f64;
            let classes = k.num_classes() as f64;

            // Live f64 values per thread: the running class sums plus, for
            // a compiler without good scheduling/CSE, a large fraction of
            // the gathered taps held live simultaneously.
            let live_factor = if cm.scalar_cse { 0.15 } else { 0.75 };
            let live_f64 = classes + live_factor * points + 6.0;
            let demand = (2.0 * live_f64 * cm.reg_inflation).ceil() as u32 + cm.reg_overhead;
            let regs = demand.min(arch.max_regs_per_thread);
            let spilled_f64 =
                demand.saturating_sub(cm.spill_ceiling.min(arch.max_regs_per_thread)) as u64 / 2;
            let spill_write = spilled_f64 * 8 * threads as u64;
            let spill_read = spilled_f64 * 8 * threads as u64 * SPILL_USES;

            // Per-thread dynamic instructions.
            let per_thread = points * (1.0 + cm.addr_instrs_per_access) // loads + addressing
                + (points + classes)                                    // FMA/add chain
                + 1.0 + cm.addr_instrs_per_access                       // store
                + spilled_f64 as f64 * (1 + SPILL_USES) as f64
                + THREAD_OVERHEAD_INSTRS;
            let instrs = per_thread * threads as f64 / block.bx as f64;

            // Executed FLOPs per point for the Fig. 2 schedule: in-class
            // adds fused into FMAs where possible ≈ points + classes.
            let flops_per_point = (k.points() + k.num_classes()) as u64;

            CompiledKernel {
                name: k.name.clone(),
                regs_per_thread: regs,
                threads_per_block: threads,
                warps_per_block: warps,
                instrs_per_block: instrs,
                exec_flops_per_block: flops_per_point * block.volume() as u64,
                spill_read_bytes_per_block: spill_read,
                spill_write_bytes_per_block: spill_write,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::GpuKind;
    use crate::progmodel::ProgModel;
    use brick_codegen::{generate, CodegenOptions, LayoutKind};
    use brick_dsl::shape::StencilShape;
    use brick_vm::ScalarKernel;

    fn vector_spec(shape: StencilShape, width: usize) -> KernelSpec {
        let st = shape.stencil();
        let b = st.default_bindings();
        KernelSpec::Vector(
            generate(&st, &b, LayoutKind::Brick, width, CodegenOptions::default()).unwrap(),
        )
    }

    fn scalar_spec(shape: StencilShape, width: usize) -> KernelSpec {
        let st = shape.stencil();
        let b = st.default_bindings();
        KernelSpec::Scalar(ScalarKernel::new(&st, &b, LayoutKind::Array, width).unwrap())
    }

    fn cm(gpu: GpuKind, m: ProgModel) -> CompilerModel {
        CompilerModel::resolve(gpu, m).unwrap()
    }

    #[test]
    fn vector_kernel_block_is_one_warp() {
        let arch = GpuArch::a100();
        let c = compile(
            &vector_spec(StencilShape::star(1), 32),
            &arch,
            &cm(GpuKind::A100, ProgModel::Cuda),
        );
        assert_eq!(c.threads_per_block, 32);
        assert_eq!(c.warps_per_block, 1);
        assert!(!c.spills());
    }

    #[test]
    fn scalar_kernel_block_is_4x4xw() {
        let arch = GpuArch::a100();
        let c = compile(
            &scalar_spec(StencilShape::star(1), 32),
            &arch,
            &cm(GpuKind::A100, ProgModel::Cuda),
        );
        assert_eq!(c.threads_per_block, 512);
        assert_eq!(c.warps_per_block, 16);
    }

    #[test]
    fn sycl_scalar_125pt_spills_cuda_does_not() {
        let arch = GpuArch::a100();
        let spec = scalar_spec(StencilShape::cube(2), 32);
        let cuda = compile(&spec, &arch, &cm(GpuKind::A100, ProgModel::Cuda));
        let sycl = compile(&spec, &arch, &cm(GpuKind::A100, ProgModel::Sycl));
        assert!(!cuda.spills(), "CUDA 125pt regs {}", cuda.regs_per_thread);
        assert!(sycl.spills(), "SYCL 125pt regs {}", sycl.regs_per_thread);
        assert!(sycl.instrs_per_block > cuda.instrs_per_block);
    }

    #[test]
    fn sycl_uses_more_registers_and_instructions() {
        let arch = GpuArch::a100();
        let spec = vector_spec(StencilShape::star(2), 32);
        let cuda = compile(&spec, &arch, &cm(GpuKind::A100, ProgModel::Cuda));
        let sycl = compile(&spec, &arch, &cm(GpuKind::A100, ProgModel::Sycl));
        assert!(sycl.regs_per_thread > cuda.regs_per_thread);
        assert!(sycl.instrs_per_block > cuda.instrs_per_block);
    }

    #[test]
    fn hip_on_a100_compiles_identically_to_cuda() {
        let arch = GpuArch::a100();
        for spec in [
            vector_spec(StencilShape::cube(1), 32),
            scalar_spec(StencilShape::star(3), 32),
        ] {
            let cuda = compile(&spec, &arch, &cm(GpuKind::A100, ProgModel::Cuda));
            let hip = compile(&spec, &arch, &cm(GpuKind::A100, ProgModel::Hip));
            assert_eq!(cuda, hip);
        }
    }

    #[test]
    fn scatter_kernel_avoids_spilling_where_gather_spills() {
        use brick_codegen::Strategy;
        let st = StencilShape::cube(2).stencil();
        let b = st.default_bindings();
        let arch = GpuArch::a100();
        let model = cm(GpuKind::A100, ProgModel::Cuda);
        let gather = generate(
            &st,
            &b,
            LayoutKind::Brick,
            32,
            CodegenOptions {
                strategy: Strategy::Gather,
                ..Default::default()
            },
        )
        .unwrap();
        let auto = generate(&st, &b, LayoutKind::Brick, 32, CodegenOptions::default()).unwrap();
        let cg = compile(&KernelSpec::Vector(gather), &arch, &model);
        let ca = compile(&KernelSpec::Vector(auto), &arch, &model);
        assert!(cg.spills());
        assert!(!ca.spills());
    }

    #[test]
    fn exec_flops_scale_with_block_volume() {
        let arch = GpuArch::mi250x_gcd();
        let c = compile(
            &scalar_spec(StencilShape::star(1), 64),
            &arch,
            &cm(GpuKind::Mi250xGcd, ProgModel::Hip),
        );
        // (7 points + 2 classes) * 4*4*64 points
        assert_eq!(c.exec_flops_per_block, 9 * 1024);
    }
}
