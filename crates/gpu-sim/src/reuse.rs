//! Reuse-distance (LRU stack-distance) analysis of kernel address
//! streams.
//!
//! The study's cache behaviour — why the MI250X's 8 MB L2 thrashes on
//! tile halos that the A100's 40 MB absorbs, why bricks keep their
//! working set compact — is a statement about *reuse distances*: how many
//! distinct cache lines are touched between consecutive uses of the same
//! line. This module computes the exact LRU stack-distance histogram of a
//! trace in `O(log n)` per access (hash map + Fenwick tree over access
//! time) and derives the miss-ratio curve: for any LRU cache of `C`
//! lines, the miss ratio is the fraction of accesses with distance ≥ `C`
//! plus the cold misses.
//!
//! [`ReuseAnalyzer`] implements [`TraceSink`], so any kernel the VM can
//! trace can be analysed directly.

use brick_vm::TraceSink;

/// Power-of-two histogram of reuse distances, plus cold misses.
#[derive(Debug, Clone)]
pub struct ReuseProfile {
    line: usize,
    /// `buckets[k]` counts accesses whose LRU stack *position*
    /// (distance + 1) lies in `[2^k, 2^(k+1))` lines — an access hits a
    /// cache of `C` lines iff its position ≤ `C`.
    pub buckets: Vec<u64>,
    /// First-touch (compulsory) accesses.
    pub cold: u64,
    /// Total line-granular accesses.
    pub total: u64,
    /// Distinct lines touched (the footprint).
    pub footprint_lines: u64,
}

impl ReuseProfile {
    /// Line size the profile was collected at.
    pub fn line_bytes(&self) -> usize {
        self.line
    }

    /// Footprint in bytes.
    pub fn footprint_bytes(&self) -> u64 {
        self.footprint_lines * self.line as u64
    }

    /// Miss ratio of an LRU cache of `cache_bytes` (fully-associative
    /// model: an access misses iff its stack distance ≥ capacity in
    /// lines; cold misses always miss).
    pub fn miss_ratio(&self, cache_bytes: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let cap_lines = (cache_bytes / self.line).max(1) as u64;
        let mut misses = self.cold;
        for (k, &count) in self.buckets.iter().enumerate() {
            let lo = 1u64 << k; // smallest stack position in the bucket
            let hi = (1u64 << (k + 1)) - 1;
            if lo > cap_lines {
                misses += count;
            } else if hi > cap_lines {
                // split bucket: assume uniform within the bucket
                let span = (hi - lo + 1) as f64;
                let missing = (hi - cap_lines) as f64;
                misses += (count as f64 * missing / span).round() as u64;
            }
        }
        misses as f64 / self.total as f64
    }

    /// Miss-ratio curve sampled at the given cache sizes.
    pub fn mrc(&self, cache_sizes: &[usize]) -> Vec<(usize, f64)> {
        cache_sizes
            .iter()
            .map(|&c| (c, self.miss_ratio(c)))
            .collect()
    }
}

/// Fenwick (binary-indexed) tree over access timestamps.
struct Fenwick {
    tree: Vec<u64>,
}

impl Fenwick {
    fn new(n: usize) -> Self {
        Fenwick {
            tree: vec![0; n + 1],
        }
    }

    fn grow(&mut self, n: usize) {
        if n + 1 > self.tree.len() {
            // rebuild: Fenwick trees don't grow in place cheaply; double
            let mut bigger = Fenwick::new((n + 1).next_power_of_two());
            for i in 1..self.tree.len() {
                let v = self.range_point(i);
                if v > 0 {
                    bigger.add(i, v as i64);
                }
            }
            *self = bigger;
        }
    }

    fn range_point(&self, i: usize) -> u64 {
        self.prefix(i) - self.prefix(i - 1)
    }

    fn add(&mut self, mut i: usize, delta: i64) {
        while i < self.tree.len() {
            self.tree[i] = (self.tree[i] as i64 + delta) as u64;
            i += i & i.wrapping_neg();
        }
    }

    fn prefix(&self, mut i: usize) -> u64 {
        let mut s = 0;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }
}

/// Exact LRU stack-distance analyser at cache-line granularity.
pub struct ReuseAnalyzer {
    line: usize,
    clock: usize,
    last_use: std::collections::HashMap<u64, usize>,
    live: Fenwick,
    buckets: Vec<u64>,
    cold: u64,
    total: u64,
}

impl ReuseAnalyzer {
    /// Analyser at the given line granularity (e.g. the L2 line size).
    pub fn new(line_bytes: usize) -> Self {
        assert!(line_bytes.is_power_of_two());
        ReuseAnalyzer {
            line: line_bytes,
            clock: 0,
            last_use: std::collections::HashMap::new(),
            live: Fenwick::new(1024),
            buckets: vec![0; 40],
            cold: 0,
            total: 0,
        }
    }

    fn touch_line(&mut self, line_id: u64) {
        self.clock += 1;
        self.total += 1;
        self.live.grow(self.clock + 1);
        match self.last_use.insert(line_id, self.clock) {
            None => {
                self.cold += 1;
            }
            Some(prev) => {
                // distinct lines touched in (prev, now) = stack distance
                let dist = self.live.prefix(self.clock) - self.live.prefix(prev);
                let position = dist + 1; // hit iff capacity >= position
                let bucket = (64 - position.leading_zeros() as usize - 1).min(39);
                self.buckets[bucket] += 1;
                // the line moves from position `prev` to the top
                self.live.add(prev, -1);
            }
        }
        self.live.add(self.clock, 1);
    }

    fn access(&mut self, addr: u64, bytes: u32) {
        let line = self.line as u64;
        let mut a = addr & !(line - 1);
        let end = addr + bytes as u64;
        while a < end {
            self.touch_line(a / line);
            a += line;
        }
    }

    /// Finish and return the profile.
    pub fn profile(self) -> ReuseProfile {
        ReuseProfile {
            line: self.line,
            footprint_lines: self.last_use.len() as u64,
            buckets: self.buckets,
            cold: self.cold,
            total: self.total,
        }
    }
}

impl TraceSink for ReuseAnalyzer {
    fn load(&mut self, addr: u64, bytes: u32) {
        self.access(addr, bytes);
    }

    fn store(&mut self, addr: u64, bytes: u32) {
        self.access(addr, bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(analyzer: &mut ReuseAnalyzer, lines: &[u64]) {
        for &l in lines {
            analyzer.load(l * 64, 64);
        }
    }

    #[test]
    fn all_cold_stream() {
        let mut a = ReuseAnalyzer::new(64);
        feed(&mut a, &[0, 1, 2, 3]);
        let p = a.profile();
        assert_eq!(p.cold, 4);
        assert_eq!(p.total, 4);
        assert_eq!(p.footprint_lines, 4);
        assert_eq!(p.miss_ratio(1 << 20), 1.0); // nothing reused
    }

    #[test]
    fn immediate_reuse_has_distance_zero() {
        let mut a = ReuseAnalyzer::new(64);
        feed(&mut a, &[0, 0, 0]);
        let p = a.profile();
        assert_eq!(p.cold, 1);
        assert_eq!(p.buckets[0], 2);
        // any cache ≥ 1 line hits those two accesses
        assert!((p.miss_ratio(64) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn cyclic_stream_distance_equals_cycle_length() {
        // touching 8 lines round-robin twice: reuse distance 7..8 each
        let cycle: Vec<u64> = (0..8).collect();
        let mut a = ReuseAnalyzer::new(64);
        feed(&mut a, &cycle);
        feed(&mut a, &cycle);
        let p = a.profile();
        assert_eq!(p.cold, 8);
        // positions of 8 land in bucket 3
        let reused: u64 = p.buckets.iter().sum();
        assert_eq!(reused, 8);
        // a cache of 8 lines captures the cycle; 4 lines does not
        assert!(p.miss_ratio(8 * 64) < p.miss_ratio(4 * 64));
        assert!((p.miss_ratio(16 * 64) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mrc_is_monotone_nonincreasing() {
        let mut a = ReuseAnalyzer::new(64);
        // pseudo-random-ish deterministic stream
        let stream: Vec<u64> = (0..2000u64).map(|i| (i * 37) % 256).collect();
        feed(&mut a, &stream);
        let p = a.profile();
        let sizes: Vec<usize> = (0..12).map(|k| 64 << k).collect();
        let mrc = p.mrc(&sizes);
        for w in mrc.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-12, "{mrc:?}");
        }
        // infinite cache leaves only cold misses
        let inf = p.miss_ratio(usize::MAX / 2);
        assert!((inf - p.cold as f64 / p.total as f64).abs() < 1e-9);
    }

    #[test]
    fn works_as_trace_sink_on_real_kernel() {
        use brick_codegen::{generate, CodegenOptions, LayoutKind};
        use brick_core::{BrickDecomp, BrickDims, BrickNav, BrickOrdering};
        use brick_dsl::shape::StencilShape;
        use brick_vm::{KernelSpec, TraceGeometry};
        use std::sync::Arc;

        let st = StencilShape::star(1).stencil();
        let b = st.default_bindings();
        let spec = KernelSpec::Vector(
            generate(&st, &b, LayoutKind::Brick, 16, CodegenOptions::default()).unwrap(),
        );
        let d = Arc::new(BrickDecomp::new(
            (32, 32, 32),
            BrickDims::for_simd_width(16),
            1,
            BrickOrdering::Lexicographic,
        ));
        let geom = TraceGeometry::brick(Arc::new(BrickNav::new(d)));
        let mut analyzer = ReuseAnalyzer::new(128);
        for i in 0..geom.num_blocks() {
            spec.trace_block(&geom, i, &mut analyzer).unwrap();
        }
        let p = analyzer.profile();
        assert!(p.total > 0);
        // with a cache larger than the footprint only cold misses remain,
        // and a stencil trace reuses at least some halo rows
        let cold_ratio = p.cold as f64 / p.total as f64;
        assert!((p.miss_ratio(64 << 20) - cold_ratio).abs() < 1e-9);
        assert!(cold_ratio < 0.9);
        // footprint covers at least the interior of both grids
        assert!(p.footprint_bytes() >= 2 * 32 * 32 * 32 * 8);
    }
}
