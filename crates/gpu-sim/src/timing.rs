//! Occupancy and kernel-time models.
//!
//! Time follows the hierarchical Roofline the paper evaluates against
//! (§4.4): a kernel is limited by the slowest of the DRAM, L2 and L1
//! byte streams, the FP64 pipes, and instruction issue — with the memory
//! terms derated when occupancy is too low to cover latency.

use serde::{Deserialize, Serialize};

use crate::arch::GpuArch;
use crate::compiler::CompiledKernel;
use crate::dram::PageStats;
use crate::progmodel::CompilerModel;

/// Resident-block/warp picture of a kernel on one SM.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Occupancy {
    /// Thread blocks resident per SM.
    pub blocks_per_sm: u32,
    /// Warps resident per SM.
    pub resident_warps: u32,
    /// Fraction of the SM's maximum resident warps.
    pub occupancy: f64,
}

/// Compute occupancy from register and thread limits.
pub fn occupancy(arch: &GpuArch, k: &CompiledKernel) -> Occupancy {
    let regs_per_block = (k.regs_per_thread.max(1) * k.threads_per_block).max(1);
    let by_regs = arch.regfile_per_sm / regs_per_block;
    let by_threads = arch.max_threads_per_sm / k.threads_per_block.max(1);
    let blocks = by_regs.min(by_threads).min(arch.max_blocks_per_sm).max(1);
    let occ_limiter = if by_regs <= by_threads && by_regs <= arch.max_blocks_per_sm {
        "registers"
    } else if by_threads <= arch.max_blocks_per_sm {
        "threads"
    } else {
        "blocks"
    };
    brick_obs::counter_add(&format!("sim.occupancy_limited_by.{occ_limiter}"), 1);
    let resident_warps = (blocks * k.warps_per_block).min(arch.max_warps_per_sm());
    Occupancy {
        blocks_per_sm: blocks,
        resident_warps,
        occupancy: resident_warps as f64 / arch.max_warps_per_sm() as f64,
    }
}

/// Byte totals produced by the memory-hierarchy simulation (plus spill
/// traffic added by the assembler).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemCounters {
    /// Bytes requested of the L1s (sector-rounded) — the paper's Fig. 4
    /// metric.
    pub l1_bytes: u64,
    /// Bytes requested of the L2.
    pub l2_bytes: u64,
    /// Bytes exchanged with HBM — the paper's "Bytes accessed" metric
    /// (Figs. 5 and 6, right panels).
    pub dram_bytes: u64,
    /// HBM read component of `dram_bytes`.
    pub dram_read_bytes: u64,
    /// HBM write component of `dram_bytes`.
    pub dram_write_bytes: u64,
    /// Row-buffer locality of the HBM stream.
    pub pages: PageStats,
}

/// Per-limiter times in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeBreakdown {
    /// HBM stream time.
    pub t_dram: f64,
    /// L2 stream time.
    pub t_l2: f64,
    /// Aggregate L1 stream time.
    pub t_l1: f64,
    /// FP64 pipe time.
    pub t_fp64: f64,
    /// Instruction-issue time.
    pub t_issue: f64,
    /// Kernel time: the maximum of the limiter times.
    pub time: f64,
}

impl TimeBreakdown {
    /// Name of the binding limiter.
    pub fn limiter(&self) -> &'static str {
        let pairs = [
            ("DRAM", self.t_dram),
            ("L2", self.t_l2),
            ("L1", self.t_l1),
            ("FP64", self.t_fp64),
            ("issue", self.t_issue),
        ];
        pairs
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(n, _)| *n)
            .unwrap_or("DRAM")
    }
}

/// Kernel-time model.
///
/// `mem` carries the simulated byte totals (spill traffic already folded
/// in); `num_blocks` is the launch size.
pub fn kernel_time(
    arch: &GpuArch,
    cm: &CompilerModel,
    k: &CompiledKernel,
    mem: &MemCounters,
    num_blocks: u64,
) -> TimeBreakdown {
    let occ = occupancy(arch, k);
    // Streaming memory saturates once enough warps are resident; below
    // that, effective bandwidth falls off linearly (latency-bound).
    let mem_derate = (occ.occupancy / arch.bw_saturation_occupancy).min(1.0);
    let giga = 1e9;

    // Row-buffer locality scales the achievable pin bandwidth: many
    // interleaved address streams (the tiled-array kernels) thrash the
    // open pages, a brick's single stream keeps them open (paper §3).
    let page_eff = mem.pages.efficiency();
    let t_dram = mem.dram_bytes as f64 / (arch.hbm_gbs * giga * mem_derate * page_eff);
    let t_l2 = mem.l2_bytes as f64 / (arch.l2_gbs * giga * mem_derate);
    let t_l1 = mem.l1_bytes as f64 / (arch.l1_gbs * giga * mem_derate);

    let flops = k.exec_flops_per_block as f64 * num_blocks as f64;
    let t_fp64 = flops / (arch.fp64_gflops * giga * cm.issue_efficiency);

    let instrs = k.instrs_per_block * num_blocks as f64;
    let issue_rate = arch.issue_per_cycle
        * arch.clock_ghz
        * giga
        * arch.num_sms as f64
        * cm.issue_efficiency
        * mem_derate.max(0.25);
    let t_issue = instrs / issue_rate;

    let time = t_dram.max(t_l2).max(t_l1).max(t_fp64).max(t_issue);
    TimeBreakdown {
        t_dram,
        t_l2,
        t_l1,
        t_fp64,
        t_issue,
        time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::GpuKind;
    use crate::progmodel::ProgModel;

    fn toy_kernel(regs: u32, threads: u32, warps: u32) -> CompiledKernel {
        CompiledKernel {
            name: "toy".into(),
            regs_per_thread: regs,
            threads_per_block: threads,
            warps_per_block: warps,
            instrs_per_block: 100.0,
            exec_flops_per_block: 1000,
            spill_read_bytes_per_block: 0,
            spill_write_bytes_per_block: 0,
        }
    }

    #[test]
    fn occupancy_limited_by_registers() {
        let arch = GpuArch::a100();
        // 256 regs * 512 threads = 131072 > 65536 regfile -> 0 -> clamp 1
        let heavy = occupancy(&arch, &toy_kernel(255, 512, 16));
        assert_eq!(heavy.blocks_per_sm, 1);
        // 32 regs * 512 threads = 16384 -> 4 blocks by regs, 4 by threads
        let light = occupancy(&arch, &toy_kernel(32, 512, 16));
        assert_eq!(light.blocks_per_sm, 4);
        assert!(light.occupancy > heavy.occupancy);
    }

    #[test]
    fn occupancy_limited_by_block_cap_for_tiny_blocks() {
        let arch = GpuArch::a100();
        // single-warp blocks hit the 32-blocks/SM cap: 32 warps of 64
        let o = occupancy(&arch, &toy_kernel(64, 32, 1));
        assert_eq!(o.blocks_per_sm, 32);
        assert_eq!(o.resident_warps, 32);
        assert!((o.occupancy - 0.5).abs() < 1e-12);
    }

    #[test]
    fn memory_bound_kernel_times_by_dram() {
        let arch = GpuArch::a100();
        let cm = CompilerModel::resolve(GpuKind::A100, ProgModel::Cuda).unwrap();
        let k = toy_kernel(32, 512, 16);
        let mem = MemCounters {
            l1_bytes: 4 << 30,
            l2_bytes: 3 << 30,
            dram_bytes: 2 << 30,
            ..Default::default()
        };
        let t = kernel_time(&arch, &cm, &k, &mem, 1000);
        assert_eq!(t.limiter(), "DRAM");
        // 2 GiB over 1555 GB/s at full derate
        let expect = (2u64 << 30) as f64 / (1555.0 * 1e9);
        assert!((t.t_dram - expect).abs() / expect < 1e-9);
        assert_eq!(t.time, t.t_dram);
    }

    #[test]
    fn low_occupancy_derates_bandwidth() {
        let arch = GpuArch::a100();
        let cm = CompilerModel::resolve(GpuKind::A100, ProgModel::Cuda).unwrap();
        let mem = MemCounters {
            l1_bytes: 1 << 30,
            l2_bytes: 1 << 30,
            dram_bytes: 1 << 30,
            ..Default::default()
        };
        let well = kernel_time(&arch, &cm, &toy_kernel(32, 512, 16), &mem, 100);
        // 255 regs force a single resident block; 4 warps of 64 = 6.25%
        // occupancy, far below the 25% saturation point
        let poorly = kernel_time(&arch, &cm, &toy_kernel(255, 512, 4), &mem, 100);
        assert!(poorly.t_dram > well.t_dram);
    }

    #[test]
    fn compute_bound_kernel_times_by_fp64() {
        let arch = GpuArch::a100();
        let cm = CompilerModel::resolve(GpuKind::A100, ProgModel::Cuda).unwrap();
        let mut k = toy_kernel(32, 512, 16);
        k.exec_flops_per_block = 1 << 30;
        let mem = MemCounters {
            l1_bytes: 1 << 20,
            l2_bytes: 1 << 20,
            dram_bytes: 1 << 20,
            ..Default::default()
        };
        let t = kernel_time(&arch, &cm, &k, &mem, 1000);
        assert_eq!(t.limiter(), "FP64");
    }

    #[test]
    fn issue_bound_kernel() {
        let arch = GpuArch::a100();
        let cm = CompilerModel::resolve(GpuKind::A100, ProgModel::Sycl).unwrap();
        let mut k = toy_kernel(64, 512, 16);
        k.instrs_per_block = 1e7;
        let mem = MemCounters {
            l1_bytes: 1 << 20,
            l2_bytes: 1 << 20,
            dram_bytes: 1 << 20,
            ..Default::default()
        };
        let t = kernel_time(&arch, &cm, &k, &mem, 1000);
        assert_eq!(t.limiter(), "issue");
    }
}
