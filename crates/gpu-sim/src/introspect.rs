//! Introspection of a memory-hierarchy simulation: where the bytes went.
//!
//! [`crate::MemoryReport`] answers *how much* data moved; the structures
//! here answer *which blocks moved it*. The wave loop in [`crate::hierarchy`]
//! optionally attributes every counter increment to the [`brick_vm::BlockClasses`]
//! class of the block that caused it (per-class L1/L2/DRAM/page deltas),
//! to the SM group that simulated it, and to a per-wave timeline — all in
//! the same integer arithmetic as the totals, so the per-class rows sum
//! **bit-for-bit** to the report's counters in both fidelity modes (the
//! flush write-back of resident output, which no single block causes, gets
//! its own bucket).

use serde::{Deserialize, Serialize};

use crate::cache::CacheStats;
use crate::dram::PageStats;
use crate::hierarchy::{MemoryReport, SimFidelity};
use crate::timing::MemCounters;

/// Traffic attributed to one cause (a block class, or the final flush):
/// the full per-level counter set, in the same units as the totals.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TrafficBucket {
    /// L1 statistics deltas caused by this bucket's blocks.
    pub l1: CacheStats,
    /// L2 statistics deltas caused by feeding this bucket's miss streams.
    pub l2: CacheStats,
    /// HBM bytes read (L2 fills) on behalf of this bucket.
    pub dram_read_bytes: u64,
    /// HBM bytes written on behalf of this bucket.
    pub dram_write_bytes: u64,
    /// DRAM row-buffer hits of this bucket's transactions.
    pub page_hits: u64,
    /// DRAM row-buffer misses (activations) of this bucket's transactions.
    pub page_misses: u64,
}

impl TrafficBucket {
    /// Accumulate another bucket.
    pub fn merge(&mut self, other: &TrafficBucket) {
        self.l1.merge(&other.l1);
        self.l2.merge(&other.l2);
        self.dram_read_bytes += other.dram_read_bytes;
        self.dram_write_bytes += other.dram_write_bytes;
        self.page_hits += other.page_hits;
        self.page_misses += other.page_misses;
    }

    /// Field-wise difference `self − earlier` of two monotone snapshots.
    pub fn diff(&self, earlier: &TrafficBucket) -> TrafficBucket {
        TrafficBucket {
            l1: self.l1.diff(&earlier.l1),
            l2: self.l2.diff(&earlier.l2),
            dram_read_bytes: self.dram_read_bytes - earlier.dram_read_bytes,
            dram_write_bytes: self.dram_write_bytes - earlier.dram_write_bytes,
            page_hits: self.page_hits - earlier.page_hits,
            page_misses: self.page_misses - earlier.page_misses,
        }
    }

    /// Add `delta` scaled by `k` (the fast-forward step: `k` skipped wave
    /// periods each provably contribute `delta`).
    pub fn add_scaled(&mut self, delta: &TrafficBucket, k: u64) {
        self.l1.add_scaled(&delta.l1, k);
        self.l2.add_scaled(&delta.l2, k);
        self.dram_read_bytes += delta.dram_read_bytes * k;
        self.dram_write_bytes += delta.dram_write_bytes * k;
        self.page_hits += delta.page_hits * k;
        self.page_misses += delta.page_misses * k;
    }
}

/// Traffic attributed to one block class.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ClassTraffic {
    /// Class index (matches [`brick_vm::BlockClasses::class_of`]).
    pub class: u64,
    /// Launch blocks belonging to this class.
    pub blocks: u64,
    /// The class's traffic across the hierarchy.
    pub traffic: TrafficBucket,
}

/// One SM group of the fast path's L1 sharing plan (in exact fidelity
/// every SM is its own group of one).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SmGroupTraffic {
    /// The representative SM that ran the group's L1 simulation.
    pub representative: u64,
    /// SMs in the group (each contributes the representative's stats).
    pub members: u64,
    /// The representative's private-L1 statistics (one SM's worth).
    pub l1: CacheStats,
}

/// Cumulative counters sampled at a full-wave boundary.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WaveSample {
    /// Completed full waves at this sample.
    pub wave: u64,
    /// True when the sample lies inside a fast-forwarded span and was
    /// synthesized from the verified per-period delta (exact integers —
    /// the same numbers a full simulation of the period would produce).
    pub fast_forwarded: bool,
    /// Cumulative bytes requested of the L2.
    pub l2_requested_bytes: u64,
    /// Cumulative HBM bytes read.
    pub dram_read_bytes: u64,
    /// Cumulative HBM bytes written.
    pub dram_write_bytes: u64,
    /// Cumulative DRAM row-buffer hits.
    pub page_hits: u64,
    /// Cumulative DRAM row-buffer misses.
    pub page_misses: u64,
}

/// Full attribution of one memory simulation. Produced by
/// [`crate::simulate_memory_introspect`]; rendered by `bricks prof sim`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SimIntrospection {
    /// Fidelity mode the simulation ran under.
    pub fidelity: SimFidelity,
    /// Launch blocks simulated.
    pub num_blocks: u64,
    /// Distinct block classes.
    pub num_classes: u64,
    /// L1 line size in bytes (for delivered-byte accounting).
    pub l1_line: u64,
    /// Wave period exploited by the fast-forward, when one was found.
    pub wave_period: Option<u64>,
    /// Full waves accounted by fast-forward instead of simulation.
    pub waves_skipped: u64,
    /// Per-class traffic; sums (plus [`SimIntrospection::flush`])
    /// bit-for-bit to the report totals.
    pub classes: Vec<ClassTraffic>,
    /// End-of-kernel flush of resident dirty output — caused by the launch
    /// as a whole, not any single block.
    pub flush: TrafficBucket,
    /// Per-SM-group L1 breakdown.
    pub sm_groups: Vec<SmGroupTraffic>,
    /// Cumulative counters over the launch's full waves.
    pub timeline: Vec<WaveSample>,
}

impl SimIntrospection {
    /// Sum of every class bucket plus the flush bucket. Equals the
    /// simulation's totals exactly (enforced by `tests/introspect.rs`).
    pub fn totals(&self) -> TrafficBucket {
        let mut t = TrafficBucket::default();
        for c in &self.classes {
            t.merge(&c.traffic);
        }
        t.merge(&self.flush);
        t
    }

    /// Reconstruct the [`MemoryReport`] the totals imply.
    pub fn report(&self) -> MemoryReport {
        let t = self.totals();
        MemoryReport {
            l1: t.l1,
            l1_line: self.l1_line as usize,
            l2: t.l2,
            dram_read_bytes: t.dram_read_bytes,
            dram_write_bytes: t.dram_write_bytes,
            pages: PageStats {
                hits: t.page_hits,
                misses: t.page_misses,
            },
        }
    }

    /// The [`MemCounters`] the attribution sums to — comparable field by
    /// field with [`MemoryReport::counters`].
    pub fn counters(&self) -> MemCounters {
        self.report().counters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bucket(seed: u64) -> TrafficBucket {
        TrafficBucket {
            l1: CacheStats {
                accesses: seed,
                requested_bytes: seed * 32,
                hit_sectors: seed / 2,
                miss_sectors: seed - seed / 2,
                fill_bytes: seed * 16,
                writeout_bytes: seed * 8,
                line_visits: seed,
            },
            l2: CacheStats {
                accesses: seed * 2,
                ..CacheStats::default()
            },
            dram_read_bytes: seed * 3,
            dram_write_bytes: seed * 5,
            page_hits: seed,
            page_misses: seed + 1,
        }
    }

    #[test]
    fn bucket_algebra_is_consistent() {
        let a = bucket(10);
        let b = bucket(7);
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.diff(&a), b);
        let mut s = a.clone();
        s.add_scaled(&b, 3);
        let mut expect = a.clone();
        for _ in 0..3 {
            expect.merge(&b);
        }
        assert_eq!(s, expect);
    }

    #[test]
    fn totals_include_flush_and_round_trip() {
        let intro = SimIntrospection {
            fidelity: SimFidelity::Fast,
            num_blocks: 8,
            num_classes: 2,
            l1_line: 128,
            wave_period: Some(2),
            waves_skipped: 4,
            classes: vec![
                ClassTraffic {
                    class: 0,
                    blocks: 6,
                    traffic: bucket(10),
                },
                ClassTraffic {
                    class: 1,
                    blocks: 2,
                    traffic: bucket(4),
                },
            ],
            flush: bucket(1),
            sm_groups: vec![SmGroupTraffic {
                representative: 0,
                members: 4,
                l1: CacheStats::default(),
            }],
            timeline: vec![WaveSample {
                wave: 1,
                ..WaveSample::default()
            }],
        };
        let t = intro.totals();
        assert_eq!(t.dram_read_bytes, (10 + 4 + 1) * 3);
        let c = intro.counters();
        assert_eq!(c.l1_bytes, t.l1.line_visits * 128);
        let json = serde_json::to_string(&intro).unwrap();
        let back: SimIntrospection = serde_json::from_str(&json).unwrap();
        assert_eq!(intro, back);
    }
}
