//! # gpu-sim
//!
//! Trace-driven GPU simulator standing in for the paper's three machines
//! (no GPU hardware is available to this reproduction; see DESIGN.md §2).
//!
//! A kernel's address trace — replayed by `brick-vm` from the actual
//! generated code — flows through per-SM sectored L1 caches and a shared
//! L2 into HBM counters ([`hierarchy`]); a compiler model per programming
//! model derives registers, spills and instruction counts ([`compiler`],
//! [`progmodel`]); and a hierarchical-Roofline timing model with occupancy
//! derating turns bytes + FLOPs + instructions into kernel time
//! ([`timing`]). [`sim::simulate`] produces everything the paper measures
//! per configuration: GFLOP/s, arithmetic intensity, and L1/L2/HBM data
//! movement.
//!
//! ```
//! use brick_codegen::{generate, CodegenOptions, LayoutKind};
//! use brick_core::{BrickDecomp, BrickDims, BrickNav, BrickOrdering};
//! use brick_dsl::{shape::StencilShape, StencilAnalysis};
//! use brick_vm::{KernelSpec, TraceGeometry};
//! use gpu_sim::{simulate, GpuArch, ProgModel};
//! use std::sync::Arc;
//!
//! // 13-point star as a bricks-codegen kernel on the simulated A100
//! let shape = StencilShape::star(2);
//! let stencil = shape.stencil();
//! let kernel = generate(
//!     &stencil,
//!     &stencil.default_bindings(),
//!     LayoutKind::Brick,
//!     32,
//!     CodegenOptions::default(),
//! )
//! .unwrap();
//!
//! let decomp = Arc::new(BrickDecomp::new(
//!     (64, 64, 64),
//!     BrickDims::for_simd_width(32),
//!     2,
//!     BrickOrdering::Lexicographic,
//! ));
//! let geom = TraceGeometry::brick(Arc::new(BrickNav::new(decomp)));
//! let analysis = StencilAnalysis::of_shape(&shape);
//!
//! let result = simulate(
//!     &KernelSpec::Vector(kernel),
//!     &geom,
//!     &GpuArch::a100(),
//!     ProgModel::Cuda,
//!     analysis.flops_per_point,
//! )
//! .unwrap();
//! assert!(result.gflops > 0.0);
//! assert!(result.mem.dram_bytes >= geom.compulsory_bytes());
//! ```

pub mod arch;
pub mod cache;
pub mod compiler;
pub mod dram;
pub mod hierarchy;
pub mod introspect;
pub mod progmodel;
pub mod reuse;
pub mod sim;
pub mod timing;

pub use arch::{GpuArch, GpuKind};

// Compile-time proof that everything a parallel sweep cell touches is
// shareable across worker threads: the scheduler in `brick-sweep` fans
// independent (stencil, config, GPU, model) cells out over `std::thread`
// workers, so a non-`Send` field sneaking into any of these types must be
// a build error, not a latent runtime hazard.
const _: () = {
    const fn cell_state_is_shareable<T: Send + Sync>() {}
    cell_state_is_shareable::<arch::GpuArch>();
    cell_state_is_shareable::<progmodel::CompilerModel>();
    cell_state_is_shareable::<compiler::CompiledKernel>();
    cell_state_is_shareable::<timing::MemCounters>();
    cell_state_is_shareable::<timing::Occupancy>();
    cell_state_is_shareable::<sim::SimResult>();
    cell_state_is_shareable::<hierarchy::MemoryReport>();
    cell_state_is_shareable::<hierarchy::SimFidelity>();
    cell_state_is_shareable::<hierarchy::SimOptions>();
    cell_state_is_shareable::<brick_vm::KernelSpec>();
    cell_state_is_shareable::<brick_vm::TraceGeometry>();
    cell_state_is_shareable::<brick_vm::BlockClasses>();
};
pub use cache::{Cache, CacheConfig, CacheStats, WritePolicy};
pub use compiler::{compile, CompiledKernel};
pub use dram::{bandwidth_efficiency, DramModel, PageStats};
pub use hierarchy::{
    simulate_memory, simulate_memory_introspect, simulate_memory_opts, MemoryReport, SimFidelity,
    SimOptions,
};
pub use introspect::{ClassTraffic, SimIntrospection, SmGroupTraffic, TrafficBucket, WaveSample};
pub use progmodel::{CompilerModel, ProgModel};
pub use reuse::{ReuseAnalyzer, ReuseProfile};
pub use sim::{assemble, compile_only, simulate, simulate_opts, SimResult};
pub use timing::{kernel_time, occupancy, MemCounters, Occupancy, TimeBreakdown};
