//! Programming-model compiler models (§4.2 and Table 1).
//!
//! The paper compiles the same kernels with the vendor model (CUDA on
//! NVIDIA, HIP on AMD) and with SYCL, and attributes the performance gaps
//! it observes to compiler maturity: scalar-code quality, register
//! allocation, and shuffle lowering. This module models those mechanisms
//! so the gaps *emerge* from instruction counts, register pressure and
//! spill traffic rather than from hard-coded slowdown factors:
//!
//! * **scalar CSE** — vendor compilers hoist and reuse the address
//!   arithmetic of a gather loop; the portable compiler recomputes most of
//!   it per tap (more integer instructions per load);
//! * **register allocation** — the portable compiler keeps more
//!   intermediate values live and spills sooner (a lower effective
//!   register ceiling), producing local-memory traffic that rides the
//!   whole memory hierarchy;
//! * **shuffle lowering** — `sub_group_shuffle_*` lowers to a two-
//!   instruction sequence where the native intrinsics need one.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::arch::GpuKind;

/// The programming models of the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProgModel {
    /// NVIDIA CUDA.
    Cuda,
    /// AMD HIP (on NVIDIA it wraps the CUDA toolchain).
    Hip,
    /// SYCL (intel-llvm / DPC++ / oneAPI).
    Sycl,
}

impl fmt::Display for ProgModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgModel::Cuda => f.write_str("CUDA"),
            ProgModel::Hip => f.write_str("HIP"),
            ProgModel::Sycl => f.write_str("SYCL"),
        }
    }
}

impl ProgModel {
    /// Whether this model is supported on a GPU (Table 1: CUDA+HIP+SYCL on
    /// Perlmutter, HIP+SYCL on Crusher, SYCL on Florentia).
    pub fn supports(&self, gpu: GpuKind) -> bool {
        matches!(
            (self, gpu),
            (ProgModel::Cuda, GpuKind::A100)
                | (ProgModel::Hip, GpuKind::A100 | GpuKind::Mi250xGcd)
                | (ProgModel::Sycl, _)
        )
    }

    /// The `(GPU, model)` pairs evaluated in the paper's figures.
    pub fn paper_matrix() -> Vec<(GpuKind, ProgModel)> {
        vec![
            (GpuKind::A100, ProgModel::Cuda),
            (GpuKind::A100, ProgModel::Hip),
            (GpuKind::A100, ProgModel::Sycl),
            (GpuKind::Mi250xGcd, ProgModel::Hip),
            (GpuKind::Mi250xGcd, ProgModel::Sycl),
            (GpuKind::PvcStack, ProgModel::Sycl),
        ]
    }

    /// The five platform columns of Tables 3 and 5 (HIP-on-A100 is the
    /// CUDA wrapper and is not reported separately).
    pub fn portability_columns() -> Vec<(GpuKind, ProgModel)> {
        vec![
            (GpuKind::A100, ProgModel::Cuda),
            (GpuKind::A100, ProgModel::Sycl),
            (GpuKind::Mi250xGcd, ProgModel::Hip),
            (GpuKind::Mi250xGcd, ProgModel::Sycl),
            (GpuKind::PvcStack, ProgModel::Sycl),
        ]
    }
}

/// Compiler-quality parameters for one `(GPU, model)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompilerModel {
    /// The programming model.
    pub model: ProgModel,
    /// Whether the scalar path reuses hoisted address arithmetic.
    pub scalar_cse: bool,
    /// Integer/address instructions issued per memory access in scalar
    /// code.
    pub addr_instrs_per_access: f64,
    /// Extra always-live registers (addressing, descriptors, indices).
    pub reg_overhead: u32,
    /// Multiplier on the kernel's own register demand (allocator quality).
    pub reg_inflation: f64,
    /// Effective per-thread register ceiling before the compiler spills.
    pub spill_ceiling: u32,
    /// Instructions per lane-shuffle primitive.
    pub shuffle_instrs: f64,
    /// Fraction of peak instruction issue the generated code sustains.
    pub issue_efficiency: f64,
}

impl CompilerModel {
    /// The compiler model used for `model` on `gpu`; `None` when the pair
    /// is unsupported.
    pub fn resolve(gpu: GpuKind, model: ProgModel) -> Option<CompilerModel> {
        if !model.supports(gpu) {
            return None;
        }
        Some(match (gpu, model) {
            // Native toolchains: good CSE, lean registers, 1-instruction
            // shuffles.
            (GpuKind::A100, ProgModel::Cuda) => CompilerModel {
                model,
                scalar_cse: true,
                addr_instrs_per_access: 1.3,
                reg_overhead: 16,
                reg_inflation: 1.0,
                spill_ceiling: 255,
                shuffle_instrs: 1.0,
                issue_efficiency: 0.85,
            },
            // HIP on Perlmutter wraps the NVIDIA compiler (§4.2): same
            // generated code, same performance.
            (GpuKind::A100, ProgModel::Hip) => CompilerModel {
                model,
                ..Self::resolve(GpuKind::A100, ProgModel::Cuda).unwrap()
            },
            (GpuKind::Mi250xGcd, ProgModel::Hip) => CompilerModel {
                model,
                scalar_cse: true,
                addr_instrs_per_access: 1.4,
                reg_overhead: 18,
                reg_inflation: 1.05,
                spill_ceiling: 255,
                shuffle_instrs: 1.0,
                issue_efficiency: 0.8,
            },
            // SYCL: portable compiler; weaker scalar optimisation, higher
            // register pressure, earlier spills, two-instruction shuffles.
            (GpuKind::A100, ProgModel::Sycl) => CompilerModel {
                model,
                scalar_cse: false,
                addr_instrs_per_access: 3.2,
                reg_overhead: 26,
                reg_inflation: 1.25,
                spill_ceiling: 128,
                shuffle_instrs: 2.0,
                issue_efficiency: 0.7,
            },
            (GpuKind::Mi250xGcd, ProgModel::Sycl) => CompilerModel {
                model,
                scalar_cse: false,
                addr_instrs_per_access: 2.6,
                reg_overhead: 24,
                reg_inflation: 1.2,
                spill_ceiling: 160,
                shuffle_instrs: 2.0,
                issue_efficiency: 0.72,
            },
            // oneAPI on its own hardware: portable front end, mature
            // native back end.
            (GpuKind::PvcStack, ProgModel::Sycl) => CompilerModel {
                model,
                scalar_cse: false,
                addr_instrs_per_access: 2.4,
                reg_overhead: 22,
                reg_inflation: 1.15,
                spill_ceiling: 192,
                shuffle_instrs: 2.0,
                issue_efficiency: 0.75,
            },
            _ => unreachable!("supports() gates unsupported pairs"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn support_matrix_matches_table1() {
        assert!(ProgModel::Cuda.supports(GpuKind::A100));
        assert!(!ProgModel::Cuda.supports(GpuKind::Mi250xGcd));
        assert!(!ProgModel::Cuda.supports(GpuKind::PvcStack));
        assert!(ProgModel::Hip.supports(GpuKind::A100));
        assert!(ProgModel::Hip.supports(GpuKind::Mi250xGcd));
        assert!(!ProgModel::Hip.supports(GpuKind::PvcStack));
        for g in [GpuKind::A100, GpuKind::Mi250xGcd, GpuKind::PvcStack] {
            assert!(ProgModel::Sycl.supports(g));
        }
    }

    #[test]
    fn paper_matrix_has_six_combinations() {
        assert_eq!(ProgModel::paper_matrix().len(), 6);
        assert_eq!(ProgModel::portability_columns().len(), 5);
    }

    #[test]
    fn hip_on_a100_is_the_cuda_wrapper() {
        let cuda = CompilerModel::resolve(GpuKind::A100, ProgModel::Cuda).unwrap();
        let hip = CompilerModel::resolve(GpuKind::A100, ProgModel::Hip).unwrap();
        assert_eq!(hip.scalar_cse, cuda.scalar_cse);
        assert_eq!(hip.reg_overhead, cuda.reg_overhead);
        assert_eq!(hip.shuffle_instrs, cuda.shuffle_instrs);
        assert_eq!(hip.issue_efficiency, cuda.issue_efficiency);
        assert_eq!(hip.model, ProgModel::Hip);
    }

    #[test]
    fn unsupported_pairs_resolve_to_none() {
        assert!(CompilerModel::resolve(GpuKind::PvcStack, ProgModel::Cuda).is_none());
        assert!(CompilerModel::resolve(GpuKind::PvcStack, ProgModel::Hip).is_none());
        assert!(CompilerModel::resolve(GpuKind::Mi250xGcd, ProgModel::Cuda).is_none());
    }

    #[test]
    fn sycl_is_modelled_weaker_than_native() {
        for gpu in [GpuKind::A100, GpuKind::Mi250xGcd] {
            let native = CompilerModel::resolve(
                gpu,
                if gpu == GpuKind::A100 {
                    ProgModel::Cuda
                } else {
                    ProgModel::Hip
                },
            )
            .unwrap();
            let sycl = CompilerModel::resolve(gpu, ProgModel::Sycl).unwrap();
            assert!(!sycl.scalar_cse && native.scalar_cse);
            assert!(sycl.addr_instrs_per_access > native.addr_instrs_per_access);
            assert!(sycl.spill_ceiling < native.spill_ceiling);
            assert!(sycl.shuffle_instrs > native.shuffle_instrs);
        }
    }
}
