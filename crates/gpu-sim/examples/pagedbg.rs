//! Debug dump of DRAM page/row-buffer behaviour: prints per-config DRAM
//! traffic for array/brick layouts across the modelled architectures.

use brick_codegen::{generate, CodegenOptions, LayoutKind};
use brick_core::{BrickDecomp, BrickDims, BrickNav, BrickOrdering};
use brick_dsl::shape::StencilShape;
use brick_dsl::StencilAnalysis;
use brick_vm::{KernelSpec, ScalarKernel, TraceGeometry};
use gpu_sim::*;
use std::sync::Arc;

fn main() {
    let n = 256;
    for (arch, model) in [
        (GpuArch::a100(), ProgModel::Cuda),
        (GpuArch::a100(), ProgModel::Sycl),
        (GpuArch::mi250x_gcd(), ProgModel::Hip),
        (GpuArch::pvc_stack(), ProgModel::Sycl),
    ] {
        let w = arch.simd_width;
        println!("== {} {} ==", arch.kind, model);
        for shape in [
            StencilShape::star(1),
            StencilShape::star(4),
            StencilShape::cube(2),
        ] {
            let st = shape.stencil();
            let b = st.default_bindings();
            let r = shape.radius as usize;
            let a = StencilAnalysis::of_shape(&shape);
            let configs: Vec<(&str, KernelSpec, TraceGeometry)> = vec![
                (
                    "array",
                    KernelSpec::Scalar(ScalarKernel::new(&st, &b, LayoutKind::Array, w).unwrap()),
                    TraceGeometry::array((n, n, n), r, BrickDims::for_simd_width(w)),
                ),
                (
                    "array-cg",
                    KernelSpec::Vector(
                        generate(&st, &b, LayoutKind::Array, w, CodegenOptions::default()).unwrap(),
                    ),
                    TraceGeometry::array((n, n, n), r, BrickDims::for_simd_width(w)),
                ),
                (
                    "bricks-cg",
                    KernelSpec::Vector(
                        generate(&st, &b, LayoutKind::Brick, w, CodegenOptions::default()).unwrap(),
                    ),
                    TraceGeometry::brick(Arc::new(BrickNav::new(Arc::new(BrickDecomp::new(
                        (n, n, n),
                        BrickDims::for_simd_width(w),
                        r,
                        BrickOrdering::Lexicographic,
                    ))))),
                ),
            ];
            for (name, spec, geom) in configs {
                let sim = simulate(&spec, &geom, &arch, model, a.flops_per_point).unwrap();
                println!("{:6} {:10} {:6.0} GF ai {:5.3} dram {:5.2}GB l1 {:6.2}GB lim {:5} occ {:.2} pagehit {:.2}",
                    shape.label(), name, sim.gflops, sim.ai,
                    sim.mem.dram_bytes as f64/1e9, sim.mem.l1_bytes as f64/1e9,
                    sim.breakdown.limiter(), sim.occupancy.occupancy, sim.mem.pages.hit_rate());
            }
        }
    }
}
