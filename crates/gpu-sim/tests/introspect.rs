//! Differential suite for simulator introspection.
//!
//! The attribution is held to the same standard as the fast path itself:
//! exact `u64` equality, no tolerances. Three oracles:
//!
//! 1. **Conservation** — per-class traffic plus the flush bucket sums
//!    bit-for-bit to the `MemoryReport` the same simulation returns, in
//!    both fidelity modes, and the SM-group breakdown re-weights to the
//!    merged L1.
//! 2. **Non-perturbation** — running with introspection on yields the
//!    identical report as running with it off.
//! 3. **Fidelity agreement** — exact and fast modes produce identical
//!    per-class rows (the fast path's scaled attribution is a pure
//!    reformulation, like its totals).

use brick_codegen::{generate, CodegenOptions, LayoutKind};
use brick_core::{BrickDecomp, BrickDims, BrickNav, BrickOrdering};
use brick_dsl::shape::StencilShape;
use brick_vm::{KernelSpec, TraceGeometry};
use gpu_sim::{
    simulate_memory_introspect, simulate_memory_opts, CacheStats, GpuArch, MemoryReport,
    SimFidelity, SimIntrospection, SimOptions,
};
use std::sync::Arc;

fn brick_geom(n: usize, width: usize, radius: usize, ordering: BrickOrdering) -> TraceGeometry {
    let d = Arc::new(BrickDecomp::new(
        (n.max(width), n, n),
        BrickDims::for_simd_width(width),
        radius,
        ordering,
    ));
    TraceGeometry::brick(Arc::new(BrickNav::new(d)))
}

fn vector_spec(shape: &StencilShape, layout: LayoutKind, width: usize) -> KernelSpec {
    let st = shape.stencil();
    let b = st.default_bindings();
    KernelSpec::Vector(generate(&st, &b, layout, width, CodegenOptions::default()).unwrap())
}

fn assert_reports_equal(a: &MemoryReport, b: &MemoryReport, tag: &str) {
    assert_eq!(a.l1, b.l1, "L1: {tag}");
    assert_eq!(a.l2, b.l2, "L2: {tag}");
    assert_eq!(a.dram_read_bytes, b.dram_read_bytes, "DRAM rd: {tag}");
    assert_eq!(a.dram_write_bytes, b.dram_write_bytes, "DRAM wr: {tag}");
    assert_eq!(a.pages, b.pages, "pages: {tag}");
}

/// Oracles 1 and 2 for one cell at one fidelity; returns the introspection.
fn check_attribution(
    spec: &KernelSpec,
    geom: &TraceGeometry,
    arch: &GpuArch,
    fidelity: SimFidelity,
) -> SimIntrospection {
    let opts = SimOptions {
        fidelity,
        ..SimOptions::default()
    };
    let plain = simulate_memory_opts(spec, geom, arch, 8, &opts);
    let (report, intro) = simulate_memory_introspect(spec, geom, arch, 8, &opts);
    let tag = format!("{} on {} ({fidelity:?})", spec.name(), arch.name);

    // 2: introspection must not perturb the simulation
    assert_reports_equal(&plain, &report, &tag);

    // 1: conservation — class buckets + flush == the report, bit for bit
    assert_reports_equal(&intro.report(), &report, &tag);
    assert_eq!(intro.counters(), report.counters(), "counters: {tag}");
    assert_eq!(
        intro.classes.iter().map(|c| c.blocks).sum::<u64>(),
        intro.num_blocks,
        "block census: {tag}"
    );
    assert_eq!(intro.classes.len() as u64, intro.num_classes, "{tag}");

    // SM groups re-weight to the merged L1
    let mut l1 = CacheStats::default();
    for g in &intro.sm_groups {
        l1.add_scaled(&g.l1, g.members);
    }
    assert_eq!(l1, report.l1, "SM groups: {tag}");

    // timeline samples are cumulative, hence monotone
    for w in intro.timeline.windows(2) {
        assert!(w[1].wave > w[0].wave, "timeline order: {tag}");
        assert!(
            w[1].l2_requested_bytes >= w[0].l2_requested_bytes
                && w[1].dram_read_bytes >= w[0].dram_read_bytes
                && w[1].dram_write_bytes >= w[0].dram_write_bytes,
            "timeline monotone: {tag}"
        );
    }
    intro
}

/// Oracle 3 on top: both fidelities, identical per-class attribution.
fn check_both_fidelities(spec: &KernelSpec, geom: &TraceGeometry, arch: &GpuArch) {
    let exact = check_attribution(spec, geom, arch, SimFidelity::Exact);
    let fast = check_attribution(spec, geom, arch, SimFidelity::Fast);
    let tag = format!("{} on {}", spec.name(), arch.name);
    assert_eq!(exact.classes, fast.classes, "per-class rows: {tag}");
    assert_eq!(exact.flush, fast.flush, "flush bucket: {tag}");
    assert_eq!(exact.num_blocks, fast.num_blocks, "{tag}");
}

#[test]
fn attribution_conserves_both_layouts() {
    let width = 32;
    let arch = GpuArch::a100();
    for shape in [StencilShape::star(2), StencilShape::cube(1)] {
        let radius = shape.radius as usize;
        let spec = vector_spec(&shape, LayoutKind::Brick, width);
        let geom = brick_geom(64, width, radius, BrickOrdering::Lexicographic);
        check_both_fidelities(&spec, &geom, &arch);

        let spec = vector_spec(&shape, LayoutKind::Array, width);
        let geom = TraceGeometry::array((64, 64, 64), radius, BrickDims::for_simd_width(width));
        check_both_fidelities(&spec, &geom, &arch);
    }
}

#[test]
fn attribution_survives_fast_forward() {
    // a launch with enough full waves that the fast path's wave-periodic
    // fast-forward engages: the scaled per-class accumulators must still
    // sum exactly, and the synthesized timeline samples must be flagged
    let width = 32;
    let arch = GpuArch::a100();
    let shape = StencilShape::star(1);
    let spec = vector_spec(&shape, LayoutKind::Brick, width);
    let geom = brick_geom(192, width, 1, BrickOrdering::Lexicographic);

    let fast = check_attribution(&spec, &geom, &arch, SimFidelity::Fast);
    assert!(
        fast.wave_period.is_some() && fast.waves_skipped > 0,
        "expected fast-forward to engage: {:?} skipped {}",
        fast.wave_period,
        fast.waves_skipped
    );
    assert!(
        fast.timeline.iter().any(|s| s.fast_forwarded),
        "expected synthesized timeline samples"
    );

    // and the attribution still matches an exact run of the same launch
    let exact = check_attribution(&spec, &geom, &arch, SimFidelity::Exact);
    assert_eq!(exact.classes, fast.classes);
    assert_eq!(exact.flush, fast.flush);
}

#[test]
fn morton_attributes_many_classes() {
    // Morton ordering fragments the launch into many block classes; the
    // breakdown must stay conservative and fidelity-invariant
    let width = 32;
    let arch = GpuArch::a100();
    let shape = StencilShape::star(2);
    let spec = vector_spec(&shape, LayoutKind::Brick, width);
    let geom = brick_geom(64, width, 2, BrickOrdering::Morton);
    let intro = check_attribution(&spec, &geom, &arch, SimFidelity::Fast);
    assert!(
        intro.num_classes > 1,
        "Morton should produce multiple classes, got {}",
        intro.num_classes
    );
    check_both_fidelities(&spec, &geom, &arch);
}
