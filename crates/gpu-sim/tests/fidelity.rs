//! Differential oracle suite: `SimFidelity::Fast` vs `SimFidelity::Exact`.
//!
//! The fast path (block-class memoization + batched cache replay) is a
//! pure reformulation of the exact per-block trace, so every counter the
//! simulator produces must match to the last byte — exact `u64` equality
//! on `MemCounters` and per-level `CacheStats`, no tolerances. The matrix
//! covers every paper stencil (star 1–4, cube 1–2) × SIMD width
//! {16, 32, 64} × both layouts at two domain sizes, on the architecture
//! model that owns each width (PVC stack / A100 / MI250X GCD).
//!
//! Width-64 bricks need x-extents that are multiples of 64, so those
//! cells run at 64³ and 128³ instead of 96³.

use brick_codegen::{generate, CodegenOptions, LayoutKind};
use brick_core::{BrickDecomp, BrickDims, BrickNav, BrickOrdering};
use brick_dsl::shape::StencilShape;
use brick_vm::{KernelSpec, ScalarKernel, TraceGeometry};
use gpu_sim::{simulate_memory, simulate_memory_opts, GpuArch, SimFidelity, SimOptions};
use std::sync::Arc;

/// star 1–4 and cube 1–2: the full paper suite.
fn paper_shapes() -> Vec<StencilShape> {
    vec![
        StencilShape::star(1),
        StencilShape::star(2),
        StencilShape::star(3),
        StencilShape::star(4),
        StencilShape::cube(1),
        StencilShape::cube(2),
    ]
}

fn arch_for_width(width: usize) -> GpuArch {
    match width {
        16 => GpuArch::pvc_stack(),
        32 => GpuArch::a100(),
        64 => GpuArch::mi250x_gcd(),
        other => panic!("no architecture models width {other}"),
    }
}

fn geometry(layout: LayoutKind, n: usize, width: usize, radius: usize) -> TraceGeometry {
    let extents = (n.max(width), n, n);
    match layout {
        LayoutKind::Brick => {
            let d = Arc::new(BrickDecomp::new(
                extents,
                BrickDims::for_simd_width(width),
                radius,
                BrickOrdering::Lexicographic,
            ));
            TraceGeometry::brick(Arc::new(BrickNav::new(d)))
        }
        LayoutKind::Array => {
            TraceGeometry::array(extents, radius, BrickDims::for_simd_width(width))
        }
    }
}

/// Run both fidelities and demand bit-identical reports.
fn assert_fidelity(spec: &KernelSpec, geom: &TraceGeometry, arch: &GpuArch, opts: SimOptions) {
    let exact = simulate_memory_opts(
        spec,
        geom,
        arch,
        8,
        &SimOptions {
            fidelity: SimFidelity::Exact,
            ..opts
        },
    );
    let fast = simulate_memory_opts(
        spec,
        geom,
        arch,
        8,
        &SimOptions {
            fidelity: SimFidelity::Fast,
            ..opts
        },
    );
    let tag = format!("{} on {} ({:?})", spec.name(), arch.name, geom.extents());
    assert_eq!(exact.counters(), fast.counters(), "MemCounters: {tag}");
    assert_eq!(exact.l1, fast.l1, "L1 CacheStats: {tag}");
    assert_eq!(exact.l2, fast.l2, "L2 CacheStats: {tag}");
    assert_eq!(exact.pages, fast.pages, "DRAM pages: {tag}");
}

/// One width × one domain size, all paper stencils × both layouts,
/// vector (codegen) kernels.
fn run_matrix(width: usize, n: usize) {
    let arch = arch_for_width(width);
    for shape in paper_shapes() {
        let st = shape.stencil();
        let b = st.default_bindings();
        let radius = shape.radius as usize;
        for layout in [LayoutKind::Brick, LayoutKind::Array] {
            let spec = KernelSpec::Vector(
                generate(&st, &b, layout, width, CodegenOptions::default()).unwrap(),
            );
            let geom = geometry(layout, n, width, radius);
            assert_fidelity(&spec, &geom, &arch, SimOptions::default());
        }
    }
}

#[test]
fn width16_at_64() {
    run_matrix(16, 64);
}

#[test]
fn width16_at_96() {
    run_matrix(16, 96);
}

#[test]
fn width32_at_64() {
    run_matrix(32, 64);
}

#[test]
fn width32_at_96() {
    run_matrix(32, 96);
}

#[test]
fn width64_at_64() {
    run_matrix(64, 64);
}

#[test]
fn width64_at_128() {
    run_matrix(64, 128);
}

#[test]
fn scalar_kernels_both_layouts() {
    // the plain `array` configuration of the paper, plus the un-generated
    // brick kernel — the scalar trace path must memoize exactly too
    let width = 32;
    let arch = arch_for_width(width);
    for shape in paper_shapes() {
        let st = shape.stencil();
        let b = st.default_bindings();
        let radius = shape.radius as usize;
        for layout in [LayoutKind::Brick, LayoutKind::Array] {
            let spec = KernelSpec::Scalar(ScalarKernel::new(&st, &b, layout, width).unwrap());
            let geom = geometry(layout, 64, width, radius);
            assert_fidelity(&spec, &geom, &arch, SimOptions::default());
        }
    }
}

#[test]
fn morton_ordering_stays_exact() {
    // Morton splits the launch into many classes; fidelity must not
    // depend on the class count
    let width = 32;
    let arch = arch_for_width(width);
    let shape = StencilShape::star(2);
    let st = shape.stencil();
    let b = st.default_bindings();
    let spec = KernelSpec::Vector(
        generate(&st, &b, LayoutKind::Brick, width, CodegenOptions::default()).unwrap(),
    );
    let d = Arc::new(BrickDecomp::new(
        (64, 64, 64),
        BrickDims::for_simd_width(width),
        2,
        BrickOrdering::Morton,
    ));
    let geom = TraceGeometry::brick(Arc::new(BrickNav::new(d)));
    assert_fidelity(&spec, &geom, &arch, SimOptions::default());
}

#[test]
fn fidelity_holds_under_pinned_interleave_chunk() {
    // satellite: interleave_chunk is now a SimOptions field; pin it to
    // pathological values and the two fidelities must still agree (the
    // chunking applies to the L2 feed, after trace generation)
    let width = 32;
    let arch = arch_for_width(width);
    let shape = StencilShape::cube(1);
    let st = shape.stencil();
    let b = st.default_bindings();
    let spec = KernelSpec::Vector(
        generate(&st, &b, LayoutKind::Brick, width, CodegenOptions::default()).unwrap(),
    );
    let geom = geometry(LayoutKind::Brick, 64, width, 1);
    for chunk in [1usize, 7, 1024, 1 << 20] {
        assert_fidelity(
            &spec,
            &geom,
            &arch,
            SimOptions {
                interleave_chunk: chunk,
                ..SimOptions::default()
            },
        );
    }
}

#[test]
fn default_options_are_the_documented_schema() {
    // the defaults are part of the simulator's schema: fast fidelity,
    // 1024-event L2 interleave — and the no-options entry point must be
    // exactly the default-options one
    let opts = SimOptions::default();
    assert_eq!(opts.fidelity, SimFidelity::Fast);
    assert_eq!(opts.interleave_chunk, 1024);

    let width = 32;
    let arch = arch_for_width(width);
    let shape = StencilShape::star(1);
    let st = shape.stencil();
    let b = st.default_bindings();
    let spec = KernelSpec::Vector(
        generate(&st, &b, LayoutKind::Brick, width, CodegenOptions::default()).unwrap(),
    );
    let geom = geometry(LayoutKind::Brick, 64, width, 1);
    let a = simulate_memory(&spec, &geom, &arch, 8);
    let bft = simulate_memory_opts(&spec, &geom, &arch, 8, &opts);
    assert_eq!(a.counters(), bft.counters());
    assert_eq!(a.l1, bft.l1);
    assert_eq!(a.l2, bft.l2);
}

#[test]
fn fidelity_parses_and_displays() {
    assert_eq!("exact".parse::<SimFidelity>().unwrap(), SimFidelity::Exact);
    assert_eq!("fast".parse::<SimFidelity>().unwrap(), SimFidelity::Fast);
    assert!("quick".parse::<SimFidelity>().is_err());
    assert_eq!(SimFidelity::Exact.to_string(), "exact");
    assert_eq!(SimFidelity::Fast.to_string(), "fast");
}
