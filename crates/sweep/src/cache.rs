//! Content-addressed on-disk result cache.
//!
//! A cache entry is one JSON file whose name embeds a stable 64-bit hash
//! of the entry's full key description ([`KeyBuilder`]). The description
//! itself is stored inside the file and re-checked on load, so a hash
//! collision (or a stale file from an older key scheme) reads as a miss
//! rather than serving the wrong cell. Corrupted or unreadable entries
//! degrade to a recompute with a `brick-obs` warning — the cache can
//! never make a run fail, only make it faster.
//!
//! Writes go through a temp file + rename so concurrent writers (parallel
//! sweep cells racing on a shared key) and interrupted runs cannot leave
//! a torn entry behind.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize, Value};

/// Envelope format version; bump when the on-disk layout changes so old
/// entries invalidate cleanly instead of mis-parsing.
const ENVELOPE_VERSION: u64 = 1;

/// A fully-described cache key: a human-readable canonical description
/// plus its stable FNV-1a hash (the file name).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheKey {
    /// Key domain, used as the file-name prefix (e.g. `cell`, `roofline`).
    pub domain: String,
    /// Canonical `name=value;...` description of everything the cached
    /// result depends on.
    pub desc: String,
    /// `fnv1a64(desc)` — stable across runs, platforms and processes.
    pub hash: u64,
}

impl CacheKey {
    /// File name of this key's entry.
    pub fn file_name(&self) -> String {
        format!("{}-{:016x}.json", self.domain, self.hash)
    }
}

/// Builds a [`CacheKey`] from named fields. Field order is part of the
/// key, so callers must append in a fixed order.
#[derive(Debug)]
pub struct KeyBuilder {
    domain: String,
    desc: String,
}

impl KeyBuilder {
    /// Start a key in `domain` at schema version `version` — bump the
    /// version whenever the semantics of the cached value change (e.g. a
    /// timing-model fix) to invalidate every older entry at once.
    pub fn new(domain: &str, version: u64) -> KeyBuilder {
        KeyBuilder {
            domain: domain.to_string(),
            desc: format!("{domain};v{version}"),
        }
    }

    /// Append a displayable field.
    pub fn field(mut self, name: &str, value: impl std::fmt::Display) -> KeyBuilder {
        let _ = write!(self.desc, ";{name}={value}");
        self
    }

    /// Append a raw 64-bit fingerprint field (rendered as fixed-width
    /// hex, so descriptions stay canonical).
    pub fn fingerprint(self, name: &str, fp: u64) -> KeyBuilder {
        self.field(name, format_args!("{fp:016x}"))
    }

    /// Append an `f64` field by exact bit pattern — `Display` rounding
    /// must never make two different configurations collide.
    pub fn f64_bits(self, name: &str, v: f64) -> KeyBuilder {
        self.field(name, format_args!("{:016x}", v.to_bits()))
    }

    /// Finish into a key.
    pub fn build(self) -> CacheKey {
        let hash = brick_obs::manifest::fnv1a64(self.desc.as_bytes());
        CacheKey {
            domain: self.domain,
            desc: self.desc,
            hash,
        }
    }
}

/// Outcome of a cache probe.
#[derive(Debug)]
pub enum CacheOutcome<T> {
    /// The entry was present, matched the key, and deserialised.
    Hit(T),
    /// No entry on disk.
    Miss,
    /// An entry existed but could not be used (torn write, stale format,
    /// key-description mismatch). The reason is for diagnostics; callers
    /// recompute exactly as for a miss.
    Corrupt(String),
}

/// A directory of content-addressed JSON entries.
#[derive(Debug, Clone)]
pub struct DiskCache {
    dir: PathBuf,
}

impl DiskCache {
    /// Open (creating if needed) a cache rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<DiskCache> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(DiskCache { dir })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Absolute path of `key`'s entry.
    pub fn path_for(&self, key: &CacheKey) -> PathBuf {
        self.dir.join(key.file_name())
    }

    /// Probe for `key`. Counts `sweep.cache.hits` / `.misses` /
    /// `.corrupt` and warns (once per probe) on corruption.
    pub fn get<T: Deserialize>(&self, key: &CacheKey) -> CacheOutcome<T> {
        let path = self.path_for(key);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                brick_obs::counter_add("sweep.cache.misses", 1);
                return CacheOutcome::Miss;
            }
            Err(e) => return self.corrupt(key, format!("unreadable: {e}")),
        };
        let envelope: Value = match serde_json::parse(&text) {
            Ok(v) => v,
            Err(e) => return self.corrupt(key, format!("invalid JSON: {e}")),
        };
        match envelope.get("version").and_then(Value::as_u64) {
            Some(ENVELOPE_VERSION) => {}
            v => return self.corrupt(key, format!("envelope version {v:?}")),
        }
        match envelope.get("desc").and_then(Value::as_str) {
            Some(d) if d == key.desc => {}
            Some(_) => return self.corrupt(key, "key description mismatch".into()),
            None => return self.corrupt(key, "missing key description".into()),
        }
        let Some(value) = envelope.get("value") else {
            return self.corrupt(key, "missing value".into());
        };
        match serde_json::from_value::<T>(value) {
            Ok(v) => {
                brick_obs::counter_add("sweep.cache.hits", 1);
                CacheOutcome::Hit(v)
            }
            Err(e) => self.corrupt(key, format!("stale value shape: {e}")),
        }
    }

    fn corrupt<T>(&self, key: &CacheKey, reason: String) -> CacheOutcome<T> {
        brick_obs::counter_add("sweep.cache.corrupt", 1);
        brick_obs::warn!(
            "cache entry {} unusable ({reason}); recomputing",
            key.file_name()
        );
        CacheOutcome::Corrupt(reason)
    }

    /// Store `value` under `key` (temp file + rename; losing a race to a
    /// concurrent writer of the same key is harmless because entries are
    /// content-addressed).
    pub fn put<T: Serialize>(&self, key: &CacheKey, value: &T) -> io::Result<()> {
        let envelope = Value::Obj(vec![
            ("version".into(), Value::U64(ENVELOPE_VERSION)),
            ("desc".into(), Value::Str(key.desc.clone())),
            (
                "value".into(),
                serde_json::to_value(value)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?,
            ),
        ]);
        let text = serde_json::to_string(&envelope)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let tmp = self
            .dir
            .join(format!(".{}.tmp-{}", key.file_name(), std::process::id()));
        fs::write(&tmp, text)?;
        fs::rename(&tmp, self.path_for(key))?;
        Ok(())
    }

    /// `get` falling back to `compute` (+ `put`) on miss or corruption.
    /// A failed write is reported but does not fail the computation.
    pub fn get_or_compute<T, F>(&self, key: &CacheKey, compute: F) -> T
    where
        T: Serialize + Deserialize,
        F: FnOnce() -> T,
    {
        if let CacheOutcome::Hit(v) = self.get(key) {
            return v;
        }
        let v = compute();
        if let Err(e) = self.put(key, &v) {
            brick_obs::warn!("could not write cache entry {}: {e}", key.file_name());
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_cache(tag: &str) -> DiskCache {
        let dir =
            std::env::temp_dir().join(format!("brick_sweep_cache_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        DiskCache::open(dir).unwrap()
    }

    fn key(n: u64) -> CacheKey {
        KeyBuilder::new("test", 1)
            .fingerprint("kernel", 0xDEADBEEF)
            .field("n", n)
            .build()
    }

    #[test]
    fn key_hash_is_stable_and_sensitive() {
        let a = key(64);
        let b = key(64);
        assert_eq!(a, b, "same inputs, same key");
        assert_eq!(a.file_name(), b.file_name());
        assert_ne!(a.hash, key(128).hash, "field change changes the hash");
        assert_ne!(
            a.hash,
            KeyBuilder::new("test", 2)
                .fingerprint("kernel", 0xDEADBEEF)
                .field("n", 64u64)
                .build()
                .hash,
            "schema version change invalidates"
        );
        assert_ne!(
            KeyBuilder::new("a", 1).f64_bits("x", 1.0).build().hash,
            KeyBuilder::new("a", 1)
                .f64_bits("x", 1.0 + f64::EPSILON)
                .build()
                .hash,
            "f64 keys are bit-exact"
        );
    }

    #[test]
    fn roundtrip_hit() {
        let c = tmp_cache("roundtrip");
        let k = key(64);
        assert!(matches!(c.get::<Vec<u64>>(&k), CacheOutcome::Miss));
        c.put(&k, &vec![1u64, 2, 3]).unwrap();
        match c.get::<Vec<u64>>(&k) {
            CacheOutcome::Hit(v) => assert_eq!(v, vec![1, 2, 3]),
            other => panic!("expected hit, got {other:?}"),
        }
    }

    #[test]
    fn garbage_entry_reads_as_corrupt() {
        let c = tmp_cache("garbage");
        let k = key(64);
        fs::write(c.path_for(&k), "{not json").unwrap();
        assert!(matches!(c.get::<u64>(&k), CacheOutcome::Corrupt(_)));
        // and get_or_compute recovers by recomputing + repairing the entry
        assert_eq!(c.get_or_compute(&k, || 7u64), 7);
        assert!(matches!(c.get::<u64>(&k), CacheOutcome::Hit(7)));
    }

    #[test]
    fn description_mismatch_is_not_served() {
        let c = tmp_cache("mismatch");
        let k = key(64);
        let mut other = key(64);
        other.desc.push_str(";extra=1"); // same file name, different desc
        c.put(&other, &1u64).unwrap();
        assert!(matches!(c.get::<u64>(&k), CacheOutcome::Corrupt(_)));
    }

    #[test]
    fn stale_value_shape_recomputes() {
        let c = tmp_cache("shape");
        let k = key(64);
        c.put(&k, &"a string").unwrap();
        assert!(matches!(c.get::<u64>(&k), CacheOutcome::Corrupt(_)));
        assert_eq!(c.get_or_compute(&k, || 9u64), 9);
    }
}
