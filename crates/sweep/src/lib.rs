//! # brick-sweep
//!
//! Work scheduling for experiment sweeps. The paper's study matrix —
//! stencils × kernel configurations × GPUs × programming models — is a
//! set of *independent* cells, but the seed harness walked it with
//! strictly serial nested loops and recomputed every cell on every run.
//! This crate supplies the two missing mechanisms:
//!
//! * [`map_cells`] — deterministic parallel fan-out: cells are evaluated
//!   on worker threads (the vendored rayon shim) but reduced in input
//!   order, so records, CSVs and reports are byte-identical to a serial
//!   run at any [`Jobs`] setting. Scheduling is observable through
//!   brick-obs: a queue-depth gauge, a live ETA gauge and per-sweep
//!   progress lines.
//! * [`cache::DiskCache`] — a content-addressed on-disk result cache so
//!   unchanged cells are loaded instead of re-simulated, making repeat
//!   sweeps incremental across processes.
//!
//! Neither mechanism knows anything about stencils or GPUs; the
//! `experiments` crate builds the domain-specific cell list and cache
//! keys on top.

pub mod cache;

pub use cache::{CacheKey, CacheOutcome, DiskCache, KeyBuilder};

/// Worker-thread count for a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Jobs {
    /// Use every available hardware thread.
    Auto,
    /// Use exactly this many workers (clamped to at least 1).
    N(usize),
}

impl Jobs {
    /// Resolve the request chain `--jobs N` → `BRICK_JOBS` → auto.
    ///
    /// `flag` is the CLI value when given. An unset (or invalid)
    /// `BRICK_JOBS` falls through to [`Jobs::Auto`]; invalid values are
    /// reported through brick-obs rather than silently swallowed.
    pub fn from_flag_or_env(flag: Option<usize>) -> Jobs {
        if let Some(n) = flag {
            return Jobs::N(n.max(1));
        }
        match std::env::var("BRICK_JOBS") {
            Ok(v) => match v.trim().parse::<usize>() {
                Ok(0) | Err(_) => {
                    brick_obs::warn!("ignoring invalid BRICK_JOBS={v:?} (want a positive integer)");
                    Jobs::Auto
                }
                Ok(n) => Jobs::N(n),
            },
            Err(_) => Jobs::Auto,
        }
    }

    /// The concrete worker count this request resolves to.
    pub fn count(self) -> usize {
        match self {
            Jobs::N(n) => n.max(1),
            Jobs::Auto => std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
        }
    }
}

/// Evaluate `f` over every cell on `jobs` worker threads and return the
/// results **in input order**, regardless of completion order — the
/// deterministic reduction that makes parallel sweeps byte-compatible
/// with serial ones.
///
/// Observability (all through brick-obs, near-free when disabled):
/// * a progress reporter labelled `label` (rate + ETA lines at `info`);
/// * gauge `{label}.queue_depth` — cells not yet completed;
/// * gauge `{label}.eta_s` — estimated seconds to completion from the
///   live cell-completion rate;
/// * gauge `{label}.jobs` — the resolved worker count.
///
/// Each cell runs inside its own span (category `cell`), so `--trace`
/// runs show the actual parallel schedule.
pub fn map_cells<C, R, F>(label: &str, cells: &[C], jobs: Jobs, f: F) -> Vec<R>
where
    C: Sync,
    R: Send,
    F: Fn(usize, &C) -> R + Sync,
{
    let total = cells.len();
    let workers = jobs.count().min(total.max(1));
    brick_obs::gauge_set(&format!("{label}.jobs"), workers as f64);
    brick_obs::gauge_set(&format!("{label}.queue_depth"), total as f64);
    let progress = brick_obs::Progress::new(
        label,
        total as u64,
        brick_obs::log_level_enabled(brick_obs::Level::Info),
    );

    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(workers)
        .build()
        .expect("thread pool construction is infallible");
    let mut slots: Vec<Option<R>> = Vec::with_capacity(total);
    slots.resize_with(total, || None);
    // Scheduler span on the calling thread, named exactly `label`: cell
    // spans (`label[i]`) either nest under it directly (serial fallback
    // runs cells on this thread) or appear as worker-thread roots that
    // brick-prof re-parents under it by name — so profile *structure* is
    // identical at any jobs count.
    let _sched = brick_obs::span_cat(label.to_string(), "sched");
    pool.install(|| {
        use rayon::prelude::*;
        slots.par_iter_mut().enumerate().for_each(|(i, slot)| {
            let r = {
                let _span = brick_obs::span_cat(format!("{label}[{i}]"), "cell");
                f(i, &cells[i])
            };
            *slot = Some(r);
            let done = progress.tick();
            brick_obs::gauge_set(
                &format!("{label}.queue_depth"),
                (total as u64 - done) as f64,
            );
            brick_obs::gauge_set(&format!("{label}.eta_s"), progress.eta_s());
        });
    });
    slots
        .into_iter()
        .map(|s| s.expect("scheduler evaluated every cell"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_resolution() {
        assert_eq!(Jobs::from_flag_or_env(Some(4)), Jobs::N(4));
        assert_eq!(Jobs::from_flag_or_env(Some(0)), Jobs::N(1), "flag clamped");
        assert_eq!(Jobs::N(0).count(), 1);
        assert_eq!(Jobs::N(7).count(), 7);
        assert!(Jobs::Auto.count() >= 1);
    }

    #[test]
    fn results_keep_input_order_at_any_job_count() {
        let cells: Vec<u64> = (0..257).collect();
        let serial = map_cells("test.sched.serial", &cells, Jobs::N(1), |i, c| {
            (i as u64) * 1_000 + c * 3
        });
        for jobs in [2, 4, 8] {
            let par = map_cells("test.sched.par", &cells, Jobs::N(jobs), |i, c| {
                (i as u64) * 1_000 + c * 3
            });
            assert_eq!(par, serial, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_cell_list_is_fine() {
        let out: Vec<u8> = map_cells("test.sched.empty", &[] as &[u8], Jobs::Auto, |_, c| *c);
        assert!(out.is_empty());
    }

    #[test]
    fn parallel_cells_really_overlap() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let cells: Vec<u32> = (0..64).collect();
        map_cells("test.sched.overlap", &cells, Jobs::N(4), |_, _| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(2));
            live.fetch_sub(1, Ordering::SeqCst);
        });
        let peak = peak.load(Ordering::SeqCst);
        assert!(peak >= 2, "observed at most {peak} concurrent cells");
        assert!(peak <= 4, "jobs cap exceeded: {peak}");
    }
}
