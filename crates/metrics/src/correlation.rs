//! The paper's correlation model (contribution 3, Figs. 5 and 6):
//! scatter one programming model's metric against another's on the same
//! GPU, measurement by measurement, and summarise the relationship.
//!
//! Points above the `y = x` diagonal mean the y-axis model wins; the
//! distance from the diagonal is the per-configuration ratio; a high
//! Pearson correlation in log space means the two models respond to the
//! same bottlenecks even when one is uniformly slower.

use serde::{Deserialize, Serialize};

/// One paired measurement: the same `(stencil, kernel)` configuration
/// under two programming models.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PairedPoint {
    /// Configuration label, e.g. `"13pt bricks-codegen"`.
    pub label: String,
    /// Metric under the y-axis model (e.g. CUDA GFLOP/s).
    pub y: f64,
    /// Metric under the x-axis model (e.g. SYCL GFLOP/s).
    pub x: f64,
}

/// Summary of a correlation plot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorrelationSummary {
    /// Number of points.
    pub n: usize,
    /// Fraction of points strictly above the diagonal (y wins).
    pub frac_y_wins: f64,
    /// Geometric mean of `y / x` — the typical ratio between the models.
    pub geomean_ratio: f64,
    /// Largest `y / x` over the points.
    pub max_ratio: f64,
    /// Smallest `y / x` over the points.
    pub min_ratio: f64,
    /// Pearson correlation of `(log x, log y)`.
    pub log_pearson: f64,
}

/// Correlate paired measurements. Panics on non-positive metrics (both
/// axes are rates or byte counts).
pub fn correlate(points: &[PairedPoint]) -> CorrelationSummary {
    assert!(!points.is_empty(), "no points to correlate");
    let n = points.len();
    let mut wins = 0usize;
    let mut log_ratio_sum = 0.0;
    let mut max_ratio = f64::MIN;
    let mut min_ratio = f64::MAX;
    let (mut sx, mut sy, mut sxx, mut syy, mut sxy) = (0.0, 0.0, 0.0, 0.0, 0.0);
    for p in points {
        assert!(p.x > 0.0 && p.y > 0.0, "metrics must be positive: {p:?}");
        if p.y > p.x {
            wins += 1;
        }
        let r = p.y / p.x;
        log_ratio_sum += r.ln();
        max_ratio = max_ratio.max(r);
        min_ratio = min_ratio.min(r);
        let (lx, ly) = (p.x.ln(), p.y.ln());
        sx += lx;
        sy += ly;
        sxx += lx * lx;
        syy += ly * ly;
        sxy += lx * ly;
    }
    let nf = n as f64;
    let cov = sxy - sx * sy / nf;
    let vx = sxx - sx * sx / nf;
    let vy = syy - sy * sy / nf;
    let log_pearson = if vx <= 0.0 || vy <= 0.0 {
        // a degenerate (constant) axis carries no correlation signal
        0.0
    } else {
        cov / (vx * vy).sqrt()
    };
    CorrelationSummary {
        n,
        frac_y_wins: wins as f64 / nf,
        geomean_ratio: (log_ratio_sum / nf).exp(),
        max_ratio,
        min_ratio,
        log_pearson,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(y: f64, x: f64) -> PairedPoint {
        PairedPoint {
            label: String::new(),
            y,
            x,
        }
    }

    #[test]
    fn identical_models_sit_on_diagonal() {
        let s = correlate(&[pt(1.0, 1.0), pt(5.0, 5.0), pt(100.0, 100.0)]);
        assert_eq!(s.frac_y_wins, 0.0);
        assert!((s.geomean_ratio - 1.0).abs() < 1e-12);
        assert!((s.log_pearson - 1.0).abs() < 1e-9);
    }

    #[test]
    fn uniform_advantage_detected() {
        // y model is uniformly 2x the x model: perfectly correlated,
        // geomean ratio 2
        let s = correlate(&[pt(2.0, 1.0), pt(20.0, 10.0), pt(60.0, 30.0)]);
        assert_eq!(s.frac_y_wins, 1.0);
        assert!((s.geomean_ratio - 2.0).abs() < 1e-12);
        assert!((s.log_pearson - 1.0).abs() < 1e-9);
        assert!((s.max_ratio - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mixed_wins() {
        let s = correlate(&[pt(2.0, 1.0), pt(1.0, 2.0)]);
        assert!((s.frac_y_wins - 0.5).abs() < 1e-12);
        assert!((s.geomean_ratio - 1.0).abs() < 1e-12);
    }

    #[test]
    fn anticorrelated_models() {
        let s = correlate(&[pt(1.0, 8.0), pt(2.0, 4.0), pt(4.0, 2.0), pt(8.0, 1.0)]);
        assert!(s.log_pearson < -0.99);
    }

    #[test]
    fn degenerate_axis_yields_zero_correlation() {
        let s = correlate(&[pt(1.0, 3.0), pt(2.0, 3.0), pt(4.0, 3.0)]);
        assert_eq!(s.log_pearson, 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_metric_panics() {
        let _ = correlate(&[pt(0.0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "no points")]
    fn empty_panics() {
        let _ = correlate(&[]);
    }
}
