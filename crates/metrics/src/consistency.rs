//! Consistency statistics over per-platform efficiencies.
//!
//! The paper's related work (Deakin et al., P3HPC'19; Kwack et al.,
//! P3HPC'21 — both cited in §2) pairs Pennycook's P with statistics that
//! capture how *uniform* the efficiency is across platforms: an
//! application can have a respectable harmonic mean while being carried
//! by one platform. These helpers quantify that spread.

use serde::{Deserialize, Serialize};

/// Spread statistics for a set of per-platform efficiencies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Consistency {
    /// Smallest efficiency.
    pub min: f64,
    /// Largest efficiency.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub stddev: f64,
    /// Coefficient of variation (`stddev / mean`) — Kwack et al.'s
    /// uniformity statistic; 0 means perfectly consistent.
    pub cv: f64,
    /// `min / max` — Deakin et al.'s spread ratio; 1 means perfectly
    /// consistent.
    pub min_max_ratio: f64,
}

/// Compute consistency statistics. Panics on an empty set or
/// non-positive efficiencies (measurement errors).
pub fn consistency(efficiencies: &[f64]) -> Consistency {
    assert!(!efficiencies.is_empty(), "no efficiencies");
    let n = efficiencies.len() as f64;
    let mut min = f64::MAX;
    let mut max = 0.0f64;
    let mut sum = 0.0;
    for &e in efficiencies {
        assert!(e > 0.0, "efficiency must be positive, got {e}");
        min = min.min(e);
        max = max.max(e);
        sum += e;
    }
    let mean = sum / n;
    let var = efficiencies.iter().map(|e| (e - mean).powi(2)).sum::<f64>() / n;
    let stddev = var.sqrt();
    Consistency {
        min,
        max,
        mean,
        stddev,
        cv: stddev / mean,
        min_max_ratio: min / max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_efficiencies_are_perfectly_consistent() {
        let c = consistency(&[0.7, 0.7, 0.7]);
        assert!(c.cv < 1e-12);
        assert_eq!(c.min_max_ratio, 1.0);
        assert!(c.stddev < 1e-12);
        assert!((c.mean - 0.7).abs() < 1e-15);
    }

    #[test]
    fn spread_detected() {
        let c = consistency(&[0.9, 0.3]);
        assert!((c.min - 0.3).abs() < 1e-15);
        assert!((c.max - 0.9).abs() < 1e-15);
        assert!((c.min_max_ratio - 1.0 / 3.0).abs() < 1e-12);
        assert!(c.cv > 0.4);
    }

    #[test]
    fn paper_table3_7pt_row_consistency() {
        // 95, 84, 66, 68, 77 % — consistent enough that P ≈ mean
        let c = consistency(&[0.95, 0.84, 0.66, 0.68, 0.77]);
        assert!(c.min_max_ratio > 0.65);
        assert!(c.cv < 0.2);
        let p = crate::pennycook_p(&[Some(0.95), Some(0.84), Some(0.66), Some(0.68), Some(0.77)]);
        assert!(
            (p - c.mean).abs() < 0.05,
            "harmonic ≈ arithmetic when consistent"
        );
    }

    #[test]
    fn single_platform() {
        let c = consistency(&[0.5]);
        assert_eq!(c.min_max_ratio, 1.0);
        assert_eq!(c.cv, 0.0);
    }

    #[test]
    #[should_panic(expected = "no efficiencies")]
    fn empty_panics() {
        let _ = consistency(&[]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_panics() {
        let _ = consistency(&[0.5, 0.0]);
    }
}
