//! The potential speed-up plot (paper Fig. 7, contribution 3).
//!
//! Each configuration is placed at `(fraction of theoretical AI, fraction
//! of Roofline)`. A point at `(fai, fr)` could in principle speed up by
//! `1 / (fai · fr)` through any mix of improved data locality (move right)
//! and improved code generation / bandwidth utilisation (move up);
//! iso-curves of constant product are the guide lines of the figure.

use serde::{Deserialize, Serialize};

/// One configuration on the potential speed-up plane.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpeedupPoint {
    /// Configuration label, e.g. `"125pt MI250X HIP"`.
    pub label: String,
    /// Fraction of theoretical arithmetic intensity (x-axis).
    pub frac_ai: f64,
    /// Fraction of the Roofline (y-axis).
    pub frac_roofline: f64,
}

impl SpeedupPoint {
    /// Potential speed-up of this configuration.
    pub fn potential(&self) -> f64 {
        potential_speedup(self.frac_ai, self.frac_roofline)
    }
}

/// Potential speed-up from improving locality and/or code generation:
/// `1 / (frac_ai × frac_roofline)`.
pub fn potential_speedup(frac_ai: f64, frac_roofline: f64) -> f64 {
    assert!(
        frac_ai > 0.0 && frac_roofline > 0.0,
        "fractions must be positive"
    );
    1.0 / (frac_ai * frac_roofline)
}

/// Sample the iso-curve of constant potential speed-up `s` over
/// `frac_ai ∈ (0, 1]`: returns `(frac_ai, frac_roofline)` pairs with
/// `frac_ai · frac_roofline = 1/s`, clipped to the unit square.
pub fn iso_speedup_curve(s: f64, samples: usize) -> Vec<(f64, f64)> {
    assert!(s >= 1.0, "speed-up below 1 is not an improvement");
    assert!(samples >= 2);
    let mut out = Vec::with_capacity(samples);
    for i in 0..samples {
        let fai = (i + 1) as f64 / samples as f64;
        let fr = 1.0 / (s * fai);
        if fr <= 1.0 {
            out.push((fai, fr));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_point_has_no_headroom() {
        assert!((potential_speedup(1.0, 1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn paper_quadrant_examples() {
        // §5.2.2: points at ~50% on both axes have 2x–4x potential
        let s = potential_speedup(0.5, 0.5);
        assert!((s - 4.0).abs() < 1e-12);
        // high AI fraction, half Roofline -> ~2x from code generation
        let s = potential_speedup(0.95, 0.5);
        assert!(s > 2.0 && s < 2.2);
    }

    #[test]
    fn point_wrapper_consistent() {
        let p = SpeedupPoint {
            label: "t".into(),
            frac_ai: 0.8,
            frac_roofline: 0.25,
        };
        assert!((p.potential() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn iso_curve_lies_on_constant_product() {
        for (fai, fr) in iso_speedup_curve(4.0, 64) {
            assert!((fai * fr - 0.25).abs() < 1e-12);
            assert!(fr <= 1.0 && fai <= 1.0);
        }
    }

    #[test]
    fn iso_curve_clips_to_unit_square() {
        let pts = iso_speedup_curve(2.0, 100);
        // frac_ai below 0.5 would need frac_roofline > 1: clipped away
        assert!(pts.iter().all(|(fai, _)| *fai >= 0.5 - 1e-9));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_fraction_panics() {
        let _ = potential_speedup(0.0, 0.5);
    }

    #[test]
    #[should_panic(expected = "not an improvement")]
    fn sub_unit_speedup_panics() {
        let _ = iso_speedup_curve(0.5, 10);
    }
}
