//! The Pennycook performance-portability metric.
//!
//! For an application `a` solving problem `p` on a platform set `H`:
//!
//! ```text
//!            |H|
//! P = ─────────────────     if a is supported on every i ∈ H, else 0
//!      Σ_{i∈H} 1 / e_i(a,p)
//! ```
//!
//! The paper instantiates the efficiency `e_i` two ways: *fraction of the
//! Roofline at the empirical AI* (Table 3) and *fraction of theoretical
//! arithmetic intensity* (Table 5).

use serde::{Deserialize, Serialize};

/// A per-platform efficiency observation in `[0, 1]`-ish space (values
/// slightly above 1 can occur with empirical ceilings and are accepted).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Efficiency {
    /// Platform label (e.g. `"A100 CUDA"`).
    pub platform: &'static str,
    /// Efficiency `e_i(a, p)`, or `None` when the application does not
    /// run on the platform.
    pub value: Option<f64>,
}

/// Harmonic-mean performance portability over a platform set.
///
/// Returns 0 when any platform is unsupported (per the metric's
/// definition) or when the set is empty. Panics on non-positive
/// efficiencies, which are measurement errors.
pub fn pennycook_p(efficiencies: &[Option<f64>]) -> f64 {
    if efficiencies.is_empty() {
        return 0.0;
    }
    let mut inv_sum = 0.0;
    for e in efficiencies {
        match e {
            None => return 0.0,
            Some(v) => {
                assert!(*v > 0.0, "efficiency must be positive, got {v}");
                inv_sum += 1.0 / v;
            }
        }
    }
    efficiencies.len() as f64 / inv_sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_efficiencies_pass_through() {
        let p = pennycook_p(&[Some(0.8), Some(0.8), Some(0.8)]);
        assert!((p - 0.8).abs() < 1e-12);
    }

    #[test]
    fn harmonic_mean_below_arithmetic() {
        let p = pennycook_p(&[Some(0.9), Some(0.3)]);
        let harmonic: f64 = 2.0 / (1.0 / 0.9 + 1.0 / 0.3);
        assert!((p - harmonic).abs() < 1e-12);
        assert!(p < 0.6); // arithmetic mean
        assert!(p > 0.3); // min
    }

    #[test]
    fn unsupported_platform_zeroes_p() {
        assert_eq!(pennycook_p(&[Some(0.9), None, Some(0.8)]), 0.0);
    }

    #[test]
    fn empty_set_is_zero() {
        assert_eq!(pennycook_p(&[]), 0.0);
    }

    #[test]
    fn single_platform_is_its_efficiency() {
        assert!((pennycook_p(&[Some(0.66)]) - 0.66).abs() < 1e-12);
    }

    #[test]
    fn bounded_by_min_and_max() {
        let es = [0.47, 0.69, 0.79, 0.92, 0.53];
        let p = pennycook_p(&es.iter().map(|e| Some(*e)).collect::<Vec<_>>());
        let min = es.iter().cloned().fold(f64::MAX, f64::min);
        let max = es.iter().cloned().fold(0.0f64, f64::max);
        assert!(p >= min && p <= max);
    }

    #[test]
    fn paper_table3_7pt_row_reproduces() {
        // Table 3, 7pt row: 95%, 84%, 66%, 68%, 77% -> P = 77%
        let p = pennycook_p(&[Some(0.95), Some(0.84), Some(0.66), Some(0.68), Some(0.77)]);
        assert!((p - 0.77).abs() < 0.005, "{p}");
    }

    #[test]
    fn paper_table5_13pt_row_reproduces() {
        // Table 5, 13pt row: 92%, 88%, 66%, 48%, 92% -> P = 72%
        let p = pennycook_p(&[Some(0.92), Some(0.88), Some(0.66), Some(0.48), Some(0.92)]);
        assert!((p - 0.72).abs() < 0.005, "{p}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_efficiency_panics() {
        let _ = pennycook_p(&[Some(0.0)]);
    }
}
