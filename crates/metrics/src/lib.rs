//! # perf-portability
//!
//! The performance-portability analysis tools of the paper's §5.2:
//!
//! * [`pennycook`] — the Pennycook/Sewall/Lee metric **P** (harmonic mean
//!   of per-platform efficiencies, zero if any platform is unsupported),
//!   with the paper's two efficiency definitions: fraction of the
//!   Roofline and fraction of theoretical arithmetic intensity;
//! * [`correlation`] — the paper's *correlation model*: paired
//!   measurements of two programming models on one GPU (Figs. 5–6),
//!   summarised by diagonal position, geometric-mean ratio and Pearson
//!   correlation;
//! * [`speedup`] — the *potential speed-up* plot (Fig. 7): fraction of
//!   theoretical AI × fraction of Roofline, with iso-speed-up curves;
//! * [`consistency`] — the efficiency-spread statistics of the related
//!   P3HPC literature the paper cites (min/max ratio, coefficient of
//!   variation).

pub mod consistency;
pub mod correlation;
pub mod pennycook;
pub mod speedup;

pub use consistency::{consistency, Consistency};
pub use correlation::{correlate, CorrelationSummary, PairedPoint};
pub use pennycook::{pennycook_p, Efficiency};
pub use speedup::{iso_speedup_curve, potential_speedup, SpeedupPoint};
