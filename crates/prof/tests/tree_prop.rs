//! Property tests of the profile-tree invariants.
//!
//! Forests are generated with nested timings by construction (every
//! span's duration is its own self-weight plus its children's durations),
//! so the merged tree must satisfy, exactly:
//!
//! * `self_ns + Σ child.total_ns == total_ns` at every node — child
//!   self-times can never exceed the parent's total;
//! * the sum of self-times across the whole forest equals the sum of
//!   root totals (no time lost or invented by merging).

use brick_obs::SpanData;
use brick_prof::{ProfileNode, ProfileTree};
use proptest::prelude::*;

/// Decode `(parent_seed, weight, name_seed)` triples into a well-nested
/// forest: node `i`'s parent is an earlier node (or none), and durations
/// are built bottom-up so children always fit inside their parent.
fn build_forest(descr: &[(u64, u64, u64)]) -> Vec<SpanData> {
    let n = descr.len();
    let parent: Vec<Option<usize>> = descr
        .iter()
        .enumerate()
        .map(|(i, (p, _, _))| {
            let r = p % (i as u64 + 1);
            (r < i as u64).then_some(r as usize)
        })
        .collect();
    let mut dur: Vec<u64> = descr.iter().map(|(_, w, _)| w % 1000).collect();
    for i in (0..n).rev() {
        if let Some(p) = parent[i] {
            dur[p] += dur[i];
        }
    }
    descr
        .iter()
        .enumerate()
        .map(|(i, (_, w, name))| SpanData {
            // few distinct names => plenty of sibling merging
            name: format!("n{}", name % 4),
            cat: "t".into(),
            tid: 1,
            start_ns: 0,
            dur_ns: dur[i],
            parent: parent[i],
            depth: 0,
            alloc_bytes: w % 64,
        })
        .collect()
}

fn check_node(node: &ProfileNode) -> (u64, u64) {
    let child_total: u64 = node.children.iter().map(|c| c.total_ns).sum();
    assert_eq!(
        node.self_ns + child_total,
        node.total_ns,
        "self+children != total at {}",
        node.name
    );
    assert!(node.self_ns <= node.total_ns);
    let mut self_sum = node.self_ns;
    for c in &node.children {
        let (s, _) = check_node(c);
        self_sum += s;
    }
    (self_sum, node.total_ns)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn nested_forests_conserve_time(
        descr in proptest::collection::vec(
            (any::<u64>(), any::<u64>(), any::<u64>()),
            1..40,
        )
    ) {
        let spans = build_forest(&descr);
        let tree = ProfileTree::build(&spans);

        let mut self_sum = 0u64;
        let mut root_total = 0u64;
        for r in &tree.roots {
            let (s, t) = check_node(r);
            self_sum += s;
            root_total += t;
        }
        prop_assert_eq!(self_sum, root_total);

        // merging preserves the raw counters
        let raw_alloc: u64 = spans.iter().map(|s| s.alloc_bytes).sum();
        let mut merged_alloc = 0u64;
        let mut merged_count = 0u64;
        tree.walk(&mut |n| {
            merged_alloc += n.alloc_bytes;
            merged_count += n.count;
        });
        prop_assert_eq!(merged_alloc, raw_alloc);
        prop_assert_eq!(merged_count, spans.len() as u64);
    }
}
