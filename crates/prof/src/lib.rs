//! # brick-prof
//!
//! Performance attribution for the reproduction pipeline, built on the
//! spans and metrics `brick-obs` records:
//!
//! * [`tree::ProfileTree`] — merges a span capture into a hierarchical
//!   profile whose *structure* is invariant under the sweep's `--jobs`
//!   setting (worker-thread root spans are re-parented under their
//!   scheduler span by name; per-cell indices are normalized away), with
//!   wall-time, self-time and allocation attribution per node, exportable
//!   as folded stacks for flamegraph tooling.
//! * [`sweep::SweepProfile`] — the `PROF_sweep.json` artifact: per-phase
//!   (lint/verify, compile, simulate, score, cache-io) wall-time and
//!   allocation totals with log-linear duration histograms, the attributed
//!   fraction of sweep wall time, and the top-N hottest cells.
//! * [`bench`] — the continuous benchmark-regression pipeline: noise-aware
//!   metric diffing of `BENCH_sim.json` documents, the CI gate that fails
//!   on regressions beyond tolerance, and an append-only bench history.
//! * [`report`] — rustc-style text renderers for all of the above plus
//!   [`gpu_sim::SimIntrospection`], driven by `bricks prof`.
//!
//! Allocation attribution needs a per-thread allocation clock; [`init`]
//! registers the `prof-alloc` counting allocator's clock with `brick-obs`
//! (the allocator itself is installed program-wide by linking
//! `prof-alloc`).

pub mod bench;
pub mod report;
pub mod sweep;
pub mod tree;

pub use bench::{
    diff_bench, gate, history_append, history_load, lookup, rules_for, MetricDelta, MetricRule,
    BENCH_RULES, EXEC_RULES,
};
pub use report::{
    render_diff, render_history, render_introspection, render_sweep_profile, render_tree,
};
pub use sweep::SweepProfile;
pub use tree::{normalize_name, ProfileNode, ProfileTree};

/// Register the allocation clock so spans attribute per-thread allocated
/// bytes. Idempotent; call once from a binary before enabling tracing.
pub fn init() {
    brick_obs::set_alloc_clock(prof_alloc::thread_allocated_bytes);
}
